// Command artc compiles and replays system-call traces.
//
//	artc compile -trace app.strace -format strace -snapshot init.snap -o app.bench
//	artc convert -trace app.strace -format strace -shards -1 -to native -o app.trace
//	artc replay  -bench app.bench -target linux-ext4-hdd -method artc -speed afap
//	artc inspect -bench app.bench
//	artc trace   -magritte pages_docphoto15 -o replay.trace.json
//	artc chaos   -magritte pages_docphoto15 -seeds 16 -verify
//	artc chaos   -magritte pages_docphoto15 -seed 3 -o chaos-seed3.json
//
// compile turns a trace (native or strace format) plus an optional
// initial-state snapshot into a self-contained benchmark file; -shards
// lexes strace input in parallel, -stream overlaps strace lexing with
// compilation. convert re-encodes a trace between formats. replay
// executes a benchmark on a simulated target machine and reports timing
// and semantic accuracy. inspect prints a benchmark's dependency-graph
// statistics. trace replays with the observability recorder enabled and
// exports a Chrome trace_event JSON file (loadable in Perfetto) plus a
// text summary and critical-path report. chaos replays under seeded
// fault injection: -seeds N sweeps consecutive seeds asserting the
// chaos invariants (clean termination, monotonic virtual clock,
// per-seed reproducibility with -verify), while a single -seed run
// exports a deterministic JSON document for bit-reproducibility checks.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"rootreplay/internal/artc"
	"rootreplay/internal/artifact"
	"rootreplay/internal/core"
	"rootreplay/internal/fault"
	"rootreplay/internal/fault/chaostest"
	"rootreplay/internal/magritte"
	"rootreplay/internal/obs"
	"rootreplay/internal/shard"
	"rootreplay/internal/sim"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "compile":
		err = compileCmd(os.Args[2:])
	case "convert":
		err = convertCmd(os.Args[2:])
	case "replay":
		err = replayCmd(os.Args[2:])
	case "inspect":
		err = inspectCmd(os.Args[2:])
	case "trace":
		err = traceCmd(os.Args[2:])
	case "chaos":
		err = chaosCmd(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "artc: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: artc <compile|convert|replay|inspect|trace|chaos> [flags]")
	os.Exit(2)
}

// readTrace parses a trace file in the named format. For strace input,
// shards selects the lexer: 0 sequential, N > 0 that many parallel
// shards, negative one shard per CPU.
func readTrace(path, format string, shards int) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch format {
	case "strace":
		if shards != 0 {
			if shards < 0 {
				shards = 0 // ParseStraceSharded reads <= 0 as GOMAXPROCS
			}
			return trace.ParseStraceSharded(f, shards)
		}
		return trace.ParseStrace(f)
	case "ibench":
		return trace.ParseIBench(f)
	case "native":
		return trace.Decode(f)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}

// cacheFlags registers the artifact-cache flags shared by the commands
// that compile (compile, trace, chaos).
func cacheFlags(fs *flag.FlagSet) (dir *string, off *bool) {
	dir = fs.String("cache-dir", "", "compiled-artifact cache directory (default: <user cache dir>/artc)")
	off = fs.Bool("no-cache", false, "disable the compiled-artifact cache")
	return dir, off
}

// openStore opens the artifact cache, or returns nil (uncached
// operation) when disabled or unavailable. An unusable cache directory
// is a warning, not a failure: caching can cost time, never a run.
func openStore(dir string, off bool) *artifact.Store {
	if off {
		return nil
	}
	s, err := artifact.Open(dir, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "artc: artifact cache disabled: %v\n", err)
		return nil
	}
	return s
}

// reportCache prints one line describing how a cached compile was
// satisfied. The "corrupt" wording is load-bearing: CI greps for it to
// prove damaged artifacts are detected rather than replayed.
func reportCache(st artifact.Stats, quiet bool) {
	if st.Key == "" {
		return
	}
	switch {
	case st.Corrupt:
		// A corrupt cache entry is a safety signal, not progress chatter:
		// report it even under -quiet.
		fmt.Fprintf(os.Stderr, "artc: cache: corrupt artifact detected and removed, recompiled key=%s\n", st.Key[:12])
	case quiet:
	case st.Hit:
		fmt.Fprintf(os.Stderr, "artc: cache: hit key=%s load=%v size=%d\n",
			st.Key[:12], time.Duration(st.LoadNs), st.Bytes)
	default:
		fmt.Fprintf(os.Stderr, "artc: cache: miss key=%s compile=%v size=%d\n",
			st.Key[:12], time.Duration(st.CompileNs), st.Bytes)
	}
}

// resolveSliceProfile implements -slice-profile=auto: return the cached
// slice profile for (benchmark, slice options) if one exists, otherwise
// run one profiling replay of the static cut, persist its profile, and
// return it. A corrupt cached profile falls back to the static cut with
// a warning — the same contract as a corrupt benchmark artifact, minus
// the recompute (the static cut is always safe). Returns nil (static
// cut) for mode "off" and for plans slicing leaves whole.
func resolveSliceProfile(mode string, store *artifact.Store, b *artc.Benchmark,
	opts artc.Options, so artc.ShardOptions, quiet bool) (*shard.SliceProfile, error) {
	switch mode {
	case "", "off":
		return nil, nil
	case "auto":
	default:
		return nil, fmt.Errorf("unknown -slice-profile mode %q (want off or auto)", mode)
	}
	if so.SliceActions <= 0 {
		return nil, fmt.Errorf("-slice-profile=auto requires -slice-actions")
	}
	var key string
	if store != nil {
		benchKey, err := artifact.KeyTrace(b.Trace, b.Snapshot, b.Modes)
		if err != nil {
			return nil, err
		}
		key = artifact.ProfileKey(benchKey, so.SliceActions, so.SliceMax, so.SliceDeviceSync)
		sp, _, err := store.GetProfile(key)
		switch {
		case err == nil:
			if !quiet {
				fmt.Fprintf(os.Stderr, "artc: slice profile: hit key=%s atoms=%d pairs=%d\n",
					key[:12], len(sp.Atoms), len(sp.Pairs))
			}
			return sp, nil
		case errors.Is(err, artifact.ErrMiss):
		default:
			var ce *artifact.CorruptError
			if errors.As(err, &ce) {
				// The corrupt wording is load-bearing: CI greps for it.
				fmt.Fprintf(os.Stderr, "artc: slice profile: corrupt entry detected and removed, falling back to static cut key=%s\n", key[:12])
				return nil, nil
			}
			return nil, err
		}
	}
	// Miss: profile the static cut once. Observability stays off — the
	// coordinator's wait accounting is always on and is all the profile
	// needs.
	popts := opts
	popts.Obs = nil
	pso := so
	pso.SliceProfile = nil
	t0 := time.Now()
	_, st, err := artc.ReplaySharded(b, popts, pso)
	if err != nil {
		return nil, fmt.Errorf("slice profiling replay: %w", err)
	}
	if st.Profile == nil {
		return nil, nil // nothing was sliced; nothing to re-cut
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "artc: slice profile: miss, profiled static cut in %v (atoms=%d pairs=%d)\n",
			time.Since(t0).Round(time.Millisecond), len(st.Profile.Atoms), len(st.Profile.Pairs))
	}
	if store != nil {
		if _, err := store.PutProfile(key, st.Profile); err != nil {
			fmt.Fprintf(os.Stderr, "artc: slice profile: store failed: %v\n", err)
		}
	}
	return st.Profile, nil
}

func readSnapshot(path string) (*snapshot.Snapshot, error) {
	if path == "" {
		return nil, nil
	}
	sf, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer sf.Close()
	return snapshot.Decode(sf)
}

func compileCmd(args []string) error {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	tracePath := fs.String("trace", "", "trace file (required)")
	format := fs.String("format", "native", "trace format: native | strace | ibench")
	snapPath := fs.String("snapshot", "", "initial snapshot file (optional; inferred if absent)")
	out := fs.String("o", "out.bench", "output benchmark file")
	modesFlag := fs.String("modes", artc.ModesString(core.DefaultModes()), "ordering modes")
	shards := fs.Int("shards", 0, "parse strace input in N parallel shards (0 = sequential, -1 = one per CPU)")
	stream := fs.Bool("stream", false, "stream strace parsing into the compiler (requires -format strace; overlap needs -snapshot)")
	binOut := fs.Bool("binary", false, "write the output as a binary artifact instead of text")
	cacheDir, noCache := cacheFlags(fs)
	fs.Parse(args)
	if *tracePath == "" {
		return fmt.Errorf("-trace is required")
	}
	snap, err := readSnapshot(*snapPath)
	if err != nil {
		return err
	}
	modes, err := artc.ParseModes(*modesFlag)
	if err != nil {
		return err
	}
	store := openStore(*cacheDir, *noCache)

	var b *artc.Benchmark
	var st artifact.Stats
	switch {
	case store != nil && *format == "strace":
		// Key on the raw strace bytes so a warm hit skips parsing too;
		// cold misses compile through the streaming path.
		raw, err := os.ReadFile(*tracePath)
		if err != nil {
			return err
		}
		if b, st, err = artifact.CompileStrace(store, raw, snap, modes); err != nil {
			return err
		}
	case *stream:
		if *format != "strace" {
			return fmt.Errorf("-stream requires -format strace")
		}
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if b, err = artc.CompileStraceStream(f, snap, modes); err != nil {
			return err
		}
	default:
		tr, err := readTrace(*tracePath, *format, *shards)
		if err != nil {
			return err
		}
		if b, st, err = artifact.CompileTrace(store, tr, snap, modes); err != nil {
			return err
		}
	}
	reportCache(st, false)
	of, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer of.Close()
	if *binOut {
		err = b.EncodeBinary(of)
	} else {
		err = b.Encode(of)
	}
	if err != nil {
		return err
	}
	fmt.Printf("compiled %d records, %d threads, %d dependency edges -> %s\n",
		len(b.Trace.Records), len(b.Trace.Threads()), len(b.Graph.Edges), *out)
	if len(b.Analysis.Warnings) > 0 {
		fmt.Printf("%d model warnings (first: %s)\n", len(b.Analysis.Warnings), b.Analysis.Warnings[0])
	}
	return nil
}

// convertCmd re-encodes a trace between formats. Its main job is the
// ingest CI lane: parse the same strace text sequentially and sharded
// and compare the native encodings byte for byte.
func convertCmd(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	tracePath := fs.String("trace", "", "trace file (required)")
	format := fs.String("format", "strace", "input format: native | strace | ibench")
	outFormat := fs.String("to", "native", "output format: native | strace")
	shards := fs.Int("shards", 0, "parse strace input in N parallel shards (0 = sequential, -1 = one per CPU)")
	out := fs.String("o", "-", "output file (- = stdout)")
	fs.Parse(args)
	if *tracePath == "" {
		return fmt.Errorf("-trace is required")
	}
	tr, err := readTrace(*tracePath, *format, *shards)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *outFormat {
	case "native":
		return tr.Encode(w)
	case "strace":
		return trace.EncodeStrace(w, tr)
	default:
		return fmt.Errorf("unknown output format %q", *outFormat)
	}
}

// targetConfig parses "platform-fsprofile-device[-sched]" names like
// "linux-ext4-hdd" or "osx-hfs+-ssd-noop".
func targetConfig(name string, cachePages int64, slice time.Duration) (stack.Config, error) {
	return stack.ParseTarget(name, cachePages, slice)
}

func replayCmd(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	benchPath := fs.String("bench", "", "benchmark file (required)")
	target := fs.String("target", "linux-ext4-hdd", "target machine: platform-fs-device[-sched]")
	method := fs.String("method", "artc", "replay method: artc | single | temporal | unconstrained")
	speed := fs.String("speed", "afap", "replay speed: afap | natural | scaled")
	scale := fs.Float64("scale", 1.0, "predelay multiplier for -speed scaled")
	cache := fs.Int64("cache-pages", 0, "page-cache capacity in 4KiB pages (0 = 1GiB)")
	slice := fs.Duration("slice", 0, "CFQ slice_sync (0 = 100ms default)")
	fullFsync := fs.Bool("osx-full-fsync", false, "use F_FULLFSYNC when emulating Linux fsync on OS X")
	timeline := fs.Bool("timeline", false, "print a per-thread replay timeline (Figure 9 style)")
	shards := fs.Int("shards", 0, "replay components in parallel with this worker bound (0 = serial replayer; -1 = GOMAXPROCS)")
	sliceActions := fs.Int("slice-actions", 0, "with -shards: split components larger than this many actions along resource cuts (0 = off)")
	sliceMax := fs.Int("slice-max", 0, "cap on slices per component (0 = no cap)")
	sliceDevSync := fs.Bool("slice-device-sync", false, "let slicing cut fsync-heavy components (perf runs only: merged times reflect per-slice device queues, so output is no longer byte-identical to serial)")
	sliceProfile := fs.String("slice-profile", "off", "profile-guided re-slicing: off | auto (load the cached slice profile, or profile the static cut once, then re-cut and replay)")
	warm := fs.Bool("warm", false, "pre-warm every replica's metadata and page caches (required for sliced-vs-serial byte identity)")
	cacheDir, noCache := cacheFlags(fs)
	fs.Parse(args)
	if *benchPath == "" {
		return fmt.Errorf("-bench is required")
	}
	bf, err := os.Open(*benchPath)
	if err != nil {
		return err
	}
	defer bf.Close()
	b, err := artc.DecodeAny(bf)
	if err != nil {
		return err
	}
	conf, err := targetConfig(*target, *cache, *slice)
	if err != nil {
		return err
	}
	opts := artc.Options{Method: artc.Method(*method), FullFsyncOnOSX: *fullFsync}
	switch *speed {
	case "afap":
		opts.Speed = artc.AFAP
	case "natural":
		opts.Speed = artc.Natural
	case "scaled":
		opts.Speed = artc.Scaled
		opts.Scale = *scale
	default:
		return fmt.Errorf("unknown speed %q", *speed)
	}

	var rep *artc.Report
	if *shards != 0 {
		n := *shards
		if n < 0 {
			n = 0 // ReplaySharded resolves 0 to GOMAXPROCS
		}
		so := artc.ShardOptions{
			Shards: n,
			Target: conf,
			Init: func(sys *stack.System) error {
				if err := artc.Init(sys, b, ""); err != nil {
					return err
				}
				if *warm {
					sys.WarmAll()
				}
				return nil
			},
			SliceActions:    *sliceActions,
			SliceMax:        *sliceMax,
			SliceDeviceSync: *sliceDevSync,
		}
		so.SliceProfile, err = resolveSliceProfile(*sliceProfile, openStore(*cacheDir, *noCache), b, opts, so, false)
		if err != nil {
			return err
		}
		var st *artc.ShardStats
		rep, st, err = artc.ReplaySharded(b, opts, so)
		if err != nil {
			return err
		}
		fmt.Printf("sharded: components=%d clusters=%d cross-edges=%d largest=%d workers=%d sliced=%d synthetic=%d profiled=%v fingerprint=%016x\n",
			st.Components, st.Clusters, st.CrossEdges, st.Largest, st.Shards, st.Sliced, st.Synthetic, st.Profiled, st.PlanFingerprint)
		if c := rep.Coord; c != nil {
			fmt.Printf("coord: cross-wait=%v published=%d flush-batches=%d max-batch=%d host-blocked=%v\n",
				time.Duration(c.CrossWaitNs), c.Published, c.FlushBatches, c.FlushMaxBatch, time.Duration(c.BlockedNs).Round(time.Millisecond))
		}
	} else {
		k := sim.NewKernel()
		sys := stack.New(k, conf)
		if err := artc.Init(sys, b, ""); err != nil {
			return err
		}
		if *warm {
			sys.WarmAll()
		}
		rep, err = artc.Replay(sys, b, opts)
		if err != nil {
			return err
		}
	}
	fmt.Printf("replayed %d actions on %s in %v (virtual)\n", rep.Actions, conf.Name, rep.Elapsed)
	fmt.Printf("method=%s errors=%d emulated=%d concurrency=%.2f\n",
		rep.Method, rep.Errors, rep.Emulated, rep.Concurrency())
	for _, s := range rep.ErrorSamples {
		fmt.Printf("  mismatch: %s\n", s)
	}
	fmt.Println("per-call time:")
	var calls []string
	for c := range rep.CallTime {
		calls = append(calls, c)
	}
	sort.Slice(calls, func(i, j int) bool { return rep.CallTime[calls[i]] > rep.CallTime[calls[j]] })
	for _, c := range calls {
		fmt.Printf("  %-16s n=%-8d t=%v\n", c, rep.CallCount[c], rep.CallTime[c].Round(time.Microsecond))
	}
	if *timeline {
		fmt.Print(rep.Timeline(b, 100))
	}
	return nil
}

// traceCmd replays a benchmark with the obs recorder enabled and
// exports the recording.
func traceCmd(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	benchPath := fs.String("bench", "", "benchmark file (mutually exclusive with -magritte)")
	spec := fs.String("magritte", "", "Magritte trace name to generate and replay (e.g. pages_docphoto15)")
	genScale := fs.Float64("gen-scale", 0.02, "Magritte generation scale")
	genSeed := fs.Int64("gen-seed", 5, "Magritte generation seed")
	target := fs.String("target", "linux-ext4-ssd-noop", "target machine: platform-fs-device[-sched]")
	method := fs.String("method", "artc", "replay method: artc | single | temporal | unconstrained")
	out := fs.String("o", "-", "Chrome trace_event JSON output file (- = stdout)")
	interval := fs.Duration("probe-interval", 0, "min virtual time between counter samples (0 = default)")
	spanCap := fs.Int("span-cap", 0, "span ring capacity (0 = default)")
	critHops := fs.Int("crit-hops", 20, "critical-path rows to print (0 = all)")
	quiet := fs.Bool("quiet", false, "suppress the text summary and critical path on stderr")
	noSamples := fs.Bool("no-samples", false, "drop counter samples from the export (probes observe per-replica scheduler state, so sliced and serial sample streams differ even when the replay itself is byte-identical)")
	shards := fs.Int("shards", 0, "replay components in parallel with this worker bound (0 = serial replayer; -1 = GOMAXPROCS)")
	sliceActions := fs.Int("slice-actions", 0, "with -shards: split components larger than this many actions along resource cuts (0 = off)")
	sliceMax := fs.Int("slice-max", 0, "cap on slices per component (0 = no cap)")
	sliceProfile := fs.String("slice-profile", "off", "profile-guided re-slicing: off | auto (load the cached slice profile, or profile the static cut once, then re-cut and replay)")
	warm := fs.Bool("warm", false, "pre-warm every replica's metadata and page caches (required for sliced-vs-serial byte identity)")
	cacheDir, noCache := cacheFlags(fs)
	fs.Parse(args)

	var b *artc.Benchmark
	switch {
	case *benchPath != "" && *spec != "":
		return fmt.Errorf("-bench and -magritte are mutually exclusive")
	case *benchPath != "":
		bf, err := os.Open(*benchPath)
		if err != nil {
			return err
		}
		defer bf.Close()
		if b, err = artc.DecodeAny(bf); err != nil {
			return err
		}
	case *spec != "":
		sp, ok := magritte.SpecByName(*spec)
		if !ok {
			return fmt.Errorf("unknown Magritte trace %q", *spec)
		}
		gen, err := magritte.Generate(sp, magritte.GenOptions{Scale: *genScale, Seed: *genSeed})
		if err != nil {
			return err
		}
		var st artifact.Stats
		if b, st, err = artifact.CompileTrace(openStore(*cacheDir, *noCache), gen.Trace, gen.Snapshot, core.DefaultModes()); err != nil {
			return err
		}
		reportCache(st, *quiet)
	default:
		return fmt.Errorf("one of -bench or -magritte is required")
	}

	conf, err := targetConfig(*target, 0, 0)
	if err != nil {
		return err
	}
	rec := obs.NewRecorder(*spanCap, 0)
	opts := artc.Options{
		Method:      artc.Method(*method),
		Obs:         rec,
		ObsInterval: *interval,
	}
	var rep *artc.Report
	var sst *artc.ShardStats
	if *shards != 0 {
		n := *shards
		if n < 0 {
			n = 0
		}
		so := artc.ShardOptions{
			Shards: n,
			Target: conf,
			Init: func(sys *stack.System) error {
				if err := magritte.InitTarget(sys, b, conf.Platform == stack.Linux); err != nil {
					return err
				}
				if *warm {
					sys.WarmAll()
				}
				return nil
			},
			SliceActions: *sliceActions,
			SliceMax:     *sliceMax,
		}
		so.SliceProfile, err = resolveSliceProfile(*sliceProfile, openStore(*cacheDir, *noCache), b, opts, so, *quiet)
		if err != nil {
			return err
		}
		rep, sst, err = artc.ReplaySharded(b, opts, so)
		if err != nil {
			return err
		}
	} else {
		k := sim.NewKernel()
		sys := stack.New(k, conf)
		if err := magritte.InitTarget(sys, b, conf.Platform == stack.Linux); err != nil {
			return err
		}
		if *warm {
			sys.WarmAll()
		}
		if rep, err = artc.Replay(sys, b, opts); err != nil {
			return err
		}
	}

	if *noSamples {
		rec.ClearSamples()
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := rec.WriteChrome(w); err != nil {
		return err
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "replayed %d actions on %s in %v (virtual), errors=%d\n",
			rep.Actions, conf.Name, rep.Elapsed, rep.Errors)
		if sst != nil {
			fmt.Fprintf(os.Stderr, "sharded: profiled=%v fingerprint=%016x\n", sst.Profiled, sst.PlanFingerprint)
		}
		fmt.Fprint(os.Stderr, rec.Summary())
		fmt.Fprint(os.Stderr, rep.CriticalPath(b).Format(*critHops))
	}
	return nil
}

func inspectCmd(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	benchPath := fs.String("bench", "", "benchmark file (required)")
	fs.Parse(args)
	if *benchPath == "" {
		return fmt.Errorf("-bench is required")
	}
	bf, err := os.Open(*benchPath)
	if err != nil {
		return err
	}
	defer bf.Close()
	b, err := artc.DecodeAny(bf)
	if err != nil {
		return err
	}
	st := b.Graph.Stats(b.Analysis)
	tg := core.TemporalGraph(b.Analysis)
	tst := tg.Stats(b.Analysis)
	fmt.Printf("platform:      %s\n", b.Platform)
	fmt.Printf("modes:         %s\n", artc.ModesString(b.Modes))
	fmt.Printf("records:       %d\n", len(b.Trace.Records))
	fmt.Printf("threads:       %d\n", len(b.Trace.Threads()))
	fmt.Printf("snapshot:      %d entries\n", len(b.Snapshot.Entries))
	fmt.Printf("artc edges:    %d enforced of %d raw (mean span %v, max %v)\n",
		st.Edges, st.Edges+st.ReducedEdges, st.MeanLength, st.MaxLength)
	fmt.Printf("temporal edges: %d (mean span %v)\n", tst.Edges, tst.MeanLength)
	fmt.Printf("warnings:      %d\n", len(b.Analysis.Warnings))
	return nil
}

// chaosCmd replays a Magritte trace under seeded fault injection,
// either sweeping many seeds (-seeds) or exporting one seed's
// deterministic outcome (-seed with -o). Any invariant violation makes
// the command exit nonzero, so CI can gate on it directly.
func chaosCmd(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	spec := fs.String("magritte", "", "Magritte trace name to generate and replay (required)")
	genScale := fs.Float64("gen-scale", 0.02, "Magritte generation scale")
	genSeed := fs.Int64("gen-seed", 5, "Magritte generation seed")
	target := fs.String("target", "linux-ext4-ssd-noop", "target machine: platform-fs-device[-sched]")
	seedBase := fs.Uint64("seed", 1, "base fault seed")
	seeds := fs.Int("seeds", 1, "number of consecutive seeds to sweep")
	sysRate := fs.Float64("syscall-rate", 0.02, "syscall fault probability per attempt")
	errno := fs.String("errno", "EIO", "errno injected syscall faults return")
	devRate := fs.Float64("storage-error-rate", 0.02, "transient device error probability per completion")
	slowRate := fs.Float64("storage-slow-rate", 0.02, "slow-IO tail-latency probability per completion")
	retries := fs.Int("retries", 4, "replayer retry attempts per injected failure (1 = no retry)")
	watchdog := fs.Duration("watchdog", time.Minute, "virtual-time stall watchdog window (0 = off)")
	verify := fs.Bool("verify", false, "replay each seed twice and demand identical results")
	out := fs.String("o", "", "write the first seed's export JSON (implies span recording)")
	quiet := fs.Bool("quiet", false, "suppress per-seed summaries")
	shards := fs.Int("shards", 0, "replay components in parallel with this worker bound (0 = serial replayer)")
	sliceActions := fs.Int("slice-actions", 0, "with -shards: split components larger than this many actions along resource cuts (0 = off)")
	sliceMax := fs.Int("slice-max", 0, "cap on slices per component (0 = no cap)")
	cacheDir, noCache := cacheFlags(fs)
	fs.Parse(args)

	if *spec == "" {
		return fmt.Errorf("-magritte is required")
	}
	sp, ok := magritte.SpecByName(*spec)
	if !ok {
		return fmt.Errorf("unknown Magritte trace %q", *spec)
	}
	gen, err := magritte.Generate(sp, magritte.GenOptions{Scale: *genScale, Seed: *genSeed})
	if err != nil {
		return err
	}
	b, cst, err := artifact.CompileTrace(openStore(*cacheDir, *noCache), gen.Trace, gen.Snapshot, core.DefaultModes())
	if err != nil {
		return err
	}
	reportCache(cst, *quiet)
	conf, err := targetConfig(*target, 0, 0)
	if err != nil {
		return err
	}
	opts := chaostest.Options{
		Bench:  b,
		Target: conf,
		Plan: fault.Plan{
			Syscall:  fault.SyscallPlan{Rate: *sysRate, Errno: *errno},
			Storage:  fault.StoragePlan{ErrorRate: *devRate, SlowRate: *slowRate},
			Retry:    fault.RetryPlan{MaxAttempts: *retries},
			Watchdog: *watchdog,
		},
		Verify:   *verify,
		Obs:      *out != "",
		Shards:   *shards,
		Slice:    *sliceActions,
		SliceMax: *sliceMax,
	}

	var results []*chaostest.Result
	if *seeds <= 1 {
		res, rec := chaostest.RunSeed(opts, *seedBase)
		results = append(results, &res)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			if err := chaostest.WriteExport(f, &res, rec); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	} else {
		if *out != "" {
			return fmt.Errorf("-o requires a single seed (drop -seeds)")
		}
		sw := chaostest.Sweep(opts, chaostest.Seeds(*seedBase, *seeds))
		for i := range sw {
			results = append(results, &sw[i])
		}
	}

	bad := 0
	for _, res := range results {
		if !*quiet {
			fmt.Println(res)
		}
		for _, v := range res.Violations {
			bad++
			fmt.Fprintf(os.Stderr, "seed %d: %s\n", res.Seed, v)
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d invariant violation(s) across %d seed(s)", bad, len(results))
	}
	return nil
}
