// Command rootbench regenerates the paper's tables and figures.
//
// Usage:
//
//	rootbench -exp fig5a              # one experiment
//	rootbench -exp all                # everything
//	rootbench -exp table3 -quick      # reduced scale
//	rootbench -list
//
// Experiments: table3, fig5a, fig5b, fig5c, fig5d, fig6, fig7, fig8,
// fig9, fig10.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rootreplay/internal/experiments"
)

// formatter is the common shape of experiment results.
type formatter interface{ Format() string }

func main() {
	exp := flag.String("exp", "all", "experiment to run (or 'all')")
	quick := flag.Bool("quick", false, "use reduced workload sizes")
	list := flag.Bool("list", false, "list experiments")
	fillsyncPairs := flag.Int("fillsync-pairs", 7, "fillsync source/target pairs in fig7 (0 = all 49)")
	fig10Traces := flag.Int("fig10-traces", 12, "Magritte traces in fig10 (0 = all 34)")
	flag.Parse()

	runners := []struct {
		name string
		run  func(experiments.Params) (formatter, error)
	}{
		{"table3", func(p experiments.Params) (formatter, error) { return experiments.Table3(p) }},
		{"fig5a", func(p experiments.Params) (formatter, error) { return experiments.Fig5a(p) }},
		{"fig5b", func(p experiments.Params) (formatter, error) { return experiments.Fig5b(p) }},
		{"fig5c", func(p experiments.Params) (formatter, error) { return experiments.Fig5c(p) }},
		{"fig5d", func(p experiments.Params) (formatter, error) { return experiments.Fig5d(p) }},
		{"fig6", func(p experiments.Params) (formatter, error) { return experiments.Fig6(p) }},
		{"fig7", func(p experiments.Params) (formatter, error) { return experiments.Fig7(p, *fillsyncPairs) }},
		{"fig8", func(p experiments.Params) (formatter, error) { return experiments.Fig8(p) }},
		{"fig9", func(p experiments.Params) (formatter, error) { return experiments.Fig9(p) }},
		{"fig10", func(p experiments.Params) (formatter, error) { return experiments.Fig10(p, *fig10Traces) }},
		{"ablation", func(p experiments.Params) (formatter, error) { return experiments.Ablation(p) }},
	}

	if *list {
		for _, r := range runners {
			fmt.Println(r.name)
		}
		return
	}

	params := experiments.Default()
	if *quick {
		params = experiments.Quick()
	}

	want := strings.Split(*exp, ",")
	matched := false
	for _, r := range runners {
		if *exp != "all" && !contains(want, r.name) {
			continue
		}
		matched = true
		fmt.Printf("== %s ==\n", r.name)
		res, err := r.run(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rootbench: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println(res.Format())
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "rootbench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
