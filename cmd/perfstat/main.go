// Command perfstat measures the compiler and replayer hot path on a
// fixed mid-size Magritte trace and writes a small JSON record —
// records/sec through Compile plus dependency-graph edge counts — so
// the perf trajectory of the repo can be tracked across revisions
// (scripts/ci.sh appends it as BENCH_<tag>.json).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"testing"
	"time"

	"rootreplay/internal/artc"
	"rootreplay/internal/artifact"
	"rootreplay/internal/core"
	"rootreplay/internal/magritte"
	"rootreplay/internal/obs"
	"rootreplay/internal/sim"
	"rootreplay/internal/sim/simbench"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
	"rootreplay/internal/workload"
)

// Stats is the serialized measurement.
type Stats struct {
	Trace   string  `json:"trace"`
	Scale   float64 `json:"scale"`
	Records int     `json:"records"`
	// Compile throughput.
	CompileIters     int     `json:"compile_iters"`
	CompileNsPerOp   int64   `json:"compile_ns_per_op"`
	RecordsPerSecond float64 `json:"records_per_second"`
	// Trace ingest: the benchmark trace rendered as strace text and fed
	// back through the fast parser, sequentially and sharded.
	ParseRecords                 int     `json:"parse_records"`
	ParseNs                      int64   `json:"parse_ns"`
	ParseRecordsPerSecond        float64 `json:"parse_records_per_second"`
	ParseAllocsPerRecord         float64 `json:"parse_allocs_per_record"`
	ParseShardedNs               int64   `json:"parse_sharded_ns"`
	ParseShardedRecordsPerSecond float64 `json:"parse_sharded_records_per_second"`
	// Dependency-graph structure of the compiled benchmark.
	RawEdges      int `json:"raw_edges"`
	EnforcedEdges int `json:"enforced_edges"`
	ReducedEdges  int `json:"reduced_edges"`
	TemporalEdges int `json:"temporal_edges"`
	// Replay wall time (host) for one ARTC replay of the benchmark.
	ReplayNs int64 `json:"replay_ns"`
	// Artifact cache: size of the compiled binary artifact, wall time to
	// load it back into a ready-to-replay benchmark, and whether the
	// measured load was a cache hit. A warm replay pays CachedLoadNs
	// where a cold one pays ParseNs + CompileNsPerOp.
	ArtifactBytes int64 `json:"artifact_bytes"`
	CachedLoadNs  int64 `json:"cached_load_ns"`
	CacheHit      bool  `json:"cache_hit"`
	// Sharded replay over the components scale corpus (tracegen -family
	// components): serial vs component-partitioned wall time on the same
	// benchmark, the partition's shape, and the resulting speedup.
	ComponentsRecords    int     `json:"components_records"`
	ComponentsReplayNs   int64   `json:"components_replay_ns"`
	ReplayShardedNs      int64   `json:"replay_sharded_ns"`
	ShardCount           int     `json:"shard_count"`
	CrossEdges           int     `json:"cross_edges"`
	ShardSpeedup         float64 `json:"shard_speedup"`
	ComponentsGoMaxProcs int     `json:"components_gomaxprocs"`
	// Sliced replay over the pipeline corpus (tracegen -family pipeline):
	// one weakly-connected component the partitioner cannot split, cut
	// into 8 slices by resource-cut slicing and co-replayed under the
	// epoch clock-exchange coordinator. Both sides replay with warmed
	// caches (the device-independence precondition for sliced
	// byte-identity), so the comparison isolates coordination cost.
	PipelineRecords    int     `json:"pipeline_records"`
	PipelineReplayNs   int64   `json:"pipeline_replay_ns"`
	PipelineSlicedNs   int64   `json:"pipeline_sliced_ns"`
	PipelineSlices     int     `json:"pipeline_slices"`
	PipelineCrossEdges int     `json:"pipeline_cross_edges"`
	SliceSpeedup       float64 `json:"slice_speedup"`
	PipelineGoMaxProcs int     `json:"pipeline_gomaxprocs"`
	// Profile-guided re-slicing over the hot-stage pipeline variant
	// (tracegen -family pipeline -hot-stage): one stage's private writes
	// are several pages wide, a cost skew invisible to the static
	// slicer's action-count balance but visible to a profiling replay's
	// observed per-atom cost. Serial, static-cut sliced, and
	// profile-guided re-cut wall times on the same corpus; the profiled
	// run re-cuts with the profile the static sliced run emitted, so the
	// delta between PipelineHotSlicedNs and SliceProfiledNs is what one
	// profiled re-cut buys.
	PipelineHotRecords       int     `json:"pipeline_hot_records"`
	PipelineHotStage         int     `json:"pipeline_hot_stage"`
	PipelineHotPages         int     `json:"pipeline_hot_pages"`
	PipelineHotSlices        int     `json:"pipeline_hot_slices"`
	PipelineHotReplayNs      int64   `json:"pipeline_hot_replay_ns"`
	PipelineHotSlicedNs      int64   `json:"pipeline_hot_sliced_ns"`
	PipelineHotStaticSpeedup float64 `json:"pipeline_hot_static_speedup"`
	SliceProfiledNs          int64   `json:"slice_profiled_ns"`
	SliceProfiledSpeedup     float64 `json:"slice_profiled_speedup"`
	// Observability: wall time of an obs-instrumented replay (the delta
	// against ReplayNs is the recorder's enabled-path overhead), recorded
	// volumes, and the replay's critical path.
	ObsReplayNs       int64 `json:"obs_replay_ns"`
	ObsSpans          int   `json:"obs_spans"`
	ObsSamples        int   `json:"obs_samples"`
	CritPathHops      int   `json:"critpath_hops"`
	CritPathElapsedNs int64 `json:"critpath_elapsed_ns"`
	CritPathInCallNs  int64 `json:"critpath_incall_ns"`
	CritPathSlackNs   int64 `json:"critpath_slack_ns"`
	// Kernel microbenchmarks (internal/sim/simbench): the event-queue,
	// wake, handoff, and completion hot paths in isolation.
	KernelTimerChurnNsPerOp     float64 `json:"kernel_timer_churn_ns_per_op"`
	KernelTimerChurnAllocsPerOp float64 `json:"kernel_timer_churn_allocs_per_op"`
	KernelSleepChurnNsPerOp     float64 `json:"kernel_sleep_churn_ns_per_op"`
	KernelPingPongNsPerOp       float64 `json:"kernel_pingpong_ns_per_op"`
	KernelCompletionNsPerOp     float64 `json:"kernel_completion_ns_per_op"`

	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// GoMaxProcs is the effective GOMAXPROCS of the single-proc legacy
	// sections above; the sharded sections record their own pinned
	// values, making every measurement reproducible from the snapshot
	// alone (NumCPU says what the host had, not what the run used).
	GoMaxProcs int `json:"gomaxprocs"`
}

// measureComponents times the serial and sharded replayers over the
// components scale corpus (the shape sharding parallelizes perfectly)
// and records the partition's structure.
func measureComponents(st *Stats, n, ops int, skew float64, procs int) {
	// Pin the host proc count for the serial/sharded pair so the
	// comparison is reproducible across hosts (and measured last, so the
	// pin can't disturb the single-proc legacy metrics above).
	if procs > 0 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	}
	st.ComponentsGoMaxProcs = runtime.GOMAXPROCS(0)
	tr, snap, err := workload.SynthComponents(workload.Components{N: n, Ops: ops, Skew: skew, Seed: 7})
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfstat: components:", err)
		os.Exit(1)
	}
	b, err := artc.Compile(tr, snap, core.DefaultModes())
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfstat: components compile:", err)
		os.Exit(1)
	}
	st.ComponentsRecords = len(tr.Records)
	target := magritte.DefaultSuiteOptions().Target

	t0 := time.Now()
	k := sim.NewKernel()
	sys := stack.New(k, target)
	if err := artc.Init(sys, b, ""); err != nil {
		fmt.Fprintln(os.Stderr, "perfstat: components init:", err)
		os.Exit(1)
	}
	if _, err := artc.Replay(sys, b, artc.Options{}); err != nil {
		fmt.Fprintln(os.Stderr, "perfstat: components replay:", err)
		os.Exit(1)
	}
	st.ComponentsReplayNs = time.Since(t0).Nanoseconds()

	t0 = time.Now()
	_, shst, err := artc.ReplaySharded(b, artc.Options{}, artc.ShardOptions{
		Target: target,
		Init:   func(sys *stack.System) error { return artc.Init(sys, b, "") },
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfstat: components sharded replay:", err)
		os.Exit(1)
	}
	st.ReplayShardedNs = time.Since(t0).Nanoseconds()
	st.ShardCount = shst.Components
	st.CrossEdges = shst.CrossEdges
	if st.ReplayShardedNs > 0 {
		st.ShardSpeedup = float64(st.ComponentsReplayNs) / float64(st.ReplayShardedNs)
	}
}

// measurePipeline times the serial and sliced replayers over the
// pipeline slicing corpus: a single weakly-connected component the
// component partitioner keeps whole, split 8 ways along resource cuts.
// The measured shape is the fsync-heavy writeback variant replayed
// cold: serial fsync writeback scans the one machine's whole resident
// cache while each slice replica scans only its own working set, the
// same per-replica state reduction the components corpus measures.
// Slicing it needs SliceDeviceSync, so this is a perf-only regime —
// the byte-identity contract is asserted separately over warmed,
// fsync-free corpora (internal/artc slice tests, Magritte suite).
func measurePipeline(st *Stats, stages, ops, handoff, fsync, slices, procs int) {
	if procs > 0 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	}
	st.PipelineGoMaxProcs = runtime.GOMAXPROCS(0)
	tr, snap, err := workload.SynthPipeline(workload.Pipeline{
		Stages: stages, Ops: ops, Handoff: handoff, Fsync: fsync, FileBytes: 8 << 20, Seed: 7,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfstat: pipeline:", err)
		os.Exit(1)
	}
	b, err := artc.Compile(tr, snap, core.DefaultModes())
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfstat: pipeline compile:", err)
		os.Exit(1)
	}
	st.PipelineRecords = len(tr.Records)
	target := magritte.DefaultSuiteOptions().Target

	t0 := time.Now()
	k := sim.NewKernel()
	sys := stack.New(k, target)
	if err := artc.Init(sys, b, ""); err != nil {
		fmt.Fprintln(os.Stderr, "perfstat: pipeline init:", err)
		os.Exit(1)
	}
	if _, err := artc.Replay(sys, b, artc.Options{}); err != nil {
		fmt.Fprintln(os.Stderr, "perfstat: pipeline replay:", err)
		os.Exit(1)
	}
	st.PipelineReplayNs = time.Since(t0).Nanoseconds()

	t0 = time.Now()
	_, shst, err := artc.ReplaySharded(b, artc.Options{}, artc.ShardOptions{
		Target:          target,
		Init:            func(sys *stack.System) error { return artc.Init(sys, b, "") },
		SliceActions:    len(tr.Records)/slices + 1,
		SliceDeviceSync: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfstat: pipeline sliced replay:", err)
		os.Exit(1)
	}
	st.PipelineSlicedNs = time.Since(t0).Nanoseconds()
	st.PipelineSlices = shst.Components
	st.PipelineCrossEdges = shst.CrossEdges
	if st.PipelineSlicedNs > 0 {
		st.SliceSpeedup = float64(st.PipelineReplayNs) / float64(st.PipelineSlicedNs)
	}
}

// measurePipelineHot times serial, static-cut sliced, and
// profile-guided sliced replays over the hot-stage pipeline variant.
// The slice count is deliberately smaller than the stage count so the
// static cut must co-locate the hot stage's atom with a cold one —
// action counts are identical across stages, so the static slicer
// cannot see the skew — and the profiled re-cut can isolate it.
func measurePipelineHot(st *Stats, stages, ops, handoff, fsync, hotStage, hotPages, slices, procs int, fileMB int64) {
	if procs > 0 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	}
	tr, snap, err := workload.SynthPipeline(workload.Pipeline{
		Stages: stages, Ops: ops, Handoff: handoff, Fsync: fsync, FileBytes: fileMB << 20, Seed: 7,
		HotStage: hotStage, HotPages: hotPages,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfstat: hot pipeline:", err)
		os.Exit(1)
	}
	b, err := artc.Compile(tr, snap, core.DefaultModes())
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfstat: hot pipeline compile:", err)
		os.Exit(1)
	}
	st.PipelineHotRecords = len(tr.Records)
	st.PipelineHotStage = hotStage
	st.PipelineHotPages = hotPages
	target := magritte.DefaultSuiteOptions().Target

	t0 := time.Now()
	k := sim.NewKernel()
	sys := stack.New(k, target)
	if err := artc.Init(sys, b, ""); err != nil {
		fmt.Fprintln(os.Stderr, "perfstat: hot pipeline init:", err)
		os.Exit(1)
	}
	if _, err := artc.Replay(sys, b, artc.Options{}); err != nil {
		fmt.Fprintln(os.Stderr, "perfstat: hot pipeline replay:", err)
		os.Exit(1)
	}
	st.PipelineHotReplayNs = time.Since(t0).Nanoseconds()

	so := artc.ShardOptions{
		Target:          target,
		Init:            func(sys *stack.System) error { return artc.Init(sys, b, "") },
		SliceActions:    len(tr.Records)/slices + 1,
		SliceDeviceSync: true,
	}
	t0 = time.Now()
	_, shst, err := artc.ReplaySharded(b, artc.Options{}, so)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfstat: hot pipeline sliced replay:", err)
		os.Exit(1)
	}
	st.PipelineHotSlicedNs = time.Since(t0).Nanoseconds()
	st.PipelineHotSlices = shst.Components
	if st.PipelineHotSlicedNs > 0 {
		st.PipelineHotStaticSpeedup = float64(st.PipelineHotReplayNs) / float64(st.PipelineHotSlicedNs)
	}
	if shst.Profile == nil {
		fmt.Fprintln(os.Stderr, "perfstat: hot pipeline sliced replay produced no profile; profiled metrics unset")
		return
	}

	so.SliceProfile = shst.Profile
	t0 = time.Now()
	_, _, err = artc.ReplaySharded(b, artc.Options{}, so)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfstat: hot pipeline profiled replay:", err)
		os.Exit(1)
	}
	st.SliceProfiledNs = time.Since(t0).Nanoseconds()
	if st.SliceProfiledNs > 0 {
		st.SliceProfiledSpeedup = float64(st.PipelineHotReplayNs) / float64(st.SliceProfiledNs)
	}
}

// microbench runs fn through the testing harness and returns ns/op and
// allocs/op.
func microbench(fn func(b *testing.B)) (nsPerOp, allocsPerOp float64) {
	r := testing.Benchmark(fn)
	if r.N == 0 {
		return 0, 0
	}
	return float64(r.T.Nanoseconds()) / float64(r.N), float64(r.AllocsPerOp())
}

func main() {
	out := flag.String("o", "BENCH_pr4.json", "output JSON path")
	name := flag.String("trace", "pages_docphoto15", "magritte trace name")
	scale := flag.Float64("scale", 0.02, "magritte generation scale")
	iters := flag.Int("iters", 5, "compile iterations to average")
	compOps := flag.Int("components-ops", 3300000, "components corpus op budget (~3.1 records each; 0 skips the sharded-replay measurement)")
	compN := flag.Int("components", 64, "components corpus group count")
	compSkew := flag.Float64("components-skew", 0.5, "components corpus size skew")
	compProcs := flag.Int("components-procs", 8, "GOMAXPROCS pinned for the components serial/sharded comparison (0 inherits)")
	pipeOps := flag.Int("pipeline-ops", 16000, "pipeline corpus ops per stage (0 skips the sliced-replay measurement)")
	pipeStages := flag.Int("pipeline-stages", 8, "pipeline corpus stage count")
	pipeHandoff := flag.Int("pipeline-handoff", 64, "pipeline corpus ops between boundary exchanges")
	pipeFsync := flag.Int("pipeline-fsync", 2, "pipeline corpus fsync interval in private write sessions (0 disables fsync)")
	pipeSlices := flag.Int("pipeline-slices", 8, "slice count for the sliced pipeline replay")
	pipeProcs := flag.Int("pipeline-procs", 8, "GOMAXPROCS pinned for the pipeline serial/sliced comparison (0 inherits)")
	pipeHotStage := flag.Int("pipeline-hot-stage", 2, "hot stage (1-based) for the profiled re-slicing comparison (0 skips it)")
	pipeHotOps := flag.Int("pipeline-hot-ops", 3000, "hot pipeline corpus ops per stage")
	pipeHotPages := flag.Int("pipeline-hot-pages", 512, "pages per private write on the hot stage")
	pipeHotSlices := flag.Int("pipeline-hot-slices", 4, "slice count for the hot pipeline replays (fewer than stages, so the static cut must co-locate the hot atom)")
	pipeHotFileMB := flag.Int64("pipeline-hot-filemb", 192, "hot pipeline corpus file size in MiB (caps the hot stage's resident footprint; large enough that cold stages never saturate and the hot atom dominates the writeback scan)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write a heap profile to this path")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfstat:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "perfstat:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "perfstat:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "perfstat:", err)
			}
			f.Close()
		}()
	}

	spec, ok := magritte.SpecByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "perfstat: unknown trace %q\n", *name)
		os.Exit(1)
	}
	gen, err := magritte.Generate(spec, magritte.GenOptions{Scale: *scale, Seed: 5})
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfstat:", err)
		os.Exit(1)
	}

	// Minimum over the iterations, like the replay timing below: the
	// first compile pays cold caches and the allocator's ramp-up, and a
	// mean over few iterations is dominated by that outlier on a busy
	// host. The minimum estimates the steady-state cost. The collector
	// is quiesced around each min-loop (here and for the warm artifact
	// load below, identically) so millisecond-scale regions measure the
	// operation, not the GC pacer's reaction to the process's live heap.
	gcQuiet := func() func() {
		runtime.GC()
		old := debug.SetGCPercent(-1)
		return func() { debug.SetGCPercent(old) }
	}
	var b *artc.Benchmark
	var perOp int64
	restore := gcQuiet()
	for i := 0; i < *iters; i++ {
		// Collect between iterations, outside the timed region: the
		// previous iteration's garbage is recycled into warm spans and
		// the pacer stays asleep inside the measurement.
		runtime.GC()
		t0 := time.Now()
		b, err = artc.Compile(gen.Trace, gen.Snapshot, core.DefaultModes())
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfstat:", err)
			os.Exit(1)
		}
		if d := time.Since(t0).Nanoseconds(); i == 0 || d < perOp {
			perOp = d
		}
	}
	restore()

	// Artifact cache: store the compiled benchmark once, then time the
	// warm load path (read + binary decode into a ready-to-replay
	// benchmark). Minimum over the iterations, like the compile timing.
	var cachedLoadNs int64
	var artifactBytes int64
	cacheHit := false
	if cacheDir, err := os.MkdirTemp("", "perfstat-cache-*"); err == nil {
		defer os.RemoveAll(cacheDir)
		store, err := artifact.Open(cacheDir, 0)
		if err == nil {
			key, err := artifact.KeyTrace(gen.Trace, gen.Snapshot, core.DefaultModes())
			if err == nil {
				if artifactBytes, err = store.Put(key, b); err == nil {
					// The load is several times cheaper than a compile, so
					// spend more samples on it: the minimum of a handful of
					// millisecond-scale runs on a busy host is still mostly
					// scheduler noise.
					loadIters := *iters * 5
					restore := gcQuiet()
					for i := 0; i < loadIters; i++ {
						runtime.GC()
						t0 := time.Now()
						wb, _, err := store.Get(key)
						if err != nil || wb == nil {
							break
						}
						cacheHit = true
						if d := time.Since(t0).Nanoseconds(); i == 0 || d < cachedLoadNs {
							cachedLoadNs = d
						}
					}
					restore()
				}
			}
		}
		if !cacheHit {
			fmt.Fprintln(os.Stderr, "perfstat: warm artifact load failed; cached_load_ns unset")
		}
	}

	st := Stats{
		Trace:          *name,
		Scale:          *scale,
		Records:        len(gen.Trace.Records),
		CompileIters:   *iters,
		CompileNsPerOp: perOp,
		RawEdges:       len(b.Graph.Edges) + b.Graph.ReducedEdges,
		EnforcedEdges:  len(b.Graph.Edges),
		ReducedEdges:   b.Graph.ReducedEdges,
		TemporalEdges:  len(core.TemporalGraph(b.Analysis).Edges),
		ArtifactBytes:  artifactBytes,
		CachedLoadNs:   cachedLoadNs,
		CacheHit:       cacheHit,
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
	}
	if perOp > 0 {
		st.RecordsPerSecond = float64(st.Records) / (float64(perOp) / 1e9)
	}

	// Minimum of a few runs: single-shot replay wall time swings by ~10%
	// on a busy host, and the minimum is the least-noisy estimator of
	// the true cost.
	const replayRuns = 3
	for i := 0; i < replayRuns; i++ {
		rt0 := time.Now()
		if _, _, err := magritte.ThreadTimeRun(b, magritte.DefaultSuiteOptions().Target, true); err != nil {
			fmt.Fprintln(os.Stderr, "perfstat: replay:", err)
			os.Exit(1)
		}
		if ns := time.Since(rt0).Nanoseconds(); i == 0 || ns < st.ReplayNs {
			st.ReplayNs = ns
		}
	}

	var rec *obs.Recorder
	var rep *artc.Report
	for i := 0; i < replayRuns; i++ {
		rec = obs.NewRecorder(0, 0)
		ot0 := time.Now()
		k := sim.NewKernel()
		sys := stack.New(k, magritte.DefaultSuiteOptions().Target)
		if err := magritte.InitTarget(sys, b, true); err != nil {
			fmt.Fprintln(os.Stderr, "perfstat: obs init:", err)
			os.Exit(1)
		}
		var err error
		rep, err = artc.Replay(sys, b, artc.Options{Obs: rec})
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfstat: obs replay:", err)
			os.Exit(1)
		}
		if ns := time.Since(ot0).Nanoseconds(); i == 0 || ns < st.ObsReplayNs {
			st.ObsReplayNs = ns
		}
	}
	st.ObsSpans = len(rec.Spans())
	st.ObsSamples = len(rec.Samples())
	cp := rep.CriticalPath(b)
	st.CritPathHops = len(cp.Hops)
	st.CritPathElapsedNs = cp.Elapsed.Nanoseconds()
	st.CritPathInCallNs = cp.InCall.Nanoseconds()
	st.CritPathSlackNs = cp.Slack.Nanoseconds()

	// Ingest throughput: render the trace as strace text once, then
	// time the fast parser over it. Records are counted from a re-parse
	// because calls outside the strace encoder's set drop on the way
	// through.
	var straceBuf bytes.Buffer
	if err := trace.EncodeStrace(&straceBuf, gen.Trace); err != nil {
		fmt.Fprintln(os.Stderr, "perfstat: encode strace:", err)
		os.Exit(1)
	}
	straceText := straceBuf.Bytes()
	reparsed, err := trace.ParseStrace(bytes.NewReader(straceText))
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfstat: parse strace:", err)
		os.Exit(1)
	}
	st.ParseRecords = len(reparsed.Records)
	pr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := trace.ParseStrace(bytes.NewReader(straceText)); err != nil {
				b.Fatal(err)
			}
		}
	})
	if pr.N > 0 {
		st.ParseNs = pr.T.Nanoseconds() / int64(pr.N)
		if st.ParseNs > 0 {
			st.ParseRecordsPerSecond = float64(st.ParseRecords) / (float64(st.ParseNs) / 1e9)
		}
		if st.ParseRecords > 0 {
			st.ParseAllocsPerRecord = float64(pr.AllocsPerOp()) / float64(st.ParseRecords)
		}
	}
	ps := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := trace.ParseStraceSharded(bytes.NewReader(straceText), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	if ps.N > 0 {
		st.ParseShardedNs = ps.T.Nanoseconds() / int64(ps.N)
		if st.ParseShardedNs > 0 {
			st.ParseShardedRecordsPerSecond = float64(st.ParseRecords) / (float64(st.ParseShardedNs) / 1e9)
		}
	}

	st.KernelTimerChurnNsPerOp, st.KernelTimerChurnAllocsPerOp = microbench(simbench.TimerChurn)
	st.KernelSleepChurnNsPerOp, _ = microbench(simbench.SleepChurn)
	st.KernelPingPongNsPerOp, _ = microbench(simbench.PingPong)
	st.KernelCompletionNsPerOp, _ = microbench(simbench.CompletionStorm)

	if *compOps > 0 {
		measureComponents(&st, *compN, *compOps, *compSkew, *compProcs)
	}
	if *pipeOps > 0 {
		measurePipeline(&st, *pipeStages, *pipeOps, *pipeHandoff, *pipeFsync, *pipeSlices, *pipeProcs)
		if *pipeHotStage > 0 {
			measurePipelineHot(&st, *pipeStages, *pipeHotOps, *pipeHandoff, *pipeFsync,
				*pipeHotStage, *pipeHotPages, *pipeHotSlices, *pipeProcs, *pipeHotFileMB)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfstat:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(st); err != nil {
		fmt.Fprintln(os.Stderr, "perfstat:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "perfstat:", err)
		os.Exit(1)
	}
	fmt.Printf("perfstat: %d records, compile %.2f ms (%.0f records/s), edges raw=%d enforced=%d temporal=%d -> %s\n",
		st.Records, float64(perOp)/1e6, st.RecordsPerSecond,
		st.RawEdges, st.EnforcedEdges, st.TemporalEdges, *out)
	fmt.Printf("perfstat: artifact %d bytes, warm load %.2f ms (hit=%v) vs parse+compile %.2f ms\n",
		st.ArtifactBytes, float64(st.CachedLoadNs)/1e6, st.CacheHit,
		float64(st.ParseNs+st.CompileNsPerOp)/1e6)
	fmt.Printf("perfstat: parse %.2f ms (%.0f records/s, %.2f allocs/record), sharded %.2f ms (%.0f records/s) over %d records\n",
		float64(st.ParseNs)/1e6, st.ParseRecordsPerSecond, st.ParseAllocsPerRecord,
		float64(st.ParseShardedNs)/1e6, st.ParseShardedRecordsPerSecond, st.ParseRecords)
	fmt.Printf("perfstat: obs replay %.2f ms (plain %.2f ms), %d spans, %d samples, critical path %d hops (in-call %v, slack %v)\n",
		float64(st.ObsReplayNs)/1e6, float64(st.ReplayNs)/1e6, st.ObsSpans, st.ObsSamples,
		st.CritPathHops, cp.InCall, cp.Slack)
	if st.ComponentsRecords > 0 {
		fmt.Printf("perfstat: components corpus %d records / %d shards (%d cross edges, GOMAXPROCS=%d): serial %.0f ms, sharded %.0f ms (%.2fx)\n",
			st.ComponentsRecords, st.ShardCount, st.CrossEdges, st.ComponentsGoMaxProcs,
			float64(st.ComponentsReplayNs)/1e6, float64(st.ReplayShardedNs)/1e6, st.ShardSpeedup)
	}
	if st.PipelineRecords > 0 {
		fmt.Printf("perfstat: pipeline corpus %d records / %d slices (%d cross edges, GOMAXPROCS=%d): serial %.0f ms, sliced %.0f ms (%.2fx)\n",
			st.PipelineRecords, st.PipelineSlices, st.PipelineCrossEdges, st.PipelineGoMaxProcs,
			float64(st.PipelineReplayNs)/1e6, float64(st.PipelineSlicedNs)/1e6, st.SliceSpeedup)
	}
	if st.PipelineHotRecords > 0 {
		fmt.Printf("perfstat: hot pipeline corpus %d records (stage %d x%d pages) / %d slices: serial %.0f ms, static cut %.0f ms (%.2fx), profiled re-cut %.0f ms (%.2fx)\n",
			st.PipelineHotRecords, st.PipelineHotStage, st.PipelineHotPages, st.PipelineHotSlices,
			float64(st.PipelineHotReplayNs)/1e6,
			float64(st.PipelineHotSlicedNs)/1e6, st.PipelineHotStaticSpeedup,
			float64(st.SliceProfiledNs)/1e6, st.SliceProfiledSpeedup)
	}
	fmt.Printf("perfstat: kernel timer churn %.1f ns/op (%.0f allocs/op), sleep %.1f ns/op, ping-pong %.1f ns/op, completion %.1f ns/op\n",
		st.KernelTimerChurnNsPerOp, st.KernelTimerChurnAllocsPerOp,
		st.KernelSleepChurnNsPerOp, st.KernelPingPongNsPerOp, st.KernelCompletionNsPerOp)
}
