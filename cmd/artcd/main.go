// Command artcd is the replay-as-a-service daemon: a long-running
// multi-tenant HTTP/JSON server over the artc pipeline.
//
//	artcd -addr 127.0.0.1:8787 -cache-dir /var/cache/artc
//
// Tenants upload traces (content-addressed; identical bytes share one
// compiled artifact across tenants), then submit replay, export, and
// chaos jobs that queue onto a bounded worker pool. Replay results are
// deterministic — a pure function of (trace, options) on virtual
// clocks — so concurrent jobs cannot perturb each other, which is what
// makes the pipeline safely servable. See internal/serve for the API
// and DESIGN.md "Replay as a service" for the model.
//
// Exit contract: 0 after a clean drain (SIGINT/SIGTERM received, every
// admitted job completed), 1 on runtime failure or an incomplete drain,
// 2 on flag errors. The listen address is announced on stderr as
// "artcd: listening on <host:port>" so scripts can bind port 0 and
// parse the ephemeral port.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rootreplay/internal/artifact"
	"rootreplay/internal/serve"
)

func main() {
	fs := flag.NewFlagSet("artcd", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8787", "listen address (port 0 picks an ephemeral port)")
	cacheDir := fs.String("cache-dir", "", "compiled-artifact cache directory (default: <user cache dir>/artc)")
	noCache := fs.Bool("no-cache", false, "disable the compiled-artifact cache")
	workers := fs.Int("workers", 0, "job executor workers (0 = GOMAXPROCS)")
	queueBound := fs.Int("queue-bound", serve.DefaultQueueBound, "max queued jobs per tenant before 429")
	maxUploadMB := fs.Int64("max-upload-mb", serve.DefaultMaxUploadBytes>>20, "max bytes per trace upload (MiB)")
	budgetMB := fs.Int64("tenant-budget-mb", serve.DefaultTenantBudgetBytes>>20, "total upload bytes per tenant (MiB)")
	drainTimeout := fs.Duration("drain-timeout", 2*time.Minute, "max time to finish admitted jobs on SIGTERM")
	testKinds := fs.Bool("debug-sleep-kind", false, "admit the 'sleep' test job kind (CI fault lanes only)")
	fs.Parse(os.Args[1:])
	if fs.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "artcd: unexpected arguments: %v\n", fs.Args())
		os.Exit(2)
	}

	var store *artifact.Store
	if !*noCache {
		var err error
		if store, err = artifact.Open(*cacheDir, 0); err != nil {
			fmt.Fprintf(os.Stderr, "artcd: artifact cache disabled: %v\n", err)
		}
	}
	srv := serve.New(serve.Config{
		Store:             store,
		Workers:           *workers,
		QueueBound:        *queueBound,
		MaxUploadBytes:    *maxUploadMB << 20,
		TenantBudgetBytes: *budgetMB << 20,
		EnableTestKinds:   *testKinds,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "artcd: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "artcd: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "artcd: %v\n", err)
		os.Exit(1)
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "artcd: %v received, draining\n", got)
	}

	// Drain: refuse new work immediately, let every admitted job finish
	// (status polls keep answering meanwhile), then stop the listener.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Shutdown(ctx)
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	hs.Shutdown(hctx)
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "artcd: drain incomplete: %v\n", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "artcd: drained, exiting")
}
