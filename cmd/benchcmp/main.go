// Command benchcmp prints a benchstat-style comparison of two perfstat
// JSON records (BENCH_<tag>.json): every numeric field the two files
// share, with old value, new value, and the percentage delta.
//
// With -gate, the key performance metrics also become a CI gate: the
// command exits non-zero when any of them regresses by more than
// -threshold (a fraction; default 0.25 = 25%, loose enough for shared
// CI runners). Metrics have a direction — replay_ns regresses when it
// grows, records_per_second when it shrinks — and metrics absent from
// either file are skipped, so adding a new perfstat field never breaks
// old comparisons.
//
// Usage: benchcmp [-gate] [-threshold 0.25] OLD.json NEW.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// gatedMetrics maps each gated perfstat field to its direction: true
// means lower is better (times, allocs), false means higher is better
// (throughputs).
var gatedMetrics = map[string]bool{
	"replay_ns":                        true,
	"replay_sharded_ns":                true,
	"components_replay_ns":             true,
	"obs_replay_ns":                    true,
	"compile_ns_per_op":                true,
	"parse_allocs_per_record":          true,
	"kernel_timer_churn_ns_per_op":     true,
	"kernel_timer_churn_allocs_per_op": true,
	"kernel_sleep_churn_ns_per_op":     true,
	"kernel_pingpong_ns_per_op":        true,
	"kernel_completion_ns_per_op":      true,
	"pipeline_replay_ns":               true,
	"pipeline_sliced_ns":               true,
	"slice_profiled_ns":                true,
	"records_per_second":               false,
	"parse_records_per_second":         false,
	"parse_sharded_records_per_second": false,
	"shard_speedup":                    false,
	"slice_speedup":                    false,
	"slice_profiled_speedup":           false,
}

// dirMark annotates a one-sided gated metric with its direction, so the
// table says which way the fresh baseline is supposed to move once both
// sides have it: ↓ lower-better, ↑ higher-better. Ungated one-sided
// metrics stay bare.
func dirMark(k string) string {
	lowerBetter, gated := gatedMetrics[k]
	if !gated {
		return ""
	}
	if lowerBetter {
		return " ↓"
	}
	return " ↑"
}

func load(path string) (map[string]interface{}, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]interface{}
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

func main() {
	gate := flag.Bool("gate", false, "exit non-zero when a key metric regresses beyond -threshold")
	threshold := flag.Float64("threshold", 0.25, "allowed fractional regression per gated metric")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-gate] [-threshold 0.25] OLD.json NEW.json")
		os.Exit(2)
	}
	oldM, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	newM, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}

	// Walk the union of numeric fields: shared ones get a delta,
	// one-sided ones are flagged rather than dropped.
	var keys []string
	seen := map[string]bool{}
	for _, m := range []map[string]interface{}{oldM, newM} {
		for k, v := range m {
			if _, isNum := v.(float64); isNum && !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)

	width := len("metric")
	for _, k := range keys {
		if len(k) > width {
			width = len(k)
		}
	}
	fmt.Printf("%-*s  %14s  %14s  %8s\n", width, "metric", "old", "new", "delta")
	for _, k := range keys {
		ov, inOld := oldM[k].(float64)
		nv, inNew := newM[k].(float64)
		switch {
		case !inOld:
			fmt.Printf("%-*s  %14s  %14s  %8s\n", width, k, "-", formatNum(nv), "new"+dirMark(k))
			continue
		case !inNew:
			fmt.Printf("%-*s  %14s  %14s  %8s\n", width, k, formatNum(ov), "-", "gone"+dirMark(k))
			continue
		}
		delta := "~"
		if ov != 0 {
			pct := (nv - ov) / ov * 100
			// Counting fields (iters, edges, spans…) matching exactly is
			// the interesting case; rates and times get the percentage.
			if pct == 0 {
				delta = "0.00%"
			} else {
				delta = fmt.Sprintf("%+.2f%%", pct)
			}
		} else if nv != 0 {
			delta = "new"
		}
		fmt.Printf("%-*s  %14s  %14s  %8s\n", width, k, formatNum(ov), formatNum(nv), delta)
	}

	if !*gate {
		return
	}
	var regressions []string
	for _, k := range keys {
		lowerBetter, gated := gatedMetrics[k]
		if !gated {
			continue
		}
		// One-sided metrics can't regress: a field the old record lacks
		// (like replay_sharded_ns on its first appearance) has no
		// baseline, and a dropped field has nothing to measure.
		ov, inOld := oldM[k].(float64)
		nv, inNew := newM[k].(float64)
		if !inOld || !inNew {
			continue
		}
		if ov <= 0 {
			continue // nothing to compare against (e.g. zero allocs)
		}
		var worse float64 // fractional regression in the metric's bad direction
		if lowerBetter {
			worse = (nv - ov) / ov
		} else {
			worse = (ov - nv) / ov
		}
		if worse > *threshold {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %s -> %s (%.1f%% worse, threshold %.1f%%)",
				k, formatNum(ov), formatNum(nv), worse*100, *threshold*100))
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d gated metric(s) regressed:\n", len(regressions))
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, " ", r)
		}
		os.Exit(1)
	}
	fmt.Printf("gate: %d metric(s) within %.0f%% of %s\n", countGated(keys, oldM, newM), *threshold*100, flag.Arg(0))
}

// countGated reports how many keys the gate examined: gated metrics
// present in both records.
func countGated(keys []string, oldM, newM map[string]interface{}) int {
	n := 0
	for _, k := range keys {
		if _, ok := gatedMetrics[k]; !ok {
			continue
		}
		_, inOld := oldM[k].(float64)
		_, inNew := newM[k].(float64)
		if inOld && inNew {
			n++
		}
	}
	return n
}

// formatNum renders integers without a mantissa and everything else
// with two decimals, keeping columns readable for both edge counts and
// ns/op values.
func formatNum(v float64) string {
	if v == float64(int64(v)) {
		s := fmt.Sprintf("%d", int64(v))
		return s
	}
	s := fmt.Sprintf("%.2f", v)
	return strings.TrimRight(strings.TrimRight(s, "0"), ".")
}
