// Command benchcmp prints a benchstat-style comparison of two perfstat
// JSON records (BENCH_<tag>.json): every numeric field the two files
// share, with old value, new value, and the percentage delta. Exits
// non-zero on malformed input, never on a regression — the numbers are
// for humans and CI logs, not a gate.
//
// Usage: benchcmp OLD.json NEW.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

func load(path string) (map[string]interface{}, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]interface{}
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp OLD.json NEW.json")
		os.Exit(2)
	}
	oldM, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	newM, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}

	var keys []string
	for k, ov := range oldM {
		if _, isNum := ov.(float64); !isNum {
			continue
		}
		if _, ok := newM[k].(float64); ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	width := len("metric")
	for _, k := range keys {
		if len(k) > width {
			width = len(k)
		}
	}
	fmt.Printf("%-*s  %14s  %14s  %8s\n", width, "metric", "old", "new", "delta")
	for _, k := range keys {
		ov := oldM[k].(float64)
		nv := newM[k].(float64)
		delta := "~"
		if ov != 0 {
			pct := (nv - ov) / ov * 100
			// Counting fields (iters, edges, spans…) matching exactly is
			// the interesting case; rates and times get the percentage.
			if pct == 0 {
				delta = "0.00%"
			} else {
				delta = fmt.Sprintf("%+.2f%%", pct)
			}
		} else if nv != 0 {
			delta = "new"
		}
		fmt.Printf("%-*s  %14s  %14s  %8s\n", width, k, formatNum(ov), formatNum(nv), delta)
	}
}

// formatNum renders integers without a mantissa and everything else
// with two decimals, keeping columns readable for both edge counts and
// ns/op values.
func formatNum(v float64) string {
	if v == float64(int64(v)) {
		s := fmt.Sprintf("%d", int64(v))
		return s
	}
	s := fmt.Sprintf("%.2f", v)
	return strings.TrimRight(strings.TrimRight(s, "0"), ".")
}
