// Command tracegen produces traces (and their snapshots) by running
// built-in workloads on a simulated source machine, so benchmarks can be
// compiled and replayed without external trace files.
//
//	tracegen -workload randomreaders -threads 8 -o rr.trace -snapshot rr.snap
//	tracegen -workload readrandom -source linux-ext4-hdd -o db.trace -snapshot db.snap
//	tracegen -workload magritte:iphoto_edit400 -scale 0.01 -o iphoto.trace -snapshot iphoto.snap
//	tracegen -family components -components 64 -ops 100000 -skew 1.0 -o comp.trace -snapshot comp.snap
//
// Workloads: randomreaders, cachereaders, seqcompetitors, fillsync,
// readrandom, magritte:<name>. The -family flag selects a direct
// synthesizer instead: "components" emits the sharded-replay scale
// corpus (mutually independent per-thread groups, -ops total
// operations split across -components groups by -skew); "pipeline"
// emits the resource-cut slicing corpus (-stages threads chained into
// one component by shared handoff files exchanged every -handoff ops,
// -ops operations per stage; -fsync N turns it into the fsync-heavy
// writeback perf variant).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rootreplay/internal/leveldb"
	"rootreplay/internal/magritte"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
	"rootreplay/internal/workload"
)

func main() {
	wl := flag.String("workload", "randomreaders", "workload name (see doc)")
	source := flag.String("source", "linux-ext4-hdd", "source machine (platform-fs-device)")
	threads := flag.Int("threads", 4, "workload threads")
	ops := flag.Int("ops", 500, "operations per thread")
	fileMB := flag.Int64("file-mb", 1024, "per-file size for microbenchmarks (MiB)")
	records := flag.Int("records", 20000, "database records for readrandom")
	scale := flag.Float64("scale", 0.01, "magritte trace scale")
	seed := flag.Int64("seed", 1, "workload RNG seed")
	family := flag.String("family", "", `synthetic family ("components" or "pipeline"); overrides -workload`)
	comps := flag.Int("components", 16, "independent groups for -family components")
	skew := flag.Float64("skew", 0, "component size skew for -family components (weight (c+1)^-skew)")
	stages := flag.Int("stages", 8, "stage threads for -family pipeline")
	handoff := flag.Int("handoff", 16, "ops between boundary-file exchanges for -family pipeline")
	fsync := flag.Int("fsync", 0, "fsync every Nth private write for -family pipeline (0 = fsync-free, the byte-identity shape)")
	hotStage := flag.Int("hot-stage", 0, "for -family pipeline: skew this stage's (1-based) private writes to -hot-pages pages each, an unbalanced-cost shape for profile-guided re-slicing (0 = balanced)")
	hotPages := flag.Int("hot-pages", 0, "pages per private write of the -hot-stage stage (0 = family default)")
	fileMBFam := flag.Int64("family-file-mb", 0, "per-file size for -family pipeline (MiB; 0 = family default)")
	out := flag.String("o", "out.trace", "output trace file")
	snapOut := flag.String("snapshot", "out.snap", "output snapshot file")
	format := flag.String("format", "native", "trace output format: native or strace")
	flag.Parse()

	if *family != "" {
		*wl = "family:" + *family
	}
	if err := run(*wl, *source, *threads, *ops, *fileMB, *records, *scale, *seed, *comps, *skew, *stages, *handoff, *fsync, *hotStage, *hotPages, *fileMBFam, *out, *snapOut, *format); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}

func run(wl, source string, threads, ops int, fileMB int64, records int, scale float64, seed int64, comps int, skew float64, stages, handoff, fsync, hotStage, hotPages int, fileMBFam int64, out, snapOut, format string) error {
	var tr *trace.Trace
	var snap *snapshot.Snapshot
	var elapsed time.Duration

	if name, ok := strings.CutPrefix(wl, "family:"); ok {
		var err error
		switch name {
		case "components":
			tr, snap, err = workload.SynthComponents(workload.Components{
				N: comps, Ops: ops, Skew: skew, Seed: seed,
			})
		case "pipeline":
			tr, snap, err = workload.SynthPipeline(workload.Pipeline{
				Stages: stages, Ops: ops, Handoff: handoff, Fsync: fsync,
				HotStage: hotStage, HotPages: hotPages,
				FileBytes: fileMBFam << 20, Seed: seed,
			})
		default:
			return fmt.Errorf("unknown family %q", name)
		}
		if err != nil {
			return err
		}
		elapsed = tr.Duration()
	} else if name, ok := strings.CutPrefix(wl, "magritte:"); ok {
		spec, found := magritte.SpecByName(name)
		if !found {
			return fmt.Errorf("unknown magritte trace %q", name)
		}
		gen, err := magritte.Generate(spec, magritte.GenOptions{Scale: scale, Seed: seed})
		if err != nil {
			return err
		}
		tr, snap = gen.Trace, gen.Snapshot
		elapsed = tr.Duration()
	} else {
		conf, err := sourceConfig(source)
		if err != nil {
			return err
		}
		w, err := makeWorkload(wl, threads, ops, fileMB<<20, records, seed)
		if err != nil {
			return err
		}
		tr, snap, elapsed, err = workload.TraceWorkload(conf, w)
		if err != nil {
			return err
		}
	}

	tf, err := os.Create(out)
	if err != nil {
		return err
	}
	defer tf.Close()
	switch format {
	case "native":
		err = tr.Encode(tf)
	case "strace":
		// Rendered as `strace -f -ttt -T` text, the ingest benchmarks'
		// and CI lane's parser corpus.
		err = trace.EncodeStrace(tf, tr)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	sf, err := os.Create(snapOut)
	if err != nil {
		return err
	}
	defer sf.Close()
	if err := snap.Encode(sf); err != nil {
		return err
	}
	fmt.Printf("traced %d records / %d threads over %v (virtual) -> %s, %s\n",
		len(tr.Records), len(tr.Threads()), elapsed, out, snapOut)
	return nil
}

func sourceConfig(name string) (stack.Config, error) {
	return stack.ParseTarget(name, 0, 0)
}

func makeWorkload(name string, threads, ops int, fileBytes int64, records int, seed int64) (workload.Workload, error) {
	switch name {
	case "randomreaders":
		return &workload.RandomReaders{Threads: threads, ReadsPerThread: ops, FileBytes: fileBytes, Seed: seed}, nil
	case "cachereaders":
		return &workload.CacheReaders{ReadsPerThread: ops, FileBytes: fileBytes, Seed: seed}, nil
	case "seqcompetitors":
		return &workload.SeqCompetitors{ReadsPerThread: ops, FileBytes: fileBytes}, nil
	case "fillsync":
		return &leveldb.FillSync{Threads: threads, OpsPerThread: ops, ValueBytes: 512, Seed: seed}, nil
	case "readrandom":
		return &leveldb.ReadRandom{Threads: threads, OpsPerThread: ops, Records: records, ValueBytes: 512, Seed: seed}, nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}
