// Command magritte runs the Magritte benchmark suite: 34 traces of
// Apple desktop applications, replayed with ARTC.
//
//	magritte -table3                  # semantic-correctness table
//	magritte -trace iphoto_edit400    # one trace, with breakdown
//	magritte -export DIR              # write all traces + snapshots
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rootreplay/internal/magritte"
)

func main() {
	table3 := flag.Bool("table3", false, "run the full suite and print Table 3")
	one := flag.String("trace", "", "run a single named trace")
	export := flag.String("export", "", "write every trace and snapshot into a directory")
	scale := flag.Float64("scale", 0.01, "trace scale (1.0 = full Table 3 event counts)")
	seed := flag.Int64("seed", 1, "generation seed")
	noSymlink := flag.Bool("no-dev-random-symlink", false, "disable the /dev/random->urandom fix")
	flag.Parse()

	opts := magritte.DefaultSuiteOptions()
	opts.Gen.Scale = *scale
	opts.Gen.Seed = *seed
	opts.DevRandomSymlink = !*noSymlink

	switch {
	case *export != "":
		if err := exportAll(*export, opts); err != nil {
			fail(err)
		}
	case *one != "":
		spec, ok := magritte.SpecByName(*one)
		if !ok {
			fail(fmt.Errorf("unknown trace %q", *one))
		}
		res, err := magritte.RunOne(spec, opts)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s: %d events, UC errors %d, ARTC errors %d, elapsed %v\n",
			res.Name, res.Events, res.UCErrors, res.ARTCErrors, res.ARTCElapsed)
		fmt.Println("thread-time by category:")
		for _, cat := range magritte.SortedCategories(res.ThreadTimeByCat) {
			fmt.Printf("  %-12s %v\n", cat, res.ThreadTimeByCat[cat])
		}
	case *table3:
		results, err := magritte.RunSuite(opts)
		if err != nil {
			fail(err)
		}
		fmt.Print(magritte.FormatTable3(results))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func exportAll(dir string, opts magritte.SuiteOptions) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, spec := range magritte.Specs {
		o := opts.Gen
		o.Seed = opts.Gen.Seed + int64(i)*1000003
		gen, err := magritte.Generate(spec, o)
		if err != nil {
			return err
		}
		tp := filepath.Join(dir, spec.FullName()+".trace")
		sp := filepath.Join(dir, spec.FullName()+".snap")
		tf, err := os.Create(tp)
		if err != nil {
			return err
		}
		if err := gen.Trace.Encode(tf); err != nil {
			tf.Close()
			return err
		}
		tf.Close()
		sf, err := os.Create(sp)
		if err != nil {
			return err
		}
		if err := gen.Snapshot.Encode(sf); err != nil {
			sf.Close()
			return err
		}
		sf.Close()
		fmt.Printf("%-24s %7d events -> %s\n", spec.FullName(), len(gen.Trace.Records), tp)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "magritte: %v\n", err)
	os.Exit(1)
}
