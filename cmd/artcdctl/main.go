// Command artcdctl is the artcd service client, built for scripting:
// every command maps to one API call, output is machine-friendly, and
// exit codes distinguish the outcomes CI lanes assert on.
//
//	artcdctl -base http://127.0.0.1:8787 -tenant ci upload app.trace
//	artcdctl -base ... -tenant ci submit job.json     (or - for stdin)
//	artcdctl -base ... -tenant ci wait j000001 -timeout 2m
//	artcdctl -base ... -tenant ci result j000001 -o out.json
//	artcdctl -base ... -tenant ci status j000001
//	artcdctl -base ... -tenant ci cancel j000001
//	artcdctl -base ... metrics
//
// upload prints the blob id; submit prints the job id; status/wait/
// cancel print the status document. On any non-2xx response the
// server's single-line JSON error is printed to stdout and a
// "retry-after: N" line (when present) to stderr.
//
// Exit contract: 0 success; 1 transport or server error; 2 usage;
// 3 the waited job failed; 4 the waited job was canceled;
// 7 backpressure (HTTP 429).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

const (
	exitOK           = 0
	exitError        = 1
	exitUsage        = 2
	exitJobFailed    = 3
	exitJobCanceled  = 4
	exitBackpressure = 7
)

func main() {
	base := flag.String("base", "http://127.0.0.1:8787", "artcd base URL")
	tenant := flag.String("tenant", "", "tenant namespace (required for tenant-scoped commands)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	c := &client{base: strings.TrimRight(*base, "/"), tenant: *tenant}
	var code int
	switch args[0] {
	case "upload":
		code = c.upload(args[1:])
	case "submit":
		code = c.submit(args[1:])
	case "status":
		code = c.status(args[1:])
	case "wait":
		code = c.wait(args[1:])
	case "result":
		code = c.result(args[1:])
	case "cancel":
		code = c.cancelJob(args[1:])
	case "metrics":
		code = c.metrics(args[1:])
	default:
		usage()
	}
	os.Exit(code)
}

func usage() {
	fmt.Fprintln(os.Stderr,
		"usage: artcdctl -base URL [-tenant NAME] <upload|submit|status|wait|result|cancel|metrics> [args]")
	os.Exit(exitUsage)
}

type client struct {
	base   string
	tenant string
}

func (c *client) tenantURL(rest string) string {
	if c.tenant == "" {
		fmt.Fprintln(os.Stderr, "artcdctl: -tenant is required for this command")
		os.Exit(exitUsage)
	}
	return c.base + "/v1/tenants/" + c.tenant + rest
}

// call performs one request. Non-2xx responses are reported on the
// tool contract (body to stdout, retry-after to stderr) and mapped to
// an exit code; 2xx responses return the body.
func (c *client) call(method, url string, body io.Reader) ([]byte, int, bool) {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "artcdctl: %v\n", err)
		return nil, exitError, false
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "artcdctl: %v\n", err)
		return nil, exitError, false
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "artcdctl: reading response: %v\n", err)
		return nil, exitError, false
	}
	if resp.StatusCode/100 != 2 {
		os.Stdout.Write(data) // the server's single-line JSON error
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			fmt.Fprintf(os.Stderr, "retry-after: %s\n", ra)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			return data, exitBackpressure, false
		}
		return data, exitError, false
	}
	return data, exitOK, true
}

func (c *client) upload(args []string) int {
	if len(args) != 1 {
		usage()
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "artcdctl: %v\n", err)
		return exitError
	}
	body, code, ok := c.call(http.MethodPost, c.tenantURL("/traces"), bytes.NewReader(data))
	if !ok {
		return code
	}
	var doc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "artcdctl: %v\n", err)
		return exitError
	}
	fmt.Println(doc.ID)
	return exitOK
}

func (c *client) submit(args []string) int {
	if len(args) != 1 {
		usage()
	}
	var req []byte
	var err error
	if args[0] == "-" {
		req, err = io.ReadAll(os.Stdin)
	} else {
		req, err = os.ReadFile(args[0])
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "artcdctl: %v\n", err)
		return exitError
	}
	body, code, ok := c.call(http.MethodPost, c.tenantURL("/jobs"), bytes.NewReader(req))
	if !ok {
		return code
	}
	var doc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "artcdctl: %v\n", err)
		return exitError
	}
	fmt.Println(doc.ID)
	return exitOK
}

func (c *client) status(args []string) int {
	if len(args) != 1 {
		usage()
	}
	body, code, ok := c.call(http.MethodGet, c.tenantURL("/jobs/"+args[0]), nil)
	if !ok {
		return code
	}
	os.Stdout.Write(body)
	return exitOK
}

func (c *client) wait(args []string) int {
	fs := flag.NewFlagSet("wait", flag.ExitOnError)
	timeout := fs.Duration("timeout", 2*time.Minute, "give up after this long")
	interval := fs.Duration("interval", 100*time.Millisecond, "poll interval")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	id := fs.Arg(0)
	deadline := time.Now().Add(*timeout)
	for {
		body, code, ok := c.call(http.MethodGet, c.tenantURL("/jobs/"+id), nil)
		if !ok {
			return code
		}
		var doc struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "artcdctl: %v\n", err)
			return exitError
		}
		switch doc.State {
		case "done":
			os.Stdout.Write(body)
			return exitOK
		case "failed":
			os.Stdout.Write(body)
			return exitJobFailed
		case "canceled":
			os.Stdout.Write(body)
			return exitJobCanceled
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "artcdctl: job %s still %s after %v\n", id, doc.State, *timeout)
			return exitError
		}
		time.Sleep(*interval)
	}
}

func (c *client) result(args []string) int {
	fs := flag.NewFlagSet("result", flag.ExitOnError)
	out := fs.String("o", "-", "output file (- = stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	body, code, ok := c.call(http.MethodGet, c.tenantURL("/jobs/"+fs.Arg(0)+"/result"), nil)
	if !ok {
		return code
	}
	if *out == "-" {
		os.Stdout.Write(body)
		return exitOK
	}
	if err := os.WriteFile(*out, body, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "artcdctl: %v\n", err)
		return exitError
	}
	return exitOK
}

func (c *client) cancelJob(args []string) int {
	if len(args) != 1 {
		usage()
	}
	body, code, ok := c.call(http.MethodDelete, c.tenantURL("/jobs/"+args[0]), nil)
	if !ok {
		return code
	}
	os.Stdout.Write(body)
	return exitOK
}

func (c *client) metrics(args []string) int {
	if len(args) != 0 {
		usage()
	}
	body, code, ok := c.call(http.MethodGet, c.base+"/metrics", nil)
	if !ok {
		return code
	}
	os.Stdout.Write(body)
	return exitOK
}
