// Package rootreplay is a Go implementation of ROOT — Resource-Oriented
// Ordering for Trace replay — and ARTC, the approximate-replay trace
// compiler, from "ROOT: Replaying Multithreaded Traces with
// Resource-Oriented Ordering" (SOSP 2013).
//
// The package is a facade over the implementation packages:
//
//   - internal/core: the ROOT trace model and ordering rules;
//   - internal/artc: the compiler, replayer, and cross-platform
//     emulation;
//   - internal/trace, internal/snapshot: trace formats (native, strace)
//     and initial file-tree snapshots;
//   - internal/stack and below: the simulated storage stack (virtual
//     clock, disks, RAID, SSD, page cache, CFQ) that traces are
//     collected on and replayed against;
//   - internal/workload, internal/leveldb, internal/magritte: the
//     paper's workloads and the Magritte benchmark suite;
//   - internal/experiments: every table and figure of the evaluation.
//
// Quick start:
//
//	tr, _ := rootreplay.ParseStrace(f)               // or DecodeTrace
//	b, _ := rootreplay.Compile(tr, nil, rootreplay.DefaultModes())
//	sys := rootreplay.NewSystem(rootreplay.DefaultConfig())
//	_ = rootreplay.InitSystem(sys, b)
//	rep, _ := rootreplay.Replay(sys, b, rootreplay.Options{})
//	fmt.Println(rep.Elapsed, rep.Errors)
package rootreplay

import (
	"io"

	"rootreplay/internal/artc"
	"rootreplay/internal/artifact"
	"rootreplay/internal/core"
	"rootreplay/internal/sim"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
)

// Core model types.
type (
	// Trace is a totally-ordered series of traced system calls.
	Trace = trace.Trace
	// Record is one traced call.
	Record = trace.Record
	// Snapshot is an initial file-tree state.
	Snapshot = snapshot.Snapshot
	// ModeSet selects which ROOT ordering rules apply to which resource
	// kinds (Table 2 of the paper).
	ModeSet = core.ModeSet
	// Benchmark is a compiled, replayable trace.
	Benchmark = artc.Benchmark
	// Options configure a replay (method, speed, prefix, emulation).
	Options = artc.Options
	// Report is the replayer's detailed output.
	Report = artc.Report
	// Method is a replay ordering strategy.
	Method = artc.Method
	// Config describes a simulated machine.
	Config = stack.Config
	// System is a simulated machine instance.
	System = stack.System
	// Kernel is the discrete-event simulation kernel a System runs on.
	Kernel = sim.Kernel
	// Thread is a simulated thread.
	Thread = sim.Thread
)

// Replay methods (§5 of the paper).
const (
	MethodARTC          = artc.MethodARTC
	MethodSingle        = artc.MethodSingle
	MethodTemporal      = artc.MethodTemporal
	MethodUnconstrained = artc.MethodUnconstrained
)

// Replay speeds.
const (
	AFAP    = artc.AFAP
	Natural = artc.Natural
	Scaled  = artc.Scaled
)

// DefaultModes returns ARTC's default constraint set: every supported
// mode except program_seq.
func DefaultModes() ModeSet { return core.DefaultModes() }

// ParseModes parses a mode list like "file_seq,path_stage+,fd_stage".
func ParseModes(s string) (ModeSet, error) { return artc.ParseModes(s) }

// ParseStrace parses `strace -f -ttt -T` output into a Trace.
func ParseStrace(r io.Reader) (*Trace, error) { return trace.ParseStrace(r) }

// ParseStraceSharded parses strace output using shards parallel lexers
// (<= 0 selects GOMAXPROCS); the result is identical to ParseStrace.
func ParseStraceSharded(r io.Reader, shards int) (*Trace, error) {
	return trace.ParseStraceSharded(r, shards)
}

// CompileStrace parses strace output and compiles it in one streaming
// pass, overlapping lexing with model evaluation; see
// artc.CompileStraceStream.
func CompileStrace(r io.Reader, snap *Snapshot, modes ModeSet) (*Benchmark, error) {
	return artc.CompileStraceStream(r, snap, modes)
}

// DecodeTrace parses a native-format trace.
func DecodeTrace(r io.Reader) (*Trace, error) { return trace.Decode(r) }

// ParseIBench parses the dtrace-generated iBench trace format.
func ParseIBench(r io.Reader) (*Trace, error) { return trace.ParseIBench(r) }

// DecodeSnapshot parses a serialized snapshot.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) { return snapshot.Decode(r) }

// Compile builds a replayable benchmark from a trace, an optional
// snapshot (nil infers one from the trace), and the ordering modes.
func Compile(tr *Trace, snap *Snapshot, modes ModeSet) (*Benchmark, error) {
	return artc.Compile(tr, snap, modes)
}

// DecodeBenchmark reads a benchmark file in either encoding: the text
// format written by Benchmark.Encode or the binary artifact format
// written by Benchmark.EncodeBinary.
func DecodeBenchmark(r io.Reader) (*Benchmark, error) { return artc.DecodeAny(r) }

// CompileTraceCached compiles through a content-addressed artifact
// store: repeat compiles of the same trace/snapshot/modes load the
// cached binary artifact instead of re-running analysis. An empty dir
// selects the per-user default cache directory.
func CompileTraceCached(dir string, tr *Trace, snap *Snapshot, modes ModeSet) (*Benchmark, error) {
	s, err := artifact.Open(dir, 0)
	if err != nil {
		return nil, err
	}
	b, _, err := artifact.CompileTrace(s, tr, snap, modes)
	return b, err
}

// DefaultConfig returns a Linux/ext4/HDD/CFQ machine.
func DefaultConfig() Config { return stack.DefaultConfig() }

// NewSystem builds a simulated machine on a fresh kernel.
func NewSystem(conf Config) *System { return stack.New(sim.NewKernel(), conf) }

// InitSystem restores the benchmark's initial snapshot into sys.
func InitSystem(sys *System, b *Benchmark) error { return artc.Init(sys, b, "") }

// Replay executes the benchmark on an initialized system and returns the
// replayer's report.
func Replay(sys *System, b *Benchmark, opts Options) (*Report, error) {
	return artc.Replay(sys, b, opts)
}
