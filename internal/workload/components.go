package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"rootreplay/internal/sim"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
)

// Components parameterizes the sharded-replay scale family: a
// synthetic trace of many mutually independent file-working groups,
// sized into the millions of actions. Each component runs on its own
// traced thread against its own directory, so the resource-closure
// partitioner (internal/shard) splits the trace into exactly N
// components with no cross edges — the shape the sharded replayer
// parallelizes perfectly.
//
// Unlike the other workloads, SynthComponents builds records directly
// instead of running threads through a simulated source machine:
// generation is a deterministic function of the parameters (no kernel,
// no device model), which keeps multi-million-action corpora cheap to
// produce and lets CI regenerate the checked-in spec byte-for-byte.
type Components struct {
	// N is the number of independent components (default 16).
	N int
	// Ops is the total operation budget across all components; each op
	// expands to a handful of records (default 10000).
	Ops int
	// Skew shapes component sizes: component c receives weight
	// (c+1)^-Skew. Zero gives equal sizes; 1.0 gives a Zipf-like tail
	// where the first components dominate.
	Skew float64
	// FilesPer is the per-component file count (default 4).
	FilesPer int
	// FileBytes is each file's size (default 256 KiB).
	FileBytes int64
	// Seed drives the per-component op mix.
	Seed int64
}

func (c *Components) withDefaults() Components {
	out := *c
	if out.N <= 0 {
		out.N = 16
	}
	if out.Ops <= 0 {
		out.Ops = 10000
	}
	if out.Skew < 0 {
		out.Skew = 0
	}
	if out.FilesPer <= 0 {
		out.FilesPer = 4
	}
	if out.FileBytes <= 0 {
		out.FileBytes = 256 << 10
	}
	return out
}

// opsOf splits the op budget across components by the skew weights,
// guaranteeing every component at least one op.
func (c *Components) opsOf() []int {
	weights := make([]float64, c.N)
	var sum float64
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -c.Skew)
		sum += weights[i]
	}
	out := make([]int, c.N)
	total := 0
	for i := range out {
		out[i] = int(float64(c.Ops) * weights[i] / sum)
		if out[i] < 1 {
			out[i] = 1
		}
		total += out[i]
	}
	// Hand rounding remainder to the largest component.
	if total < c.Ops {
		out[0] += c.Ops - total
	}
	return out
}

// compRecorder emits one component's records on a private virtual
// clock; streams are merged by time afterwards.
type compRecorder struct {
	recs []*trace.Record
	tid  int
	now  time.Duration
	dir  string
}

const compOpGap = 3 * time.Microsecond

func (g *compRecorder) emit(r trace.Record) {
	r.TID = g.tid
	r.Start = g.now
	r.End = g.now + 2*time.Microsecond
	g.now += compOpGap
	rec := r
	g.recs = append(g.recs, &rec)
}

// SynthComponents generates the family's trace and matching snapshot.
func SynthComponents(params Components) (*trace.Trace, *snapshot.Snapshot, error) {
	p := params.withDefaults()

	// The snapshot comes from a real (instant) setup pass so replay
	// restores exactly the tree the records assume.
	k := sim.NewKernel()
	sys := stack.New(k, stack.Config{
		Name: "components", Platform: stack.Linux, Profile: stack.Ext4,
		Device: stack.DeviceSSD, Scheduler: stack.SchedNoop,
	})
	paths := make([][]string, p.N)
	for c := 0; c < p.N; c++ {
		paths[c] = make([]string, p.FilesPer)
		for f := 0; f < p.FilesPer; f++ {
			paths[c][f] = fmt.Sprintf("/comp%04d/f%d", c, f)
			if err := sys.SetupCreate(paths[c][f], p.FileBytes); err != nil {
				return nil, nil, err
			}
		}
	}
	snap := snapshot.Capture(sys)

	ops := p.opsOf()
	streams := make([]*compRecorder, p.N)
	for c := 0; c < p.N; c++ {
		g := &compRecorder{tid: c + 1, dir: fmt.Sprintf("/comp%04d", c)}
		// Each component cycles a distinct fd number: traced fds are
		// process-global, so sharing one would chain every component
		// into a single fd series and defeat the partition.
		fd := int64(3 + c)
		rng := rand.New(rand.NewSource(p.Seed*1e9 + int64(c)))
		blocks := p.FileBytes / 4096
		if blocks < 1 {
			blocks = 1
		}
		for i := 0; i < ops[c]; i++ {
			f := paths[c][rng.Intn(p.FilesPer)]
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // read session: open, 2 preads, close
				g.emit(trace.Record{Call: "open", Path: f, Flags: trace.ORdonly, FD: fd, Ret: fd})
				for r := 0; r < 2; r++ {
					off := rng.Int63n(blocks) * 4096
					g.emit(trace.Record{Call: "pread", FD: fd, Offset: off, Size: 4096, Ret: 4096})
				}
				g.emit(trace.Record{Call: "close", FD: fd, Ret: 0})
			case 5, 6: // write session: open rw, pwrite, fsync, close
				g.emit(trace.Record{Call: "open", Path: f, Flags: trace.ORdwr, FD: fd, Ret: fd})
				off := rng.Int63n(blocks) * 4096
				g.emit(trace.Record{Call: "pwrite", FD: fd, Offset: off, Size: 4096, Ret: 4096})
				g.emit(trace.Record{Call: "fsync", FD: fd, Ret: 0})
				g.emit(trace.Record{Call: "close", FD: fd, Ret: 0})
			case 7, 8: // metadata probe
				g.emit(trace.Record{Call: "stat", Path: f, Ret: 0})
			case 9: // failed lookup, exercising errno matching
				g.emit(trace.Record{Call: "stat", Path: g.dir + "/missing", Ret: -1, Err: "ENOENT"})
			}
		}
		streams[c] = g
	}

	// Merge the per-component streams into one total order by (Start,
	// component). Each stream is already time-sorted, so a stable sort
	// of the concatenation interleaves them deterministically.
	total := 0
	for _, g := range streams {
		total += len(g.recs)
	}
	tr := &trace.Trace{Platform: string(stack.Linux), Records: make([]*trace.Record, 0, total)}
	for _, g := range streams {
		tr.Records = append(tr.Records, g.recs...)
	}
	sort.SliceStable(tr.Records, func(i, j int) bool {
		a, b := tr.Records[i], tr.Records[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.TID < b.TID
	})
	tr.Renumber()
	return tr, snap, nil
}
