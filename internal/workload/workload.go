// Package workload implements the microbenchmark programs of the
// paper's performance-accuracy evaluation (§5.2.1), as programs that run
// on a simulated stack.System. Each workload can be executed directly
// (the "original program" baseline on a target system) or traced on a
// source system and replayed with ARTC.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"rootreplay/internal/sim"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
)

// Workload is a multithreaded I/O program.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Setup creates the initial file tree on sys (outside measured time).
	Setup(sys *stack.System) error
	// Spawn launches the workload's threads on sys's kernel; they run to
	// completion when the kernel is run.
	Spawn(sys *stack.System)
}

// Execute runs w's threads on an already-set-up system to completion,
// returning the elapsed virtual time.
func Execute(sys *stack.System, w Workload) (time.Duration, error) {
	start := sys.K.Now()
	w.Spawn(sys)
	if err := sys.K.Run(); err != nil {
		return 0, fmt.Errorf("workload %s: %w", w.Name(), err)
	}
	return sys.K.Now() - start, nil
}

// Run builds a fresh system from conf, sets up w, and executes it,
// returning the elapsed time. This is the "original program on the
// target" measurement.
func Run(conf stack.Config, w Workload) (time.Duration, error) {
	k := sim.NewKernel()
	sys := stack.New(k, conf)
	if err := w.Setup(sys); err != nil {
		return 0, err
	}
	return Execute(sys, w)
}

// TraceWorkload runs w on a source system with tracing enabled and
// returns the trace, the initial snapshot, and the traced elapsed time.
func TraceWorkload(conf stack.Config, w Workload) (*trace.Trace, *snapshot.Snapshot, time.Duration, error) {
	k := sim.NewKernel()
	sys := stack.New(k, conf)
	if err := w.Setup(sys); err != nil {
		return nil, nil, 0, err
	}
	snap := snapshot.Capture(sys)
	tr := &trace.Trace{Platform: string(conf.Platform)}
	sys.SetTracer(func(r *trace.Record) { tr.Records = append(tr.Records, r) })
	elapsed, err := Execute(sys, w)
	if err != nil {
		return nil, nil, 0, err
	}
	tr.Renumber()
	return tr, snap, elapsed, nil
}

// RandomReaders is the workload-parallelism microbenchmark (Figure
// 5(a)/(b)): Threads threads each read ReadsPerThread randomly selected
// 4 KB blocks from a private file of FileBytes bytes.
type RandomReaders struct {
	Threads        int
	ReadsPerThread int
	FileBytes      int64
	Seed           int64
}

// Name implements Workload.
func (w *RandomReaders) Name() string {
	return fmt.Sprintf("randomreaders-%dt", w.Threads)
}

func (w *RandomReaders) file(i int) string {
	return fmt.Sprintf("/bench/rr/file%d", i)
}

// Setup implements Workload.
func (w *RandomReaders) Setup(sys *stack.System) error {
	for i := 0; i < w.Threads; i++ {
		if err := sys.SetupCreate(w.file(i), w.FileBytes); err != nil {
			return err
		}
	}
	return nil
}

// Spawn implements Workload.
func (w *RandomReaders) Spawn(sys *stack.System) {
	for i := 0; i < w.Threads; i++ {
		i := i
		rng := rand.New(rand.NewSource(w.Seed + int64(i)*7919))
		sys.K.Spawn(fmt.Sprintf("rr-%d", i), func(t *sim.Thread) {
			fd, err := sys.Open(t, w.file(i), trace.ORdonly, 0)
			if err != 0 {
				return
			}
			blocks := w.FileBytes / 4096
			for n := 0; n < w.ReadsPerThread; n++ {
				off := rng.Int63n(blocks) * 4096
				sys.Pread(t, fd, 4096, off)
			}
			sys.Close(t, fd)
		})
	}
}

// CacheReaders is the cache-size microbenchmark (Figure 5(c)): thread 1
// sequentially reads its entire file and then enters the random-read
// loop; thread 2 performs only random reads of its own file.
type CacheReaders struct {
	ReadsPerThread int
	FileBytes      int64
	Seed           int64
}

// Name implements Workload.
func (w *CacheReaders) Name() string { return "cachereaders" }

// Setup implements Workload.
func (w *CacheReaders) Setup(sys *stack.System) error {
	if err := sys.SetupCreate("/bench/cache/f1", w.FileBytes); err != nil {
		return err
	}
	return sys.SetupCreate("/bench/cache/f2", w.FileBytes)
}

// Spawn implements Workload.
func (w *CacheReaders) Spawn(sys *stack.System) {
	blocks := w.FileBytes / 4096
	rng1 := rand.New(rand.NewSource(w.Seed + 1))
	rng2 := rand.New(rand.NewSource(w.Seed + 2))
	sys.K.Spawn("cache-1", func(t *sim.Thread) {
		fd, err := sys.Open(t, "/bench/cache/f1", trace.ORdonly, 0)
		if err != 0 {
			return
		}
		// Sequential pre-read of the whole file.
		for b := int64(0); b < blocks; b++ {
			sys.Read(t, fd, 4096)
		}
		for n := 0; n < w.ReadsPerThread; n++ {
			off := rng1.Int63n(blocks) * 4096
			sys.Pread(t, fd, 4096, off)
		}
		sys.Close(t, fd)
	})
	sys.K.Spawn("cache-2", func(t *sim.Thread) {
		fd, err := sys.Open(t, "/bench/cache/f2", trace.ORdonly, 0)
		if err != 0 {
			return
		}
		for n := 0; n < w.ReadsPerThread; n++ {
			off := rng2.Int63n(blocks) * 4096
			sys.Pread(t, fd, 4096, off)
		}
		sys.Close(t, fd)
	})
}

// SeqCompetitors is the scheduler-anticipation microbenchmark (Figure
// 5(d) / Figure 6): two threads compete for I/O throughput, each
// performing sequential 4 KB reads from separate large files.
type SeqCompetitors struct {
	ReadsPerThread int
	FileBytes      int64
}

// Name implements Workload.
func (w *SeqCompetitors) Name() string { return "seqcompetitors" }

// Setup implements Workload. A spacer file between the two competitors
// keeps them far apart on disk so switching threads costs a real seek.
func (w *SeqCompetitors) Setup(sys *stack.System) error {
	if err := sys.SetupCreate("/bench/seq/f1", w.FileBytes); err != nil {
		return err
	}
	if err := sys.SetupCreate("/bench/seq/spacer", 1<<30); err != nil {
		return err
	}
	return sys.SetupCreate("/bench/seq/f2", w.FileBytes)
}

// Spawn implements Workload.
func (w *SeqCompetitors) Spawn(sys *stack.System) {
	for i, name := range []string{"/bench/seq/f1", "/bench/seq/f2"} {
		name := name
		sys.K.Spawn(fmt.Sprintf("seq-%d", i), func(t *sim.Thread) {
			fd, err := sys.Open(t, name, trace.ORdonly, 0)
			if err != 0 {
				return
			}
			for n := 0; n < w.ReadsPerThread; n++ {
				sys.Read(t, fd, 4096)
			}
			sys.Close(t, fd)
		})
	}
}
