package workload_test

import (
	"bytes"
	"os"
	"testing"

	"rootreplay/internal/artc"
	"rootreplay/internal/core"
	"rootreplay/internal/shard"
	"rootreplay/internal/workload"
)

// The pipeline family must collapse into one weakly-connected component
// (the shape PR 6's partitioner cannot split) that resource-cut slicing
// then cuts into the requested slice count, with every cross-slice edge
// synthetic (a severed thread adjacency, never a resource edge).
func TestPipelineFamilyShape(t *testing.T) {
	params := workload.Pipeline{Stages: 4, Ops: 200, Handoff: 16, Seed: 3}
	tr, snap, err := workload.SynthPipeline(params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := artc.Compile(tr, snap, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	p := shard.Partition(b.Analysis, b.Graph)
	if len(p.Components) != 1 {
		t.Fatalf("pipeline split into %d components, want 1", len(p.Components))
	}
	n := len(p.Components[0])
	sliced := shard.Slice(b.Analysis, b.Graph, p, shard.SliceOptions{MaxActions: n/4 + 1})
	if len(sliced.Components) < 2 {
		t.Fatalf("slicing left the pipeline whole: %d slices", len(sliced.Components))
	}
	for _, ce := range sliced.Cross {
		if int(ce.Edge) < len(b.Graph.Edges) {
			t.Fatalf("cut severed resource edge %d; only thread adjacencies may cross slices", ce.Edge)
		}
	}
}

// Generation is a pure function of the parameters: two runs must
// produce byte-identical traces (CI regenerates the checked-in spec
// and diffs against it).
func TestPipelineFamilyDeterministic(t *testing.T) {
	params := workload.Pipeline{Stages: 4, Ops: 200, Handoff: 16, Seed: 11}
	enc := func() []byte {
		tr, _, err := workload.SynthPipeline(params)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(enc(), enc()) {
		t.Fatal("two generations of the same parameters differ")
	}
}

// The checked-in spec pins the generator's output: regeneration with
// the recorded parameters must reproduce it byte for byte (CI runs the
// same check through cmd/tracegen).
func TestPipelineFamilyGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/pipeline_small.trace")
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := workload.SynthPipeline(workload.Pipeline{Stages: 4, Ops: 200, Handoff: 16, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("regenerated spec differs from testdata/pipeline_small.trace (%d vs %d bytes)",
			buf.Len(), len(want))
	}
}
