package workload_test

import (
	"bytes"
	"os"
	"testing"

	"rootreplay/internal/artc"
	"rootreplay/internal/core"
	"rootreplay/internal/shard"
	"rootreplay/internal/workload"
)

// The pipeline family must collapse into one weakly-connected component
// (the shape PR 6's partitioner cannot split) that resource-cut slicing
// then cuts into the requested slice count, with every cross-slice edge
// synthetic (a severed thread adjacency, never a resource edge).
func TestPipelineFamilyShape(t *testing.T) {
	params := workload.Pipeline{Stages: 4, Ops: 200, Handoff: 16, Seed: 3}
	tr, snap, err := workload.SynthPipeline(params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := artc.Compile(tr, snap, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	p := shard.Partition(b.Analysis, b.Graph)
	if len(p.Components) != 1 {
		t.Fatalf("pipeline split into %d components, want 1", len(p.Components))
	}
	n := len(p.Components[0])
	sliced := shard.Slice(b.Analysis, b.Graph, p, shard.SliceOptions{MaxActions: n/4 + 1})
	if len(sliced.Components) < 2 {
		t.Fatalf("slicing left the pipeline whole: %d slices", len(sliced.Components))
	}
	for _, ce := range sliced.Cross {
		if int(ce.Edge) < len(b.Graph.Edges) {
			t.Fatalf("cut severed resource edge %d; only thread adjacencies may cross slices", ce.Edge)
		}
	}
}

// Generation is a pure function of the parameters: two runs must
// produce byte-identical traces (CI regenerates the checked-in spec
// and diffs against it).
func TestPipelineFamilyDeterministic(t *testing.T) {
	params := workload.Pipeline{Stages: 4, Ops: 200, Handoff: 16, Seed: 11}
	enc := func() []byte {
		tr, _, err := workload.SynthPipeline(params)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(enc(), enc()) {
		t.Fatal("two generations of the same parameters differ")
	}
}

// The hot-stage knob must change only the skewed stage's write widths
// and offsets: record counts, thread structure, and the op mix are
// those of the unskewed family, and HotStage=0 is byte-for-byte the
// unskewed output (the knob defaults to off everywhere).
func TestPipelineFamilyHotStageShape(t *testing.T) {
	enc := func(p workload.Pipeline) ([]byte, int) {
		tr, _, err := workload.SynthPipeline(p)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), len(tr.Records)
	}
	base := workload.Pipeline{Stages: 4, Ops: 200, Handoff: 16, Seed: 11}
	cold, coldN := enc(base)
	zero := base
	zero.HotStage = 0
	if got, _ := enc(zero); !bytes.Equal(got, cold) {
		t.Fatal("HotStage=0 output differs from the unskewed family")
	}
	hot := base
	hot.HotStage = 2
	hot.HotPages = 4
	hotBytes, hotN := enc(hot)
	if hotN != coldN {
		t.Fatalf("hot family has %d records, unskewed %d; the skew must not add records", hotN, coldN)
	}
	if bytes.Equal(hotBytes, cold) {
		t.Fatal("HotStage=2 output is identical to the unskewed family; the skew is missing")
	}
	// Only the hot stage's records may differ.
	trHot, _, err := workload.SynthPipeline(hot)
	if err != nil {
		t.Fatal(err)
	}
	trCold, _, err := workload.SynthPipeline(base)
	if err != nil {
		t.Fatal(err)
	}
	for i := range trCold.Records {
		c, h := trCold.Records[i], trHot.Records[i]
		if c.TID != h.TID || c.Call != h.Call || c.Start != h.Start {
			t.Fatalf("record %d: structure differs (%s tid=%d vs %s tid=%d)", i, c.Call, c.TID, h.Call, h.TID)
		}
		if c.TID != 2 && (c.Size != h.Size || c.Offset != h.Offset) {
			t.Fatalf("record %d: cold stage tid=%d skewed (%d@%d vs %d@%d)",
				i, c.TID, c.Size, c.Offset, h.Size, h.Offset)
		}
	}
}

// Hot generation is a pure function of the parameters, like the
// unskewed family.
func TestPipelineFamilyHotDeterministic(t *testing.T) {
	params := workload.Pipeline{Stages: 4, Ops: 200, Handoff: 16, Seed: 11, HotStage: 2, HotPages: 4}
	enc := func() []byte {
		tr, _, err := workload.SynthPipeline(params)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(enc(), enc()) {
		t.Fatal("two generations of the same hot parameters differ")
	}
}

// The checked-in hot spec pins the generator's output the same way the
// unskewed golden does (CI regenerates it through cmd/tracegen
// -hot-stage and diffs).
func TestPipelineFamilyHotGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/pipeline_hot_small.trace")
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := workload.SynthPipeline(workload.Pipeline{
		Stages: 4, Ops: 200, Handoff: 16, Seed: 11, HotStage: 2, HotPages: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("regenerated spec differs from testdata/pipeline_hot_small.trace (%d vs %d bytes)",
			buf.Len(), len(want))
	}
}

// The checked-in spec pins the generator's output: regeneration with
// the recorded parameters must reproduce it byte for byte (CI runs the
// same check through cmd/tracegen).
func TestPipelineFamilyGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/pipeline_small.trace")
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := workload.SynthPipeline(workload.Pipeline{Stages: 4, Ops: 200, Handoff: 16, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("regenerated spec differs from testdata/pipeline_small.trace (%d vs %d bytes)",
			buf.Len(), len(want))
	}
}
