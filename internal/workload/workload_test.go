package workload

import (
	"testing"
	"time"

	"rootreplay/internal/artc"
	"rootreplay/internal/core"
	"rootreplay/internal/sim"
	"rootreplay/internal/stack"
)

func hddConf() stack.Config {
	c := stack.DefaultConfig()
	c.CachePages = 1 << 16 // 256 MiB: small against the 1 GiB files
	return c
}

func TestRandomReadersRuns(t *testing.T) {
	w := &RandomReaders{Threads: 2, ReadsPerThread: 50, FileBytes: 1 << 30, Seed: 1}
	elapsed, err := Run(hddConf(), w)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatal("no time elapsed")
	}
}

// The headline feedback effect of Figure 5(a): more threads means deeper
// queues means better per-request service; total time grows sublinearly
// in total work.
func TestParallelismSublinearSlowdown(t *testing.T) {
	perThread := 200
	run := func(threads int) time.Duration {
		w := &RandomReaders{Threads: threads, ReadsPerThread: perThread, FileBytes: 1 << 30, Seed: 9}
		d, err := Run(hddConf(), w)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	one := run(1)
	eight := run(8)
	ratio := float64(eight) / float64(one)
	if ratio >= 8.0 {
		t.Fatalf("8 threads did 8x work in %.1fx time; no queue-depth benefit", ratio)
	}
	if ratio < 1.5 {
		t.Fatalf("8x work took only %.1fx time; device model too parallel", ratio)
	}
}

// End-to-end replay accuracy, Figure 5(a) shape: ARTC tracks the
// original closely; single-threaded replay overestimates badly.
func TestFig5aShape(t *testing.T) {
	w := &RandomReaders{Threads: 8, ReadsPerThread: 100, FileBytes: 1 << 30, Seed: 5}
	tr, snap, _, err := TraceWorkload(hddConf(), w)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := Run(hddConf(), w)
	if err != nil {
		t.Fatal(err)
	}
	replayWith := func(m artc.Method) time.Duration {
		b, err := artc.Compile(tr, snap, core.DefaultModes())
		if err != nil {
			t.Fatal(err)
		}
		k := sim.NewKernel()
		sys := stack.New(k, hddConf())
		if err := artc.Init(sys, b, ""); err != nil {
			t.Fatal(err)
		}
		rep, err := artc.Replay(sys, b, artc.Options{Method: m, SelfCheck: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Errors != 0 {
			t.Fatalf("%s replay errors: %v", m, rep.ErrorSamples)
		}
		return rep.Elapsed
	}
	artcT := replayWith(artc.MethodARTC)
	singleT := replayWith(artc.MethodSingle)

	artcErr := relErr(artcT, orig)
	singleErr := relErr(singleT, orig)
	t.Logf("orig=%v artc=%v (%.1f%%) single=%v (%.1f%%)", orig, artcT, artcErr*100, singleT, singleErr*100)
	if artcErr > 0.25 {
		t.Errorf("ARTC error %.1f%% too large", artcErr*100)
	}
	if singleT <= artcT {
		t.Error("single-threaded replay should be slower than ARTC on a parallel workload")
	}
	if singleErr < 2*artcErr {
		t.Errorf("expected single (%.1f%%) to be much worse than ARTC (%.1f%%)", singleErr*100, artcErr*100)
	}
}

func relErr(got, want time.Duration) float64 {
	d := float64(got-want) / float64(want)
	if d < 0 {
		d = -d
	}
	return d
}

func TestCacheReadersRuns(t *testing.T) {
	w := &CacheReaders{ReadsPerThread: 100, FileBytes: 64 << 20, Seed: 3}
	conf := hddConf()
	conf.CachePages = 1 << 15 // 128 MiB
	d, err := Run(conf, w)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("no elapsed time")
	}
}

// Cache-size feedback: with a cache covering both files, thread 1's
// random reads all hit; the run must be much faster than with a small
// cache.
func TestCacheSizeEffect(t *testing.T) {
	w := &CacheReaders{ReadsPerThread: 300, FileBytes: 64 << 20, Seed: 3}
	run := func(pages int64) time.Duration {
		conf := hddConf()
		conf.CachePages = pages
		d, err := Run(conf, w)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	big := run(1 << 16)   // 256 MiB: both files fit
	small := run(1 << 13) // 32 MiB: f1 does not stay cached
	if float64(big) > 0.8*float64(small) {
		t.Fatalf("large cache (%v) not much faster than small (%v)", big, small)
	}
}

func TestSeqCompetitorsSliceEffect(t *testing.T) {
	w := &SeqCompetitors{ReadsPerThread: 2000, FileBytes: 256 << 20}
	run := func(slice time.Duration) time.Duration {
		conf := hddConf()
		conf.SliceSync = slice
		d, err := Run(conf, w)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	long := run(100 * time.Millisecond)
	short := run(1 * time.Millisecond)
	if long >= short {
		t.Fatalf("100ms slice (%v) not faster than 1ms slice (%v)", long, short)
	}
	if float64(short)/float64(long) < 1.5 {
		t.Fatalf("slice effect too weak: %v vs %v", long, short)
	}
}

func TestTraceWorkloadProducesTrace(t *testing.T) {
	w := &RandomReaders{Threads: 2, ReadsPerThread: 10, FileBytes: 16 << 20, Seed: 2}
	tr, snap, elapsed, err := TraceWorkload(hddConf(), w)
	if err != nil {
		t.Fatal(err)
	}
	// 2 opens + 20 preads + 2 closes.
	if len(tr.Records) != 24 {
		t.Fatalf("trace has %d records", len(tr.Records))
	}
	if len(tr.Threads()) != 2 {
		t.Fatalf("threads = %v", tr.Threads())
	}
	if elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	foundFile := false
	for _, e := range snap.Entries {
		if e.Path == "/bench/rr/file0" && e.Size == 16<<20 {
			foundFile = true
		}
	}
	if !foundFile {
		t.Fatal("snapshot missing workload file")
	}
}
