package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"rootreplay/internal/sim"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
)

// Pipeline parameterizes the resource-cut slicing family: S stage
// threads chained into one weakly-connected component by shared handoff
// files, the shape PR 6's component partitioner cannot split (every
// thread is transitively connected to every other through the handoff
// chain) but resource-cut slicing can.
//
// Stage s works mostly against its private directory /ppriv<s>/ and,
// every Handoff ops, touches the boundary files: it writes a page of
// /phand<s>/h (consumed by stage s+1) and reads back a page of
// /phand<s-1>/h that stage s-1 wrote a full handoff round earlier. The
// resource atoms are therefore a path graph priv0 — hand0 — priv1 —
// hand1 — ... and the minimum K-way cut severs only thread adjacencies:
// all cross-slice edges are synthetic program-order edges, about
// 2*(S-1)*Ops/Handoff of them, tunable via -handoff.
//
// Every pread targets a page pwritten earlier in the trace, and the
// boundary write/read pairs sit a whole handoff round apart, so with
// warmed caches (stack.System.WarmAll) and the default Fsync=0 replay
// is cache-hit-only on every replica: no foreground device I/O, which
// is what makes the sliced replay's virtual times — and so its merged
// report — byte-identical to the serial replayer's. A positive Fsync
// forfeits that device independence and turns the family into the
// writeback perf corpus instead (see the Fsync field).
type Pipeline struct {
	// Stages is the number of pipeline stages, one traced thread each
	// (default 8).
	Stages int
	// Ops is the operation count per stage; each op expands to a 3-record
	// open/IO/close session (default 1000).
	Ops int
	// Handoff is the op interval between boundary-file exchanges
	// (default 16).
	Handoff int
	// FileBytes is each file's size (default 256 KiB).
	FileBytes int64
	// Fsync, when positive, makes every Fsync-th private write session
	// fsync before closing. The default 0 keeps the family fsync-free —
	// the device-independent shape whose sliced replay is byte-identical
	// to serial. A positive value turns the family into the writeback
	// perf corpus: serial fsync writeback scans the whole machine's
	// resident cache, per-slice replicas only their own, which is the
	// working-set reduction the sliced perf numbers measure (slicing it
	// requires ShardOptions.SliceDeviceSync).
	Fsync int
	// Seed drives the per-stage op mix.
	Seed int64
	// HotStage, when in [1, Stages], skews that stage's private writes
	// to HotPages pages each instead of one, striding by the write
	// width so the hot stage's dirty footprint grows HotPages times
	// faster than its peers'. Record counts, the offsets' rng
	// consumption, and the op mix are unchanged — only Size and the
	// offset stride differ — so the trace shape is identical and
	// HotStage=0 output is byte-for-byte the unskewed family. The skew
	// is invisible to action-count balancing (the static slicer's
	// proxy) but not to virtual time: wide writes cost cache time per
	// page and their fsyncs write back HotPages times the data, so the
	// hot stage's atom carries several times the virtual cost of its
	// peers — the intentionally unbalanced cut the profile-guided
	// re-slicer exists to fix. 1-based (stage s is traced TID s).
	HotStage int
	// HotPages is the hot stage's pages per private write (default 4
	// when HotStage is set).
	HotPages int
}

func (p *Pipeline) withDefaults() Pipeline {
	out := *p
	if out.Stages <= 0 {
		out.Stages = 8
	}
	if out.Ops <= 0 {
		out.Ops = 1000
	}
	if out.Handoff <= 0 {
		out.Handoff = 16
	}
	if out.FileBytes <= 0 {
		out.FileBytes = 256 << 10
	}
	if out.HotStage > 0 && out.HotPages <= 0 {
		out.HotPages = 4
	}
	return out
}

// pipelineOpSlot is each op's fixed time slot: room for a boundary op's
// six records at the recorder's 3µs gap, with margin.
const pipelineOpSlot = 24 * time.Microsecond

// SynthPipeline generates the family's trace and matching snapshot.
func SynthPipeline(params Pipeline) (*trace.Trace, *snapshot.Snapshot, error) {
	p := params.withDefaults()
	s := p.Stages

	// Instant setup pass so the snapshot restores exactly the tree the
	// records assume: two private files per stage plus one handoff file
	// per stage boundary, each in its own top-level directory so the
	// atoms stay disjoint.
	k := sim.NewKernel()
	sys := stack.New(k, stack.Config{
		Name: "pipeline", Platform: stack.Linux, Profile: stack.Ext4,
		Device: stack.DeviceSSD, Scheduler: stack.SchedNoop,
	})
	priv := make([][2]string, s)
	for st := 0; st < s; st++ {
		for f := 0; f < 2; f++ {
			priv[st][f] = fmt.Sprintf("/ppriv%03d/f%d", st, f)
			if err := sys.SetupCreate(priv[st][f], p.FileBytes); err != nil {
				return nil, nil, err
			}
		}
	}
	hand := make([]string, s-1)
	for b := 0; b < s-1; b++ {
		hand[b] = fmt.Sprintf("/phand%03d/h", b)
		if err := sys.SetupCreate(hand[b], p.FileBytes); err != nil {
			return nil, nil, err
		}
	}
	snap := snapshot.Capture(sys)

	blocks := p.FileBytes / 4096
	if blocks < 1 {
		blocks = 1
	}
	streams := make([]*compRecorder, s)
	for st := 0; st < s; st++ {
		g := &compRecorder{tid: st + 1}
		// Three distinct fd numbers per stage — private files, handoff
		// writes, handoff reads. Traced fds are process-global, so
		// reusing a number across stages would merge unrelated atoms
		// through the fd series.
		fdPriv := int64(3 + 3*st)
		fdHandW := int64(4 + 3*st)
		fdHandR := int64(5 + 3*st)
		rng := rand.New(rand.NewSource(p.Seed*1e9 + int64(st)))
		written := int64(0) // private pages written so far (prefix 0..written-1)
		for i := 0; i < p.Ops; i++ {
			// Pin every op to a fixed time slot wide enough for its
			// records: stages emit different record counts per op (a
			// boundary op is up to two sessions), and free-running
			// per-record clocks would drift apart until a handoff read
			// precedes its producing write in merged trace order.
			g.now = time.Duration(i) * pipelineOpSlot
			if i%p.Handoff == 0 {
				round := int64(i / p.Handoff)
				if st > 0 && round > 0 {
					// Consume what the upstream stage produced last
					// round: a strictly earlier trace instant, so the
					// page is in this slice's cache by issue time.
					g.emit(trace.Record{Call: "open", Path: hand[st-1], Flags: trace.ORdonly, FD: fdHandR, Ret: fdHandR})
					g.emit(trace.Record{Call: "pread", FD: fdHandR, Offset: ((round - 1) % blocks) * 4096, Size: 4096, Ret: 4096})
					g.emit(trace.Record{Call: "close", FD: fdHandR, Ret: 0})
				}
				if st < s-1 {
					g.emit(trace.Record{Call: "open", Path: hand[st], Flags: trace.ORdwr, FD: fdHandW, Ret: fdHandW})
					g.emit(trace.Record{Call: "pwrite", FD: fdHandW, Offset: (round % blocks) * 4096, Size: 4096, Ret: 4096})
					g.emit(trace.Record{Call: "close", FD: fdHandW, Ret: 0})
				}
				continue
			}
			f := priv[st][rng.Intn(2)]
			if written == 0 || rng.Intn(3) != 0 { // 2:1 write:read mix
				// The hot stage writes wider, not more: same records, same
				// rng draws, several pages per pwrite, clamped in-bounds.
				pages := int64(1)
				if p.HotStage == st+1 {
					pages = int64(p.HotPages)
					if pages > blocks {
						pages = blocks
					}
				}
				starts := blocks - pages + 1
				off := ((written * pages) % starts) * 4096
				written++
				g.emit(trace.Record{Call: "open", Path: f, Flags: trace.ORdwr, FD: fdPriv, Ret: fdPriv})
				g.emit(trace.Record{Call: "pwrite", FD: fdPriv, Offset: off, Size: pages * 4096, Ret: pages * 4096})
				if p.Fsync > 0 && written%int64(p.Fsync) == 0 {
					g.emit(trace.Record{Call: "fsync", FD: fdPriv, Ret: 0})
				}
				g.emit(trace.Record{Call: "close", FD: fdPriv, Ret: 0})
			} else {
				hot := written
				if hot > blocks {
					hot = blocks
				}
				off := rng.Int63n(hot) * 4096
				g.emit(trace.Record{Call: "open", Path: f, Flags: trace.ORdonly, FD: fdPriv, Ret: fdPriv})
				g.emit(trace.Record{Call: "pread", FD: fdPriv, Offset: off, Size: 4096, Ret: 4096})
				g.emit(trace.Record{Call: "close", FD: fdPriv, Ret: 0})
			}
		}
		streams[st] = g
	}

	// Merge per-stage streams into one total order by (Start, TID).
	total := 0
	for _, g := range streams {
		total += len(g.recs)
	}
	tr := &trace.Trace{Platform: string(stack.Linux), Records: make([]*trace.Record, 0, total)}
	for _, g := range streams {
		tr.Records = append(tr.Records, g.recs...)
	}
	sort.SliceStable(tr.Records, func(i, j int) bool {
		a, b := tr.Records[i], tr.Records[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.TID < b.TID
	})
	tr.Renumber()
	return tr, snap, nil
}
