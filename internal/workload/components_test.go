package workload_test

import (
	"bytes"
	"os"
	"testing"

	"rootreplay/internal/artc"
	"rootreplay/internal/core"
	"rootreplay/internal/shard"
	"rootreplay/internal/sim"
	"rootreplay/internal/stack"
	"rootreplay/internal/workload"
)

func targetConf() stack.Config {
	c := stack.DefaultConfig()
	c.Scheduler = stack.SchedNoop
	return c
}

// The family must partition into exactly N components with no cross
// edges, skewed sizes when asked, and replay without semantic errors
// both serially and sharded.
func TestComponentsFamilyShape(t *testing.T) {
	params := workload.Components{N: 8, Ops: 400, Skew: 1.0, Seed: 3}
	tr, snap, err := workload.SynthComponents(params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := artc.Compile(tr, snap, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	p := shard.Partition(b.Analysis, b.Graph)
	if len(p.Components) != params.N {
		t.Fatalf("got %d components, want %d", len(p.Components), params.N)
	}
	if len(p.Cross) != 0 {
		t.Fatalf("family produced %d cross edges", len(p.Cross))
	}
	if first, last := len(p.Components[0]), len(p.Components[params.N-1]); first <= last {
		t.Fatalf("skew 1.0 not skewed: first component %d actions, last %d", first, last)
	}

	k := sim.NewKernel()
	sys := stack.New(k, targetConf())
	if err := artc.Init(sys, b, ""); err != nil {
		t.Fatal(err)
	}
	serial, err := artc.Replay(sys, b, artc.Options{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Errors != 0 {
		t.Fatalf("serial replay: %d semantic errors: %v", serial.Errors, serial.ErrorSamples)
	}

	rep, st, err := artc.ReplaySharded(b, artc.Options{SelfCheck: true}, artc.ShardOptions{
		Target: targetConf(),
		Init:   func(sys *stack.System) error { return artc.Init(sys, b, "") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Components != params.N || st.CrossEdges != 0 {
		t.Fatalf("sharded partition %+v", st)
	}
	if rep.Errors != 0 {
		t.Fatalf("sharded replay: %d semantic errors: %v", rep.Errors, rep.ErrorSamples)
	}
	if rep.Actions != serial.Actions || rep.Emulated != serial.Emulated {
		t.Fatalf("sharded diverged: %d/%d actions, %d/%d emulated",
			rep.Actions, serial.Actions, rep.Emulated, serial.Emulated)
	}
}

// Generation is a pure function of the parameters: two runs must
// produce byte-identical traces (CI regenerates the checked-in spec
// and diffs against it).
func TestComponentsFamilyDeterministic(t *testing.T) {
	params := workload.Components{N: 5, Ops: 200, Skew: 0.5, Seed: 11}
	enc := func() []byte {
		tr, _, err := workload.SynthComponents(params)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(enc(), enc()) {
		t.Fatal("two generations of the same parameters differ")
	}
}

// The checked-in spec pins the generator's output: regeneration with
// the recorded parameters must reproduce it byte for byte (CI runs the
// same check through cmd/tracegen).
func TestComponentsFamilyGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/components_small.trace")
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := workload.SynthComponents(workload.Components{N: 5, Ops: 200, Skew: 0.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("regenerated spec differs from testdata/components_small.trace (%d vs %d bytes)",
			buf.Len(), len(want))
	}
}
