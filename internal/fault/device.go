package fault

import (
	"rootreplay/internal/sim"
	"rootreplay/internal/storage"
)

// faultyDevice wraps a storage.Device and injects faults at completion
// time: a transient error re-queues the request through the inner
// device (so the elevator/slot logic services it again, with the delay
// a real firmware retry costs), and a slow completion is deferred by a
// tail-latency spike. The wrapper sits below the I/O scheduler, which
// therefore sees requests stay outstanding across retries — exactly the
// pressure a flaky drive puts on dispatch accounting.
type faultyDevice struct {
	inner storage.Device
	k     *sim.Kernel
	in    *Injector
	plan  StoragePlan

	errs stream
	slow stream

	// completions indexes injection decisions: the inner device
	// completes deterministically, so the i-th completion is the same
	// request in every run with the same workload.
	completions uint64
	outstanding int
}

// WrapDevice returns d with this injector's storage plan applied, or d
// unchanged when the effective plan for d's name injects nothing.
// Wrapping happens per leaf device (RAID members are wrapped
// individually by the stack), so per-device rates compose with striping.
func (in *Injector) WrapDevice(k *sim.Kernel, d storage.Device) storage.Device {
	plan := in.plan.storagePlanFor(d.Name())
	if !plan.Enabled() {
		return d
	}
	return &faultyDevice{
		inner: d,
		k:     k,
		in:    in,
		plan:  plan,
		errs:  newStream(in.plan.Seed, d.Name()+"/eio"),
		slow:  newStream(in.plan.Seed, d.Name()+"/slow"),
	}
}

// Name implements storage.Device.
func (d *faultyDevice) Name() string { return d.inner.Name() }

// Parallelism implements storage.Device.
func (d *faultyDevice) Parallelism() int { return d.inner.Parallelism() }

// QueueDepth implements storage.Device.
func (d *faultyDevice) QueueDepth() int { return d.inner.QueueDepth() }

// Rotational implements storage.Device.
func (d *faultyDevice) Rotational() bool { return d.inner.Rotational() }

// Blocks implements storage.Device.
func (d *faultyDevice) Blocks() int64 { return d.inner.Blocks() }

// Stats implements storage.Device, reporting the inner device's
// counters (retried requests are counted per service, as a real drive's
// SMART counters would).
func (d *faultyDevice) Stats() storage.Stats { return d.inner.Stats() }

// Outstanding implements storage.Device. It counts requests submitted
// to the wrapper whose upper-layer completion has not run — including
// requests parked in a retry delay, which the inner device has
// momentarily forgotten about.
func (d *faultyDevice) Outstanding() int { return d.outstanding }

// Submit implements storage.Device.
func (d *faultyDevice) Submit(r *storage.Request, done func()) {
	d.outstanding++
	d.submit(r, done, 0)
}

// submit issues one service attempt for r.
func (d *faultyDevice) submit(r *storage.Request, done func(), attempt int) {
	d.inner.Submit(r, func() {
		i := d.completions
		d.completions++
		if attempt < d.plan.MaxErrorRetries && d.errs.hit(i, d.plan.ErrorRate) {
			// Transient error: the device retries internally after a
			// delay; the request re-enters the queue and the elevator
			// picks it against the then-current candidate set.
			d.in.stats.StorageErrors++
			d.k.After(d.plan.RetryDelay, func() { d.submit(r, done, attempt+1) })
			return
		}
		if d.slow.hit(i, d.plan.SlowRate) {
			d.in.stats.StorageSlow++
			d.k.After(d.plan.SlowExtra, func() {
				d.outstanding--
				done()
			})
			return
		}
		d.outstanding--
		done()
	})
}
