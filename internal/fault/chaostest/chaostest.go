// Package chaostest is the chaos-replay harness: it sweeps
// fault-injection seeds over a compiled benchmark and asserts the chaos
// invariants on every run — the replay terminates without panicking,
// the virtual clock stays monotonic, and the outcome (semantic error
// count, fault counters, elapsed virtual time, exported trace) is
// exactly reproducible for a given seed. The harness is what `artc
// chaos` and the CI chaos lane run; keeping it as a library lets tests
// drive the same invariants in-process.
//
// Panic capture is best-effort: a panic on the driver goroutine (setup,
// report assembly) is converted into a violation, while a panic on a
// simulated thread crashes the process — which CI reports as a failed
// lane, so the invariant still gates merges.
package chaostest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"rootreplay/internal/artc"
	"rootreplay/internal/fault"
	"rootreplay/internal/magritte"
	"rootreplay/internal/obs"
	"rootreplay/internal/par"
	"rootreplay/internal/sim"
	"rootreplay/internal/stack"
)

// Options configures a chaos run. The benchmark is compiled once by the
// caller and shared across seeds; each seed gets its own kernel, target
// stack, and injector.
type Options struct {
	// Bench is the compiled benchmark to replay.
	Bench *artc.Benchmark
	// Target is the simulated machine; each run clones it and wires a
	// fresh injector into Faults.
	Target stack.Config
	// Plan is the fault plan template. Its Seed field is overridden by
	// the per-run seed.
	Plan fault.Plan
	// Verify replays each seed twice and demands bit-identical results
	// (error counts, fault counters, elapsed time, and — with Obs — the
	// exported trace bytes).
	Verify bool
	// Obs records spans during each replay so Verify can compare the
	// exported Chrome trace byte-for-byte, and so single-seed runs can
	// export it.
	Obs bool
	// Shards, when positive, replays through the sharded replayer
	// (artc.ReplaySharded) with this worker bound instead of the serial
	// one; every invariant — including Verify's bit-reproducibility —
	// must hold identically.
	Shards int
	// Slice, when positive, additionally enables resource-cut slicing
	// (ShardOptions.SliceActions) with this action threshold, so the
	// sweep exercises the clock-exchange coordinator under faults.
	Slice int
	// SliceMax caps the slices per component (0 = no cap).
	SliceMax int
}

// Result is one seed's outcome. An empty Violations slice means every
// invariant held.
type Result struct {
	Seed    uint64
	Errors  int
	Elapsed time.Duration
	Stats   fault.Stats
	// Violations describes every invariant that failed for this seed.
	Violations []string
}

// OK reports whether the seed upheld all invariants.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// String renders a one-line per-seed summary.
func (r *Result) String() string {
	s := fmt.Sprintf("seed %d: errors=%d elapsed=%v %v", r.Seed, r.Errors, r.Elapsed, r.Stats)
	if !r.OK() {
		s += fmt.Sprintf(" VIOLATIONS=%d", len(r.Violations))
	}
	return s
}

// Seeds returns the n consecutive seeds starting at base, the sweep's
// default seed schedule.
func Seeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}

// Sweep runs every seed (in parallel across cores; each run is its own
// simulation) and returns index-aligned results. Invariant failures are
// reported per-seed in Result.Violations, not as an error.
func Sweep(opts Options, seeds []uint64) []Result {
	results := make([]Result, len(seeds))
	par.ForEach(len(seeds), func(i int) error {
		results[i], _ = RunSeed(opts, seeds[i])
		return nil
	})
	return results
}

// RunSeed replays one seed, checking invariants (twice, when Verify is
// set). The returned recorder is the first run's span recorder when
// Obs is set, for export.
func RunSeed(opts Options, seed uint64) (Result, *obs.Recorder) {
	res := Result{Seed: seed}
	repA, recA, viol := replayOnce(opts, seed)
	res.Violations = append(res.Violations, viol...)
	if repA == nil {
		return res, recA
	}
	res.Errors, res.Elapsed = repA.Errors, repA.Elapsed
	if repA.FaultStats != nil {
		res.Stats = *repA.FaultStats
	}
	if !opts.Verify {
		return res, recA
	}

	repB, recB, viol := replayOnce(opts, seed)
	res.Violations = append(res.Violations, viol...)
	if repB == nil {
		return res, recA
	}
	if repA.Errors != repB.Errors {
		res.Violations = append(res.Violations,
			fmt.Sprintf("error count not reproducible: %d vs %d", repA.Errors, repB.Errors))
	}
	sb := fault.Stats{}
	if repB.FaultStats != nil {
		sb = *repB.FaultStats
	}
	if res.Stats != sb {
		res.Violations = append(res.Violations,
			fmt.Sprintf("fault counters not reproducible: %v vs %v", res.Stats, sb))
	}
	if repA.Elapsed != repB.Elapsed {
		res.Violations = append(res.Violations,
			fmt.Sprintf("elapsed time not reproducible: %v vs %v", repA.Elapsed, repB.Elapsed))
	}
	if recA != nil && recB != nil {
		var a, b bytes.Buffer
		if err := recA.WriteChrome(&a); err == nil {
			if err := recB.WriteChrome(&b); err == nil && !bytes.Equal(a.Bytes(), b.Bytes()) {
				res.Violations = append(res.Violations,
					fmt.Sprintf("exported trace not reproducible: %d vs %d bytes", a.Len(), b.Len()))
			}
		}
	}
	return res, recA
}

// replayOnce is one full kernel + stack + replay cycle for the seed.
func replayOnce(opts Options, seed uint64) (rep *artc.Report, rec *obs.Recorder, violations []string) {
	defer func() {
		if r := recover(); r != nil {
			rep = nil
			violations = append(violations, fmt.Sprintf("panic: %v", r))
		}
	}()
	plan := opts.Plan
	plan.Seed = seed
	if opts.Obs {
		rec = obs.NewRecorder(0, 0)
	}
	var r *artc.Report
	var err error
	if opts.Shards > 0 {
		// Sharded chaos: each component replica gets its own injector
		// built from the plan (decisions are keyed by global action
		// index, so results match the serial replayer's).
		r, _, err = artc.ReplaySharded(opts.Bench, artc.Options{Obs: rec}, artc.ShardOptions{
			Shards: opts.Shards,
			Target: opts.Target,
			Init: func(sys *stack.System) error {
				return magritte.InitTarget(sys, opts.Bench, opts.Target.Platform == stack.Linux)
			},
			Fault:        &plan,
			SliceActions: opts.Slice,
			SliceMax:     opts.SliceMax,
		})
	} else {
		in := fault.New(plan)
		conf := opts.Target
		conf.Faults = in
		k := sim.NewKernel()
		sys := stack.New(k, conf)
		if err := magritte.InitTarget(sys, opts.Bench, conf.Platform == stack.Linux); err != nil {
			return nil, rec, append(violations, fmt.Sprintf("init: %v", err))
		}
		r, err = artc.Replay(sys, opts.Bench, artc.Options{Fault: in, Obs: rec})
	}
	if err != nil {
		// A stall report or kernel deadlock under random faults means
		// the replayer failed to degrade gracefully.
		return nil, rec, append(violations, fmt.Sprintf("replay did not terminate cleanly: %v", err))
	}
	violations = append(violations, clockViolations(r)...)
	return r, rec, violations
}

// clockViolations checks the monotonic virtual-clock invariant on a
// completed replay: every action issues at or after time zero,
// completes at or after it issued, and none completes after the
// reported elapsed time.
func clockViolations(r *artc.Report) []string {
	var out []string
	var last time.Duration
	for i := range r.DoneAt {
		if r.IssueAt[i] < 0 || r.DoneAt[i] < r.IssueAt[i] {
			out = append(out, fmt.Sprintf(
				"action %d: non-monotonic clock (issue %v, done %v)", i, r.IssueAt[i], r.DoneAt[i]))
			break
		}
		if r.DoneAt[i] > last {
			last = r.DoneAt[i]
		}
	}
	if last > r.Elapsed {
		out = append(out, fmt.Sprintf(
			"latest completion %v after reported elapsed %v", last, r.Elapsed))
	}
	return out
}

// WriteExport writes the seed's outcome as one deterministic JSON
// document: seed, error count, elapsed virtual time, fault counters,
// and — when a recorder is given — the Chrome trace export. Two runs of
// the same (benchmark, plan, seed) must produce identical bytes; the CI
// chaos lane compares exactly this.
func WriteExport(w io.Writer, res *Result, rec *obs.Recorder) error {
	stats, err := json.Marshal(res.Stats)
	if err != nil {
		return err
	}
	viol, err := json.Marshal(res.Violations)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "{\"seed\":%d,\"errors\":%d,\"elapsed_ns\":%d,\"stats\":%s,\"violations\":%s",
		res.Seed, res.Errors, res.Elapsed.Nanoseconds(), stats, viol); err != nil {
		return err
	}
	if rec != nil {
		if _, err := io.WriteString(w, ",\"chrome\":"); err != nil {
			return err
		}
		if err := rec.WriteChrome(w); err != nil {
			return err
		}
	}
	_, err = io.WriteString(w, "}\n")
	return err
}
