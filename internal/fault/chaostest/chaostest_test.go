package chaostest

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"rootreplay/internal/artc"
	"rootreplay/internal/core"
	"rootreplay/internal/fault"
	"rootreplay/internal/magritte"
)

// compileSmall compiles a small Magritte benchmark shared by the tests.
func compileSmall(t *testing.T) *artc.Benchmark {
	t.Helper()
	spec, ok := magritte.SpecByName("pages_docphoto15")
	if !ok {
		t.Fatal("unknown spec")
	}
	gen, err := magritte.Generate(spec, magritte.GenOptions{Scale: 0.005, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := artc.Compile(gen.Trace, gen.Snapshot, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func chaosPlan() fault.Plan {
	return fault.Plan{
		Syscall: fault.SyscallPlan{Rate: 0.02},
		Storage: fault.StoragePlan{ErrorRate: 0.02, SlowRate: 0.02},
		Retry:   fault.RetryPlan{MaxAttempts: 4},
	}
}

// A seed sweep over a real corpus trace must uphold every invariant,
// and the rates above must actually inject somewhere in the sweep.
func TestSweepInvariantsHold(t *testing.T) {
	opts := Options{
		Bench:  compileSmall(t),
		Target: magritte.DefaultSuiteOptions().Target,
		Plan:   chaosPlan(),
		Verify: true,
		Obs:    true,
	}
	results := Sweep(opts, Seeds(1, 4))
	injected := false
	for i := range results {
		if !results[i].OK() {
			t.Fatalf("%s:\n%s", results[i].String(),
				strings.Join(results[i].Violations, "\n"))
		}
		if s := results[i].Stats; s.SyscallInjected > 0 || s.StorageErrors > 0 || s.StorageSlow > 0 {
			injected = true
		}
	}
	if !injected {
		t.Fatal("a 4-seed sweep at 2% rates injected nothing")
	}
}

// A sliced sharded sweep — the clock-exchange coordinator under random
// faults — must uphold the same invariants at every shard count,
// including per-seed bit-reproducibility.
func TestSweepSlicedInvariantsHold(t *testing.T) {
	b := compileSmall(t)
	for _, shards := range []int{1, 2, 4, 8} {
		opts := Options{
			Bench:  b,
			Target: magritte.DefaultSuiteOptions().Target,
			Plan:   chaosPlan(),
			Verify: true,
			Obs:    true,
			Shards: shards,
			Slice:  len(b.Trace.Records)/4 + 1,
		}
		for _, res := range Sweep(opts, Seeds(1, 2)) {
			if !res.OK() {
				t.Fatalf("shards=%d %s:\n%s", shards, res.String(),
					strings.Join(res.Violations, "\n"))
			}
		}
	}
}

// The export must be byte-identical across two independent runs of the
// same seed, and must parse as one JSON document.
func TestExportBitReproducible(t *testing.T) {
	opts := Options{
		Bench:  compileSmall(t),
		Target: magritte.DefaultSuiteOptions().Target,
		Plan:   chaosPlan(),
		Obs:    true,
	}
	var a, b bytes.Buffer
	resA, recA := RunSeed(opts, 3)
	if err := WriteExport(&a, &resA, recA); err != nil {
		t.Fatal(err)
	}
	resB, recB := RunSeed(opts, 3)
	if err := WriteExport(&b, &resB, recB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("exports differ across identical runs (%d vs %d bytes)", a.Len(), b.Len())
	}
	var doc struct {
		Seed   uint64      `json:"seed"`
		Errors int         `json:"errors"`
		Stats  fault.Stats `json:"stats"`
		Chrome struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		} `json:"chrome"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.Seed != 3 || len(doc.Chrome.TraceEvents) == 0 {
		t.Fatalf("export lost content: seed=%d, %d trace events", doc.Seed, len(doc.Chrome.TraceEvents))
	}
}

// An impossible watchdog window forces a stall, which must surface as a
// violation — proving invariant failures actually propagate.
func TestViolationsPropagate(t *testing.T) {
	plan := chaosPlan()
	plan.Watchdog = time.Nanosecond
	opts := Options{
		Bench:  compileSmall(t),
		Target: magritte.DefaultSuiteOptions().Target,
		Plan:   plan,
	}
	res, _ := RunSeed(opts, 1)
	if res.OK() {
		t.Fatal("a 1ns watchdog cannot be satisfied, yet no violation was reported")
	}
	if !strings.Contains(res.Violations[0], "stalled (watchdog)") {
		t.Fatalf("violation = %q, want the stall report", res.Violations[0])
	}
}
