// Package fault is the deterministic fault-injection subsystem: seeded
// storage faults (transient errors and tail-latency spikes at device
// completion time), syscall-level injection plans for the replayer, and
// the resilience knobs the replayer consults (retry/backoff, stall
// watchdog, graceful degradation).
//
// Determinism contract: every injection decision is a pure function of
// (plan seed, site label, event index) — never of wall-clock time, host
// scheduling, or call order across sites. Two runs of the same
// simulation with the same Plan therefore inject byte-identically: the
// same storage completions are delayed or errored, the same replay
// actions fail, and every counter in Stats matches exactly. That is
// what makes a chaos failure a bug report instead of a flake: rerunning
// with the recorded seed reproduces it.
//
// An Injector is bound to one simulation (one sim.Kernel): its counters
// are bumped from kernel context and must not be shared across
// concurrently running kernels.
package fault

import (
	"fmt"
	"strings"
	"time"

	"rootreplay/internal/vfs"
)

// DegradeMode selects what the replayer does with actions that still
// fail after retries (or with an exhausted error budget).
type DegradeMode int

// Degradation modes.
const (
	// DegradeSkip counts the failure in the semantic-error accounting
	// and moves on (the default: replay completes, errors are reported).
	DegradeSkip DegradeMode = iota
	// DegradeAbort stops the replay once Plan.MaxErrors semantic errors
	// have accumulated, returning a structured StallReport-style error.
	DegradeAbort
)

// String names the mode for reports and flags.
func (m DegradeMode) String() string {
	if m == DegradeAbort {
		return "abort"
	}
	return "skip"
}

// StoragePlan configures fault injection on one block device. Faults
// are injected at completion time: the device's elevator/slot logic has
// already serviced the request, and the fault either re-queues it (a
// transient error, retried through the full queue again) or defers its
// completion (a slow-IO tail-latency spike).
type StoragePlan struct {
	// ErrorRate is the probability a completion is turned into a
	// transient error. The device retries internally after RetryDelay,
	// so upper layers observe only latency — as with a real drive whose
	// firmware retries a flaky sector.
	ErrorRate float64
	// MaxErrorRetries caps internal retries per request so a saturated
	// error rate cannot live-lock the device. Zero selects 8.
	MaxErrorRetries int
	// RetryDelay is the virtual-time delay before a failed request is
	// resubmitted. Zero selects 500µs.
	RetryDelay time.Duration
	// SlowRate is the probability a completion is deferred by SlowExtra,
	// modelling tail-latency spikes (media retries, thermal throttling).
	SlowRate float64
	// SlowExtra is the added completion delay for slow completions. Zero
	// selects 10ms.
	SlowExtra time.Duration
}

// Enabled reports whether the plan injects anything.
func (p StoragePlan) Enabled() bool { return p.ErrorRate > 0 || p.SlowRate > 0 }

// withDefaults fills zero fields.
func (p StoragePlan) withDefaults() StoragePlan {
	if p.MaxErrorRetries <= 0 {
		p.MaxErrorRetries = 8
	}
	if p.RetryDelay <= 0 {
		p.RetryDelay = 500 * time.Microsecond
	}
	if p.SlowExtra <= 0 {
		p.SlowExtra = 10 * time.Millisecond
	}
	return p
}

// SyscallPlan configures syscall-level injection in the replayer:
// selected replay actions return an error instead of executing, feeding
// the semantic-error accounting and exercising descriptor-table
// recovery (a failed open never registers its descriptor, so later
// calls on it miss the remap table exactly as after a real failure).
type SyscallPlan struct {
	// Rate is the per-attempt injection probability.
	Rate float64
	// Errno is the injected error's symbolic name (e.g. "EIO", the
	// default, or "ENOSPC").
	Errno string
	// Calls, when non-empty, restricts injection to these call names
	// (exact match on the traced name).
	Calls []string
	// PathSubstr, when non-empty, restricts injection to actions whose
	// path contains it.
	PathSubstr string
	// MaxInjections caps total injections; zero means unlimited.
	MaxInjections int64
}

// Enabled reports whether the plan injects anything.
func (p SyscallPlan) Enabled() bool { return p.Rate > 0 }

// RetryPlan configures the replayer's per-action retry of injected
// failures, with capped exponential backoff in virtual time.
type RetryPlan struct {
	// MaxAttempts is the total number of attempts per action (1 = no
	// retry). Values above 16 are clamped.
	MaxAttempts int
	// Backoff is the first retry's virtual-time delay. Zero selects
	// 100µs. Subsequent retries double it, capped at BackoffCap.
	Backoff time.Duration
	// BackoffCap bounds the doubled backoff. Zero selects 10ms.
	BackoffCap time.Duration
}

// withDefaults fills zero fields and clamps.
func (p RetryPlan) withDefaults() RetryPlan {
	if p.MaxAttempts > 16 {
		p.MaxAttempts = 16
	}
	if p.Backoff <= 0 {
		p.Backoff = 100 * time.Microsecond
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = 10 * time.Millisecond
	}
	return p
}

// Plan is a complete fault-injection configuration. The zero value
// injects nothing.
type Plan struct {
	// Seed drives every injection decision. Two runs with the same seed
	// (and the same workload) inject identically.
	Seed uint64
	// Storage is the default per-device storage plan.
	Storage StoragePlan
	// StorageByDevice overrides Storage for devices whose Name ends with
	// the map key (device names look like "linux-ext4-raid0/hdd0").
	StorageByDevice map[string]StoragePlan
	// Syscall is the replay-action injection plan.
	Syscall SyscallPlan
	// Retry configures replayer retry of injected failures.
	Retry RetryPlan
	// Watchdog, when positive, arms the replay stall watchdog: if no
	// action completes for this much virtual time, the replay is stopped
	// and a structured StallReport is returned instead of a silent hang.
	Watchdog time.Duration
	// Degrade selects skip-and-count (default) or abort.
	Degrade DegradeMode
	// MaxErrors is the semantic-error budget for DegradeAbort; zero
	// aborts on the first error.
	MaxErrors int
}

// storagePlanFor resolves the effective plan for a device name,
// preferring the longest matching suffix override.
func (p *Plan) storagePlanFor(name string) StoragePlan {
	best, bestLen := p.Storage, -1
	for suffix, sp := range p.StorageByDevice {
		if strings.HasSuffix(name, suffix) && len(suffix) > bestLen {
			best, bestLen = sp, len(suffix)
		}
	}
	return best
}

// Stats counts injected faults and the recovery work they triggered.
// All fields are exactly reproducible for a given (plan, workload).
type Stats struct {
	// SyscallInjected counts replay-action attempts that returned an
	// injected error.
	SyscallInjected int64
	// Retries counts replayer retry attempts (after injected failures).
	Retries int64
	// Recovered counts actions that failed an attempt but matched the
	// trace after retrying.
	Recovered int64
	// Skipped counts actions still failing after the retry budget in
	// skip-and-count mode.
	Skipped int64
	// StorageErrors counts transient device errors (internally retried).
	StorageErrors int64
	// StorageSlow counts completions deferred by a tail-latency spike.
	StorageSlow int64
}

// String renders the counters compactly for logs and chaos tables.
func (s Stats) String() string {
	return fmt.Sprintf("syscall=%d retries=%d recovered=%d skipped=%d dev-err=%d dev-slow=%d",
		s.SyscallInjected, s.Retries, s.Recovered, s.Skipped, s.StorageErrors, s.StorageSlow)
}

// Injector applies a Plan to one simulation. It carries the decision
// streams and the fault counters; create one per kernel (per replay)
// and share it between stack.Config.Faults and artc.Options.Fault so
// storage and syscall counters land in one Stats.
type Injector struct {
	plan    Plan
	syscall stream
	errno   vfs.Errno
	calls   map[string]struct{}
	stats   Stats
}

// New builds an Injector for plan, normalizing defaults. It panics on
// an unknown Syscall.Errno name so misconfigured chaos runs fail
// loudly instead of injecting the wrong error.
func New(plan Plan) *Injector {
	plan.Storage = plan.Storage.withDefaults()
	for k, sp := range plan.StorageByDevice {
		plan.StorageByDevice[k] = sp.withDefaults()
	}
	plan.Retry = plan.Retry.withDefaults()
	in := &Injector{
		plan:    plan,
		syscall: newStream(plan.Seed, "syscall"),
		errno:   vfs.EIO,
	}
	if name := plan.Syscall.Errno; name != "" {
		e, ok := vfs.ErrnoByName(name)
		if !ok {
			panic(fmt.Sprintf("fault: unknown errno %q in syscall plan", name))
		}
		in.errno = e
	}
	if len(plan.Syscall.Calls) > 0 {
		in.calls = make(map[string]struct{}, len(plan.Syscall.Calls))
		for _, c := range plan.Syscall.Calls {
			in.calls[c] = struct{}{}
		}
	}
	return in
}

// Plan returns the normalized plan the injector was built from.
func (in *Injector) Plan() Plan { return in.plan }

// Stats returns a snapshot of the fault counters.
func (in *Injector) Stats() Stats { return in.stats }

// SyscallFault decides whether the given attempt of a replay action
// fails, returning the injected errno. The decision depends only on
// (seed, action, attempt), so replays inject identically regardless of
// interleaving; attempts are capped at 64 per action by construction
// (RetryPlan clamps far below that).
func (in *Injector) SyscallFault(action, attempt int, call, path string) (vfs.Errno, bool) {
	p := &in.plan.Syscall
	if p.Rate <= 0 {
		return vfs.OK, false
	}
	if p.MaxInjections > 0 && in.stats.SyscallInjected >= p.MaxInjections {
		return vfs.OK, false
	}
	if in.calls != nil {
		if _, ok := in.calls[call]; !ok {
			return vfs.OK, false
		}
	}
	if p.PathSubstr != "" && !strings.Contains(path, p.PathSubstr) {
		return vfs.OK, false
	}
	if !in.syscall.hit(uint64(action)<<6|uint64(attempt&63), p.Rate) {
		return vfs.OK, false
	}
	in.stats.SyscallInjected++
	return in.errno, true
}

// RetryAttempts returns the per-action attempt budget (>= 1).
func (in *Injector) RetryAttempts() int {
	if in.plan.Retry.MaxAttempts < 1 {
		return 1
	}
	return in.plan.Retry.MaxAttempts
}

// Backoff returns the virtual-time delay before the given retry
// attempt (attempt 1 = first retry): Backoff doubled per attempt,
// capped at BackoffCap.
func (in *Injector) Backoff(attempt int) time.Duration {
	d := in.plan.Retry.Backoff
	for i := 1; i < attempt && d < in.plan.Retry.BackoffCap; i++ {
		d *= 2
	}
	if d > in.plan.Retry.BackoffCap {
		d = in.plan.Retry.BackoffCap
	}
	return d
}

// CountRetry records one replayer retry attempt.
func (in *Injector) CountRetry() { in.stats.Retries++ }

// CountRecovered records an action that matched the trace after
// retrying an injected failure.
func (in *Injector) CountRecovered() { in.stats.Recovered++ }

// CountSkipped records an action still failing after its retry budget
// in skip-and-count mode.
func (in *Injector) CountSkipped() { in.stats.Skipped++ }

// Watchdog returns the stall-watchdog interval (zero = disabled).
func (in *Injector) Watchdog() time.Duration { return in.plan.Watchdog }

// Degrade returns the degradation mode and error budget.
func (in *Injector) Degrade() (DegradeMode, int) { return in.plan.Degrade, in.plan.MaxErrors }

// stream is a deterministic per-site decision source. It is stateless:
// decision i is a pure function of (seed, site, i), so sites never
// perturb each other and call order is irrelevant.
type stream struct{ seed uint64 }

// newStream derives a site stream from the plan seed and a label.
func newStream(seed uint64, label string) stream {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return stream{seed: mix64(seed ^ h)}
}

// hit reports whether event i fires at the given rate.
func (s stream) hit(i uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	x := mix64(s.seed + i*0x9e3779b97f4a7c15)
	return float64(x>>11)/(1<<53) < rate
}

// mix64 is the splitmix64 finalizer: a strong 64-bit bijection.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
