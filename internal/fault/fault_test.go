package fault

import (
	"testing"
	"time"

	"rootreplay/internal/sim"
	"rootreplay/internal/storage"
	"rootreplay/internal/vfs"
)

// Decisions must be pure functions of (seed, site, index): same seed
// reproduces exactly, different seeds and different sites diverge.
func TestStreamDeterminism(t *testing.T) {
	a := newStream(42, "syscall")
	b := newStream(42, "syscall")
	c := newStream(43, "syscall")
	d := newStream(42, "dev/eio")
	sameAB, sameAC, sameAD := true, true, true
	for i := uint64(0); i < 4096; i++ {
		if a.hit(i, 0.3) != b.hit(i, 0.3) {
			sameAB = false
		}
		if a.hit(i, 0.3) != c.hit(i, 0.3) {
			sameAC = false
		}
		if a.hit(i, 0.3) != d.hit(i, 0.3) {
			sameAD = false
		}
	}
	if !sameAB {
		t.Fatal("same (seed, site) produced different decisions")
	}
	if sameAC {
		t.Fatal("different seeds produced identical decision sequences")
	}
	if sameAD {
		t.Fatal("different sites produced identical decision sequences")
	}
}

func TestStreamRateExtremes(t *testing.T) {
	s := newStream(7, "x")
	for i := uint64(0); i < 64; i++ {
		if s.hit(i, 0) {
			t.Fatal("rate 0 fired")
		}
		if !s.hit(i, 1) {
			t.Fatal("rate 1 did not fire")
		}
	}
}

func TestStreamRateIsRoughlyCalibrated(t *testing.T) {
	s := newStream(99, "cal")
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if s.hit(uint64(i), 0.1) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if got < 0.08 || got > 0.12 {
		t.Fatalf("rate 0.1 fired %.4f of the time", got)
	}
}

func TestSyscallFaultFilters(t *testing.T) {
	in := New(Plan{Seed: 1, Syscall: SyscallPlan{
		Rate: 1, Errno: "ENOSPC", Calls: []string{"write"}, PathSubstr: "/data",
	}})
	if _, ok := in.SyscallFault(0, 0, "read", "/data/f"); ok {
		t.Fatal("call filter ignored")
	}
	if _, ok := in.SyscallFault(0, 0, "write", "/etc/f"); ok {
		t.Fatal("path filter ignored")
	}
	e, ok := in.SyscallFault(0, 0, "write", "/data/f")
	if !ok || e != vfs.ENOSPC {
		t.Fatalf("got (%v, %v), want (ENOSPC, true)", e, ok)
	}
	if in.Stats().SyscallInjected != 1 {
		t.Fatalf("SyscallInjected = %d, want 1", in.Stats().SyscallInjected)
	}
}

func TestSyscallFaultCap(t *testing.T) {
	in := New(Plan{Seed: 1, Syscall: SyscallPlan{Rate: 1, MaxInjections: 3}})
	n := 0
	for i := 0; i < 10; i++ {
		if _, ok := in.SyscallFault(i, 0, "read", "/f"); ok {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("injected %d, want capped at 3", n)
	}
}

func TestUnknownErrnoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown errno accepted silently")
		}
	}()
	New(Plan{Syscall: SyscallPlan{Rate: 1, Errno: "EBOGUS"}})
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	in := New(Plan{Retry: RetryPlan{
		MaxAttempts: 8, Backoff: time.Millisecond, BackoffCap: 3 * time.Millisecond,
	}})
	if d := in.Backoff(1); d != time.Millisecond {
		t.Fatalf("attempt 1 backoff %v", d)
	}
	if d := in.Backoff(2); d != 2*time.Millisecond {
		t.Fatalf("attempt 2 backoff %v", d)
	}
	if d := in.Backoff(5); d != 3*time.Millisecond {
		t.Fatalf("attempt 5 backoff %v, want capped at 3ms", d)
	}
}

func TestStoragePlanSuffixOverride(t *testing.T) {
	p := Plan{
		Storage: StoragePlan{ErrorRate: 0.1},
		StorageByDevice: map[string]StoragePlan{
			"hdd0":      {ErrorRate: 0.5},
			"raid/hdd0": {ErrorRate: 0.9},
		},
	}
	if got := p.storagePlanFor("t/raid/hdd0").ErrorRate; got != 0.9 {
		t.Fatalf("longest suffix must win, got rate %v", got)
	}
	if got := p.storagePlanFor("t/hdd1").ErrorRate; got != 0.1 {
		t.Fatalf("unmatched device must use the default, got rate %v", got)
	}
}

// runDeviceWorkload submits n scattered requests through a wrapped HDD
// and returns the completion times and fault stats.
func runDeviceWorkload(t *testing.T, seed uint64, plan StoragePlan, n int) ([]time.Duration, Stats) {
	t.Helper()
	in := New(Plan{Seed: seed, Storage: plan})
	k := sim.NewKernel()
	dev := in.WrapDevice(k, storage.NewHDD(k, "t/hdd", storage.DefaultHDD()))
	if _, ok := dev.(*faultyDevice); !ok {
		t.Fatal("enabled plan did not wrap the device")
	}
	doneAt := make([]time.Duration, n)
	k.Spawn("submitter", func(th *sim.Thread) {
		for i := 0; i < n; i++ {
			i := i
			r := &storage.Request{Kind: storage.Read, LBA: int64(i*7919) % 100000, Blocks: 1}
			dev.Submit(r, func() { doneAt[i] = k.Now() })
			th.Sleep(time.Duration(i%3) * 100 * time.Microsecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if dev.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d after drain, want 0", dev.Outstanding())
	}
	return doneAt, in.Stats()
}

// Transient device errors must be retried to successful completion —
// every request completes, later than a fault-free run — and the whole
// schedule must reproduce exactly for a given seed.
func TestDeviceFaultsRetryAndReproduce(t *testing.T) {
	plan := StoragePlan{ErrorRate: 0.3, SlowRate: 0.2}
	a, sa := runDeviceWorkload(t, 11, plan, 200)
	b, sb := runDeviceWorkload(t, 11, plan, 200)
	if sa != sb {
		t.Fatalf("stats diverged across identical runs:\n%v\n%v", sa, sb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("completion %d at %v vs %v across identical runs", i, a[i], b[i])
		}
		if a[i] == 0 {
			t.Fatalf("request %d never completed", i)
		}
	}
	if sa.StorageErrors == 0 || sa.StorageSlow == 0 {
		t.Fatalf("expected both fault kinds at these rates, got %v", sa)
	}

	clean, cs := runDeviceWorkload(t, 11, StoragePlan{ErrorRate: 0.3}, 200)
	_ = clean
	if cs.StorageSlow != 0 {
		t.Fatalf("zero slow rate still injected: %v", cs)
	}
}

// A saturated error rate must terminate via the retry cap rather than
// live-locking the simulation.
func TestDeviceErrorRetryCap(t *testing.T) {
	done, st := runDeviceWorkload(t, 5, StoragePlan{ErrorRate: 1, MaxErrorRetries: 4}, 16)
	for i, d := range done {
		if d == 0 {
			t.Fatalf("request %d never completed under saturated error rate", i)
		}
	}
	if st.StorageErrors != 16*4 {
		t.Fatalf("StorageErrors = %d, want 64 (4 capped retries per request)", st.StorageErrors)
	}
}

// Zero-rate plans must not wrap at all: the off path is the identical
// Device value, not a pass-through shim.
func TestZeroRatePlanDoesNotWrap(t *testing.T) {
	in := New(Plan{Seed: 1})
	k := sim.NewKernel()
	hdd := storage.NewHDD(k, "t/hdd", storage.DefaultHDD())
	if dev := in.WrapDevice(k, hdd); dev != storage.Device(hdd) {
		t.Fatal("zero-rate plan wrapped the device")
	}
}
