package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"testing"
	"time"

	"rootreplay/internal/magritte"
)

func TestCancelWhileQueued(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, QueueBound: 8})
	running := submitSleep(t, s, "a", 30_000)
	waitState(t, s, "a", running, StateRunning)
	// With the lone worker busy, the next two jobs stay queued (one may
	// be held by the dispatcher — still cancelable, still "queued").
	b := submitSleep(t, s, "a", 0)
	c := submitSleep(t, s, "a", 0)
	for _, id := range []string{c, b} {
		w := do(s, http.MethodDelete, "/v1/tenants/a/jobs/"+id, nil)
		var doc struct {
			State State `json:"state"`
		}
		json.Unmarshal(w.Body.Bytes(), &doc)
		if doc.State != StateCanceled {
			t.Fatalf("cancel of queued %s: state %s, want canceled immediately", id, doc.State)
		}
	}
	// Canceling a terminal job is a no-op, not an error.
	w := do(s, http.MethodDelete, "/v1/tenants/a/jobs/"+b, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("re-cancel: %d %s", w.Code, w.Body)
	}
	do(s, http.MethodDelete, "/v1/tenants/a/jobs/"+running, nil)
	waitState(t, s, "a", running, StateCanceled)
	if got := s.counters.Get("artcd_jobs_canceled"); got != 3 {
		t.Fatalf("artcd_jobs_canceled = %d, want 3", got)
	}
	if got := s.counters.Get("artcd_jobs_queued"); got != 0 {
		t.Fatalf("queue depth gauge = %d after cancels, want 0", got)
	}
}

func TestCancelWhileRunning(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1})
	id := submitSleep(t, s, "a", 30_000)
	waitState(t, s, "a", id, StateRunning)
	start := time.Now()
	do(s, http.MethodDelete, "/v1/tenants/a/jobs/"+id, nil)
	waitState(t, s, "a", id, StateCanceled)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel of running job took %v; the runner never observed it", elapsed)
	}
}

// Graceful drain: admitted jobs — running and queued — complete, new
// work is refused with 503, and no goroutines are left behind.
func TestDrainCompletesInFlightJobs(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{Workers: 2, EnableTestKinds: true})
	running := submitSleep(t, s, "a", 300)
	waitState(t, s, "a", running, StateRunning)
	queued := submitSleep(t, s, "a", 0)

	done := make(chan error, 1)
	go func() {
		ctx, cancel := timeoutCtx(10 * time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()

	// While draining, new submissions and uploads answer 503.
	deadline := time.Now().Add(5 * time.Second)
	for {
		w := do(s, http.MethodPost, "/v1/tenants/a/jobs", []byte(`{"kind":"sleep","ms":0}`))
		if w.Code == http.StatusServiceUnavailable {
			checkJSONErrorLine(t, w, "draining")
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submissions never started answering 503 during drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := jobState(t, s, "a", running); st != StateDone {
		t.Fatalf("running job drained to %s, want done", st)
	}
	if st := jobState(t, s, "a", queued); st != StateDone {
		t.Fatalf("queued job drained to %s, want done", st)
	}
	// Leak check: the dispatcher and every pool worker must be gone.
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+1 {
			break
		} else if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines leaked across Shutdown: %d before, %d after", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// An expired drain deadline cancels the stragglers instead of hanging.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	s := New(Config{Workers: 1, EnableTestKinds: true})
	id := submitSleep(t, s, "a", 30_000)
	waitState(t, s, "a", id, StateRunning)
	ctx, cancel := timeoutCtx(50 * time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown returned nil despite unfinished jobs at deadline")
	}
	if st := jobState(t, s, "a", id); st != StateCanceled {
		t.Fatalf("straggler state %s, want canceled", st)
	}
}

// Concurrent submissions of the same trace share one compile: the
// second job joins the first's singleflight instead of compiling again.
func TestConcurrentSameTraceSharesCompile(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, QueueBound: 8})
	traceID, snapID := uploadMagritte(t, s, "a")

	gate := make(chan struct{})
	entered := make(chan string, 2)
	s.hooks.compileStarted = func(key string) {
		entered <- key
		<-gate
	}
	req := fmt.Sprintf(`{"kind":"replay","trace":"%s","snapshot":"%s"}`, traceID, snapID)
	submit := func() string {
		w := do(s, http.MethodPost, "/v1/tenants/a/jobs", []byte(req))
		if w.Code != http.StatusAccepted {
			t.Fatalf("submit: %d %s", w.Code, w.Body)
		}
		var doc struct {
			ID string `json:"id"`
		}
		json.Unmarshal(w.Body.Bytes(), &doc)
		return doc.ID
	}
	a := submit()
	key := <-entered // first job is now the compile leader, blocked
	b := submit()
	// The second job must join the leader's flight, not start its own.
	deadline := time.Now().Add(5 * time.Second)
	for s.flightWaiters(key) != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("second job never joined the in-flight compile (waiters=%d)", s.flightWaiters(key))
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(gate)
	waitState(t, s, "a", a, StateDone)
	waitState(t, s, "a", b, StateDone)
	if got := s.counters.Get("artcd_compiles"); got != 1 {
		t.Fatalf("artcd_compiles = %d, want 1 (shared)", got)
	}
	if got := s.counters.Get("artcd_compiles_shared"); got != 1 {
		t.Fatalf("artcd_compiles_shared = %d, want 1", got)
	}
	select {
	case k := <-entered:
		t.Fatalf("a second compile started (key %s)", k)
	default:
	}
}

// uploadMagritte generates a small Magritte trace in-process and
// uploads its native encoding plus snapshot, returning the blob ids.
func uploadMagritte(t *testing.T, s *Server, tenant string) (traceID, snapID string) {
	t.Helper()
	spec, ok := magritte.SpecByName("pages_docphoto15")
	if !ok {
		t.Fatal("unknown magritte spec")
	}
	gen, err := magritte.Generate(spec, magritte.GenOptions{Scale: 0.01, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var tb, sb bytes.Buffer
	if err := gen.Trace.Encode(&tb); err != nil {
		t.Fatal(err)
	}
	if err := gen.Snapshot.Encode(&sb); err != nil {
		t.Fatal(err)
	}
	up := func(data []byte) string {
		w := do(s, http.MethodPost, "/v1/tenants/"+tenant+"/traces", data)
		if w.Code != http.StatusOK {
			t.Fatalf("upload: %d %s", w.Code, w.Body)
		}
		var doc struct {
			ID string `json:"id"`
		}
		json.Unmarshal(w.Body.Bytes(), &doc)
		return doc.ID
	}
	return up(tb.Bytes()), up(sb.Bytes())
}
