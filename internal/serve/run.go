package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"rootreplay/internal/artc"
	"rootreplay/internal/artifact"
	"rootreplay/internal/core"
	"rootreplay/internal/fault"
	"rootreplay/internal/fault/chaostest"
	"rootreplay/internal/magritte"
	"rootreplay/internal/obs"
	"rootreplay/internal/sim"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
)

// errCanceled marks a run cut short by cancellation; runJob maps it to
// StateCanceled via the job's canceled flag, never to StateFailed.
var errCanceled = errors.New("canceled")

// marshalLine renders v as one newline-terminated JSON line, the shape
// every service result document shares.
func marshalLine(v any) ([]byte, string, error) {
	doc, err := json.Marshal(v)
	if err != nil {
		return nil, "", err
	}
	return append(doc, '\n'), "application/json", nil
}

// flight is one in-progress compile shared by every job that needs the
// same (trace, snapshot, format) benchmark at the same moment.
type flight struct {
	done    chan struct{}
	waiters int
	b       *artc.Benchmark
	st      artifact.Stats
	err     error
}

// compileShared compiles the job's trace through the artifact store,
// collapsing concurrent identical compiles into one: the first job in
// becomes the leader, later arrivals wait on its flight. Together with
// the content-addressed store this gives cross-tenant dedup at both
// layers — on disk by construction, in memory by singleflight.
func (s *Server) compileShared(j *Job) (*artc.Benchmark, error) {
	req := j.req
	key := req.Format + "|" + req.Trace + "|" + req.Snapshot

	s.mu.Lock()
	if f := s.flights[key]; f != nil {
		f.waiters++
		s.mu.Unlock()
		<-f.done
		s.counters.Add("artcd_compiles_shared", 1)
		return f.b, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	raw := s.blobs[req.Trace]
	snapRaw := s.blobs[req.Snapshot]
	s.mu.Unlock()

	f.b, f.st, f.err = s.doCompile(key, req, raw, snapRaw)

	s.mu.Lock()
	delete(s.flights, key)
	s.mu.Unlock()
	close(f.done)

	if f.err == nil && f.st.Key != "" {
		if f.st.Hit {
			s.counters.Add("artcd_cache_hits", 1)
		} else {
			s.counters.Add("artcd_cache_misses", 1)
		}
	}
	return f.b, f.err
}

// flightWaiters reports how many jobs are blocked on the named flight
// (test instrumentation).
func (s *Server) flightWaiters(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f := s.flights[key]; f != nil {
		return f.waiters
	}
	return 0
}

// doCompile is the singleflight leader's work: decode inputs, compile
// through the store (or directly when caching is off).
func (s *Server) doCompile(key string, req jobRequest, raw, snapRaw []byte) (*artc.Benchmark, artifact.Stats, error) {
	if s.hooks.compileStarted != nil {
		s.hooks.compileStarted(key)
	}
	s.counters.Add("artcd_compiles", 1)
	if raw == nil {
		return nil, artifact.Stats{}, fmt.Errorf("trace blob %s disappeared", req.Trace)
	}
	var snap *snapshot.Snapshot
	if req.Snapshot != "" {
		if snapRaw == nil {
			return nil, artifact.Stats{}, fmt.Errorf("snapshot blob %s disappeared", req.Snapshot)
		}
		var err error
		if snap, err = snapshot.Decode(bytes.NewReader(snapRaw)); err != nil {
			return nil, artifact.Stats{}, fmt.Errorf("snapshot: %w", err)
		}
	}
	modes := core.DefaultModes()
	switch req.Format {
	case "strace":
		return artifact.CompileStrace(s.cfg.Store, raw, snap, modes)
	default: // native, validated at admission
		tr, err := trace.Decode(bytes.NewReader(raw))
		if err != nil {
			return nil, artifact.Stats{}, fmt.Errorf("trace: %w", err)
		}
		return artifact.CompileTrace(s.cfg.Store, tr, snap, modes)
	}
}

// execute runs one job to produce its result document. Cancellation is
// observed at phase boundaries (before compile, before replay): a
// replay in flight always completes — it is a pure virtual-time
// computation — and the canceled flag decides the terminal state.
func (s *Server) execute(j *Job) ([]byte, string, error) {
	if j.Kind == "sleep" {
		select {
		case <-time.After(time.Duration(j.req.Ms) * time.Millisecond):
			return []byte("{\"slept_ms\":" + fmt.Sprint(j.req.Ms) + "}\n"), "application/json", nil
		case <-j.cancel:
			return nil, "", errCanceled
		}
	}
	if j.isCanceled() {
		return nil, "", errCanceled
	}
	b, err := s.compileShared(j)
	if err != nil {
		return nil, "", err
	}
	if j.isCanceled() {
		return nil, "", errCanceled
	}
	conf, err := stack.ParseTarget(j.req.Target, 0, 0)
	if err != nil {
		return nil, "", err
	}
	switch j.Kind {
	case "chaos":
		return s.runChaos(j, b, conf)
	default: // replay, export
		return s.runReplay(j, b, conf)
	}
}

func (j *Job) isCanceled() bool {
	select {
	case <-j.cancel:
		return true
	default:
		return false
	}
}

// runReplay executes the replay/export kinds through exactly the code
// path `artc trace` uses, so an export fetched over HTTP is
// byte-identical to the CLI's file for the same trace and options —
// the service-path determinism contract CI enforces.
func (s *Server) runReplay(j *Job, b *artc.Benchmark, conf stack.Config) ([]byte, string, error) {
	req := j.req
	var rec *obs.Recorder
	opts := artc.Options{Method: artc.Method(req.Method)}
	if j.Kind == "export" {
		rec = obs.NewRecorder(0, 0)
		opts.Obs = rec
	}
	var rep *artc.Report
	var err error
	if req.Shards != 0 {
		so := artc.ShardOptions{
			Shards: req.Shards,
			Target: conf,
			Init: func(sys *stack.System) error {
				if err := magritte.InitTarget(sys, b, conf.Platform == stack.Linux); err != nil {
					return err
				}
				if req.Warm {
					sys.WarmAll()
				}
				return nil
			},
			SliceActions: req.SliceActions,
			SliceMax:     req.SliceMax,
		}
		rep, _, err = artc.ReplaySharded(b, opts, so)
	} else {
		k := sim.NewKernel()
		sys := stack.New(k, conf)
		if err := magritte.InitTarget(sys, b, conf.Platform == stack.Linux); err != nil {
			return nil, "", err
		}
		if req.Warm {
			sys.WarmAll()
		}
		rep, err = artc.Replay(sys, b, opts)
	}
	if err != nil {
		return nil, "", err
	}
	if j.Kind == "export" {
		if req.NoSamples {
			rec.ClearSamples()
		}
		var buf bytes.Buffer
		if err := rec.WriteChrome(&buf); err != nil {
			return nil, "", err
		}
		return buf.Bytes(), "application/json", nil
	}
	return reportDoc(rep)
}

// reportDoc renders a replay report as deterministic JSON: fixed field
// order, calls sorted by name. Two replays of the same inputs marshal
// to identical bytes.
func reportDoc(rep *artc.Report) ([]byte, string, error) {
	type callDoc struct {
		Name   string `json:"name"`
		Count  int64  `json:"count"`
		TimeNs int64  `json:"time_ns"`
	}
	names := make([]string, 0, len(rep.CallTime))
	for c := range rep.CallTime {
		names = append(names, c)
	}
	sort.Strings(names)
	calls := make([]callDoc, 0, len(names))
	for _, c := range names {
		calls = append(calls, callDoc{c, rep.CallCount[c], rep.CallTime[c].Nanoseconds()})
	}
	doc := struct {
		Method      string    `json:"method"`
		Actions     int       `json:"actions"`
		ElapsedNs   int64     `json:"elapsed_ns"`
		Errors      int       `json:"errors"`
		Emulated    int       `json:"emulated"`
		Concurrency float64   `json:"concurrency"`
		Calls       []callDoc `json:"calls"`
	}{
		Method:      string(rep.Method),
		Actions:     rep.Actions,
		ElapsedNs:   rep.Elapsed.Nanoseconds(),
		Errors:      rep.Errors,
		Emulated:    rep.Emulated,
		Concurrency: rep.Concurrency(),
		Calls:       calls,
	}
	return marshalLine(doc)
}

// runChaos sweeps consecutive fault seeds (fanned out over the par
// pool inside chaostest.Sweep) and renders a deterministic verdict.
// The plan mirrors `artc chaos`'s flag defaults.
func (s *Server) runChaos(j *Job, b *artc.Benchmark, conf stack.Config) ([]byte, string, error) {
	req := j.req
	opts := chaostest.Options{
		Bench:  b,
		Target: conf,
		Plan: fault.Plan{
			Syscall:  fault.SyscallPlan{Rate: 0.02, Errno: "EIO"},
			Storage:  fault.StoragePlan{ErrorRate: 0.02, SlowRate: 0.02},
			Retry:    fault.RetryPlan{MaxAttempts: 4},
			Watchdog: time.Minute,
		},
		Verify:   req.Verify,
		Shards:   req.Shards,
		Slice:    req.SliceActions,
		SliceMax: req.SliceMax,
	}
	sweep := chaostest.Sweep(opts, chaostest.Seeds(req.Seed, req.Seeds))
	type seedDoc struct {
		Seed       uint64   `json:"seed"`
		Errors     int      `json:"errors"`
		ElapsedNs  int64    `json:"elapsed_ns"`
		OK         bool     `json:"ok"`
		Violations []string `json:"violations,omitempty"`
	}
	doc := struct {
		OK    bool      `json:"ok"`
		Seeds []seedDoc `json:"seeds"`
	}{OK: true}
	for i := range sweep {
		r := &sweep[i]
		doc.Seeds = append(doc.Seeds, seedDoc{
			Seed: r.Seed, Errors: r.Errors, ElapsedNs: r.Elapsed.Nanoseconds(),
			OK: r.OK(), Violations: r.Violations,
		})
		if !r.OK() {
			doc.OK = false
		}
	}
	return marshalLine(doc)
}
