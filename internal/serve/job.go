package serve

import (
	"fmt"
	"time"

	"rootreplay/internal/stack"
)

// State is a job's lifecycle position. Transitions:
//
//	queued → running → done | failed | canceled
//	queued → canceled                       (cancel before start)
//
// Terminal states never change; a cancel that lands while the job is
// running wins over completion, so DELETE is deterministic for callers.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether st is an end state.
func terminal(st State) bool {
	return st == StateDone || st == StateFailed || st == StateCanceled
}

// Job is one admitted unit of work. Mutable fields are guarded by the
// server's mu; the cancel channel is closed at most once (when a cancel
// lands on a running job) and observed by the runner at phase
// boundaries.
type Job struct {
	ID     string
	Tenant string
	Kind   string

	state    State
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time

	req        jobRequest
	cancel     chan struct{}
	canceled   bool
	result     []byte
	resultType string
}

// jobRequest is the submission document. Unknown fields are rejected;
// zero values select the CLI's defaults so a job and the equivalent
// artc invocation describe the same replay.
type jobRequest struct {
	// Kind selects the work: "replay" (deterministic report JSON),
	// "export" (Perfetto/Chrome trace export, byte-identical to
	// `artc trace`), "chaos" (seeded fault sweep verdict), or "sleep"
	// (test kinds only).
	Kind string `json:"kind"`
	// Trace is the uploaded trace blob id ("sha256:<hex>").
	Trace string `json:"trace,omitempty"`
	// Snapshot optionally names an uploaded initial-state snapshot.
	Snapshot string `json:"snapshot,omitempty"`
	// Format is the trace encoding: "native" (default) or "strace".
	Format string `json:"format,omitempty"`
	// Target is the simulated machine (default linux-ext4-ssd-noop,
	// matching `artc trace`).
	Target string `json:"target,omitempty"`
	// Method is the replay ordering method (default artc).
	Method string `json:"method,omitempty"`
	// Shards > 0 replays through the sharded replayer with that worker
	// bound; SliceActions/SliceMax add resource-cut slicing.
	Shards       int  `json:"shards,omitempty"`
	SliceActions int  `json:"slice_actions,omitempty"`
	SliceMax     int  `json:"slice_max,omitempty"`
	Warm         bool `json:"warm,omitempty"`
	NoSamples    bool `json:"no_samples,omitempty"`
	// Chaos controls: Seeds consecutive seeds starting at Seed, each
	// verified (replayed twice, compared bit-for-bit) when Verify.
	Seed   uint64 `json:"seed,omitempty"`
	Seeds  int    `json:"seeds,omitempty"`
	Verify bool   `json:"verify,omitempty"`
	// Ms is the sleep duration for the "sleep" test kind.
	Ms int `json:"ms,omitempty"`
}

// maxima for strictly validated numeric fields; work a single job may
// claim must be bounded at admission, not discovered at run time.
const (
	maxSeeds   = 256
	maxShards  = 64
	maxSleepMs = 60_000
)

// normalize validates req and fills defaults, returning a contract
// error message ("" when valid). It never mutates on failure paths the
// caller can observe — failures reject the submission outright.
func (s *Server) normalize(req *jobRequest) string {
	switch req.Kind {
	case "replay", "export", "chaos":
	case "sleep":
		if !s.cfg.EnableTestKinds {
			return `unknown kind "sleep"`
		}
		if req.Ms < 0 || req.Ms > maxSleepMs {
			return fmt.Sprintf("ms out of range [0, %d]", maxSleepMs)
		}
		return ""
	default:
		return fmt.Sprintf("unknown kind %q (want replay, export, or chaos)", req.Kind)
	}
	if req.Trace == "" {
		return "trace is required"
	}
	if req.Format == "" {
		req.Format = "native"
	}
	switch req.Format {
	case "native", "strace":
	default:
		return fmt.Sprintf("unknown format %q (want native or strace)", req.Format)
	}
	if req.Target == "" {
		req.Target = "linux-ext4-ssd-noop"
	}
	if _, err := stack.ParseTarget(req.Target, 0, 0); err != nil {
		return err.Error()
	}
	if req.Method == "" {
		req.Method = "artc"
	}
	switch req.Method {
	case "artc", "single", "temporal", "unconstrained":
	default:
		return fmt.Sprintf("unknown method %q", req.Method)
	}
	if req.Shards < 0 || req.Shards > maxShards {
		return fmt.Sprintf("shards out of range [0, %d]", maxShards)
	}
	if req.SliceActions < 0 || req.SliceMax < 0 {
		return "slice_actions and slice_max must be >= 0"
	}
	if req.SliceActions > 0 && req.Shards == 0 {
		return "slice_actions requires shards"
	}
	if req.Kind == "chaos" {
		if req.Seeds == 0 {
			req.Seeds = 1
		}
		if req.Seeds < 1 || req.Seeds > maxSeeds {
			return fmt.Sprintf("seeds out of range [1, %d]", maxSeeds)
		}
		if req.Seed == 0 {
			req.Seed = 1
		}
	} else if req.Seeds != 0 || req.Seed != 0 || req.Verify {
		return "seed/seeds/verify apply only to kind chaos"
	}
	if req.Ms != 0 {
		return "ms applies only to kind sleep"
	}
	return ""
}

// admit creates and enqueues a job for tenant t. The caller holds mu
// and has already checked the queue bound and draining state.
func (s *Server) admitLocked(t *tenant, req jobRequest) *Job {
	t.seq++
	j := &Job{
		ID:      fmt.Sprintf("j%06d", t.seq),
		Tenant:  t.name,
		Kind:    req.Kind,
		state:   StateQueued,
		created: time.Now(),
		req:     req,
		cancel:  make(chan struct{}),
	}
	t.jobs[j.ID] = j
	t.jobOrder = append(t.jobOrder, j.ID)
	t.queue = append(t.queue, j)
	t.queued++
	s.liveJobs++
	s.counters.Add("artcd_jobs_submitted", 1)
	s.counters.Add("artcd_jobs_queued", 1)
	s.cond.Broadcast()
	return j
}

// cancelJobLocked moves j toward canceled (caller holds mu): a queued
// job finalizes immediately; a running one has its cancel channel
// closed and finalizes when the runner next observes it. Terminal jobs
// are untouched.
func (s *Server) cancelJobLocked(t *tenant, j *Job) {
	switch j.state {
	case StateQueued:
		j.canceled = true
		for i, q := range t.queue {
			if q == j {
				t.queue = append(t.queue[:i], t.queue[i+1:]...)
				break
			}
		}
		s.finalizeLocked(t, j, StateCanceled, "")
	case StateRunning:
		if !j.canceled {
			j.canceled = true
			close(j.cancel)
		}
	}
}

// runJob executes one dispatched job on a pool worker.
func (s *Server) runJob(j *Job) {
	s.mu.Lock()
	t := s.tenants[j.Tenant]
	if j.canceled || j.state != StateQueued {
		// Canceled between dispatch and start; already finalized.
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	t.queued--
	s.counters.Add("artcd_jobs_queued", -1)
	s.counters.Add("artcd_jobs_running", 1)
	s.mu.Unlock()

	result, ctype, err := s.execute(j)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters.Add("artcd_jobs_running", -1)
	switch {
	case j.canceled:
		s.finalizeLocked(t, j, StateCanceled, "")
	case err != nil:
		s.finalizeLocked(t, j, StateFailed, err.Error())
	default:
		j.result = result
		j.resultType = ctype
		s.finalizeLocked(t, j, StateDone, "")
	}
}

// finalizeLocked records a terminal state (caller holds mu). It is the
// single place live-job accounting ends, so drain waiters and the
// per-state counters stay consistent.
func (s *Server) finalizeLocked(t *tenant, j *Job, st State, errMsg string) {
	if terminal(j.state) {
		return
	}
	if j.state == StateQueued {
		t.queued--
		s.counters.Add("artcd_jobs_queued", -1)
	}
	j.state = st
	j.errMsg = errMsg
	j.finished = time.Now()
	s.counters.Add("artcd_jobs_"+string(st), 1)
	s.liveJobs--
	s.cond.Broadcast()
}
