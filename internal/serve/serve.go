// Package serve is the replay-as-a-service layer: a multi-tenant
// HTTP/JSON front end over the artc pipeline (parse → compile → cache →
// replay/chaos), run by cmd/artcd.
//
// The service exists because ROOT-style replay is deterministic by
// construction — a replay's result is a pure function of (trace,
// options, profile), computed on virtual clocks — so concurrent jobs
// cannot perturb each other's results. That is the property that makes
// replay servable: jobs from unrelated tenants co-schedule on one
// worker pool with no isolation machinery beyond admission control, and
// the artifact cache deduplicates compiles across tenants by content
// address (same trace bytes, same key) without correctness risk.
//
// Contract (the tool-contract style the CLI already follows):
//
//   - Every error response is a single-line JSON object
//     {"error":"<code>","message":"..."} terminated by a newline.
//   - Inputs are strictly validated: unknown JSON fields, out-of-range
//     values, and malformed names are rejected with 400 before any work
//     is admitted.
//   - Backpressure is explicit and bounded: a full per-tenant queue
//     rejects with 429 + Retry-After, an exhausted upload budget with
//     507, an oversized body with 413. Nothing buffers unboundedly.
//   - Shutdown drains: admitted jobs (queued and running) complete,
//     new work is refused with 503, and no goroutines are left behind.
package serve

import (
	"context"
	"net/http"
	"regexp"
	"sync"

	"rootreplay/internal/artifact"
	"rootreplay/internal/obs"
	"rootreplay/internal/par"
)

// Defaults for Config fields left zero.
const (
	DefaultQueueBound        = 16
	DefaultMaxUploadBytes    = 64 << 20
	DefaultTenantBudgetBytes = 256 << 20
)

// Config parameterizes a Server.
type Config struct {
	// Store is the content-addressed compiled-artifact cache shared by
	// every tenant. Nil compiles uncached.
	Store *artifact.Store
	// Workers bounds the job executor pool (< 1 selects GOMAXPROCS).
	Workers int
	// QueueBound caps each tenant's queued (admitted but not yet
	// started) jobs. Submissions beyond it are rejected with 429.
	QueueBound int
	// MaxUploadBytes caps a single trace upload body.
	MaxUploadBytes int64
	// TenantBudgetBytes caps the total bytes a tenant may keep
	// uploaded. Uploads beyond it are rejected with 507.
	TenantBudgetBytes int64
	// EnableTestKinds admits the "sleep" job kind, a deterministic
	// work stand-in used by the backpressure CI lane and tests.
	EnableTestKinds bool
	// Counters receives service metrics; nil allocates a private set.
	Counters *obs.Counters
}

// hooks are test-only instrumentation points (nil in production).
type hooks struct {
	// compileStarted runs in the singleflight leader before compiling.
	compileStarted func(key string)
}

// Server is the multi-tenant replay service. Create with New; it
// implements http.Handler. All mutable state is guarded by mu; cond
// signals the dispatcher and drain waiters.
type Server struct {
	cfg      Config
	counters *obs.Counters
	mux      *http.ServeMux
	pool     *par.Pool
	hooks    hooks

	mu       sync.Mutex
	cond     *sync.Cond
	tenants  map[string]*tenant
	order    []string // tenant round-robin rotation for fair dispatch
	rr       int
	blobs    map[string][]byte // content-addressed uploads, deduplicated globally
	flights  map[string]*flight
	liveJobs int // jobs admitted but not yet terminal
	draining bool
	stopped  bool
	dispWG   sync.WaitGroup
}

// tenant is one namespace: its uploads, its budget, and its job queue.
type tenant struct {
	name     string
	queue    []*Job          // FIFO of jobs awaiting dispatch
	queued   int             // jobs in StateQueued (includes one held by the dispatcher)
	jobs     map[string]*Job // all jobs ever submitted, by id
	jobOrder []string        // submission order, for deterministic listing
	seq      int
	uploads  map[string]int64 // blob id → size charged to this tenant
	used     int64            // sum of uploads
}

var tenantNameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9_-]{0,63}$`)

// New builds a Server and starts its dispatcher and worker pool.
func New(cfg Config) *Server {
	if cfg.QueueBound <= 0 {
		cfg.QueueBound = DefaultQueueBound
	}
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = DefaultMaxUploadBytes
	}
	if cfg.TenantBudgetBytes <= 0 {
		cfg.TenantBudgetBytes = DefaultTenantBudgetBytes
	}
	c := cfg.Counters
	if c == nil {
		c = obs.NewCounters()
	}
	s := &Server{
		cfg:      cfg,
		counters: c,
		tenants:  make(map[string]*tenant),
		blobs:    make(map[string][]byte),
		flights:  make(map[string]*flight),
		pool:     par.NewPool(cfg.Workers),
	}
	s.cond = sync.NewCond(&s.mu)
	s.routes()
	s.dispWG.Add(1)
	go s.dispatch()
	return s
}

// Counters exposes the server's metric set (for embedding callers).
func (s *Server) Counters() *obs.Counters { return s.counters }

// tenantLocked returns (creating on first use) the named tenant.
func (s *Server) tenantLocked(name string) *tenant {
	t := s.tenants[name]
	if t == nil {
		t = &tenant{
			name:    name,
			jobs:    make(map[string]*Job),
			uploads: make(map[string]int64),
		}
		s.tenants[name] = t
		s.order = append(s.order, name)
		s.counters.Set("artcd_tenants", int64(len(s.tenants)))
	}
	return t
}

// nextLocked pops the next queued job, round-robin across tenants so
// one tenant's burst cannot starve another's queue. The job stays in
// StateQueued (and counted against its tenant's bound) until a worker
// actually starts it — admission reflects work the service is still
// holding, wherever it is held.
func (s *Server) nextLocked() *Job {
	n := len(s.order)
	for i := 0; i < n; i++ {
		t := s.tenants[s.order[(s.rr+i)%n]]
		if len(t.queue) == 0 {
			continue
		}
		s.rr = (s.rr + i + 1) % n
		j := t.queue[0]
		t.queue = t.queue[1:]
		return j
	}
	return nil
}

// dispatch moves queued jobs onto the worker pool. Submit blocks while
// every worker is busy, so at most one dequeued job waits here; it
// still counts as queued for admission purposes.
func (s *Server) dispatch() {
	defer s.dispWG.Done()
	for {
		s.mu.Lock()
		var j *Job
		for {
			if s.stopped {
				s.mu.Unlock()
				return
			}
			if j = s.nextLocked(); j != nil {
				break
			}
			s.cond.Wait()
		}
		s.mu.Unlock()
		s.pool.Submit(func() { s.runJob(j) })
	}
}

// Shutdown gracefully drains the service: new submissions are refused
// (503) immediately, every admitted job — queued or running — runs to
// completion, and the dispatcher and worker pool exit. If ctx expires
// first, remaining jobs are canceled and Shutdown returns ctx's error
// after the executor quiesces. Either way no goroutines are left.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		s.mu.Lock()
		for s.liveJobs > 0 {
			s.cond.Wait()
		}
		s.mu.Unlock()
		close(idle)
	}()

	var err error
	select {
	case <-idle:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelAll()
		<-idle
	}

	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.dispWG.Wait()
	s.pool.Close()
	return err
}

// cancelAll cancels every non-terminal job (it takes the lock
// itself; the name notes it mutates job state, not its caller's lock).
func (s *Server) cancelAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.tenants {
		for _, id := range t.jobOrder {
			s.cancelJobLocked(t, t.jobs[id])
		}
	}
}

// Drained reports whether every admitted job has reached a terminal
// state (used by tests and the health endpoint during drain).
func (s *Server) Drained() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.liveJobs == 0
}

// retryAfter estimates how long a rejected submitter should wait before
// retrying: one second is the floor; deeper system backlogs scale it.
func (s *Server) retryAfterLocked() int {
	secs := 1 + s.liveJobs/8
	if secs > 30 {
		secs = 30
	}
	return secs
}
