package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// routes wires the mux. Method checks live inside each handler so every
// failure — wrong path, wrong method, bad input — speaks the same
// single-line JSON error contract.
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/tenants/{tenant}/traces", s.handleUpload)
	s.mux.HandleFunc("/v1/tenants/{tenant}/jobs", s.handleJobs)
	s.mux.HandleFunc("/v1/tenants/{tenant}/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("/v1/tenants/{tenant}/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.jsonError(w, http.StatusNotFound, "not_found", "unknown endpoint "+r.URL.Path)
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.counters.Add("artcd_http_requests", 1)
	s.mux.ServeHTTP(w, r)
}

// jsonError writes the error contract: one line of JSON, then newline.
func (s *Server) jsonError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	doc, _ := json.Marshal(struct {
		Error   string `json:"error"`
		Message string `json:"message"`
	}{code, msg})
	w.Write(append(doc, '\n'))
}

// writeJSON writes a 2xx JSON document (one line, newline-terminated,
// like every other body the service emits).
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	doc, err := json.Marshal(v)
	if err != nil {
		s.jsonError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(doc, '\n'))
}

// pathTenant validates the {tenant} path segment, writing the error
// response itself on failure.
func (s *Server) pathTenant(w http.ResponseWriter, r *http.Request) (string, bool) {
	name := r.PathValue("tenant")
	if !tenantNameRE.MatchString(name) {
		s.jsonError(w, http.StatusBadRequest, "bad_tenant",
			"tenant must match "+tenantNameRE.String())
		return "", false
	}
	return name, true
}

// methodCheck writes a 405 (with Allow) unless r uses one of the given
// methods.
func (s *Server) methodCheck(w http.ResponseWriter, r *http.Request, allow ...string) bool {
	for _, m := range allow {
		if r.Method == m {
			return true
		}
	}
	for _, m := range allow {
		w.Header().Add("Allow", m)
	}
	s.jsonError(w, http.StatusMethodNotAllowed, "method_not_allowed",
		r.Method+" not allowed here")
	return false
}

// handleUpload is POST /v1/tenants/{t}/traces: store the body as a
// content-addressed blob. Identical bytes — within a tenant or across
// tenants — share one stored copy; each tenant's budget is charged once
// per distinct blob it references.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	if !s.methodCheck(w, r, http.MethodPost) {
		return
	}
	name, ok := s.pathTenant(w, r)
	if !ok {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.jsonError(w, http.StatusRequestEntityTooLarge, "upload_too_large",
				fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxUploadBytes))
			return
		}
		s.jsonError(w, http.StatusBadRequest, "bad_body", err.Error())
		return
	}
	if len(body) == 0 {
		s.jsonError(w, http.StatusBadRequest, "empty_upload", "empty body")
		return
	}
	sum := sha256.Sum256(body)
	id := "sha256:" + hex.EncodeToString(sum[:])

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.jsonError(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	t := s.tenantLocked(name)
	_, dedupGlobal := s.blobs[id]
	if _, charged := t.uploads[id]; !charged {
		if t.used+int64(len(body)) > s.cfg.TenantBudgetBytes {
			s.counters.Add("artcd_rejected_budget", 1)
			s.jsonError(w, http.StatusInsufficientStorage, "budget_exhausted",
				fmt.Sprintf("tenant upload budget %d bytes exhausted", s.cfg.TenantBudgetBytes))
			return
		}
		t.uploads[id] = int64(len(body))
		t.used += int64(len(body))
	}
	if !dedupGlobal {
		s.blobs[id] = body
	}
	s.counters.Add("artcd_uploads", 1)
	s.counters.Add("artcd_upload_bytes", int64(len(body)))
	s.writeJSON(w, http.StatusOK, struct {
		ID           string `json:"id"`
		Bytes        int    `json:"bytes"`
		Deduplicated bool   `json:"deduplicated"`
	}{id, len(body), dedupGlobal})
}

// handleJobs is POST (submit) / GET (list) on /v1/tenants/{t}/jobs.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleSubmit(w, r)
	case http.MethodGet:
		s.handleList(w, r)
	default:
		s.methodCheck(w, r, http.MethodPost, http.MethodGet)
	}
}

// handleSubmit admits a job or rejects it with explicit backpressure:
// 429 + Retry-After on a full tenant queue, 503 while draining.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	name, ok := s.pathTenant(w, r)
	if !ok {
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req jobRequest
	if err := dec.Decode(&req); err != nil {
		s.jsonError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if msg := s.normalize(&req); msg != "" {
		s.jsonError(w, http.StatusBadRequest, "bad_request", msg)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.jsonError(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	t := s.tenantLocked(name)
	if req.Trace != "" {
		if _, ok := t.uploads[req.Trace]; !ok {
			s.jsonError(w, http.StatusNotFound, "unknown_trace",
				"trace "+req.Trace+" was not uploaded by this tenant")
			return
		}
		if req.Snapshot != "" {
			if _, ok := t.uploads[req.Snapshot]; !ok {
				s.jsonError(w, http.StatusNotFound, "unknown_snapshot",
					"snapshot "+req.Snapshot+" was not uploaded by this tenant")
				return
			}
		}
	}
	if t.queued >= s.cfg.QueueBound {
		s.counters.Add("artcd_rejected_backpressure", 1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterLocked()))
		s.jsonError(w, http.StatusTooManyRequests, "queue_full",
			fmt.Sprintf("tenant queue bound %d reached", s.cfg.QueueBound))
		return
	}
	j := s.admitLocked(t, req)
	s.writeJSON(w, http.StatusAccepted, s.statusDocLocked(j))
}

// statusDoc is the job-status JSON shape.
type statusDoc struct {
	ID          string `json:"id"`
	Tenant      string `json:"tenant"`
	Kind        string `json:"kind"`
	State       State  `json:"state"`
	Error       string `json:"error,omitempty"`
	Created     string `json:"created"`
	Started     string `json:"started,omitempty"`
	Finished    string `json:"finished,omitempty"`
	ResultBytes int    `json:"result_bytes,omitempty"`
}

func (s *Server) statusDocLocked(j *Job) statusDoc {
	doc := statusDoc{
		ID:          j.ID,
		Tenant:      j.Tenant,
		Kind:        j.Kind,
		State:       j.state,
		Error:       j.errMsg,
		Created:     j.created.UTC().Format(time.RFC3339Nano),
		ResultBytes: len(j.result),
	}
	if !j.started.IsZero() {
		doc.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		doc.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return doc
}

// handleList is GET /v1/tenants/{t}/jobs: every job in submission
// order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	name, ok := s.pathTenant(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	docs := []statusDoc{}
	if t := s.tenants[name]; t != nil {
		for _, id := range t.jobOrder {
			docs = append(docs, s.statusDocLocked(t.jobs[id]))
		}
	}
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, struct {
		Jobs []statusDoc `json:"jobs"`
	}{docs})
}

// lookupJob resolves {tenant}/{id}, writing the 404 itself on failure.
func (s *Server) lookupJobLocked(w http.ResponseWriter, r *http.Request) (*tenant, *Job, bool) {
	name, ok := s.pathTenant(w, r)
	if !ok {
		return nil, nil, false
	}
	t := s.tenants[name]
	if t != nil {
		if j := t.jobs[r.PathValue("id")]; j != nil {
			return t, j, true
		}
	}
	s.jsonError(w, http.StatusNotFound, "unknown_job",
		"no job "+r.PathValue("id")+" for tenant "+name)
	return nil, nil, false
}

// handleJob is GET (status) / DELETE (cancel) on a single job.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.Lock()
		_, j, ok := s.lookupJobLocked(w, r)
		if !ok {
			s.mu.Unlock()
			return
		}
		doc := s.statusDocLocked(j)
		s.mu.Unlock()
		s.writeJSON(w, http.StatusOK, doc)
	case http.MethodDelete:
		s.mu.Lock()
		t, j, ok := s.lookupJobLocked(w, r)
		if !ok {
			s.mu.Unlock()
			return
		}
		s.cancelJobLocked(t, j)
		doc := s.statusDocLocked(j)
		s.mu.Unlock()
		s.writeJSON(w, http.StatusOK, doc)
	default:
		s.methodCheck(w, r, http.MethodGet, http.MethodDelete)
	}
}

// handleResult serves a finished job's artifact: the report JSON
// (replay), the Perfetto export (export), or the chaos verdict (chaos).
// A job that is not done answers 409 with its current state, so pollers
// can distinguish "not yet" from "never".
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if !s.methodCheck(w, r, http.MethodGet) {
		return
	}
	s.mu.Lock()
	_, j, ok := s.lookupJobLocked(w, r)
	if !ok {
		s.mu.Unlock()
		return
	}
	st := j.state
	errMsg := j.errMsg
	result := j.result
	ctype := j.resultType
	s.mu.Unlock()
	switch st {
	case StateDone:
		w.Header().Set("Content-Type", ctype)
		w.Header().Set("Content-Length", strconv.Itoa(len(result)))
		w.Write(result)
	case StateFailed:
		s.jsonError(w, http.StatusConflict, "job_failed", errMsg)
	case StateCanceled:
		s.jsonError(w, http.StatusConflict, "job_canceled", "job was canceled")
	default:
		s.jsonError(w, http.StatusConflict, "job_not_done", "job state is "+string(st))
	}
}

// handleMetrics is GET /metrics: the counter set in sorted "name value"
// lines, plus a derived cache hit rate so operators don't divide.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !s.methodCheck(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.counters.WriteTo(w)
	hits := s.counters.Get("artcd_cache_hits")
	misses := s.counters.Get("artcd_cache_misses")
	if total := hits + misses; total > 0 {
		fmt.Fprintf(w, "artcd_cache_hit_rate_permille %d\n", hits*1000/total)
	}
}

// handleHealthz is GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.methodCheck(w, r, http.MethodGet) {
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
	}{true, draining})
}
