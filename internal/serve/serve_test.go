package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func timeoutCtx(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// newTestServer builds a Server with the sleep test kind enabled and
// small bounds; the caller must Shutdown it (shut does so, once).
func newTestServer(t *testing.T, cfg Config) (*Server, func()) {
	t.Helper()
	cfg.EnableTestKinds = true
	s := New(cfg)
	var once bool
	shut := func() {
		if once {
			return
		}
		once = true
		// Cancel whatever is still live (long sleepers included), then
		// drain; a healthy server quiesces well inside the deadline.
		s.cancelAll()
		ctx, cancel := timeoutCtx(10 * time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}
	t.Cleanup(shut)
	return s, shut
}

func do(s *Server, method, path string, body []byte) *httptest.ResponseRecorder {
	r := httptest.NewRequest(method, path, bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	return w
}

// submitSleep admits one sleep job and returns its id.
func submitSleep(t *testing.T, s *Server, tenant string, ms int) string {
	t.Helper()
	w := do(s, http.MethodPost, "/v1/tenants/"+tenant+"/jobs",
		[]byte(fmt.Sprintf(`{"kind":"sleep","ms":%d}`, ms)))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit sleep: status %d body %s", w.Code, w.Body)
	}
	var doc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	return doc.ID
}

func jobState(t *testing.T, s *Server, tenant, id string) State {
	t.Helper()
	w := do(s, http.MethodGet, "/v1/tenants/"+tenant+"/jobs/"+id, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %s: %d %s", id, w.Code, w.Body)
	}
	var doc struct {
		State State `json:"state"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	return doc.State
}

func waitState(t *testing.T, s *Server, tenant, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := jobState(t, s, tenant, id); st == want {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, st, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// checkJSONErrorLine asserts the error contract: a single line of JSON
// with an "error" code, newline-terminated.
func checkJSONErrorLine(t *testing.T, w *httptest.ResponseRecorder, wantCode string) {
	t.Helper()
	body := w.Body.String()
	if !strings.HasSuffix(body, "\n") || strings.Count(body, "\n") != 1 {
		t.Fatalf("error body is not a single line: %q", body)
	}
	var doc struct {
		Error   string `json:"error"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("error body is not JSON: %q: %v", body, err)
	}
	if doc.Error != wantCode {
		t.Fatalf("error code = %q, want %q (message %q)", doc.Error, wantCode, doc.Message)
	}
}

func TestUploadDedupAndBudget(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, TenantBudgetBytes: 10})
	up := func(tenant, body string) *httptest.ResponseRecorder {
		return do(s, http.MethodPost, "/v1/tenants/"+tenant+"/traces", []byte(body))
	}
	w := up("a", "hello")
	if w.Code != http.StatusOK {
		t.Fatalf("upload: %d %s", w.Code, w.Body)
	}
	var doc struct {
		ID           string `json:"id"`
		Bytes        int    `json:"bytes"`
		Deduplicated bool   `json:"deduplicated"`
	}
	json.Unmarshal(w.Body.Bytes(), &doc)
	if doc.Bytes != 5 || doc.Deduplicated || !strings.HasPrefix(doc.ID, "sha256:") {
		t.Fatalf("upload doc = %+v", doc)
	}
	// Same bytes again: globally deduplicated, charged once.
	w = up("a", "hello")
	json.Unmarshal(w.Body.Bytes(), &doc)
	if !doc.Deduplicated {
		t.Fatalf("re-upload not deduplicated: %+v", doc)
	}
	// Another tenant uploading the same bytes shares storage.
	w = up("b", "hello")
	json.Unmarshal(w.Body.Bytes(), &doc)
	if !doc.Deduplicated {
		t.Fatalf("cross-tenant upload not deduplicated: %+v", doc)
	}
	// Budget: tenant a has 5 of 10 bytes used; 6 more must be refused.
	w = up("a", "abcdef")
	if w.Code != http.StatusInsufficientStorage {
		t.Fatalf("over-budget upload: %d %s", w.Code, w.Body)
	}
	checkJSONErrorLine(t, w, "budget_exhausted")
	// ...but 5 more still fit.
	if w = up("a", "world"); w.Code != http.StatusOK {
		t.Fatalf("in-budget upload: %d %s", w.Code, w.Body)
	}
}

func TestUploadTooLargeAndEmpty(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, MaxUploadBytes: 8})
	w := do(s, http.MethodPost, "/v1/tenants/a/traces", []byte("123456789"))
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: %d %s", w.Code, w.Body)
	}
	checkJSONErrorLine(t, w, "upload_too_large")
	w = do(s, http.MethodPost, "/v1/tenants/a/traces", nil)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("empty upload: %d %s", w.Code, w.Body)
	}
	checkJSONErrorLine(t, w, "empty_upload")
}

func TestSubmitValidation(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name, body, wantCode string
		wantStatus           int
	}{
		{"unknown field", `{"kind":"sleep","bogus":1}`, "bad_request", 400},
		{"unknown kind", `{"kind":"frobnicate"}`, "bad_request", 400},
		{"missing trace", `{"kind":"replay"}`, "bad_request", 400},
		{"bad format", `{"kind":"replay","trace":"sha256:00","format":"xml"}`, "bad_request", 400},
		{"bad target", `{"kind":"replay","trace":"sha256:00","target":"weird"}`, "bad_request", 400},
		{"bad method", `{"kind":"replay","trace":"sha256:00","method":"magic"}`, "bad_request", 400},
		{"slice without shards", `{"kind":"replay","trace":"sha256:00","slice_actions":5}`, "bad_request", 400},
		{"chaos fields on replay", `{"kind":"replay","trace":"sha256:00","seeds":4}`, "bad_request", 400},
		{"seeds over cap", `{"kind":"chaos","trace":"sha256:00","seeds":100000}`, "bad_request", 400},
		{"ms on replay", `{"kind":"replay","trace":"sha256:00","ms":5}`, "bad_request", 400},
		{"unknown trace", `{"kind":"replay","trace":"sha256:00"}`, "unknown_trace", 404},
	}
	for _, tc := range cases {
		w := do(s, http.MethodPost, "/v1/tenants/a/jobs", []byte(tc.body))
		if w.Code != tc.wantStatus {
			t.Errorf("%s: status %d body %s", tc.name, w.Code, w.Body)
			continue
		}
		checkJSONErrorLine(t, w, tc.wantCode)
	}
	// Sleep kind must be rejected when test kinds are off.
	s2 := New(Config{Workers: 1})
	defer func() {
		ctx, cancel := timeoutCtx(time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	}()
	w := do(s2, http.MethodPost, "/v1/tenants/a/jobs", []byte(`{"kind":"sleep"}`))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("sleep without test kinds: %d %s", w.Code, w.Body)
	}
}

func TestBadTenantAndUnknownRoutes(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1})
	w := do(s, http.MethodPost, "/v1/tenants/Bad!Name/jobs", []byte(`{"kind":"sleep"}`))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad tenant: %d", w.Code)
	}
	checkJSONErrorLine(t, w, "bad_tenant")
	w = do(s, http.MethodGet, "/v2/nope", nil)
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown route: %d", w.Code)
	}
	checkJSONErrorLine(t, w, "not_found")
	w = do(s, http.MethodPut, "/metrics", nil)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("bad method: %d", w.Code)
	}
	checkJSONErrorLine(t, w, "method_not_allowed")
}

// Backpressure: a full tenant queue answers 429 with Retry-After and a
// single-line JSON error, and the rejection is counted.
func TestBackpressure429(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, QueueBound: 2})
	running := submitSleep(t, s, "a", 30_000)
	waitState(t, s, "a", running, StateRunning)
	b := submitSleep(t, s, "a", 0)
	c := submitSleep(t, s, "a", 0)
	w := do(s, http.MethodPost, "/v1/tenants/a/jobs", []byte(`{"kind":"sleep","ms":0}`))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-bound submit: %d %s", w.Code, w.Body)
	}
	checkJSONErrorLine(t, w, "queue_full")
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := s.counters.Get("artcd_rejected_backpressure"); got != 1 {
		t.Fatalf("artcd_rejected_backpressure = %d, want 1", got)
	}
	// Another tenant's admission is not affected by a's full queue
	// (the bound is per tenant, even though the one worker is shared).
	other := submitSleep(t, s, "b", 0)
	if st := jobState(t, s, "b", other); st != StateQueued && st != StateRunning && st != StateDone {
		t.Fatalf("tenant b job state = %s", st)
	}
	// Unblock: cancel the sleeper; every queued job then drains.
	do(s, http.MethodDelete, "/v1/tenants/a/jobs/"+running, nil)
	waitState(t, s, "a", running, StateCanceled)
	waitState(t, s, "a", b, StateDone)
	waitState(t, s, "a", c, StateDone)
	waitState(t, s, "b", other, StateDone)
}

func TestMetricsEndpoint(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2})
	id := submitSleep(t, s, "a", 0)
	waitState(t, s, "a", id, StateDone)
	w := do(s, http.MethodGet, "/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{"artcd_jobs_submitted 1", "artcd_jobs_done 1", "artcd_jobs_queued 0", "artcd_tenants 1"} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestResultLifecycleErrors(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, QueueBound: 4})
	running := submitSleep(t, s, "a", 30_000)
	waitState(t, s, "a", running, StateRunning)
	queued := submitSleep(t, s, "a", 0)
	w := do(s, http.MethodGet, "/v1/tenants/a/jobs/"+queued+"/result", nil)
	if w.Code != http.StatusConflict {
		t.Fatalf("result of queued job: %d %s", w.Code, w.Body)
	}
	checkJSONErrorLine(t, w, "job_not_done")
	w = do(s, http.MethodGet, "/v1/tenants/a/jobs/nope/result", nil)
	if w.Code != http.StatusNotFound {
		t.Fatalf("result of unknown job: %d", w.Code)
	}
	do(s, http.MethodDelete, "/v1/tenants/a/jobs/"+running, nil)
	waitState(t, s, "a", running, StateCanceled)
	w = do(s, http.MethodGet, "/v1/tenants/a/jobs/"+running+"/result", nil)
	if w.Code != http.StatusConflict {
		t.Fatalf("result of canceled job: %d", w.Code)
	}
	checkJSONErrorLine(t, w, "job_canceled")
	waitState(t, s, "a", queued, StateDone)
	w = do(s, http.MethodGet, "/v1/tenants/a/jobs/"+queued+"/result", nil)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "slept_ms") {
		t.Fatalf("result of done job: %d %s", w.Code, w.Body)
	}
}

func TestJobListOrder(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, QueueBound: 8})
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, submitSleep(t, s, "a", 0))
	}
	for _, id := range ids {
		waitState(t, s, "a", id, StateDone)
	}
	w := do(s, http.MethodGet, "/v1/tenants/a/jobs", nil)
	var doc struct {
		Jobs []struct {
			ID string `json:"id"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Jobs) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(doc.Jobs))
	}
	for i, j := range doc.Jobs {
		if j.ID != ids[i] {
			t.Fatalf("list order: got %s at %d, want %s", j.ID, i, ids[i])
		}
	}
}
