// Package core implements ROOT: Resource-Oriented Ordering for Trace
// replay (§3 of the paper).
//
// A trace is a totally-ordered series of actions; each action touches
// one or more resources (threads, files, paths, file descriptors, AIO
// control blocks). The series of actions touching a resource, in trace
// order, is the resource's action series. Three rules over action
// series yield a partial order for replay:
//
//   - stage ordering: a resource's create action replays before any use,
//     and every use replays before its delete;
//   - sequential ordering: all actions on a resource replay in trace
//     order (subsumes stage);
//   - name ordering: action series of consecutive generations of the
//     same name neither overlap nor reorder.
//
// Names are reused over time — descriptor 3 may identify many different
// open files during one trace — so resources are identified by
// name@generation.
//
// The package analyzes a trace against a symbolic file-system model
// (symlink-aware, directory-rename-aware) to infer action↔resource
// relationships, then builds the dependency graph a replayer enforces.
package core

import "fmt"

// Kind classifies resources (§4.2, Table 2).
type Kind int

// Resource kinds.
const (
	KProgram Kind = iota
	KThread
	KFile
	KPath
	KFD
	KAIO
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KProgram:
		return "program"
	case KThread:
		return "thread"
	case KFile:
		return "file"
	case KPath:
		return "path"
	case KFD:
		return "fd"
	case KAIO:
		return "aiocb"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ResourceID identifies one resource: a kind, a name, and a generation
// distinguishing successive uses of the same name (fd3@1 vs fd3@2 in
// Figure 2).
type ResourceID struct {
	Kind Kind
	Name string
	Gen  int
}

// String renders "kind(name)@gen".
func (r ResourceID) String() string {
	return fmt.Sprintf("%s(%s)@%d", r.Kind, r.Name, r.Gen)
}

// Role is an action's relationship to a resource it touches.
type Role int

// Roles within an action series.
const (
	// RoleUse is an ordinary access.
	RoleUse Role = iota
	// RoleCreate brings the resource into existence.
	RoleCreate
	// RoleDelete removes the resource.
	RoleDelete
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleUse:
		return "use"
	case RoleCreate:
		return "create"
	case RoleDelete:
		return "delete"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Touch is one action↔resource relationship.
type Touch struct {
	Res  ResourceID
	Role Role
}

// ModeSet selects which ordering rules apply to which resource kinds —
// ARTC's replay modes (Table 2). Thread sequential ordering is always
// enforced structurally (one replay thread per traced thread) and has no
// flag; path stage and name ordering apply only jointly, because stage
// without name ordering would require substitute path names during
// replay (§4.2, "Paths").
type ModeSet struct {
	// ProgramSeq totally orders the whole trace: the strongest mode,
	// subsuming all others, typically causing severe overconstraint.
	ProgramSeq bool
	// FileSeq sequentially orders all actions touching each file, found
	// through any path or descriptor (symlink- and hard-link-aware).
	FileSeq bool
	// PathStageName applies stage + name ordering to path resources.
	PathStageName bool
	// FDStage applies stage ordering to file descriptors.
	FDStage bool
	// FDSeq applies sequential ordering to file descriptors (subsumes
	// FDStage).
	FDSeq bool
	// AIOStage applies stage ordering to AIO control blocks.
	AIOStage bool
}

// DefaultModes returns ARTC's default-on constraint set: everything
// supported except program_seq (§4.2).
func DefaultModes() ModeSet {
	return ModeSet{
		FileSeq:       true,
		PathStageName: true,
		FDStage:       true,
		FDSeq:         true,
		AIOStage:      true,
	}
}

// Subsumes reports whether mode set a allows only orderings that b also
// allows (a is at least as constrained as b) based on rule subsumption:
// program_seq subsumes everything; fd_seq subsumes fd_stage.
func (a ModeSet) Subsumes(b ModeSet) bool {
	if a.ProgramSeq {
		return true
	}
	if b.ProgramSeq {
		return false
	}
	ge := func(x, y bool) bool { return x || !y }
	return ge(a.FileSeq, b.FileSeq) &&
		ge(a.PathStageName, b.PathStageName) &&
		ge(a.FDSeq, b.FDSeq) &&
		ge(a.FDStage || a.FDSeq, b.FDStage || b.FDSeq) &&
		ge(a.AIOStage, b.AIOStage)
}
