package core

import (
	"testing"
	"time"

	"rootreplay/internal/snapshot"
	"rootreplay/internal/trace"
	"rootreplay/internal/vfs"
)

func hasEdge(g *Graph, from, to int) bool {
	for _, e := range g.Edges {
		if e.From == from && e.To == to {
			return true
		}
	}
	return false
}

func TestExchangedataGenerations(t *testing.T) {
	tr := buildTrace([]rspec{
		{tid: 1, call: "stat", path: "/a", ret: 100},                    // 0: use /a@1
		{tid: 1, call: "exchangedata", path: "/a", path2: "/b", ret: 0}, // 1
		{tid: 2, call: "stat", path: "/a", ret: 200},                    // 2: use /a@2
	})
	snap := []snapshot.Entry{
		{Kind: snapshot.KindFile, Path: "/a", Size: 100},
		{Kind: snapshot.KindFile, Path: "/b", Size: 200},
	}
	an := analyze(t, tr, snap)
	if gens := an.PathGens["/a"]; len(gens) != 2 {
		t.Fatalf("/a generations = %v, want 2", gens)
	}
	if gens := an.PathGens["/b"]; len(gens) != 2 {
		t.Fatalf("/b generations = %v, want 2", gens)
	}
	g := BuildGraph(an, DefaultModes())
	// Name ordering: stat of /a@2 (action 2, T2) must wait for the
	// exchange (action 1, T1), which ended generation 1.
	if !hasEdge(g, 1, 2) {
		t.Fatalf("missing generation edge exchange->stat: %v", g.Edges)
	}
}

func TestRenameChainGenerations(t *testing.T) {
	// /x -> /y -> /z: each rename retargets names; /y has two
	// generations (pre-existing file, then the renamed-in file).
	tr := buildTrace([]rspec{
		{tid: 1, call: "rename", path: "/x", path2: "/y", ret: 0}, // replaces /y
		{tid: 2, call: "rename", path: "/y", path2: "/z", ret: 0},
		{tid: 3, call: "stat", path: "/z", ret: 0},
	})
	snap := []snapshot.Entry{
		{Kind: snapshot.KindFile, Path: "/x", Size: 1},
		{Kind: snapshot.KindFile, Path: "/y", Size: 2},
	}
	an := analyze(t, tr, snap)
	g := BuildGraph(an, DefaultModes())
	if !hasEdge(g, 0, 1) {
		t.Errorf("second rename does not depend on first: %v", g.Edges)
	}
	if !hasEdge(g, 1, 2) {
		t.Errorf("stat of /z does not depend on the rename creating it: %v", g.Edges)
	}
	if err := g.CheckAcyclic(); err != nil {
		t.Fatal(err)
	}
}

func TestDup2Generations(t *testing.T) {
	tr := buildTrace([]rspec{
		{tid: 1, call: "open", path: "/a", ret: 3},    // fd3@1 create
		{tid: 1, call: "open", path: "/b", ret: 4},    // fd4@1 create
		{tid: 2, call: "read", fd: 4, ret: 10},        // fd4@1 use
		{tid: 1, call: "dup2", fd: 3, fd2: 4, ret: 4}, // deletes fd4@1, creates fd4@2
		{tid: 2, call: "read", fd: 4, ret: 10},        // fd4@2 use
	})
	snap := []snapshot.Entry{
		{Kind: snapshot.KindFile, Path: "/a", Size: 100},
		{Kind: snapshot.KindFile, Path: "/b", Size: 100},
	}
	an := analyze(t, tr, snap)
	if s := seriesFor(an, KFD, "4", 1); !eq(s, 1, 2, 3) {
		t.Errorf("fd4@1 series = %v, want [1 2 3]", s)
	}
	if s := seriesFor(an, KFD, "4", 2); !eq(s, 3, 4) {
		t.Errorf("fd4@2 series = %v, want [3 4]", s)
	}
	g := BuildGraph(an, ModeSet{FDStage: true})
	// The read of fd4@2 (4, T2) must wait for the dup2 create (3, T1).
	if !hasEdge(g, 3, 4) {
		t.Errorf("missing fd4@2 create edge: %v", g.Edges)
	}
	// The dup2 (delete of fd4@1) must wait for the earlier read (2, T2).
	if !hasEdge(g, 2, 3) {
		t.Errorf("missing fd4@1 delete edge: %v", g.Edges)
	}
}

func TestChdirRelativePathsCanonicalized(t *testing.T) {
	tr := buildTrace([]rspec{
		{tid: 1, call: "chdir", path: "/work", ret: 0},
		{tid: 1, call: "open", path: "data.txt", ret: 3},
		{tid: 1, call: "close", fd: 3, ret: 0},
	})
	snap := []snapshot.Entry{
		{Kind: snapshot.KindDir, Path: "/work"},
		{Kind: snapshot.KindFile, Path: "/work/data.txt", Size: 64},
	}
	an := analyze(t, tr, snap)
	if an.Actions[1].CanonPath != "/work/data.txt" {
		t.Fatalf("canonicalized path = %q", an.Actions[1].CanonPath)
	}
	// The path resource uses the canonical name.
	if s := seriesFor(an, KPath, "/work/data.txt", 1); len(s) == 0 {
		t.Fatal("no path series under canonical name")
	}
}

func TestLinkCreatesPathNotFile(t *testing.T) {
	tr := buildTrace([]rspec{
		{tid: 1, call: "link", path: "/a", path2: "/b", ret: 0},
		{tid: 2, call: "stat", path: "/b", ret: 0},
		{tid: 2, call: "unlink", path: "/a", ret: 0}, // file survives via /b
		{tid: 3, call: "stat", path: "/b", ret: 0},
	})
	snap := []snapshot.Entry{{Kind: snapshot.KindFile, Path: "/a", Size: 10}}
	an := analyze(t, tr, snap)
	g := BuildGraph(an, DefaultModes())
	if !hasEdge(g, 0, 1) {
		t.Errorf("stat /b does not depend on link creating it")
	}
	// The unlink of /a with nlink 2 must be a Use (not Delete) of the
	// file: the final stat via /b still touches a live file.
	var unlinkTouches []Touch
	for _, tc := range an.Actions[2].Touches {
		if tc.Res.Kind == KFile {
			unlinkTouches = append(unlinkTouches, tc)
		}
	}
	for _, tc := range unlinkTouches {
		if tc.Role == RoleDelete {
			t.Errorf("unlink of multi-link file marked file delete: %v", tc)
		}
	}
}

func TestUnlinkLastLinkIsFileDelete(t *testing.T) {
	tr := buildTrace([]rspec{
		{tid: 1, call: "open", path: "/f", ret: 3},
		{tid: 2, call: "read", fd: 3, ret: 5},
		{tid: 2, call: "close", fd: 3, ret: 0},
		{tid: 1, call: "unlink", path: "/f", ret: 0},
	})
	snap := []snapshot.Entry{{Kind: snapshot.KindFile, Path: "/f", Size: 10}}
	an := analyze(t, tr, snap)
	foundDelete := false
	for _, tc := range an.Actions[3].Touches {
		if tc.Res.Kind == KFile && tc.Role == RoleDelete {
			foundDelete = true
		}
	}
	if !foundDelete {
		t.Fatal("unlink of last link not marked as file delete")
	}
	// With file_seq the unlink (T1) waits for the cross-thread read (T2).
	g := BuildGraph(an, ModeSet{FileSeq: true})
	if !hasEdge(g, 2, 3) && !hasEdge(g, 1, 3) {
		t.Errorf("unlink not ordered after uses: %v", g.Edges)
	}
}

func TestMkdirAllParentTouch(t *testing.T) {
	tr := buildTrace([]rspec{
		{tid: 1, call: "mkdir", path: "/top/sub", ret: 0},
		{tid: 2, call: "open", path: "/top/sub/f", flags: trace.OCreat, ret: 3},
	})
	snap := []snapshot.Entry{{Kind: snapshot.KindDir, Path: "/top"}}
	an := analyze(t, tr, snap)
	g := BuildGraph(an, DefaultModes())
	// The create inside the new directory (T2) depends on the mkdir (T1)
	// via the parent-directory file resource or the path resource.
	if !hasEdge(g, 0, 1) {
		t.Fatalf("create in fresh dir lacks dependency on mkdir: %v", g.Edges)
	}
}

func TestTemporalPreservesOverlapSemantics(t *testing.T) {
	// Issue-kind edges let traced-overlapping calls overlap at replay:
	// ValidateOrder accepts an order where action 1 is issued before
	// action 0 completes (they overlapped in the trace).
	tr := buildTrace([]rspec{
		{tid: 1, call: "read", fd: 3, ret: 1},
		{tid: 2, call: "read", fd: 4, ret: 1},
	})
	tr.Records[0].Start, tr.Records[0].End = 0, 1000000
	tr.Records[1].Start, tr.Records[1].End = 500, 900000
	fs := vfs.New()
	an, err := Analyze(tr, fs)
	if err != nil {
		t.Fatal(err)
	}
	g := TemporalGraph(an)
	issue := []int64{0, 10}
	done := []int64{1000, 500} // 1 finishes before 0: fine
	toDur := func(xs []int64) []time.Duration {
		out := make([]time.Duration, len(xs))
		for i, x := range xs {
			out[i] = time.Duration(x)
		}
		return out
	}
	if err := g.ValidateOrder(toDur(issue), toDur(done)); err != nil {
		t.Fatalf("overlap rejected: %v", err)
	}
	// But issuing 1 before 0 violates issue order.
	bad := []int64{100, 10}
	if err := g.ValidateOrder(toDur(bad), toDur(done)); err == nil {
		t.Fatal("issue-order violation accepted")
	}
}
