package core

import (
	"fmt"
	gopath "path"
	"strconv"
	"strings"

	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
	"rootreplay/internal/vfs"
)

// Action is one trace record annotated with the resources it touches.
type Action struct {
	Rec     *trace.Record
	Touches []Touch
	// CanonPath and CanonPath2 are the record's path arguments resolved
	// to canonical absolute form against the working directory in effect
	// when the action ran; replay uses them so chdir history need not be
	// re-enacted. For symlink, CanonPath is left as traced (the target
	// string is data, not a lookup).
	CanonPath  string
	CanonPath2 string
	// FDHint identifies the descriptor resource a *failed* call
	// referenced, when the descriptor was valid at the time. Failed
	// calls carry no ordering constraints, but the replayer still needs
	// the fd remapped so the call fails the same way it did in the trace
	// (EISDIR on a directory read, say, rather than EBADF).
	FDHint *ResourceID
}

// Analysis is the result of running the trace model over a trace: every
// action's resource touch set, plus each resource's action series.
type Analysis struct {
	Trace   *trace.Trace
	Actions []Action
	// Series maps each resource to the indices (= Seq values) of the
	// actions touching it, in trace order.
	Series map[ResourceID][]int
	// Resources lists every resource in first-touch order, and
	// SeriesList holds the matching action series (aliasing the Series
	// values). Consumers that only need to enumerate resources iterate
	// these dense slices instead of hashing into the map; both are
	// populated by Finish and may be nil for hand-built analyses.
	Resources  []ResourceID
	SeriesList [][]int
	// PathGens maps a path name to its successive generations in
	// creation order, for the name-ordering rule.
	PathGens map[string][]int
	// Warnings records records the file-system model could not fully
	// interpret (the equivalent of ARTC's missed-dependency edge cases);
	// such actions fall back to thread-only ordering.
	Warnings []string
}

// analyzer walks the trace against a symbolic vfs, assigning resource
// identities and generations.
type analyzer struct {
	fs  *vfs.FS
	cwd *vfs.Inode
	// cwdPath is the textual cwd used to canonicalize relative paths.
	cwdPath string

	// pathGen is the current generation of each canonical path name.
	// Generations advance whenever the name's binding changes (created,
	// deleted, retargeted by rename or exchangedata).
	pathGen map[string]int
	// fdGen is the current generation of each descriptor number.
	fdGen map[int64]int
	// fdFile maps open descriptor numbers to their file inodes.
	fdFile map[int64]*vfs.Inode
	// fdPath remembers the canonical path a descriptor was opened with,
	// for diagnostics.
	fdPath map[int64]string

	// scratch is the reusable touch buffer analyzeRecord appends into;
	// sealTouches copies each record's result out of it into slab-carved
	// exact-size slices, so building a touch set costs no per-record
	// append growth.
	scratch []Touch
	slab    []Touch

	// resIdx interns each ResourceID to a dense index into series, so
	// the Feed hot loop hashes a resource key once on first sight and
	// appends to a slice thereafter; Finish materializes the exported
	// Series map from these in one pass (one map insert per resource
	// instead of one per touch).
	resIdx map[ResourceID]int32
	resIDs []ResourceID
	series [][]int
	// inoName caches the decimal rendering of inode numbers so fileRes
	// does not re-format (and re-allocate) the name on every touch.
	inoName map[uint64]string
	// intSlab carves the initial capacity-4 backing of each resource's
	// series, so the common short series (most resources are touched a
	// handful of times) never hits the allocator; longer series fall
	// back to ordinary append growth.
	intSlab []int

	res *Analysis
}

// sealTouches copies a scratch-backed touch set into a compact slice
// carved from a slab, so Action.Touches never retains scratch capacity.
func (a *analyzer) sealTouches(ts []Touch) []Touch {
	if len(ts) == 0 {
		return nil
	}
	if len(a.slab) < len(ts) {
		n := 1024
		if len(ts) > n {
			n = len(ts)
		}
		a.slab = make([]Touch, n)
	}
	out := a.slab[:len(ts):len(ts)]
	a.slab = a.slab[len(ts):]
	copy(out, ts)
	return out
}

// Analyze runs the trace model over tr. The fs argument must hold the
// initial file-tree snapshot (see snapshot.RestoreTree); Analyze mutates
// it while symbolically replaying the trace.
func Analyze(tr *trace.Trace, fs *vfs.FS) (*Analysis, error) {
	z := NewAnalyzer(fs)
	if err := z.Feed(tr.Records); err != nil {
		return nil, err
	}
	return z.Finish(tr)
}

// Analyzer is the incremental form of Analyze: records are fed in
// batches, in trace order, and the model state (vfs, descriptor table,
// path generations) advances with each batch. This is what lets the
// streaming compile path overlap trace lexing with model evaluation —
// the analyzer never needs the whole trace at once.
type Analyzer struct {
	a *analyzer
}

// NewAnalyzer returns an analyzer over fs, which must hold the initial
// file-tree snapshot. The analyzer mutates fs as records are fed.
func NewAnalyzer(fs *vfs.FS) *Analyzer {
	return &Analyzer{a: &analyzer{
		fs:      fs,
		cwd:     fs.Root(),
		cwdPath: "/",
		pathGen: make(map[string]int),
		fdGen:   make(map[int64]int),
		fdFile:  make(map[int64]*vfs.Inode),
		fdPath:  make(map[int64]string),
		resIdx:  make(map[ResourceID]int32),
		inoName: make(map[uint64]string),
		res: &Analysis{
			Series:   make(map[ResourceID][]int),
			PathGens: make(map[string][]int),
		},
	}}
}

// Feed advances the model over the next batch of records. Records must
// arrive in trace order with dense Seq numbers continuing where the
// previous batch stopped.
func (z *Analyzer) Feed(recs []*trace.Record) error {
	a := z.a
	if need := len(a.res.Actions) + len(recs); cap(a.res.Actions) < need {
		if grown := 2 * cap(a.res.Actions); grown > need {
			need = grown
		}
		na := make([]Action, len(a.res.Actions), need)
		copy(na, a.res.Actions)
		a.res.Actions = na
	}
	for _, rec := range recs {
		i := len(a.res.Actions)
		if rec.Seq != int64(i) {
			return fmt.Errorf("core: record %d has Seq %d; call Trace.Renumber first", i, rec.Seq)
		}
		act := Action{Rec: rec}
		call := stack.Canonical(rec.Call)
		if rec.Path != "" {
			if call == "symlink" {
				act.CanonPath = rec.Path
			} else {
				act.CanonPath = a.canon(rec.Path)
			}
		}
		if rec.Path2 != "" {
			act.CanonPath2 = a.canon(rec.Path2)
		}
		touches := a.analyzeRecord(rec, call)
		if touches != nil {
			a.scratch = touches[:0] // keep any grown capacity for reuse
			touches = a.sealTouches(touches)
		}
		act.Touches = touches
		if !rec.OK() {
			if _, tracked := a.fdFile[rec.FD]; tracked && rec.FD != 0 {
				r := a.fdRes(rec.FD)
				act.FDHint = &r
			}
		}
		a.res.Actions = append(a.res.Actions, act)
		for _, t := range touches {
			idx, ok := a.resIdx[t.Res]
			if !ok {
				idx = int32(len(a.series))
				a.resIdx[t.Res] = idx
				a.resIDs = append(a.resIDs, t.Res)
				a.series = append(a.series, nil)
			}
			s := a.series[idx]
			switch {
			case s == nil:
				if len(a.intSlab) < 4 {
					a.intSlab = make([]int, 4096)
				}
				s = a.intSlab[0:1:4]
				a.intSlab = a.intSlab[4:]
				s[0] = i
				a.series[idx] = s
			case s[len(s)-1] != i:
				a.series[idx] = append(s, i)
			}
		}
	}
	return nil
}

// Finish seals the analysis. tr must be the trace whose records were
// fed (the analysis keeps a reference for downstream passes).
func (z *Analyzer) Finish(tr *trace.Trace) (*Analysis, error) {
	if len(z.a.res.Actions) != len(tr.Records) {
		return nil, fmt.Errorf("core: analyzer saw %d records, trace has %d",
			len(z.a.res.Actions), len(tr.Records))
	}
	for k, r := range z.a.resIDs {
		z.a.res.Series[r] = z.a.series[k]
	}
	z.a.res.Resources = z.a.resIDs
	z.a.res.SeriesList = z.a.series
	z.a.res.Trace = tr
	return z.a.res, nil
}

// canon returns the canonical absolute form of a traced path. Absolute
// paths that are already clean — the overwhelmingly common case — are
// returned as-is without running path.Clean's byte-builder.
func (a *analyzer) canon(p string) string {
	if p == "" {
		return ""
	}
	if p[0] != '/' {
		return gopath.Clean(a.cwdPath + "/" + p)
	}
	if pathIsClean(p) {
		return p
	}
	return gopath.Clean(p)
}

// pathIsClean reports whether an absolute path is already in canonical
// form: no doubled or trailing slashes and no "." or ".." components.
func pathIsClean(p string) bool {
	for i := 1; i < len(p); i++ {
		if p[i-1] != '/' {
			continue
		}
		if p[i] == '/' {
			return false
		}
		if p[i] == '.' {
			if i+1 == len(p) || p[i+1] == '/' {
				return false
			}
			if p[i+1] == '.' && (i+2 == len(p) || p[i+2] == '/') {
				return false
			}
		}
	}
	return p == "/" || p[len(p)-1] != '/'
}

// pathRes returns the path resource for the current generation of name,
// creating generation bookkeeping on first sight.
func (a *analyzer) pathRes(name string) ResourceID {
	gen, ok := a.pathGen[name]
	if !ok {
		gen = 1
		a.pathGen[name] = gen
		a.res.PathGens[name] = append(a.res.PathGens[name], gen)
	}
	return ResourceID{Kind: KPath, Name: name, Gen: gen}
}

// bumpPath advances the generation of a path name (its binding changed)
// and returns the new-generation resource.
func (a *analyzer) bumpPath(name string) ResourceID {
	gen := a.pathGen[name]
	if gen == 0 {
		gen = 1
	} else {
		gen++
	}
	a.pathGen[name] = gen
	a.res.PathGens[name] = append(a.res.PathGens[name], gen)
	return ResourceID{Kind: KPath, Name: name, Gen: gen}
}

func (a *analyzer) fileRes(ino *vfs.Inode) ResourceID {
	n := uint64(ino.Ino)
	name, ok := a.inoName[n]
	if !ok {
		name = strconv.FormatUint(n, 10)
		a.inoName[n] = name
	}
	return ResourceID{Kind: KFile, Name: name, Gen: 1}
}

func (a *analyzer) fdRes(n int64) ResourceID {
	gen := a.fdGen[n]
	if gen == 0 {
		gen = 1
		a.fdGen[n] = 1
	}
	return ResourceID{Kind: KFD, Name: strconv.FormatInt(n, 10), Gen: gen}
}

func (a *analyzer) bumpFD(n int64) ResourceID {
	a.fdGen[n]++
	return ResourceID{Kind: KFD, Name: strconv.FormatInt(n, 10), Gen: a.fdGen[n]}
}

func aioRes(id int64) ResourceID {
	return ResourceID{Kind: KAIO, Name: strconv.FormatInt(id, 10), Gen: 1}
}

// warnf records a model-interpretation warning for a record.
func (a *analyzer) warnf(rec *trace.Record, format string, args ...any) {
	a.res.Warnings = append(a.res.Warnings,
		fmt.Sprintf("action %d (%s): %s", rec.Seq, rec.Call, fmt.Sprintf(format, args...)))
}

// parentOf resolves the directory containing the final component of p,
// or nil.
func (a *analyzer) parentOf(p string) *vfs.Inode {
	// The canonical form is absolute and clean, so the parent is a
	// prefix slice; gopath.Dir would re-run Clean over it.
	dir := a.canon(p)
	if i := strings.LastIndexByte(dir, '/'); i > 0 {
		dir = dir[:i]
	} else {
		dir = "/"
	}
	ino, err := a.fs.Resolve(nil, dir)
	if err != vfs.OK {
		return nil
	}
	return ino
}

// analyzeRecord computes the record's touch set and symbolically applies
// its effect to the file-system model. Thread resources are implicit
// (thread_seq is enforced structurally), so they are not materialized.
func (a *analyzer) analyzeRecord(rec *trace.Record, call string) []Touch {
	// Failed calls carry no resource hints beyond their thread: replay
	// may legally reorder them (a stat that failed during tracing might
	// validly run earlier or later during replay; §4.2 "Paths").
	if !rec.OK() {
		return nil
	}
	ts := a.scratch[:0]
	use := func(r ResourceID) { ts = append(ts, Touch{r, RoleUse}) }
	create := func(r ResourceID) { ts = append(ts, Touch{r, RoleCreate}) }
	del := func(r ResourceID) { ts = append(ts, Touch{r, RoleDelete}) }
	useParent := func(p string) {
		if dir := a.parentOf(p); dir != nil {
			use(a.fileRes(dir))
		}
	}
	// resolveFile resolves a path to its file, warning on failure.
	resolveFile := func(p string, follow bool) *vfs.Inode {
		var ino *vfs.Inode
		var err vfs.Errno
		if follow {
			ino, err = a.fs.Resolve(nil, a.canon(p))
		} else {
			ino, err = a.fs.ResolveNoFollow(nil, a.canon(p))
		}
		if err != vfs.OK {
			a.warnf(rec, "cannot resolve %q: %v", p, err)
			return nil
		}
		return ino
	}
	// statLike: Use path + parent dir + target file.
	statLike := func(p string, follow bool) *vfs.Inode {
		cp := a.canon(p)
		use(a.pathRes(cp))
		useParent(cp)
		ino := resolveFile(p, follow)
		if ino != nil {
			use(a.fileRes(ino))
		}
		return ino
	}

	switch call {
	case "open", "creat":
		cp := a.canon(rec.Path)
		flags := rec.Flags
		if call == "creat" {
			flags = trace.OWronly | trace.OCreat | trace.OTrunc
		}
		existing, _ := a.fs.Resolve(nil, cp)
		createsFile := flags&trace.OCreat != 0 && existing == nil
		useParent(cp)
		var ino *vfs.Inode
		if createsFile {
			var err vfs.Errno
			ino, _, err = a.fs.Create(nil, cp, rec.Mode, false)
			if err != vfs.OK {
				a.warnf(rec, "create %q failed in model: %v", cp, err)
				return ts
			}
			create(a.bumpPath(cp))
			create(a.fileRes(ino))
		} else {
			ino = existing
			if ino == nil {
				a.warnf(rec, "open of missing %q succeeded in trace", cp)
				// The paper saw this in the iTunes traces (O_EXCL opens
				// of existing paths suggest collection glitches); treat
				// the path as freshly bound.
				var err vfs.Errno
				ino, _, err = a.fs.Create(nil, cp, rec.Mode, false)
				if err != vfs.OK {
					return ts
				}
				create(a.bumpPath(cp))
				create(a.fileRes(ino))
			} else {
				use(a.pathRes(cp))
				use(a.fileRes(ino))
			}
		}
		if flags&trace.OTrunc != 0 && ino.Type == vfs.TypeRegular {
			a.fs.TruncateInode(ino, 0)
		}
		fd := rec.Ret
		create(a.bumpFD(fd))
		a.fdFile[fd] = ino
		a.fdPath[fd] = cp
	case "close":
		use2 := a.fdRes(rec.FD)
		ts = append(ts, Touch{use2, RoleDelete})
		if ino := a.fdFile[rec.FD]; ino != nil {
			use(a.fileRes(ino))
		}
		delete(a.fdFile, rec.FD)
		delete(a.fdPath, rec.FD)
	case "read", "write", "pread", "pwrite", "lseek", "fsync", "fdatasync",
		"ftruncate", "fstat", "fstatfs", "fadvise", "fallocate", "mmap",
		"fchmod", "chown_fd", "utimes_fd", "getdents", "getdirentriesattr",
		"fgetxattr", "fsetxattr", "flistxattr", "fremovexattr":
		use(a.fdRes(rec.FD))
		if ino := a.fdFile[rec.FD]; ino != nil {
			use(a.fileRes(ino))
		} else {
			a.warnf(rec, "fd %d not tracked", rec.FD)
		}
		if rec.Call == "ftruncate" {
			if ino := a.fdFile[rec.FD]; ino != nil {
				a.fs.TruncateInode(ino, rec.Size)
			}
		}
	case "fcntl":
		use(a.fdRes(rec.FD))
		if ino := a.fdFile[rec.FD]; ino != nil {
			use(a.fileRes(ino))
		}
		if rec.Name == "F_DUPFD" && rec.Ret >= 0 {
			create(a.bumpFD(rec.Ret))
			a.fdFile[rec.Ret] = a.fdFile[rec.FD]
			a.fdPath[rec.Ret] = a.fdPath[rec.FD]
		}
	case "dup":
		use(a.fdRes(rec.FD))
		if ino := a.fdFile[rec.FD]; ino != nil {
			use(a.fileRes(ino))
		}
		create(a.bumpFD(rec.Ret))
		a.fdFile[rec.Ret] = a.fdFile[rec.FD]
		a.fdPath[rec.Ret] = a.fdPath[rec.FD]
	case "dup2":
		use(a.fdRes(rec.FD))
		if ino := a.fdFile[rec.FD]; ino != nil {
			use(a.fileRes(ino))
		}
		if rec.FD != rec.FD2 {
			if _, open := a.fdFile[rec.FD2]; open {
				del(a.fdRes(rec.FD2))
			}
			create(a.bumpFD(rec.FD2))
			a.fdFile[rec.FD2] = a.fdFile[rec.FD]
			a.fdPath[rec.FD2] = a.fdPath[rec.FD]
		}
	case "stat", "access", "statfs", "chmod", "chown", "utimes",
		"getattrlist", "setattrlist", "fsctl", "searchfs", "vfsconf",
		"getxattr", "setxattr", "listxattr", "removexattr", "truncate":
		ino := statLike(rec.Path, true)
		if rec.Call == "truncate" && ino != nil {
			a.fs.TruncateInode(ino, rec.Size)
		}
	case "lstat", "readlink", "lgetxattr", "lsetxattr", "llistxattr", "lremovexattr":
		statLike(rec.Path, false)
	case "mkdir":
		cp := a.canon(rec.Path)
		useParent(cp)
		ino, err := a.fs.MkdirAll(nil, cp, rec.Mode)
		if err != vfs.OK {
			a.warnf(rec, "mkdir %q failed in model: %v", cp, err)
			return ts
		}
		create(a.bumpPath(cp))
		create(a.fileRes(ino))
	case "rmdir":
		cp := a.canon(rec.Path)
		useParent(cp)
		ino := resolveFile(rec.Path, false)
		if ino != nil {
			del(a.fileRes(ino))
		}
		del(a.pathRes(cp))
		if err := a.fs.Rmdir(nil, cp); err != vfs.OK {
			a.warnf(rec, "rmdir %q failed in model: %v", cp, err)
		}
	case "unlink":
		cp := a.canon(rec.Path)
		useParent(cp)
		ino := resolveFile(rec.Path, false)
		del(a.pathRes(cp))
		if ino != nil {
			if ino.Nlink <= 1 {
				del(a.fileRes(ino))
			} else {
				use(a.fileRes(ino))
			}
		}
		if err := a.fs.Unlink(nil, cp); err != vfs.OK {
			a.warnf(rec, "unlink %q failed in model: %v", cp, err)
		}
	case "rename":
		a.analyzeRename(rec, &ts)
	case "link":
		oldP, newP := a.canon(rec.Path), a.canon(rec.Path2)
		use(a.pathRes(oldP))
		useParent(oldP)
		useParent(newP)
		ino := resolveFile(rec.Path, false)
		if ino != nil {
			use(a.fileRes(ino))
		}
		create(a.bumpPath(newP))
		if err := a.fs.Link(nil, oldP, newP); err != vfs.OK {
			a.warnf(rec, "link failed in model: %v", err)
		}
	case "symlink":
		linkP := a.canon(rec.Path2)
		useParent(linkP)
		ino, err := a.fs.Symlink(nil, rec.Path, linkP)
		if err != vfs.OK {
			a.warnf(rec, "symlink failed in model: %v", err)
			return ts
		}
		create(a.bumpPath(linkP))
		create(a.fileRes(ino))
	case "exchangedata":
		pa, pb := a.canon(rec.Path), a.canon(rec.Path2)
		useParent(pa)
		useParent(pb)
		inoA := resolveFile(rec.Path, true)
		inoB := resolveFile(rec.Path2, true)
		if inoA != nil {
			use(a.fileRes(inoA))
		}
		if inoB != nil {
			use(a.fileRes(inoB))
		}
		// Both names change binding: old generations die, new ones begin
		// within the same action.
		del(a.pathRes(pa))
		del(a.pathRes(pb))
		create(a.bumpPath(pa))
		create(a.bumpPath(pb))
		if err := a.fs.Exchange(nil, pa, pb); err != vfs.OK {
			a.warnf(rec, "exchangedata failed in model: %v", err)
		}
	case "chdir":
		ino := statLike(rec.Path, true)
		if ino != nil && ino.IsDir() {
			a.cwd = ino
			a.cwdPath = a.canon(rec.Path)
		}
	case "fchdir":
		use(a.fdRes(rec.FD))
		if ino := a.fdFile[rec.FD]; ino != nil && ino.IsDir() {
			use(a.fileRes(ino))
			a.cwd = ino
			if p, ok := a.fdPath[rec.FD]; ok {
				a.cwdPath = p
			}
		}
	case "aio_read", "aio_write":
		use(a.fdRes(rec.FD))
		if ino := a.fdFile[rec.FD]; ino != nil {
			use(a.fileRes(ino))
		}
		create(aioRes(rec.AIO))
	case "aio_error", "aio_suspend":
		use(aioRes(rec.AIO))
	case "aio_return":
		del(aioRes(rec.AIO))
	case "sync", "munmap", "msync":
		// No specific resources beyond the issuing thread.
	default:
		a.warnf(rec, "call not in trace model")
	}
	return ts
}

// analyzeRename handles the hardest case in the model: a rename touches
// the parents, the moved file, and — when a directory moves — every
// path and file in its subtree (Figure 2's rename touches "four paths").
func (a *analyzer) analyzeRename(rec *trace.Record, ts *[]Touch) {
	use := func(r ResourceID) { *ts = append(*ts, Touch{r, RoleUse}) }
	create := func(r ResourceID) { *ts = append(*ts, Touch{r, RoleCreate}) }
	del := func(r ResourceID) { *ts = append(*ts, Touch{r, RoleDelete}) }
	oldP, newP := a.canon(rec.Path), a.canon(rec.Path2)
	if dir := a.parentOf(oldP); dir != nil {
		use(a.fileRes(dir))
	}
	if dir := a.parentOf(newP); dir != nil {
		use(a.fileRes(dir))
	}
	src, err := a.fs.ResolveNoFollow(nil, oldP)
	if err != vfs.OK {
		a.warnf(rec, "rename source %q unresolvable: %v", oldP, err)
		return
	}
	use(a.fileRes(src))
	// Replaced destination, if any.
	if dst, derr := a.fs.ResolveNoFollow(nil, newP); derr == vfs.OK {
		if dst.Nlink <= 1 {
			del(a.fileRes(dst))
		} else {
			use(a.fileRes(dst))
		}
	}
	// Collect the subtree's relative paths before mutating the model.
	type sub struct {
		rel string
		ino *vfs.Inode
	}
	var subtree []sub
	if src.IsDir() {
		var walk func(dir *vfs.Inode, rel string)
		walk = func(dir *vfs.Inode, rel string) {
			for _, name := range dir.Children() {
				child := dir.Lookup(name)
				r := rel + "/" + name
				subtree = append(subtree, sub{r, child})
				if child.IsDir() {
					walk(child, r)
				}
			}
		}
		walk(src, "")
	}
	// Old names die; new names are born, bound to the same files.
	del(a.pathRes(oldP))
	create(a.bumpPath(newP))
	for _, s := range subtree {
		use(a.fileRes(s.ino))
		del(a.pathRes(oldP + s.rel))
		create(a.bumpPath(newP + s.rel))
	}
	if err := a.fs.Rename(nil, oldP, newP); err != vfs.OK {
		a.warnf(rec, "rename failed in model: %v", err)
	}
}
