package core

import (
	"strconv"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"rootreplay/internal/snapshot"
	"rootreplay/internal/trace"
	"rootreplay/internal/vfs"
)

// mkTrace builds a trace from compact specs "tid call path[->path2] [fd=N]".
type rspec struct {
	tid   int
	call  string
	path  string
	path2 string
	fd    int64
	fd2   int64
	flags trace.OpenFlag
	ret   int64
	err   string
	aio   int64
}

func buildTrace(specs []rspec) *trace.Trace {
	tr := &trace.Trace{Platform: "linux"}
	for i, s := range specs {
		rec := &trace.Record{
			Seq: int64(i), TID: s.tid, Call: s.call, Path: s.path, Path2: s.path2,
			FD: s.fd, FD2: s.fd2, Flags: s.flags, Ret: s.ret, Err: s.err, AIO: s.aio,
			Start: time.Duration(i) * time.Millisecond,
			End:   time.Duration(i)*time.Millisecond + 500*time.Microsecond,
		}
		tr.Records = append(tr.Records, rec)
	}
	return tr
}

func analyze(t *testing.T, tr *trace.Trace, snapEntries []snapshot.Entry) *Analysis {
	t.Helper()
	fs := vfs.New()
	if err := snapshot.RestoreTree(fs, "", &snapshot.Snapshot{Entries: snapEntries}); err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(tr, fs)
	if err != nil {
		t.Fatal(err)
	}
	return an
}

// figure2Trace reproduces the example trace from Figure 2 of the paper.
func figure2Trace() *trace.Trace {
	return buildTrace([]rspec{
		{tid: 1, call: "mkdir", path: "/a/b", ret: 0},                                     // 0
		{tid: 1, call: "open", path: "/a/b/c", flags: trace.OCreat | trace.ORdwr, ret: 3}, // 1
		{tid: 1, call: "write", fd: 3, ret: 100},                                          // 2
		{tid: 1, call: "close", fd: 3, ret: 0},                                            // 3
		{tid: 1, call: "rename", path: "/a/b", path2: "/a/old", ret: 0},                   // 4
		{tid: 2, call: "open", path: "/x/y/z", ret: 3},                                    // 5
		{tid: 2, call: "open", path: "/a/b", flags: trace.OCreat | trace.ORdwr, ret: 4},   // 6
	})
}

func figure2Snapshot() []snapshot.Entry {
	return []snapshot.Entry{
		{Kind: snapshot.KindDir, Path: "/a", Mode: 0o755},
		{Kind: snapshot.KindDir, Path: "/x", Mode: 0o755},
		{Kind: snapshot.KindDir, Path: "/x/y", Mode: 0o755},
		{Kind: snapshot.KindFile, Path: "/x/y/z", Size: 4096, Mode: 0o644},
	}
}

func seriesFor(an *Analysis, kind Kind, name string, gen int) []int {
	return an.Series[ResourceID{Kind: kind, Name: name, Gen: gen}]
}

func eq(a []int, b ...int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFigure2ActionSeries(t *testing.T) {
	an := analyze(t, figure2Trace(), figure2Snapshot())

	// path(/a/b)@1: created by mkdir (0), deleted by rename (4).
	if s := seriesFor(an, KPath, "/a/b", 1); !eq(s, 0, 4) {
		t.Errorf("path(/a/b)@1 series = %v, want [0 4]", s)
	}
	// path(/a/b)@2: created by T2's open (6).
	if s := seriesFor(an, KPath, "/a/b", 2); !eq(s, 6) {
		t.Errorf("path(/a/b)@2 series = %v, want [6]", s)
	}
	// path(/a/b/c)@1: created by open (1), deleted (retargeted) by the
	// directory rename (4).
	if s := seriesFor(an, KPath, "/a/b/c", 1); !eq(s, 1, 4) {
		t.Errorf("path(/a/b/c)@1 series = %v, want [1 4]", s)
	}
	// path(/a/old)@1 and path(/a/old/c)@1: created by the rename.
	if s := seriesFor(an, KPath, "/a/old", 1); !eq(s, 4) {
		t.Errorf("path(/a/old)@1 series = %v, want [4]", s)
	}
	if s := seriesFor(an, KPath, "/a/old/c", 1); !eq(s, 4) {
		t.Errorf("path(/a/old/c)@1 series = %v, want [4]", s)
	}
	// path(/x/y/z)@1: only action 5.
	if s := seriesFor(an, KPath, "/x/y/z", 1); !eq(s, 5) {
		t.Errorf("path(/x/y/z)@1 series = %v, want [5]", s)
	}
	// fd3@1 = actions 1,2,3 (open/write/close); fd3@2 = action 5.
	if s := seriesFor(an, KFD, "3", 1); !eq(s, 1, 2, 3) {
		t.Errorf("fd3@1 series = %v, want [1 2 3]", s)
	}
	if s := seriesFor(an, KFD, "3", 2); !eq(s, 5) {
		t.Errorf("fd3@2 series = %v, want [5]", s)
	}
	if s := seriesFor(an, KFD, "4", 1); !eq(s, 6) {
		t.Errorf("fd4@1 series = %v, want [6]", s)
	}
}

func TestFigure2FileSeries(t *testing.T) {
	an := analyze(t, figure2Trace(), figure2Snapshot())
	// file1 (created by open at action 1) touched by 1,2,3,4 (rename of
	// its parent directory touches the contained file).
	var file1 []int
	for r, s := range an.Series {
		if r.Kind == KFile && eq(s, 1, 2, 3, 4) {
			file1 = s
		}
	}
	if file1 == nil {
		t.Error("no file resource with series [1 2 3 4] (file1)")
	}
	// dirB (created by mkdir at 0): touched by 0 (create), 1 (parent
	// lookup in open), 4 (rename). dirA (in the snapshot) is touched by
	// 0, 4 and 6 as a parent. Both series must exist.
	foundDirB, foundDirA := false, false
	for r, s := range an.Series {
		if r.Kind != KFile {
			continue
		}
		if eq(s, 0, 1, 4) {
			foundDirB = true
		}
		if eq(s, 0, 4, 6) {
			foundDirA = true
		}
	}
	if !foundDirB {
		t.Error("no file resource with series [0 1 4] (dirB)")
	}
	if !foundDirA {
		t.Error("no file resource with series [0 4 6] (dirA)")
	}
}

func TestFigure2NameOrderingGenerations(t *testing.T) {
	an := analyze(t, figure2Trace(), figure2Snapshot())
	gens := an.PathGens["/a/b"]
	if len(gens) != 2 || gens[0] != 1 || gens[1] != 2 {
		t.Fatalf("path /a/b generations = %v, want [1 2]", gens)
	}
	g := BuildGraph(an, DefaultModes())
	// Name ordering: last act of /a/b@1 (4, tid 1) -> first act of
	// /a/b@2 (6, tid 2). Cross-thread, must be present.
	found := false
	for _, e := range g.Edges {
		if e.From == 4 && e.To == 6 {
			found = true
		}
	}
	if !found {
		t.Error("missing name-ordering edge 4 -> 6 between generations of /a/b")
	}
}

func TestStageEdgesFDAcrossThreads(t *testing.T) {
	// T1 opens, T2 reads via the same fd, T1 closes: stage ordering must
	// order open -> read -> close across threads.
	tr := buildTrace([]rspec{
		{tid: 1, call: "open", path: "/f", ret: 3},
		{tid: 2, call: "read", fd: 3, ret: 100},
		{tid: 1, call: "close", fd: 3, ret: 0},
	})
	snap := []snapshot.Entry{{Kind: snapshot.KindFile, Path: "/f", Size: 4096}}
	an := analyze(t, tr, snap)
	g := BuildGraph(an, ModeSet{FDStage: true})
	has := func(from, to int) bool {
		for _, e := range g.Edges {
			if e.From == from && e.To == to {
				return true
			}
		}
		return false
	}
	if !has(0, 1) {
		t.Error("missing create edge open->read")
	}
	if !has(1, 2) {
		t.Error("missing delete edge read->close")
	}
}

func TestSameThreadEdgesOmitted(t *testing.T) {
	tr := buildTrace([]rspec{
		{tid: 1, call: "open", path: "/f", ret: 3},
		{tid: 1, call: "read", fd: 3, ret: 100},
		{tid: 1, call: "close", fd: 3, ret: 0},
	})
	snap := []snapshot.Entry{{Kind: snapshot.KindFile, Path: "/f", Size: 4096}}
	an := analyze(t, tr, snap)
	g := BuildGraph(an, DefaultModes())
	if len(g.Edges) != 0 {
		t.Fatalf("single-thread trace produced %d cross-thread edges: %v", len(g.Edges), g.Edges)
	}
}

func TestFileSeqThroughSymlinkAndHardLink(t *testing.T) {
	// Writes to the same file via a symlink and a hard link must land in
	// one file series (the detailed FS model requirement of §4.3.1).
	tr := buildTrace([]rspec{
		{tid: 1, call: "open", path: "/real", ret: 3},
		{tid: 1, call: "write", fd: 3, ret: 10},
		{tid: 2, call: "open", path: "/alias", ret: 4}, // symlink to /real
		{tid: 2, call: "write", fd: 4, ret: 10},
		{tid: 3, call: "open", path: "/hard", ret: 5}, // hard link to /real
		{tid: 3, call: "write", fd: 5, ret: 10},
	})
	fs := vfs.New()
	ino, _, err := fs.Create(nil, "/real", 0o644, true)
	if err != vfs.OK {
		t.Fatal(err)
	}
	ino.Size = 4096
	if _, err := fs.Symlink(nil, "/real", "/alias"); err != vfs.OK {
		t.Fatal(err)
	}
	if err := fs.Link(nil, "/real", "/hard"); err != vfs.OK {
		t.Fatal(err)
	}
	an, aerr := Analyze(tr, fs)
	if aerr != nil {
		t.Fatal(aerr)
	}
	fileSeries := seriesFor(an, KFile, strconv.FormatUint(uint64(ino.Ino), 10), 1)
	if !eq(fileSeries, 0, 1, 2, 3, 4, 5) {
		t.Fatalf("file series through links = %v, want all six actions", fileSeries)
	}
	g := BuildGraph(an, ModeSet{FileSeq: true})
	// file_seq must chain the cross-thread accesses.
	want := [][2]int{{1, 2}, {3, 4}}
	for _, w := range want {
		found := false
		for _, e := range g.Edges {
			if e.From == w[0] && e.To == w[1] {
				found = true
			}
		}
		if !found {
			t.Errorf("missing file_seq edge %d->%d", w[0], w[1])
		}
	}
}

func TestRenameUnbreaksSymlinkDependency(t *testing.T) {
	// The iphoto_import400 edge case (§5.1): /link points to /y/f which
	// does not exist; renaming /x to /y makes /link resolve. An open
	// through the link after the rename must depend on the rename (via
	// the file resource reached through the new path).
	tr := buildTrace([]rspec{
		{tid: 1, call: "rename", path: "/x", path2: "/y", ret: 0},
		{tid: 2, call: "open", path: "/link", ret: 3},
	})
	fs := vfs.New()
	if _, err := fs.MkdirAll(nil, "/x", 0o755); err != vfs.OK {
		t.Fatal(err)
	}
	ino, _, err := fs.Create(nil, "/x/f", 0o644, true)
	if err != vfs.OK {
		t.Fatal(err)
	}
	ino.Size = 100
	if _, err := fs.Symlink(nil, "/y/f", "/link"); err != vfs.OK {
		t.Fatal(err)
	}
	an, aerr := Analyze(tr, fs)
	if aerr != nil {
		t.Fatal(aerr)
	}
	g := BuildGraph(an, DefaultModes())
	found := false
	for _, e := range g.Edges {
		if e.From == 0 && e.To == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("open through un-broken symlink lacks dependency on rename; edges=%v", g.Edges)
	}
}

func TestProgramSeqTotalOrder(t *testing.T) {
	tr := figure2Trace()
	an := analyze(t, tr, figure2Snapshot())
	g := BuildGraph(an, ModeSet{ProgramSeq: true})
	// Every consecutive cross-thread pair must be chained.
	if len(g.Edges) == 0 {
		t.Fatal("program_seq produced no edges")
	}
	for _, e := range g.Edges {
		if e.To != e.From+1 {
			t.Fatalf("program_seq edge %d->%d not consecutive", e.From, e.To)
		}
	}
}

func TestFailedCallsUnconstrained(t *testing.T) {
	tr := buildTrace([]rspec{
		{tid: 1, call: "open", path: "/f", ret: 3},
		{tid: 2, call: "stat", path: "/f", ret: -1, err: "ENOENT"},
	})
	snap := []snapshot.Entry{{Kind: snapshot.KindFile, Path: "/f", Size: 10}}
	an := analyze(t, tr, snap)
	if len(an.Actions[1].Touches) != 0 {
		t.Fatalf("failed call touches = %v, want none", an.Actions[1].Touches)
	}
	g := BuildGraph(an, DefaultModes())
	for _, e := range g.Edges {
		if e.To == 1 || e.From == 1 {
			t.Fatalf("failed call has dependency edge %v", e)
		}
	}
}

func TestAIOStage(t *testing.T) {
	tr := buildTrace([]rspec{
		{tid: 1, call: "open", path: "/f", ret: 3},
		{tid: 1, call: "aio_read", fd: 3, ret: 9, aio: 9},
		{tid: 2, call: "aio_error", aio: 9, ret: 0},
		{tid: 2, call: "aio_return", aio: 9, ret: 4096},
	})
	snap := []snapshot.Entry{{Kind: snapshot.KindFile, Path: "/f", Size: 1 << 20}}
	an := analyze(t, tr, snap)
	g := BuildGraph(an, ModeSet{AIOStage: true})
	has := func(from, to int) bool {
		for _, e := range g.Edges {
			if e.From == from && e.To == to {
				return true
			}
		}
		return false
	}
	if !has(1, 2) {
		t.Error("aio_error does not depend on aio_read (stage create)")
	}
	// aio_error -> aio_return is same-thread (implicit); the delete must
	// still wait on the cross-thread create.
	if !has(1, 3) {
		t.Error("aio_return (delete) does not wait for aio_read (create)")
	}
}

func TestTemporalGraph(t *testing.T) {
	tr := figure2Trace()
	an := analyze(t, tr, figure2Snapshot())
	g := TemporalGraph(an)
	if err := g.CheckAcyclic(); err != nil {
		t.Fatal(err)
	}
	// Only cross-thread consecutive pairs: 4->5 (T1->T2). 5->6 same
	// thread.
	if len(g.Edges) != 1 || g.Edges[0].From != 4 || g.Edges[0].To != 5 {
		t.Fatalf("temporal edges = %v", g.Edges)
	}
	if g.Edges[0].Kind != WaitIssue {
		t.Fatal("temporal edges must be WaitIssue")
	}
	if len(UnconstrainedGraph(an).Edges) != 0 {
		t.Fatal("unconstrained graph has edges")
	}
}

func TestValidateOrder(t *testing.T) {
	tr := buildTrace([]rspec{
		{tid: 1, call: "open", path: "/f", ret: 3},
		{tid: 2, call: "read", fd: 3, ret: 10},
	})
	snap := []snapshot.Entry{{Kind: snapshot.KindFile, Path: "/f", Size: 100}}
	an := analyze(t, tr, snap)
	g := BuildGraph(an, DefaultModes())
	ok := []time.Duration{0, 10}
	okDone := []time.Duration{5, 15}
	if err := g.ValidateOrder(ok, okDone); err != nil {
		t.Fatalf("valid order rejected: %v", err)
	}
	bad := []time.Duration{10, 3} // read issued before open completed
	badDone := []time.Duration{15, 8}
	if err := g.ValidateOrder(bad, badDone); err == nil {
		t.Fatal("invalid order accepted")
	}
}

func TestModeSubsumption(t *testing.T) {
	all := DefaultModes()
	prog := ModeSet{ProgramSeq: true}
	none := ModeSet{}
	if !prog.Subsumes(all) || !prog.Subsumes(none) {
		t.Error("program_seq must subsume everything")
	}
	if all.Subsumes(prog) {
		t.Error("default modes must not subsume program_seq")
	}
	if !all.Subsumes(none) {
		t.Error("defaults subsume empty")
	}
	fdSeq := ModeSet{FDSeq: true}
	fdStage := ModeSet{FDStage: true}
	if !fdSeq.Subsumes(fdStage) {
		t.Error("fd_seq must subsume fd_stage")
	}
	if fdStage.Subsumes(fdSeq) {
		t.Error("fd_stage must not subsume fd_seq")
	}
}

// Subsumption property at the graph level: orderings forbidden by a
// weaker mode set are also forbidden by a stronger one. We verify the
// edge-set inclusion on the Figure 2 trace: dependencies required by
// fd_stage are also implied by fd_seq edges (directly or transitively).
func TestStageEdgesImpliedBySeq(t *testing.T) {
	tr := buildTrace([]rspec{
		{tid: 1, call: "open", path: "/f", ret: 3},
		{tid: 2, call: "read", fd: 3, ret: 1},
		{tid: 3, call: "read", fd: 3, ret: 1},
		{tid: 1, call: "close", fd: 3, ret: 0},
	})
	snap := []snapshot.Entry{{Kind: snapshot.KindFile, Path: "/f", Size: 100}}
	an := analyze(t, tr, snap)
	stage := BuildGraph(an, ModeSet{FDStage: true})
	seq := BuildGraph(an, ModeSet{FDSeq: true})
	reach := func(g *Graph, from, to int) bool {
		next := make(map[int][]int)
		for _, e := range g.Edges {
			next[e.From] = append(next[e.From], e.To)
		}
		// Same-thread order is implicit: add those edges too.
		byTID := make(map[int][]int)
		for i, a := range an.Actions {
			byTID[a.Rec.TID] = append(byTID[a.Rec.TID], i)
		}
		for _, idxs := range byTID {
			for i := 1; i < len(idxs); i++ {
				next[idxs[i-1]] = append(next[idxs[i-1]], idxs[i])
			}
		}
		seen := map[int]bool{from: true}
		stack := []int{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			for _, m := range next[n] {
				if !seen[m] {
					seen[m] = true
					stack = append(stack, m)
				}
			}
		}
		return false
	}
	for _, e := range stage.Edges {
		if !reach(seq, e.From, e.To) {
			t.Errorf("stage edge %d->%d not implied by fd_seq graph", e.From, e.To)
		}
	}
}

func TestAnalyzeRequiresRenumberedTrace(t *testing.T) {
	tr := figure2Trace()
	tr.Records[0].Seq = 42
	fs := vfs.New()
	if _, err := Analyze(tr, fs); err == nil {
		t.Fatal("no error for unnumbered trace")
	}
}

func TestWarningsOnModelMiss(t *testing.T) {
	tr := buildTrace([]rspec{
		{tid: 1, call: "read", fd: 99, ret: 10}, // untracked fd
	})
	an := analyze(t, tr, nil)
	if len(an.Warnings) == 0 {
		t.Fatal("no warning for untracked fd")
	}
	if !strings.Contains(an.Warnings[0], "fd 99") {
		t.Fatalf("warning = %q", an.Warnings[0])
	}
}

// Property: for random mode sets and a fixed nontrivial trace, the built
// graph is acyclic and all edges connect different threads.
func TestQuickGraphInvariants(t *testing.T) {
	tr := figure2Trace()
	an := analyze(t, tr, figure2Snapshot())
	f := func(prog, fseq, path, fdstage, fdseq, aio bool) bool {
		m := ModeSet{ProgramSeq: prog, FileSeq: fseq, PathStageName: path,
			FDStage: fdstage, FDSeq: fdseq, AIOStage: aio}
		g := BuildGraph(an, m)
		if g.CheckAcyclic() != nil {
			return false
		}
		for _, e := range g.Edges {
			if an.Actions[e.From].Rec.TID == an.Actions[e.To].Rec.TID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}

// Property: a stronger mode set's graph requires at least as many
// orderings: every edge of the weaker graph is reachable in the stronger
// graph (with implicit thread edges).
func TestQuickSubsumptionEdgeInclusion(t *testing.T) {
	tr := figure2Trace()
	an := analyze(t, tr, figure2Snapshot())
	weakModes := []ModeSet{
		{},
		{FDStage: true},
		{PathStageName: true},
		{FileSeq: true},
	}
	strong := BuildGraph(an, ModeSet{ProgramSeq: true})
	next := make(map[int][]int)
	for _, e := range strong.Edges {
		next[e.From] = append(next[e.From], e.To)
	}
	byTID := make(map[int][]int)
	for i, a := range an.Actions {
		byTID[a.Rec.TID] = append(byTID[a.Rec.TID], i)
	}
	for _, idxs := range byTID {
		for i := 1; i < len(idxs); i++ {
			next[idxs[i-1]] = append(next[idxs[i-1]], idxs[i])
		}
	}
	var reach func(from, to int, seen map[int]bool) bool
	reach = func(from, to int, seen map[int]bool) bool {
		if from == to {
			return true
		}
		seen[from] = true
		for _, m := range next[from] {
			if !seen[m] && reach(m, to, seen) {
				return true
			}
		}
		return false
	}
	for _, m := range weakModes {
		g := BuildGraph(an, m)
		for _, e := range g.Edges {
			if !reach(e.From, e.To, map[int]bool{}) {
				t.Fatalf("edge %d->%d of mode %+v not implied by program_seq", e.From, e.To, m)
			}
		}
	}
}

func TestKindRoleStrings(t *testing.T) {
	if KFile.String() != "file" || KAIO.String() != "aiocb" {
		t.Fatal("kind names")
	}
	if RoleCreate.String() != "create" || RoleDelete.String() != "delete" || RoleUse.String() != "use" {
		t.Fatal("role names")
	}
	r := ResourceID{Kind: KFD, Name: "3", Gen: 2}
	if r.String() != "fd(3)@2" {
		t.Fatalf("resource string = %s", r.String())
	}
}

func BenchmarkAnalyzeFigure2Style(b *testing.B) {
	// A synthetic 1000-action trace of opens/reads/closes.
	var specs []rspec
	for i := 0; i < 250; i++ {
		fd := int64(3 + i%4)
		p := "/data/f" + strconv.Itoa(i%16)
		specs = append(specs,
			rspec{tid: 1 + i%4, call: "open", path: p, ret: fd},
			rspec{tid: 1 + i%4, call: "read", fd: fd, ret: 100},
			rspec{tid: 1 + i%4, call: "read", fd: fd, ret: 100},
			rspec{tid: 1 + i%4, call: "close", fd: fd, ret: 0},
		)
	}
	tr := buildTrace(specs)
	var entries []snapshot.Entry
	entries = append(entries, snapshot.Entry{Kind: snapshot.KindDir, Path: "/data"})
	for i := 0; i < 16; i++ {
		entries = append(entries, snapshot.Entry{
			Kind: snapshot.KindFile, Path: "/data/f" + strconv.Itoa(i), Size: 4096,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := vfs.New()
		if err := snapshot.RestoreTree(fs, "", &snapshot.Snapshot{Entries: entries}); err != nil {
			b.Fatal(err)
		}
		an, err := Analyze(tr, fs)
		if err != nil {
			b.Fatal(err)
		}
		BuildGraph(an, DefaultModes())
	}
}
