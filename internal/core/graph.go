package core

import (
	"fmt"
	"sort"
	"time"
)

// EdgeKind distinguishes the two replay-dependency semantics.
type EdgeKind int

// Edge kinds.
const (
	// WaitComplete: the dependent action may not be issued until the
	// dependency has completed (returned). ARTC's resource edges.
	WaitComplete EdgeKind = iota
	// WaitIssue: the dependent action may not be issued until the
	// dependency has been issued. Temporal ordering uses these to
	// preserve trace issue order while permitting traced overlap.
	WaitIssue
)

// Edge is a replay-order dependency between two actions, identified by
// their Seq indices.
type Edge struct {
	From, To int
	Kind     EdgeKind
	// Res is the resource that induced the edge (zero for temporal and
	// program edges); retained for reporting and Figure 8.
	Res ResourceID
}

// Graph is the partial order a replayer enforces.
type Graph struct {
	N     int
	Edges []Edge
	// Deps[i] lists the indices of edges whose To == i.
	Deps [][]int
}

// newGraph builds the index from an edge list.
func newGraph(n int, edges []Edge) *Graph {
	g := &Graph{N: n, Edges: edges, Deps: make([][]int, n)}
	for ei, e := range edges {
		g.Deps[e.To] = append(g.Deps[e.To], ei)
	}
	return g
}

// BuildGraph derives the replay dependency graph from an analysis under
// the given mode set. Edges within a single thread are omitted: thread
// sequential ordering is enforced structurally by replaying each traced
// thread on its own replay thread, which subsumes them.
func BuildGraph(an *Analysis, modes ModeSet) *Graph {
	n := len(an.Actions)
	tid := func(i int) int { return an.Actions[i].Rec.TID }
	seen := make(map[[2]int]bool)
	var edges []Edge
	add := func(from, to int, kind EdgeKind, res ResourceID) {
		if from == to || from > to {
			return
		}
		if tid(from) == tid(to) {
			return
		}
		key := [2]int{from, to}
		if seen[key] {
			return
		}
		seen[key] = true
		edges = append(edges, Edge{From: from, To: to, Kind: kind, Res: res})
	}

	if modes.ProgramSeq {
		for i := 1; i < n; i++ {
			add(i-1, i, WaitComplete, ResourceID{Kind: KProgram, Name: "program", Gen: 1})
		}
		// program_seq subsumes every other rule; no further edges needed.
		return newGraph(n, edges)
	}

	// Deterministic resource iteration order.
	resources := make([]ResourceID, 0, len(an.Series))
	for r := range an.Series {
		resources = append(resources, r)
	}
	sort.Slice(resources, func(i, j int) bool {
		a, b := resources[i], resources[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Gen < b.Gen
	})

	roleOf := func(actIdx int, r ResourceID) Role {
		for _, t := range an.Actions[actIdx].Touches {
			if t.Res == r {
				return t.Role
			}
		}
		return RoleUse
	}

	for _, r := range resources {
		series := an.Series[r]
		if len(series) < 2 {
			continue
		}
		seq := false
		stage := false
		switch r.Kind {
		case KFile:
			seq = modes.FileSeq
		case KPath:
			stage = modes.PathStageName
		case KFD:
			seq = modes.FDSeq
			stage = modes.FDStage
		case KAIO:
			stage = modes.AIOStage
		}
		if seq {
			for i := 1; i < len(series); i++ {
				add(series[i-1], series[i], WaitComplete, r)
			}
			// Sequential subsumes stage for the same resource.
			continue
		}
		if stage {
			first, last := series[0], series[len(series)-1]
			if roleOf(first, r) == RoleCreate {
				for _, i := range series[1:] {
					add(first, i, WaitComplete, r)
				}
			}
			if roleOf(last, r) == RoleDelete {
				for _, i := range series[:len(series)-1] {
					add(i, last, WaitComplete, r)
				}
			}
		}
	}

	// Name ordering: for each path name with multiple generations, the
	// last action of one generation precedes the first action of the
	// next.
	if modes.PathStageName {
		for name, gens := range an.PathGens {
			for gi := 1; gi < len(gens); gi++ {
				prev := an.Series[ResourceID{Kind: KPath, Name: name, Gen: gens[gi-1]}]
				next := an.Series[ResourceID{Kind: KPath, Name: name, Gen: gens[gi]}]
				if len(prev) == 0 || len(next) == 0 {
					continue
				}
				add(prev[len(prev)-1], next[0], WaitComplete,
					ResourceID{Kind: KPath, Name: name, Gen: gens[gi]})
			}
		}
	}
	return newGraph(n, edges)
}

// TemporalGraph builds the baseline temporally-ordered replay graph:
// every action waits for the previous action in trace order to have been
// issued (not completed), so traced overlap is preserved but no
// reordering can occur (§5's "temporally-ordered replay").
func TemporalGraph(an *Analysis) *Graph {
	n := len(an.Actions)
	var edges []Edge
	for i := 1; i < n; i++ {
		if an.Actions[i-1].Rec.TID == an.Actions[i].Rec.TID {
			continue // implied by per-thread replay order
		}
		edges = append(edges, Edge{From: i - 1, To: i, Kind: WaitIssue})
	}
	return newGraph(n, edges)
}

// UnconstrainedGraph builds the no-synchronization baseline: no edges at
// all beyond implicit thread ordering.
func UnconstrainedGraph(an *Analysis) *Graph {
	return newGraph(len(an.Actions), nil)
}

// CheckAcyclic verifies the graph plus implicit same-thread ordering has
// no cycles; by construction all edges go forward in trace order, so a
// violation indicates an analyzer bug.
func (g *Graph) CheckAcyclic() error {
	for _, e := range g.Edges {
		if e.From >= e.To {
			return fmt.Errorf("core: edge %d -> %d does not follow trace order", e.From, e.To)
		}
	}
	return nil
}

// Stats summarizes a graph for reporting (Figure 8): cross-thread edge
// count and the mean "length" of an edge measured as trace time between
// the two actions' issue points.
type GraphStats struct {
	Edges      int
	MeanLength time.Duration
	MaxLength  time.Duration
}

// Stats computes edge statistics against the analysis the graph was
// built from.
func (g *Graph) Stats(an *Analysis) GraphStats {
	var st GraphStats
	st.Edges = len(g.Edges)
	if st.Edges == 0 {
		return st
	}
	var total time.Duration
	for _, e := range g.Edges {
		l := an.Actions[e.To].Rec.Start - an.Actions[e.From].Rec.Start
		if l < 0 {
			l = 0
		}
		total += l
		if l > st.MaxLength {
			st.MaxLength = l
		}
	}
	st.MeanLength = total / time.Duration(st.Edges)
	return st
}

// ValidateOrder checks that a completed replay order (a permutation of
// action indices in the order they were issued, with issue and
// completion times) satisfies every edge; used by tests and the
// replayer's self-check mode. issue and complete map action index to
// virtual times.
func (g *Graph) ValidateOrder(issue, complete []time.Duration) error {
	if len(issue) != g.N || len(complete) != g.N {
		return fmt.Errorf("core: order length mismatch")
	}
	for _, e := range g.Edges {
		switch e.Kind {
		case WaitComplete:
			if issue[e.To] < complete[e.From] {
				return fmt.Errorf("core: action %d issued at %v before dependency %d completed at %v (%s)",
					e.To, issue[e.To], e.From, complete[e.From], e.Res)
			}
		case WaitIssue:
			if issue[e.To] < issue[e.From] {
				return fmt.Errorf("core: action %d issued at %v before dependency %d issued at %v",
					e.To, issue[e.To], e.From, issue[e.From])
			}
		}
	}
	return nil
}
