package core

import (
	"fmt"
	"slices"
	"strings"
	"sync"
	"time"
)

// EdgeKind distinguishes the two replay-dependency semantics.
type EdgeKind int

// Edge kinds.
const (
	// WaitComplete: the dependent action may not be issued until the
	// dependency has completed (returned). ARTC's resource edges.
	WaitComplete EdgeKind = iota
	// WaitIssue: the dependent action may not be issued until the
	// dependency has been issued. Temporal ordering uses these to
	// preserve trace issue order while permitting traced overlap.
	WaitIssue
)

// Edge is a replay-order dependency between two actions, identified by
// their Seq indices.
type Edge struct {
	From, To int
	Kind     EdgeKind
	// Res is the resource that induced the edge (zero for temporal and
	// program edges); retained for reporting and Figure 8.
	Res ResourceID
}

// Graph is the partial order a replayer enforces.
type Graph struct {
	N     int
	Edges []Edge
	// Deps[i] lists the indices of edges whose To == i.
	Deps [][]int
	// Succs[i] lists the indices of edges whose From == i; the
	// replayer's indegree scheduler walks it when action i issues or
	// completes.
	Succs [][]int
	// Indegree[i] is len(Deps[i]): the number of edges action i must
	// wait out before it can be issued.
	Indegree []int
	// ReducedEdges counts edges removed by Reduce; the raw edge count is
	// len(Edges) + ReducedEdges.
	ReducedEdges int
}

// newGraph builds the indexes from an edge list.
func newGraph(n int, edges []Edge) *Graph {
	g := &Graph{
		N:        n,
		Edges:    edges,
		Deps:     make([][]int, n),
		Succs:    make([][]int, n),
		Indegree: make([]int, n),
	}
	// Size the adjacency slices in two passes so the per-node slices are
	// exact-capacity single allocations rather than append-grown.
	outDeg := make([]int, n)
	for _, e := range edges {
		g.Indegree[e.To]++
		outDeg[e.From]++
	}
	depBuf := make([]int, len(edges))
	succBuf := make([]int, len(edges))
	for i := 0; i < n; i++ {
		g.Deps[i] = depBuf[:0:g.Indegree[i]]
		depBuf = depBuf[g.Indegree[i]:]
		g.Succs[i] = succBuf[:0:outDeg[i]]
		succBuf = succBuf[outDeg[i]:]
	}
	for ei, e := range edges {
		g.Deps[e.To] = append(g.Deps[e.To], ei)
		g.Succs[e.From] = append(g.Succs[e.From], ei)
	}
	return g
}

// NewGraph assembles a graph from an explicit edge list, building the
// dependency indexes. Callers own edge order and deduplication; the
// sharded replayer uses it to materialize per-component subgraphs whose
// edge slices are filtered copies of an already-built graph's.
func NewGraph(n int, edges []Edge) *Graph { return newGraph(n, edges) }

// BuildGraph derives the replay dependency graph from an analysis under
// the given mode set. Edges within a single thread are omitted: thread
// sequential ordering is enforced structurally by replaying each traced
// thread on its own replay thread, which subsumes them.
func BuildGraph(an *Analysis, modes ModeSet) *Graph {
	n := len(an.Actions)
	tid := func(i int) int { return an.Actions[i].Rec.TID }
	// Edges are appended freely (the ordering rules emit the same pair
	// through different resources) and deduplicated afterward by a
	// sort+compact pass — far cheaper than a map probe per candidate.
	edges := make([]Edge, 0, n)
	add := func(from, to int, kind EdgeKind, res ResourceID) {
		if from == to || from > to {
			return
		}
		if tid(from) == tid(to) {
			return
		}
		edges = append(edges, Edge{From: from, To: to, Kind: kind, Res: res})
	}

	if modes.ProgramSeq {
		for i := 1; i < n; i++ {
			add(i-1, i, WaitComplete, ResourceID{Kind: KProgram, Name: "program", Gen: 1})
		}
		// program_seq subsumes every other rule; no further edges needed.
		return newGraph(n, dedupEdges(edges))
	}

	// Deterministic resource iteration order. The analyzer's dense
	// resource list avoids a map iteration plus one hash per resource;
	// hand-built analyses without it fall back to the map. Either way
	// the sort permutes int32 indices (4-byte swaps, no reflect).
	resources := an.Resources
	seriesOf := func(k int32) []int { return an.SeriesList[k] }
	if resources == nil {
		resources = make([]ResourceID, 0, len(an.Series))
		for r := range an.Series {
			resources = append(resources, r)
		}
		seriesOf = func(k int32) []int { return an.Series[resources[k]] }
	}
	rord := make([]int32, len(resources))
	for i := range rord {
		rord[i] = int32(i)
	}
	slices.SortFunc(rord, func(i, j int32) int {
		a, b := &resources[i], &resources[j]
		if a.Kind != b.Kind {
			return int(a.Kind) - int(b.Kind)
		}
		if c := strings.Compare(a.Name, b.Name); c != 0 {
			return c
		}
		return a.Gen - b.Gen
	})

	roleOf := func(actIdx int, r ResourceID) Role {
		for _, t := range an.Actions[actIdx].Touches {
			if t.Res == r {
				return t.Role
			}
		}
		return RoleUse
	}

	for _, k := range rord {
		r := resources[k]
		series := seriesOf(k)
		if len(series) < 2 {
			continue
		}
		seq := false
		stage := false
		switch r.Kind {
		case KFile:
			seq = modes.FileSeq
		case KPath:
			stage = modes.PathStageName
		case KFD:
			seq = modes.FDSeq
			stage = modes.FDStage
		case KAIO:
			stage = modes.AIOStage
		}
		if seq {
			for i := 1; i < len(series); i++ {
				add(series[i-1], series[i], WaitComplete, r)
			}
			// Sequential subsumes stage for the same resource.
			continue
		}
		if stage {
			first, last := series[0], series[len(series)-1]
			if roleOf(first, r) == RoleCreate {
				for _, i := range series[1:] {
					add(first, i, WaitComplete, r)
				}
			}
			if roleOf(last, r) == RoleDelete {
				for _, i := range series[:len(series)-1] {
					add(i, last, WaitComplete, r)
				}
			}
		}
	}

	// Name ordering: for each path name with multiple generations, the
	// last action of one generation precedes the first action of the
	// next.
	if modes.PathStageName {
		for name, gens := range an.PathGens {
			for gi := 1; gi < len(gens); gi++ {
				prev := an.Series[ResourceID{Kind: KPath, Name: name, Gen: gens[gi-1]}]
				next := an.Series[ResourceID{Kind: KPath, Name: name, Gen: gens[gi]}]
				if len(prev) == 0 || len(next) == 0 {
					continue
				}
				add(prev[len(prev)-1], next[0], WaitComplete,
					ResourceID{Kind: KPath, Name: name, Gen: gens[gi]})
			}
		}
	}
	return newGraph(n, dedupEdges(edges))
}

// dedupEdges sorts edges by (From, To) and keeps the first-emitted edge
// of each pair, preserving the rule order BuildGraph added them in (the
// behaviour the old seen-map dedup had). It sorts a permutation of int32
// indices rather than the edges themselves: swaps move 4 bytes instead
// of a whole Edge, and the emission-index tiebreak makes the sort stable
// without sort.SliceStable's merge passes.
func dedupEdges(edges []Edge) []Edge {
	if len(edges) < 2 {
		return edges
	}
	ord := make([]int32, len(edges))
	for i := range ord {
		ord[i] = int32(i)
	}
	slices.SortFunc(ord, func(i, j int32) int {
		a, b := &edges[i], &edges[j]
		if a.From != b.From {
			return a.From - b.From
		}
		if a.To != b.To {
			return a.To - b.To
		}
		return int(i - j)
	})
	uniq := 1
	for k := 1; k < len(ord); k++ {
		if prev := &edges[ord[k-1]]; prev.From != edges[ord[k]].From || prev.To != edges[ord[k]].To {
			uniq++
		}
	}
	out := make([]Edge, 0, uniq)
	for k, oi := range ord {
		if k > 0 {
			if prev := &edges[ord[k-1]]; prev.From == edges[oi].From && prev.To == edges[oi].To {
				continue
			}
		}
		out = append(out, edges[oi])
	}
	return out
}

// closurePool recycles Reduce's positions-closure scratch table across
// calls (compiles run concurrently in the experiment pool, hence a
// sync.Pool rather than a plain global).
var closurePool = sync.Pool{New: func() any { return []int32(nil) }}

// Reduce returns a graph enforcing the same partial order with
// transitively-redundant edges removed. An edge u -> v is redundant when
// another path from u to v already implies it: either a chain of other
// edges, or same-thread replay order (each traced thread replays its
// actions sequentially, so an edge into an early action of a thread
// subsumes edges into that thread's later actions — this collapses the
// stage rule's create -> every-later-action fan-out to one edge per
// thread).
//
// The implication is only sound when every hop is complete-strength:
// WaitComplete edges and same-thread order both guarantee the
// predecessor has *completed* before the successor issues, so any chain
// starting at u implies issue(v) >= complete(u). Graphs containing
// WaitIssue edges (the temporal baseline) are returned unchanged.
//
// Reduce does not mutate g; ReducedEdges on the result counts the
// removed edges so reports can show both raw and reduced sizes.
func (g *Graph) Reduce(an *Analysis) *Graph {
	n := g.N
	if n == 0 || len(g.Edges) == 0 {
		return g
	}
	for _, e := range g.Edges {
		if e.Kind != WaitComplete {
			return g
		}
	}

	// Thread structure: compact thread index, position within thread,
	// and each action's same-thread successor.
	tidIdx := make([]int, n)
	pos := make([]int, n)
	next := make([]int, n)
	threadOf := make(map[int]int)
	lastOf := make(map[int]int)
	for i := 0; i < n; i++ {
		next[i] = -1
		tid := an.Actions[i].Rec.TID
		ti, ok := threadOf[tid]
		if !ok {
			ti = len(threadOf)
			threadOf[tid] = ti
		}
		tidIdx[i] = ti
		if prev, ok := lastOf[tid]; ok {
			pos[i] = pos[prev] + 1
			next[prev] = i
		}
		lastOf[tid] = i
	}
	nt := len(threadOf)
	// The closure table below is n*nt int32s. Past ~32M entries the
	// memory cost outweighs the replay savings; keep the raw graph.
	if nt == 0 || n > (32<<20)/nt {
		return g
	}

	// closure[u*nt+t] is the minimum thread-t position over {u} union
	// every node reachable from u (through edges and same-thread order).
	// Every edge goes forward in trace order, so processing u from n-1
	// down to 0 sees each successor's closure before it is needed.
	const inf = int32(1) << 30
	// The table is transient scratch filled with inf below, so pooling
	// it across Reduce calls saves both the allocation and the
	// runtime's zeroing of up to n*nt*4 bytes per compile.
	closure := closurePool.Get().([]int32)
	if cap(closure) < n*nt {
		closure = make([]int32, n*nt)
	}
	closure = closure[:n*nt]
	defer closurePool.Put(closure)
	for i := range closure {
		closure[i] = inf
	}
	relax := func(u, w int) {
		cu, cw := closure[u*nt:(u+1)*nt], closure[w*nt:(w+1)*nt]
		for t := 0; t < nt; t++ {
			if cw[t] < cu[t] {
				cu[t] = cw[t]
			}
		}
	}
	// min1/min2 hold, per target thread, the two smallest closure
	// positions over u's direct successors, with min1's witness node, so
	// the redundancy check can exclude the candidate edge's own target.
	min1 := make([]int32, nt)
	min2 := make([]int32, nt)
	wit := make([]int, nt)
	redundant := make([]bool, len(g.Edges))
	removed := 0

	for u := n - 1; u >= 0; u-- {
		cu := closure[u*nt : (u+1)*nt]
		cu[tidIdx[u]] = int32(pos[u])
		for t := 0; t < nt; t++ {
			min1[t], min2[t], wit[t] = inf, inf, -1
		}
		account := func(w int) {
			cw := closure[w*nt : (w+1)*nt]
			for t := 0; t < nt; t++ {
				switch {
				case cw[t] < min1[t]:
					min2[t] = min1[t]
					min1[t], wit[t] = cw[t], w
				case cw[t] < min2[t]:
					min2[t] = cw[t]
				}
			}
		}
		if next[u] >= 0 {
			relax(u, next[u])
			account(next[u])
		}
		for _, ei := range g.Succs[u] {
			w := g.Edges[ei].To
			relax(u, w)
			account(w)
		}
		for _, ei := range g.Succs[u] {
			v := g.Edges[ei].To
			t := tidIdx[v]
			m := min1[t]
			if wit[t] == v {
				m = min2[t]
			}
			if int32(pos[v]) >= m {
				redundant[ei] = true
				removed++
			}
		}
	}
	if removed == 0 {
		return g
	}
	kept := make([]Edge, 0, len(g.Edges)-removed)
	for ei, e := range g.Edges {
		if !redundant[ei] {
			kept = append(kept, e)
		}
	}
	out := newGraph(n, kept)
	out.ReducedEdges = g.ReducedEdges + removed
	return out
}

// TemporalGraph builds the baseline temporally-ordered replay graph:
// every action waits for the previous action in trace order to have been
// issued (not completed), so traced overlap is preserved but no
// reordering can occur (§5's "temporally-ordered replay").
func TemporalGraph(an *Analysis) *Graph {
	n := len(an.Actions)
	var edges []Edge
	for i := 1; i < n; i++ {
		if an.Actions[i-1].Rec.TID == an.Actions[i].Rec.TID {
			continue // implied by per-thread replay order
		}
		edges = append(edges, Edge{From: i - 1, To: i, Kind: WaitIssue})
	}
	return newGraph(n, edges)
}

// UnconstrainedGraph builds the no-synchronization baseline: no edges at
// all beyond implicit thread ordering.
func UnconstrainedGraph(an *Analysis) *Graph {
	return newGraph(len(an.Actions), nil)
}

// CheckAcyclic verifies the graph plus implicit same-thread ordering has
// no cycles; by construction all edges go forward in trace order, so a
// violation indicates an analyzer bug.
func (g *Graph) CheckAcyclic() error {
	for _, e := range g.Edges {
		if e.From >= e.To {
			return fmt.Errorf("core: edge %d -> %d does not follow trace order", e.From, e.To)
		}
	}
	return nil
}

// Stats summarizes a graph for reporting (Figure 8): cross-thread edge
// count and the mean "length" of an edge measured as trace time between
// the two actions' issue points.
type GraphStats struct {
	Edges int
	// ReducedEdges counts edges Reduce removed as transitively
	// redundant; Edges + ReducedEdges is the raw count BuildGraph
	// emitted.
	ReducedEdges int
	MeanLength   time.Duration
	MaxLength    time.Duration
}

// Stats computes edge statistics against the analysis the graph was
// built from.
func (g *Graph) Stats(an *Analysis) GraphStats {
	var st GraphStats
	st.Edges = len(g.Edges)
	st.ReducedEdges = g.ReducedEdges
	if st.Edges == 0 {
		return st
	}
	var total time.Duration
	for _, e := range g.Edges {
		l := an.Actions[e.To].Rec.Start - an.Actions[e.From].Rec.Start
		if l < 0 {
			l = 0
		}
		total += l
		if l > st.MaxLength {
			st.MaxLength = l
		}
	}
	st.MeanLength = total / time.Duration(st.Edges)
	return st
}

// ValidateOrder checks that a completed replay order (a permutation of
// action indices in the order they were issued, with issue and
// completion times) satisfies every edge; used by tests and the
// replayer's self-check mode. issue and complete map action index to
// virtual times.
func (g *Graph) ValidateOrder(issue, complete []time.Duration) error {
	if len(issue) != g.N || len(complete) != g.N {
		return fmt.Errorf("core: order length mismatch")
	}
	for _, e := range g.Edges {
		switch e.Kind {
		case WaitComplete:
			if issue[e.To] < complete[e.From] {
				return fmt.Errorf("core: action %d issued at %v before dependency %d completed at %v (%s)",
					e.To, issue[e.To], e.From, complete[e.From], e.Res)
			}
		case WaitIssue:
			if issue[e.To] < issue[e.From] {
				return fmt.Errorf("core: action %d issued at %v before dependency %d issued at %v",
					e.To, issue[e.To], e.From, issue[e.From])
			}
		}
	}
	return nil
}
