package core

import (
	"math/rand"
	"testing"
	"time"

	"rootreplay/internal/trace"
)

// fakeAnalysis builds the minimal Analysis Reduce needs: actions with
// thread IDs, in trace order.
func fakeAnalysis(tids []int) *Analysis {
	an := &Analysis{}
	for i, tid := range tids {
		an.Actions = append(an.Actions, Action{Rec: &trace.Record{
			Seq: int64(i), TID: tid,
			Start: time.Duration(i) * time.Millisecond,
		}})
	}
	return an
}

// randomCompleteGraph generates a random forward WaitComplete edge set
// over n actions spread across nt threads.
func randomCompleteGraph(rng *rand.Rand, n, nt, edges int) (*Analysis, *Graph) {
	tids := make([]int, n)
	for i := range tids {
		tids[i] = rng.Intn(nt)
	}
	an := fakeAnalysis(tids)
	var es []Edge
	for len(es) < edges {
		from := rng.Intn(n)
		to := rng.Intn(n)
		if from >= to || tids[from] == tids[to] {
			continue
		}
		es = append(es, Edge{From: from, To: to, Kind: WaitComplete})
	}
	return an, newGraph(n, dedupEdges(es))
}

// randomSchedule executes the graph with an indegree scheduler making
// random choices: each step issues a random eligible action (thread
// order and every WaitComplete edge respected) and completes it after a
// random in-flight delay, so issued actions overlap across threads. The
// result is a valid order for g by construction.
func randomSchedule(rng *rand.Rand, an *Analysis, g *Graph) (issue, complete []time.Duration) {
	n := g.N
	issue = make([]time.Duration, n)
	complete = make([]time.Duration, n)
	done := make([]bool, n)
	issued := make([]bool, n)
	prevSame := make([]int, n) // same-thread predecessor, -1 if first
	lastOf := map[int]int{}
	for i := 0; i < n; i++ {
		prevSame[i] = -1
		tid := an.Actions[i].Rec.TID
		if p, ok := lastOf[tid]; ok {
			prevSame[i] = p
		}
		lastOf[tid] = i
	}
	now := time.Duration(1)
	remaining := n
	for remaining > 0 {
		var ready []int
		for i := 0; i < n; i++ {
			if issued[i] {
				continue
			}
			ok := prevSame[i] < 0 || (done[prevSame[i]] && complete[prevSame[i]] <= now)
			for _, ei := range g.Deps[i] {
				f := g.Edges[ei].From
				if !done[f] || complete[f] > now {
					ok = false
				}
			}
			if ok {
				ready = append(ready, i)
			}
		}
		if len(ready) == 0 {
			// Advance time to the next completion.
			var next time.Duration
			for i := 0; i < n; i++ {
				if done[i] && complete[i] > now && (next == 0 || complete[i] < next) {
					next = complete[i]
				}
			}
			now = next
			continue
		}
		i := ready[rng.Intn(len(ready))]
		issue[i] = now
		complete[i] = now + time.Duration(1+rng.Intn(5))
		issued[i], done[i] = true, true
		now++
		remaining--
	}
	return issue, complete
}

// TestReduceOrderEquivalence is the reduction invariant: the reduced
// graph admits exactly the same valid orders as the full graph. The
// easy direction (reduced edges are a subset, so full-valid implies
// reduced-valid) is checked structurally; the load-bearing direction is
// checked by scheduling each REDUCED graph randomly many times — with
// real cross-thread overlap — and validating every resulting order
// against the FULL graph. A dropped-but-needed edge would let some
// schedule reorder its endpoints and fail full validation.
func TestReduceOrderEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(40)
		nt := 2 + rng.Intn(4)
		an, g := randomCompleteGraph(rng, n, nt, 1+rng.Intn(3*n))
		gr := g.Reduce(an)

		// Structural subset: every kept edge exists in the full graph.
		full := map[[2]int]bool{}
		for _, e := range g.Edges {
			full[[2]int{e.From, e.To}] = true
		}
		for _, e := range gr.Edges {
			if !full[[2]int{e.From, e.To}] {
				t.Fatalf("trial %d: reduced edge %d->%d not in full graph", trial, e.From, e.To)
			}
		}
		if len(gr.Edges)+gr.ReducedEdges != len(g.Edges) {
			t.Fatalf("trial %d: edge accounting: %d kept + %d reduced != %d raw",
				trial, len(gr.Edges), gr.ReducedEdges, len(g.Edges))
		}

		for run := 0; run < 10; run++ {
			issue, complete := randomSchedule(rng, an, gr)
			if err := gr.ValidateOrder(issue, complete); err != nil {
				t.Fatalf("trial %d: schedule invalid against its own graph: %v", trial, err)
			}
			if err := g.ValidateOrder(issue, complete); err != nil {
				t.Fatalf("trial %d: reduced-valid order rejected by full graph: %v", trial, err)
			}
		}
	}
}

// TestReduceStageFanOut is the edge-count regression bound: the stage
// rule's create -> every-later-action fan-out must collapse to at most
// one edge per consuming thread.
func TestReduceStageFanOut(t *testing.T) {
	const threads, perThread = 4, 25
	tids := []int{0}
	var edges []Edge
	for th := 1; th <= threads; th++ {
		for k := 0; k < perThread; k++ {
			edges = append(edges, Edge{From: 0, To: len(tids), Kind: WaitComplete})
			tids = append(tids, th)
		}
	}
	an := fakeAnalysis(tids)
	g := newGraph(len(tids), edges)
	gr := g.Reduce(an)
	if len(gr.Edges) != threads {
		t.Fatalf("reduced fan-out kept %d edges, want %d (one per thread)", len(gr.Edges), threads)
	}
	if gr.ReducedEdges != threads*perThread-threads {
		t.Fatalf("ReducedEdges = %d, want %d", gr.ReducedEdges, threads*perThread-threads)
	}
}

// TestReduceChain: a -> b -> c chains imply a -> c, so the direct edge
// is dropped; the chain itself stays.
func TestReduceChain(t *testing.T) {
	an := fakeAnalysis([]int{0, 1, 2})
	g := newGraph(3, []Edge{
		{From: 0, To: 1, Kind: WaitComplete},
		{From: 1, To: 2, Kind: WaitComplete},
		{From: 0, To: 2, Kind: WaitComplete},
	})
	gr := g.Reduce(an)
	if len(gr.Edges) != 2 || gr.ReducedEdges != 1 {
		t.Fatalf("kept %d edges (reduced %d), want 2 (reduced 1)", len(gr.Edges), gr.ReducedEdges)
	}
	for _, e := range gr.Edges {
		if e.From == 0 && e.To == 2 {
			t.Fatal("transitive edge 0->2 survived reduction")
		}
	}
}

// TestReduceLeavesWaitIssueGraphsAlone: temporal graphs carry
// issue-strength edges, where chain implication is unsound; Reduce must
// return them unchanged.
func TestReduceLeavesWaitIssueGraphsAlone(t *testing.T) {
	an := fakeAnalysis([]int{0, 1, 2})
	g := newGraph(3, []Edge{
		{From: 0, To: 1, Kind: WaitIssue},
		{From: 1, To: 2, Kind: WaitIssue},
		{From: 0, To: 2, Kind: WaitIssue},
	})
	if gr := g.Reduce(an); gr != g {
		t.Fatal("Reduce modified a WaitIssue graph")
	}
}

// TestReduceFigure2EndToEnd reduces a real BuildGraph output and checks
// acyclicity plus the raw-count bookkeeping Fig. 8 reports.
func TestReduceFigure2EndToEnd(t *testing.T) {
	an := analyze(t, figure2Trace(), figure2Snapshot())
	g := BuildGraph(an, DefaultModes())
	gr := g.Reduce(an)
	if err := gr.CheckAcyclic(); err != nil {
		t.Fatal(err)
	}
	if len(gr.Edges) > len(g.Edges) {
		t.Fatalf("reduction grew the graph: %d -> %d", len(g.Edges), len(gr.Edges))
	}
	st := gr.Stats(an)
	if st.Edges+st.ReducedEdges != len(g.Edges) {
		t.Fatalf("stats raw count %d != BuildGraph count %d", st.Edges+st.ReducedEdges, len(g.Edges))
	}
}
