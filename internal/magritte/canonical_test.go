package magritte

// Satellite test for the canonical-name dedup: InferSnapshot's prescan,
// the analyzer, and the replayer all canonicalize traced call names
// through stack.Canonical. A hand-copied subset of the alias table used
// to live in internal/artc and had drifted; this test pins the single
// source of truth against the whole Magritte corpus.

import (
	"strings"
	"testing"

	"rootreplay/internal/artc"
	"rootreplay/internal/core"
	"rootreplay/internal/stack"
)

// TestCorpusCallNamesCanonicalize walks every call name the Magritte
// generator emits across the full corpus and asserts the properties the
// prescan and the analyzer rely on to agree with each other:
// canonicalization is a fixed point (aliases never chain, so two
// independent canonicalization passes land on the same name) and every
// canonical name is one the storage model can execute.
func TestCorpusCallNamesCanonicalize(t *testing.T) {
	names := map[string]bool{}
	for _, sp := range Specs {
		gen, err := Generate(sp, GenOptions{Scale: 0.002, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", sp.FullName(), err)
		}
		for _, r := range gen.Trace.Records {
			names[r.Call] = true
		}
	}
	if len(names) < 10 {
		t.Fatalf("corpus produced only %d distinct call names", len(names))
	}
	for name := range names {
		c := stack.Canonical(name)
		if again := stack.Canonical(c); again != c {
			t.Errorf("Canonical not a fixed point: %q -> %q -> %q", name, c, again)
		}
		if !stack.Supported(name) {
			t.Errorf("corpus call %q (canonical %q) not supported by the model", name, c)
		}
	}
}

// TestCorpusPrescanAnalyzerAgree compiles a corpus trace against the
// snapshot inferred by the prescan and asserts the analyzer raises no
// unknown-call or missing-state warnings: if the two canonicalization
// paths diverged, the inferred snapshot would miss state for the calls
// the analyzer actually sees.
func TestCorpusPrescanAnalyzerAgree(t *testing.T) {
	for _, full := range []string{"pages_docphoto15", "itunes_importsmall1"} {
		sp, ok := SpecByName(full)
		if !ok {
			t.Fatalf("spec %s missing", full)
		}
		gen, err := Generate(sp, GenOptions{Scale: 0.005, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		// nil snapshot routes Compile through InferSnapshot's prescan.
		b, err := artc.Compile(gen.Trace, nil, core.DefaultModes())
		if err != nil {
			t.Fatalf("%s: %v", full, err)
		}
		for _, w := range b.Analysis.Warnings {
			lw := strings.ToLower(w)
			if strings.Contains(lw, "unknown") || strings.Contains(lw, "unsupported") {
				t.Errorf("%s: analyzer disagrees with prescan: %s", full, w)
			}
		}
	}
}
