package magritte_test

import (
	"encoding/json"
	"testing"

	"rootreplay/internal/artc"
	"rootreplay/internal/core"
	"rootreplay/internal/magritte"
	"rootreplay/internal/sim"
	"rootreplay/internal/stack"
)

// The Magritte traces are the paper's workload corpus and — every one
// of them funnels through shared directories — the partitioner keeps
// each whole (one component). ReplaySharded must therefore reproduce
// Replay byte for byte on every spec, at every shard count.
func TestShardedMagritteMatchesSerial(t *testing.T) {
	opts := magritte.DefaultSuiteOptions()
	specs := magritte.Specs
	if testing.Short() {
		specs = specs[:6]
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.FullName(), func(t *testing.T) {
			gen, err := magritte.Generate(spec, opts.Gen)
			if err != nil {
				t.Fatal(err)
			}
			b, err := artc.Compile(gen.Trace, gen.Snapshot, core.DefaultModes())
			if err != nil {
				t.Fatal(err)
			}

			k := sim.NewKernel()
			sys := stack.New(k, opts.Target)
			if err := magritte.InitTarget(sys, b, opts.DevRandomSymlink); err != nil {
				t.Fatal(err)
			}
			serial, err := artc.Replay(sys, b, artc.Options{Speed: artc.AFAP, SelfCheck: true})
			if err != nil {
				t.Fatal(err)
			}
			want := marshal(t, serial)

			for _, shards := range []int{1, 2, 4, 8} {
				rep, st, err := artc.ReplaySharded(b,
					artc.Options{Speed: artc.AFAP, SelfCheck: true},
					artc.ShardOptions{
						Shards: shards,
						Target: opts.Target,
						Init: func(sys *stack.System) error {
							return magritte.InitTarget(sys, b, opts.DevRandomSymlink)
						},
					})
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if st.Components != 1 {
					t.Fatalf("shards=%d: %s split into %d components", shards, spec.FullName(), st.Components)
				}
				if got := marshal(t, rep); got != want {
					t.Fatalf("shards=%d: sharded report differs from serial", shards)
				}
			}
		})
	}
}

func marshal(t *testing.T, rep *artc.Report) string {
	t.Helper()
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}
