package magritte_test

import (
	"encoding/json"
	"testing"

	"rootreplay/internal/artc"
	"rootreplay/internal/core"
	"rootreplay/internal/magritte"
	"rootreplay/internal/sim"
	"rootreplay/internal/stack"
)

// The Magritte traces are the paper's workload corpus and — every one
// of them funnels through shared directories — the partitioner keeps
// each whole (one component). ReplaySharded must therefore reproduce
// Replay byte for byte on every spec, at every shard count.
func TestShardedMagritteMatchesSerial(t *testing.T) {
	opts := magritte.DefaultSuiteOptions()
	specs := magritte.Specs
	if testing.Short() {
		specs = specs[:6]
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.FullName(), func(t *testing.T) {
			gen, err := magritte.Generate(spec, opts.Gen)
			if err != nil {
				t.Fatal(err)
			}
			b, err := artc.Compile(gen.Trace, gen.Snapshot, core.DefaultModes())
			if err != nil {
				t.Fatal(err)
			}

			k := sim.NewKernel()
			sys := stack.New(k, opts.Target)
			if err := magritte.InitTarget(sys, b, opts.DevRandomSymlink); err != nil {
				t.Fatal(err)
			}
			serial, err := artc.Replay(sys, b, artc.Options{Speed: artc.AFAP, SelfCheck: true})
			if err != nil {
				t.Fatal(err)
			}
			want := marshal(t, serial)

			for _, shards := range []int{1, 2, 4, 8} {
				rep, st, err := artc.ReplaySharded(b,
					artc.Options{Speed: artc.AFAP, SelfCheck: true},
					artc.ShardOptions{
						Shards: shards,
						Target: opts.Target,
						Init: func(sys *stack.System) error {
							return magritte.InitTarget(sys, b, opts.DevRandomSymlink)
						},
					})
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if st.Components != 1 {
					t.Fatalf("shards=%d: %s split into %d components", shards, spec.FullName(), st.Components)
				}
				if got := marshal(t, rep); got != want {
					t.Fatalf("shards=%d: sharded report differs from serial", shards)
				}
			}
		})
	}
}

// Slicing enabled must preserve the same contract: byte-identical to
// serial artc.Replay on every spec, at every shard count. The corpus
// traces funnel through shared directories, so most specs are a single
// resource atom the slicer refuses to cut; for the specs that do cut,
// both sides replay with warmed caches (stack.System.WarmAll) — the
// device-independence precondition slicing's byte-identity is defined
// under, since each slice replica owns a private device whose queue
// would otherwise time cold misses differently than the serial run's
// single shared device.
func TestSlicedMagritteMatchesSerial(t *testing.T) {
	opts := magritte.DefaultSuiteOptions()
	specs := magritte.Specs
	if testing.Short() {
		specs = specs[:6]
	}
	sliced := 0
	for _, spec := range specs {
		spec := spec
		t.Run(spec.FullName(), func(t *testing.T) {
			gen, err := magritte.Generate(spec, opts.Gen)
			if err != nil {
				t.Fatal(err)
			}
			b, err := artc.Compile(gen.Trace, gen.Snapshot, core.DefaultModes())
			if err != nil {
				t.Fatal(err)
			}

			k := sim.NewKernel()
			sys := stack.New(k, opts.Target)
			if err := magritte.InitTarget(sys, b, opts.DevRandomSymlink); err != nil {
				t.Fatal(err)
			}
			sys.WarmAll()
			serial, err := artc.Replay(sys, b, artc.Options{Speed: artc.AFAP, SelfCheck: true})
			if err != nil {
				t.Fatal(err)
			}
			want := marshal(t, serial)

			for _, shards := range []int{1, 4, 8} {
				rep, st, err := artc.ReplaySharded(b,
					artc.Options{Speed: artc.AFAP, SelfCheck: true},
					artc.ShardOptions{
						Shards: shards,
						Target: opts.Target,
						Init: func(sys *stack.System) error {
							if err := magritte.InitTarget(sys, b, opts.DevRandomSymlink); err != nil {
								return err
							}
							sys.WarmAll()
							return nil
						},
						SliceActions: len(b.Trace.Records)/8 + 1,
					})
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				sliced += st.Sliced
				if got := marshal(t, rep); got != want {
					t.Fatalf("shards=%d: sliced report differs from serial (slices=%d)", shards, st.Components)
				}
			}
		})
	}
	t.Logf("specs where slicing cut the component: %d", sliced)
}

func marshal(t *testing.T, rep *artc.Report) string {
	t.Helper()
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}
