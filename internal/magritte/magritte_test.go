package magritte

import (
	"testing"
	"time"

	"rootreplay/internal/artc"
	"rootreplay/internal/core"
	"rootreplay/internal/sim"
	"rootreplay/internal/stack"
)

func TestSpecsCount(t *testing.T) {
	if len(Specs) != 34 {
		t.Fatalf("Magritte has %d traces, want 34", len(Specs))
	}
	apps := map[string]int{}
	for _, s := range Specs {
		apps[s.App]++
	}
	want := map[string]int{"iphoto": 6, "itunes": 5, "imovie": 4, "pages": 8, "numbers": 4, "keynote": 7}
	for app, n := range want {
		if apps[app] != n {
			t.Errorf("%s has %d traces, want %d", app, apps[app], n)
		}
	}
	if _, ok := SpecByName("iphoto_edit400"); !ok {
		t.Error("SpecByName failed")
	}
	if _, ok := SpecByName("nope_zzz"); ok {
		t.Error("bogus name found")
	}
}

func TestGenerateProducesOSXTrace(t *testing.T) {
	spec, _ := SpecByName("itunes_startsmall1")
	gen, err := Generate(spec, GenOptions{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Trace.Platform != "osx" {
		t.Fatalf("platform = %s", gen.Trace.Platform)
	}
	if len(gen.Trace.Records) < 200 {
		t.Fatalf("only %d records", len(gen.Trace.Records))
	}
	// Must contain OS X-specific calls needing emulation on Linux.
	hasAttrList := false
	hasDevRandom := false
	for _, r := range gen.Trace.Records {
		if r.Call == "getattrlist" {
			hasAttrList = true
		}
		if r.Path == "/dev/random" {
			hasDevRandom = true
		}
	}
	if !hasAttrList {
		t.Error("no getattrlist calls in OS X trace")
	}
	if !hasDevRandom {
		t.Error("itunes startup should read /dev/random")
	}
	// Multithreaded.
	if len(gen.Trace.Threads()) < 3 {
		t.Errorf("only %d threads", len(gen.Trace.Threads()))
	}
	// Snapshot stripped of xattrs by default (iBench fidelity).
	for _, e := range gen.Snapshot.Entries {
		if len(e.Xattrs) > 0 {
			t.Fatal("snapshot retains xattr init info")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := SpecByName("numbers_start5")
	g1, err := Generate(spec, GenOptions{Scale: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(spec, GenOptions{Scale: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(g1.Trace.Records) != len(g2.Trace.Records) {
		t.Fatalf("lengths differ: %d vs %d", len(g1.Trace.Records), len(g2.Trace.Records))
	}
	for i := range g1.Trace.Records {
		a, b := g1.Trace.Records[i], g2.Trace.Records[i]
		if a.Call != b.Call || a.Path != b.Path || a.TID != b.TID || a.Ret != b.Ret {
			t.Fatalf("record %d differs: %+v vs %+v", i, a, b)
		}
	}
}

// The Table 3 shape on a handoff-heavy trace: unconstrained replay has
// orders of magnitude more semantic errors than ARTC, and ARTC's
// residual errors are exactly the missing-xattr accesses.
func TestTable3ShapeHandoffHeavy(t *testing.T) {
	spec, _ := SpecByName("iphoto_import400")
	res, err := RunOne(spec, DefaultSuiteOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.UCErrors == 0 {
		t.Error("unconstrained replay produced no errors on a handoff-heavy trace")
	}
	if res.ARTCErrors > spec.XattrMissing {
		t.Errorf("ARTC errors = %d, want <= %d (missing xattr inits)", res.ARTCErrors, spec.XattrMissing)
	}
	if res.UCErrors < 10*max(res.ARTCErrors, 1) {
		t.Errorf("UC (%d) not far worse than ARTC (%d)", res.UCErrors, res.ARTCErrors)
	}
}

// Traces without cross-thread sharing replay cleanly even unconstrained
// (the keynote_start20 row of Table 3).
func TestTable3ShapeIndependentThreads(t *testing.T) {
	spec, _ := SpecByName("keynote_start20")
	res, err := RunOne(spec, DefaultSuiteOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.ARTCErrors != 0 {
		t.Errorf("ARTC errors = %d on a no-missing-xattr trace", res.ARTCErrors)
	}
	// Not necessarily zero (shared caches dir), but small.
	if res.UCErrors > res.Events/100 {
		t.Errorf("UC errors = %d of %d events; expected near-clean", res.UCErrors, res.Events)
	}
}

func TestKeepXattrInitRemovesARTCErrors(t *testing.T) {
	spec, _ := SpecByName("pages_start15") // XattrMissing = 4
	opts := DefaultSuiteOptions()
	opts.Gen.KeepXattrInit = true
	res, err := RunOne(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.ARTCErrors != 0 {
		t.Errorf("with full xattr init, ARTC errors = %d, want 0", res.ARTCErrors)
	}
	opts.Gen.KeepXattrInit = false
	res2, err := RunOne(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.ARTCErrors == 0 {
		t.Error("without xattr init, expected residual ARTC errors")
	}
}

// The /dev/random fix: without the symlink, a Linux replay of an
// /dev/random-reading trace takes pathologically long.
func TestDevRandomSymlinkFix(t *testing.T) {
	spec, _ := SpecByName("itunes_startsmall1")
	gen, err := Generate(spec, GenOptions{Scale: 0.02, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := artc.Compile(gen.Trace, gen.Snapshot, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	elapsed := func(symlink bool) time.Duration {
		k := sim.NewKernel()
		sys := stack.New(k, DefaultSuiteOptions().Target)
		if err := InitTarget(sys, b, symlink); err != nil {
			t.Fatal(err)
		}
		rep, err := artc.Replay(sys, b, artc.Options{Method: artc.MethodARTC})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Elapsed
	}
	fixed := elapsed(true)
	broken := elapsed(false)
	if broken < 10*fixed {
		t.Fatalf("blocking /dev/random (%v) should be far slower than symlink fix (%v)", broken, fixed)
	}
}

// Figure 10 shape: SSD replays are several times faster than HDD, and on
// HDD the fsync category is a much larger share for iPhoto-family
// workloads than for Numbers-family ones.
func TestFig10Shape(t *testing.T) {
	run := func(name string, dev stack.DeviceKind) (map[string]time.Duration, time.Duration) {
		spec, ok := SpecByName(name)
		if !ok {
			t.Fatal("unknown spec")
		}
		gen, err := Generate(spec, GenOptions{Scale: 0.02, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		b, err := artc.Compile(gen.Trace, gen.Snapshot, core.DefaultModes())
		if err != nil {
			t.Fatal(err)
		}
		target := stack.Config{
			Name: "linux-" + string(dev), Platform: stack.Linux, Profile: stack.Ext4,
			Device: dev, Scheduler: stack.SchedCFQ,
		}
		byCat, total, err := ThreadTimeRun(b, target, true)
		if err != nil {
			t.Fatal(err)
		}
		return byCat, total
	}
	iphotoHDD, iphotoHDDTotal := run("iphoto_start400", stack.DeviceHDD)
	_, iphotoSSDTotal := run("iphoto_start400", stack.DeviceSSD)
	numbersHDD, numbersHDDTotal := run("numbers_start5", stack.DeviceHDD)

	if iphotoSSDTotal*2 > iphotoHDDTotal {
		t.Errorf("SSD thread-time (%v) should be well under HDD (%v)", iphotoSSDTotal, iphotoHDDTotal)
	}
	iphotoFsyncShare := float64(iphotoHDD["fsync"]) / float64(iphotoHDDTotal)
	numbersFsyncShare := float64(numbersHDD["fsync"]) / float64(numbersHDDTotal)
	if iphotoFsyncShare < 2*numbersFsyncShare {
		t.Errorf("iphoto fsync share %.2f not much larger than numbers %.2f", iphotoFsyncShare, numbersFsyncShare)
	}
	numbersReadStat := float64(numbersHDD["read"]+numbersHDD["stat"]) / float64(numbersHDDTotal)
	if numbersReadStat < 0.5 {
		t.Errorf("numbers read+stat share = %.2f, want dominant", numbersReadStat)
	}
}

func TestCategorize(t *testing.T) {
	cases := map[string]string{
		"pread64":     "read",
		"pwrite":      "write",
		"fsync":       "fsync",
		"getattrlist": "stat",
		"open":        "open/close",
		"rename":      "other",
	}
	for call, want := range cases {
		if got := categorize(call); got != want {
			t.Errorf("categorize(%s) = %s, want %s", call, got, want)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestIMovieTracesUseAIO(t *testing.T) {
	spec, _ := SpecByName("imovie_export1")
	gen, err := Generate(spec, GenOptions{Scale: 0.05, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, r := range gen.Trace.Records {
		counts[r.Call]++
	}
	for _, call := range []string{"aio_read", "aio_suspend", "aio_return"} {
		if counts[call] == 0 {
			t.Errorf("no %s calls in imovie_export1", call)
		}
	}
	// And the trace must still compile + replay cleanly with ARTC.
	res, err := RunOne(spec, DefaultSuiteOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.ARTCErrors > spec.XattrMissing {
		t.Errorf("ARTC errors = %d, want <= %d", res.ARTCErrors, spec.XattrMissing)
	}
}

// The full 34-trace suite (Table 3 end to end) at a small scale.
func TestFullMagritteSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite")
	}
	opts := DefaultSuiteOptions()
	opts.Gen.Scale = 0.004
	results, err := RunSuite(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 34 {
		t.Fatalf("results = %d", len(results))
	}
	totalUC, totalARTC := 0, 0
	for _, r := range results {
		totalUC += r.UCErrors
		totalARTC += r.ARTCErrors
		spec, _ := SpecByName(r.Name)
		if r.ARTCErrors > spec.XattrMissing+2 {
			t.Errorf("%s: ARTC errors %d exceed xattr-miss budget %d", r.Name, r.ARTCErrors, spec.XattrMissing)
		}
	}
	if totalUC < 5*totalARTC {
		t.Errorf("suite UC errors (%d) not far above ARTC (%d)", totalUC, totalARTC)
	}
}
