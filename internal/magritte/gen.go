package magritte

import (
	"fmt"
	"math/rand"
	"time"

	"rootreplay/internal/sim"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
)

// GenOptions control trace generation.
type GenOptions struct {
	// Scale multiplies the spec's full event count; 0.01 generates a
	// 1%-size trace with the same structure. Zero means 0.01.
	Scale float64
	// Seed makes generation deterministic per trace.
	Seed int64
	// KeepXattrInit retains extended-attribute state in the snapshot.
	// The default (false) reproduces the iBench traces' missing xattr
	// initialization, the source of ARTC's residual Table 3 errors.
	KeepXattrInit bool
}

// Generated bundles one synthesized Magritte trace.
type Generated struct {
	Spec     Spec
	Trace    *trace.Trace
	Snapshot *snapshot.Snapshot
}

// appPaths are the file-tree locations an application program uses.
type appPaths struct {
	root   string
	db     string
	plists []string
	media  []string
	caches string
}

// Generate synthesizes one trace by running the spec's application
// program on a simulated OS X machine with tracing enabled.
func Generate(spec Spec, opts GenOptions) (*Generated, error) {
	if opts.Scale <= 0 {
		opts.Scale = 0.01
	}
	target := int(float64(spec.Events) * opts.Scale)
	if target < 200 {
		target = 200
	}
	k := sim.NewKernel()
	conf := stack.Config{
		Name:     "osx-source",
		Platform: stack.OSX,
		Profile:  stack.HFSPlus,
		Device:   stack.DeviceHDD,
		// Tracing runs are about capturing structure, not timing; noop
		// keeps generation fast.
		Scheduler: stack.SchedNoop,
	}
	sys := stack.New(k, conf)

	paths, err := setupTree(sys, spec, target)
	if err != nil {
		return nil, err
	}
	snap := snapshot.Capture(sys)
	if !opts.KeepXattrInit {
		for i := range snap.Entries {
			snap.Entries[i].Xattrs = nil
		}
	}

	tr := &trace.Trace{Platform: string(stack.OSX)}
	count := 0
	sys.SetTracer(func(r *trace.Record) {
		tr.Records = append(tr.Records, r)
		count++
	})
	runProgram(sys, spec, paths, target, &count, opts.Seed)
	if err := k.Run(); err != nil {
		return nil, fmt.Errorf("magritte %s: %w", spec.FullName(), err)
	}
	tr.Renumber()
	return &Generated{Spec: spec, Trace: tr, Snapshot: snap}, nil
}

// setupTree builds the application's initial library.
func setupTree(sys *stack.System, spec Spec, target int) (*appPaths, error) {
	p := &appPaths{root: "/Users/bench/Library/" + spec.App}
	p.db = p.root + "/Database/library.db"
	p.caches = p.root + "/Caches"
	nMedia := target / 40
	if nMedia < 8 {
		nMedia = 8
	}
	nPlists := target / 80
	if nPlists < 6 {
		nPlists = 6
	}
	if err := sys.SetupCreate(p.db, 4<<20); err != nil {
		return nil, err
	}
	if err := sys.SetupMkdirAll(p.caches); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(int64(len(spec.App) + target)))
	for i := 0; i < nMedia; i++ {
		path := fmt.Sprintf("%s/Media/item%04d.dat", p.root, i)
		size := int64(64<<10 + rng.Intn(2<<20))
		if err := sys.SetupCreate(path, size); err != nil {
			return nil, err
		}
		if err := sys.SetupXattr(path, "com.apple.FinderInfo", 32); err != nil {
			return nil, err
		}
		p.media = append(p.media, path)
	}
	for i := 0; i < nPlists; i++ {
		path := fmt.Sprintf("%s/Preferences/pref%03d.plist", p.root, i)
		if err := sys.SetupCreate(path, int64(512+rng.Intn(8192))); err != nil {
			return nil, err
		}
		p.plists = append(p.plists, path)
	}
	if err := sys.SetupSpecial("/dev/urandom", stack.SpecialURandom); err != nil {
		return nil, err
	}
	// On the OS X source, /dev/random is non-blocking.
	if err := sys.SetupSpecial("/dev/random", stack.SpecialURandom); err != nil {
		return nil, err
	}
	return p, nil
}

// handoffItem carries an open descriptor between threads.
type handoffItem struct {
	fd   int64
	size int64
}

// runProgram spawns the application's threads. They stop once the traced
// event counter passes target.
func runProgram(sys *stack.System, spec Spec, p *appPaths, target int, count *int, seed int64) {
	k := sys.K

	var dbFD int64 = -1
	dbReady := sim.NewCond(k)
	totalW := spec.WRead + spec.WWrite + spec.WFsync + spec.WStat + spec.WOpenClose +
		spec.WXattr + spec.WAttrList + spec.WCreate + spec.WRename + spec.WDelete

	var readQ, closeQ *sim.Chan[handoffItem]
	if spec.HandoffPct > 0 {
		readQ = sim.NewChan[handoffItem](k, 8)
		closeQ = sim.NewChan[handoffItem](k, 8)
	}

	// Coordinator: startup phase, then periodic library-DB commits.
	k.Spawn(spec.FullName()+"-main", func(t *sim.Thread) {
		rng := rand.New(rand.NewSource(seed))
		if spec.DevRandom {
			fd, err := sys.Open(t, "/dev/random", trace.ORdonly, 0)
			if err == 0 {
				sys.Read(t, fd, 64)
				sys.Close(t, fd)
			}
		}
		// Startup: read preference plists, stat support dirs.
		for _, pl := range p.plists {
			fd, err := sys.Open(t, pl, trace.ORdonly, 0)
			if err != 0 {
				continue
			}
			sys.Fstat(t, fd)
			sys.Read(t, fd, 4096)
			sys.Close(t, fd)
			sys.Getattrlist(t, pl, "common")
			if *count >= target {
				break
			}
		}
		// A few probes for files that do not exist (config discovery).
		for i := 0; i < 5; i++ {
			sys.Stat(t, fmt.Sprintf("%s/Preferences/missing%d.plist", p.root, i))
		}
		// Reads of pre-existing extended attributes: these exist during
		// tracing but (with iBench-style snapshots) not at replay init.
		for i := 0; i < spec.XattrMissing && i < len(p.media); i++ {
			sys.Getxattr(t, p.media[i], "com.apple.FinderInfo", true)
		}
		dbFD, _ = sys.Open(t, p.db, trace.ORdwr, 0)
		dbReady.Broadcast()
		// Library-DB commit loop: commit frequency follows the app's
		// write/fsync character, so read-dominated apps (Numbers,
		// Keynote) rarely touch the database.
		for *count < target {
			if rng.Intn(totalW) < spec.WWrite {
				sys.Pwrite(t, dbFD, int64(4096+rng.Intn(16384)), int64(rng.Intn(900))*4096)
			}
			if rng.Intn(totalW) < spec.WFsync {
				sys.Fsync(t, dbFD)
			}
			sys.Lstat(t, p.plists[rng.Intn(len(p.plists))])
			t.Sleep(500 * time.Microsecond)
		}
	})

	if spec.HandoffPct > 0 {
		// Consumer: reads from descriptors opened by workers.
		k.Spawn(spec.FullName()+"-consumer", func(t *sim.Thread) {
			for {
				item, ok := readQ.Recv(t)
				if !ok {
					closeQ.Close()
					return
				}
				n := item.size
				if n > 64<<10 {
					n = 64 << 10
				}
				sys.Pread(t, item.fd, n, 0)
				sys.Pread(t, item.fd, n, item.size/2)
				closeQ.Send(t, item)
			}
		})
		// Closer: third thread closes handed-off descriptors.
		k.Spawn(spec.FullName()+"-closer", func(t *sim.Thread) {
			for {
				item, ok := closeQ.Recv(t)
				if !ok {
					return
				}
				sys.Close(t, item.fd)
			}
		})
	}

	workersDone := sim.NewWaitGroup(k)
	workersDone.Add(spec.Workers)
	if spec.HandoffPct > 0 {
		// Close the handoff pipeline only after every producer is done,
		// so no worker can send on a closed channel.
		k.Spawn(spec.FullName()+"-finalizer", func(t *sim.Thread) {
			workersDone.Wait(t)
			readQ.Close()
		})
	}
	for w := 0; w < spec.Workers; w++ {
		w := w
		rng := rand.New(rand.NewSource(seed + int64(w)*104729 + 7))
		k.Spawn(fmt.Sprintf("%s-w%d", spec.FullName(), w), func(t *sim.Thread) {
			defer workersDone.Done()
			for dbFD == -1 {
				dbReady.Wait(t, "db open")
			}
			created := []string{}
			saveSeq := 0
			// Interactive applications re-read hot documents: a little
			// over half of media accesses revisit the previous one, so a
			// realistic fraction of I/O is cache-warm (this keeps the
			// HDD/SSD thread-time ratio in the paper's 5-20x band).
			lastMedia := ""
			lastOff := int64(0)
			for *count < target {
				r := rng.Intn(totalW)
				switch {
				case r < spec.WRead:
					m := p.media[rng.Intn(len(p.media))]
					revisit := lastMedia != "" && rng.Intn(100) < 55
					if revisit {
						m = lastMedia
					}
					fd, err := sys.Open(t, m, trace.ORdonly, 0)
					if err != 0 {
						break
					}
					if spec.HandoffPct > 0 && rng.Intn(100) < spec.HandoffPct {
						ino, _ := sys.FS.Resolve(nil, m)
						size := int64(64 << 10)
						if ino != nil {
							size = ino.Size
						}
						readQ.Send(t, handoffItem{fd: fd, size: size})
						break // consumer/closer finish with it
					}
					// Media access: a random-offset read (thumbnail or
					// metadata chunk) plus a short streaming run; a
					// revisit re-reads the warm offset.
					off := lastOff
					if !revisit {
						ino, _ := sys.FS.Resolve(nil, m)
						span := int64(1)
						if ino != nil && ino.Size > 65536 {
							span = ino.Size / 65536
						}
						off = rng.Int63n(span) * 65536
					}
					if spec.UseAIO && rng.Intn(3) == 0 {
						// Streaming path: overlap two async reads, poll
						// one, wait for the other, reap both.
						id1, e1 := sys.AioRead(t, fd, 64<<10, off)
						id2, e2 := sys.AioRead(t, fd, 64<<10, off+64<<10)
						if e1 == 0 {
							sys.AioError(t, id1)
							sys.AioSuspend(t, id1)
							sys.AioReturn(t, id1)
						}
						if e2 == 0 {
							sys.AioSuspend(t, id2)
							sys.AioReturn(t, id2)
						}
					} else {
						sys.Pread(t, fd, 64<<10, off)
						sys.Pread(t, fd, 64<<10, off+64<<10)
					}
					sys.Close(t, fd)
					lastMedia, lastOff = m, off
				case r < spec.WRead+spec.WWrite:
					path := fmt.Sprintf("%s/cache-%d-%d.dat", p.caches, w, rng.Intn(16))
					fd, err := sys.Open(t, path, trace.OWronly|trace.OCreat|trace.OAppend, 0o644)
					if err != 0 {
						break
					}
					sys.Write(t, fd, int64(4096+rng.Intn(32768)))
					sys.Close(t, fd)
				case r < spec.WRead+spec.WWrite+spec.WFsync:
					sys.Pwrite(t, dbFD, 4096, int64(rng.Intn(900))*4096)
					sys.Fsync(t, dbFD)
				case r < spec.WRead+spec.WWrite+spec.WFsync+spec.WStat:
					sys.Stat(t, p.media[rng.Intn(len(p.media))])
					sys.Lstat(t, p.plists[rng.Intn(len(p.plists))])
				case r < spec.WRead+spec.WWrite+spec.WFsync+spec.WStat+spec.WOpenClose:
					pl := p.plists[rng.Intn(len(p.plists))]
					fd, err := sys.Open(t, pl, trace.ORdonly, 0)
					if err == 0 {
						sys.Fstat(t, fd)
						sys.Close(t, fd)
					}
				case r < spec.WRead+spec.WWrite+spec.WFsync+spec.WStat+spec.WOpenClose+spec.WXattr:
					// Attributes created by the program itself: replay-safe.
					path := fmt.Sprintf("%s/cache-%d-attr.dat", p.caches, w)
					if fd, err := sys.Open(t, path, trace.OWronly|trace.OCreat, 0o644); err == 0 {
						sys.Close(t, fd)
					}
					sys.Setxattr(t, path, "com.apple.progress", 16, true)
					sys.Getxattr(t, path, "com.apple.progress", true)
				case r < spec.WRead+spec.WWrite+spec.WFsync+spec.WStat+spec.WOpenClose+spec.WXattr+spec.WAttrList:
					sys.Getattrlist(t, p.media[rng.Intn(len(p.media))], "common")
				case r < spec.WRead+spec.WWrite+spec.WFsync+spec.WStat+spec.WOpenClose+spec.WXattr+spec.WAttrList+spec.WCreate:
					path := fmt.Sprintf("%s/thumb-%d-%04d.png", p.caches, w, len(created))
					fd, err := sys.Open(t, path, trace.OWronly|trace.OCreat|trace.OExcl, 0o644)
					if err == 0 {
						sys.Write(t, fd, int64(2048+rng.Intn(16384)))
						sys.Close(t, fd)
						created = append(created, path)
					}
				case r < spec.WRead+spec.WWrite+spec.WFsync+spec.WStat+spec.WOpenClose+spec.WXattr+spec.WAttrList+spec.WCreate+spec.WRename:
					// Atomic-save pattern: write temp, rename over the
					// document. The document name is reused across saves,
					// exercising path name ordering across generations.
					tmp := fmt.Sprintf("%s/doc-%d.tmp", p.caches, w)
					final := fmt.Sprintf("%s/Document-%d", p.root, w)
					fd, err := sys.Open(t, tmp, trace.OWronly|trace.OCreat|trace.OTrunc, 0o644)
					if err == 0 {
						sys.Write(t, fd, 32768)
						sys.Fsync(t, fd)
						sys.Close(t, fd)
						sys.Rename(t, tmp, final)
						saveSeq++
					}
				default:
					if len(created) > 0 {
						victim := created[len(created)-1]
						created = created[:len(created)-1]
						sys.Unlink(t, victim)
					} else {
						sys.Stat(t, p.caches)
					}
				}
			}
		})
	}
}
