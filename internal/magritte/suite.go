package magritte

import (
	"fmt"
	"sort"
	"time"

	"rootreplay/internal/artc"
	"rootreplay/internal/core"
	"rootreplay/internal/par"
	"rootreplay/internal/sim"
	"rootreplay/internal/stack"
	"rootreplay/internal/vfs"
)

// SuiteOptions configure a suite run.
type SuiteOptions struct {
	Gen GenOptions
	// Target is the replay machine; zero value means the paper's §5.1
	// setup (Linux/ext4/SSD, warm cache, AFAP).
	Target stack.Config
	// DevRandomSymlink applies the paper's fix of creating /dev/random
	// as a symlink to /dev/urandom on Linux targets (on by default via
	// DefaultSuiteOptions).
	DevRandomSymlink bool
}

// DefaultSuiteOptions mirrors the paper's semantic-correctness setup.
func DefaultSuiteOptions() SuiteOptions {
	return SuiteOptions{
		Gen: GenOptions{Scale: 0.01},
		Target: stack.Config{
			Name:      "linux-ext4-ssd",
			Platform:  stack.Linux,
			Profile:   stack.Ext4,
			Device:    stack.DeviceSSD,
			Scheduler: stack.SchedNoop,
		},
		DevRandomSymlink: true,
	}
}

// InitTarget initializes a target system for a Magritte benchmark,
// applying platform-specific special-file handling: on Linux,
// /dev/random blocks, so it is either recreated as the blocking device
// or (with the symlink fix) pointed at /dev/urandom (§5.1).
func InitTarget(sys *stack.System, b *artc.Benchmark, devRandomSymlink bool) error {
	if err := artc.Init(sys, b, ""); err != nil {
		return err
	}
	if sys.Conf.Platform != stack.Linux {
		return nil
	}
	if _, err := sys.FS.ResolveNoFollow(nil, "/dev/random"); err != vfs.OK {
		return nil
	}
	if err := sys.FS.Unlink(nil, "/dev/random"); err != vfs.OK {
		return fmt.Errorf("magritte: resetting /dev/random: %w", err)
	}
	if devRandomSymlink {
		return sys.SetupSymlink("/dev/urandom", "/dev/random")
	}
	return sys.SetupSpecial("/dev/random", stack.SpecialRandomBlocking)
}

// Result is one trace's suite outcome (a Table 3 row).
type Result struct {
	Name        string
	Events      int
	UCErrors    int // unconstrained replay failures
	ARTCErrors  int // ARTC replay failures
	ARTCElapsed time.Duration
	// ThreadTimeByCat is the ARTC replay's thread-time split into the
	// categories of Figure 10.
	ThreadTimeByCat map[string]time.Duration
}

// Categories for the Figure 10 thread-time breakdown.
var Categories = []string{"read", "write", "fsync", "stat", "open/close", "other"}

// categorize maps a call name to a Figure 10 category.
func categorize(call string) string {
	switch stack.Canonical(call) {
	case "read", "pread", "mmap", "getdents", "getdirentriesattr":
		return "read"
	case "write", "pwrite":
		return "write"
	case "fsync", "fdatasync", "sync", "msync":
		return "fsync"
	case "stat", "lstat", "fstat", "access", "getattrlist", "setattrlist",
		"statfs", "fstatfs", "getxattr", "lgetxattr", "listxattr", "llistxattr",
		"setxattr", "lsetxattr", "removexattr", "lremovexattr",
		"fgetxattr", "fsetxattr", "flistxattr", "fremovexattr",
		"fsctl", "searchfs", "vfsconf", "readlink":
		return "stat"
	case "open", "creat", "close", "dup", "dup2":
		return "open/close"
	default:
		return "other"
	}
}

// RunOne generates one trace, compiles it, and replays it with the
// unconstrained and ARTC methods on the target, producing a Table 3 row.
func RunOne(spec Spec, opts SuiteOptions) (*Result, error) {
	gen, err := Generate(spec, opts.Gen)
	if err != nil {
		return nil, err
	}
	b, err := artc.Compile(gen.Trace, gen.Snapshot, core.DefaultModes())
	if err != nil {
		return nil, err
	}
	res := &Result{Name: spec.FullName(), Events: len(gen.Trace.Records)}

	replay := func(method artc.Method) (*artc.Report, error) {
		k := sim.NewKernel()
		sys := stack.New(k, opts.Target)
		if err := InitTarget(sys, b, opts.DevRandomSymlink); err != nil {
			return nil, err
		}
		return artc.Replay(sys, b, artc.Options{Method: method, Speed: artc.AFAP})
	}

	uc, err := replay(artc.MethodUnconstrained)
	if err != nil {
		return nil, fmt.Errorf("%s unconstrained: %w", spec.FullName(), err)
	}
	res.UCErrors = uc.Errors

	ar, err := replay(artc.MethodARTC)
	if err != nil {
		return nil, fmt.Errorf("%s artc: %w", spec.FullName(), err)
	}
	res.ARTCErrors = ar.Errors
	res.ARTCElapsed = ar.Elapsed
	res.ThreadTimeByCat = make(map[string]time.Duration)
	for call, d := range ar.CallTime {
		res.ThreadTimeByCat[categorize(call)] += d
	}
	return res, nil
}

// RunSuite runs every Magritte trace, returning results in Specs order.
// Each trace is generated, compiled, and replayed in its own simulation,
// so the suite fans out across cores; per-spec seeds keep every trace —
// and therefore every result — identical to a serial run.
func RunSuite(opts SuiteOptions) ([]*Result, error) {
	out := make([]*Result, len(Specs))
	err := par.ForEach(len(Specs), func(i int) error {
		o := opts
		o.Gen.Seed = opts.Gen.Seed + int64(i)*1000003
		r, err := RunOne(Specs[i], o)
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ThreadTimeRun replays one compiled benchmark with ARTC on the given
// target and returns the thread-time breakdown (for Figure 10's HDD vs
// SSD comparison).
func ThreadTimeRun(b *artc.Benchmark, target stack.Config, devRandomSymlink bool) (map[string]time.Duration, time.Duration, error) {
	k := sim.NewKernel()
	sys := stack.New(k, target)
	if err := InitTarget(sys, b, devRandomSymlink); err != nil {
		return nil, 0, err
	}
	rep, err := artc.Replay(sys, b, artc.Options{Method: artc.MethodARTC, Speed: artc.AFAP})
	if err != nil {
		return nil, 0, err
	}
	byCat := make(map[string]time.Duration)
	var total time.Duration
	for call, d := range rep.CallTime {
		byCat[categorize(call)] += d
		total += d
	}
	return byCat, total, nil
}

// FormatTable3 renders results like the paper's Table 3.
func FormatTable3(results []*Result) string {
	out := fmt.Sprintf("%-24s %10s %8s %8s\n", "Trace", "UC", "ARTC", "Events")
	for _, r := range results {
		out += fmt.Sprintf("%-24s %10d %8d %8d\n", r.Name, r.UCErrors, r.ARTCErrors, r.Events)
	}
	return out
}

// SortedCategories returns a breakdown's categories in canonical order,
// for stable output.
func SortedCategories(byCat map[string]time.Duration) []string {
	keys := make([]string, 0, len(byCat))
	for k := range byCat {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
