// Package magritte generates and runs the Magritte benchmark suite: 34
// traces modelled on Apple's iLife and iWork desktop applications (§5.1,
// §6). The original suite was compiled by ARTC from the iBench traces;
// those are not redistributable here, so each trace is synthesized by
// running a parametric application program — with the thread structure,
// call mix, inter-thread resource handoffs, and OS X-specific calls that
// characterize each application family — on a simulated OS X system and
// recording its system calls.
//
// The suite reproduces the iBench fidelity quirks the paper discusses:
// extended attributes read by the application are (by default) missing
// from the captured snapshot, so a handful of replayed xattr calls fail,
// matching Table 3's small nonzero ARTC error counts; /dev/random is
// read by some applications, requiring the symlink-to-urandom trick when
// replaying on Linux.
package magritte

import "fmt"

// Spec describes one Magritte trace: its application family, target
// event count, thread structure, and operation mix (weights need not sum
// to anything in particular; they are relative).
type Spec struct {
	App   string // application, e.g. "iphoto"
	Trace string // trace name, e.g. "edit400"
	// Events is the full-scale traced event count from Table 3.
	Events int
	// Workers is the number of worker threads besides the coordinator.
	Workers int
	// Mix weights.
	WRead, WWrite, WFsync, WStat, WOpenClose, WXattr, WAttrList, WCreate, WRename, WDelete int
	// HandoffPct is the percentage of opens whose descriptor is handed
	// to another thread (read there, closed by a third): the cross-thread
	// dependency pattern that breaks unconstrained replay.
	HandoffPct int
	// XattrMissing is the number of xattr reads against attributes that
	// exist during tracing but are absent from the snapshot (the iBench
	// initialization gap; these become ARTC's residual errors).
	XattrMissing int
	// DevRandom makes the application read /dev/random during startup.
	DevRandom bool
	// UseAIO makes a fraction of media reads go through the POSIX AIO
	// calls (aio_read / aio_error / aio_suspend / aio_return), as
	// iMovie's streaming import/export paths do; this exercises the
	// aio_stage ordering mode.
	UseAIO bool
}

// FullName returns "app_trace", e.g. "iphoto_edit400".
func (s Spec) FullName() string { return fmt.Sprintf("%s_%s", s.App, s.Trace) }

// Specs lists the 34 Magritte traces with Table 3's event counts.
// Family mixes follow Figure 10: iPhoto and iTunes are fsync-heavy
// (library databases), Numbers and Keynote are dominated by reads and
// stat-family calls, iMovie and Pages are spread across categories.
var Specs = []Spec{
	// iPhoto: photo-library management; sqlite-style DB with frequent
	// fsyncs, thumbnail churn, heavy cross-thread handoff in edit.
	{App: "iphoto", Trace: "start400", Events: 35000, Workers: 4,
		WRead: 30, WWrite: 8, WFsync: 10, WStat: 20, WOpenClose: 15, WXattr: 6, WAttrList: 8, WCreate: 2, WRename: 1, WDelete: 0,
		HandoffPct: 12, XattrMissing: 2, DevRandom: true},
	{App: "iphoto", Trace: "import400", Events: 827000, Workers: 6,
		WRead: 25, WWrite: 20, WFsync: 12, WStat: 12, WOpenClose: 12, WXattr: 5, WAttrList: 5, WCreate: 6, WRename: 3, WDelete: 1,
		HandoffPct: 25, XattrMissing: 3},
	{App: "iphoto", Trace: "duplicate400", Events: 210000, Workers: 5,
		WRead: 28, WWrite: 18, WFsync: 12, WStat: 12, WOpenClose: 12, WXattr: 4, WAttrList: 6, WCreate: 6, WRename: 2, WDelete: 1,
		HandoffPct: 18, XattrMissing: 2},
	{App: "iphoto", Trace: "edit400", Events: 1660000, Workers: 8,
		WRead: 26, WWrite: 20, WFsync: 14, WStat: 10, WOpenClose: 12, WXattr: 4, WAttrList: 4, WCreate: 5, WRename: 4, WDelete: 1,
		HandoffPct: 40, XattrMissing: 2},
	{App: "iphoto", Trace: "delete400", Events: 431000, Workers: 5,
		WRead: 20, WWrite: 12, WFsync: 14, WStat: 16, WOpenClose: 14, WXattr: 4, WAttrList: 6, WCreate: 2, WRename: 2, WDelete: 10,
		HandoffPct: 15, XattrMissing: 2},
	{App: "iphoto", Trace: "view400", Events: 270000, Workers: 5,
		WRead: 40, WWrite: 6, WFsync: 8, WStat: 18, WOpenClose: 16, WXattr: 4, WAttrList: 8, WCreate: 0, WRename: 0, WDelete: 0,
		HandoffPct: 14, XattrMissing: 2},

	// iTunes: music library; DB fsyncs dominate, lighter threading.
	{App: "itunes", Trace: "startsmall1", Events: 5500, Workers: 3,
		WRead: 30, WWrite: 8, WFsync: 12, WStat: 20, WOpenClose: 14, WXattr: 4, WAttrList: 10, WCreate: 1, WRename: 1, WDelete: 0,
		HandoffPct: 6, XattrMissing: 0, DevRandom: true},
	{App: "itunes", Trace: "importsmall1", Events: 10000, Workers: 4,
		WRead: 24, WWrite: 18, WFsync: 16, WStat: 12, WOpenClose: 12, WXattr: 4, WAttrList: 6, WCreate: 5, WRename: 3, WDelete: 0,
		HandoffPct: 20, XattrMissing: 0},
	{App: "itunes", Trace: "importmovie1", Events: 5300, Workers: 3,
		WRead: 26, WWrite: 20, WFsync: 14, WStat: 10, WOpenClose: 12, WXattr: 4, WAttrList: 6, WCreate: 5, WRename: 3, WDelete: 0,
		HandoffPct: 12, XattrMissing: 0},
	{App: "itunes", Trace: "album1", Events: 9700, Workers: 3,
		WRead: 28, WWrite: 14, WFsync: 14, WStat: 14, WOpenClose: 14, WXattr: 4, WAttrList: 8, WCreate: 3, WRename: 1, WDelete: 0,
		HandoffPct: 14, XattrMissing: 0},
	{App: "itunes", Trace: "movie1", Events: 9500, Workers: 3,
		WRead: 32, WWrite: 12, WFsync: 12, WStat: 14, WOpenClose: 14, WXattr: 4, WAttrList: 8, WCreate: 2, WRename: 1, WDelete: 0,
		HandoffPct: 16, XattrMissing: 0},

	// iMovie: video editing; large sequential media reads/writes.
	{App: "imovie", Trace: "start1", Events: 21000, Workers: 4,
		WRead: 34, WWrite: 8, WFsync: 6, WStat: 18, WOpenClose: 16, WXattr: 4, WAttrList: 8, WCreate: 2, WRename: 1, WDelete: 0,
		HandoffPct: 8, XattrMissing: 2},
	{App: "imovie", Trace: "import1", Events: 35000, Workers: 4,
		WRead: 28, WWrite: 24, WFsync: 8, WStat: 10, WOpenClose: 12, WXattr: 3, WAttrList: 5, WCreate: 6, WRename: 3, WDelete: 1,
		HandoffPct: 22, XattrMissing: 3, UseAIO: true},
	{App: "imovie", Trace: "add1", Events: 24000, Workers: 4,
		WRead: 30, WWrite: 16, WFsync: 8, WStat: 14, WOpenClose: 14, WXattr: 3, WAttrList: 6, WCreate: 5, WRename: 3, WDelete: 1,
		HandoffPct: 16, XattrMissing: 3},
	{App: "imovie", Trace: "export1", Events: 42000, Workers: 5,
		WRead: 30, WWrite: 26, WFsync: 8, WStat: 8, WOpenClose: 10, WXattr: 3, WAttrList: 4, WCreate: 6, WRename: 4, WDelete: 1,
		HandoffPct: 26, XattrMissing: 5, UseAIO: true},

	// Pages: word processor; plist/stat storms, moderate writes.
	{App: "pages", Trace: "start15", Events: 13000, Workers: 3,
		WRead: 34, WWrite: 4, WFsync: 2, WStat: 26, WOpenClose: 18, WXattr: 5, WAttrList: 9, WCreate: 1, WRename: 0, WDelete: 0,
		HandoffPct: 4, XattrMissing: 4},
	{App: "pages", Trace: "create15", Events: 16000, Workers: 3,
		WRead: 30, WWrite: 10, WFsync: 4, WStat: 22, WOpenClose: 16, WXattr: 5, WAttrList: 8, WCreate: 4, WRename: 1, WDelete: 0,
		HandoffPct: 8, XattrMissing: 4},
	{App: "pages", Trace: "createphoto15", Events: 56000, Workers: 4,
		WRead: 30, WWrite: 14, WFsync: 4, WStat: 18, WOpenClose: 14, WXattr: 4, WAttrList: 7, WCreate: 6, WRename: 2, WDelete: 1,
		HandoffPct: 14, XattrMissing: 4},
	{App: "pages", Trace: "open15", Events: 15000, Workers: 3,
		WRead: 36, WWrite: 4, WFsync: 2, WStat: 24, WOpenClose: 18, WXattr: 5, WAttrList: 9, WCreate: 1, WRename: 0, WDelete: 0,
		HandoffPct: 5, XattrMissing: 4},
	{App: "pages", Trace: "pdf15", Events: 15000, Workers: 3,
		WRead: 32, WWrite: 10, WFsync: 3, WStat: 22, WOpenClose: 16, WXattr: 4, WAttrList: 8, WCreate: 4, WRename: 1, WDelete: 0,
		HandoffPct: 7, XattrMissing: 4},
	{App: "pages", Trace: "pdfphoto15", Events: 54000, Workers: 4,
		WRead: 30, WWrite: 12, WFsync: 3, WStat: 20, WOpenClose: 14, WXattr: 4, WAttrList: 8, WCreate: 5, WRename: 2, WDelete: 0,
		HandoffPct: 12, XattrMissing: 4},
	{App: "pages", Trace: "doc15", Events: 15000, Workers: 3,
		WRead: 32, WWrite: 10, WFsync: 3, WStat: 22, WOpenClose: 16, WXattr: 4, WAttrList: 8, WCreate: 4, WRename: 1, WDelete: 0,
		HandoffPct: 7, XattrMissing: 4},
	{App: "pages", Trace: "docphoto15", Events: 205000, Workers: 5,
		WRead: 30, WWrite: 14, WFsync: 4, WStat: 18, WOpenClose: 14, WXattr: 4, WAttrList: 7, WCreate: 6, WRename: 2, WDelete: 1,
		HandoffPct: 16, XattrMissing: 4},

	// Numbers: spreadsheet; read + stat dominated, almost no handoff.
	{App: "numbers", Trace: "start5", Events: 10000, Workers: 2,
		WRead: 38, WWrite: 3, WFsync: 1, WStat: 28, WOpenClose: 18, WXattr: 4, WAttrList: 8, WCreate: 0, WRename: 0, WDelete: 0,
		HandoffPct: 0, XattrMissing: 0},
	{App: "numbers", Trace: "createcol5", Events: 15000, Workers: 3,
		WRead: 34, WWrite: 8, WFsync: 2, WStat: 24, WOpenClose: 16, WXattr: 4, WAttrList: 8, WCreate: 3, WRename: 1, WDelete: 0,
		HandoffPct: 6, XattrMissing: 0},
	{App: "numbers", Trace: "open5", Events: 12000, Workers: 2,
		WRead: 38, WWrite: 3, WFsync: 1, WStat: 28, WOpenClose: 18, WXattr: 4, WAttrList: 8, WCreate: 0, WRename: 0, WDelete: 0,
		HandoffPct: 0, XattrMissing: 0},
	{App: "numbers", Trace: "xls5", Events: 14000, Workers: 2,
		WRead: 36, WWrite: 6, WFsync: 2, WStat: 26, WOpenClose: 16, WXattr: 4, WAttrList: 8, WCreate: 2, WRename: 0, WDelete: 0,
		HandoffPct: 0, XattrMissing: 0},

	// Keynote: presentations; read/stat heavy with photo variants.
	{App: "keynote", Trace: "start20", Events: 17000, Workers: 2,
		WRead: 38, WWrite: 3, WFsync: 1, WStat: 28, WOpenClose: 18, WXattr: 4, WAttrList: 8, WCreate: 0, WRename: 0, WDelete: 0,
		HandoffPct: 0, XattrMissing: 0},
	{App: "keynote", Trace: "create20", Events: 36000, Workers: 3,
		WRead: 34, WWrite: 8, WFsync: 2, WStat: 24, WOpenClose: 16, WXattr: 4, WAttrList: 8, WCreate: 3, WRename: 1, WDelete: 0,
		HandoffPct: 8, XattrMissing: 0},
	{App: "keynote", Trace: "createphoto20", Events: 38000, Workers: 4,
		WRead: 32, WWrite: 10, WFsync: 2, WStat: 22, WOpenClose: 15, WXattr: 4, WAttrList: 8, WCreate: 5, WRename: 2, WDelete: 0,
		HandoffPct: 12, XattrMissing: 2},
	{App: "keynote", Trace: "play20", Events: 28000, Workers: 2,
		WRead: 42, WWrite: 2, WFsync: 1, WStat: 26, WOpenClose: 18, WXattr: 3, WAttrList: 8, WCreate: 0, WRename: 0, WDelete: 0,
		HandoffPct: 0, XattrMissing: 0},
	{App: "keynote", Trace: "playphoto20", Events: 30000, Workers: 3,
		WRead: 42, WWrite: 2, WFsync: 1, WStat: 26, WOpenClose: 18, WXattr: 3, WAttrList: 8, WCreate: 0, WRename: 0, WDelete: 0,
		HandoffPct: 6, XattrMissing: 0},
	{App: "keynote", Trace: "ppt20", Events: 51000, Workers: 3,
		WRead: 36, WWrite: 8, WFsync: 2, WStat: 24, WOpenClose: 16, WXattr: 4, WAttrList: 8, WCreate: 2, WRename: 1, WDelete: 0,
		HandoffPct: 5, XattrMissing: 2},
	{App: "keynote", Trace: "pptphoto20", Events: 126000, Workers: 4,
		WRead: 34, WWrite: 10, WFsync: 2, WStat: 22, WOpenClose: 15, WXattr: 4, WAttrList: 8, WCreate: 4, WRename: 1, WDelete: 0,
		HandoffPct: 8, XattrMissing: 2},
}

// SpecByName finds a spec by FullName.
func SpecByName(name string) (Spec, bool) {
	for _, s := range Specs {
		if s.FullName() == name {
			return s, true
		}
	}
	return Spec{}, false
}
