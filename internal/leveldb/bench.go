package leveldb

import (
	"fmt"
	"math/rand"

	"rootreplay/internal/sim"
	"rootreplay/internal/stack"
)

// The two LevelDB benchmark workloads from §5.2.2, in the shape of
// workload.Workload (duplicated interface to avoid a dependency cycle):
// fillsync threads insert records into an empty database with synchronous
// writes; readrandom threads randomly read keys from a pre-populated
// database.

// keyFor produces the benchmark keyspace ("%016d" like db_bench).
func keyFor(i int) string { return fmt.Sprintf("%016d", i) }

// FillSync is the fillsync workload: Threads threads each insert
// OpsPerThread records of ValueBytes with sync writes into an empty DB.
type FillSync struct {
	Threads      int
	OpsPerThread int
	ValueBytes   int
	Dir          string
	Seed         int64

	db *DB
}

// Name implements workload.Workload.
func (w *FillSync) Name() string { return fmt.Sprintf("fillsync-%dt", w.Threads) }

// Setup implements workload.Workload: fillsync starts from an empty
// database, so setup only ensures the parent directory exists.
func (w *FillSync) Setup(sys *stack.System) error {
	if w.Dir == "" {
		w.Dir = "/db"
	}
	return sys.SetupMkdirAll("/")
}

// Spawn implements workload.Workload.
func (w *FillSync) Spawn(sys *stack.System) {
	ready := sim.NewCond(sys.K)
	sys.K.Spawn("fillsync-open", func(t *sim.Thread) {
		db, err := Open(sys, t, DefaultOptions(w.Dir))
		if err != nil {
			panic(err)
		}
		w.db = db
		ready.Broadcast()
	})
	for i := 0; i < w.Threads; i++ {
		i := i
		rng := rand.New(rand.NewSource(w.Seed + int64(i)))
		sys.K.Spawn(fmt.Sprintf("fillsync-%d", i), func(t *sim.Thread) {
			for w.db == nil {
				ready.Wait(t, "db open")
			}
			val := make([]byte, w.ValueBytes)
			for n := 0; n < w.OpsPerThread; n++ {
				w.db.Put(t, keyFor(rng.Intn(1<<30)), val, true)
			}
		})
	}
}

// DB returns the database (after the workload has run), for inspection.
func (w *FillSync) DB() *DB { return w.db }

// ReadRandom is the readrandom workload: the database is pre-populated
// with Records entries during Setup, then Threads threads each perform
// OpsPerThread random Gets.
type ReadRandom struct {
	Threads      int
	OpsPerThread int
	Records      int
	ValueBytes   int
	Dir          string
	Seed         int64

	db *DB
}

// Name implements workload.Workload.
func (w *ReadRandom) Name() string { return fmt.Sprintf("readrandom-%dt", w.Threads) }

// Setup implements workload.Workload: populate the database (this runs
// the simulation, outside traced/measured time) and drop the page cache
// so the measured phase starts cold, as a freshly started process would.
func (w *ReadRandom) Setup(sys *stack.System) error {
	if w.Dir == "" {
		w.Dir = "/db"
	}
	// Size the LSM parameters to the dataset so the populated database
	// ends up with a realistic spread of table files (a dozen or more),
	// whatever the benchmark scale: random reads then touch many
	// descriptors rather than hammering one.
	opts := DefaultOptions(w.Dir)
	totalBytes := int64(w.Records) * int64(w.ValueBytes+32)
	if mt := totalBytes / 10; mt < opts.MemtableBytes {
		if mt < 256<<10 {
			mt = 256 << 10
		}
		opts.MemtableBytes = mt
	}
	if tb := totalBytes / 100; tb < opts.MaxTableBytes {
		if tb < 32<<10 {
			tb = 32 << 10
		}
		opts.MaxTableBytes = tb
	}
	sys.K.Spawn("readrandom-populate", func(t *sim.Thread) {
		db, err := Open(sys, t, opts)
		if err != nil {
			panic(err)
		}
		val := make([]byte, w.ValueBytes)
		for i := 0; i < w.Records; i++ {
			db.Put(t, keyFor(i), val, false)
		}
		// Close flushes the memtable and releases every descriptor: the
		// measured phase reopens them, so all fds used during
		// measurement are opened during measurement (and hence appear in
		// a trace of that phase).
		db.Close(t)
		w.db = db
	})
	if err := sys.K.Run(); err != nil {
		return err
	}
	sys.DropCaches()
	return nil
}

// Spawn implements workload.Workload.
func (w *ReadRandom) Spawn(sys *stack.System) {
	ready := sim.NewCond(sys.K)
	opened := false
	sys.K.Spawn("readrandom-open", func(t *sim.Thread) {
		if err := w.db.OpenHandles(t); err != nil {
			panic(err)
		}
		opened = true
		ready.Broadcast()
	})
	for i := 0; i < w.Threads; i++ {
		i := i
		rng := rand.New(rand.NewSource(w.Seed + 100 + int64(i)))
		sys.K.Spawn(fmt.Sprintf("readrandom-%d", i), func(t *sim.Thread) {
			for !opened {
				ready.Wait(t, "db reopen")
			}
			for n := 0; n < w.OpsPerThread; n++ {
				w.db.Get(t, keyFor(rng.Intn(w.Records)))
			}
		})
	}
}

// DB returns the database, for inspection.
func (w *ReadRandom) DB() *DB { return w.db }
