package leveldb

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"rootreplay/internal/sim"
	"rootreplay/internal/stack"
	"rootreplay/internal/vfs"
)

func newSys(mutate func(*stack.Config)) (*sim.Kernel, *stack.System) {
	k := sim.NewKernel()
	conf := stack.DefaultConfig()
	conf.Scheduler = stack.SchedNoop
	if mutate != nil {
		mutate(&conf)
	}
	return k, stack.New(k, conf)
}

func TestPutGetRoundTrip(t *testing.T) {
	k, sys := newSys(nil)
	k.Spawn("test", func(th *sim.Thread) {
		db, err := Open(sys, th, DefaultOptions("/db"))
		if err != nil {
			t.Error(err)
			return
		}
		db.Put(th, "alpha", []byte("one"), false)
		db.Put(th, "beta", []byte("two"), true)
		if v, ok := db.Get(th, "alpha"); !ok || string(v) != "one" {
			t.Errorf("get alpha = %q, %v", v, ok)
		}
		if v, ok := db.Get(th, "beta"); !ok || string(v) != "two" {
			t.Errorf("get beta = %q, %v", v, ok)
		}
		if _, ok := db.Get(th, "gamma"); ok {
			t.Error("missing key found")
		}
		db.Close(th)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOverwriteLatestWins(t *testing.T) {
	k, sys := newSys(nil)
	k.Spawn("test", func(th *sim.Thread) {
		db, _ := Open(sys, th, DefaultOptions("/db"))
		db.Put(th, "k", []byte("v1"), false)
		db.Put(th, "k", []byte("v2"), false)
		if v, _ := db.Get(th, "k"); string(v) != "v2" {
			t.Errorf("got %q", v)
		}
		db.Close(th)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMemtableFlushCreatesTable(t *testing.T) {
	k, sys := newSys(nil)
	opts := DefaultOptions("/db")
	opts.MemtableBytes = 16 << 10 // tiny memtable
	k.Spawn("test", func(th *sim.Thread) {
		db, _ := Open(sys, th, opts)
		val := make([]byte, 1024)
		for i := 0; i < 64; i++ {
			db.Put(th, fmt.Sprintf("key%04d", i), val, false)
		}
		if db.Stats().Flushes == 0 {
			t.Error("no flush despite exceeding memtable budget")
		}
		// Values written before the flush must be readable from tables.
		if v, ok := db.Get(th, "key0000"); !ok || len(v) != 1024 {
			t.Errorf("get after flush = %d bytes, %v", len(v), ok)
		}
		db.Close(th)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// A table file must exist on the simulated FS (earlier tables may
	// have been consumed by compaction).
	foundTable := false
	sys.FS.Walk(func(p string, _ *vfs.Inode) {
		if strings.HasSuffix(p, ".ldb") {
			foundTable = true
		}
	})
	if !foundTable {
		t.Error("no table file on the file system")
	}
}

func TestCompactionMergesTables(t *testing.T) {
	k, sys := newSys(nil)
	opts := DefaultOptions("/db")
	opts.MemtableBytes = 8 << 10
	opts.L0CompactTrigger = 3
	k.Spawn("test", func(th *sim.Thread) {
		db, _ := Open(sys, th, opts)
		val := make([]byte, 512)
		for i := 0; i < 200; i++ {
			db.Put(th, fmt.Sprintf("key%04d", i%50), val, false)
		}
		if db.Stats().Compactions == 0 {
			t.Error("no compaction")
		}
		for i := 0; i < 50; i++ {
			if _, ok := db.Get(th, fmt.Sprintf("key%04d", i)); !ok {
				t.Errorf("key%04d lost after compaction", i)
			}
		}
		db.Close(th)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// Group commit: concurrent sync Puts must be batched — far fewer batches
// (and fsyncs) than Puts.
func TestGroupCommitBatching(t *testing.T) {
	k, sys := newSys(nil)
	var db *DB
	ready := sim.NewCond(k)
	k.Spawn("open", func(th *sim.Thread) {
		db, _ = Open(sys, th, DefaultOptions("/db"))
		ready.Broadcast()
	})
	const threads, per = 8, 25
	for i := 0; i < threads; i++ {
		i := i
		k.Spawn(fmt.Sprintf("w%d", i), func(th *sim.Thread) {
			for db == nil {
				ready.Wait(th, "open")
			}
			for n := 0; n < per; n++ {
				db.Put(th, fmt.Sprintf("k-%d-%d", i, n), []byte("v"), true)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Puts != threads*per {
		t.Fatalf("puts = %d", st.Puts)
	}
	if st.BatchCount >= st.Puts {
		t.Fatalf("no batching: %d batches for %d puts", st.BatchCount, st.Puts)
	}
	if st.BatchedPuts != st.Puts {
		t.Fatalf("batched puts %d != puts %d", st.BatchedPuts, st.Puts)
	}
	// All values durable and readable.
	k.Spawn("verify", func(th *sim.Thread) {
		for i := 0; i < threads; i++ {
			for n := 0; n < per; n++ {
				if _, ok := db.Get(th, fmt.Sprintf("k-%d-%d", i, n)); !ok {
					t.Errorf("k-%d-%d missing", i, n)
				}
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFillSyncWorkload(t *testing.T) {
	k, sys := newSys(nil)
	w := &FillSync{Threads: 4, OpsPerThread: 20, ValueBytes: 100, Seed: 42}
	if err := w.Setup(sys); err != nil {
		t.Fatal(err)
	}
	w.Spawn(sys)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if w.DB().Stats().Puts != 80 {
		t.Fatalf("puts = %d", w.DB().Stats().Puts)
	}
	// Sync inserts hit the device.
	if sys.Dev.Stats().Writes == 0 {
		t.Fatal("no device writes from fillsync")
	}
}

func TestReadRandomWorkload(t *testing.T) {
	k, sys := newSys(nil)
	w := &ReadRandom{Threads: 4, OpsPerThread: 50, Records: 2000, ValueBytes: 100, Seed: 7}
	if err := w.Setup(sys); err != nil {
		t.Fatal(err)
	}
	readsBefore := sys.Dev.Stats().Reads
	w.Spawn(sys)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if w.DB().Stats().Gets != 200 {
		t.Fatalf("gets = %d", w.DB().Stats().Gets)
	}
	if sys.Dev.Stats().Reads == readsBefore {
		t.Fatal("readrandom measured phase issued no device reads (cache not cold?)")
	}
}

// Property: any interleaving of Puts followed by Gets returns the last
// value written for every key, across flush boundaries.
func TestQuickLastWriteWins(t *testing.T) {
	f := func(ops []uint16) bool {
		if len(ops) > 150 {
			ops = ops[:150]
		}
		k, sys := newSys(nil)
		opts := DefaultOptions("/db")
		opts.MemtableBytes = 4 << 10
		opts.L0CompactTrigger = 2
		want := make(map[string]byte)
		okRun := true
		k.Spawn("driver", func(th *sim.Thread) {
			db, err := Open(sys, th, opts)
			if err != nil {
				okRun = false
				return
			}
			for _, op := range ops {
				key := fmt.Sprintf("key%d", op%37)
				val := []byte{byte(op >> 8), 0, 1, 2, 3}
				db.Put(th, key, val, op%5 == 0)
				want[key] = byte(op >> 8)
			}
			for key, b := range want {
				v, ok := db.Get(th, key)
				if !ok || len(v) != 5 || v[0] != b {
					okRun = false
				}
			}
			db.Close(th)
		})
		if err := k.Run(); err != nil {
			return false
		}
		return okRun
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFillSyncSSDFasterThanHDD(t *testing.T) {
	elapsed := func(dev stack.DeviceKind) int64 {
		k, sys := newSys(func(c *stack.Config) { c.Device = dev })
		w := &FillSync{Threads: 2, OpsPerThread: 30, ValueBytes: 256, Seed: 1}
		if err := w.Setup(sys); err != nil {
			t.Fatal(err)
		}
		start := k.Now()
		w.Spawn(sys)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return int64(k.Now() - start)
	}
	hdd := elapsed(stack.DeviceHDD)
	ssd := elapsed(stack.DeviceSSD)
	if ssd >= hdd {
		t.Fatalf("fillsync on SSD (%d) not faster than HDD (%d)", ssd, hdd)
	}
}
