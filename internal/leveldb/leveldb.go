// Package leveldb is a small embedded log-structured-merge key-value
// store that runs on the simulated storage stack. It is the
// macrobenchmark application of the paper's §5.2.2: an LSM store with a
// write-ahead log, an in-memory memtable, sorted string tables, and
// LevelDB's signature group-commit write path — when multiple threads
// want to issue writes, one thread issues them all and the others hand
// off their data to it, which is exactly the behaviour the paper
// observes making fillsync friendly to simple replay methods.
package leveldb

import (
	"fmt"
	"sort"

	"rootreplay/internal/sim"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
	"rootreplay/internal/vfs"
)

// Options configure a DB.
type Options struct {
	// Dir is the database directory.
	Dir string
	// MemtableBytes bounds the memtable before it is flushed to an
	// SSTable (LevelDB default: 4 MiB).
	MemtableBytes int64
	// L0CompactTrigger is the number of level-0 tables that triggers a
	// compaction into level 1 (LevelDB default: 4).
	L0CompactTrigger int
	// MaxTableBytes bounds each level-1 output table; compaction
	// partitions its key range into multiple files (LevelDB default:
	// 2 MiB), so a populated database spreads reads across many
	// descriptors.
	MaxTableBytes int64
}

// DefaultOptions returns LevelDB-like defaults under dir.
func DefaultOptions(dir string) Options {
	return Options{Dir: dir, MemtableBytes: 4 << 20, L0CompactTrigger: 4, MaxTableBytes: 2 << 20}
}

// ssTable is an on-disk sorted table. Key metadata (the index block) is
// modelled in memory; lookups charge the data-block read.
type ssTable struct {
	path    string
	fd      int64
	minKey  string
	maxKey  string
	entries map[string]tableEntry
	size    int64
	level   int
}

type tableEntry struct {
	offset int64
	value  []byte
}

// DB is an open database.
type DB struct {
	sys  *stack.System
	opts Options

	mem      map[string][]byte
	memBytes int64
	walFD    int64
	walPath  string
	walSize  int64
	manifest int64 // fd

	tables  []*ssTable // newest first (level 0 before level 1)
	nextNum int

	// Group-commit writer state.
	pending    []*writeReq
	writerBusy bool
	writerCond *sim.Cond

	stats Stats
}

// Stats counts DB activity.
type Stats struct {
	Puts        int64
	Gets        int64
	GetHitsMem  int64
	Flushes     int64
	Compactions int64
	BatchCount  int64
	BatchedPuts int64
}

type writeReq struct {
	key   string
	value []byte
	sync  bool
	done  bool
	cond  *sim.Cond
}

// Open creates (or reuses) a database directory and its WAL, MANIFEST
// and CURRENT files. It must run in a simulated thread.
func Open(sys *stack.System, t *sim.Thread, opts Options) (*DB, error) {
	if opts.MemtableBytes <= 0 {
		opts.MemtableBytes = 4 << 20
	}
	if opts.L0CompactTrigger <= 0 {
		opts.L0CompactTrigger = 4
	}
	if opts.MaxTableBytes <= 0 {
		opts.MaxTableBytes = 2 << 20
	}
	db := &DB{
		sys:        sys,
		opts:       opts,
		mem:        make(map[string][]byte),
		writerCond: sim.NewCond(sys.K),
		walPath:    opts.Dir + "/000001.log",
	}
	sys.Mkdir(t, opts.Dir, 0o755)
	cur, err := sys.Open(t, opts.Dir+"/CURRENT", trace.OWronly|trace.OCreat, 0o644)
	if err != 0 {
		return nil, fmt.Errorf("leveldb: CURRENT: %v", err)
	}
	sys.Write(t, cur, 16)
	sys.Close(t, cur)
	db.manifest, err = sys.Open(t, opts.Dir+"/MANIFEST-000001", trace.OWronly|trace.OCreat|trace.OAppend, 0o644)
	if err != 0 {
		return nil, fmt.Errorf("leveldb: MANIFEST: %v", err)
	}
	sys.Write(t, db.manifest, 64)
	db.walFD, err = sys.Open(t, db.walPath, trace.OWronly|trace.OCreat|trace.OAppend, 0o644)
	if err != 0 {
		return nil, fmt.Errorf("leveldb: WAL: %v", err)
	}
	db.nextNum = 2
	return db, nil
}

// Stats returns a snapshot of DB counters.
func (db *DB) Stats() Stats { return db.stats }

// Close flushes the memtable and closes descriptors.
func (db *DB) Close(t *sim.Thread) {
	if len(db.mem) > 0 {
		db.flush(t)
	}
	db.sys.Close(t, db.walFD)
	db.sys.Close(t, db.manifest)
	for _, tb := range db.tables {
		db.sys.Close(t, tb.fd)
	}
	db.walFD, db.manifest = -1, -1
	for _, tb := range db.tables {
		tb.fd = -1
	}
}

// OpenHandles reopens the store's files after a Close, as a freshly
// started process would: tables read-only, log and manifest for append,
// with the customary startup metadata reads. Benchmarks that populate a
// database before the measured phase Close it and reopen here so every
// descriptor used during measurement was opened during measurement.
func (db *DB) OpenHandles(t *sim.Thread) error {
	db.sys.Stat(t, db.opts.Dir+"/CURRENT")
	var err vfs.Errno
	db.manifest, err = db.sys.Open(t, db.opts.Dir+"/MANIFEST-000001", trace.OWronly|trace.OAppend, 0)
	if err != 0 {
		return fmt.Errorf("leveldb: reopen MANIFEST: %v", err)
	}
	db.sys.Read(t, db.manifest, 64)
	db.walFD, err = db.sys.Open(t, db.walPath, trace.OWronly|trace.OCreat|trace.OAppend, 0o644)
	if err != 0 {
		return fmt.Errorf("leveldb: reopen WAL: %v", err)
	}
	for _, tb := range db.tables {
		tb.fd, err = db.sys.Open(t, tb.path, trace.ORdonly, 0)
		if err != 0 {
			return fmt.Errorf("leveldb: reopen table %s: %v", tb.path, err)
		}
		// Table open reads the footer/index block.
		db.sys.Pread(t, tb.fd, 4096, tb.size-4096)
	}
	return nil
}

// Put inserts a key/value pair. With sync, the write-ahead log is
// fsynced before Put returns. Concurrent Puts are group-committed: the
// first writer drains the whole queue in one WAL append + one fsync.
func (db *DB) Put(t *sim.Thread, key string, value []byte, sync bool) {
	db.stats.Puts++
	req := &writeReq{key: key, value: append([]byte(nil), value...), sync: sync, cond: sim.NewCond(db.sys.K)}
	db.pending = append(db.pending, req)
	if db.writerBusy {
		// Hand off to the active writer thread.
		for !req.done {
			req.cond.Wait(t, "leveldb group commit")
		}
		return
	}
	db.writerBusy = true
	for len(db.pending) > 0 {
		batch := db.pending
		db.pending = nil
		db.stats.BatchCount++
		db.stats.BatchedPuts += int64(len(batch))
		var bytes int64
		syncBatch := false
		for _, r := range batch {
			bytes += int64(len(r.key) + len(r.value) + 16)
			syncBatch = syncBatch || r.sync
		}
		db.sys.Write(t, db.walFD, bytes)
		db.walSize += bytes
		if syncBatch {
			db.sys.Fsync(t, db.walFD)
		}
		for _, r := range batch {
			old, had := db.mem[r.key]
			db.mem[r.key] = r.value
			db.memBytes += int64(len(r.key) + len(r.value))
			if had {
				db.memBytes -= int64(len(r.key) + len(old))
			}
			r.done = true
			r.cond.Broadcast()
		}
		if db.memBytes >= db.opts.MemtableBytes {
			db.flush(t)
		}
	}
	db.writerBusy = false
}

// Get looks up a key: memtable first, then tables newest-first. A table
// whose key range covers the key costs one 4 KB data-block read.
func (db *DB) Get(t *sim.Thread, key string) ([]byte, bool) {
	db.stats.Gets++
	if v, ok := db.mem[key]; ok {
		db.stats.GetHitsMem++
		return v, true
	}
	for _, tb := range db.tables {
		if key < tb.minKey || key > tb.maxKey {
			continue
		}
		e, ok := tb.entries[key]
		if !ok {
			// A range-covering table without the key still costs an
			// index-block probe (LevelDB reads the index to learn the
			// key is absent; we charge a single block).
			db.sys.Pread(t, tb.fd, 4096, tb.size-4096)
			continue
		}
		db.sys.Pread(t, tb.fd, 4096, e.offset)
		return e.value, true
	}
	return nil, false
}

// flush writes the memtable to a new level-0 SSTable.
func (db *DB) flush(t *sim.Thread) {
	if len(db.mem) == 0 {
		return
	}
	db.stats.Flushes++
	tb := db.writeTable(t, db.mem, 0)
	db.tables = append([]*ssTable{tb}, db.tables...)
	db.mem = make(map[string][]byte)
	db.memBytes = 0
	// Manifest update records the new table.
	db.sys.Write(t, db.manifest, 64)
	db.sys.Fsync(t, db.manifest)
	// Truncate (recycle) the WAL.
	db.sys.Ftruncate(t, db.walFD, 0)
	db.walSize = 0
	if db.level0Count() >= db.opts.L0CompactTrigger {
		db.compact(t)
	}
}

func (db *DB) level0Count() int {
	n := 0
	for _, tb := range db.tables {
		if tb.level == 0 {
			n++
		}
	}
	return n
}

// writeTable materializes entries as an on-disk table file.
func (db *DB) writeTable(t *sim.Thread, entries map[string][]byte, level int) *ssTable {
	path := fmt.Sprintf("%s/%06d.ldb", db.opts.Dir, db.nextNum)
	db.nextNum++
	fd, _ := db.sys.Open(t, path, trace.OWronly|trace.OCreat|trace.OTrunc, 0o644)
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	tb := &ssTable{path: path, entries: make(map[string]tableEntry, len(entries)), level: level}
	if len(keys) > 0 {
		tb.minKey, tb.maxKey = keys[0], keys[len(keys)-1]
	}
	var off int64
	for _, k := range keys {
		v := entries[k]
		tb.entries[k] = tableEntry{offset: off, value: v}
		off += int64(len(k) + len(v) + 16)
	}
	// Data blocks plus a trailing index block, written in 64 KiB chunks.
	total := off + 4096
	tb.size = total
	for written := int64(0); written < total; {
		chunk := int64(64 << 10)
		if total-written < chunk {
			chunk = total - written
		}
		db.sys.Write(t, fd, chunk)
		written += chunk
	}
	db.sys.Fsync(t, fd)
	db.sys.Close(t, fd)
	tb.fd, _ = db.sys.Open(t, path, trace.ORdonly, 0)
	return tb
}

// compact merges every table, reading each input sequentially, and
// rewrites the result as a run of key-range-partitioned level-1 tables
// of bounded size, deleting the inputs afterwards.
func (db *DB) compact(t *sim.Thread) {
	db.stats.Compactions++
	merged := make(map[string][]byte)
	// Oldest first so newer tables overwrite older values.
	for i := len(db.tables) - 1; i >= 0; i-- {
		tb := db.tables[i]
		// Sequential scan of the input table.
		db.sys.Lseek(t, tb.fd, 0, stack.SeekSet)
		for off := int64(0); off < tb.size; off += 64 << 10 {
			db.sys.Read(t, tb.fd, 64<<10)
		}
		for k, e := range tb.entries {
			merged[k] = e.value
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var outs []*ssTable
	part := make(map[string][]byte)
	var partBytes int64
	emit := func() {
		if len(part) == 0 {
			return
		}
		outs = append(outs, db.writeTable(t, part, 1))
		part = make(map[string][]byte)
		partBytes = 0
	}
	for _, k := range keys {
		part[k] = merged[k]
		partBytes += int64(len(k) + len(merged[k]) + 16)
		if partBytes >= db.opts.MaxTableBytes {
			emit()
		}
	}
	emit()
	for _, tb := range db.tables {
		db.sys.Close(t, tb.fd)
		db.sys.Unlink(t, tb.path)
	}
	db.tables = outs
	db.sys.Write(t, db.manifest, 128)
	db.sys.Fsync(t, db.manifest)
}
