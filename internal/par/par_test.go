package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		hits := make([]int32, n)
		if err := ForEach(n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, h)
			}
		}
	}
}

func TestForEachFirstErrorByIndex(t *testing.T) {
	wantErr := errors.New("boom-3")
	err := ForEach(50, func(i int) error {
		switch i {
		case 3:
			return wantErr
		case 40:
			return fmt.Errorf("boom-40")
		}
		return nil
	})
	if err != wantErr {
		t.Fatalf("err = %v, want lowest-index error %v", err, wantErr)
	}
}

func TestForEachErrorDoesNotCancel(t *testing.T) {
	var ran atomic.Int32
	_ = ForEach(20, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early")
		}
		return nil
	})
	if got := ran.Load(); got != 20 {
		t.Fatalf("ran %d of 20 indices; errors must not cancel the fan-out", got)
	}
}
