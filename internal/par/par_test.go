package par

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		hits := make([]int32, n)
		if err := ForEach(n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, h)
			}
		}
	}
}

func TestForEachFirstErrorByIndex(t *testing.T) {
	wantErr := errors.New("boom-3")
	err := ForEach(50, func(i int) error {
		switch i {
		case 3:
			return wantErr
		case 40:
			return fmt.Errorf("boom-40")
		}
		return nil
	})
	if err != wantErr {
		t.Fatalf("err = %v, want lowest-index error %v", err, wantErr)
	}
}

func TestPoolRunsEverySubmittedTask(t *testing.T) {
	p := NewPool(4)
	var ran atomic.Int32
	for i := 0; i < 100; i++ {
		p.Submit(func() { ran.Add(1) })
	}
	p.Close()
	if got := ran.Load(); got != 100 {
		t.Fatalf("ran %d of 100 tasks", got)
	}
}

// Submit must block while every worker is busy: the pool provides
// direct handoff, not hidden buffering.
func TestPoolSubmitBlocksWhenSaturated(t *testing.T) {
	p := NewPool(2)
	release := make(chan struct{})
	var running sync.WaitGroup
	running.Add(2)
	for i := 0; i < 2; i++ {
		p.Submit(func() { running.Done(); <-release })
	}
	running.Wait() // both workers busy
	extra := make(chan struct{})
	go func() {
		p.Submit(func() {})
		close(extra)
	}()
	time.Sleep(20 * time.Millisecond) // give Submit a chance to (wrongly) return
	select {
	case <-extra:
		t.Fatal("Submit returned while all workers were busy")
	default:
	}
	close(release)
	<-extra
	p.Close()
}

func TestPoolCloseWaitsForRunningTasks(t *testing.T) {
	p := NewPool(3)
	var done atomic.Int32
	for i := 0; i < 3; i++ {
		p.Submit(func() { done.Add(1) })
	}
	p.Close()
	if got := done.Load(); got != 3 {
		t.Fatalf("Close returned with %d of 3 tasks finished", got)
	}
}

func TestForEachErrorDoesNotCancel(t *testing.T) {
	var ran atomic.Int32
	_ = ForEach(20, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early")
		}
		return nil
	})
	if got := ran.Load(); got != 20 {
		t.Fatalf("ran %d of 20 indices; errors must not cancel the fan-out", got)
	}
}
