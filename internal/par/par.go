// Package par is the experiment harness's bounded worker pool. The
// evaluation matrices (Fig. 5/7, the Magritte suite) run dozens of
// independent trace/compile/replay cells; each cell is a self-contained
// discrete-event simulation, so cells can fan out across cores without
// affecting the virtual-time results. Determinism is preserved by
// slotting results into index-addressed slices: callers observe the same
// output order as a serial loop, whatever order the workers finish in.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a long-lived bounded worker pool: a fixed team of goroutines
// executing submitted tasks. Unlike ForEach it serves an open-ended
// stream of work — the artcd job executor runs on one — and it
// deliberately has no internal queue: Submit hands the task directly to
// an idle worker and blocks while all workers are busy. Backpressure is
// therefore explicit at the submission site, never hidden buffering;
// callers that must not block (admission control paths) keep their own
// bounded queues in front and feed the pool from a dispatcher.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup
}

// NewPool starts a pool of the given size (< 1 selects GOMAXPROCS).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{tasks: make(chan func())}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				fn()
			}
		}()
	}
	return p
}

// Submit hands fn to an idle worker, blocking until one accepts it.
// Submit after Close panics (send on closed channel), matching the
// lifecycle contract: the owner stops submitting before closing.
func (p *Pool) Submit(fn func()) {
	p.tasks <- fn
}

// Close stops accepting tasks and waits for every running task to
// finish. It leaves no worker goroutines behind.
func (p *Pool) Close() {
	close(p.tasks)
	p.wg.Wait()
}

// ForEach runs fn(i) for every i in [0, n), fanning out over up to
// GOMAXPROCS workers. It always runs every index (no cancellation on
// error, so index-slotted results stay fully populated) and returns the
// lowest-index error, matching what a serial loop that collected all
// errors would report first.
func ForEach(n int, fn func(i int) error) error {
	return ForEachN(n, runtime.GOMAXPROCS(0), fn)
}

// ForEachN is ForEach with an explicit worker bound: up to workers
// goroutines (at least one) instead of GOMAXPROCS. The sharded replayer
// uses it to honor a -shards setting independent of GOMAXPROCS.
func ForEachN(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
