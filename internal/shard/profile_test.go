package shard_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"rootreplay/internal/artc"
	"rootreplay/internal/core"
	"rootreplay/internal/shard"
	"rootreplay/internal/stack"
	"rootreplay/internal/workload"
)

// randProfile builds a random structurally-valid profile: atoms in
// strictly ascending key order, pairs canonical (A < B) and sorted.
func randProfile(rng *rand.Rand) *shard.SliceProfile {
	p := &shard.SliceProfile{}
	key := int32(0)
	for i, n := 0, rng.Intn(12); i < n; i++ {
		key += 1 + rng.Int31n(1000)
		p.Atoms = append(p.Atoms, shard.ProfileAtom{
			Atom:    key,
			Actions: rng.Int31n(1 << 20),
			CostNs:  rng.Int63n(1 << 40),
		})
	}
	if len(p.Atoms) >= 2 {
		for i := 0; i < len(p.Atoms); i++ {
			for j := i + 1; j < len(p.Atoms); j++ {
				if rng.Intn(3) != 0 {
					continue
				}
				p.Pairs = append(p.Pairs, shard.ProfilePair{
					A: p.Atoms[i].Atom, B: p.Atoms[j].Atom,
					WaitNs: rng.Int63n(1 << 40), Publishes: rng.Int63n(1 << 20),
				})
			}
		}
	}
	return p
}

// Encode -> Decode -> Encode must be the identity on bytes: the profile
// artifact is content-addressed, so any drift would alias cache keys.
func TestSliceProfileEncodeDecodeByteIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		p := randProfile(rng)
		enc := p.Encode()
		dec, err := shard.DecodeProfile(enc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(dec.Atoms) != len(p.Atoms) || len(dec.Pairs) != len(p.Pairs) {
			t.Fatalf("trial %d: decoded %d atoms / %d pairs, want %d / %d",
				trial, len(dec.Atoms), len(dec.Pairs), len(p.Atoms), len(p.Pairs))
		}
		for i := range p.Atoms {
			if dec.Atoms[i] != p.Atoms[i] {
				t.Fatalf("trial %d: atom %d = %+v, want %+v", trial, i, dec.Atoms[i], p.Atoms[i])
			}
		}
		for i := range p.Pairs {
			if dec.Pairs[i] != p.Pairs[i] {
				t.Fatalf("trial %d: pair %d = %+v, want %+v", trial, i, dec.Pairs[i], p.Pairs[i])
			}
		}
		if re := dec.Encode(); !bytes.Equal(re, enc) {
			t.Fatalf("trial %d: re-encode differs (%d vs %d bytes)", trial, len(re), len(enc))
		}
	}
}

// Every single-byte flip, truncation, and trailing byte must be
// rejected: a damaged cache entry falls back to the static cut, never
// decodes to garbage weights.
func TestSliceProfileDecodeRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var p *shard.SliceProfile
	for p == nil || len(p.Atoms) < 3 {
		p = randProfile(rng)
	}
	enc := p.Encode()
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0xFF
		if _, err := shard.DecodeProfile(bad); err == nil {
			t.Fatalf("flip at byte %d/%d decoded successfully", i, len(enc))
		}
	}
	for _, cut := range []int{1, 4, len(enc) / 2, len(enc) - 1} {
		if _, err := shard.DecodeProfile(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
	}
	if _, err := shard.DecodeProfile(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing byte decoded successfully")
	}
	// Non-canonical orderings with a valid checksum must also fail.
	swapped := &shard.SliceProfile{
		Atoms: []shard.ProfileAtom{{Atom: 9}, {Atom: 3}},
	}
	if _, err := shard.DecodeProfile(swapped.Encode()); err == nil {
		t.Fatal("out-of-order atoms decoded successfully")
	}
	badPair := &shard.SliceProfile{
		Atoms: []shard.ProfileAtom{{Atom: 1}, {Atom: 2}},
		Pairs: []shard.ProfilePair{{A: 2, B: 1, WaitNs: 5}},
	}
	if _, err := shard.DecodeProfile(badPair.Encode()); err == nil {
		t.Fatal("non-canonical pair decoded successfully")
	}
}

// planString canonicalizes everything a plan determines: the member
// assignment, cross edges, synthetic thread edges, and the fingerprint
// that summarizes them.
func planString(p *shard.Plan) string {
	return fmt.Sprintf("%v|%v|%v|%d|%016x", p.CompOf, p.Cross, p.ThreadCross, p.EdgeBase, p.Fingerprint())
}

// The cut is a pure function of (trace, options, profile): both the
// static and the profile-guided plan must be byte-identical across 100
// runs and across GOMAXPROCS settings, and the profiled plan must
// actually differ from the static one on a skewed corpus (otherwise the
// determinism assertion is vacuous).
func TestSlicedPlanByteIdenticalAcrossRuns(t *testing.T) {
	tr, snap, err := workload.SynthPipeline(workload.Pipeline{
		Stages: 4, Ops: 200, Handoff: 8, Seed: 7, HotStage: 2, HotPages: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := artc.Compile(tr, snap, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	target := stack.Config{
		Name: "plan-det", Platform: stack.Linux, Profile: stack.Ext4,
		Device: stack.DeviceSSD, Scheduler: stack.SchedNoop,
	}
	sliceActions := len(tr.Records)/2 + 1
	_, st, err := artc.ReplaySharded(b, artc.Options{}, artc.ShardOptions{
		Target:       target,
		Init:         func(sys *stack.System) error { return artc.Init(sys, b, "") },
		SliceActions: sliceActions,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Profile == nil {
		t.Fatal("sliced replay produced no profile")
	}

	cut := func(prof *shard.SliceProfile) *shard.Plan {
		p := shard.Partition(b.Analysis, b.Graph)
		return shard.Slice(b.Analysis, b.Graph, p, shard.SliceOptions{
			MaxActions: sliceActions,
			Profile:    prof,
		})
	}
	wantStatic := planString(cut(nil))
	wantProf := planString(cut(st.Profile))
	if wantStatic == wantProf {
		t.Fatal("profiled plan identical to static on the skewed corpus; the profile is not steering the cut")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 8} {
		runtime.GOMAXPROCS(procs)
		for run := 0; run < 100; run++ {
			if got := planString(cut(nil)); got != wantStatic {
				t.Fatalf("procs=%d run %d: static plan drifted", procs, run)
			}
			if got := planString(cut(st.Profile)); got != wantProf {
				t.Fatalf("procs=%d run %d: profiled plan drifted", procs, run)
			}
		}
	}
	// The profile itself is deterministic too: re-running the profiling
	// replay must reproduce it byte for byte.
	_, st2, err := artc.ReplaySharded(b, artc.Options{}, artc.ShardOptions{
		Target:       target,
		Init:         func(sys *stack.System) error { return artc.Init(sys, b, "") },
		SliceActions: sliceActions,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Profile == nil || !bytes.Equal(st2.Profile.Encode(), st.Profile.Encode()) {
		t.Fatal("profiling replay is not reproducible")
	}
}
