// Resource-cut slicing: a second partitioning phase that splits
// oversized resource-closure components along minimum resource-series
// cuts.
//
// Partition keeps every traced thread whole (rule (a)), which collapses
// traces with shared files into one giant component even though most of
// their ordering is per-resource. Slicing drops rule (a) and recomputes
// the closure: the result is the component's atoms — maximal sets of
// actions connected through stateful resources alone. Two atoms share
// no file-system state, so each side of any atom cut can still replay
// on its own full-snapshot replica; what a cut breaks is only the
// structural program order of threads that span it, and that is exactly
// expressible as synthetic WaitComplete cross edges (ThreadEdge)
// enforced by the existing clock-exchange machinery.
//
// The cut itself is a greedy multilevel/KL-style refinement over the
// atom affinity graph: nodes are atoms, edge weights count the ordering
// constraints a cut would turn into cross edges (thread adjacencies
// plus program-order graph edges), and the balance constraint bounds
// per-slice action counts. Largest-atom-first placement seeds the
// slices; refinement passes then move atoms toward their neighbors
// whenever that reduces the cut without violating balance. Everything
// iterates in deterministic index order, so the plan is a pure function
// of the trace and the options.
package shard

import (
	"sort"

	"rootreplay/internal/core"
)

// SliceOptions control resource-cut slicing of oversized components.
type SliceOptions struct {
	// MaxActions is the target per-slice action count: components larger
	// than this are split into ceil(size/MaxActions) slices when their
	// atoms allow it. Zero disables slicing.
	MaxActions int
	// MaxSlices caps the number of slices per component (0 = no cap).
	MaxSlices int
	// AllowDeviceSync lifts the refusal to cut components containing
	// device-synchronous calls (fsync family). Off, such components stay
	// whole, preserving the byte-identity contract: an fsync's duration
	// is set by device-queue state, which a per-slice private device
	// reproduces differently than the serial replayer's shared one. On,
	// they slice anyway — the merged report is still deterministic, but
	// its virtual times are those of the per-slice devices. Perf corpora
	// opt in; differential corpora must not.
	AllowDeviceSync bool
	// Profile, when set, switches the cut to profile-guided mode: the
	// static thread-adjacency+program-order edge counts are blended with
	// the profile's observed per-atom-pair virtual wait (microseconds)
	// and publish counts, and the balance constraint bounds per-slice
	// observed atom cost instead of action count. The emitted plan is
	// still a pure function of (trace, options, profile).
	Profile *SliceProfile
}

// balanceSlack is the allowed overshoot of a slice's action count over
// the perfect total/K split during refinement.
const balanceSlack = 0.25

// refinePasses bounds the KL refinement sweeps per component.
const refinePasses = 8

// Slice refines a resource-closure partition by splitting components
// larger than opt.MaxActions along resource cuts. The returned plan
// satisfies the same invariants as Partition — every action in exactly
// one component, every stateful edge intra-component — plus the
// synthetic thread-adjacency edges that restore program order across
// cuts. When nothing is split (slicing disabled, no oversized
// component, or oversized components with a single atom), p is returned
// unchanged.
func Slice(an *core.Analysis, g *core.Graph, p *Plan, opt SliceOptions) *Plan {
	if opt.MaxActions <= 0 {
		return p
	}
	oversized := false
	for _, c := range p.Components {
		if len(c) > opt.MaxActions {
			oversized = true
			break
		}
	}
	if !oversized {
		return p
	}

	n := p.N
	// Atoms: the resource closure without thread membership. Computed
	// once over the whole trace; every atom nests inside one component
	// because its rules are a subset of Partition's.
	au := newUF(n)
	resourceClosure(au, an, g)

	// threadPrev[i] is action i's same-thread predecessor (-1 for the
	// first action of a thread). Thread adjacencies are both the cut
	// cost and, after the cut, the synthetic edges.
	threadPrev := make([]int32, n)
	lastOfTID := make(map[int]int32)
	for i := range an.Actions {
		tid := an.Actions[i].Rec.TID
		if prev, ok := lastOfTID[tid]; ok {
			threadPrev[i] = prev
		} else {
			threadPrev[i] = -1
		}
		lastOfTID[tid] = int32(i)
	}

	// Profile lookups, keyed by atom min-action-index. Built once; each
	// component resolves its own atoms against them.
	var prof *profLookup
	if opt.Profile != nil {
		prof = newProfLookup(opt.Profile)
	}

	// sliceOf[i] is action i's slice within its component (0 for
	// components kept whole).
	sliceOf := make([]int32, n)
	split := false
	for _, members := range p.Components {
		if len(members) <= opt.MaxActions {
			continue
		}
		if !opt.AllowDeviceSync && hasDeviceSync(an, members) {
			continue
		}
		if sliceComponent(members, au, g, threadPrev, p.CompOf, opt, prof, sliceOf) {
			split = true
		}
	}
	if !split {
		return p
	}

	// Renumber components by smallest action index, the same invariant
	// Partition establishes, treating (old component, slice) as the key.
	type key struct {
		comp  int32
		slice int32
	}
	compOf := make([]int32, n)
	newOf := make(map[key]int32)
	var orig []int32
	for i := 0; i < n; i++ {
		k := key{p.CompOf[i], sliceOf[i]}
		c, ok := newOf[k]
		if !ok {
			c = int32(len(orig))
			newOf[k] = c
			orig = append(orig, k.comp)
		}
		compOf[i] = c
	}
	components := make([][]int32, len(orig))
	for i := 0; i < n; i++ {
		c := compOf[i]
		components[c] = append(components[c], int32(i))
	}

	out := &Plan{
		N:          n,
		Components: components,
		CompOf:     compOf,
		Orig:       orig,
		EdgeBase:   int32(len(g.Edges)),
	}
	for ei := range g.Edges {
		e := &g.Edges[ei]
		cf, ct := compOf[e.From], compOf[e.To]
		if cf == ct {
			continue
		}
		if !crossEligible(e) {
			// Atoms close over every stateful rule; a stateful edge
			// crossing slices is a slicer bug.
			panic("shard: stateful edge crosses slices")
		}
		out.Cross = append(out.Cross, CrossEdge{Edge: int32(ei), From: cf, To: ct})
	}
	for i := 0; i < n; i++ {
		prev := threadPrev[i]
		if prev < 0 || compOf[prev] == compOf[i] {
			continue
		}
		id := out.EdgeBase + int32(len(out.ThreadCross))
		out.ThreadCross = append(out.ThreadCross, ThreadEdge{From: prev, To: int32(i)})
		out.Cross = append(out.Cross, CrossEdge{Edge: id, From: compOf[prev], To: compOf[i]})
	}
	return out
}

// hasDeviceSync reports whether any of the component's actions drives
// the device synchronously (fsync-family writeback). Slicing's
// byte-identity contract holds only for device-independent replays —
// each slice replica owns a private device, so a call whose duration is
// set by device-queue state would time differently than under the
// serial replayer's single shared device. Such components stay whole.
func hasDeviceSync(an *core.Analysis, members []int32) bool {
	for _, i := range members {
		switch an.Actions[i].Rec.Call {
		case "fsync", "fdatasync", "sync", "msync":
			return true
		}
	}
	return false
}

// profLookup indexes a SliceProfile by atom min-action-index key.
type profLookup struct {
	cost  map[int32]int64    // atom key -> observed CostNs
	pairW map[[2]int32]int64 // (a,b) keys, a<b -> blended extra weight
}

// newProfLookup converts profile entries into cut-cost units: a pair's
// extra affinity is its observed virtual wait in microseconds plus its
// publish count, so re-cutting an edge that stalled the downstream
// slice is penalized in proportion to the stall it caused.
func newProfLookup(p *SliceProfile) *profLookup {
	l := &profLookup{
		cost:  make(map[int32]int64, len(p.Atoms)),
		pairW: make(map[[2]int32]int64, len(p.Pairs)),
	}
	for _, a := range p.Atoms {
		l.cost[a.Atom] = a.CostNs
	}
	for _, pr := range p.Pairs {
		l.pairW[[2]int32{pr.A, pr.B}] = pr.WaitNs/1000 + pr.Publishes
	}
	return l
}

// sliceComponent partitions one oversized component's atoms into
// balanced slices minimizing the ordering cut, writing each member's
// slice into sliceOf. Reports whether the component was actually split.
func sliceComponent(members []int32, au *uf, g *core.Graph, threadPrev []int32,
	compOf []int32, opt SliceOptions, prof *profLookup, sliceOf []int32) bool {
	// Dense atom ids in first-occurrence (== smallest action) order.
	// Because members ascend, an atom's first occurrence is its smallest
	// action index — the key profiles name atoms by (atomKey).
	atomID := make(map[int32]int32)
	atomOf := make(map[int32]int32, len(members)) // action -> dense atom
	var atomSize []int32
	var atomKey []int32
	for _, a := range members {
		r := au.find(a)
		id, ok := atomID[r]
		if !ok {
			id = int32(len(atomSize))
			atomID[r] = id
			atomSize = append(atomSize, 0)
			atomKey = append(atomKey, a)
		}
		atomOf[a] = id
		atomSize[id]++
	}
	na := len(atomSize)
	if na < 2 {
		return false // one atom: nothing to cut without breaking state
	}
	k := (len(members) + opt.MaxActions - 1) / opt.MaxActions
	if opt.MaxSlices > 0 && k > opt.MaxSlices {
		k = opt.MaxSlices
	}
	if k > na {
		k = na
	}
	if k < 2 {
		return false
	}

	// Affinity: the ordering constraints a cut between two atoms turns
	// into cross edges — thread adjacencies and program-order graph
	// edges between them.
	type wkey struct{ a, b int32 }
	weight := make(map[wkey]int64)
	addW := func(a, b int32) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		weight[wkey{a, b}]++
	}
	comp := compOf[members[0]]
	for _, i := range members {
		if prev := threadPrev[i]; prev >= 0 && compOf[prev] == comp {
			addW(atomOf[prev], atomOf[i])
		}
	}
	for ei := range g.Edges {
		e := &g.Edges[ei]
		if !crossEligible(e) {
			continue // stateful edges are intra-atom by construction
		}
		if compOf[e.From] != comp || compOf[e.To] != comp {
			continue
		}
		addW(atomOf[int32(e.From)], atomOf[int32(e.To)])
	}
	// Profile-guided mode: (1) pairs that stalled the profiling run gain
	// affinity proportional to the observed wait, so refinement pulls
	// them onto one slice and routes the cut through quiet edges
	// instead; (2) balance switches from action counts to observed atom
	// cost, so a slice full of cheap actions can absorb more of them
	// while a hot atom's slice stays small. Pairs the profile never saw
	// keep their static edge-count weight.
	atomCost := make([]int64, na)
	for a := int32(0); a < int32(na); a++ {
		atomCost[a] = int64(atomSize[a])
	}
	if prof != nil {
		for a := int32(0); a < int32(na); a++ {
			if c, ok := prof.cost[atomKey[a]]; ok && c > 0 {
				// Keep the action count as a floor so zero-cost atoms
				// still weigh something and ties stay stable.
				atomCost[a] = c + int64(atomSize[a])
			}
		}
		for k := range weight {
			ka, kb := atomKey[k.a], atomKey[k.b]
			if ka > kb {
				ka, kb = kb, ka
			}
			if extra, ok := prof.pairW[[2]int32{ka, kb}]; ok {
				weight[k] += extra
			}
		}
	}
	// Adjacency lists in deterministic neighbor order.
	type nbr struct {
		atom int32
		w    int64
	}
	pairs := make([]wkey, 0, len(weight))
	for k := range weight {
		pairs = append(pairs, k)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	adj := make([][]nbr, na)
	for _, p := range pairs {
		w := weight[p]
		adj[p.a] = append(adj[p.a], nbr{atom: p.b, w: w})
		adj[p.b] = append(adj[p.b], nbr{atom: p.a, w: w})
	}

	// Seed: costliest atoms first onto the lightest slice (ties to the
	// lowest index on both sides). atomCost equals the action count in
	// static mode, so the profile-off seeding is unchanged.
	order := make([]int32, na)
	for i := range order {
		order[i] = int32(i)
	}
	for i := 1; i < na; i++ { // insertion sort: stable, deterministic
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if atomCost[a] > atomCost[b] || (atomCost[a] == atomCost[b] && a < b) {
				break
			}
			order[j-1], order[j] = b, a
		}
	}
	assign := make([]int32, na)
	load := make([]int64, k)
	for _, a := range order {
		best := 0
		for s := 1; s < k; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		assign[a] = int32(best)
		load[best] += atomCost[a]
	}

	// KL-style refinement: move atoms toward their neighbors while the
	// cut shrinks and the balance bound holds.
	var total int64
	for _, c := range atomCost {
		total += c
	}
	limit := int64(float64(total)/float64(k)*(1+balanceSlack)) + 1
	gainTo := make([]int64, k)
	for pass := 0; pass < refinePasses; pass++ {
		moved := false
		for a := int32(0); a < int32(na); a++ {
			if len(adj[a]) == 0 {
				continue
			}
			for s := range gainTo {
				gainTo[s] = 0
			}
			for _, nb := range adj[a] {
				gainTo[assign[nb.atom]] += nb.w
			}
			cur := assign[a]
			// Tie-breaking is explicitly deterministic: a move needs
			// strictly positive gain over staying put, and among equal
			// gains the lowest slice index wins because slices scan in
			// ascending order and later candidates must strictly beat
			// bestGain to displace an earlier one.
			best, bestGain := cur, int64(0)
			for s := int32(0); s < int32(k); s++ {
				if s == cur || load[s]+atomCost[a] > limit {
					continue
				}
				if gain := gainTo[s] - gainTo[cur]; gain > bestGain {
					best, bestGain = s, gain
				}
			}
			if best != cur {
				load[cur] -= atomCost[a]
				load[best] += atomCost[a]
				assign[a] = best
				moved = true
			}
		}
		if !moved {
			break
		}
	}

	// Drop empty slices, renumbering survivors in index order; a
	// collapse to one slice means the cut was not worth taking.
	remap := make([]int32, k)
	next := int32(0)
	for s := 0; s < k; s++ {
		if load[s] > 0 {
			remap[s] = next
			next++
		} else {
			remap[s] = -1
		}
	}
	if next < 2 {
		return false
	}
	for _, i := range members {
		sliceOf[i] = remap[assign[atomOf[i]]]
	}
	return true
}
