// Package shard partitions a compiled trace's dependency graph into
// replica-isolated components for parallel replay.
//
// The unit of isolation is the resource-closure component: the
// union-find closure of actions over (a) traced-thread membership, (b)
// every dependency edge backed by a real resource (files, paths,
// descriptors, AIO control blocks), (c) every resource's full action
// series, and (d) the canonical path names an action resolves, whether
// or not the call succeeded. Two actions in different components
// therefore share no file-system state at all: no file, no directory
// entry, no descriptor, no metadata block. Each component can replay on
// its own full-snapshot replica of the target system and observe
// exactly the state it would have observed on a shared system.
//
// The only edges allowed to cross components are the synthetic ordering
// chains — program_seq and temporal adjacency, both carrying a KProgram
// (or zero) resource. They order actions without sharing state, so they
// are the one place a resource cut is sound: cutting any stateful
// resource would put its state on two replicas and break replay
// semantics, which is why oversized components connected through real
// resources are not split further. Cross edges are registered explicitly
// and enforced at replay time by clock-exchange barriers (internal/artc).
package shard

import (
	"encoding/binary"
	"hash/fnv"
	gopath "path"

	"rootreplay/internal/core"
)

// CrossEdge is one dependency edge whose endpoints replay on different
// components.
type CrossEdge struct {
	// Edge indexes the graph's Edges slice.
	Edge int32
	// From and To are the component indices of the edge's endpoints.
	From, To int32
}

// ThreadEdge is one synthetic program-order edge created by slicing:
// From and To are consecutive actions of one traced thread placed on
// different slices, so the thread's sequential order — enforced
// structurally when the thread replays whole — must be enforced by a
// clock-exchange barrier instead. The edge behaves like a WaitComplete
// edge: To may not start before From completes.
type ThreadEdge struct {
	From, To int32
}

// Plan is a partition of a graph's actions into replica-isolated
// components plus the explicit cross-component edges.
type Plan struct {
	// N is the number of actions partitioned.
	N int
	// Components holds each component's action indices in trace order.
	// Components are ordered by their smallest action index.
	Components [][]int32
	// CompOf maps each action to its component index.
	CompOf []int32
	// Cross lists every cross-component edge, ordered by edge index.
	// Entries with Edge >= EdgeBase are synthetic thread-adjacency edges
	// (see ThreadCross); the rest index the graph's Edges slice.
	Cross []CrossEdge
	// Orig maps each component to the resource-closure component it was
	// cut from; nil when no component was sliced. Replay reporting uses
	// it so a sliced single-component trace still attributes every span
	// to component 0, exactly like the serial replayer.
	Orig []int32
	// EdgeBase is the graph's edge count when slicing ran; synthetic
	// edge i is identified as EdgeBase+i across the plan.
	EdgeBase int32
	// ThreadCross lists the synthetic program-order edges slicing
	// created, in ascending To order.
	ThreadCross []ThreadEdge
}

// Sliced reports whether resource-cut slicing split any component.
func (p *Plan) Sliced() bool { return p.Orig != nil }

// Fingerprint hashes the partition — component membership and every
// cross edge — into a stable 64-bit identity. Two plans assign the same
// fingerprint iff they place every action in the same component and
// register the same cross edges, so CI can assert that a profiled
// re-cut actually moved the cut without diffing whole plans.
func (p *Plan) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w32 := func(v int32) {
		binary.LittleEndian.PutUint32(buf[:4], uint32(v))
		h.Write(buf[:4])
	}
	w32(int32(p.N))
	for _, c := range p.CompOf {
		w32(c)
	}
	w32(p.EdgeBase)
	for _, ce := range p.Cross {
		w32(ce.Edge)
		w32(ce.From)
		w32(ce.To)
	}
	for _, te := range p.ThreadCross {
		w32(te.From)
		w32(te.To)
	}
	return h.Sum64()
}

// EdgeEnds returns the action endpoints of a cross edge, synthetic or
// not.
func (p *Plan) EdgeEnds(g *core.Graph, edge int32) (from, to int32) {
	if int(edge) < len(g.Edges) {
		e := &g.Edges[edge]
		return int32(e.From), int32(e.To)
	}
	te := p.ThreadCross[edge-p.EdgeBase]
	return te.From, te.To
}

// Stats summarizes a plan for reporting.
type Stats struct {
	Components int
	CrossEdges int
	// Largest is the action count of the biggest component.
	Largest int
	// Sliced counts resource-closure components that were split;
	// Synthetic the thread-adjacency edges the splits created.
	Sliced    int
	Synthetic int
}

// Stats computes summary counts.
func (p *Plan) Stats() Stats {
	st := Stats{Components: len(p.Components), CrossEdges: len(p.Cross), Synthetic: len(p.ThreadCross)}
	for _, c := range p.Components {
		if len(c) > st.Largest {
			st.Largest = len(c)
		}
	}
	if p.Orig != nil {
		slices := make(map[int32]int)
		for _, o := range p.Orig {
			slices[o]++
		}
		for _, n := range slices {
			if n > 1 {
				st.Sliced++
			}
		}
	}
	return st
}

// crossEligible reports whether an edge orders without sharing state:
// program_seq chains carry the synthetic KProgram resource and temporal
// adjacency edges carry the zero ResourceID (whose Kind is KProgram).
// Every other edge is backed by a stateful resource and must stay
// inside one component.
func crossEligible(e *core.Edge) bool { return e.Res.Kind == core.KProgram }

// uf is a union-find over action indices (path halving, union by size).
type uf struct {
	parent []int32
	size   []int32
}

func newUF(n int) *uf {
	u := &uf{parent: make([]int32, n), size: make([]int32, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
		u.size[i] = 1
	}
	return u
}

func (u *uf) find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

func (u *uf) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}

// Partition computes the resource-closure partition of the analysis
// under the given dependency graph. The graph must be one built over
// the same analysis (the ARTC graph for any mode set, the temporal
// graph, or the unconstrained graph).
func Partition(an *core.Analysis, g *core.Graph) *Plan {
	n := len(an.Actions)
	u := newUF(n)

	// (a) Thread membership: a traced thread replays as one simulated
	// thread, so all its actions share a component.
	lastOfTID := make(map[int]int32)
	for i := range an.Actions {
		tid := an.Actions[i].Rec.TID
		if prev, ok := lastOfTID[tid]; ok {
			u.union(prev, int32(i))
		}
		lastOfTID[tid] = int32(i)
	}

	resourceClosure(u, an, g)

	// Number components by smallest member (== first root encountered in
	// trace order) and gather members in trace order.
	compOf := make([]int32, n)
	rootComp := make(map[int32]int32)
	var sizes []int32
	for i := 0; i < n; i++ {
		r := u.find(int32(i))
		c, ok := rootComp[r]
		if !ok {
			c = int32(len(sizes))
			rootComp[r] = c
			sizes = append(sizes, 0)
		}
		compOf[i] = c
		sizes[c]++
	}
	components := make([][]int32, len(sizes))
	for c, sz := range sizes {
		components[c] = make([]int32, 0, sz)
	}
	for i := 0; i < n; i++ {
		c := compOf[i]
		components[c] = append(components[c], int32(i))
	}

	var cross []CrossEdge
	for ei := range g.Edges {
		e := &g.Edges[ei]
		cf, ct := compOf[e.From], compOf[e.To]
		if cf == ct {
			continue
		}
		if !crossEligible(e) {
			// Rules (b)-(d) united the endpoints of every stateful edge;
			// a stateful edge crossing components is a partition bug.
			panic("shard: stateful edge crosses components")
		}
		cross = append(cross, CrossEdge{Edge: int32(ei), From: cf, To: ct})
	}

	return &Plan{N: n, Components: components, CompOf: compOf, Cross: cross}
}

// resourceClosure applies the stateful union rules (b)-(d) — everything
// except thread membership — to u. It is shared by Partition and the
// slicer's atom computation: an atom is the resource closure of an
// action without the thread rule, so two atoms share no file-system
// state and can replay on separate replicas even when one traced thread
// spans both.
func resourceClosure(u *uf, an *core.Analysis, g *core.Graph) {
	// (b) Stateful dependency edges.
	for ei := range g.Edges {
		e := &g.Edges[ei]
		if !crossEligible(e) {
			u.union(int32(e.From), int32(e.To))
		}
	}

	// (c) Resource series: any two actions touching the same resource —
	// same file, path generation, descriptor, or AIOCB — share state and
	// therefore a component, even in modes whose graph drops the edge.
	unionSeries := func(r core.ResourceID, series []int) {
		if r.Kind == core.KProgram || len(series) < 2 {
			return
		}
		first := int32(series[0])
		for _, a := range series[1:] {
			u.union(first, int32(a))
		}
	}
	if an.Resources != nil {
		for k, r := range an.Resources {
			unionSeries(r, an.SeriesList[k])
		}
	} else {
		for r, series := range an.Series {
			unionSeries(r, series)
		}
	}

	// (d) Canonical path names, successful or not. A failed call carries
	// no touches, but its outcome (ENOENT vs EEXIST vs success) depends
	// on whether the name — or its parent directory — exists when it
	// runs, so it must replay next to every action that can affect that
	// name. Uniting on the name (and its parent) over-approximates
	// safely; for successful calls the path resources of rule (c) make
	// most of these unions redundant.
	byName := make(map[string]int32)
	uniteName := func(name string, act int32) {
		if name == "" || name == "/" {
			return
		}
		if prev, ok := byName[name]; ok {
			u.union(prev, act)
		} else {
			byName[name] = act
		}
	}
	for i := range an.Actions {
		act := &an.Actions[i]
		ai := int32(i)
		if p := act.CanonPath; p != "" && act.Rec.Call != "symlink" {
			uniteName(p, ai)
			uniteName(gopath.Dir(p), ai)
		}
		if p := act.CanonPath2; p != "" {
			uniteName(p, ai)
			uniteName(gopath.Dir(p), ai)
		}
		// A failed call on a then-valid descriptor is remapped through
		// its hint resource; keep it with that descriptor's series.
		if act.FDHint != nil {
			if series, ok := an.Series[*act.FDHint]; ok && len(series) > 0 {
				u.union(int32(series[0]), ai)
			}
		}
	}
}

// Clusters groups components that are connected through cross edges.
// Components in one cluster must replay concurrently (their clocks
// exchange at barriers); distinct clusters are fully independent work
// units. Each cluster lists component indices in ascending order, and
// clusters are ordered by their smallest component.
func (p *Plan) Clusters() [][]int32 {
	u := newUF(len(p.Components))
	for _, ce := range p.Cross {
		u.union(ce.From, ce.To)
	}
	var clusters [][]int32
	rootCluster := make(map[int32]int)
	for c := range p.Components {
		r := u.find(int32(c))
		k, ok := rootCluster[r]
		if !ok {
			k = len(clusters)
			rootCluster[r] = k
			clusters = append(clusters, nil)
		}
		clusters[k] = append(clusters[k], int32(c))
	}
	return clusters
}
