// SliceProfile: observed replay weights for profile-guided re-slicing.
//
// A sliced replay measures, per cross-slice edge, how long the
// downstream action waited for the upstream clock (in virtual time) and
// how many publications the edge carried; per atom it measures the
// total in-call virtual time of the atom's actions. Both are pure
// functions of the virtual execution — a parked waiter's wait is the
// published completion instant minus its own park instant, and the same
// subtraction happens on the lock-free mirror path — so a profile built
// from one replay is byte-identical across hosts and GOMAXPROCS
// settings, and a plan cut from (trace, options, profile) is still a
// pure function of its inputs. Host wall-clock stall time is reported
// for humans (artc.CoordStats) but never enters the profile.
//
// Atoms are named by their smallest action index, which is stable
// across runs and across static/profiled cuts because atoms depend only
// on the resource closure, never on the cut.
package shard

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"rootreplay/internal/core"
)

// ProfileAtom is one atom's observed cost.
type ProfileAtom struct {
	// Atom is the atom's smallest action index.
	Atom int32
	// Actions is the atom's action count.
	Actions int32
	// CostNs is the summed in-call virtual time (DoneAt-IssueAt) of the
	// atom's actions, in nanoseconds.
	CostNs int64
}

// ProfilePair is the observed cross-slice traffic between two atoms.
type ProfilePair struct {
	// A and B are the atoms' smallest action indices, A < B.
	A, B int32
	// WaitNs is the total virtual time downstream actions spent waiting
	// on cross edges between the atoms, in nanoseconds.
	WaitNs int64
	// Publishes counts clock publications carried by edges between the
	// atoms.
	Publishes int64
}

// SliceProfile is the persistable result of profiling one sliced
// replay: per-atom costs and per-atom-pair cross-edge traffic, both in
// canonical (ascending) order so the encoding is deterministic.
type SliceProfile struct {
	Atoms []ProfileAtom
	Pairs []ProfilePair
}

// ProfileFormatVersion is the current profile artifact format version.
const ProfileFormatVersion = 1

// profMagic opens every encoded slice profile.
var profMagic = [8]byte{'A', 'R', 'T', 'C', 'P', 'R', 'O', 'F'}

// Encode serializes the profile deterministically: magic, version,
// varint-packed atom and pair tables, CRC-32C footer (the same
// corruption contract as the binary benchmark artifact).
func (p *SliceProfile) Encode() []byte {
	out := make([]byte, 0, 16+10*len(p.Atoms)+14*len(p.Pairs))
	out = append(out, profMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, ProfileFormatVersion)
	out = binary.AppendUvarint(out, uint64(len(p.Atoms)))
	for _, a := range p.Atoms {
		out = binary.AppendUvarint(out, uint64(a.Atom))
		out = binary.AppendUvarint(out, uint64(a.Actions))
		out = binary.AppendUvarint(out, uint64(a.CostNs))
	}
	out = binary.AppendUvarint(out, uint64(len(p.Pairs)))
	for _, pr := range p.Pairs {
		out = binary.AppendUvarint(out, uint64(pr.A))
		out = binary.AppendUvarint(out, uint64(pr.B))
		out = binary.AppendUvarint(out, uint64(pr.WaitNs))
		out = binary.AppendUvarint(out, uint64(pr.Publishes))
	}
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, profCRC))
	return out
}

var profCRC = crc32.MakeTable(crc32.Castagnoli)

// profReader decodes the varint stream with bounds checking.
type profReader struct {
	data []byte
	off  int
	err  error
}

func (r *profReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("shard: profile truncated at offset %d reading %s", r.off, what)
		return 0
	}
	r.off += n
	return v
}

// DecodeProfile parses an encoded slice profile, validating the magic,
// version, checksum, and canonical ordering. Any failure returns an
// error and no profile; callers treat that as a corrupt artifact and
// fall back to the static cut.
func DecodeProfile(data []byte) (*SliceProfile, error) {
	if len(data) < len(profMagic)+4+4 {
		return nil, fmt.Errorf("shard: profile truncated: %d bytes", len(data))
	}
	for i, b := range profMagic {
		if data[i] != b {
			return nil, fmt.Errorf("shard: not a slice profile (bad magic)")
		}
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != ProfileFormatVersion {
		return nil, fmt.Errorf("shard: profile format version %d (this build reads %d)", v, ProfileFormatVersion)
	}
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(data[:len(data)-4], profCRC); got != want {
		return nil, fmt.Errorf("shard: profile checksum mismatch: footer says crc32c=%08x, content is %08x", want, got)
	}
	r := &profReader{data: data[:len(data)-4], off: len(profMagic) + 4}
	p := &SliceProfile{}
	na := r.uvarint("atom count")
	if r.err == nil && na > uint64(len(data)) {
		return nil, fmt.Errorf("shard: profile atom count %d exceeds payload", na)
	}
	prevAtom := int64(-1)
	for i := uint64(0); i < na && r.err == nil; i++ {
		a := ProfileAtom{
			Atom:    int32(r.uvarint("atom id")),
			Actions: int32(r.uvarint("atom actions")),
			CostNs:  int64(r.uvarint("atom cost")),
		}
		if r.err == nil && int64(a.Atom) <= prevAtom {
			return nil, fmt.Errorf("shard: profile atoms out of order at entry %d", i)
		}
		prevAtom = int64(a.Atom)
		p.Atoms = append(p.Atoms, a)
	}
	np := r.uvarint("pair count")
	if r.err == nil && np > uint64(len(data)) {
		return nil, fmt.Errorf("shard: profile pair count %d exceeds payload", np)
	}
	prevA, prevB := int64(-1), int64(-1)
	for i := uint64(0); i < np && r.err == nil; i++ {
		pr := ProfilePair{
			A:         int32(r.uvarint("pair a")),
			B:         int32(r.uvarint("pair b")),
			WaitNs:    int64(r.uvarint("pair wait")),
			Publishes: int64(r.uvarint("pair publishes")),
		}
		if r.err == nil {
			if pr.A >= pr.B {
				return nil, fmt.Errorf("shard: profile pair %d not canonical (a=%d b=%d)", i, pr.A, pr.B)
			}
			if int64(pr.A) < prevA || (int64(pr.A) == prevA && int64(pr.B) <= prevB) {
				return nil, fmt.Errorf("shard: profile pairs out of order at entry %d", i)
			}
		}
		prevA, prevB = int64(pr.A), int64(pr.B)
		p.Pairs = append(p.Pairs, pr)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("shard: profile has %d trailing bytes", len(r.data)-r.off)
	}
	return p, nil
}

// BuildProfile folds one sliced replay's measurements into a profile.
// edgeWaitNs and edgePublished are indexed by the plan's Cross slice
// (virtual nanoseconds waited on, and publications carried by, each
// cross edge); issueAt and doneAt are the replay's per-action virtual
// timestamps. The atoms are recomputed from the resource closure — the
// same computation the slicer runs — so the profile keys match any
// future cut of the same trace.
func BuildProfile(an *core.Analysis, g *core.Graph, plan *Plan,
	edgeWaitNs, edgePublished []int64, issueAt, doneAt []time.Duration) *SliceProfile {
	n := plan.N
	au := newUF(n)
	resourceClosure(au, an, g)

	// Atom ids: smallest member index per closure root. Ascending scan
	// means the first occurrence of a root is its smallest member.
	atomOf := make([]int32, n)
	minIdx := make(map[int32]int32)
	var atoms []ProfileAtom
	for i := 0; i < n; i++ {
		r := au.find(int32(i))
		id, ok := minIdx[r]
		if !ok {
			id = int32(i)
			minIdx[r] = id
			atoms = append(atoms, ProfileAtom{Atom: id})
		}
		atomOf[i] = id
	}
	slot := make(map[int32]int, len(atoms))
	for k := range atoms {
		slot[atoms[k].Atom] = k
	}
	for i := 0; i < n; i++ {
		a := &atoms[slot[atomOf[i]]]
		a.Actions++
		if d := doneAt[i] - issueAt[i]; d > 0 {
			a.CostNs += int64(d)
		}
	}

	pairs := make(map[[2]int32]*ProfilePair)
	for ci, ce := range plan.Cross {
		var wait, pub int64
		if ci < len(edgeWaitNs) {
			wait = edgeWaitNs[ci]
		}
		if ci < len(edgePublished) {
			pub = edgePublished[ci]
		}
		if wait == 0 && pub == 0 {
			continue
		}
		from, to := plan.EdgeEnds(g, ce.Edge)
		a, b := atomOf[from], atomOf[to]
		if a == b {
			continue // same atom: nothing for a future cut to weigh
		}
		if a > b {
			a, b = b, a
		}
		k := [2]int32{a, b}
		pr, ok := pairs[k]
		if !ok {
			pr = &ProfilePair{A: a, B: b}
			pairs[k] = pr
		}
		pr.WaitNs += wait
		pr.Publishes += pub
	}
	p := &SliceProfile{Atoms: atoms}
	for _, pr := range pairs {
		p.Pairs = append(p.Pairs, *pr)
	}
	sort.Slice(p.Pairs, func(i, j int) bool {
		if p.Pairs[i].A != p.Pairs[j].A {
			return p.Pairs[i].A < p.Pairs[j].A
		}
		return p.Pairs[i].B < p.Pairs[j].B
	})
	return p
}
