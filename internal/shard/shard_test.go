package shard_test

import (
	"fmt"
	"math/rand"
	"testing"

	"rootreplay/internal/artc"
	"rootreplay/internal/core"
	"rootreplay/internal/magritte"
	"rootreplay/internal/shard"
	"rootreplay/internal/sim"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
)

// checkPlan asserts the partition invariants: every action in exactly
// one component, components disjoint and in trace order, CompOf
// consistent, and every graph edge either intra-component or a
// registered cross edge ordered by edge index.
func checkPlan(t *testing.T, g *core.Graph, p *shard.Plan) {
	t.Helper()
	if p.N != g.N {
		t.Fatalf("plan N = %d, graph N = %d", p.N, g.N)
	}
	if len(p.CompOf) != p.N {
		t.Fatalf("CompOf has %d entries for %d actions", len(p.CompOf), p.N)
	}
	seen := make([]bool, p.N)
	for c, members := range p.Components {
		if len(members) == 0 {
			t.Fatalf("component %d is empty", c)
		}
		prev := int32(-1)
		for _, a := range members {
			if a < 0 || int(a) >= p.N {
				t.Fatalf("component %d holds out-of-range action %d", c, a)
			}
			if seen[a] {
				t.Fatalf("action %d appears in two components", a)
			}
			seen[a] = true
			if a <= prev {
				t.Fatalf("component %d members not in trace order: %d after %d", c, a, prev)
			}
			prev = a
			if p.CompOf[a] != int32(c) {
				t.Fatalf("CompOf[%d] = %d, but action listed in component %d", a, p.CompOf[a], c)
			}
		}
	}
	for a, ok := range seen {
		if !ok {
			t.Fatalf("action %d in no component", a)
		}
	}
	// Components must be ordered by smallest member, and component c's
	// smallest member must precede component c+1's.
	for c := 1; c < len(p.Components); c++ {
		if p.Components[c][0] <= p.Components[c-1][0] {
			t.Fatalf("components %d and %d out of order (min members %d, %d)",
				c-1, c, p.Components[c-1][0], p.Components[c][0])
		}
	}
	// Every edge is intra-component or a registered cross edge.
	cross := make(map[int32]shard.CrossEdge, len(p.Cross))
	prevEdge := int32(-1)
	for _, ce := range p.Cross {
		if ce.Edge <= prevEdge {
			t.Fatalf("cross edges not ordered by edge index: %d after %d", ce.Edge, prevEdge)
		}
		prevEdge = ce.Edge
		cross[ce.Edge] = ce
	}
	for ei := range g.Edges {
		e := &g.Edges[ei]
		cf, ct := p.CompOf[e.From], p.CompOf[e.To]
		ce, registered := cross[int32(ei)]
		if cf == ct {
			if registered {
				t.Fatalf("edge %d (%d->%d) is intra-component but registered as cross", ei, e.From, e.To)
			}
			continue
		}
		if !registered {
			t.Fatalf("edge %d (%d->%d) crosses components %d->%d but is not registered",
				ei, e.From, e.To, cf, ct)
		}
		if ce.From != cf || ce.To != ct {
			t.Fatalf("cross edge %d registered as %d->%d, actual %d->%d", ei, ce.From, ce.To, cf, ct)
		}
		if e.Res.Kind != core.KProgram {
			t.Fatalf("edge %d crosses components but carries stateful resource %v", ei, e.Res)
		}
	}
	st := p.Stats()
	if st.Components != len(p.Components) || st.CrossEdges != len(p.Cross) {
		t.Fatalf("stats %+v inconsistent with plan", st)
	}
}

// genIsolated traces a program of nComp fully independent groups: each
// group has its own thread and touches only its own directory, so the
// resource-closure partition must keep the groups apart.
func genIsolated(t *testing.T, nComp, opsPer int) (*trace.Trace, *snapshot.Snapshot) {
	t.Helper()
	k := sim.NewKernel()
	sys := stack.New(k, stack.Config{
		Name: "gen", Platform: stack.Linux, Profile: stack.Ext4,
		Device: stack.DeviceSSD, Scheduler: stack.SchedNoop,
	})
	for c := 0; c < nComp; c++ {
		if err := sys.SetupMkdirAll(fmt.Sprintf("/comp%d/sub", c)); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 3; f++ {
			if err := sys.SetupCreate(fmt.Sprintf("/comp%d/f%d", c, f), 1<<16); err != nil {
				t.Fatal(err)
			}
		}
	}
	snap := snapshot.Capture(sys)
	tr := &trace.Trace{Platform: string(stack.Linux)}
	sys.SetTracer(func(r *trace.Record) { tr.Records = append(tr.Records, r) })
	for c := 0; c < nComp; c++ {
		c := c
		rng := rand.New(rand.NewSource(int64(c)*104729 + 1))
		k.Spawn(fmt.Sprintf("comp-%d", c), func(th *sim.Thread) {
			dir := fmt.Sprintf("/comp%d", c)
			for i := 0; i < opsPer; i++ {
				switch rng.Intn(5) {
				case 0:
					fd, errno := sys.Open(th, fmt.Sprintf("%s/f%d", dir, rng.Intn(3)), trace.ORdonly, 0)
					if errno == 0 {
						sys.Pread(th, fd, 4096, int64(rng.Intn(8))*4096)
						sys.Close(th, fd)
					}
				case 1:
					p := fmt.Sprintf("%s/sub/new%d", dir, i)
					fd, errno := sys.Open(th, p, trace.OWronly|trace.OCreat, 0o644)
					if errno == 0 {
						sys.Write(th, fd, 1024)
						sys.Close(th, fd)
					}
				case 2:
					sys.Stat(th, fmt.Sprintf("%s/f%d", dir, rng.Intn(3)))
				case 3:
					sys.Stat(th, fmt.Sprintf("%s/missing%d", dir, rng.Intn(2)))
				case 4:
					fd, errno := sys.Open(th, fmt.Sprintf("%s/f0", dir), trace.ORdwr, 0)
					if errno == 0 {
						sys.Pwrite(th, fd, 2048, int64(rng.Intn(4))*4096)
						sys.Fsync(th, fd)
						sys.Close(th, fd)
					}
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	tr.Renumber()
	return tr, snap
}

func TestPartitionIsolatedGroups(t *testing.T) {
	const nComp = 5
	tr, snap := genIsolated(t, nComp, 60)
	b, err := artc.Compile(tr, snap, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	p := shard.Partition(b.Analysis, b.Graph)
	checkPlan(t, b.Graph, p)
	if got := len(p.Components); got != nComp {
		t.Fatalf("got %d components for %d isolated groups", got, nComp)
	}
	if len(p.Cross) != 0 {
		t.Fatalf("isolated groups produced %d cross edges", len(p.Cross))
	}
	// With no cross edges every component is its own cluster.
	if cl := p.Clusters(); len(cl) != nComp {
		t.Fatalf("got %d clusters, want %d", len(cl), nComp)
	}
}

func TestPartitionProgramSeqCrossEdges(t *testing.T) {
	const nComp = 4
	tr, snap := genIsolated(t, nComp, 40)
	modes := core.ModeSet{ProgramSeq: true}
	b, err := artc.Compile(tr, snap, modes)
	if err != nil {
		t.Fatal(err)
	}
	g := b.GraphFor(modes)
	p := shard.Partition(b.Analysis, g)
	checkPlan(t, g, p)
	if got := len(p.Components); got != nComp {
		t.Fatalf("got %d components, want %d (program edges must not merge groups)", got, nComp)
	}
	if len(p.Cross) == 0 {
		t.Fatal("program_seq chain over interleaved groups produced no cross edges")
	}
	// The program chain connects everything: one cluster.
	if cl := p.Clusters(); len(cl) != 1 {
		t.Fatalf("got %d clusters, want 1 (chain links all components)", len(cl))
	}
}

func TestPartitionTemporalCrossEdges(t *testing.T) {
	const nComp = 3
	tr, snap := genIsolated(t, nComp, 30)
	b, err := artc.Compile(tr, snap, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	g := core.TemporalGraph(b.Analysis)
	p := shard.Partition(b.Analysis, g)
	checkPlan(t, g, p)
	if got := len(p.Components); got != nComp {
		t.Fatalf("got %d components, want %d", got, nComp)
	}
	if len(p.Cross) == 0 {
		t.Fatal("temporal adjacency over interleaved groups produced no cross edges")
	}
}

// TestPartitionSharedState checks the other direction: groups coupled
// through a shared file, a shared descriptor handoff, or a contended
// path name must land in one component.
func TestPartitionSharedState(t *testing.T) {
	k := sim.NewKernel()
	sys := stack.New(k, stack.Config{
		Name: "gen", Platform: stack.Linux, Profile: stack.Ext4,
		Device: stack.DeviceSSD, Scheduler: stack.SchedNoop,
	})
	if err := sys.SetupMkdirAll("/a"); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetupMkdirAll("/b"); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetupCreate("/a/shared", 1<<16); err != nil {
		t.Fatal(err)
	}
	snap := snapshot.Capture(sys)
	tr := &trace.Trace{Platform: string(stack.Linux)}
	sys.SetTracer(func(r *trace.Record) { tr.Records = append(tr.Records, r) })
	done := sim.NewWaitGroup(k)
	done.Add(1)
	k.Spawn("writer", func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/a/shared", trace.ORdwr, 0)
		sys.Pwrite(th, fd, 4096, 0)
		sys.Close(th, fd)
		done.Done()
	})
	k.Spawn("reader", func(th *sim.Thread) {
		done.Wait(th)
		// Same inode through a different directory entry is still the
		// same resource.
		fd, _ := sys.Open(th, "/a/shared", trace.ORdonly, 0)
		sys.Pread(th, fd, 4096, 0)
		sys.Close(th, fd)
		sys.Stat(th, "/b/only-name") // fails; names /b, private below
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	tr.Renumber()
	b, err := artc.Compile(tr, snap, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	p := shard.Partition(b.Analysis, b.Graph)
	checkPlan(t, b.Graph, p)
	if len(p.Components) != 1 {
		t.Fatalf("shared-file groups split into %d components", len(p.Components))
	}
}

// TestPartitionMagritte runs the invariants over real Magritte traces
// under every graph flavor the replayer supports.
func TestPartitionMagritte(t *testing.T) {
	for _, name := range []string{"itunes_startsmall1", "pages_docphoto15"} {
		spec, ok := magritte.SpecByName(name)
		if !ok {
			t.Fatalf("no spec %s", name)
		}
		gen, err := magritte.Generate(spec, magritte.GenOptions{Scale: 0.05, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		b, err := artc.Compile(gen.Trace, gen.Snapshot, core.DefaultModes())
		if err != nil {
			t.Fatal(err)
		}
		graphs := map[string]*core.Graph{
			"artc":          b.Graph,
			"temporal":      core.TemporalGraph(b.Analysis),
			"unconstrained": core.UnconstrainedGraph(b.Analysis),
			"program":       b.GraphFor(core.ModeSet{ProgramSeq: true}),
		}
		for gname, g := range graphs {
			p := shard.Partition(b.Analysis, g)
			checkPlan(t, g, p)
			t.Logf("%s/%s: %d actions, %d components, %d cross edges, largest %d",
				name, gname, p.N, len(p.Components), len(p.Cross), p.Stats().Largest)
		}
	}
}

// TestPartitionDeterministic: same inputs, same plan.
func TestPartitionDeterministic(t *testing.T) {
	tr, snap := genIsolated(t, 4, 50)
	b, err := artc.Compile(tr, snap, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	p1 := shard.Partition(b.Analysis, b.Graph)
	p2 := shard.Partition(b.Analysis, b.Graph)
	if len(p1.Components) != len(p2.Components) || len(p1.Cross) != len(p2.Cross) {
		t.Fatal("partition not deterministic")
	}
	for i := range p1.CompOf {
		if p1.CompOf[i] != p2.CompOf[i] {
			t.Fatalf("CompOf[%d] differs across runs", i)
		}
	}
}
