package cache

import (
	"testing"
	"testing/quick"
	"time"

	"rootreplay/internal/sched"
	"rootreplay/internal/sim"
	"rootreplay/internal/storage"
)

// env builds a kernel + HDD + noop scheduler + cache of capacity pages.
func env(capacity int64) (*sim.Kernel, *Cache, *storage.HDD) {
	k := sim.NewKernel()
	dev := storage.NewHDD(k, "d", storage.DefaultHDD())
	s := sched.NewNoop(dev)
	c := New(k, s, capacity)
	return k, c, dev
}

// ident returns a mapper placing file pages contiguously from base.
func ident(base int64) Mapper {
	return func(page int64) int64 { return base + page }
}

func TestReadMissThenHit(t *testing.T) {
	k, c, dev := env(1000)
	var missTime, hitTime time.Duration
	k.Spawn("r", func(th *sim.Thread) {
		start := k.Now()
		c.Read(th, 1, ident(0), 0, 1)
		missTime = k.Now() - start
		start = k.Now()
		c.Read(th, 1, ident(0), 0, 1)
		hitTime = k.Now() - start
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if missTime == 0 {
		t.Fatal("miss took no time")
	}
	if hitTime != 0 {
		t.Fatalf("hit took device time: %v", hitTime)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if dev.Stats().Reads != 1 {
		t.Fatalf("device reads = %d", dev.Stats().Reads)
	}
}

func TestContiguousMissesCoalesce(t *testing.T) {
	k, c, dev := env(1000)
	k.Spawn("r", func(th *sim.Thread) {
		c.Read(th, 1, ident(100), 0, 32)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if dev.Stats().Reads != 1 {
		t.Fatalf("expected one coalesced device read, got %d", dev.Stats().Reads)
	}
	if dev.Stats().BlocksRead != 32 {
		t.Fatalf("blocks read = %d", dev.Stats().BlocksRead)
	}
}

func TestPartialHitReadsOnlyMissingRuns(t *testing.T) {
	k, c, dev := env(1000)
	k.Spawn("r", func(th *sim.Thread) {
		c.Read(th, 1, ident(0), 2, 2) // pages 2,3
		c.Read(th, 1, ident(0), 0, 6) // 0,1 miss; 2,3 hit; 4,5 miss
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 read for [2,3], then [0,1] and [4,5] as two separate runs.
	if dev.Stats().Reads != 3 {
		t.Fatalf("device reads = %d, want 3", dev.Stats().Reads)
	}
	if dev.Stats().BlocksRead != 6 {
		t.Fatalf("blocks = %d, want 6", dev.Stats().BlocksRead)
	}
}

func TestWriteIsAsyncUntilSync(t *testing.T) {
	k, c, dev := env(1000)
	var writeTime time.Duration
	var syncPages int
	k.Spawn("w", func(th *sim.Thread) {
		start := k.Now()
		c.Write(th, 1, ident(0), 0, 8)
		writeTime = k.Now() - start
		syncPages = c.Sync(th, 1)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if writeTime != 0 {
		t.Fatalf("buffered write took %v", writeTime)
	}
	if syncPages != 8 {
		t.Fatalf("synced %d pages, want 8", syncPages)
	}
	if dev.Stats().Writes != 1 || dev.Stats().BlocksWrite != 8 {
		t.Fatalf("device writes = %+v", dev.Stats())
	}
	// Second sync: nothing dirty.
	k2, c2, _ := env(1000)
	n := -1
	k2.Spawn("w", func(th *sim.Thread) { n = c2.Sync(th, 1) })
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("sync of clean file wrote %d", n)
	}
}

func TestLRUEviction(t *testing.T) {
	k, c, _ := env(4)
	k.Spawn("r", func(th *sim.Thread) {
		c.Read(th, 1, ident(0), 0, 4)
		c.Read(th, 1, ident(0), 0, 1) // touch page 0 -> MRU
		c.Read(th, 1, ident(0), 10, 1)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(1, 0) {
		t.Fatal("recently touched page evicted")
	}
	if c.Contains(1, 1) {
		t.Fatal("LRU page not evicted")
	}
	if c.Resident() != 4 {
		t.Fatalf("resident = %d", c.Resident())
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	k, c, dev := env(2)
	k.Spawn("w", func(th *sim.Thread) {
		c.Write(th, 1, ident(0), 0, 2)
		c.Read(th, 1, ident(0), 5, 1) // forces eviction of a dirty page
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if dev.Stats().Writes == 0 {
		t.Fatal("dirty eviction did not write back")
	}
}

func TestWorkingSetLargerThanCacheKeepsMissing(t *testing.T) {
	run := func(capacity int64) int64 {
		k, c, _ := env(capacity)
		k.Spawn("r", func(th *sim.Thread) {
			// Two passes over 100 pages.
			for pass := 0; pass < 2; pass++ {
				for p := int64(0); p < 100; p++ {
					c.Read(th, 1, ident(0), p, 1)
				}
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return c.Stats().Misses
	}
	bigCache := run(200)
	smallCache := run(10)
	if bigCache != 100 {
		t.Fatalf("big cache misses = %d, want 100 (second pass all hits)", bigCache)
	}
	if smallCache != 200 {
		t.Fatalf("small cache misses = %d, want 200 (LRU thrash)", smallCache)
	}
}

func TestConcurrentReadersShareInflight(t *testing.T) {
	k, c, dev := env(1000)
	done := 0
	for i := 0; i < 4; i++ {
		k.Spawn("r", func(th *sim.Thread) {
			c.Read(th, 7, ident(50), 0, 4)
			done++
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	if dev.Stats().Reads != 1 {
		t.Fatalf("device reads = %d, want 1 (shared in-flight)", dev.Stats().Reads)
	}
}

func TestDrop(t *testing.T) {
	k, c, _ := env(100)
	k.Spawn("r", func(th *sim.Thread) {
		c.Read(th, 1, ident(0), 0, 4)
		c.Read(th, 2, ident(100), 0, 4)
		c.Drop(1)
		if c.Contains(1, 0) {
			t.Error("file 1 pages survived Drop")
		}
		if !c.Contains(2, 0) {
			t.Error("file 2 pages dropped")
		}
		c.DropAll()
		if c.Resident() != 0 {
			t.Error("pages survived DropAll")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncAll(t *testing.T) {
	k, c, _ := env(100)
	k.Spawn("w", func(th *sim.Thread) {
		c.Write(th, 1, ident(0), 0, 3)
		c.Write(th, 2, ident(100), 0, 2)
		if n := c.SyncAll(th); n != 5 {
			t.Errorf("SyncAll wrote %d, want 5", n)
		}
		if n := c.SyncAll(th); n != 0 {
			t.Errorf("second SyncAll wrote %d", n)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnboundedCapacity(t *testing.T) {
	k, c, _ := env(0) // unbounded
	k.Spawn("r", func(th *sim.Thread) {
		for p := int64(0); p < 500; p++ {
			c.Read(th, 1, ident(0), p, 1)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Resident() != 500 {
		t.Fatalf("resident = %d", c.Resident())
	}
	if c.Stats().Evictions != 0 {
		t.Fatal("unbounded cache evicted")
	}
}

// Property: after any interleaving of reads and writes followed by
// SyncAll, no dirty pages remain, resident count never exceeds capacity,
// and all requests completed (kernel ran to completion).
func TestQuickCacheInvariants(t *testing.T) {
	f := func(ops []uint16, capacity uint8) bool {
		capPages := int64(capacity%32) + 4
		k, c, _ := env(capPages)
		okRun := true
		k.Spawn("driver", func(th *sim.Thread) {
			for _, op := range ops {
				file := FileID(op % 3)
				pg := int64((op >> 2) % 64)
				m := ident(int64(file) * 1000)
				if op%2 == 0 {
					c.Read(th, file, m, pg, int64(op%4)+1)
				} else {
					c.Write(th, file, m, pg, int64(op%4)+1)
				}
				if c.Resident() > capPages {
					okRun = false
				}
			}
			c.SyncAll(th)
			if c.SyncAll(th) != 0 {
				okRun = false
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		return okRun && c.Resident() <= capPages
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCacheHit(b *testing.B) {
	k, c, _ := env(100)
	k.Spawn("r", func(th *sim.Thread) {
		c.Read(th, 1, ident(0), 0, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Read(th, 1, ident(0), 0, 1)
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
