// Package cache implements the simulated kernel's unified page cache.
//
// Pages are keyed by (file, page-index) and managed with LRU
// replacement. Reads that miss block the calling simulated thread while
// the backing blocks are fetched through the I/O scheduler; writes dirty
// pages in memory and are flushed on Sync (fsync) or when eviction needs
// a dirty victim. The cache's capacity is a first-class experimental
// parameter: the paper's §5.2.1 "Cache size" experiment traces on a 4 GB
// machine and replays on 1.5 GB (and vice versa).
package cache

import (
	"container/list"
	"fmt"
	"time"

	"rootreplay/internal/sched"
	"rootreplay/internal/sim"
	"rootreplay/internal/storage"
)

// FileID identifies a cached file. The stack uses vfs inode numbers.
type FileID uint64

// Mapper translates a file page index to a device LBA. The storage stack
// provides one per file based on its allocation policy.
type Mapper func(page int64) int64

// Stats counts cache activity.
type Stats struct {
	Hits       int64
	Misses     int64
	Writes     int64 // pages dirtied
	Writebacks int64 // pages written to the device
	Evictions  int64
}

type pageKey struct {
	file FileID
	idx  int64
}

type page struct {
	key   pageKey
	dirty bool
	lru   *list.Element
	lba   int64 // placement recorded at insert, used for writeback
}

// inflight tracks a page read that has been issued but not completed, so
// concurrent readers of the same page wait instead of duplicating I/O.
type inflight struct {
	cond *sim.Cond
	done bool
}

// Cache is the page cache. It is used only from simulated threads and
// kernel callbacks; like the rest of the simulation it needs no locking.
type Cache struct {
	k     *sim.Kernel
	sched sched.Scheduler

	capacity int64 // max resident pages; <=0 means unbounded
	pages    map[pageKey]*page
	lru      *list.List // front = most recent
	reading  map[pageKey]*inflight

	// dirty counts dirty resident pages; onFirstDirty fires on each
	// 0 -> 1 transition (the background-writeback trigger).
	dirty        int
	onFirstDirty func()

	stats Stats
}

// New constructs a cache of capacityPages pages in front of s.
func New(k *sim.Kernel, s sched.Scheduler, capacityPages int64) *Cache {
	return &Cache{
		k:        k,
		sched:    s,
		capacity: capacityPages,
		pages:    make(map[pageKey]*page),
		lru:      list.New(),
		reading:  make(map[pageKey]*inflight),
	}
}

// Stats returns a snapshot of activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// Resident reports the number of pages currently cached.
func (c *Cache) Resident() int64 { return int64(len(c.pages)) }

// Capacity returns the configured capacity in pages.
func (c *Cache) Capacity() int64 { return c.capacity }

// touch moves a page to the MRU position.
func (c *Cache) touch(p *page) { c.lru.MoveToFront(p.lru) }

// insert adds a page, evicting as needed when t is non-nil. The calling
// thread t performs any synchronous writeback eviction requires (write
// throttling). A nil t (kernel context, e.g. a read-completion callback)
// skips eviction; the waiting thread trims the cache after it wakes.
func (c *Cache) insert(t *sim.Thread, key pageKey, lba int64, dirty bool) *page {
	if p, ok := c.pages[key]; ok {
		if dirty {
			if !p.dirty {
				c.stats.Writes++
				c.markDirty(p)
			}
		}
		c.touch(p)
		return p
	}
	if t != nil {
		c.evictFor(t, 1)
	}
	p := &page{key: key, lba: lba}
	p.lru = c.lru.PushFront(p)
	c.pages[key] = p
	if dirty {
		c.stats.Writes++
		c.markDirty(p)
	}
	return p
}

// markDirty transitions a clean page to dirty, maintaining the count and
// firing the writeback trigger on the first dirty page.
func (c *Cache) markDirty(p *page) {
	if p.dirty {
		return
	}
	p.dirty = true
	c.dirty++
	if c.dirty == 1 && c.onFirstDirty != nil {
		c.onFirstDirty()
	}
}

// OnFirstDirty registers fn to run whenever the cache transitions from
// no dirty pages to one; the storage stack uses it to arm background
// writeback.
func (c *Cache) OnFirstDirty(fn func()) { c.onFirstDirty = fn }

// evictFor makes room for n new pages. Clean victims are dropped; dirty
// victims are written back synchronously by the calling thread.
func (c *Cache) evictFor(t *sim.Thread, n int64) {
	if c.capacity <= 0 {
		return
	}
	for int64(len(c.pages))+n > c.capacity {
		back := c.lru.Back()
		if back == nil {
			return
		}
		victim := back.Value.(*page)
		if victim.dirty {
			c.writePages(t, []*page{victim})
		}
		c.lru.Remove(victim.lru)
		delete(c.pages, victim.key)
		c.stats.Evictions++
	}
}

// Read ensures pages [start, start+n) of file are resident, blocking t
// until any missing pages have been fetched. Contiguous missing runs are
// fetched in single device requests. The mapper supplies placement.
func (c *Cache) Read(t *sim.Thread, file FileID, m Mapper, start, n int64) {
	if n <= 0 {
		return
	}
	type run struct{ first, count int64 }
	var runs []run
	var waits []*inflight
	for i := start; i < start+n; i++ {
		key := pageKey{file, i}
		if p, ok := c.pages[key]; ok {
			c.stats.Hits++
			c.touch(p)
			continue
		}
		if inf, ok := c.reading[key]; ok {
			// Someone else is fetching this page.
			c.stats.Hits++
			waits = append(waits, inf)
			continue
		}
		c.stats.Misses++
		if len(runs) > 0 {
			last := &runs[len(runs)-1]
			if last.first+last.count == i && m(i) == m(i-1)+1 {
				last.count++
				continue
			}
		}
		runs = append(runs, run{i, 1})
	}
	if len(runs) == 0 && len(waits) == 0 {
		return
	}
	remaining := len(runs)
	myWait := &inflight{cond: sim.NewCond(c.k)}
	for _, r := range runs {
		for i := r.first; i < r.first+r.count; i++ {
			c.reading[pageKey{file, i}] = myWait
		}
		r := r
		req := &storage.Request{
			Kind:   storage.Read,
			LBA:    m(r.first),
			Blocks: int(r.count),
			Owner:  t.ID(),
		}
		c.sched.Submit(req, func() {
			for i := r.first; i < r.first+r.count; i++ {
				key := pageKey{file, i}
				delete(c.reading, key)
				c.insert(nil, key, m(i), false)
			}
			remaining--
			if remaining == 0 {
				myWait.done = true
				myWait.cond.Broadcast()
			}
		})
	}
	for remaining > 0 {
		myWait.cond.Wait(t, fmt.Sprintf("page read file=%d", file))
	}
	for _, w := range waits {
		for !w.done {
			w.cond.Wait(t, fmt.Sprintf("shared page read file=%d", file))
		}
	}
	// Completion callbacks inserted pages without evicting; trim back to
	// capacity now that we are in thread context.
	c.evictFor(t, 0)
}

// Warm makes pages [start, start+n) of file resident and clean in zero
// virtual time: the instant-setup analogue of Read, for constructing a
// machine whose caches are hot at measurement start. Stats stay
// untouched — warming happens outside the measured run — and warming
// stops at capacity rather than evicting resident state.
func (c *Cache) Warm(file FileID, m Mapper, start, n int64) {
	for i := start; i < start+n; i++ {
		key := pageKey{file, i}
		if _, ok := c.pages[key]; ok {
			continue
		}
		if c.capacity > 0 && int64(len(c.pages)) >= c.capacity {
			return
		}
		p := &page{key: key, lba: m(i)}
		p.lru = c.lru.PushFront(p)
		c.pages[key] = p
	}
}

// Write dirties pages [start, start+n) of file in memory. It returns
// immediately in virtual time except when eviction forces writeback.
func (c *Cache) Write(t *sim.Thread, file FileID, m Mapper, start, n int64) {
	for i := start; i < start+n; i++ {
		c.insert(t, pageKey{file, i}, m(i), true)
	}
}

// Sync writes back every dirty page of file, blocking t until the device
// has them. It returns the number of pages written.
func (c *Cache) Sync(t *sim.Thread, file FileID) int {
	var dirty []*page
	for _, p := range c.pages {
		if p.key.file == file && p.dirty {
			dirty = append(dirty, p)
		}
	}
	if len(dirty) == 0 {
		return 0
	}
	c.writePages(t, dirty)
	return len(dirty)
}

// SyncAll writes back every dirty page in the cache (the sync(2) call).
func (c *Cache) SyncAll(t *sim.Thread) int {
	var dirty []*page
	for _, p := range c.pages {
		if p.dirty {
			dirty = append(dirty, p)
		}
	}
	if len(dirty) == 0 {
		return 0
	}
	c.writePages(t, dirty)
	return len(dirty)
}

// writePages issues write requests for the given pages (coalescing
// contiguous LBAs) and blocks t until all complete. Pages are marked
// clean when the writes are issued; the model does not redirty mid-write.
func (c *Cache) writePages(t *sim.Thread, pages []*page) {
	// Sort by LBA to coalesce contiguous runs. Insertion sort is fine:
	// fsync batches are small-to-moderate and nearly sorted in practice.
	for i := 1; i < len(pages); i++ {
		for j := i; j > 0 && pages[j-1].lba > pages[j].lba; j-- {
			pages[j-1], pages[j] = pages[j], pages[j-1]
		}
	}
	type run struct {
		lba    int64
		blocks int
	}
	var runs []run
	for _, p := range pages {
		if p.dirty {
			p.dirty = false
			c.dirty--
		}
		c.stats.Writebacks++
		if len(runs) > 0 && runs[len(runs)-1].lba+int64(runs[len(runs)-1].blocks) == p.lba {
			runs[len(runs)-1].blocks++
			continue
		}
		runs = append(runs, run{p.lba, 1})
	}
	remaining := len(runs)
	cond := sim.NewCond(c.k)
	for _, r := range runs {
		req := &storage.Request{Kind: storage.Write, LBA: r.lba, Blocks: r.blocks, Owner: t.ID()}
		c.sched.Submit(req, func() {
			remaining--
			if remaining == 0 {
				cond.Broadcast()
			}
		})
	}
	for remaining > 0 {
		cond.Wait(t, "writeback")
	}
}

// Contains reports whether the page is resident (for tests).
func (c *Cache) Contains(file FileID, idx int64) bool {
	_, ok := c.pages[pageKey{file, idx}]
	return ok
}

// DirtyCount reports the number of dirty resident pages.
func (c *Cache) DirtyCount() int { return c.dirty }

// Drop removes all pages of file without writeback (used when a deleted
// file's last reference goes away; dirty pages of an unlinked file need
// not reach the device).
func (c *Cache) Drop(file FileID) {
	for key, p := range c.pages {
		if key.file == file {
			if p.dirty {
				c.dirty--
			}
			c.lru.Remove(p.lru)
			delete(c.pages, key)
		}
	}
}

// DropAll empties the cache without writeback (echo 3 >
// /proc/sys/vm/drop_caches between benchmark phases).
func (c *Cache) DropAll() {
	c.pages = make(map[pageKey]*page)
	c.lru = list.New()
	c.dirty = 0
}

// HitLatency is the virtual CPU time charged by the stack for a page
// already in cache; exported for the stack's latency model.
const HitLatency = 2 * time.Microsecond
