package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"rootreplay/internal/core"
	"rootreplay/internal/sim"
	"rootreplay/internal/trace"
)

// mkGraph indexes an edge list the way core.newGraph does; obs tests
// hand-build graphs because the public compile path is overkill here.
func mkGraph(n int, edges []core.Edge) *core.Graph {
	g := &core.Graph{
		N:        n,
		Edges:    edges,
		Deps:     make([][]int, n),
		Succs:    make([][]int, n),
		Indegree: make([]int, n),
	}
	for ei, e := range edges {
		g.Deps[e.To] = append(g.Deps[e.To], ei)
		g.Succs[e.From] = append(g.Succs[e.From], ei)
		g.Indegree[e.To]++
	}
	return g
}

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Record(Span{})
	r.Sample(0, CounterRunq, 1)
	if got := r.Spans(); got != nil {
		t.Fatalf("nil recorder Spans = %v, want nil", got)
	}
	if got := r.Samples(); got != nil {
		t.Fatalf("nil recorder Samples = %v, want nil", got)
	}
	if s, c := r.Dropped(); s != 0 || c != 0 {
		t.Fatalf("nil recorder Dropped = %d,%d", s, c)
	}
	r.Reset()
	remove := r.InstallProbes(nil, 0, Probe{Kind: CounterRunq, Fn: func() float64 { return 0 }})
	remove()
}

func TestSpanRingWraps(t *testing.T) {
	r := NewRecorder(4, 4)
	for i := 0; i < 10; i++ {
		r.Record(Span{Action: int32(i)})
	}
	got := r.Spans()
	if len(got) != 4 {
		t.Fatalf("len(Spans) = %d, want 4", len(got))
	}
	for i, sp := range got {
		if want := int32(6 + i); sp.Action != want {
			t.Fatalf("Spans[%d].Action = %d, want %d (oldest-first after wrap)", i, sp.Action, want)
		}
	}
	if drops, _ := r.Dropped(); drops != 6 {
		t.Fatalf("span drops = %d, want 6", drops)
	}
}

func TestSampleCoalescing(t *testing.T) {
	r := NewRecorder(4, 16)
	r.Sample(1, CounterRunq, 2)
	r.Sample(2, CounterRunq, 2) // identical consecutive value: dropped
	r.Sample(3, CounterRunq, 3)
	r.Sample(4, CounterIOQueued, 3) // different track: kept
	r.Sample(5, CounterRunq, 3)     // repeat again: dropped
	got := r.Samples()
	if len(got) != 3 {
		t.Fatalf("len(Samples) = %d, want 3: %+v", len(got), got)
	}
	if got[0].At != 1 || got[1].At != 3 || got[2].At != 4 {
		t.Fatalf("sample times = %v,%v,%v, want 1,3,4", got[0].At, got[1].At, got[2].At)
	}
}

func TestResetClearsCoalescingState(t *testing.T) {
	r := NewRecorder(4, 4)
	r.Sample(1, CounterRunq, 7)
	r.Reset()
	r.Sample(2, CounterRunq, 7)
	if got := r.Samples(); len(got) != 1 {
		t.Fatalf("after Reset, len(Samples) = %d, want 1", len(got))
	}
}

func TestInstallProbesSamplesOnVirtualClock(t *testing.T) {
	k := sim.NewKernel()
	r := NewRecorder(16, 16)
	n := 0
	remove := r.InstallProbes(k, 10*time.Microsecond, Probe{
		Kind: CounterRunq,
		Fn:   func() float64 { n++; return float64(n) },
	})
	k.Spawn("w", func(tt *sim.Thread) {
		for i := 0; i < 5; i++ {
			tt.Sleep(25 * time.Microsecond)
		}
	})
	k.Run()
	remove()
	if n < 2 {
		t.Fatalf("probe fired %d time(s), want >= 2", n)
	}
	samples := r.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples recorded")
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].At < samples[i-1].At {
			t.Fatalf("samples out of order: %v after %v", samples[i].At, samples[i-1].At)
		}
	}
}

// chainTimes builds issue/done arrays for a 3-action two-thread replay:
// T1 runs a0 then a2, T2 runs a1; a2 also depends on a1 completing and
// a1's completion is the binding (later) constraint.
func chainFixture() (*core.Graph, []*trace.Record, []time.Duration, []time.Duration) {
	g := mkGraph(3, []core.Edge{
		{From: 1, To: 2, Kind: core.WaitComplete,
			Res: core.ResourceID{Kind: core.KFD, Name: "3", Gen: 1}},
	})
	recs := []*trace.Record{
		{TID: 1, Call: "open"},
		{TID: 2, Call: "pwrite"},
		{TID: 1, Call: "pread"},
	}
	issue := []time.Duration{0, 0, 130}
	done := []time.Duration{50, 120, 200}
	return g, recs, issue, done
}

func TestCriticalPath(t *testing.T) {
	g, recs, issue, done := chainFixture()
	cp := Critical(g, recs, issue, done)
	if cp.Elapsed != 200 {
		t.Fatalf("Elapsed = %v, want 200", cp.Elapsed)
	}
	if len(cp.Hops) != 2 {
		t.Fatalf("hops = %d, want 2 (a1 -> a2): %+v", len(cp.Hops), cp.Hops)
	}
	// Chronological: first a1 (start), then a2 (via the fd edge).
	if cp.Hops[0].Action != 1 || cp.Hops[0].Via != ViaStart {
		t.Fatalf("hop 0 = %+v, want action 1 via start", cp.Hops[0])
	}
	h := cp.Hops[1]
	if h.Action != 2 || h.From != 1 || h.Via != ViaEdge || h.Kind != core.WaitComplete {
		t.Fatalf("hop 1 = %+v, want action 2 from 1 via edge", h)
	}
	if h.Slack != 10 { // issued at 130, released at done[1]=120
		t.Fatalf("hop 1 slack = %v, want 10", h.Slack)
	}
	if cp.InCall != (120-0)+(200-130) {
		t.Fatalf("InCall = %v, want 190", cp.InCall)
	}
	if cp.Slack != 10 {
		t.Fatalf("Slack = %v, want 10", cp.Slack)
	}
	out := cp.Format(0)
	for _, want := range []string{"critical path: 2 hop(s)", "pwrite", "pread", "fd(3)@1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format output missing %q:\n%s", want, out)
		}
	}
}

func TestCriticalPathThreadOrder(t *testing.T) {
	// Single thread, no edges: the path is pure thread order.
	g := mkGraph(2, nil)
	recs := []*trace.Record{{TID: 1, Call: "open"}, {TID: 1, Call: "close"}}
	issue := []time.Duration{0, 60}
	done := []time.Duration{50, 90}
	cp := Critical(g, recs, issue, done)
	if len(cp.Hops) != 2 || cp.Hops[1].Via != ViaThread {
		t.Fatalf("hops = %+v, want 2 hops ending via thread-order", cp.Hops)
	}
	if cp.Hops[1].Slack != 10 {
		t.Fatalf("slack = %v, want 10", cp.Hops[1].Slack)
	}
}

func TestCriticalPathFormatElision(t *testing.T) {
	n := 10
	recs := make([]*trace.Record, n)
	issue := make([]time.Duration, n)
	done := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		recs[i] = &trace.Record{TID: 1, Call: "write"}
		issue[i] = time.Duration(i * 10)
		done[i] = time.Duration(i*10 + 10)
	}
	cp := Critical(mkGraph(n, nil), recs, issue, done)
	if len(cp.Hops) != n {
		t.Fatalf("hops = %d, want %d", len(cp.Hops), n)
	}
	out := cp.Format(4)
	if !strings.Contains(out, "hops elided") {
		t.Fatalf("Format(4) should elide middle hops:\n%s", out)
	}
}

func TestCriticalPathEmptyAndMismatched(t *testing.T) {
	cp := Critical(&core.Graph{}, nil, nil, nil)
	if cp == nil || len(cp.Hops) != 0 {
		t.Fatalf("empty graph: %+v", cp)
	}
	g := mkGraph(2, nil)
	cp = Critical(g, []*trace.Record{{TID: 1}}, nil, nil) // lengths disagree
	if cp == nil || len(cp.Hops) != 0 {
		t.Fatalf("mismatched inputs should yield empty path: %+v", cp)
	}
}

func TestWriteChromeValidAndDeterministic(t *testing.T) {
	record := func(r *Recorder) {
		r.Record(Span{Action: 0, TID: 2, Call: "open", WaitStart: 0, Issue: 0,
			Done: 50 * time.Microsecond, ReleasedBy: -1})
		r.Record(Span{Action: 1, TID: 1, Call: "pread", WaitStart: 10 * time.Microsecond,
			Issue: 60 * time.Microsecond, Done: 90 * time.Microsecond,
			Predelay:   5 * time.Microsecond,
			ReleasedBy: 0, ReleasedAt: 50 * time.Microsecond, ReleaseRes: "fd(3)@1"})
		r.Sample(0, CounterRunq, 1)
		r.Sample(20*time.Microsecond, CounterRunq, 2)
	}
	var bufs [2]bytes.Buffer
	for i := range bufs {
		r := NewRecorder(16, 16)
		record(r)
		if err := r.WriteChrome(&bufs[i]); err != nil {
			t.Fatalf("WriteChrome: %v", err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatal("WriteChrome output differs across identical recorders")
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(bufs[0].Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	counts := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		counts[ph]++
	}
	// 2 thread_name metadata, 2 call slices + 1 wait slice, 1 flow pair,
	// 2 counter samples.
	want := map[string]int{"M": 2, "X": 3, "s": 1, "f": 1, "C": 2}
	for ph, n := range want {
		if counts[ph] != n {
			t.Fatalf("event counts %v, want %v", counts, want)
		}
	}
}

func TestSummary(t *testing.T) {
	r := NewRecorder(16, 16)
	r.Record(Span{Action: 0, TID: 1, Call: "open", Issue: 0, Done: 40 * time.Microsecond, ReleasedBy: -1})
	r.Record(Span{Action: 1, TID: 1, Call: "pread", WaitStart: 40 * time.Microsecond,
		Issue: 60 * time.Microsecond, Done: 160 * time.Microsecond, ReleasedBy: -1})
	r.Sample(0, CounterRunq, 3)
	out := r.Summary()
	for _, want := range []string{"spans: 2 recorded", "pread", "open", "runq"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Summary missing %q:\n%s", want, out)
		}
	}
	// pread has more in-call time (100µs vs 40µs) and must sort first.
	if strings.Index(out, "pread") > strings.Index(out, "open") {
		t.Fatalf("Summary not sorted by in-call time:\n%s", out)
	}
}
