package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"rootreplay/internal/metrics"
)

// Chrome trace_event export: the recorder's spans and counters rendered
// in the JSON Object Format that Perfetto and chrome://tracing load.
//
// Layout: everything lives under pid 1. Each replayed (traced) thread is
// a track keyed by its TID, named by a thread_name metadata event. Every
// action contributes a complete ("X") slice for its in-call time; if it
// waited before issuing, a second slice in category "wait" covers the
// wait. Dependency releases are flow events ("s"/"f") from the releasing
// action's track to the released action's issue, so Perfetto draws the
// satisfied edge. Counters are "C" events, one named track per
// CounterKind.
//
// All timestamps are virtual-clock microseconds. Because the recorder's
// contents are deterministic and the writer iterates in fixed order
// (metadata by sorted TID, then spans, then samples, in record order),
// the byte stream is identical across runs.

// chromeEvent is one trace_event entry. Field order fixes the JSON
// field order; args maps marshal with sorted keys, so output is
// byte-deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const chromePID = 1

// usec converts a virtual duration to trace_event microseconds.
func usec(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// WriteChrome writes the recorder's contents as Chrome trace_event JSON.
// Spans are emitted in canonical (Done, Action) order rather than raw
// record order: completion times are monotone within a run, so the sort
// only permutes same-instant ties — and those ties are where serial and
// sliced replays legitimately record in different (but equally valid)
// orders. Canonicalizing here makes the export a pure function of the
// recorded span set, so sliced output can be byte-compared to serial.
func (r *Recorder) WriteChrome(w io.Writer) error {
	spans := r.Spans()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Done != spans[j].Done {
			return spans[i].Done < spans[j].Done
		}
		return spans[i].Action < spans[j].Action
	})
	samples := r.Samples()

	events := make([]chromeEvent, 0, 2*len(spans)+len(samples)+8)

	// Thread-name metadata, sorted by TID for stable output.
	tids := make([]int, 0, 8)
	seen := make(map[int32]bool)
	byAction := make(map[int32]int32, len(spans)) // action -> TID, for flows
	for i := range spans {
		sp := &spans[i]
		byAction[sp.Action] = sp.TID
		if !seen[sp.TID] {
			seen[sp.TID] = true
			tids = append(tids, int(sp.TID))
		}
	}
	sort.Ints(tids)
	for _, tid := range tids {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: tid,
			Args: map[string]any{"name": fmt.Sprintf("replay-T%d", tid)},
		})
	}

	for i := range spans {
		sp := &spans[i]
		if wait := sp.Wait(); wait > 0 {
			events = append(events, chromeEvent{
				Name: sp.Call, Cat: "wait", Ph: "X",
				TS: usec(sp.WaitStart), Dur: usec(wait),
				PID: chromePID, TID: int(sp.TID),
				Args: map[string]any{"action": sp.Action, "predelay_us": usec(sp.Predelay)},
			})
		}
		args := map[string]any{"action": sp.Action}
		if sp.ReleaseRes != "" {
			args["release_res"] = sp.ReleaseRes
		}
		events = append(events, chromeEvent{
			Name: sp.Call, Cat: "call", Ph: "X",
			TS: usec(sp.Issue), Dur: usec(sp.InCall()),
			PID: chromePID, TID: int(sp.TID),
			Args: args,
		})
		// Flow from the releasing action's track to this action's issue.
		// Flow ids must be nonzero and unique per arrow; action index + 1
		// is both (each action is released at most once).
		if sp.ReleasedBy >= 0 {
			fromTID, ok := byAction[sp.ReleasedBy]
			if !ok {
				continue // releaser's span fell out of the ring
			}
			events = append(events, chromeEvent{
				Name: "dep", Cat: "dep", Ph: "s",
				TS: usec(sp.ReleasedAt), PID: chromePID, TID: int(fromTID),
				ID: int(sp.Action) + 1,
			})
			events = append(events, chromeEvent{
				Name: "dep", Cat: "dep", Ph: "f", BP: "e",
				TS: usec(sp.Issue), PID: chromePID, TID: int(sp.TID),
				ID: int(sp.Action) + 1,
			})
		}
	}

	for _, s := range samples {
		events = append(events, chromeEvent{
			Name: s.Kind.String(), Ph: "C",
			TS: usec(s.At), PID: chromePID, TID: 0,
			Args: map[string]any{"value": s.Value},
		})
	}

	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{events, "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(&doc)
}

// Summary renders a fixed-width text digest of the recorded replay:
// per-call wait/in-call totals (sorted by in-call time) and, per counter
// track, the sample count and maximum.
func (r *Recorder) Summary() string {
	spans := r.Spans()
	samples := r.Samples()
	var b strings.Builder

	type agg struct {
		name           string
		n              int
		wait, inCall   time.Duration
		maxWait, maxIn time.Duration
	}
	byCall := make(map[string]*agg)
	for i := range spans {
		sp := &spans[i]
		a := byCall[sp.Call]
		if a == nil {
			a = &agg{name: sp.Call}
			byCall[sp.Call] = a
		}
		a.n++
		w, in := sp.Wait(), sp.InCall()
		a.wait += w
		a.inCall += in
		if w > a.maxWait {
			a.maxWait = w
		}
		if in > a.maxIn {
			a.maxIn = in
		}
	}
	aggs := make([]*agg, 0, len(byCall))
	for _, a := range byCall {
		aggs = append(aggs, a)
	}
	sort.Slice(aggs, func(i, j int) bool {
		if aggs[i].inCall != aggs[j].inCall {
			return aggs[i].inCall > aggs[j].inCall
		}
		return aggs[i].name < aggs[j].name
	})
	droppedSpans, droppedSamples := r.Dropped()
	fmt.Fprintf(&b, "spans: %d recorded", len(spans))
	if droppedSpans > 0 {
		fmt.Fprintf(&b, " (%d dropped by ring wrap)", droppedSpans)
	}
	b.WriteString("\n")
	if len(aggs) > 0 {
		t := metrics.NewTable("call", "n", "wait", "in-call", "max-wait", "max-in-call")
		for _, a := range aggs {
			t.Row(a.name, a.n, a.wait, a.inCall, a.maxWait, a.maxIn)
		}
		b.WriteString(t.String())
	}

	type cagg struct {
		n   int
		max float64
	}
	var counters [numCounters]cagg
	for _, s := range samples {
		if int(s.Kind) >= int(numCounters) {
			continue
		}
		counters[s.Kind].n++
		if s.Value > counters[s.Kind].max {
			counters[s.Kind].max = s.Value
		}
	}
	any := false
	for k := CounterKind(0); k < numCounters; k++ {
		if counters[k].n > 0 {
			any = true
		}
	}
	if any {
		fmt.Fprintf(&b, "counters: %d sample(s)", len(samples))
		if droppedSamples > 0 {
			fmt.Fprintf(&b, " (%d dropped by ring wrap)", droppedSamples)
		}
		b.WriteString("\n")
		t := metrics.NewTable("counter", "samples", "max")
		for k := CounterKind(0); k < numCounters; k++ {
			if counters[k].n > 0 {
				t.Row(k.String(), counters[k].n, counters[k].max)
			}
		}
		b.WriteString(t.String())
	}
	return b.String()
}
