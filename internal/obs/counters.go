package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Counters is a concurrency-safe set of named int64 counters and
// gauges, the substrate of artcd's /metrics endpoint. It is
// deliberately minimal — monotonic Add for counters, Set for gauges,
// and a deterministic text rendering — so a scrape is cheap, readable,
// and diffable in CI. Names follow the Prometheus convention
// (snake_case with a subsystem prefix); rendering sorts by name, so two
// snapshots of the same state serialize identically.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]int64)}
}

// Add adds d (which may be negative, for paired inc/dec gauge use) to
// the named counter, creating it at zero first if absent.
func (c *Counters) Add(name string, d int64) {
	c.mu.Lock()
	c.m[name] += d
	c.mu.Unlock()
}

// Set stores an absolute gauge value.
func (c *Counters) Set(name string, v int64) {
	c.mu.Lock()
	c.m[name] = v
	c.mu.Unlock()
}

// Get returns the named value (zero if it was never touched).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of every counter, for callers that need a
// consistent view across names.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// WriteTo renders every counter as "name value\n" lines sorted by name.
// It implements io.WriterTo so an HTTP handler can stream it directly.
func (c *Counters) WriteTo(w io.Writer) (int64, error) {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var total int64
	for _, k := range names {
		n, err := fmt.Fprintf(w, "%s %d\n", k, snap[k])
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
