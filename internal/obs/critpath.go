package obs

import (
	"fmt"
	"strings"
	"time"

	"rootreplay/internal/core"
	"rootreplay/internal/metrics"
	"rootreplay/internal/trace"
)

// Hop is one link of a replay's critical path: an action together with
// the binding constraint that gated its issue.
type Hop struct {
	// Action is the trace index; TID and Call identify it.
	Action int
	TID    int
	Call   string
	// Issue and Done are the action's replay times.
	Issue, Done time.Duration
	// From is the binding predecessor action, or -1 for the first hop.
	From int
	// Via describes the binding constraint: ViaStart (nothing gated the
	// action), ViaThread (same-thread replay order), or ViaEdge (a
	// dependency edge; Res and Kind are then meaningful).
	Via  ViaKind
	Res  core.ResourceID
	Kind core.EdgeKind
	// Slack is how long after the binding constraint released the action
	// it actually issued: predelay sleep plus scheduling/queueing delay.
	Slack time.Duration
}

// ViaKind classifies a hop's binding constraint.
type ViaKind uint8

// Binding-constraint kinds.
const (
	ViaStart ViaKind = iota
	ViaThread
	ViaEdge
)

// String names the constraint for reports.
func (v ViaKind) String() string {
	switch v {
	case ViaThread:
		return "thread-order"
	case ViaEdge:
		return "edge"
	default:
		return "start"
	}
}

// CriticalPath is the longest dependency chain of a completed replay:
// the answer to "why did this replay take this long".
type CriticalPath struct {
	// Elapsed is the completion time of the path's final action, i.e.
	// the replay's elapsed time.
	Elapsed time.Duration
	// Hops in chronological order; the last hop is the latest-finishing
	// action.
	Hops []Hop
	// InCall and Slack partition Elapsed: total in-call time along the
	// path plus total slack between hops.
	InCall, Slack time.Duration
}

// Critical walks a completed replay backward from its latest-finishing
// action, at each step re-deriving the constraint that actually gated
// the action's issue: the completion of its same-thread predecessor, or
// the satisfaction of a WaitComplete/WaitIssue dependency edge,
// whichever released last. Ties prefer the earlier-ordered candidate
// (thread order first, then edges in graph order), which keeps the walk
// deterministic. issue and done are the replay's per-action times; recs
// supplies thread and call identity.
func Critical(g *core.Graph, recs []*trace.Record, issue, done []time.Duration) *CriticalPath {
	n := g.N
	if n == 0 || len(recs) != n || len(issue) != n || len(done) != n {
		return &CriticalPath{}
	}
	// Same-thread predecessor of each action.
	prev := make([]int32, n)
	lastOf := make(map[int]int)
	for i := 0; i < n; i++ {
		prev[i] = -1
		if p, ok := lastOf[recs[i].TID]; ok {
			prev[i] = int32(p)
		}
		lastOf[recs[i].TID] = i
	}
	// The path ends at the latest completion (lowest index on ties).
	end := 0
	for i := 1; i < n; i++ {
		if done[i] > done[end] {
			end = i
		}
	}
	cp := &CriticalPath{Elapsed: done[end]}
	var hops []Hop
	for cur := end; cur >= 0; {
		h := Hop{
			Action: cur,
			TID:    recs[cur].TID,
			Call:   recs[cur].Call,
			Issue:  issue[cur],
			Done:   done[cur],
			From:   -1,
			Via:    ViaStart,
		}
		release := time.Duration(0) // ViaStart: gated only by replay start
		if p := prev[cur]; p >= 0 && done[p] > release {
			release = done[p]
			h.From, h.Via = int(p), ViaThread
		}
		for _, ei := range g.Deps[cur] {
			e := &g.Edges[ei]
			var rel time.Duration
			if e.Kind == core.WaitComplete {
				rel = done[e.From]
			} else {
				rel = issue[e.From]
			}
			if rel > release {
				release = rel
				h.From, h.Via = e.From, ViaEdge
				h.Res, h.Kind = e.Res, e.Kind
			}
		}
		h.Slack = issue[cur] - release
		if h.Slack < 0 {
			h.Slack = 0
		}
		hops = append(hops, h)
		cp.InCall += h.Done - h.Issue
		cp.Slack += h.Slack
		cur = h.From
		if len(hops) > n {
			// A well-formed replay's binding constraints always point
			// backward, but stall reports walk partially-executed (and
			// possibly hand-built cyclic) graphs; cap the walk so a
			// malformed chain cannot loop.
			break
		}
	}
	// Reverse into chronological order.
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	cp.Hops = hops
	return cp
}

// Format renders the critical path as a fixed-width table: one row per
// hop with issue/done times, in-call time, slack, and the binding
// constraint (resource for edge hops). maxHops > 0 elides the middle of
// longer paths, keeping the first and last maxHops/2 rows.
func (cp *CriticalPath) Format(maxHops int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path: %d hop(s), elapsed %v (in-call %v, slack %v)\n",
		len(cp.Hops), cp.Elapsed, cp.InCall, cp.Slack)
	if len(cp.Hops) == 0 {
		return b.String()
	}
	rows := make([]int, 0, len(cp.Hops))
	elide := -1
	if maxHops > 0 && len(cp.Hops) > maxHops {
		head := (maxHops + 1) / 2
		tail := maxHops - head
		for i := 0; i < head; i++ {
			rows = append(rows, i)
		}
		elide = len(rows)
		for i := len(cp.Hops) - tail; i < len(cp.Hops); i++ {
			rows = append(rows, i)
		}
	} else {
		for i := range cp.Hops {
			rows = append(rows, i)
		}
	}
	t := metrics.NewTable("#", "action", "thr", "call", "issue", "in-call", "slack", "via")
	for ri, i := range rows {
		if ri == elide && elide >= 0 {
			t.Row("...", "", "", "", "", "", "", fmt.Sprintf("(%d hops elided)", len(cp.Hops)-len(rows)))
		}
		h := cp.Hops[i]
		via := h.Via.String()
		if h.Via == ViaEdge {
			via = h.Res.String()
			if h.Kind == core.WaitIssue {
				via += " (issue)"
			}
		}
		t.Row(i, h.Action, fmt.Sprintf("T%d", h.TID), h.Call,
			metrics.FmtDur(h.Issue), metrics.FmtDur(h.Done-h.Issue), metrics.FmtDur(h.Slack), via)
	}
	b.WriteString(t.String())
	return b.String()
}
