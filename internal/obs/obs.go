// Package obs is the replayer's observability layer: a low-overhead,
// ring-buffered recorder for per-action spans and virtual-clock counter
// samples, a critical-path analysis over the enforced dependency graph,
// and exporters (Chrome trace_event JSON for Perfetto, fixed-width text
// summaries).
//
// Recording is off by default: the replayer only touches the recorder
// when one is supplied, and a nil *Recorder is a safe no-op for every
// method, so the disabled path costs a pointer check. When enabled, the
// recorder appends into preallocated-capacity rings and never allocates
// per event once the rings have grown to capacity; when a ring fills,
// the oldest entries are overwritten and the drop is counted rather than
// ever blocking or growing without bound.
//
// All times are virtual (sim-kernel) durations relative to replay start,
// so recorded data — and every export derived from it — is deterministic
// across runs and hosts.
package obs

import (
	"fmt"
	"time"

	"rootreplay/internal/sim"
)

// Span is one replayed action's lifecycle: when its replay thread began
// waiting to issue it, when it issued, and when it completed, plus the
// predelay sleep applied and the dependency edge whose satisfaction
// released it.
type Span struct {
	// Action is the trace index of the action.
	Action int32
	// TID is the traced thread the action belongs to.
	TID int32
	// Call is the traced call name ("open", "pread", ...).
	Call string
	// WaitStart is when the replay thread reached this action;
	// WaitStart..Issue covers dependency wait plus any predelay sleep.
	WaitStart time.Duration
	// Issue and Done bracket the in-call time.
	Issue, Done time.Duration
	// Predelay is the inter-call gap slept before issuing (zero under
	// AFAP replay).
	Predelay time.Duration
	// ReleasedBy is the action whose issue/completion satisfied this
	// action's final dependency edge, or -1 if the action never parked
	// with unsatisfied dependencies.
	ReleasedBy int32
	// ReleasedAt is the virtual time the final dependency edge was
	// satisfied (meaningful when ReleasedBy >= 0).
	ReleasedAt time.Duration
	// ReleaseRes names the resource of the satisfying edge ("" if none).
	ReleaseRes string
	// Shard is the replay component the action executed on (0 for a
	// serial replay, which runs everything as one component).
	Shard int32
}

// Wait returns the span's pre-issue time (dependency wait + predelay).
func (s *Span) Wait() time.Duration { return s.Issue - s.WaitStart }

// InCall returns the span's in-call service time.
func (s *Span) InCall() time.Duration { return s.Done - s.Issue }

// CounterKind identifies a sampled counter track.
type CounterKind uint8

// Counter tracks the kernel/stack probes sample.
const (
	// CounterRunq is the sim kernel's run-queue length: replay threads
	// ready to run but not running.
	CounterRunq CounterKind = iota
	// CounterIOQueued is the I/O scheduler's queued depth (submitted to
	// the scheduler, not yet dispatched to the device).
	CounterIOQueued
	// CounterIOInflight is the device's in-flight request count.
	CounterIOInflight
	// CounterDevUtil is device utilization over the sampling window, in
	// percent, normalized by device parallelism.
	CounterDevUtil
	// CounterCrossWait is a sliced replay member's cumulative virtual
	// time spent awaiting cross-slice edges, in nanoseconds. Sampled per
	// slice replica; the virtual measurement is deterministic, so the
	// track is byte-identical across hosts and GOMAXPROCS.
	CounterCrossWait

	numCounters
)

// String names the counter track as it appears in exports.
func (k CounterKind) String() string {
	switch k {
	case CounterRunq:
		return "runq"
	case CounterIOQueued:
		return "io_queued"
	case CounterIOInflight:
		return "io_inflight"
	case CounterDevUtil:
		return "dev_util_pct"
	case CounterCrossWait:
		return "cross_wait_ns"
	default:
		return fmt.Sprintf("counter_%d", uint8(k))
	}
}

// Sample is one counter observation on the virtual clock.
type Sample struct {
	At    time.Duration
	Kind  CounterKind
	Value float64
}

// Default ring capacities.
const (
	DefaultSpanCap   = 1 << 16
	DefaultSampleCap = 1 << 14
)

// Recorder collects spans and samples into bounded rings. The zero value
// is not usable; call NewRecorder. A nil *Recorder is a valid no-op
// receiver for every method.
type Recorder struct {
	spans    []Span
	spanCap  int
	spanHead int // next overwrite position once len == cap
	spanDrop int

	samples    []Sample
	sampleCap  int
	sampleHead int
	sampleDrop int

	// last recorded value per counter, for change-only sampling.
	lastVal   [numCounters]float64
	lastValid [numCounters]bool
}

// NewRecorder returns a recorder whose span and sample rings hold at
// most the given numbers of entries; values <= 0 select the defaults.
func NewRecorder(spanCap, sampleCap int) *Recorder {
	if spanCap <= 0 {
		spanCap = DefaultSpanCap
	}
	if sampleCap <= 0 {
		sampleCap = DefaultSampleCap
	}
	return &Recorder{spanCap: spanCap, sampleCap: sampleCap}
}

// SpanCap and SampleCap report the ring capacities (0 for a nil
// recorder); the sharded replayer mirrors a caller recorder's
// configuration onto its per-component recorders.
func (r *Recorder) SpanCap() int {
	if r == nil {
		return 0
	}
	return r.spanCap
}

// SampleCap reports the counter-sample ring capacity.
func (r *Recorder) SampleCap() int {
	if r == nil {
		return 0
	}
	return r.sampleCap
}

// Record appends a span, overwriting the oldest when the ring is full.
func (r *Recorder) Record(sp Span) {
	if r == nil {
		return
	}
	if len(r.spans) < r.spanCap {
		r.spans = append(r.spans, sp)
		return
	}
	r.spans[r.spanHead] = sp
	r.spanHead = (r.spanHead + 1) % r.spanCap
	r.spanDrop++
}

// Sample appends a counter observation. Consecutive identical values on
// the same track are coalesced (counters render as steps, so repeats
// carry no information), keeping tracks small.
func (r *Recorder) Sample(at time.Duration, kind CounterKind, v float64) {
	if r == nil {
		return
	}
	if int(kind) < len(r.lastVal) {
		if r.lastValid[kind] && r.lastVal[kind] == v {
			return
		}
		r.lastVal[kind] = v
		r.lastValid[kind] = true
	}
	s := Sample{At: at, Kind: kind, Value: v}
	if len(r.samples) < r.sampleCap {
		r.samples = append(r.samples, s)
		return
	}
	r.samples[r.sampleHead] = s
	r.sampleHead = (r.sampleHead + 1) % r.sampleCap
	r.sampleDrop++
}

// Spans returns the recorded spans in record order (oldest first). The
// returned slice is a copy.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	out := make([]Span, 0, len(r.spans))
	out = append(out, r.spans[r.spanHead:]...)
	out = append(out, r.spans[:r.spanHead]...)
	return out
}

// Samples returns the recorded counter samples in record order (oldest
// first). The returned slice is a copy.
func (r *Recorder) Samples() []Sample {
	if r == nil {
		return nil
	}
	out := make([]Sample, 0, len(r.samples))
	out = append(out, r.samples[r.sampleHead:]...)
	out = append(out, r.samples[:r.sampleHead]...)
	return out
}

// ClearSamples discards the recorded counter samples (spans are kept).
// Counter probes observe per-replica scheduler and device state, so a
// sliced replay's samples legitimately differ from a serial run's;
// differential byte comparisons drop them before exporting.
func (r *Recorder) ClearSamples() {
	if r == nil {
		return
	}
	r.samples = r.samples[:0]
	r.sampleHead, r.sampleDrop = 0, 0
	r.lastVal = [numCounters]float64{}
	r.lastValid = [numCounters]bool{}
}

// Dropped reports how many spans and samples were overwritten by ring
// wrap-around.
func (r *Recorder) Dropped() (spans, samples int) {
	if r == nil {
		return 0, 0
	}
	return r.spanDrop, r.sampleDrop
}

// Reset clears recorded data, keeping capacities.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.spans = r.spans[:0]
	r.spanHead, r.spanDrop = 0, 0
	r.samples = r.samples[:0]
	r.sampleHead, r.sampleDrop = 0, 0
	r.lastVal = [numCounters]float64{}
	r.lastValid = [numCounters]bool{}
}

// Probe binds a counter track to a sampling function.
type Probe struct {
	Kind CounterKind
	Fn   func() float64
}

// DefaultProbeInterval is the minimum virtual time between probe
// sweeps when InstallProbes is given a non-positive interval.
const DefaultProbeInterval = 100 * time.Microsecond

// InstallProbes hooks the probes into k's scheduling loop: at every
// scheduling point, if at least interval of virtual time has passed
// since the last sweep, each probe is invoked and its value recorded.
// Probes therefore add no events to the kernel and cannot keep a
// simulation alive. The returned func detaches the hook.
func (r *Recorder) InstallProbes(k *sim.Kernel, interval time.Duration, probes ...Probe) (remove func()) {
	if r == nil || len(probes) == 0 {
		return func() {}
	}
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	last := time.Duration(-1)
	return k.AddSchedHook(func() {
		now := k.Now()
		if last >= 0 && now-last < interval {
			return
		}
		last = now
		for _, p := range probes {
			r.Sample(now, p.Kind, p.Fn())
		}
	})
}
