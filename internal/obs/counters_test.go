package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	c.Add("b_two", 2)
	c.Add("a_one", 1)
	c.Add("b_two", 3)
	c.Set("c_gauge", 7)
	c.Set("c_gauge", 4)
	if got := c.Get("b_two"); got != 5 {
		t.Fatalf("Get(b_two) = %d, want 5", got)
	}
	if got := c.Get("absent"); got != 0 {
		t.Fatalf("Get(absent) = %d, want 0", got)
	}
	var sb strings.Builder
	if _, err := c.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a_one 1\nb_two 5\nc_gauge 4\n"
	if sb.String() != want {
		t.Fatalf("WriteTo = %q, want %q", sb.String(), want)
	}
}

// Rendering must be deterministic: same state, same bytes.
func TestCountersDeterministicRender(t *testing.T) {
	mk := func(order []string) string {
		c := NewCounters()
		for _, name := range order {
			c.Add(name, 1)
		}
		var sb strings.Builder
		c.WriteTo(&sb)
		return sb.String()
	}
	a := mk([]string{"x", "y", "z"})
	b := mk([]string{"z", "x", "y"})
	if a != b {
		t.Fatalf("insertion order leaked into rendering: %q vs %q", a, b)
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("n"); got != 8000 {
		t.Fatalf("concurrent adds lost updates: %d, want 8000", got)
	}
}
