package artc

import (
	"strings"
	"testing"
	"time"

	"rootreplay/internal/core"
	"rootreplay/internal/sim"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
	"rootreplay/internal/vfs"
)

// Toggling ordering constraints at replay time: with the path rules
// disabled, a create-then-open handoff across threads loses its ordering
// edge and the replay fails like unconstrained mode; with default modes
// it replays cleanly.
func TestReplayModeOverride(t *testing.T) {
	conf := defaultConf()
	k := sim.NewKernel()
	sys := stack.New(k, conf)
	if err := sys.SetupMkdirAll("/new"); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetupCreate("/config", 1<<20); err != nil {
		t.Fatal(err)
	}
	snap := snapshot.Capture(sys)
	tr := &trace.Trace{Platform: string(conf.Platform)}
	sys.SetTracer(func(r *trace.Record) { tr.Records = append(tr.Records, r) })

	created := false
	done := sim.NewCond(k)
	k.Spawn("creator", func(th *sim.Thread) {
		// Device I/O before the create, so an unconstrained replay's
		// opener overtakes the creator.
		cfd, _ := sys.Open(th, "/config", trace.ORdonly, 0)
		for i := 0; i < 8; i++ {
			sys.Pread(th, cfd, 4096, int64(i)*131072)
		}
		sys.Close(th, cfd)
		fd, _ := sys.Open(th, "/new/file", trace.OWronly|trace.OCreat, 0o644)
		sys.Write(th, fd, 65536) // takes a little time before close
		sys.Fsync(th, fd)
		sys.Close(th, fd)
		created = true
		done.Broadcast()
	})
	k.Spawn("opener", func(th *sim.Thread) {
		for !created {
			done.Wait(th, "create")
		}
		fd, _ := sys.Open(th, "/new/file", trace.ORdonly, 0)
		sys.Read(th, fd, 100)
		sys.Close(th, fd)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	tr.Renumber()
	b, err := Compile(tr, snap, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}

	replayWith := func(modes *core.ModeSet) int {
		k2 := sim.NewKernel()
		sys2 := stack.New(k2, conf)
		if err := Init(sys2, b, ""); err != nil {
			t.Fatal(err)
		}
		rep, err := Replay(sys2, b, Options{Method: MethodARTC, Modes: modes, SelfCheck: true})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Errors
	}
	if n := replayWith(nil); n != 0 {
		t.Fatalf("default modes: %d errors", n)
	}
	none := core.ModeSet{}
	if n := replayWith(&none); n == 0 {
		t.Fatal("disabling all constraints should reintroduce the race")
	}
}

// Concurrent replay of two independent benchmarks on one system: both
// replay cleanly and their activity interleaves in time. An SSD target
// makes the overlap visible in elapsed time (on a disk, interleaving
// two streams adds seeks, which is correct but obscures the check).
func TestReplayConcurrentOverlay(t *testing.T) {
	conf := defaultConf()
	conf.Device = stack.DeviceSSD
	mk := func(root string) (*trace.Trace, *snapshot.Snapshot) {
		return traceWorkloadPlain(t, conf, root)
	}
	trA, snapA := mk("/appA")
	trB, snapB := mk("/appB")
	bA, err := Compile(trA, snapA, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	bB, err := Compile(trB, snapB, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	sys := stack.New(k, conf)
	// Overlay init: both snapshots into one tree.
	if err := Init(sys, bA, ""); err != nil {
		t.Fatal(err)
	}
	if err := Init(sys, bB, ""); err != nil {
		t.Fatal(err)
	}
	reports, err := ReplayConcurrent(sys, []ConcurrentItem{
		{B: bA, Opts: Options{SelfCheck: true}},
		{B: bB, Opts: Options{SelfCheck: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	for i, rep := range reports {
		if rep.Errors != 0 {
			t.Errorf("benchmark %d: %d errors: %v", i, rep.Errors, rep.ErrorSamples)
		}
	}
	// Concurrency: the two replays overlap, so the joint elapsed time is
	// less than the sum of their individual times.
	solo := func(b *Benchmark) int64 {
		k2 := sim.NewKernel()
		sys2 := stack.New(k2, conf)
		if err := Init(sys2, b, ""); err != nil {
			t.Fatal(err)
		}
		rep, err := Replay(sys2, b, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return int64(rep.Elapsed)
	}
	sum := solo(bA) + solo(bB)
	joint := int64(reports[0].Elapsed)
	if j := int64(reports[1].Elapsed); j > joint {
		joint = j
	}
	if joint >= sum {
		t.Fatalf("concurrent replay (%d) not faster than serial sum (%d)", joint, sum)
	}
}

// traceWorkloadPlain traces a small single-thread workload under root.
func traceWorkloadPlain(t *testing.T, conf stack.Config, root string) (*trace.Trace, *snapshot.Snapshot) {
	t.Helper()
	k := sim.NewKernel()
	sys := stack.New(k, conf)
	if err := sys.SetupCreate(root+"/data", 16<<20); err != nil {
		t.Fatal(err)
	}
	snap := snapshot.Capture(sys)
	tr := &trace.Trace{Platform: string(conf.Platform)}
	sys.SetTracer(func(r *trace.Record) { tr.Records = append(tr.Records, r) })
	k.Spawn("w", func(th *sim.Thread) {
		fd, _ := sys.Open(th, root+"/data", trace.ORdonly, 0)
		for i := 0; i < 20; i++ {
			sys.Pread(th, fd, 4096, int64(i*7919)%(15<<20))
		}
		sys.Close(th, fd)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	tr.Renumber()
	return tr, snap
}

// A failed call on a then-valid descriptor must fail the same way in
// replay (EISDIR, not EBADF): the FDHint remap.
func TestFailedCallFDHintRemap(t *testing.T) {
	conf := defaultConf()
	k := sim.NewKernel()
	sys := stack.New(k, conf)
	if err := sys.SetupMkdirAll("/dir"); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetupCreate("/before", 4096); err != nil {
		t.Fatal(err)
	}
	snap := snapshot.Capture(sys)
	tr := &trace.Trace{Platform: string(conf.Platform)}
	sys.SetTracer(func(r *trace.Record) { tr.Records = append(tr.Records, r) })
	k.Spawn("w", func(th *sim.Thread) {
		// Shift descriptor numbering so replay numbers differ from traced
		// numbers unless remapped.
		f0, _ := sys.Open(th, "/before", trace.ORdonly, 0)
		dirFD, _ := sys.Open(th, "/dir", trace.ORdonly|trace.ODir, 0)
		sys.Close(th, f0)
		if _, err := sys.Read(th, dirFD, 100); err != vfs.EISDIR {
			t.Errorf("traced dir read = %v, want EISDIR", err)
		}
		sys.Close(th, dirFD)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	tr.Renumber()
	b, err := Compile(tr, snap, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	k2 := sim.NewKernel()
	sys2 := stack.New(k2, conf)
	if err := Init(sys2, b, ""); err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(sys2, b, Options{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("failed-call errno not reproduced: %v", rep.ErrorSamples)
	}
}

// Merging two traces into one benchmark (the trace-level alternative to
// ReplayConcurrent) compiles and replays cleanly: thread and descriptor
// remapping keeps the inputs' resources distinct.
func TestMergedTraceReplay(t *testing.T) {
	conf := defaultConf()
	trA, snapA := traceWorkloadPlain(t, conf, "/appA")
	trB, snapB := traceWorkloadPlain(t, conf, "/appB")
	merged, err := trace.Merge(trA, trB)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Records) != len(trA.Records)+len(trB.Records) {
		t.Fatalf("merged %d records", len(merged.Records))
	}
	snap := &snapshot.Snapshot{Entries: append(append([]snapshot.Entry{}, snapA.Entries...), snapB.Entries...)}
	b, err := Compile(merged, snap, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	sys := stack.New(k, conf)
	if err := Init(sys, b, ""); err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(sys, b, Options{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("merged replay errors: %v", rep.ErrorSamples)
	}
}

// Natural-speed identity: replaying a think-time workload on the system
// it was traced on reproduces the traced duration closely, while AFAP
// compresses it.
func TestNaturalSpeedIdentity(t *testing.T) {
	conf := defaultConf()
	k := sim.NewKernel()
	sys := stack.New(k, conf)
	if err := sys.SetupCreate("/f", 4<<20); err != nil {
		t.Fatal(err)
	}
	snap := snapshot.Capture(sys)
	tr := &trace.Trace{Platform: string(conf.Platform)}
	sys.SetTracer(func(r *trace.Record) { tr.Records = append(tr.Records, r) })
	start := k.Now()
	k.Spawn("w", func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/f", trace.ORdonly, 0)
		for i := 0; i < 10; i++ {
			sys.Pread(th, fd, 4096, int64(i)*131072)
			th.Sleep(20 * time.Millisecond) // compute between I/Os
		}
		sys.Close(th, fd)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	traced := k.Now() - start
	tr.Renumber()
	b, err := Compile(tr, snap, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	replay := func(speed Speed) time.Duration {
		k2 := sim.NewKernel()
		sys2 := stack.New(k2, conf)
		if err := Init(sys2, b, ""); err != nil {
			t.Fatal(err)
		}
		rep, err := Replay(sys2, b, Options{Speed: speed, SelfCheck: true})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Elapsed
	}
	natural := replay(Natural)
	afap := replay(AFAP)
	if rel := float64(natural) / float64(traced); rel < 0.9 || rel > 1.1 {
		t.Fatalf("natural replay %v vs traced %v (%.2fx); want ~1x", natural, traced, rel)
	}
	if float64(afap) > 0.5*float64(traced) {
		t.Fatalf("AFAP replay %v not much faster than traced %v", afap, traced)
	}
}

// Timeline renders something sane for a replay: right dimensions, and
// the busy single-thread rows are mostly '#'.
func TestTimelineRendering(t *testing.T) {
	conf := defaultConf()
	tr, snap := traceWorkloadPlain(t, conf, "/x")
	b, err := Compile(tr, snap, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	sys := stack.New(k, conf)
	if err := Init(sys, b, ""); err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(sys, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tl := rep.Timeline(b, 60)
	lines := strings.Split(strings.TrimSpace(tl), "\n")
	if len(lines) != 2 { // header + one thread
		t.Fatalf("timeline lines = %d:\n%s", len(lines), tl)
	}
	row := lines[1]
	if !strings.HasPrefix(row, "T") || !strings.Contains(row, "#") {
		t.Fatalf("row = %q", row)
	}
	// Width too small clamps to 10.
	if tlSmall := rep.Timeline(b, 1); !strings.Contains(tlSmall, "10 cols") {
		t.Fatalf("width clamp missing:\n%s", tlSmall)
	}
}
