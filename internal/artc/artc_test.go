package artc

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rootreplay/internal/core"
	"rootreplay/internal/sim"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
)

// traceWorkload runs fn on a fresh traced system and returns the trace
// plus a snapshot of the pre-run tree.
func traceWorkload(t *testing.T, conf stack.Config, setup func(*stack.System) error, fn func(*stack.System, *sim.Thread)) (*trace.Trace, *snapshot.Snapshot) {
	t.Helper()
	k := sim.NewKernel()
	sys := stack.New(k, conf)
	if setup != nil {
		if err := setup(sys); err != nil {
			t.Fatal(err)
		}
	}
	snap := snapshot.Capture(sys)
	tr := &trace.Trace{Platform: string(conf.Platform)}
	sys.SetTracer(func(r *trace.Record) { tr.Records = append(tr.Records, r) })
	k.Spawn("workload", func(th *sim.Thread) { fn(sys, th) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	tr.Renumber()
	return tr, snap
}

// replayOn compiles and replays on a fresh system with the given config.
func replayOn(t *testing.T, tr *trace.Trace, snap *snapshot.Snapshot, conf stack.Config, opts Options) *Report {
	t.Helper()
	b, err := Compile(tr, snap, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	sys := stack.New(k, conf)
	if err := Init(sys, b, opts.Prefix); err != nil {
		t.Fatal(err)
	}
	opts.SelfCheck = true
	rep, err := Replay(sys, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func defaultConf() stack.Config {
	c := stack.DefaultConfig()
	c.Scheduler = stack.SchedNoop
	return c
}

func TestRoundTripSingleThreadNoErrors(t *testing.T) {
	tr, snap := traceWorkload(t, defaultConf(),
		func(sys *stack.System) error { return sys.SetupCreate("/data/in", 1<<20) },
		func(sys *stack.System, th *sim.Thread) {
			fd, _ := sys.Open(th, "/data/in", trace.ORdonly, 0)
			for i := 0; i < 10; i++ {
				sys.Read(th, fd, 4096)
			}
			sys.Close(th, fd)
			out, _ := sys.Open(th, "/data/out", trace.OWronly|trace.OCreat, 0o644)
			sys.Write(th, out, 8192)
			sys.Fsync(th, out)
			sys.Close(th, out)
			sys.Stat(th, "/data/missing") // fails in trace, must fail in replay
			sys.Rename(th, "/data/out", "/data/out2")
			sys.Unlink(th, "/data/out2")
		})
	if len(tr.Records) != 19 {
		t.Fatalf("traced %d records", len(tr.Records))
	}
	for _, m := range []Method{MethodARTC, MethodSingle, MethodTemporal, MethodUnconstrained} {
		rep := replayOn(t, tr, snap, defaultConf(), Options{Method: m})
		if rep.Errors != 0 {
			t.Errorf("%s: %d semantic errors: %v", m, rep.Errors, rep.ErrorSamples)
		}
		if rep.Actions != len(tr.Records) {
			t.Errorf("%s: replayed %d actions", m, rep.Actions)
		}
	}
}

// Cross-thread fd handoff: one thread opens, another reads, a third
// closes. Unconstrained replay must race and fail; ARTC must not.
func TestCrossThreadHandoffSemantics(t *testing.T) {
	conf := defaultConf()
	k := sim.NewKernel()
	sys := stack.New(k, conf)
	if err := sys.SetupCreate("/shared", 1<<20); err != nil {
		t.Fatal(err)
	}
	snap := snapshot.Capture(sys)
	tr := &trace.Trace{Platform: string(conf.Platform)}
	sys.SetTracer(func(r *trace.Record) { tr.Records = append(tr.Records, r) })

	var fd int64 = -1
	opened := sim.NewCond(k)
	readDone := sim.NewCond(k)
	reads := 0
	k.Spawn("opener", func(th *sim.Thread) {
		fd, _ = sys.Open(th, "/shared", trace.ORdonly, 0)
		opened.Broadcast()
	})
	for i := 0; i < 3; i++ {
		k.Spawn("reader", func(th *sim.Thread) {
			for fd == -1 {
				opened.Wait(th, "open")
			}
			sys.Pread(th, fd, 4096, int64(reads)*4096)
			reads++
			readDone.Broadcast()
		})
	}
	k.Spawn("closer", func(th *sim.Thread) {
		for reads < 3 {
			readDone.Wait(th, "reads")
		}
		sys.Close(th, fd)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	tr.Renumber()
	if len(tr.Threads()) != 5 {
		t.Fatalf("trace has %d threads", len(tr.Threads()))
	}

	artcRep := replayOn(t, tr, snap, defaultConf(), Options{Method: MethodARTC})
	if artcRep.Errors != 0 {
		t.Fatalf("artc errors: %v", artcRep.ErrorSamples)
	}
	ucRep := replayOn(t, tr, snap, defaultConf(), Options{Method: MethodUnconstrained})
	if ucRep.Errors == 0 {
		t.Fatal("unconstrained replay of racy handoff produced no errors")
	}
}

func TestBenchmarkEncodeDecode(t *testing.T) {
	tr, snap := traceWorkload(t, defaultConf(),
		func(sys *stack.System) error { return sys.SetupCreate("/f", 8192) },
		func(sys *stack.System, th *sim.Thread) {
			fd, _ := sys.Open(th, "/f", trace.ORdonly, 0)
			sys.Read(th, fd, 4096)
			sys.Close(th, fd)
		})
	b, err := Compile(tr, snap, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	b2, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(b2.Trace.Records) != len(b.Trace.Records) {
		t.Fatalf("decoded %d records", len(b2.Trace.Records))
	}
	if len(b2.Graph.Edges) != len(b.Graph.Edges) {
		t.Fatalf("decoded graph has %d edges, want %d", len(b2.Graph.Edges), len(b.Graph.Edges))
	}
	if b2.Platform != b.Platform {
		t.Fatal("platform lost")
	}
	// The decoded benchmark must replay cleanly.
	k := sim.NewKernel()
	sys := stack.New(k, defaultConf())
	if err := Init(sys, b2, ""); err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(sys, b2, Options{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("decoded replay errors: %v", rep.ErrorSamples)
	}
}

func TestModesEncodeDecode(t *testing.T) {
	cases := []core.ModeSet{
		{},
		DefaultModesForTest(),
		{ProgramSeq: true},
		{FileSeq: true, FDStage: true},
	}
	for _, m := range cases {
		s := ModesString(m)
		got, err := ParseModes(s)
		if err != nil {
			t.Fatal(err)
		}
		if got != m {
			t.Fatalf("modes %+v -> %q -> %+v", m, s, got)
		}
	}
	if _, err := ParseModes("bogus_mode"); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

// DefaultModesForTest re-exports core.DefaultModes for table reuse.
func DefaultModesForTest() core.ModeSet { return core.DefaultModes() }

func TestFDRemappingCoexistingGenerations(t *testing.T) {
	// Trace where fd 3 is reused: first open/close, then another
	// open/read/close. ARTC replay may overlap the two generations'
	// surrounding work; the remap must keep them distinct.
	tr, snap := traceWorkload(t, defaultConf(),
		func(sys *stack.System) error {
			if err := sys.SetupCreate("/a", 8192); err != nil {
				return err
			}
			return sys.SetupCreate("/b", 8192)
		},
		func(sys *stack.System, th *sim.Thread) {
			fd, _ := sys.Open(th, "/a", trace.ORdonly, 0)
			sys.Read(th, fd, 100)
			sys.Close(th, fd)
			fd2, _ := sys.Open(th, "/b", trace.ORdonly, 0)
			sys.Read(th, fd2, 100)
			sys.Close(th, fd2)
		})
	rep := replayOn(t, tr, snap, defaultConf(), Options{Method: MethodARTC})
	if rep.Errors != 0 {
		t.Fatalf("errors: %v", rep.ErrorSamples)
	}
}

func TestDup2Replay(t *testing.T) {
	tr, snap := traceWorkload(t, defaultConf(),
		func(sys *stack.System) error { return sys.SetupCreate("/f", 8192) },
		func(sys *stack.System, th *sim.Thread) {
			fd, _ := sys.Open(th, "/f", trace.ORdonly, 0)
			nfd, _ := sys.Dup2(th, fd, 9)
			sys.Pread(th, nfd, 100, 0)
			sys.Close(th, nfd)
			sys.Close(th, fd)
		})
	rep := replayOn(t, tr, snap, defaultConf(), Options{Method: MethodARTC})
	if rep.Errors != 0 {
		t.Fatalf("dup2 replay errors: %v", rep.ErrorSamples)
	}
}

func TestCrossPlatformOSXToLinux(t *testing.T) {
	osxConf := stack.Config{
		Name: "osx", Platform: stack.OSX, Profile: stack.HFSPlus,
		Device: stack.DeviceHDD, Scheduler: stack.SchedNoop,
	}
	tr, snap := traceWorkload(t, osxConf,
		func(sys *stack.System) error {
			if err := sys.SetupCreate("/Library/a.plist", 4096); err != nil {
				return err
			}
			return sys.SetupCreate("/Library/b.plist", 4096)
		},
		func(sys *stack.System, th *sim.Thread) {
			sys.Getattrlist(th, "/Library/a.plist", "common")
			fd, _ := sys.Open(th, "/Library/a.plist", trace.ORdwr, 0)
			sys.Write(th, fd, 4096)
			sys.Fcntl(th, fd, "F_FULLFSYNC", 0)
			sys.Close(th, fd)
			sys.Exchangedata(th, "/Library/a.plist", "/Library/b.plist")
			sys.Searchfs(th, "/Library")
			sys.Setattrlist(th, "/Library/b.plist", "common")
			sys.Fsctl(th, "/Library/b.plist")
			sys.Vfsconf(th, "/Library")
		})
	if tr.Platform != "osx" {
		t.Fatalf("trace platform = %s", tr.Platform)
	}
	rep := replayOn(t, tr, snap, defaultConf() /* linux */, Options{Method: MethodARTC})
	if rep.Errors != 0 {
		t.Fatalf("cross-platform replay errors: %v", rep.ErrorSamples)
	}
	if rep.Emulated < 6 {
		t.Fatalf("emulated %d calls, want >= 6 (exchangedata + attrlists + obscure calls)", rep.Emulated)
	}
}

func TestLinuxToOSXFsyncPolicy(t *testing.T) {
	tr, snap := traceWorkload(t, defaultConf(),
		func(sys *stack.System) error { return nil },
		func(sys *stack.System, th *sim.Thread) {
			fd, _ := sys.Open(th, "/f", trace.OWronly|trace.OCreat, 0o644)
			sys.Write(th, fd, 4096)
			sys.Fsync(th, fd)
			sys.Close(th, fd)
		})
	osxConf := stack.Config{
		Name: "osx", Platform: stack.OSX, Profile: stack.HFSPlus,
		Device: stack.DeviceHDD, Scheduler: stack.SchedNoop,
	}
	relaxed := replayOn(t, tr, snap, osxConf, Options{Method: MethodARTC})
	strict := replayOn(t, tr, snap, osxConf, Options{Method: MethodARTC, FullFsyncOnOSX: true})
	if relaxed.Errors != 0 || strict.Errors != 0 {
		t.Fatalf("errors: %v / %v", relaxed.ErrorSamples, strict.ErrorSamples)
	}
	if strict.Emulated == 0 {
		t.Fatal("strict fsync policy did not use emulation")
	}
	// Strict durability must cost more time.
	if strict.Elapsed <= relaxed.Elapsed {
		t.Fatalf("strict fsync (%v) not slower than relaxed (%v)", strict.Elapsed, relaxed.Elapsed)
	}
}

func TestNaturalSpeedReproducesGaps(t *testing.T) {
	tr, snap := traceWorkload(t, defaultConf(),
		func(sys *stack.System) error { return sys.SetupCreate("/f", 1<<20) },
		func(sys *stack.System, th *sim.Thread) {
			fd, _ := sys.Open(th, "/f", trace.ORdonly, 0)
			sys.Read(th, fd, 4096)
			th.Sleep(50 * time.Millisecond) // compute
			sys.Read(th, fd, 4096)
			sys.Close(th, fd)
		})
	afap := replayOn(t, tr, snap, defaultConf(), Options{Method: MethodARTC, Speed: AFAP})
	natural := replayOn(t, tr, snap, defaultConf(), Options{Method: MethodARTC, Speed: Natural})
	scaled := replayOn(t, tr, snap, defaultConf(), Options{Method: MethodARTC, Speed: Scaled, Scale: 2.0})
	if afap.Elapsed >= 50*time.Millisecond {
		t.Fatalf("AFAP took %v", afap.Elapsed)
	}
	if natural.Elapsed < 50*time.Millisecond {
		t.Fatalf("natural took %v, want >= 50ms", natural.Elapsed)
	}
	if scaled.Elapsed < 100*time.Millisecond {
		t.Fatalf("scaled x2 took %v, want >= 100ms", scaled.Elapsed)
	}
}

func TestReplayWithPrefix(t *testing.T) {
	tr, snap := traceWorkload(t, defaultConf(),
		func(sys *stack.System) error { return sys.SetupCreate("/data/f", 8192) },
		func(sys *stack.System, th *sim.Thread) {
			fd, _ := sys.Open(th, "/data/f", trace.ORdonly, 0)
			sys.Read(th, fd, 100)
			sys.Close(th, fd)
			sys.Mkdir(th, "/data/new", 0o755)
		})
	b, err := Compile(tr, snap, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	sys := stack.New(k, defaultConf())
	if err := Init(sys, b, "/mnt/test"); err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(sys, b, Options{Prefix: "/mnt/test", SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("prefixed replay errors: %v", rep.ErrorSamples)
	}
	if _, errno := sys.FS.Resolve(nil, "/mnt/test/data/new"); errno != 0 {
		t.Fatal("mkdir did not land under prefix")
	}
}

func TestInferSnapshotCompile(t *testing.T) {
	// Compile with nil snapshot: sizes and paths inferred from the trace.
	tr, _ := traceWorkload(t, defaultConf(),
		func(sys *stack.System) error { return sys.SetupCreate("/in/file", 64<<10) },
		func(sys *stack.System, th *sim.Thread) {
			fd, _ := sys.Open(th, "/in/file", trace.ORdonly, 0)
			sys.Pread(th, fd, 4096, 60<<10)
			sys.Close(th, fd)
		})
	b, err := Compile(tr, nil, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	sys := stack.New(k, defaultConf())
	if err := Init(sys, b, ""); err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(sys, b, Options{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("inferred-snapshot replay errors: %v", rep.ErrorSamples)
	}
}

func TestDeltaInitAfterReplay(t *testing.T) {
	tr, snap := traceWorkload(t, defaultConf(),
		func(sys *stack.System) error { return sys.SetupCreate("/d/keep", 4096) },
		func(sys *stack.System, th *sim.Thread) {
			fd, _ := sys.Open(th, "/d/tmp", trace.OWronly|trace.OCreat, 0o644)
			sys.Write(th, fd, 4096)
			sys.Close(th, fd)
		})
	b, err := Compile(tr, snap, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	sys := stack.New(k, defaultConf())
	if err := Init(sys, b, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(sys, b, Options{}); err != nil {
		t.Fatal(err)
	}
	// The replay created /d/tmp; delta init must remove it.
	st, err := DeltaInit(sys, b, "")
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed == 0 {
		t.Fatalf("delta init removed nothing: %+v", st)
	}
	rep2, err := Replay(sys, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Errors != 0 {
		t.Fatalf("second replay after delta init: %v", rep2.ErrorSamples)
	}
}

func TestReportConcurrency(t *testing.T) {
	rep := &Report{Elapsed: 10 * time.Second, ThreadTime: 25 * time.Second}
	if c := rep.Concurrency(); c < 2.4 || c > 2.6 {
		t.Fatalf("concurrency = %v", c)
	}
	empty := &Report{}
	if empty.Concurrency() != 0 {
		t.Fatal("zero-elapsed concurrency")
	}
}

func TestReplayDetectsBadMethod(t *testing.T) {
	tr, snap := traceWorkload(t, defaultConf(), nil,
		func(sys *stack.System, th *sim.Thread) { sys.Stat(th, "/") })
	b, err := Compile(tr, snap, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	sys := stack.New(k, defaultConf())
	if err := Init(sys, b, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(sys, b, Options{Method: "bogus"}); err == nil {
		t.Fatal("bogus method accepted")
	}
}

func TestAIOReplay(t *testing.T) {
	tr, snap := traceWorkload(t, defaultConf(),
		func(sys *stack.System) error { return sys.SetupCreate("/f", 1<<20) },
		func(sys *stack.System, th *sim.Thread) {
			fd, _ := sys.Open(th, "/f", trace.ORdonly, 0)
			id, _ := sys.AioRead(th, fd, 4096, 0)
			sys.AioSuspend(th, id)
			sys.AioError(th, id)
			sys.AioReturn(th, id)
			sys.Close(th, fd)
		})
	rep := replayOn(t, tr, snap, defaultConf(), Options{Method: MethodARTC})
	if rep.Errors != 0 {
		t.Fatalf("aio replay errors: %v", rep.ErrorSamples)
	}
}

func TestGraphStatsInReport(t *testing.T) {
	tr, snap := traceWorkload(t, defaultConf(),
		func(sys *stack.System) error { return sys.SetupCreate("/f", 1<<20) },
		func(sys *stack.System, th *sim.Thread) {
			fd, _ := sys.Open(th, "/f", trace.ORdonly, 0)
			sys.Read(th, fd, 4096)
			sys.Close(th, fd)
		})
	rep := replayOn(t, tr, snap, defaultConf(), Options{Method: MethodTemporal})
	// Single-threaded trace: temporal graph has no cross-thread edges.
	if rep.Graph.Edges != 0 {
		t.Fatalf("graph edges = %d", rep.Graph.Edges)
	}
	if !strings.Contains(string(rep.Method), "temporal") {
		t.Fatal("method not recorded")
	}
}
