package artc

import (
	"fmt"
	"runtime"
	"sort"
	"testing"

	"rootreplay/internal/core"
	"rootreplay/internal/fault"
	"rootreplay/internal/obs"
	"rootreplay/internal/sim"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
	"rootreplay/internal/workload"
)

// genPipeline synthesizes the cross-edge-heavy slicing corpus: stages
// chained into one component by shared handoff files.
func genPipeline(t *testing.T, stages, ops, handoff int) (*trace.Trace, *snapshot.Snapshot) {
	t.Helper()
	tr, snap, err := workload.SynthPipeline(workload.Pipeline{
		Stages: stages, Ops: ops, Handoff: handoff, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr, snap
}

// serialWarm replays serially with metadata warmed, the
// device-independent baseline the sliced corpus is compared against:
// every open is a cache hit, so in-call times cannot depend on which
// replica's device queue serves them.
func serialWarm(t *testing.T, tr *trace.Trace, snap *snapshot.Snapshot, in *fault.Injector, opts Options) *Report {
	t.Helper()
	b, err := Compile(tr, snap, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	conf := defaultConf()
	conf.Faults = in
	k := sim.NewKernel()
	sys := stack.New(k, conf)
	if err := Init(sys, b, ""); err != nil {
		t.Fatal(err)
	}
	sys.WarmAll()
	opts.SelfCheck = true
	opts.Fault = in
	rep, err := Replay(sys, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// slicedOn replays through ReplaySharded with slicing enabled.
func slicedOn(t *testing.T, tr *trace.Trace, snap *snapshot.Snapshot, opts Options,
	shards, sliceActions int, plan *fault.Plan) (*Report, *ShardStats) {
	t.Helper()
	b, err := Compile(tr, snap, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	opts.SelfCheck = true
	so := ShardOptions{
		Shards: shards,
		Target: defaultConf(),
		Init: func(sys *stack.System) error {
			if err := Init(sys, b, opts.Prefix); err != nil {
				return err
			}
			sys.WarmAll()
			return nil
		},
		Fault:        plan,
		SliceActions: sliceActions,
	}
	rep, st, err := ReplaySharded(b, opts, so)
	if err != nil {
		t.Fatal(err)
	}
	return rep, st
}

// canonSpans sorts spans into the canonical (Done, Action) export order
// so serial record order and sliced merge order compare equal.
func canonSpans(spans []obs.Span) []obs.Span {
	out := append([]obs.Span(nil), spans...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Done != out[j].Done {
			return out[i].Done < out[j].Done
		}
		return out[i].Action < out[j].Action
	})
	return out
}

// The tentpole contract: slicing a single-component trace changes the
// partition but never the merged report or spans — byte-identical to
// serial artc.Replay across shard counts. Counter samples are exempt
// (probes observe per-replica scheduler state).
func TestSlicedPipelineByteIdenticalToSerial(t *testing.T) {
	tr, snap := genPipeline(t, 4, 200, 8)
	serialRec := obs.NewRecorder(0, 0)
	serial := serialWarm(t, tr, snap, nil, Options{Obs: serialRec})
	serialJS := reportJSON(t, serial)
	serialSpans := canonSpans(serialRec.Spans())

	n := len(tr.Records)
	for _, shards := range []int{1, 2, 4, 8} {
		rec := obs.NewRecorder(0, 0)
		rep, st := slicedOn(t, tr, snap, Options{Obs: rec}, shards, n/4+1, nil)
		if st.Sliced != 1 || st.Components < 2 {
			t.Fatalf("shards=%d: pipeline did not slice: %+v", shards, st)
		}
		if st.Synthetic == 0 {
			t.Fatalf("shards=%d: slicing registered no synthetic edges: %+v", shards, st)
		}
		if got := reportJSON(t, rep); got != serialJS {
			t.Errorf("shards=%d: sliced report differs from serial:\n got %s\nwant %s", shards, got, serialJS)
		}
		spans := canonSpans(rec.Spans())
		if len(spans) != len(serialSpans) {
			t.Fatalf("shards=%d: %d spans, serial %d", shards, len(spans), len(serialSpans))
		}
		for i := range spans {
			if spans[i] != serialSpans[i] {
				t.Fatalf("shards=%d: span %d differs:\n got %+v\nwant %+v", shards, i, spans[i], serialSpans[i])
			}
		}
	}
}

// The coordinator must be schedule-independent: the sliced report
// matches serial at every host parallelism level, shards {1,2,4,8} x
// GOMAXPROCS {1,2,8} (CI reruns this under -race).
func TestSlicedDifferentialAcrossProcs(t *testing.T) {
	tr, snap := genPipeline(t, 4, 120, 8)
	serial := reportJSON(t, serialWarm(t, tr, snap, nil, Options{}))
	n := len(tr.Records)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		for _, shards := range []int{1, 2, 4, 8} {
			rep, st := slicedOn(t, tr, snap, Options{}, shards, n/4+1, nil)
			if st.Components < 2 {
				t.Fatalf("procs=%d shards=%d: did not slice: %+v", procs, shards, st)
			}
			if got := reportJSON(t, rep); got != serial {
				t.Errorf("procs=%d shards=%d: sliced report differs from serial", procs, shards)
			}
		}
	}
}

// Slice granularity is an internal knob like Shards: different
// MaxActions values cut differently but must all merge to the same
// report.
func TestSlicedDeterministicAcrossGranularity(t *testing.T) {
	tr, snap := genPipeline(t, 3, 120, 6)
	n := len(tr.Records)
	var base string
	for _, frac := range []int{2, 3, 5} {
		rep, st := slicedOn(t, tr, snap, Options{}, 0, n/frac+1, nil)
		if st.Components < 2 {
			t.Fatalf("frac=%d: did not slice: %+v", frac, st)
		}
		js := reportJSON(t, rep)
		if base == "" {
			base = js
		} else if js != base {
			t.Fatalf("frac=%d: report differs across slice granularity", frac)
		}
	}
}

// Fault decisions are keyed by global action index, so slicing must not
// move them: sliced chaos output is byte-identical to serial chaos.
func TestSlicedFaultMatchesSerial(t *testing.T) {
	tr, snap := genPipeline(t, 3, 100, 8)
	plan := fault.Plan{
		Seed:    31,
		Syscall: fault.SyscallPlan{Rate: 0.2},
		Retry:   fault.RetryPlan{MaxAttempts: 3},
	}
	serial := serialWarm(t, tr, snap, fault.New(plan), Options{SelfCheck: true})
	n := len(tr.Records)
	rep, st := slicedOn(t, tr, snap, Options{}, 0, n/3+1, &plan)
	if st.Components < 2 {
		t.Fatalf("pipeline did not slice: %+v", st)
	}
	if got, want := reportJSON(t, rep), reportJSON(t, serial); got != want {
		t.Errorf("sliced chaos report differs from serial:\n got %s\nwant %s", got, want)
	}
	if rep.FaultStats == nil || rep.FaultStats.SyscallInjected == 0 {
		t.Fatalf("plan injected nothing: %+v", rep.FaultStats)
	}
}

// genFlat generates nThreads threads hammering files that all live
// directly under one directory, including creates there, so every
// resource unifies with /flat and the component is one atom.
func genFlat(t *testing.T, nThreads, opsPer int) (*trace.Trace, *snapshot.Snapshot) {
	t.Helper()
	k := sim.NewKernel()
	sys := stack.New(k, defaultConf())
	if err := sys.SetupMkdirAll("/flat"); err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 3; f++ {
		if err := sys.SetupCreate(fmt.Sprintf("/flat/f%d", f), 1<<16); err != nil {
			t.Fatal(err)
		}
	}
	snap := snapshot.Capture(sys)
	tr := &trace.Trace{Platform: string(stack.Linux)}
	sys.SetTracer(func(r *trace.Record) { tr.Records = append(tr.Records, r) })
	for c := 0; c < nThreads; c++ {
		c := c
		k.Spawn(fmt.Sprintf("flat-%d", c), func(th *sim.Thread) {
			for i := 0; i < opsPer; i++ {
				switch i % 3 {
				case 0:
					if fd, errno := sys.Open(th, fmt.Sprintf("/flat/f%d", i%3), trace.ORdonly, 0); errno == 0 {
						sys.Pread(th, fd, 4096, int64(i%8)*4096)
						sys.Close(th, fd)
					}
				case 1:
					if fd, errno := sys.Open(th, fmt.Sprintf("/flat/new%d-%d", c, i), trace.OWronly|trace.OCreat, 0o644); errno == 0 {
						sys.Write(th, fd, 1024)
						sys.Close(th, fd)
					}
				case 2:
					sys.Stat(th, "/flat/f0")
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return tr, snap
}

// A component whose actions all share one flat directory is a single
// atom: slicing must refuse to cut it and fall back to the
// whole-component plan.
func TestSlicedSingleAtomKeptWhole(t *testing.T) {
	tr, snap := genFlat(t, 3, 40)
	rep, st := slicedOn(t, tr, snap, Options{}, 0, len(tr.Records)/4+1, nil)
	if st.Sliced != 0 || st.Synthetic != 0 || st.Components != 1 {
		t.Fatalf("single-atom component was cut: %+v", st)
	}
	serial := serialWarm(t, tr, snap, nil, Options{})
	if got, want := reportJSON(t, rep), reportJSON(t, serial); got != want {
		t.Errorf("unsliced fallback differs from serial")
	}
}
