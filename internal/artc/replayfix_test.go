package artc

import (
	"errors"
	"strings"
	"testing"
	"time"

	"rootreplay/internal/core"
	"rootreplay/internal/sim"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
	"rootreplay/internal/vfs"
)

// handGraph indexes a hand-written edge list; deadlock and underflow
// scenarios need graphs the compiler (which only emits forward edges)
// can never produce.
func handGraph(n int, edges []core.Edge) *core.Graph {
	g := &core.Graph{
		N:        n,
		Edges:    edges,
		Deps:     make([][]int, n),
		Succs:    make([][]int, n),
		Indegree: make([]int, n),
	}
	for ei, e := range edges {
		g.Deps[e.To] = append(g.Deps[e.To], ei)
		g.Succs[e.From] = append(g.Succs[e.From], ei)
		g.Indegree[e.To]++
	}
	return g
}

// handBench wraps a trace and graph as a benchmark without compiling.
func handBench(tr *trace.Trace, g *core.Graph) *Benchmark {
	return &Benchmark{Platform: tr.Platform, Trace: tr, Graph: g}
}

// MaxErrorSamples: zero means the default of 10, so callers cannot
// accidentally disable sample retention; negative disables it.
func TestMaxErrorSamplesZeroMeansDefault(t *testing.T) {
	tr := &trace.Trace{Platform: "linux", Records: []*trace.Record{
		{TID: 1, Call: "open", Path: "/x", Ret: 3},
	}}
	b := handBench(tr, handGraph(1, nil))
	for _, tc := range []struct {
		in, want int
	}{
		{0, 10}, {3, 3}, {-1, -1},
	} {
		sys := stack.New(sim.NewKernel(), defaultConf())
		rs, err := start(sys, b, Options{MaxErrorSamples: tc.in})
		if err != nil {
			t.Fatal(err)
		}
		if rs.opts.MaxErrorSamples != tc.want {
			t.Fatalf("MaxErrorSamples %d normalized to %d, want %d",
				tc.in, rs.opts.MaxErrorSamples, tc.want)
		}
	}
}

func TestNegativeMaxErrorSamplesRetainsNone(t *testing.T) {
	rs := &replayState{opts: Options{MaxErrorSamples: -1}, rep: &Report{}}
	rec := &trace.Record{TID: 1, Call: "open", Path: "/x", Err: "ENOENT"}
	for i := 0; i < 5; i++ {
		rs.compare(i, rec, 3, vfs.OK) // traced failure, replay success
	}
	if rs.rep.Errors != 5 {
		t.Fatalf("Errors = %d, want 5 (counting must not be disabled)", rs.rep.Errors)
	}
	if len(rs.rep.ErrorSamples) != 0 {
		t.Fatalf("ErrorSamples = %v, want none", rs.rep.ErrorSamples)
	}
}

// waitReason must judge predecessors by explicit lifecycle state, not by
// zero issue/done times: an action legitimately issued at virtual time 0
// is not "not yet issued".
func TestWaitReasonActionIssuedAtTimeZero(t *testing.T) {
	g := handGraph(3, []core.Edge{
		// Edge 0: action 0 issued (at virtual time 0!) — satisfied.
		{From: 0, To: 2, Kind: core.WaitIssue,
			Res: core.ResourceID{Kind: core.KFD, Name: "3", Gen: 1}},
		// Edge 1: action 1 never ran — the real blocker.
		{From: 1, To: 2, Kind: core.WaitComplete,
			Res: core.ResourceID{Kind: core.KFD, Name: "4", Gen: 1}},
	})
	rs := &replayState{
		g:         g,
		remaining: []int32{0, 0, 1},
		status:    []uint8{actIssued, 0, 0},
		issueAt:   make([]time.Duration, 3),
		doneAt:    make([]time.Duration, 3),
	}
	reason := rs.waitReason(2)
	if !strings.Contains(reason, "on action 1") {
		t.Fatalf("waitReason names the wrong blocker: %q (action 0 issued at t=0, action 1 never ran)", reason)
	}
}

func TestWaitReasonInCallPredecessor(t *testing.T) {
	// A WaitComplete predecessor that has issued but not completed is
	// still the blocker; issued-only must not satisfy a complete edge.
	g := handGraph(2, []core.Edge{
		{From: 0, To: 1, Kind: core.WaitComplete,
			Res: core.ResourceID{Kind: core.KFD, Name: "3", Gen: 1}},
	})
	rs := &replayState{
		g:         g,
		remaining: []int32{0, 1},
		status:    []uint8{actIssued, 0},
	}
	if reason := rs.waitReason(1); !strings.Contains(reason, "on action 0") {
		t.Fatalf("waitReason = %q, want action 0 named as blocker", reason)
	}
}

// A dependency counter driven negative means the graph's Indegree
// disagrees with its edge list; the replayer must fail loudly instead of
// silently un-ordering the replay.
func TestDepSatisfiedUnderflowPanics(t *testing.T) {
	g := handGraph(2, []core.Edge{{From: 0, To: 1, Kind: core.WaitComplete}})
	g.Indegree[1] = 0 // malformed: edge list says 1, Indegree says 0
	rs := &replayState{
		g:         g,
		remaining: []int32{0, 0}, // built from the corrupt Indegree
		waiting:   make([]*sim.Thread, 2),
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("depSatisfied drove the counter negative without panicking")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "underflow") {
			t.Fatalf("panic = %v, want an underflow message", r)
		}
	}()
	rs.depSatisfied(0)
}

// A cyclic graph deadlocks; the report must name a blocked action and
// the dependency it is blocked on, so the failure is actionable.
func TestReplayDeadlockReport(t *testing.T) {
	tr := &trace.Trace{Platform: "linux", Records: []*trace.Record{
		{TID: 1, Call: "read", FD: 9, Start: 0, End: 10},
		{TID: 2, Call: "write", FD: 9, Start: 0, End: 10},
	}}
	res := core.ResourceID{Kind: core.KFD, Name: "9", Gen: 1}
	g := handGraph(2, []core.Edge{
		{From: 0, To: 1, Kind: core.WaitComplete, Res: res},
		{From: 1, To: 0, Kind: core.WaitComplete, Res: res},
	})
	sys := stack.New(sim.NewKernel(), defaultConf())
	_, err := Replay(sys, handBench(tr, g), Options{})
	if err == nil {
		t.Fatal("cyclic graph replayed without deadlocking")
	}
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("error = %v, want a *sim.DeadlockError in the chain", err)
	}
	if len(dl.Blocked) != 2 {
		t.Fatalf("blocked threads = %d, want 2: %v", len(dl.Blocked), dl.Blocked)
	}
	msg := err.Error()
	for _, want := range []string{"deadlock", "replay-T1", "dep(s) left", "e.g. on action", "fd(9)@1"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("deadlock report missing %q:\n%s", want, msg)
		}
	}
}

func TestReplayConcurrentUnknownMethod(t *testing.T) {
	tr := &trace.Trace{Platform: "linux", Records: []*trace.Record{
		{TID: 1, Call: "open", Path: "/x", Ret: 3},
	}}
	b := handBench(tr, handGraph(1, nil))
	sys := stack.New(sim.NewKernel(), defaultConf())
	_, err := ReplayConcurrent(sys, []ConcurrentItem{
		{B: b, Opts: Options{}},
		{B: b, Opts: Options{Method: "bogus"}},
	})
	if err == nil {
		t.Fatal("unknown method accepted")
	}
	for _, want := range []string{"benchmark 1", "unknown replay method"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q (must identify the offending item)", err, want)
		}
	}
}

func TestReplayConcurrentDeadlockIdentifiesBlockage(t *testing.T) {
	okTr := &trace.Trace{Platform: "linux", Records: []*trace.Record{
		{TID: 1, Call: "stat", Path: "/f", Start: 0, End: 1},
	}}
	okB, err := Compile(okTr, nil, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	badTr := &trace.Trace{Platform: "linux", Records: []*trace.Record{
		{TID: 1, Call: "read", FD: 9, Start: 0, End: 10},
		{TID: 2, Call: "write", FD: 9, Start: 0, End: 10},
	}}
	res := core.ResourceID{Kind: core.KFD, Name: "9", Gen: 1}
	cyclic := handGraph(2, []core.Edge{
		{From: 0, To: 1, Kind: core.WaitComplete, Res: res},
		{From: 1, To: 0, Kind: core.WaitComplete, Res: res},
	})
	sys := stack.New(sim.NewKernel(), defaultConf())
	if err := Init(sys, okB, ""); err != nil {
		t.Fatal(err)
	}
	_, err = ReplayConcurrent(sys, []ConcurrentItem{
		{B: okB, Opts: Options{}},
		{B: handBench(badTr, cyclic), Opts: Options{}},
	})
	if err == nil {
		t.Fatal("concurrent replay with a cyclic benchmark did not fail")
	}
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("error = %v, want a *sim.DeadlockError in the chain", err)
	}
	// Only the cyclic benchmark's two threads remain blocked; the healthy
	// benchmark's thread must have finished.
	if len(dl.Blocked) != 2 {
		t.Fatalf("blocked threads = %d, want 2: %v", len(dl.Blocked), dl.Blocked)
	}
	if !strings.Contains(err.Error(), "concurrent replay stalled") {
		t.Fatalf("error should say the concurrent replay stalled: %v", err)
	}
}
