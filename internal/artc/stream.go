package artc

import (
	"errors"
	"fmt"
	"io"

	"rootreplay/internal/core"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/trace"
	"rootreplay/internal/vfs"
)

// errStreamAborted tells the parser to stop early because the consumer
// already failed; the consumer's error is what surfaces.
var errStreamAborted = errors.New("artc: stream consumer aborted")

// streamBatch is how many records the parser hands over per channel
// send, and streamDepth how many batches may be in flight — together
// they bound the streaming path's parse-side memory at a few thousand
// records ahead of the analyzer (each record also pins its slab chunk,
// so the bound is in chunks, not bytes of input).
const (
	streamBatch = 512
	streamDepth = 8
)

// CompileStraceStream parses strace text and compiles it in one
// streaming pass: the lexer runs in a producer goroutine, handing
// record batches over a bounded channel to the trace-model analysis
// running on the caller's goroutine, so lexing overlaps model
// evaluation and `artc compile` never holds the fully-parsed trace and
// a second, analysis-shaped copy of it at peak simultaneously.
//
// The overlap requires a snapshot: with snap == nil the initial state
// is inferred by a prescan of the whole trace (InferSnapshot), so
// there is nothing to overlap and the call falls back to parse-then-
// Compile. The compiled benchmark is identical to
// Compile(ParseStrace(r), snap, modes) either way.
func CompileStraceStream(r io.Reader, snap *snapshot.Snapshot, modes core.ModeSet) (*Benchmark, error) {
	if snap == nil {
		tr, err := trace.ParseStrace(r)
		if err != nil {
			return nil, err
		}
		return Compile(tr, nil, modes)
	}
	fs := vfs.New()
	if err := snapshot.RestoreTree(fs, "", snap); err != nil {
		return nil, fmt.Errorf("artc: restoring snapshot for analysis: %w", err)
	}
	anz := core.NewAnalyzer(fs)

	type parseOut struct {
		tr  *trace.Trace
		err error
	}
	batches := make(chan []*trace.Record, streamDepth)
	done := make(chan struct{})
	out := make(chan parseOut, 1)
	go func() {
		defer close(batches)
		tr, err := trace.ParseStraceStream(r, streamBatch, func(recs []*trace.Record) error {
			select {
			case batches <- recs:
				return nil
			case <-done:
				return errStreamAborted
			}
		})
		out <- parseOut{tr, err}
	}()

	var feedErr error
	for recs := range batches {
		if feedErr != nil {
			continue // drain so the producer can exit
		}
		if feedErr = anz.Feed(recs); feedErr != nil {
			close(done)
		}
	}
	parsed := <-out
	if parsed.err != nil && !errors.Is(parsed.err, errStreamAborted) {
		return nil, parsed.err
	}
	if feedErr != nil {
		return nil, fmt.Errorf("artc: analysis: %w", feedErr)
	}
	an, err := anz.Finish(parsed.tr)
	if err != nil {
		return nil, fmt.Errorf("artc: analysis: %w", err)
	}
	g := core.BuildGraph(an, modes)
	if err := g.CheckAcyclic(); err != nil {
		return nil, err
	}
	return &Benchmark{
		Platform: parsed.tr.Platform,
		Modes:    modes,
		Trace:    parsed.tr,
		Snapshot: snap,
		Analysis: an,
		Graph:    g.Reduce(an),
		touches:  planTouches(an),
	}, nil
}
