// Package artc is the approximate-replay trace compiler: it applies the
// ROOT ordering rules (internal/core) to UNIX system-call traces,
// compiling a trace plus an initial file-tree snapshot into a replayable
// benchmark, and replays benchmarks on simulated target systems
// (internal/stack) with a choice of ordering methods:
//
//   - artc: ROOT resource-ordering dependencies (the paper's tool);
//   - single: one replay thread issues every call in trace order;
//   - temporal: one replay thread per traced thread, calls issued in
//     trace order (overlap preserved, no reordering);
//   - unconstrained: per-thread replay with no cross-thread
//     synchronization at all.
//
// Cross-platform replay is supported by emulating source-platform calls
// that the target lacks (§4.3.4).
package artc

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"strings"
	"sync"

	"rootreplay/internal/core"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
	"rootreplay/internal/vfs"
)

// Benchmark is a compiled, replayable trace.
type Benchmark struct {
	// Platform is the source platform the trace was collected on.
	Platform string
	// Modes are the ordering modes the dependency graph was built with.
	Modes core.ModeSet
	// Trace holds the raw records.
	Trace *trace.Trace
	// Snapshot is the initial file-tree state.
	Snapshot *snapshot.Snapshot
	// Analysis and Graph are the compiler's outputs: resource touch sets
	// and the ARTC dependency graph.
	Analysis *core.Analysis
	// Graph holds the ARTC (resource-ordering) dependency edges, after
	// transitive reduction.
	Graph *core.Graph
	// touches is the per-action FD/AIO touch plan Compile precomputes so
	// the replayer's per-action path need not scan touch lists (nil for
	// hand-built benchmarks; the replayer falls back to scanning).
	touches []actionTouches

	// memoMu guards memo, the per-ModeSet graph cache GraphFor fills for
	// replay-time mode overrides (ablation sweeps rebuild the same few
	// graphs over and over).
	memoMu sync.Mutex
	memo   map[core.ModeSet]*core.Graph
}

// GraphFor returns the dependency graph for the given mode set, building
// (and transitively reducing) it on first use and memoizing it on the
// benchmark. The compile-time mode set is answered from Benchmark.Graph.
// Safe for concurrent use.
func (b *Benchmark) GraphFor(modes core.ModeSet) *core.Graph {
	if modes == b.Modes && b.Graph != nil {
		return b.Graph
	}
	b.memoMu.Lock()
	defer b.memoMu.Unlock()
	if g, ok := b.memo[modes]; ok {
		return g
	}
	g := core.BuildGraph(b.Analysis, modes).Reduce(b.Analysis)
	if b.memo == nil {
		b.memo = make(map[core.ModeSet]*core.Graph)
	}
	b.memo[modes] = g
	return g
}

// Compile builds a benchmark from a trace and snapshot under the given
// ordering modes. A nil snapshot is inferred from the trace itself
// (every successfully accessed path that the trace did not create must
// pre-exist, sized to cover the largest read).
func Compile(tr *trace.Trace, snap *snapshot.Snapshot, modes core.ModeSet) (*Benchmark, error) {
	tr.Renumber()
	if snap == nil {
		snap = InferSnapshot(tr)
	}
	fs := vfs.New()
	if err := snapshot.RestoreTree(fs, "", snap); err != nil {
		return nil, fmt.Errorf("artc: restoring snapshot for analysis: %w", err)
	}
	an, err := core.Analyze(tr, fs)
	if err != nil {
		return nil, fmt.Errorf("artc: analysis: %w", err)
	}
	g := core.BuildGraph(an, modes)
	if err := g.CheckAcyclic(); err != nil {
		return nil, err
	}
	return &Benchmark{
		Platform: tr.Platform,
		Modes:    modes,
		Trace:    tr,
		Snapshot: snap,
		Analysis: an,
		Graph:    g.Reduce(an),
		touches:  planTouches(an),
	}, nil
}

// InferSnapshot derives the minimal initial state a trace requires. The
// prescan canonicalizes call names with stack.Canonical — the same
// mapping the analyzer applies — so the inferred snapshot and the trace
// model always agree on which call a record is (a hand-copied subset of
// the alias table used to live here and had drifted).
func InferSnapshot(tr *trace.Trace) *snapshot.Snapshot {
	var pre []snapshot.PreScanRecord
	for _, r := range tr.Records {
		ps := snapshot.PreScanRecord{
			Call: stack.Canonical(r.Call), Path: r.Path, Path2: r.Path2,
			FD: r.FD, Size: r.Size, Offset: r.Offset, OK: r.OK(),
		}
		switch ps.Call {
		case "open":
			ps.FD = r.Ret
			ps.Creates = r.Flags&trace.OCreat != 0
			ps.IsDir = r.Flags&trace.ODir != 0
		case "creat":
			// creat(2) is open with O_WRONLY|O_CREAT|O_TRUNC regardless of
			// the record's Flags field; the analyzer applies the same
			// expansion.
			ps.FD = r.Ret
			ps.Creates = true
		}
		pre = append(pre, ps)
	}
	return snapshot.FromTrace(pre)
}

// crcTable is the CRC-32C (Castagnoli) table both benchmark codecs use
// for their whole-artifact checksums; Castagnoli is hardware-accelerated
// on every platform the repo targets.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// crcWriter mirrors everything written into a running CRC-32C so the
// encoder can emit a whole-artifact checksum footer without buffering
// the artifact.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, crcTable, p)
	return cw.w.Write(p)
}

// Encode writes the benchmark as a single self-contained text artifact:
// a header, the snapshot section, the trace section, and a checksum
// footer over everything before it:
//
//	#artc-benchmark v2 platform=linux modes=...
//	%%snapshot
//	...
//	%%trace
//	...
//	%%end crc32c=89abcdef
//
// This is the moral equivalent of ARTC's generated-C benchmark: compile
// once, replay anywhere. For the compact compiled form that also skips
// recompilation on load, see EncodeBinary.
func (b *Benchmark) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	if _, err := fmt.Fprintf(cw, "#artc-benchmark v2 platform=%s modes=%s\n",
		b.Platform, encodeModes(b.Modes)); err != nil {
		return err
	}
	if _, err := io.WriteString(cw, "%%snapshot\n"); err != nil {
		return err
	}
	if err := b.Snapshot.Encode(cw); err != nil {
		return err
	}
	if _, err := io.WriteString(cw, "%%trace\n"); err != nil {
		return err
	}
	if err := b.Trace.Encode(cw); err != nil {
		return err
	}
	// The footer itself is excluded from the checksum it carries.
	if _, err := fmt.Fprintf(bw, "%%%%end crc32c=%08x\n", cw.crc); err != nil {
		return err
	}
	return bw.Flush()
}

// Decode reads a text-encoded benchmark and recompiles it (the analysis
// and dependency graph are deterministic functions of trace + snapshot +
// modes, so they are rebuilt rather than serialized; DecodeBinary loads
// them directly).
//
// Decode is strict about artifact integrity: the %%snapshot and %%trace
// markers must each appear exactly once, in order, at section
// boundaries — a body line that merely looks like a marker is a
// corruption error, not a section flip — and the artifact must end with
// a %%end footer whose CRC-32C matches every byte before it. Truncated
// files, repeated or out-of-order markers, checksum mismatches, and
// trailing garbage are all rejected with the byte offset of the fault.
func Decode(r io.Reader) (*Benchmark, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("artc: reading benchmark header: %w", err)
	}
	fieldsOf := strings.Fields(header)
	if len(fieldsOf) == 0 || fieldsOf[0] != "#artc-benchmark" {
		return nil, fmt.Errorf("artc: not a benchmark file")
	}
	if len(fieldsOf) < 2 || (fieldsOf[1] != "v1" && fieldsOf[1] != "v2") {
		return nil, fmt.Errorf("artc: unsupported benchmark format version in header %q", strings.TrimSpace(header))
	}
	platform := "linux"
	modes := core.DefaultModes()
	for _, f := range fieldsOf {
		if v, ok := strings.CutPrefix(f, "platform="); ok {
			platform = v
		}
		if v, ok := strings.CutPrefix(f, "modes="); ok {
			m, err := decodeModes(v)
			if err != nil {
				return nil, err
			}
			modes = m
		}
	}

	const (
		sectNone = iota // after header, before %%snapshot
		sectSnap
		sectTrace
		sectDone // after the %%end footer
	)
	crc := crc32.Update(0, crcTable, []byte(header))
	offset := int64(len(header))
	section := sectNone
	var snapText, traceText strings.Builder
	for {
		line, rerr := br.ReadString('\n')
		if line != "" {
			lineStart := offset
			switch trimmed := strings.TrimSpace(line); {
			case trimmed == "%%snapshot":
				if section != sectNone {
					return nil, fmt.Errorf("artc: offset %d: repeated or out-of-order %%%%snapshot marker", lineStart)
				}
				section = sectSnap
			case trimmed == "%%trace":
				if section != sectSnap {
					return nil, fmt.Errorf("artc: offset %d: repeated or out-of-order %%%%trace marker", lineStart)
				}
				section = sectTrace
			case strings.HasPrefix(trimmed, "%%end"):
				if section != sectTrace {
					return nil, fmt.Errorf("artc: offset %d: %%%%end footer before both sections", lineStart)
				}
				var want uint32
				if _, err := fmt.Sscanf(trimmed, "%%%%end crc32c=%08x", &want); err != nil {
					return nil, fmt.Errorf("artc: offset %d: malformed %%%%end footer %q", lineStart, trimmed)
				}
				if want != crc {
					return nil, fmt.Errorf("artc: offset %d: artifact checksum mismatch: footer says crc32c=%08x, content is %08x",
						lineStart, want, crc)
				}
				section = sectDone
			case strings.HasPrefix(trimmed, "%%"):
				return nil, fmt.Errorf("artc: offset %d: unknown section marker %q", lineStart, trimmed)
			case section == sectSnap:
				snapText.WriteString(line)
			case section == sectTrace:
				traceText.WriteString(line)
			case trimmed == "":
				// Blank padding between header and sections is tolerated.
			case section == sectDone:
				return nil, fmt.Errorf("artc: offset %d: trailing data after %%%%end footer", lineStart)
			default:
				return nil, fmt.Errorf("artc: offset %d: content before %%%%snapshot marker", lineStart)
			}
			if section != sectDone {
				crc = crc32.Update(crc, crcTable, []byte(line))
			}
			offset += int64(len(line))
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return nil, rerr
		}
	}
	if section != sectDone {
		missing := "%%end footer"
		switch section {
		case sectNone:
			missing = "%%snapshot section"
		case sectSnap:
			missing = "%%trace section"
		}
		return nil, fmt.Errorf("artc: truncated benchmark: reached EOF at offset %d without %s", offset, missing)
	}
	snap, err := snapshot.Decode(strings.NewReader(snapText.String()))
	if err != nil {
		return nil, err
	}
	tr, err := trace.Decode(strings.NewReader(traceText.String()))
	if err != nil {
		return nil, err
	}
	tr.Platform = platform
	return Compile(tr, snap, modes)
}

// encodeModes renders a ModeSet as a comma-joined flag list.
func encodeModes(m core.ModeSet) string {
	var parts []string
	if m.ProgramSeq {
		parts = append(parts, "program_seq")
	}
	if m.FileSeq {
		parts = append(parts, "file_seq")
	}
	if m.PathStageName {
		parts = append(parts, "path_stage+")
	}
	if m.FDStage {
		parts = append(parts, "fd_stage")
	}
	if m.FDSeq {
		parts = append(parts, "fd_seq")
	}
	if m.AIOStage {
		parts = append(parts, "aio_stage")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// decodeModes parses the encodeModes format; "none" is the empty set.
func decodeModes(s string) (core.ModeSet, error) {
	var m core.ModeSet
	if s == "none" || s == "" {
		return m, nil
	}
	for _, p := range strings.Split(s, ",") {
		switch p {
		case "program_seq":
			m.ProgramSeq = true
		case "file_seq":
			m.FileSeq = true
		case "path_stage+":
			m.PathStageName = true
		case "fd_stage":
			m.FDStage = true
		case "fd_seq":
			m.FDSeq = true
		case "aio_stage":
			m.AIOStage = true
		default:
			return m, fmt.Errorf("artc: unknown mode %q", p)
		}
	}
	return m, nil
}

// ParseModes exposes mode-list parsing for CLI flags (e.g.
// "file_seq,path_stage+,fd_stage").
func ParseModes(s string) (core.ModeSet, error) { return decodeModes(s) }

// ModesString renders modes for display.
func ModesString(m core.ModeSet) string { return encodeModes(m) }
