// Package artc is the approximate-replay trace compiler: it applies the
// ROOT ordering rules (internal/core) to UNIX system-call traces,
// compiling a trace plus an initial file-tree snapshot into a replayable
// benchmark, and replays benchmarks on simulated target systems
// (internal/stack) with a choice of ordering methods:
//
//   - artc: ROOT resource-ordering dependencies (the paper's tool);
//   - single: one replay thread issues every call in trace order;
//   - temporal: one replay thread per traced thread, calls issued in
//     trace order (overlap preserved, no reordering);
//   - unconstrained: per-thread replay with no cross-thread
//     synchronization at all.
//
// Cross-platform replay is supported by emulating source-platform calls
// that the target lacks (§4.3.4).
package artc

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"sync"

	"rootreplay/internal/core"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/trace"
	"rootreplay/internal/vfs"
)

// Benchmark is a compiled, replayable trace.
type Benchmark struct {
	// Platform is the source platform the trace was collected on.
	Platform string
	// Modes are the ordering modes the dependency graph was built with.
	Modes core.ModeSet
	// Trace holds the raw records.
	Trace *trace.Trace
	// Snapshot is the initial file-tree state.
	Snapshot *snapshot.Snapshot
	// Analysis and Graph are the compiler's outputs: resource touch sets
	// and the ARTC dependency graph.
	Analysis *core.Analysis
	// Graph holds the ARTC (resource-ordering) dependency edges, after
	// transitive reduction.
	Graph *core.Graph
	// touches is the per-action FD/AIO touch plan Compile precomputes so
	// the replayer's per-action path need not scan touch lists (nil for
	// hand-built benchmarks; the replayer falls back to scanning).
	touches []actionTouches

	// memoMu guards memo, the per-ModeSet graph cache GraphFor fills for
	// replay-time mode overrides (ablation sweeps rebuild the same few
	// graphs over and over).
	memoMu sync.Mutex
	memo   map[core.ModeSet]*core.Graph
}

// GraphFor returns the dependency graph for the given mode set, building
// (and transitively reducing) it on first use and memoizing it on the
// benchmark. The compile-time mode set is answered from Benchmark.Graph.
// Safe for concurrent use.
func (b *Benchmark) GraphFor(modes core.ModeSet) *core.Graph {
	if modes == b.Modes && b.Graph != nil {
		return b.Graph
	}
	b.memoMu.Lock()
	defer b.memoMu.Unlock()
	if g, ok := b.memo[modes]; ok {
		return g
	}
	g := core.BuildGraph(b.Analysis, modes).Reduce(b.Analysis)
	if b.memo == nil {
		b.memo = make(map[core.ModeSet]*core.Graph)
	}
	b.memo[modes] = g
	return g
}

// Compile builds a benchmark from a trace and snapshot under the given
// ordering modes. A nil snapshot is inferred from the trace itself
// (every successfully accessed path that the trace did not create must
// pre-exist, sized to cover the largest read).
func Compile(tr *trace.Trace, snap *snapshot.Snapshot, modes core.ModeSet) (*Benchmark, error) {
	tr.Renumber()
	if snap == nil {
		snap = InferSnapshot(tr)
	}
	fs := vfs.New()
	if err := snapshot.RestoreTree(fs, "", snap); err != nil {
		return nil, fmt.Errorf("artc: restoring snapshot for analysis: %w", err)
	}
	an, err := core.Analyze(tr, fs)
	if err != nil {
		return nil, fmt.Errorf("artc: analysis: %w", err)
	}
	g := core.BuildGraph(an, modes)
	if err := g.CheckAcyclic(); err != nil {
		return nil, err
	}
	return &Benchmark{
		Platform: tr.Platform,
		Modes:    modes,
		Trace:    tr,
		Snapshot: snap,
		Analysis: an,
		Graph:    g.Reduce(an),
		touches:  planTouches(an),
	}, nil
}

// InferSnapshot derives the minimal initial state a trace requires.
func InferSnapshot(tr *trace.Trace) *snapshot.Snapshot {
	var pre []snapshot.PreScanRecord
	for _, r := range tr.Records {
		ps := snapshot.PreScanRecord{
			Call: canonicalFor(r), Path: r.Path, Path2: r.Path2,
			FD: r.FD, Size: r.Size, Offset: r.Offset, OK: r.OK(),
		}
		if ps.Call == "open" {
			ps.FD = r.Ret
			ps.Creates = r.Flags&trace.OCreat != 0
			ps.IsDir = r.Flags&trace.ODir != 0
		}
		pre = append(pre, ps)
	}
	return snapshot.FromTrace(pre)
}

func canonicalFor(r *trace.Record) string {
	// Local copy of the canonical-name logic used during prescan.
	switch r.Call {
	case "open64", "openat", "creat", "creat64":
		return "open"
	case "pread64":
		return "pread"
	case "stat64", "lstat64":
		return strings.TrimSuffix(r.Call, "64")
	default:
		return r.Call
	}
}

// Encode writes the benchmark as a single self-contained text artifact:
// a header, the snapshot section, and the trace section. This is the
// moral equivalent of ARTC's generated-C benchmark: compile once,
// replay anywhere.
func (b *Benchmark) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "#artc-benchmark v1 platform=%s modes=%s\n", b.Platform, encodeModes(b.Modes))
	bw.WriteString("%%snapshot\n")
	if err := b.Snapshot.Encode(bw); err != nil {
		return err
	}
	bw.WriteString("%%trace\n")
	if err := b.Trace.Encode(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// Decode reads an encoded benchmark and recompiles it (the analysis and
// dependency graph are deterministic functions of trace + snapshot +
// modes, so they are rebuilt rather than serialized).
func Decode(r io.Reader) (*Benchmark, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("artc: reading benchmark header: %w", err)
	}
	if !strings.HasPrefix(header, "#artc-benchmark") {
		return nil, fmt.Errorf("artc: not a benchmark file")
	}
	platform := "linux"
	modes := core.DefaultModes()
	for _, f := range strings.Fields(header) {
		if v, ok := strings.CutPrefix(f, "platform="); ok {
			platform = v
		}
		if v, ok := strings.CutPrefix(f, "modes="); ok {
			m, err := decodeModes(v)
			if err != nil {
				return nil, err
			}
			modes = m
		}
	}
	var snapText, traceText strings.Builder
	section := ""
	for {
		line, err := br.ReadString('\n')
		if line != "" {
			switch strings.TrimSpace(line) {
			case "%%snapshot":
				section = "snapshot"
			case "%%trace":
				section = "trace"
			default:
				switch section {
				case "snapshot":
					snapText.WriteString(line)
				case "trace":
					traceText.WriteString(line)
				}
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	snap, err := snapshot.Decode(strings.NewReader(snapText.String()))
	if err != nil {
		return nil, err
	}
	tr, err := trace.Decode(strings.NewReader(traceText.String()))
	if err != nil {
		return nil, err
	}
	tr.Platform = platform
	return Compile(tr, snap, modes)
}

// encodeModes renders a ModeSet as a comma-joined flag list.
func encodeModes(m core.ModeSet) string {
	var parts []string
	if m.ProgramSeq {
		parts = append(parts, "program_seq")
	}
	if m.FileSeq {
		parts = append(parts, "file_seq")
	}
	if m.PathStageName {
		parts = append(parts, "path_stage+")
	}
	if m.FDStage {
		parts = append(parts, "fd_stage")
	}
	if m.FDSeq {
		parts = append(parts, "fd_seq")
	}
	if m.AIOStage {
		parts = append(parts, "aio_stage")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// decodeModes parses the encodeModes format; "none" is the empty set.
func decodeModes(s string) (core.ModeSet, error) {
	var m core.ModeSet
	if s == "none" || s == "" {
		return m, nil
	}
	for _, p := range strings.Split(s, ",") {
		switch p {
		case "program_seq":
			m.ProgramSeq = true
		case "file_seq":
			m.FileSeq = true
		case "path_stage+":
			m.PathStageName = true
		case "fd_stage":
			m.FDStage = true
		case "fd_seq":
			m.FDSeq = true
		case "aio_stage":
			m.AIOStage = true
		default:
			return m, fmt.Errorf("artc: unknown mode %q", p)
		}
	}
	return m, nil
}

// ParseModes exposes mode-list parsing for CLI flags (e.g.
// "file_seq,path_stage+,fd_stage").
func ParseModes(s string) (core.ModeSet, error) { return decodeModes(s) }

// ModesString renders modes for display.
func ModesString(m core.ModeSet) string { return encodeModes(m) }
