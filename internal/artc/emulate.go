package artc

import (
	"rootreplay/internal/core"
	"rootreplay/internal/sim"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
	"rootreplay/internal/vfs"
)

// applyWithEmulation executes one (rewritten) record on the target
// system, emulating source-platform calls the target lacks with the
// closest available equivalents (§4.3.4). It returns the primary
// operation's result and whether emulation was used.
//
// The emulation table covers the paper's 19 cases:
//
//   - 11 special metadata-access APIs: getattrlist, setattrlist,
//     getdirentriesattr and the OS X xattr forms on targets without them;
//     the flat xattr family (getxattr/setxattr/listxattr/removexattr and
//     l-variants) emulated as plain metadata accesses on Illumos;
//   - 3 file-system hints: fadvise (prefetch), fallocate (preallocation),
//     and fcntl cache hints, mapped between posix_fadvise /
//     F_RDADVISE / F_PREALLOCATE / F_NOCACHE or dropped on FreeBSD;
//   - 3 obscure undocumented OS X calls (fsctl, searchfs, vfsconf),
//     emulated with small metadata accesses;
//   - fsync semantics: replaying a Linux trace on OS X optionally issues
//     fcntl(F_FULLFSYNC) for true durability;
//   - exchangedata: emulated with a link and two renames on non-OS X
//     targets.
func (rs *replayState) applyWithEmulation(t *sim.Thread, act *core.Action, rec *trace.Record) (int64, vfs.Errno, bool) {
	sys := rs.sys
	target := sys.Conf.Platform
	call := stack.Canonical(rec.Call)

	// dup2 always needs rewriting: the traced target number may collide
	// with a remapped descriptor, so duplicate onto a fresh number and
	// retire the old generation explicitly.
	if call == "dup2" {
		return rs.emulateDup2(t, act, rec)
	}

	// fsync semantics across platforms.
	if call == "fsync" && target == stack.OSX && rs.b.Platform != string(stack.OSX) && rs.opts.FullFsyncOnOSX {
		ret, err := sys.Fcntl(t, rec.FD, "F_FULLFSYNC", 0)
		return ret, err, true
	}

	if stack.Native(target, call) {
		ret, err := sys.Apply(t, rec)
		return ret, err, false
	}

	switch call {
	case "exchangedata":
		// No atomic equivalent: a link and two renames.
		tmp := rec.Path + ".xchg"
		if _, err := sys.Link(t, rec.Path, tmp); err != vfs.OK {
			return -1, err, true
		}
		if _, err := sys.Rename(t, rec.Path2, rec.Path); err != vfs.OK {
			sys.Unlink(t, tmp)
			return -1, err, true
		}
		if _, err := sys.Rename(t, tmp, rec.Path2); err != vfs.OK {
			return -1, err, true
		}
		return 0, vfs.OK, true
	case "getattrlist", "fsctl", "vfsconf":
		ret, err := sys.Stat(t, rec.Path)
		if err == vfs.OK {
			ret = 0
		}
		return ret, err, true
	case "setattrlist":
		// Bulk attribute write: the nearest equivalent is touching the
		// metadata (utimes-style).
		ret, err := sys.Utimes(t, rec.Path)
		return ret, err, true
	case "searchfs":
		// Catalog search becomes a directory scan.
		fd, err := sys.Open(t, rec.Path, trace.ORdonly|trace.ODir, 0)
		if err != vfs.OK {
			// Non-directories degrade to a stat.
			ret, serr := sys.Stat(t, rec.Path)
			if serr == vfs.OK {
				ret = 0
			}
			return ret, serr, true
		}
		for {
			n, derr := sys.Getdents(t, fd, 128)
			if derr != vfs.OK || n == 0 {
				break
			}
		}
		sys.Close(t, fd)
		return 0, vfs.OK, true
	case "getdirentriesattr":
		ret, err := sys.Getdents(t, rec.FD, rec.Size)
		return ret, err, true
	case "fallocate":
		// OS X spells preallocation fcntl(F_PREALLOCATE); FreeBSD and
		// Illumos approximate with an extending truncate when needed.
		if target == stack.OSX {
			ret, err := sys.Fcntl(t, rec.FD, "F_PREALLOCATE", rec.Offset+rec.Size)
			return ret, err, true
		}
		ret, err := sys.Ftruncate(t, rec.FD, rec.Offset+rec.Size)
		return ret, err, true
	case "fadvise":
		if target == stack.OSX {
			if rec.Name == "POSIX_FADV_WILLNEED" {
				ret, err := sys.Fcntl(t, rec.FD, "F_RDADVISE", rec.Size)
				return ret, err, true
			}
			// Other advice has no OS X equivalent; accept and ignore.
			if _, err := sys.Fstat(t, rec.FD); err != vfs.OK {
				return -1, err, true
			}
			return 0, vfs.OK, true
		}
		// FreeBSD lacks some hints entirely: ignored (§4.3.4).
		return 0, vfs.OK, true
	case "getxattr", "lgetxattr", "listxattr", "llistxattr":
		// Illumos target: no flat xattr calls; emulate with a metadata
		// access and report the attribute missing.
		if _, err := sys.Stat(t, rec.Path); err != vfs.OK {
			return -1, err, true
		}
		return -1, vfs.ENODATA, true
	case "setxattr", "lsetxattr", "removexattr", "lremovexattr":
		if _, err := sys.Stat(t, rec.Path); err != vfs.OK {
			return -1, err, true
		}
		return 0, vfs.OK, true
	case "fgetxattr", "flistxattr":
		if _, err := sys.Fstat(t, rec.FD); err != vfs.OK {
			return -1, err, true
		}
		return -1, vfs.ENODATA, true
	case "fsetxattr", "fremovexattr":
		if _, err := sys.Fstat(t, rec.FD); err != vfs.OK {
			return -1, err, true
		}
		return 0, vfs.OK, true
	default:
		// Unknown on this target and no emulation: execute directly (the
		// model implements all canonical calls) and count it as emulated.
		ret, err := sys.Apply(t, rec)
		return ret, err, true
	}
}

// emulateDup2 replays dup2 onto a fresh descriptor number, explicitly
// retiring the descriptor generation dup2 implicitly closed.
func (rs *replayState) emulateDup2(t *sim.Thread, act *core.Action, rec *trace.Record) (int64, vfs.Errno, bool) {
	// Close the old generation of the target number, if it was open.
	for _, tc := range act.Touches {
		if tc.Res.Kind == core.KFD && tc.Role == core.RoleDelete {
			if actual, ok := rs.fdMap[tc.Res]; ok {
				rs.sys.Close(t, actual)
			}
		}
	}
	ret, err := rs.sys.Dup(t, rec.FD)
	return ret, err, false
}
