package artc

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"rootreplay/internal/core"
	"rootreplay/internal/fault"
	"rootreplay/internal/obs"
	"rootreplay/internal/sim"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/stack"
	"rootreplay/internal/storage"
	"rootreplay/internal/trace"
	"rootreplay/internal/vfs"
)

// Method selects a replay ordering strategy (§5's four competitors).
type Method string

// Replay methods.
const (
	MethodARTC          Method = "artc"
	MethodSingle        Method = "single"
	MethodTemporal      Method = "temporal"
	MethodUnconstrained Method = "unconstrained"
)

// Speed selects how traced inter-call gaps (predelay) are reproduced.
type Speed int

// Speeds.
const (
	// AFAP ignores predelay: as fast as possible.
	AFAP Speed = iota
	// Natural sleeps each action's traced predelay before issuing it.
	Natural
	// Scaled sleeps a multiple of the traced predelay.
	Scaled
)

// Options configure a replay.
type Options struct {
	Method Method
	Speed  Speed
	// Scale multiplies predelay when Speed == Scaled.
	Scale float64
	// Prefix places the replayed tree under a directory (initialization
	// must have used the same prefix).
	Prefix string
	// FullFsyncOnOSX chooses strict durability when emulating a Linux
	// trace's fsync on an OS X target: F_FULLFSYNC instead of plain
	// fsync (§4.3.4).
	FullFsyncOnOSX bool
	// MaxErrorSamples bounds the retained mismatch descriptions. Zero
	// selects the default of 10 (callers cannot disable retention by
	// leaving the field unset); a negative value retains none.
	MaxErrorSamples int
	// SelfCheck re-validates the executed order against the dependency
	// graph after replay (a replayer assertion, cheap and on by default
	// in tests).
	SelfCheck bool
	// Modes, when non-nil, overrides the benchmark's compiled mode set
	// for this replay: the dependency graph is rebuilt from the existing
	// analysis, so individual ordering constraints can be toggled
	// without recompiling (§4.1 "Flexibility"). Only meaningful with
	// MethodARTC.
	Modes *core.ModeSet
	// Obs, when non-nil, receives per-action spans and kernel/stack
	// counter samples during the replay. Off by default; the disabled
	// path costs one pointer check per action.
	Obs *obs.Recorder
	// ObsInterval is the minimum virtual time between counter-probe
	// sweeps; non-positive selects obs.DefaultProbeInterval. Only
	// meaningful with Obs set.
	ObsInterval time.Duration
	// Fault, when non-nil, applies the injector's plan to the replay:
	// selected actions return injected errors (feeding the semantic
	// error accounting), injected failures are retried with capped
	// backoff in virtual time, the stall watchdog converts silent hangs
	// into structured StallReports, and the degrade mode decides between
	// skip-and-count and abort. Pass the same injector in the target's
	// stack.Config.Faults so storage and syscall counters share one
	// fault.Stats. Nil costs one pointer check per action.
	Fault *fault.Injector
}

// Report is the replayer's detailed output (§4.3.3): wall-clock time,
// semantic-accuracy counts, per-call and per-thread timing, and the
// concurrency achieved.
type Report struct {
	Method  Method
	Actions int
	// Elapsed is the virtual wall-clock duration of the replay.
	Elapsed time.Duration
	// Errors counts semantic mismatches: calls whose success/failure or
	// errno differed from the trace.
	Errors int
	// ErrorSamples holds the first few mismatch descriptions.
	ErrorSamples []string
	// Emulated counts calls replayed through the cross-platform
	// emulation layer.
	Emulated int
	// IssueAt and DoneAt record each action's issue and completion
	// times, relative to replay start.
	IssueAt, DoneAt []time.Duration
	// CallTime and CallCount aggregate replay in-call time by call name.
	CallTime  map[string]time.Duration
	CallCount map[string]int64
	// ThreadTime is total in-call time across replay threads; dividing
	// by Elapsed gives the mean number of outstanding calls, the
	// concurrency measure of Figure 9.
	ThreadTime time.Duration
	// PerThread is each traced thread's total in-call time.
	PerThread map[int]time.Duration
	// Graph summarizes the dependency structure replay enforced.
	Graph core.GraphStats
	// FaultStats snapshots the fault injector's counters at the end of
	// the replay (nil when no injector was configured).
	FaultStats *fault.Stats

	// Coord holds the clock-exchange coordinator's wait accounting for
	// sharded replays (nil for serial replays or cross-edge-free plans).
	// Excluded from JSON so sharded exports stay byte-identical to
	// serial ones; the deterministic parts feed shard.SliceProfile.
	Coord *CoordStats `json:"-"`

	// graph retains the enforced dependency graph for post-hoc analysis
	// (CriticalPath); unexported so reports stay JSON-light.
	graph *core.Graph
}

// Concurrency returns the mean number of outstanding system calls
// during the replay.
func (r *Report) Concurrency() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.ThreadTime) / float64(r.Elapsed)
}

// CriticalPath computes the replay's longest dependency chain from the
// recorded per-action times and the enforced graph. b must be the
// benchmark the report came from.
func (r *Report) CriticalPath(b *Benchmark) *obs.CriticalPath {
	if r.graph == nil {
		return &obs.CriticalPath{}
	}
	return obs.Critical(r.graph, b.Trace.Records, r.IssueAt, r.DoneAt)
}

// BlockedAction is one not-yet-completed action in a StallReport, with
// the replayer's explanation of what it is waiting for.
type BlockedAction struct {
	Action int
	TID    int
	Call   string
	Path   string
	// Reason is the wait description: the unsatisfied dependency (with
	// the first genuinely-unsatisfied edge named) for an action parked
	// on the graph, or "in call" for one stuck inside the stack.
	Reason string
}

// String renders the blocked action one line.
func (b BlockedAction) String() string {
	return fmt.Sprintf("action %d [T%d] %s(%s): %s", b.Action, b.TID, b.Call, b.Path, b.Reason)
}

// maxStallBlocked bounds a StallReport's blocked-action list; the rest
// are counted in Truncated.
const maxStallBlocked = 32

// StallReport is the structured error a fault-injected replay returns
// when the stall watchdog fires without progress or the degrade-abort
// error budget is exhausted: which actions were stuck and why, plus the
// critical path of the completed prefix when observability was on. It
// converts a silent hang into an actionable deadlock report.
type StallReport struct {
	// Trigger is "watchdog" or "error-budget".
	Trigger string
	// At is the virtual time of the abort, relative to replay start;
	// Window is the watchdog interval that elapsed without progress
	// (zero for error-budget aborts).
	At, Window time.Duration
	// Completed of Total actions had finished; Errors semantic
	// mismatches had accumulated.
	Completed, Total int
	Errors           int
	// Blocked lists stuck actions with wait reasons (capped at
	// maxStallBlocked; Truncated counts the omitted remainder).
	Blocked   []BlockedAction
	Truncated int
	// Crit is the critical path over the completed prefix, attached when
	// the replay ran with Options.Obs set.
	Crit *obs.CriticalPath
}

// Error implements the error interface with a one-paragraph summary
// naming every reported blocked action and its wait reason.
func (s *StallReport) Error() string {
	msg := fmt.Sprintf("artc: replay stalled (%s) at %v: %d/%d actions done, %d error(s), %d blocked",
		s.Trigger, s.At, s.Completed, s.Total, s.Errors, len(s.Blocked)+s.Truncated)
	for _, b := range s.Blocked {
		msg += "; " + b.String()
	}
	if s.Truncated > 0 {
		msg += fmt.Sprintf("; ... %d more", s.Truncated)
	}
	return msg
}

// Init restores the benchmark's initial snapshot into sys under prefix.
func Init(sys *stack.System, b *Benchmark, prefix string) error {
	return snapshot.Restore(sys, prefix, b.Snapshot)
}

// DeltaInit restores the snapshot with minimal work after a prior
// replay.
func DeltaInit(sys *stack.System, b *Benchmark, prefix string) (snapshot.DeltaStats, error) {
	return snapshot.DeltaRestore(sys, prefix, b.Snapshot)
}

// replayState is the shared bookkeeping the replay threads use.
type replayState struct {
	sys  *stack.System
	b    *Benchmark
	opts Options
	g    *core.Graph

	// remaining[i] counts action i's unsatisfied dependency edges: it
	// starts at the graph indegree and is decremented once per edge when
	// the edge's From issues (WaitIssue) or completes (WaitComplete).
	// The decrement that reaches zero unparks waiting[i] exactly once, so
	// a blocked action wakes once instead of re-scanning its dependency
	// list on every predecessor broadcast.
	remaining []int32
	issueAt   []time.Duration
	doneAt    []time.Duration
	// status tracks each action's lifecycle explicitly (actIssued,
	// actDone bits). issueAt/doneAt alone cannot distinguish "not yet
	// issued" from "legitimately issued at virtual time 0".
	status []uint8
	// waiting[i] is action i's replay thread while it is parked on the
	// dependency counter, nil otherwise. Registering the thread directly
	// and using the kernel's pooled park/unpark path replaces a lazily
	// allocated sim.Cond per blocked action.
	waiting  []*sim.Thread
	fdMap    map[core.ResourceID]int64
	aioMap   map[core.ResourceID]int64
	predelay []time.Duration
	start    time.Duration

	// Observability (all nil/empty when opts.Obs is nil). releasedEdge[i]
	// is the graph edge whose satisfaction zeroed remaining[i] (-1 if the
	// action never had dependencies outstanding); releasedAt[i] is when.
	obs          *obs.Recorder
	releasedEdge []int32
	releasedAt   []time.Duration
	obsDetach    func()

	// Fault injection (all nil/zero when opts.Fault is nil). completed
	// counts finished actions — the watchdog's progress signal;
	// lastProgress is the count at the previous watchdog fire; stall is
	// set (and the kernel stopped) when the watchdog fires without
	// progress or the degrade-abort budget is exhausted.
	inj          *fault.Injector
	completed    int
	lastProgress int
	watchdog     *sim.Timer
	stall        *StallReport

	// sub is set when this state replays one component of a sharded
	// replay (see sharded.go); nil for a whole-benchmark replay. All
	// shard-specific work hides behind this one pointer check.
	sub *subState

	// sampleAt records, parallel to rep.ErrorSamples, each sample's
	// completion time — the sharded merge key. Only filled when sub is
	// set; the serial path leaves it nil.
	sampleAt []time.Duration

	rep *Report
}

// gi maps a state-local action index to its trace-global index. For a
// whole-benchmark replay they are the same; for a shard member the
// component's actions are renumbered densely and gi translates back for
// everything user-visible (reports, spans, samples, stall reasons,
// fault-injection keys).
func (rs *replayState) gi(idx int) int {
	if rs.sub != nil {
		return int(rs.sub.global[idx])
	}
	return idx
}

// Action lifecycle bits in replayState.status.
const (
	actIssued uint8 = 1 << iota
	actDone
)

// Replay executes the benchmark on sys (which must already be
// initialized via Init) and runs the simulation to completion.
func Replay(sys *stack.System, b *Benchmark, opts Options) (*Report, error) {
	rs, err := start(sys, b, opts)
	if err != nil {
		return nil, err
	}
	if err := sys.K.Run(); err != nil {
		return nil, fmt.Errorf("artc: replay stalled: %w", err)
	}
	return rs.finish()
}

// ConcurrentItem pairs a benchmark with its replay options for
// ReplayConcurrent.
type ConcurrentItem struct {
	B    *Benchmark
	Opts Options
}

// ReplayConcurrent replays several benchmarks simultaneously on one
// system — the §4.3.2 scenario of browsing photos in iPhoto while
// listening to music in iTunes. Each benchmark's snapshot must have been
// restored first (overlay init: call Init once per benchmark, with
// distinct prefixes if their trees collide). Reports are returned in
// argument order.
func ReplayConcurrent(sys *stack.System, items []ConcurrentItem) ([]*Report, error) {
	states := make([]*replayState, len(items))
	for i, it := range items {
		rs, err := start(sys, it.B, it.Opts)
		if err != nil {
			return nil, fmt.Errorf("artc: benchmark %d: %w", i, err)
		}
		states[i] = rs
	}
	if err := sys.K.Run(); err != nil {
		return nil, fmt.Errorf("artc: concurrent replay stalled: %w", err)
	}
	// A watchdog or degrade abort stops the whole kernel, leaving the
	// other benchmarks incomplete: report the stall, not the incidental
	// self-check failures of its victims.
	for i, rs := range states {
		if rs.stall != nil {
			return nil, fmt.Errorf("artc: benchmark %d: %w", i, rs.stall)
		}
	}
	reports := make([]*Report, len(states))
	for i, rs := range states {
		rep, err := rs.finish()
		if err != nil {
			return nil, fmt.Errorf("artc: benchmark %d: %w", i, err)
		}
		reports[i] = rep
	}
	return reports, nil
}

// methodGraph resolves the replay method's dependency graph, defaulting
// the method in opts.
func methodGraph(b *Benchmark, opts *Options) (*core.Graph, error) {
	switch opts.Method {
	case MethodARTC, "":
		opts.Method = MethodARTC
		g := b.Graph
		if opts.Modes != nil {
			g = b.GraphFor(*opts.Modes)
		}
		return g, nil
	case MethodTemporal:
		return core.TemporalGraph(b.Analysis), nil
	case MethodSingle, MethodUnconstrained:
		return core.UnconstrainedGraph(b.Analysis), nil
	default:
		return nil, fmt.Errorf("artc: unknown replay method %q", opts.Method)
	}
}

// start validates options, builds the method's graph, and spawns the
// replay threads; the caller runs the kernel and then calls finish.
func start(sys *stack.System, b *Benchmark, opts Options) (*replayState, error) {
	if opts.MaxErrorSamples == 0 {
		opts.MaxErrorSamples = 10
	}
	g, err := methodGraph(b, &opts)
	if err != nil {
		return nil, err
	}
	rs := newReplayState(sys, b, opts, g)
	rs.spawnThreads()
	return rs, nil
}

// newReplayState builds the replay bookkeeping for one benchmark on one
// system: dependency counters, observability probes, and the fault
// watchdog. opts must already have MaxErrorSamples normalized and the
// method defaulted (see start).
func newReplayState(sys *stack.System, b *Benchmark, opts Options, g *core.Graph) *replayState {
	n := len(b.Trace.Records)
	remaining := make([]int32, n)
	for i, d := range g.Indegree {
		remaining[i] = int32(d)
	}
	rs := &replayState{
		sys:       sys,
		b:         b,
		opts:      opts,
		g:         g,
		remaining: remaining,
		issueAt:   make([]time.Duration, n),
		doneAt:    make([]time.Duration, n),
		status:    make([]uint8, n),
		waiting:   make([]*sim.Thread, n),
		fdMap:     make(map[core.ResourceID]int64),
		aioMap:    make(map[core.ResourceID]int64),
		predelay:  computePredelay(b.Trace),
		start:     sys.K.Now(),
		rep: &Report{
			Method:    opts.Method,
			Actions:   n,
			IssueAt:   make([]time.Duration, n),
			DoneAt:    make([]time.Duration, n),
			CallTime:  make(map[string]time.Duration),
			CallCount: make(map[string]int64),
			PerThread: make(map[int]time.Duration),
			graph:     g,
		},
	}

	if opts.Obs != nil {
		rs.obs = opts.Obs
		rs.releasedEdge = make([]int32, n)
		for i := range rs.releasedEdge {
			rs.releasedEdge[i] = -1
		}
		rs.releasedAt = make([]time.Duration, n)
		probes := []obs.Probe{
			{Kind: obs.CounterRunq, Fn: func() float64 { return float64(sys.K.RunqLen()) }},
		}
		if sys.Sched != nil {
			probes = append(probes,
				obs.Probe{Kind: obs.CounterIOQueued, Fn: func() float64 {
					return float64(sys.Sched.Outstanding() - sys.Sched.InFlight())
				}},
				obs.Probe{Kind: obs.CounterIOInflight, Fn: func() float64 {
					return float64(sys.Sched.InFlight())
				}})
		}
		if sys.Dev != nil {
			// Windowed utilization: busy-time delta over the virtual time
			// since the previous sweep, in percent.
			par := sys.Dev.Parallelism()
			lastBusy := sys.Dev.Stats().BusyTime
			lastAt := sys.K.Now()
			probes = append(probes, obs.Probe{Kind: obs.CounterDevUtil, Fn: func() float64 {
				now := sys.K.Now()
				busy := sys.Dev.Stats().BusyTime
				u := storage.Stats{BusyTime: busy - lastBusy}.Util(now-lastAt, par)
				lastBusy, lastAt = busy, now
				return u * 100
			}})
		}
		rs.obsDetach = rs.obs.InstallProbes(sys.K, opts.ObsInterval, probes...)
	}

	if opts.Fault != nil {
		rs.inj = opts.Fault
		if wd := rs.inj.Watchdog(); wd > 0 && n > 0 {
			// The watchdog fires every wd of virtual time; a fire that
			// sees no completions since the previous one declares the
			// replay stalled, records the structured report, and stops
			// the kernel. Once every action is done it simply does not
			// re-arm. lastProgress starts at -1 so the first fire always
			// records a baseline rather than stalling; detection latency
			// is therefore at most two windows.
			rs.lastProgress = -1
			rs.watchdog = sys.K.NewTimer(func() {
				switch {
				case rs.completed >= n:
				case rs.completed == rs.lastProgress:
					rs.stall = rs.buildStall("watchdog")
					rs.sys.K.Stop()
				default:
					rs.lastProgress = rs.completed
					rs.watchdog.Reset(wd)
				}
			})
			rs.watchdog.Reset(wd)
		}
	}
	return rs
}

// spawnThreads creates the replay threads: one per traced thread (in TID
// order), or a single thread for MethodSingle.
func (rs *replayState) spawnThreads() {
	n := len(rs.b.Trace.Records)
	if rs.opts.Method == MethodSingle {
		rs.sys.K.Spawn("replay-single", func(t *sim.Thread) {
			for i := 0; i < n; i++ {
				rs.playAction(t, i)
			}
		})
		return
	}
	byThread := make(map[int][]int)
	var order []int
	for i, rec := range rs.b.Trace.Records {
		if _, ok := byThread[rec.TID]; !ok {
			order = append(order, rec.TID)
		}
		byThread[rec.TID] = append(byThread[rec.TID], i)
	}
	sort.Ints(order)
	for _, tid := range order {
		actions := byThread[tid]
		rs.sys.K.Spawn(fmt.Sprintf("replay-T%d", tid), func(t *sim.Thread) {
			for _, idx := range actions {
				rs.playAction(t, idx)
			}
		})
	}
}

// buildStall assembles the structured stall report: every action that
// has not completed, with its wait reason, plus the critical path of
// the completed prefix when observability is on.
func (rs *replayState) buildStall(trigger string) *StallReport {
	s := &StallReport{
		Trigger:   trigger,
		At:        rs.sys.K.Now() - rs.start,
		Completed: rs.completed,
		Total:     len(rs.b.Trace.Records),
		Errors:    rs.rep.Errors,
	}
	if trigger == "watchdog" && rs.inj != nil {
		s.Window = rs.inj.Watchdog()
	}
	for i := range rs.status {
		if rs.status[i]&actDone != 0 {
			continue
		}
		rec := rs.b.Trace.Records[i]
		ba := BlockedAction{Action: rs.gi(i), TID: rec.TID, Call: rec.Call, Path: rec.Path}
		switch {
		case rs.waiting[i] != nil:
			ba.Reason = rs.waitReason(i)
		case rs.sub != nil && rs.sub.crossWaitEdge[i] >= 0:
			// Parked on a clock-exchange barrier: name the peer shard and
			// edge rather than reporting a spurious local deadlock.
			ba.Reason = rs.sub.crossReason(i)
		case rs.status[i]&actIssued != 0:
			ba.Reason = "in call"
		default:
			// Not yet reached by its replay thread; its turn never came,
			// which the blocked actions ahead of it already explain.
			continue
		}
		if len(s.Blocked) >= maxStallBlocked {
			s.Truncated++
			continue
		}
		s.Blocked = append(s.Blocked, ba)
	}
	if rs.obs != nil {
		s.Crit = obs.Critical(rs.g, rs.b.Trace.Records, rs.issueAt, rs.doneAt)
	}
	return s
}

// finish assembles the report after the simulation has run.
func (rs *replayState) finish() (*Report, error) {
	if rs.watchdog != nil {
		rs.watchdog.Stop()
		rs.watchdog = nil
	}
	if rs.obsDetach != nil {
		rs.obsDetach()
		rs.obsDetach = nil
	}
	if rs.stall != nil {
		return nil, rs.stall
	}
	rs.finishReport()
	if rs.opts.SelfCheck {
		if err := rs.g.ValidateOrder(rs.issueAt, rs.doneAt); err != nil {
			return nil, fmt.Errorf("artc: self-check failed: %w", err)
		}
	}
	return rs.rep, nil
}

// computePredelay returns, per action, the traced gap between the
// action's start and the completion of the previous action on the same
// thread (§4.3.3).
func computePredelay(tr *trace.Trace) []time.Duration {
	out := make([]time.Duration, len(tr.Records))
	lastEnd := make(map[int]time.Duration)
	for i, rec := range tr.Records {
		prev, seen := lastEnd[rec.TID]
		if !seen {
			prev = 0
		}
		d := rec.Start - prev
		if d < 0 {
			d = 0
		}
		out[i] = d
		lastEnd[rec.TID] = rec.End
	}
	return out
}

// depSatisfied records that edge ei (one of To's dependency edges) is
// satisfied; the decrement that empties the counter wakes To's replay
// thread, if it is already parked on the action. A counter driven
// negative means the graph's Indegree disagrees with its edge list — a
// construction bug that would otherwise surface as a silent ordering
// violation, so it panics instead.
func (rs *replayState) depSatisfied(ei int) {
	e := &rs.g.Edges[ei]
	to := e.To
	rs.remaining[to]--
	switch {
	case rs.remaining[to] == 0:
		if rs.obs != nil {
			rs.releasedEdge[to] = int32(ei)
			rs.releasedAt[to] = rs.sys.K.Now() - rs.start
		}
		if w := rs.waiting[to]; w != nil {
			rs.sys.K.Unpark(w)
		}
	case rs.remaining[to] < 0:
		panic(fmt.Sprintf(
			"artc: dependency counter underflow on action %d (edge %d->%d satisfied after count reached zero): malformed graph",
			to, e.From, to))
	}
}

// waitReason describes why action idx is blocked; it is only rendered
// for deadlock reports, never on the replay fast path. It names the
// first genuinely unsatisfied dependency edge, judged by the
// predecessor's explicit lifecycle bits — issueAt/doneAt times cannot
// be used here because an action legitimately issued at virtual time 0
// is indistinguishable from one that never ran.
func (rs *replayState) waitReason(idx int) string {
	for _, ei := range rs.g.Deps[idx] {
		e := rs.g.Edges[ei]
		sat := rs.status[e.From]&actDone != 0
		if e.Kind == core.WaitIssue {
			sat = rs.status[e.From]&actIssued != 0
		}
		if !sat {
			return fmt.Sprintf("action %d: %d dep(s) left, e.g. on action %d (%s)",
				rs.gi(idx), rs.remaining[idx], rs.gi(e.From), e.Res)
		}
	}
	return fmt.Sprintf("action %d: %d dep(s) left", rs.gi(idx), rs.remaining[idx])
}

// playAction waits for the action's dependency count to drain, applies
// predelay, and executes it, releasing successor edges at issue and
// completion.
func (rs *replayState) playAction(t *sim.Thread, idx int) {
	if rs.sub != nil {
		// A sliced-off thread predecessor must complete before this
		// action even begins its wait: the serial replayer's thread
		// would not have arrived here yet. Runs before the wait-start
		// sample so sliced spans open at the serial instant.
		rs.sub.waitThreadPrev(rs, t, idx)
	}
	var waitStart time.Duration
	if rs.obs != nil {
		waitStart = rs.sys.K.Now() - rs.start
	}
	if rs.remaining[idx] > 0 {
		rs.waiting[idx] = t
		for rs.remaining[idx] > 0 {
			t.ParkFn(func() string { return rs.waitReason(idx) })
		}
		rs.waiting[idx] = nil
	}
	if rs.sub != nil {
		rs.sub.waitCross(rs, t, idx)
	}
	var slept time.Duration
	switch rs.opts.Speed {
	case Natural:
		slept = rs.predelay[idx]
		t.Sleep(slept)
	case Scaled:
		slept = time.Duration(float64(rs.predelay[idx]) * rs.opts.Scale)
		t.Sleep(slept)
	}
	now := rs.sys.K.Now()
	rs.issueAt[idx] = now - rs.start
	rs.status[idx] |= actIssued
	for _, ei := range rs.g.Succs[idx] {
		if rs.g.Edges[ei].Kind == core.WaitIssue {
			rs.depSatisfied(ei)
		}
	}
	if rs.sub != nil {
		rs.sub.publishCross(idx, core.WaitIssue, now)
	}

	ret, errno, emulated, injected := rs.execute(t, idx, 0)
	if rs.inj != nil && injected && errno != vfs.OK && rs.b.Trace.Records[idx].OK() {
		// The failure was injected and the trace expected success: retry
		// with capped exponential backoff in virtual time. Each attempt
		// re-decides injection independently (transient faults), and a
		// genuine model failure on a retry ends the loop.
		for attempt := 1; attempt < rs.inj.RetryAttempts(); attempt++ {
			rs.inj.CountRetry()
			t.Sleep(rs.inj.Backoff(attempt))
			ret, errno, emulated, injected = rs.execute(t, idx, attempt)
			if errno == vfs.OK || !injected {
				break
			}
		}
		if errno == vfs.OK {
			rs.inj.CountRecovered()
		}
	}

	end := rs.sys.K.Now()
	rs.doneAt[idx] = end - rs.start
	rs.status[idx] |= actDone
	rs.completed++
	for _, ei := range rs.g.Succs[idx] {
		if rs.g.Edges[ei].Kind == core.WaitComplete {
			rs.depSatisfied(ei)
		}
	}
	if rs.sub != nil {
		rs.sub.publishCross(idx, core.WaitComplete, end)
	}

	rec := rs.b.Trace.Records[idx]
	d := end - now
	rs.rep.CallTime[rec.Call] += d
	rs.rep.CallCount[rec.Call]++
	rs.rep.ThreadTime += d
	rs.rep.PerThread[rec.TID] += d
	if emulated {
		rs.rep.Emulated++
	}
	if rs.obs != nil {
		sp := obs.Span{
			Action:     int32(rs.gi(idx)),
			TID:        int32(rec.TID),
			Call:       rec.Call,
			WaitStart:  waitStart,
			Issue:      rs.issueAt[idx],
			Done:       rs.doneAt[idx],
			Predelay:   slept,
			ReleasedBy: -1,
		}
		if rs.sub != nil {
			sp.Shard = rs.sub.orig
			rs.sub.fillReleasedBy(rs, idx, &sp)
		} else if re := rs.releasedEdge[idx]; re >= 0 {
			e := &rs.g.Edges[re]
			sp.ReleasedBy = int32(e.From)
			sp.ReleasedAt = rs.releasedAt[idx]
			if e.Res != (core.ResourceID{}) {
				sp.ReleaseRes = e.Res.String()
			}
		}
		rs.obs.Record(sp)
	}
	if mismatched := rs.compare(idx, rec, ret, errno); mismatched && rs.inj != nil {
		if injected {
			// An injected failure survived the retry budget: in skip
			// mode it is counted and the replay degrades gracefully.
			rs.inj.CountSkipped()
		}
		if mode, budget := rs.inj.Degrade(); mode == fault.DegradeAbort &&
			rs.rep.Errors > budget && rs.stall == nil {
			rs.stall = rs.buildStall("error-budget")
			rs.sys.K.Stop()
		}
	}
}

// compare records a semantic mismatch between the traced and replayed
// outcome of an action, reporting whether one occurred.
func (rs *replayState) compare(idx int, rec *trace.Record, ret int64, errno vfs.Errno) bool {
	tracedOK := rec.OK()
	replayOK := errno == vfs.OK
	mismatch := ""
	switch {
	case tracedOK && !replayOK:
		mismatch = fmt.Sprintf("traced success, replay failed with %v", errno)
	case !tracedOK && replayOK:
		mismatch = fmt.Sprintf("traced %s, replay succeeded", rec.Err)
	case !tracedOK && !replayOK && errno.String() != rec.Err:
		mismatch = fmt.Sprintf("traced %s, replay %v", rec.Err, errno)
	}
	if mismatch == "" {
		return false
	}
	rs.rep.Errors++
	if len(rs.rep.ErrorSamples) < rs.opts.MaxErrorSamples {
		rs.rep.ErrorSamples = append(rs.rep.ErrorSamples,
			fmt.Sprintf("action %d [T%d] %s(%s): %s", rs.gi(idx), rec.TID, rec.Call, rec.Path, mismatch))
		if rs.sub != nil {
			rs.sampleAt = append(rs.sampleAt, rs.doneAt[idx])
		}
	}
	return true
}

// finishReport fills derived fields after the simulation ends.
func (rs *replayState) finishReport() {
	var last time.Duration
	for _, d := range rs.doneAt {
		if d > last {
			last = d
		}
	}
	rs.rep.Elapsed = last
	copy(rs.rep.IssueAt, rs.issueAt)
	copy(rs.rep.DoneAt, rs.doneAt)
	rs.rep.Graph = rs.g.Stats(rs.b.Analysis)
	if rs.inj != nil {
		st := rs.inj.Stats()
		rs.rep.FaultStats = &st
	}
}

// actionTouches is one action's precomputed FD/AIO resource plan: the
// indices into Action.Touches of the descriptor resource it uses and the
// one it creates on success (-1 = none). Compile derives it once per
// action so the replayer's per-action path does not rescan touch lists;
// indices keep the plan at 8 bytes per action instead of four copied
// ResourceIDs.
type actionTouches struct {
	fdUse, fdCreate, aioUse, aioCreate int16
}

// planOne resolves one action's touch plan from its analysis record.
func planOne(act *core.Action) actionTouches {
	p := actionTouches{fdUse: -1, fdCreate: -1, aioUse: -1, aioCreate: -1}
	p.fdUse = findFDTouch(act, act.Rec.FD, false)
	p.aioUse = findAIOTouch(act, false)
	if num := createdFDNum(act); num >= 0 {
		p.fdCreate = findFDTouch(act, num, true)
	}
	switch stack.Canonical(act.Rec.Call) {
	case "aio_read", "aio_write":
		p.aioCreate = findAIOTouch(act, true)
	}
	return p
}

// planTouches precomputes every action's touch plan.
func planTouches(an *core.Analysis) []actionTouches {
	out := make([]actionTouches, len(an.Actions))
	for i := range an.Actions {
		out[i] = planOne(&an.Actions[i])
	}
	return out
}

// createdFDNum returns the traced descriptor number an action creates on
// success, or -1 if the call creates none.
func createdFDNum(act *core.Action) int64 {
	switch stack.Canonical(act.Rec.Call) {
	case "open", "creat", "dup":
		return act.Rec.Ret
	case "dup2":
		return act.Rec.FD2
	case "fcntl":
		if act.Rec.Name == "F_DUPFD" {
			return act.Rec.Ret
		}
	}
	return -1
}

// findFDTouch locates the fd resource an action references with the
// given number and role class, returning its touch index or -1.
func findFDTouch(act *core.Action, num int64, create bool) int16 {
	name := strconv.FormatInt(num, 10)
	for ti, tc := range act.Touches {
		if tc.Res.Kind != core.KFD || tc.Res.Name != name {
			continue
		}
		if create == (tc.Role == core.RoleCreate) {
			return int16(ti)
		}
	}
	return -1
}

func findAIOTouch(act *core.Action, create bool) int16 {
	for ti, tc := range act.Touches {
		if tc.Res.Kind != core.KAIO {
			continue
		}
		if create == (tc.Role == core.RoleCreate) {
			return int16(ti)
		}
	}
	return -1
}

// execute performs the given attempt of the action against the target
// system: fault injection, path prefixing, descriptor and AIOCB
// remapping, and cross-platform emulation. The final result reports
// whether the attempt's failure was injected (an injected fault
// replaces execution entirely, like a call failing in the kernel's
// entry path, so a failed attempt leaves no partial state behind).
func (rs *replayState) execute(t *sim.Thread, idx, attempt int) (int64, vfs.Errno, bool, bool) {
	act := &rs.b.Analysis.Actions[idx]
	if rs.inj != nil {
		// Fault decisions key on the global action index so an injection
		// plan selects the same actions whether the replay is sharded or
		// serial.
		if e, ok := rs.inj.SyscallFault(rs.gi(idx), attempt, act.Rec.Call, act.Rec.Path); ok {
			return -1, e, false, true
		}
	}
	rec := *act.Rec // shallow copy we may rewrite

	// Canonical, prefixed paths.
	if act.CanonPath != "" {
		rec.Path = rs.prefixPath(act.CanonPath, rec.Call == "symlink")
	}
	if act.CanonPath2 != "" {
		rec.Path2 = rs.prefixPath(act.CanonPath2, false)
	}
	var plan actionTouches
	if rs.b.touches != nil {
		plan = rs.b.touches[idx]
	} else {
		plan = planOne(act) // hand-built benchmark without a compile-time plan
	}
	// Descriptor remapping: traced numbers map to replay numbers through
	// the fd resource identity (name@generation), so descriptors that
	// shared a number in the trace can coexist during replay (§4.2).
	if plan.fdUse >= 0 {
		if actual, ok := rs.fdMap[act.Touches[plan.fdUse].Res]; ok {
			rec.FD = actual
		}
	} else if act.FDHint != nil {
		// A failed call on a then-valid descriptor: remap so it fails
		// the same way it did during tracing.
		if actual, ok := rs.fdMap[*act.FDHint]; ok {
			rec.FD = actual
		}
	}
	if plan.aioUse >= 0 {
		if actual, ok := rs.aioMap[act.Touches[plan.aioUse].Res]; ok {
			rec.AIO = actual
		}
	}

	ret, errno, emulated := rs.applyWithEmulation(t, act, &rec)

	// Register created resources.
	if errno == vfs.OK {
		if plan.fdCreate >= 0 {
			rs.fdMap[act.Touches[plan.fdCreate].Res] = ret
		}
		if plan.aioCreate >= 0 {
			rs.aioMap[act.Touches[plan.aioCreate].Res] = ret
		}
	}
	return ret, errno, emulated, false
}

// prefixPath joins the replay prefix with a canonical absolute path.
// Symlink targets are prefixed only when absolute.
func (rs *replayState) prefixPath(p string, symlinkTarget bool) string {
	if rs.opts.Prefix == "" {
		return p
	}
	if symlinkTarget && len(p) > 0 && p[0] != '/' {
		return p
	}
	return rs.opts.Prefix + p
}
