package artc

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"rootreplay/internal/core"
	"rootreplay/internal/fault"
	"rootreplay/internal/obs"
	"rootreplay/internal/shard"
	"rootreplay/internal/sim"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
)

// genGroups traces nComp groups of opsPer random file operations. Each
// group runs on its own thread against its own directory, so shared=false
// partitions into nComp components; with shared=true every thread works
// in one directory and the resource closure keeps the trace whole.
func genGroups(t *testing.T, nComp, opsPer int, shared bool) (*trace.Trace, *snapshot.Snapshot) {
	t.Helper()
	k := sim.NewKernel()
	sys := stack.New(k, defaultConf())
	dirs := nComp
	if shared {
		dirs = 1
	}
	for c := 0; c < dirs; c++ {
		if err := sys.SetupMkdirAll(fmt.Sprintf("/comp%d/sub", c)); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 3; f++ {
			if err := sys.SetupCreate(fmt.Sprintf("/comp%d/f%d", c, f), 1<<16); err != nil {
				t.Fatal(err)
			}
		}
	}
	snap := snapshot.Capture(sys)
	tr := &trace.Trace{Platform: string(stack.Linux)}
	sys.SetTracer(func(r *trace.Record) { tr.Records = append(tr.Records, r) })
	for c := 0; c < nComp; c++ {
		c := c
		rng := rand.New(rand.NewSource(int64(c)*104729 + 1))
		k.Spawn(fmt.Sprintf("grp-%d", c), func(th *sim.Thread) {
			dir := fmt.Sprintf("/comp%d", c)
			if shared {
				dir = "/comp0"
			}
			for i := 0; i < opsPer; i++ {
				switch rng.Intn(5) {
				case 0:
					fd, errno := sys.Open(th, fmt.Sprintf("%s/f%d", dir, rng.Intn(3)), trace.ORdonly, 0)
					if errno == 0 {
						sys.Pread(th, fd, 4096, int64(rng.Intn(8))*4096)
						sys.Close(th, fd)
					}
				case 1:
					p := fmt.Sprintf("%s/sub/new%d-%d", dir, c, i)
					fd, errno := sys.Open(th, p, trace.OWronly|trace.OCreat, 0o644)
					if errno == 0 {
						sys.Write(th, fd, 1024)
						sys.Close(th, fd)
					}
				case 2:
					sys.Stat(th, fmt.Sprintf("%s/f%d", dir, rng.Intn(3)))
				case 3:
					sys.Stat(th, fmt.Sprintf("%s/missing%d", dir, rng.Intn(2)))
				case 4:
					fd, errno := sys.Open(th, fmt.Sprintf("%s/f0", dir), trace.ORdwr, 0)
					if errno == 0 {
						sys.Pwrite(th, fd, 2048, int64(rng.Intn(4))*4096)
						sys.Fsync(th, fd)
						sys.Close(th, fd)
					}
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	tr.Renumber()
	return tr, snap
}

// shardedOn compiles and replays the trace through ReplaySharded with
// the standard test target; the returned stats describe the partition.
func shardedOn(t *testing.T, tr *trace.Trace, snap *snapshot.Snapshot, opts Options, shards int, plan *fault.Plan) (*Report, *ShardStats) {
	t.Helper()
	rep, st, err := shardedOnErr(t, tr, snap, opts, shards, plan)
	if err != nil {
		t.Fatal(err)
	}
	return rep, st
}

func shardedOnErr(t *testing.T, tr *trace.Trace, snap *snapshot.Snapshot, opts Options, shards int, plan *fault.Plan) (*Report, *ShardStats, error) {
	t.Helper()
	b, err := Compile(tr, snap, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	opts.SelfCheck = true
	so := ShardOptions{
		Shards: shards,
		Target: defaultConf(),
		Init:   func(sys *stack.System) error { return Init(sys, b, opts.Prefix) },
		Fault:  plan,
	}
	return ReplaySharded(b, opts, so)
}

// reportJSON renders a report for byte-level comparison; every exported
// field participates.
func reportJSON(t *testing.T, rep *Report) string {
	t.Helper()
	buf, err := json.MarshalIndent(rep, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// A trace the partitioner keeps whole must replay byte-identically to
// the serial replayer, spans and counter samples included, under every
// method.
func TestShardedSingleComponentByteIdentical(t *testing.T) {
	tr, snap := genGroups(t, 3, 40, true) // 3 threads, one shared directory
	for _, m := range []Method{MethodARTC, MethodTemporal, MethodSingle, MethodUnconstrained} {
		serialRec := obs.NewRecorder(0, 0)
		serial := replayOn(t, tr, snap, defaultConf(), Options{Method: m, Obs: serialRec})

		shardRec := obs.NewRecorder(0, 0)
		rep, st := shardedOn(t, tr, snap, Options{Method: m, Obs: shardRec}, 0, nil)
		if st.Components != 1 || st.CrossEdges != 0 {
			t.Fatalf("%s: shared-directory trace split: %+v", m, st)
		}
		if got, want := reportJSON(t, rep), reportJSON(t, serial); got != want {
			t.Errorf("%s: sharded report differs from serial:\n got %s\nwant %s", m, got, want)
		}
		if !reflect.DeepEqual(shardRec.Spans(), serialRec.Spans()) {
			t.Errorf("%s: sharded spans differ from serial", m)
		}
		if !reflect.DeepEqual(shardRec.Samples(), serialRec.Samples()) {
			t.Errorf("%s: sharded samples differ from serial", m)
		}
	}
}

// Isolated components must replay identically whatever the worker
// bound, and agree with the serial replayer on everything that does not
// depend on device sharing (the serial run multiplexes all components
// over one device, so only virtual-time placement may differ).
func TestShardedIsolatedDeterministicAcrossShardCounts(t *testing.T) {
	const nComp = 5
	tr, snap := genGroups(t, nComp, 60, false)
	serial := replayOn(t, tr, snap, defaultConf(), Options{})

	var base string
	for _, shards := range []int{1, 2, 4, 8} {
		rep, st := shardedOn(t, tr, snap, Options{}, shards, nil)
		if st.Components != nComp || st.Clusters != nComp || st.CrossEdges != 0 {
			t.Fatalf("shards=%d: unexpected partition %+v", shards, st)
		}
		if st.Shards != shards {
			t.Fatalf("stats recorded %d shards, want %d", st.Shards, shards)
		}
		js := reportJSON(t, rep)
		if base == "" {
			base = js
		} else if js != base {
			t.Fatalf("shards=%d: report differs from shards=1", shards)
		}
		if rep.Errors != serial.Errors || rep.Emulated != serial.Emulated || rep.Actions != serial.Actions {
			t.Errorf("shards=%d: semantics diverged from serial: errors %d/%d emulated %d/%d",
				shards, rep.Errors, serial.Errors, rep.Emulated, serial.Emulated)
		}
		if !reflect.DeepEqual(rep.CallCount, serial.CallCount) {
			t.Errorf("shards=%d: call counts diverged from serial", shards)
		}
	}
}

// Program-order mode chains every action across components; the cluster
// coordinator must enforce those cross edges (SelfCheck validates the
// merged order against the full graph) and stay deterministic across
// worker bounds.
func TestShardedProgramSeqBarriers(t *testing.T) {
	tr, snap := genGroups(t, 4, 40, false)
	modes := core.ModeSet{ProgramSeq: true}
	var base string
	for _, shards := range []int{1, 2, 8} {
		rep, st := shardedOn(t, tr, snap, Options{Modes: &modes}, shards, nil)
		if st.CrossEdges == 0 {
			t.Fatalf("program-seq partition registered no cross edges: %+v", st)
		}
		if st.Clusters != 1 {
			t.Fatalf("program-seq components not clustered: %+v", st)
		}
		if rep.Errors != 0 {
			t.Fatalf("shards=%d: %d semantic errors: %v", shards, rep.Errors, rep.ErrorSamples)
		}
		js := reportJSON(t, rep)
		if base == "" {
			base = js
		} else if js != base {
			t.Fatalf("shards=%d: program-seq report differs from shards=1", shards)
		}
	}
}

// Temporal replay induces issue-order cross edges between components;
// same barrier-correctness and determinism contract as program order.
func TestShardedTemporalBarriers(t *testing.T) {
	tr, snap := genGroups(t, 3, 30, false)
	var base string
	for _, shards := range []int{1, 4} {
		rep, st := shardedOn(t, tr, snap, Options{Method: MethodTemporal}, shards, nil)
		if st.CrossEdges == 0 {
			t.Fatalf("temporal partition registered no cross edges: %+v", st)
		}
		if rep.Errors != 0 {
			t.Fatalf("shards=%d: %d semantic errors: %v", shards, rep.Errors, rep.ErrorSamples)
		}
		js := reportJSON(t, rep)
		if base == "" {
			base = js
		} else if js != base {
			t.Fatalf("shards=%d: temporal report differs from shards=1", shards)
		}
	}
}

// Fault injection on a single-component trace must be byte-identical to
// the serial chaos replayer: decisions are keyed by global action index,
// so the same plan hits the same actions.
func TestShardedFaultSingleComponentMatchesSerial(t *testing.T) {
	tr, snap := genGroups(t, 2, 40, true)
	plan := fault.Plan{
		Seed:    77,
		Syscall: fault.SyscallPlan{Rate: 0.3},
		Retry:   fault.RetryPlan{MaxAttempts: 3},
	}
	serial, err := replayWithInjector(t, tr, snap, fault.New(plan), Options{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, st := shardedOn(t, tr, snap, Options{}, 0, &plan)
	if st.Components != 1 {
		t.Fatalf("shared trace split: %+v", st)
	}
	if got, want := reportJSON(t, rep), reportJSON(t, serial); got != want {
		t.Errorf("sharded chaos report differs from serial:\n got %s\nwant %s", got, want)
	}
	if rep.FaultStats == nil || rep.FaultStats.SyscallInjected == 0 {
		t.Fatalf("plan injected nothing: %+v", rep.FaultStats)
	}
}

// Chaos decisions must not depend on the worker bound: the per-replica
// injectors key their streams by global action index.
func TestShardedFaultDeterministicAcrossShardCounts(t *testing.T) {
	tr, snap := genGroups(t, 4, 40, false)
	plan := fault.Plan{
		Seed:    5,
		Syscall: fault.SyscallPlan{Rate: 0.25},
		Retry:   fault.RetryPlan{MaxAttempts: 2},
	}
	var base string
	for _, shards := range []int{1, 2, 8} {
		rep, _ := shardedOn(t, tr, snap, Options{}, shards, &plan)
		if rep.FaultStats == nil || rep.FaultStats.SyscallInjected == 0 {
			t.Fatalf("shards=%d: plan injected nothing", shards)
		}
		js := reportJSON(t, rep)
		if base == "" {
			base = js
		} else if js != base {
			t.Fatalf("shards=%d: chaos report differs from shards=1", shards)
		}
	}
}

// An error-budget abort in one member must abort the whole cluster and
// surface the member's structured stall report.
func TestShardedAbortPropagates(t *testing.T) {
	tr, snap := genGroups(t, 3, 40, false)
	plan := fault.Plan{
		Seed:    11,
		Syscall: fault.SyscallPlan{Rate: 1.0},
		Degrade: fault.DegradeAbort,
	}
	modes := core.ModeSet{ProgramSeq: true} // cluster the components
	_, _, err := shardedOnErr(t, tr, snap, Options{Modes: &modes}, 0, &plan)
	if err == nil {
		t.Fatal("full-rate abort plan replayed cleanly")
	}
	var stall *StallReport
	if !errors.As(err, &stall) {
		t.Fatalf("abort surfaced as %T (%v), want *StallReport", err, err)
	}
	if stall.Errors == 0 {
		t.Fatalf("stall report counts no errors: %+v", stall)
	}
}

// Options.Fault carries a per-kernel injector and cannot describe a
// per-replica plan; sharded replay must reject it loudly.
func TestShardedRejectsOptionsFault(t *testing.T) {
	tr, snap := genGroups(t, 2, 10, false)
	b, err := Compile(tr, snap, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = ReplaySharded(b, Options{Fault: fault.New(fault.Plan{})}, ShardOptions{Target: defaultConf()})
	if err == nil || !strings.Contains(err.Error(), "ShardOptions.Fault") {
		t.Fatalf("Options.Fault accepted: %v", err)
	}
}

// A cross-shard barrier wait must name the peer shard and edge in park
// and stall reasons, not read as a spurious local deadlock.
func TestShardedCrossReasonNamesPeer(t *testing.T) {
	tr, snap := genGroups(t, 2, 10, false)
	modes := core.ModeSet{ProgramSeq: true}
	b, err := Compile(tr, snap, modes)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Modes: &modes}
	g, err := methodGraph(b, &opts)
	if err != nil {
		t.Fatal(err)
	}
	plan := shard.Partition(b.Analysis, g)
	if len(plan.Components) != 2 || len(plan.Cross) == 0 {
		t.Fatalf("want 2 cross-connected components, got %d components, %d cross edges",
			len(plan.Components), len(plan.Cross))
	}
	shards := buildShards(b, g, plan, false)
	ce := plan.Cross[0]
	sub := shards[ce.To].sub
	e := &g.Edges[ce.Edge]
	var li int32 = -1
	for l, gi := range sub.global {
		if int(gi) == e.To {
			li = int32(l)
			break
		}
	}
	if li < 0 {
		t.Fatalf("edge target %d not in component %d", e.To, ce.To)
	}
	sub.crossWaitEdge[li] = ce.Edge
	reason := sub.crossReason(int(li))
	want := fmt.Sprintf("awaiting action %d (shard %d)", e.From, ce.From)
	if !strings.Contains(reason, want) || !strings.Contains(reason, fmt.Sprintf("action %d:", e.To)) {
		t.Fatalf("cross reason %q does not name peer (want %q)", reason, want)
	}
}
