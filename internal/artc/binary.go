package artc

// The binary benchmark format: a compiled artifact that loads back into
// a ready-to-replay Benchmark without re-running parse or compile.
//
// The text format (Encode/Decode) serializes only trace + snapshot and
// recompiles on load; that keeps artifacts human-readable but makes
// every `artc replay` pay the analysis and graph build again. The
// binary format serializes the compiler's outputs too — actions with
// their resource touch sets, the interned resource table and per-
// resource action series, the reduced dependency graph, and the
// replayer's per-action touch plans — so loading is a single linear
// decode pass.
//
// Layout (all integers little-endian; varints are encoding/binary
// Uvarint/Varint):
//
//	[8]  magic "ARTCBIN1"
//	[4]  uint32 format version (currently 1)
//	7 ×  section: [1] id, [8] uint64 payload length, payload
//	     ids in file order: 1 meta, 2 strtab, 3 snapshot, 4 trace,
//	     5 analysis, 6 graph, 7 touchplan
//	[1]  footer id 0xFF
//	[4]  uint32 CRC-32C over every preceding byte of the artifact
//
// Every string in the artifact (paths, call names, errnos, resource
// names, warnings) lives once in the string table; the other sections
// reference strings by index. The decoder materializes the table as
// substrings of a single backing string, so a load allocates one copy
// of the distinct text no matter how many records share a path.
//
// The trailing checksum makes corruption detection a whole-artifact
// property: DecodeBinary verifies it before parsing a single section,
// so a truncated or bit-flipped artifact is rejected with the offset of
// the damage, never silently loaded into a wrong benchmark.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"rootreplay/internal/core"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
)

// BinaryFormatVersion is the current binary artifact format version; it
// participates in content-address keys so a format change can never
// alias an old cache entry.
const BinaryFormatVersion = 1

// binMagic opens every binary benchmark artifact.
var binMagic = [8]byte{'A', 'R', 'T', 'C', 'B', 'I', 'N', '1'}

// IsBinaryArtifact reports whether prefix (the first bytes of a file,
// at least BinaryMagicLen long) begins a binary benchmark artifact.
func IsBinaryArtifact(prefix []byte) bool {
	return len(prefix) >= len(binMagic) && bytes.Equal(prefix[:len(binMagic)], binMagic[:])
}

// BinaryMagicLen is how many leading bytes IsBinaryArtifact needs.
const BinaryMagicLen = 8

// Section ids, in required file order.
const (
	secMeta      = 1
	secStrtab    = 2
	secSnapshot  = 3
	secTrace     = 4
	secAnalysis  = 5
	secGraph     = 6
	secTouchplan = 7
	secFooter    = 0xFF
)

// Trace record field-presence bits (mirrors the text encoder's "write
// only non-zero fields" rule, so both codecs agree on what a default
// field is).
const (
	fPath = 1 << iota
	fPath2
	fFD
	fFD2
	fOffset
	fSize
	fFlags
	fMode
	fName
	fWhence
	fAIO
	fErr
	fRet
)

// binWriter accumulates one section payload, interning strings into the
// shared table as they are first seen.
type binWriter struct {
	buf  []byte
	str  map[string]uint64
	strs []string
}

func (w *binWriter) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *binWriter) svarint(v int64)  { w.buf = binary.AppendVarint(w.buf, v) }
func (w *binWriter) byte(b byte)      { w.buf = append(w.buf, b) }
func (w *binWriter) intern(s string) uint64 {
	if i, ok := w.str[s]; ok {
		return i
	}
	i := uint64(len(w.strs))
	w.str[s] = i
	w.strs = append(w.strs, s)
	return i
}
func (w *binWriter) string(s string) { w.uvarint(w.intern(s)) }

// modesByte packs a ModeSet into one byte.
func modesByte(m core.ModeSet) byte {
	var b byte
	if m.ProgramSeq {
		b |= 1 << 0
	}
	if m.FileSeq {
		b |= 1 << 1
	}
	if m.PathStageName {
		b |= 1 << 2
	}
	if m.FDStage {
		b |= 1 << 3
	}
	if m.FDSeq {
		b |= 1 << 4
	}
	if m.AIOStage {
		b |= 1 << 5
	}
	return b
}

func modesFromByte(b byte) (core.ModeSet, error) {
	if b&^0x3F != 0 {
		return core.ModeSet{}, fmt.Errorf("unknown mode bits %#x", b)
	}
	return core.ModeSet{
		ProgramSeq:    b&(1<<0) != 0,
		FileSeq:       b&(1<<1) != 0,
		PathStageName: b&(1<<2) != 0,
		FDStage:       b&(1<<3) != 0,
		FDSeq:         b&(1<<4) != 0,
		AIOStage:      b&(1<<5) != 0,
	}, nil
}

// EncodeBinary writes the benchmark as a binary compiled artifact. The
// benchmark must have been produced by Compile (or DecodeBinary): the
// analysis and graph are serialized, not rebuilt, so a hand-assembled
// benchmark without them cannot be encoded.
func (b *Benchmark) EncodeBinary(w io.Writer) error {
	if b.Analysis == nil || b.Graph == nil || b.Snapshot == nil || b.Trace == nil {
		return fmt.Errorf("artc: EncodeBinary needs a compiled benchmark (analysis, graph, snapshot, trace)")
	}
	an := b.Analysis
	if an.Resources == nil && len(an.Series) > 0 {
		return fmt.Errorf("artc: EncodeBinary needs the analyzer's dense resource list (benchmark not produced by Compile?)")
	}
	bw := &binWriter{str: make(map[string]uint64)}

	// meta: platform + modes. Interned first so the platform is string 0.
	bw.string(b.Platform)
	bw.byte(modesByte(b.Modes))
	meta := bw.buf
	bw.buf = nil

	// snapshot.
	bw.uvarint(uint64(len(b.Snapshot.Entries)))
	for i := range b.Snapshot.Entries {
		e := &b.Snapshot.Entries[i]
		switch e.Kind {
		case snapshot.KindDir:
			bw.byte(0)
			bw.string(e.Path)
			bw.uvarint(uint64(e.Mode))
		case snapshot.KindFile:
			bw.byte(1)
			bw.string(e.Path)
			bw.svarint(e.Size)
			bw.uvarint(uint64(e.Mode))
		case snapshot.KindSymlink:
			bw.byte(2)
			bw.string(e.Path)
			bw.string(e.Target)
		case snapshot.KindSpecial:
			bw.byte(3)
			bw.string(e.Path)
			bw.uvarint(uint64(e.Kind2))
		default:
			return fmt.Errorf("artc: snapshot entry %d has unknown kind %q", i, e.Kind)
		}
		names := make([]string, 0, len(e.Xattrs))
		for n := range e.Xattrs {
			names = append(names, n)
		}
		sort.Strings(names)
		bw.uvarint(uint64(len(names)))
		for _, n := range names {
			bw.string(n)
			bw.svarint(e.Xattrs[n])
		}
	}
	snapPayload := bw.buf
	bw.buf = nil

	// trace records.
	bw.uvarint(uint64(len(b.Trace.Records)))
	// Timestamps are delta-coded: Start against the previous record's
	// Start, End against the record's own Start (the call latency). The
	// deltas are microsecond-scale where the absolutes are second-scale,
	// so they fit 1-3 varint bytes instead of 5-6.
	var prevStart int64
	for _, r := range b.Trace.Records {
		bw.uvarint(uint64(r.TID))
		bw.string(r.Call)
		var mask uint64
		if r.Path != "" {
			mask |= fPath
		}
		if r.Path2 != "" {
			mask |= fPath2
		}
		if r.FD != 0 {
			mask |= fFD
		}
		if r.FD2 != 0 {
			mask |= fFD2
		}
		if r.Offset != 0 {
			mask |= fOffset
		}
		if r.Size != 0 {
			mask |= fSize
		}
		if r.Flags != 0 {
			mask |= fFlags
		}
		if r.Mode != 0 {
			mask |= fMode
		}
		if r.Name != "" {
			mask |= fName
		}
		if r.Whence != 0 {
			mask |= fWhence
		}
		if r.AIO != 0 {
			mask |= fAIO
		}
		if r.Err != "" {
			mask |= fErr
		}
		if r.Ret != 0 {
			mask |= fRet
		}
		bw.uvarint(mask)
		if mask&fPath != 0 {
			bw.string(r.Path)
		}
		if mask&fPath2 != 0 {
			bw.string(r.Path2)
		}
		if mask&fFD != 0 {
			bw.svarint(r.FD)
		}
		if mask&fFD2 != 0 {
			bw.svarint(r.FD2)
		}
		if mask&fOffset != 0 {
			bw.svarint(r.Offset)
		}
		if mask&fSize != 0 {
			bw.svarint(r.Size)
		}
		if mask&fFlags != 0 {
			bw.uvarint(uint64(r.Flags))
		}
		if mask&fMode != 0 {
			bw.uvarint(uint64(r.Mode))
		}
		if mask&fName != 0 {
			bw.string(r.Name)
		}
		if mask&fWhence != 0 {
			bw.svarint(int64(r.Whence))
		}
		if mask&fAIO != 0 {
			bw.svarint(r.AIO)
		}
		if mask&fErr != 0 {
			bw.string(r.Err)
		}
		if mask&fRet != 0 {
			bw.svarint(r.Ret)
		}
		bw.svarint(int64(r.Start) - prevStart)
		bw.svarint(int64(r.End) - int64(r.Start))
		prevStart = int64(r.Start)
	}
	tracePayload := bw.buf
	bw.buf = nil

	// analysis: resource table, action series, actions, path
	// generations, warnings.
	resIdx := make(map[core.ResourceID]uint64, len(an.Resources))
	bw.uvarint(uint64(len(an.Resources)))
	for i, res := range an.Resources {
		resIdx[res] = uint64(i)
		bw.byte(byte(res.Kind))
		bw.string(res.Name)
		bw.uvarint(uint64(res.Gen))
	}
	if len(an.SeriesList) != len(an.Resources) {
		return fmt.Errorf("artc: analysis has %d series for %d resources", len(an.SeriesList), len(an.Resources))
	}
	// Total series length up front, for the decoder's slab allocation.
	var totalSeries uint64
	for _, s := range an.SeriesList {
		totalSeries += uint64(len(s))
	}
	bw.uvarint(totalSeries)
	for _, s := range an.SeriesList {
		bw.uvarint(uint64(len(s)))
		prev := 0
		for j, idx := range s {
			if j == 0 {
				bw.uvarint(uint64(idx))
			} else {
				bw.uvarint(uint64(idx - prev))
			}
			prev = idx
		}
	}
	bw.uvarint(uint64(len(an.Actions)))
	var totalTouches uint64
	for i := range an.Actions {
		totalTouches += uint64(len(an.Actions[i].Touches))
	}
	// Total touch count up front so the decoder can slab-allocate the
	// touch lists in one shot instead of growing through appends.
	bw.uvarint(totalTouches)
	for i := range an.Actions {
		act := &an.Actions[i]
		bw.string(act.CanonPath)
		bw.string(act.CanonPath2)
		bw.uvarint(uint64(len(act.Touches)))
		for _, t := range act.Touches {
			ri, ok := resIdx[t.Res]
			if !ok {
				return fmt.Errorf("artc: action %d touches %v, absent from the resource table", i, t.Res)
			}
			bw.uvarint(ri)
			bw.byte(byte(t.Role))
		}
		if act.FDHint == nil {
			bw.byte(0)
		} else {
			bw.byte(1)
			bw.byte(byte(act.FDHint.Kind))
			bw.string(act.FDHint.Name)
			bw.uvarint(uint64(act.FDHint.Gen))
		}
	}
	pgNames := make([]string, 0, len(an.PathGens))
	for n := range an.PathGens {
		pgNames = append(pgNames, n)
	}
	sort.Strings(pgNames)
	bw.uvarint(uint64(len(pgNames)))
	for _, n := range pgNames {
		bw.string(n)
		gens := an.PathGens[n]
		bw.uvarint(uint64(len(gens)))
		for _, g := range gens {
			bw.uvarint(uint64(g))
		}
	}
	bw.uvarint(uint64(len(an.Warnings)))
	for _, wmsg := range an.Warnings {
		bw.string(wmsg)
	}
	analysisPayload := bw.buf
	bw.buf = nil

	// graph: the compile-time reduced graph. Deps/Succs/Indegree are
	// rebuilt from the edge list on load.
	g := b.Graph
	bw.uvarint(uint64(g.N))
	bw.uvarint(uint64(g.ReducedEdges))
	bw.uvarint(uint64(len(g.Edges)))
	for _, e := range g.Edges {
		bw.uvarint(uint64(e.From))
		bw.uvarint(uint64(e.To))
		bw.byte(byte(e.Kind))
		bw.byte(byte(e.Res.Kind))
		bw.string(e.Res.Name)
		bw.uvarint(uint64(e.Res.Gen))
	}
	graphPayload := bw.buf
	bw.buf = nil

	// touchplan: the replayer's per-action FD/AIO plan.
	plan := b.touches
	if plan == nil {
		plan = planTouches(an)
	}
	bw.uvarint(uint64(len(plan)))
	for _, p := range plan {
		bw.svarint(int64(p.fdUse))
		bw.svarint(int64(p.fdCreate))
		bw.svarint(int64(p.aioUse))
		bw.svarint(int64(p.aioCreate))
	}
	planPayload := bw.buf
	bw.buf = nil

	// strtab, complete now that every section has interned its strings.
	bw.uvarint(uint64(len(bw.strs)))
	for _, s := range bw.strs {
		bw.uvarint(uint64(len(s)))
		bw.buf = append(bw.buf, s...)
	}
	strtabPayload := bw.buf
	bw.buf = nil

	// Assemble the artifact and append the whole-artifact checksum.
	sections := []struct {
		id      byte
		payload []byte
	}{
		{secMeta, meta},
		{secStrtab, strtabPayload},
		{secSnapshot, snapPayload},
		{secTrace, tracePayload},
		{secAnalysis, analysisPayload},
		{secGraph, graphPayload},
		{secTouchplan, planPayload},
	}
	total := len(binMagic) + 4
	for _, s := range sections {
		total += 1 + 8 + len(s.payload)
	}
	out := make([]byte, 0, total+5)
	out = append(out, binMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, BinaryFormatVersion)
	for _, s := range sections {
		out = append(out, s.id)
		out = binary.LittleEndian.AppendUint64(out, uint64(len(s.payload)))
		out = append(out, s.payload...)
	}
	out = append(out, secFooter)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, crcTable))
	_, err := w.Write(out)
	return err
}

// binReader walks one section payload with absolute-offset errors.
type binReader struct {
	data []byte // the section payload
	off  int    // within data
	base int    // file offset of data[0], for error messages
	strs []string
	name string // section name, for error messages
}

func (r *binReader) errAt(format string, args ...any) error {
	return fmt.Errorf("artc: binary artifact: %s section, offset %d: %s",
		r.name, r.base+r.off, fmt.Sprintf(format, args...))
}

// uvarint has an inlinable fast path for the dominant 1-byte case; the
// record-decode loop reads several varints per record.
func (r *binReader) uvarint() (uint64, error) {
	if r.off < len(r.data) {
		if c := r.data[r.off]; c < 0x80 {
			r.off++
			return uint64(c), nil
		}
	}
	return r.uvarintSlow()
}

func (r *binReader) uvarintSlow() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, r.errAt("bad varint")
	}
	r.off += n
	return v, nil
}

func (r *binReader) svarint() (int64, error) {
	if r.off < len(r.data) {
		if c := r.data[r.off]; c < 0x80 {
			r.off++
			return int64(c>>1) ^ -int64(c&1), nil
		}
	}
	return r.svarintSlow()
}

func (r *binReader) svarintSlow() (int64, error) {
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		return 0, r.errAt("bad varint")
	}
	r.off += n
	return v, nil
}

func (r *binReader) byte() (byte, error) {
	if r.off >= len(r.data) {
		return 0, r.errAt("unexpected end of section")
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

// count reads an element count and sanity-bounds it: each element needs
// at least min bytes, so a count claiming more elements than the
// remaining payload could hold is corruption, not a huge allocation.
func (r *binReader) count(min int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if min < 1 {
		min = 1
	}
	if v > uint64(len(r.data)-r.off)/uint64(min)+1 {
		return 0, r.errAt("count %d exceeds section size", v)
	}
	return int(v), nil
}

func (r *binReader) string() (string, error) {
	i, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if i >= uint64(len(r.strs)) {
		return "", r.errAt("string index %d out of range (table has %d)", i, len(r.strs))
	}
	return r.strs[i], nil
}

func (r *binReader) done() error {
	if r.off != len(r.data) {
		return r.errAt("%d trailing bytes in section", len(r.data)-r.off)
	}
	return nil
}

// DecodeBinaryBytes loads a binary benchmark artifact. The whole-
// artifact checksum is verified before any section is parsed, so a
// truncated or bit-flipped artifact fails here with the offset of the
// damage rather than decoding into a wrong benchmark. The returned
// benchmark shares no memory with data.
func DecodeBinaryBytes(data []byte) (*Benchmark, error) {
	const headerLen = 8 + 4
	const footerLen = 1 + 4
	if len(data) < headerLen+footerLen {
		return nil, fmt.Errorf("artc: truncated binary artifact: %d bytes", len(data))
	}
	if !IsBinaryArtifact(data) {
		return nil, fmt.Errorf("artc: not a binary benchmark artifact")
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != BinaryFormatVersion {
		return nil, fmt.Errorf("artc: binary artifact format version %d (this build reads %d)", v, BinaryFormatVersion)
	}
	if data[len(data)-footerLen] != secFooter {
		return nil, fmt.Errorf("artc: truncated binary artifact: missing footer at offset %d", len(data)-footerLen)
	}
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(data[:len(data)-4], crcTable); got != want {
		return nil, fmt.Errorf("artc: binary artifact checksum mismatch at offset %d: footer says crc32c=%08x, content is %08x",
			len(data)-4, want, got)
	}

	// Section walk.
	wantIDs := []struct {
		id   byte
		name string
	}{
		{secMeta, "meta"},
		{secStrtab, "strtab"},
		{secSnapshot, "snapshot"},
		{secTrace, "trace"},
		{secAnalysis, "analysis"},
		{secGraph, "graph"},
		{secTouchplan, "touchplan"},
	}
	type section struct {
		name    string
		base    int
		payload []byte
	}
	secs := make([]section, 0, len(wantIDs))
	off := headerLen
	end := len(data) - footerLen
	for _, w := range wantIDs {
		if off+9 > end {
			return nil, fmt.Errorf("artc: binary artifact: truncated at offset %d: missing %s section", off, w.name)
		}
		if data[off] != w.id {
			return nil, fmt.Errorf("artc: binary artifact: offset %d: section id %d, want %d (%s)", off, data[off], w.id, w.name)
		}
		n := binary.LittleEndian.Uint64(data[off+1:])
		if n > uint64(end-(off+9)) {
			return nil, fmt.Errorf("artc: binary artifact: offset %d: %s section claims %d bytes, only %d remain",
				off+1, w.name, n, end-(off+9))
		}
		secs = append(secs, section{w.name, off + 9, data[off+9 : off+9+int(n)]})
		off += 9 + int(n)
	}
	if off != end {
		return nil, fmt.Errorf("artc: binary artifact: %d trailing bytes at offset %d", end-off, off)
	}
	rd := func(i int) *binReader {
		return &binReader{data: secs[i].payload, base: secs[i].base, name: secs[i].name}
	}

	// strtab first (meta references it): one backing string, substring
	// entries.
	sr := rd(1)
	nStr, err := sr.count(1)
	if err != nil {
		return nil, err
	}
	backing := string(sr.data[sr.off:])
	backOff := sr.off
	strs := make([]string, 0, nStr)
	for i := 0; i < nStr; i++ {
		n, err := sr.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(sr.data)-sr.off) {
			return nil, sr.errAt("string %d claims %d bytes, only %d remain", i, n, len(sr.data)-sr.off)
		}
		start := sr.off - backOff
		strs = append(strs, backing[start:start+int(n)])
		sr.off += int(n)
	}
	if err := sr.done(); err != nil {
		return nil, err
	}

	// meta.
	mr := rd(0)
	mr.strs = strs
	platform, err := mr.string()
	if err != nil {
		return nil, err
	}
	mb, err := mr.byte()
	if err != nil {
		return nil, err
	}
	modes, err := modesFromByte(mb)
	if err != nil {
		return nil, mr.errAt("%v", err)
	}
	if err := mr.done(); err != nil {
		return nil, err
	}

	// Peek the record count from the trace section header so the
	// analysis, graph, and touch-plan sections can validate their
	// cross-references while the trace itself is still decoding.
	nRecPeek, pn := binary.Uvarint(secs[3].payload)
	if pn <= 0 || nRecPeek > uint64(len(secs[3].payload))/4+1 {
		return nil, fmt.Errorf("artc: binary artifact: trace section, offset %d: bad record count", secs[3].base)
	}
	nRec := int(nRecPeek)

	// The sections are independent once the string table is up: decode
	// them concurrently when there are spare CPUs, inline otherwise
	// (goroutine handoff only costs on a single-CPU host). The
	// whole-artifact checksum has already passed, so an error past this
	// point is a format violation, not silent corruption.
	rds := func(i int) *binReader {
		r := rd(i)
		r.strs = strs
		return r
	}
	var (
		snap    *snapshot.Snapshot
		tr      *trace.Trace
		records []*trace.Record
		an      *core.Analysis
		g       *core.Graph
		plan    []actionTouches
		secErr  [4]error
	)
	parts := [4]func(){
		func() { snap, secErr[0] = decodeSnapshotSec(rds(2)) },
		func() { tr, records, secErr[1] = decodeTraceSec(rds(3), platform) },
		func() { an, secErr[2] = decodeAnalysisSec(rds(4), nRec) },
		func() {
			if g, secErr[3] = decodeGraphSec(rds(5), nRec); secErr[3] != nil {
				return
			}
			plan, secErr[3] = decodePlanSec(rds(6), nRec)
		},
	}
	if runtime.GOMAXPROCS(0) > 1 {
		var wg sync.WaitGroup
		wg.Add(len(parts))
		for _, part := range parts {
			go func() { defer wg.Done(); part() }()
		}
		wg.Wait()
	} else {
		for _, part := range parts {
			part()
		}
	}
	for _, err := range secErr {
		if err != nil {
			return nil, err
		}
	}
	// The analysis decoded without the trace; stitch them together.
	an.Trace = tr
	for i := range an.Actions {
		an.Actions[i].Rec = records[i]
	}

	return &Benchmark{
		Platform: platform,
		Modes:    modes,
		Trace:    tr,
		Snapshot: snap,
		Analysis: an,
		Graph:    g,
		touches:  plan,
	}, nil
}

// decodeSnapshotSec parses the snapshot section.
func decodeSnapshotSec(snr *binReader) (*snapshot.Snapshot, error) {
	nEnt, err := snr.count(2)
	if err != nil {
		return nil, err
	}
	snap := &snapshot.Snapshot{Entries: make([]snapshot.Entry, 0, nEnt)}
	for i := 0; i < nEnt; i++ {
		kind, err := snr.byte()
		if err != nil {
			return nil, err
		}
		var e snapshot.Entry
		if e.Path, err = snr.string(); err != nil {
			return nil, err
		}
		switch kind {
		case 0:
			e.Kind = snapshot.KindDir
			m, err := snr.uvarint()
			if err != nil {
				return nil, err
			}
			e.Mode = uint32(m)
		case 1:
			e.Kind = snapshot.KindFile
			if e.Size, err = snr.svarint(); err != nil {
				return nil, err
			}
			m, err := snr.uvarint()
			if err != nil {
				return nil, err
			}
			e.Mode = uint32(m)
		case 2:
			e.Kind = snapshot.KindSymlink
			if e.Target, err = snr.string(); err != nil {
				return nil, err
			}
		case 3:
			e.Kind = snapshot.KindSpecial
			k2, err := snr.uvarint()
			if err != nil {
				return nil, err
			}
			e.Kind2 = stack.SpecialKind(k2)
		default:
			return nil, snr.errAt("unknown snapshot entry kind %d", kind)
		}
		nx, err := snr.count(2)
		if err != nil {
			return nil, err
		}
		if nx > 0 {
			e.Xattrs = make(map[string]int64, nx)
			for j := 0; j < nx; j++ {
				name, err := snr.string()
				if err != nil {
					return nil, err
				}
				size, err := snr.svarint()
				if err != nil {
					return nil, err
				}
				e.Xattrs[name] = size
			}
		}
		snap.Entries = append(snap.Entries, e)
	}
	if err := snr.done(); err != nil {
		return nil, err
	}
	return snap, nil
}

// decodeTraceSec parses the trace section into a contiguous record
// slab.
func decodeTraceSec(tr2 *binReader, platform string) (*trace.Trace, []*trace.Record, error) {
	nRec, err := tr2.count(4)
	if err != nil {
		return nil, nil, err
	}
	recSlab := make([]trace.Record, nRec)
	var prevStart int64
	records := make([]*trace.Record, nRec)
	for i := 0; i < nRec; i++ {
		r := &recSlab[i]
		records[i] = r
		r.Seq = int64(i)
		tid, err := tr2.uvarint()
		if err != nil {
			return nil, nil, err
		}
		r.TID = int(tid)
		if r.Call, err = tr2.string(); err != nil {
			return nil, nil, err
		}
		mask, err := tr2.uvarint()
		if err != nil {
			return nil, nil, err
		}
		if mask >= fRet<<1 {
			return nil, nil, tr2.errAt("record %d has unknown field bits %#x", i, mask)
		}
		if mask&fPath != 0 {
			if r.Path, err = tr2.string(); err != nil {
				return nil, nil, err
			}
		}
		if mask&fPath2 != 0 {
			if r.Path2, err = tr2.string(); err != nil {
				return nil, nil, err
			}
		}
		if mask&fFD != 0 {
			if r.FD, err = tr2.svarint(); err != nil {
				return nil, nil, err
			}
		}
		if mask&fFD2 != 0 {
			if r.FD2, err = tr2.svarint(); err != nil {
				return nil, nil, err
			}
		}
		if mask&fOffset != 0 {
			if r.Offset, err = tr2.svarint(); err != nil {
				return nil, nil, err
			}
		}
		if mask&fSize != 0 {
			if r.Size, err = tr2.svarint(); err != nil {
				return nil, nil, err
			}
		}
		if mask&fFlags != 0 {
			fl, err := tr2.uvarint()
			if err != nil {
				return nil, nil, err
			}
			r.Flags = trace.OpenFlag(fl)
		}
		if mask&fMode != 0 {
			m, err := tr2.uvarint()
			if err != nil {
				return nil, nil, err
			}
			r.Mode = uint32(m)
		}
		if mask&fName != 0 {
			if r.Name, err = tr2.string(); err != nil {
				return nil, nil, err
			}
		}
		if mask&fWhence != 0 {
			wv, err := tr2.svarint()
			if err != nil {
				return nil, nil, err
			}
			r.Whence = int(wv)
		}
		if mask&fAIO != 0 {
			if r.AIO, err = tr2.svarint(); err != nil {
				return nil, nil, err
			}
		}
		if mask&fErr != 0 {
			if r.Err, err = tr2.string(); err != nil {
				return nil, nil, err
			}
		}
		if mask&fRet != 0 {
			if r.Ret, err = tr2.svarint(); err != nil {
				return nil, nil, err
			}
		}
		dStart, err := tr2.svarint()
		if err != nil {
			return nil, nil, err
		}
		dEnd, err := tr2.svarint()
		if err != nil {
			return nil, nil, err
		}
		start := prevStart + dStart
		prevStart = start
		r.Start, r.End = time.Duration(start), time.Duration(start+dEnd)
	}
	if err := tr2.done(); err != nil {
		return nil, nil, err
	}
	return &trace.Trace{Platform: platform, Records: records}, records, nil
}

// decodeAnalysisSec parses the analysis section. The returned
// analysis has nil Trace and nil Action.Rec pointers; the caller
// stitches the concurrently-decoded trace in.
func decodeAnalysisSec(ar *binReader, nRec int) (*core.Analysis, error) {
	nRes, err := ar.count(3)
	if err != nil {
		return nil, err
	}
	resources := make([]core.ResourceID, nRes)
	for i := 0; i < nRes; i++ {
		kb, err := ar.byte()
		if err != nil {
			return nil, err
		}
		if kb > byte(core.KAIO) {
			return nil, ar.errAt("resource %d has unknown kind %d", i, kb)
		}
		resources[i].Kind = core.Kind(kb)
		if resources[i].Name, err = ar.string(); err != nil {
			return nil, err
		}
		gen, err := ar.uvarint()
		if err != nil {
			return nil, err
		}
		resources[i].Gen = int(gen)
	}
	totalSeries, err := ar.count(1)
	if err != nil {
		return nil, err
	}
	seriesList := make([][]int, nRes)
	seriesSlab := make([]int, 0, totalSeries)
	for i := 0; i < nRes; i++ {
		n, err := ar.count(1)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			continue
		}
		if len(seriesSlab)+n > totalSeries {
			return nil, ar.errAt("resource %d: series overflow the declared total %d", i, totalSeries)
		}
		start := len(seriesSlab)
		prev := 0
		for j := 0; j < n; j++ {
			d, err := ar.uvarint()
			if err != nil {
				return nil, err
			}
			if j == 0 {
				prev = int(d)
			} else {
				if d == 0 {
					return nil, ar.errAt("resource %d series not strictly increasing", i)
				}
				prev += int(d)
			}
			if prev >= nRec {
				return nil, ar.errAt("resource %d series index %d out of range (%d actions)", i, prev, nRec)
			}
			seriesSlab = append(seriesSlab, prev)
		}
		seriesList[i] = seriesSlab[start : start+n : start+n]
	}
	nAct, err := ar.count(4)
	if err != nil {
		return nil, err
	}
	if nAct != nRec {
		return nil, ar.errAt("%d actions for %d records", nAct, nRec)
	}
	totalTouches, err := ar.count(2)
	if err != nil {
		return nil, err
	}
	actions := make([]core.Action, nAct)
	touchSlab := make([]core.Touch, 0, totalTouches)
	for i := 0; i < nAct; i++ {
		act := &actions[i]
		if act.CanonPath, err = ar.string(); err != nil {
			return nil, err
		}
		if act.CanonPath2, err = ar.string(); err != nil {
			return nil, err
		}
		nt, err := ar.count(2)
		if err != nil {
			return nil, err
		}
		if len(touchSlab)+nt > totalTouches {
			return nil, ar.errAt("action %d: touch lists overflow the declared total %d", i, totalTouches)
		}
		start := len(touchSlab)
		for j := 0; j < nt; j++ {
			ri, err := ar.uvarint()
			if err != nil {
				return nil, err
			}
			if ri >= uint64(nRes) {
				return nil, ar.errAt("action %d touch %d: resource index %d out of range", i, j, ri)
			}
			role, err := ar.byte()
			if err != nil {
				return nil, err
			}
			if role > byte(core.RoleDelete) {
				return nil, ar.errAt("action %d touch %d: unknown role %d", i, j, role)
			}
			touchSlab = append(touchSlab, core.Touch{Res: resources[ri], Role: core.Role(role)})
		}
		if nt > 0 {
			act.Touches = touchSlab[start : start+nt : start+nt]
		}
		hint, err := ar.byte()
		if err != nil {
			return nil, err
		}
		switch hint {
		case 0:
		case 1:
			var res core.ResourceID
			kb, err := ar.byte()
			if err != nil {
				return nil, err
			}
			if kb > byte(core.KAIO) {
				return nil, ar.errAt("action %d fd hint has unknown kind %d", i, kb)
			}
			res.Kind = core.Kind(kb)
			if res.Name, err = ar.string(); err != nil {
				return nil, err
			}
			gen, err := ar.uvarint()
			if err != nil {
				return nil, err
			}
			res.Gen = int(gen)
			act.FDHint = &res
		default:
			return nil, ar.errAt("action %d has unknown fd-hint tag %d", i, hint)
		}
	}
	nPG, err := ar.count(3)
	if err != nil {
		return nil, err
	}
	pathGens := make(map[string][]int, nPG)
	for i := 0; i < nPG; i++ {
		name, err := ar.string()
		if err != nil {
			return nil, err
		}
		ng, err := ar.count(1)
		if err != nil {
			return nil, err
		}
		var gens []int
		for j := 0; j < ng; j++ {
			g, err := ar.uvarint()
			if err != nil {
				return nil, err
			}
			gens = append(gens, int(g))
		}
		pathGens[name] = gens
	}
	nWarn, err := ar.count(1)
	if err != nil {
		return nil, err
	}
	var warnings []string
	for i := 0; i < nWarn; i++ {
		wmsg, err := ar.string()
		if err != nil {
			return nil, err
		}
		warnings = append(warnings, wmsg)
	}
	if err := ar.done(); err != nil {
		return nil, err
	}
	series := make(map[core.ResourceID][]int, nRes)
	for i, res := range resources {
		series[res] = seriesList[i]
	}
	return &core.Analysis{
		Actions:    actions,
		Series:     series,
		Resources:  resources,
		SeriesList: seriesList,
		PathGens:   pathGens,
		Warnings:   warnings,
	}, nil
}

// decodeGraphSec parses the graph section and rebuilds the adjacency
// indexes.
func decodeGraphSec(gr *binReader, nRec int) (*core.Graph, error) {
	gn, err := gr.uvarint()
	if err != nil {
		return nil, err
	}
	if gn != uint64(nRec) {
		return nil, gr.errAt("graph is over %d actions, trace has %d", gn, nRec)
	}
	reduced, err := gr.uvarint()
	if err != nil {
		return nil, err
	}
	nEdges, err := gr.count(4)
	if err != nil {
		return nil, err
	}
	edges := make([]core.Edge, nEdges)
	for i := 0; i < nEdges; i++ {
		e := &edges[i]
		from, err := gr.uvarint()
		if err != nil {
			return nil, err
		}
		to, err := gr.uvarint()
		if err != nil {
			return nil, err
		}
		if from >= gn || to >= gn {
			return nil, gr.errAt("edge %d (%d->%d) out of range (%d actions)", i, from, to, gn)
		}
		e.From, e.To = int(from), int(to)
		kb, err := gr.byte()
		if err != nil {
			return nil, err
		}
		if kb > byte(core.WaitIssue) {
			return nil, gr.errAt("edge %d has unknown kind %d", i, kb)
		}
		e.Kind = core.EdgeKind(kb)
		rk, err := gr.byte()
		if err != nil {
			return nil, err
		}
		if rk > byte(core.KAIO) {
			return nil, gr.errAt("edge %d resource has unknown kind %d", i, rk)
		}
		e.Res.Kind = core.Kind(rk)
		if e.Res.Name, err = gr.string(); err != nil {
			return nil, err
		}
		gen, err := gr.uvarint()
		if err != nil {
			return nil, err
		}
		e.Res.Gen = int(gen)
	}
	if err := gr.done(); err != nil {
		return nil, err
	}
	g := core.NewGraph(nRec, edges)
	g.ReducedEdges = int(reduced)
	return g, nil
}

// decodePlanSec parses the replayer touch-plan section.
func decodePlanSec(pr *binReader, nRec int) ([]actionTouches, error) {
	nPlan, err := pr.count(4)
	if err != nil {
		return nil, err
	}
	if nPlan != nRec {
		return nil, pr.errAt("%d touch plans for %d records", nPlan, nRec)
	}
	plan := make([]actionTouches, nPlan)
	for i := 0; i < nPlan; i++ {
		var v [4]int64
		for j := range v {
			if v[j], err = pr.svarint(); err != nil {
				return nil, err
			}
			if v[j] < math.MinInt16 || v[j] > math.MaxInt16 {
				return nil, pr.errAt("touch plan %d field %d out of int16 range", i, j)
			}
		}
		plan[i] = actionTouches{
			fdUse: int16(v[0]), fdCreate: int16(v[1]),
			aioUse: int16(v[2]), aioCreate: int16(v[3]),
		}
	}
	if err := pr.done(); err != nil {
		return nil, err
	}
	return plan, nil
}

// DecodeBinary reads a binary benchmark artifact from r.
func DecodeBinary(r io.Reader) (*Benchmark, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeBinaryBytes(data)
}

// DecodeAny reads a benchmark in either encoding, sniffing the binary
// magic and falling back to the text decoder.
func DecodeAny(r io.Reader) (*Benchmark, error) {
	br := bufio.NewReader(r)
	if prefix, err := br.Peek(BinaryMagicLen); err == nil && IsBinaryArtifact(prefix) {
		return DecodeBinary(br)
	}
	return Decode(br)
}
