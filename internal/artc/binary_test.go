package artc

import (
	"bytes"
	"reflect"
	"testing"

	"rootreplay/internal/core"
	"rootreplay/internal/sim"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
)

// compileSample builds a compiled benchmark exercising files, fds,
// renames, failures, and xattr-free snapshot entries.
func compileSample(t *testing.T, modes core.ModeSet) *Benchmark {
	t.Helper()
	tr, snap := traceWorkload(t, defaultConf(),
		func(sys *stack.System) error { return sys.SetupCreate("/data/in", 1<<20) },
		func(sys *stack.System, th *sim.Thread) {
			fd, _ := sys.Open(th, "/data/in", trace.ORdonly, 0)
			sys.Read(th, fd, 4096)
			sys.Close(th, fd)
			out, _ := sys.Open(th, "/data/out", trace.OWronly|trace.OCreat, 0o644)
			sys.Write(th, out, 8192)
			sys.Fsync(th, out)
			sys.Close(th, out)
			sys.Stat(th, "/data/missing")
			sys.Rename(th, "/data/out", "/data/out2")
			sys.Unlink(th, "/data/out2")
		})
	b, err := Compile(tr, snap, modes)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBinaryRoundTrip(t *testing.T) {
	b := compileSample(t, core.DefaultModes())
	var buf bytes.Buffer
	if err := b.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinaryBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Platform != b.Platform || got.Modes != b.Modes {
		t.Fatalf("platform/modes drift: %v %v vs %v %v", got.Platform, got.Modes, b.Platform, b.Modes)
	}
	if len(got.Trace.Records) != len(b.Trace.Records) {
		t.Fatalf("record count %d vs %d", len(got.Trace.Records), len(b.Trace.Records))
	}
	for i := range b.Trace.Records {
		if *got.Trace.Records[i] != *b.Trace.Records[i] {
			t.Fatalf("record %d drift:\n got %+v\nwant %+v", i, *got.Trace.Records[i], *b.Trace.Records[i])
		}
	}
	if !reflect.DeepEqual(got.Snapshot, b.Snapshot) {
		t.Fatal("snapshot drift")
	}
	if !reflect.DeepEqual(got.Analysis.Resources, b.Analysis.Resources) ||
		!reflect.DeepEqual(got.Analysis.SeriesList, b.Analysis.SeriesList) ||
		!reflect.DeepEqual(got.Analysis.PathGens, b.Analysis.PathGens) ||
		!reflect.DeepEqual(got.Analysis.Warnings, b.Analysis.Warnings) {
		t.Fatal("analysis drift")
	}
	for i := range b.Analysis.Actions {
		w, g := &b.Analysis.Actions[i], &got.Analysis.Actions[i]
		if w.CanonPath != g.CanonPath || w.CanonPath2 != g.CanonPath2 ||
			!reflect.DeepEqual(w.Touches, g.Touches) {
			t.Fatalf("action %d drift", i)
		}
		if (w.FDHint == nil) != (g.FDHint == nil) || (w.FDHint != nil && *w.FDHint != *g.FDHint) {
			t.Fatalf("action %d fd hint drift", i)
		}
	}
	if got.Graph.N != b.Graph.N || got.Graph.ReducedEdges != b.Graph.ReducedEdges ||
		!reflect.DeepEqual(got.Graph.Edges, b.Graph.Edges) {
		t.Fatal("graph drift")
	}
	if !reflect.DeepEqual(got.touches, b.touches) && !(b.touches == nil && reflect.DeepEqual(got.touches, planTouches(b.Analysis))) {
		t.Fatal("touch plan drift")
	}

	// Re-encode must be byte-identical.
	var buf2 bytes.Buffer
	if err := got.EncodeBinary(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("Encode(Decode(x)) != x")
	}
}

// TestBinaryLoadedBenchmarkReplays: a benchmark loaded from the binary
// artifact replays with the same outcome as the freshly compiled one.
func TestBinaryLoadedBenchmarkReplays(t *testing.T) {
	b := compileSample(t, core.DefaultModes())
	var buf bytes.Buffer
	if err := b.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := DecodeBinaryBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	run := func(b *Benchmark) *Report {
		k := sim.NewKernel()
		sys := stack.New(k, defaultConf())
		if err := Init(sys, b, ""); err != nil {
			t.Fatal(err)
		}
		rep, err := Replay(sys, b, Options{Method: MethodARTC, SelfCheck: true})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	cold, warm := run(b), run(loaded)
	if warm.Errors != cold.Errors || warm.Actions != cold.Actions {
		t.Fatalf("replay drift: cold %d/%d warm %d/%d errors/actions",
			cold.Errors, cold.Actions, warm.Errors, warm.Actions)
	}
	if warm.Errors != 0 {
		t.Fatalf("loaded benchmark replayed with %d errors: %v", warm.Errors, warm.ErrorSamples)
	}
}

func TestBinaryDecodeRejectsDamage(t *testing.T) {
	b := compileSample(t, core.DefaultModes())
	var buf bytes.Buffer
	if err := b.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	art := buf.Bytes()

	if _, err := DecodeBinaryBytes(art[:len(art)/2]); err == nil {
		t.Fatal("truncated artifact decoded without error")
	}
	if _, err := DecodeBinaryBytes(nil); err == nil {
		t.Fatal("empty artifact decoded without error")
	}
	if _, err := DecodeBinaryBytes([]byte("#artc-benchmark v2\n")); err == nil {
		t.Fatal("text artifact decoded as binary without error")
	}
	// Flip one bit in the middle: checksum must catch it.
	mut := append([]byte(nil), art...)
	mut[len(mut)/2] ^= 0x10
	if _, err := DecodeBinaryBytes(mut); err == nil {
		t.Fatal("bit-flipped artifact decoded without error")
	}
	// Wrong version.
	mut = append([]byte(nil), art...)
	mut[8] = 99
	if _, err := DecodeBinaryBytes(mut); err == nil {
		t.Fatal("future-version artifact decoded without error")
	}
}

func TestDecodeAnySniffsBothFormats(t *testing.T) {
	b := compileSample(t, core.DefaultModes())
	var bin, txt bytes.Buffer
	if err := b.EncodeBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if err := b.Encode(&txt); err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeAny(bytes.NewReader(bin.Bytes())); err != nil || len(got.Trace.Records) != len(b.Trace.Records) {
		t.Fatalf("DecodeAny(binary): %v", err)
	}
	if got, err := DecodeAny(bytes.NewReader(txt.Bytes())); err != nil || len(got.Trace.Records) != len(b.Trace.Records) {
		t.Fatalf("DecodeAny(text): %v", err)
	}
}
