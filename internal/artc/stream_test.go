package artc

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"rootreplay/internal/core"
	"rootreplay/internal/sim"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
)

// streamFixture renders a two-thread trace whose call windows overlap,
// so EncodeStrace emits `<unfinished ...>` / `<... resumed>` pairs and
// the streaming parse exercises its pending-call machinery, plus a
// snapshot holding the files the calls touch.
func streamFixture(t *testing.T) (string, *snapshot.Snapshot) {
	t.Helper()
	_, snap := traceWorkload(t, defaultConf(), func(sys *stack.System) error {
		if err := sys.SetupCreate("/a", 8192); err != nil {
			return err
		}
		return sys.SetupCreate("/b", 8192)
	}, func(sys *stack.System, th *sim.Thread) {})

	ms := func(n int64) time.Duration { return time.Duration(n) * time.Millisecond }
	tr := &trace.Trace{Platform: "linux", Records: []*trace.Record{
		// TID 1's open spans TID 2's open start; TID 2's pwrite spans
		// TID 1's read start — both directions split.
		{TID: 1, Call: "open", Path: "/a", Flags: trace.ORdonly, FD: 3, Ret: 3, Start: ms(0), End: ms(5)},
		{TID: 2, Call: "open", Path: "/b", Flags: trace.ORdwr, FD: 4, Ret: 4, Start: ms(1), End: ms(2)},
		{TID: 2, Call: "pwrite64", FD: 4, Size: 4096, Ret: 4096, Start: ms(3), End: ms(8)},
		{TID: 1, Call: "read", FD: 3, Size: 4096, Ret: 4096, Start: ms(6), End: ms(7)},
		{TID: 2, Call: "close", FD: 4, Ret: 0, Start: ms(9), End: ms(10)},
		{TID: 1, Call: "close", FD: 3, Ret: 0, Start: ms(11), End: ms(12)},
	}}
	tr.Renumber()
	var buf bytes.Buffer
	if err := trace.EncodeStrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<unfinished ...>") {
		t.Fatal("fixture did not produce split calls")
	}
	return buf.String(), snap
}

func encodeBench(t *testing.T, b *Benchmark) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCompileStraceStreamEquivalence holds the streaming parse→compile
// path to the batch path: same strace text, same snapshot, same modes
// must yield byte-identical encoded benchmarks and identical dependency
// graphs — and the streamed benchmark must replay cleanly.
func TestCompileStraceStreamEquivalence(t *testing.T) {
	text, snap := streamFixture(t)
	modes := core.DefaultModes()

	streamed, err := CompileStraceStream(strings.NewReader(text), snap, modes)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ParseStrace(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Compile(tr, snap, modes)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := encodeBench(t, streamed), encodeBench(t, batch); !bytes.Equal(got, want) {
		t.Fatalf("streamed encoding differs from batch:\nstreamed:\n%s\nbatch:\n%s", got, want)
	}
	if !reflect.DeepEqual(streamed.Graph.Edges, batch.Graph.Edges) {
		t.Fatalf("streamed graph edges differ: %v vs %v", streamed.Graph.Edges, batch.Graph.Edges)
	}

	k := sim.NewKernel()
	sys := stack.New(k, defaultConf())
	if err := Init(sys, streamed, ""); err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(sys, streamed, Options{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("streamed replay errors: %v", rep.ErrorSamples)
	}
}

// TestCompileStraceStreamNilSnapshot covers the documented fallback:
// with no snapshot there is nothing to overlap (the analyzer's initial
// state comes from a whole-trace prescan), so the call must still
// produce exactly the batch compile's result.
func TestCompileStraceStreamNilSnapshot(t *testing.T) {
	text, _ := streamFixture(t)
	modes := core.DefaultModes()

	streamed, err := CompileStraceStream(strings.NewReader(text), nil, modes)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ParseStrace(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Compile(tr, nil, modes)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := encodeBench(t, streamed), encodeBench(t, batch); !bytes.Equal(got, want) {
		t.Fatalf("nil-snapshot streamed encoding differs from batch:\nstreamed:\n%s\nbatch:\n%s", got, want)
	}
	if !reflect.DeepEqual(streamed.Graph.Edges, batch.Graph.Edges) {
		t.Fatal("nil-snapshot streamed graph edges differ from batch")
	}
}
