package artc

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"rootreplay/internal/core"
	"rootreplay/internal/fault"
	"rootreplay/internal/obs"
	"rootreplay/internal/par"
	"rootreplay/internal/shard"
	"rootreplay/internal/sim"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
)

// ShardOptions configure a sharded replay. Unlike Replay, ReplaySharded
// owns system construction: every component replays on its own
// kernel/scheduler/storage replica, so the caller describes the target
// once and the replayer instantiates it per component.
type ShardOptions struct {
	// Shards bounds the number of component clusters replayed
	// concurrently (the host worker pool). Zero selects GOMAXPROCS. It
	// does not affect replay output: partitioning is a property of the
	// graph, and every component advances its own virtual clock
	// regardless of how many host workers drive them.
	Shards int
	// Target is the system configuration each component replica is built
	// from (Faults is overridden per replica; see Fault).
	Target stack.Config
	// Init initializes one component's replica system — typically
	// artc.Init to restore the benchmark snapshot, plus any target
	// warm-up. It runs once per component, so it must be safe to call
	// concurrently against distinct systems.
	Init func(sys *stack.System) error
	// Fault, when non-nil, gives every component replica its own
	// injector built from this plan, so chaos replay stays
	// bit-reproducible: decision streams are keyed by global action
	// index and per-replica device state, independent of shard count.
	// Options.Fault must be nil for a sharded replay.
	Fault *fault.Plan
}

// ShardStats summarizes the partition a sharded replay executed.
type ShardStats struct {
	// Components is the number of replica-isolated partitions; Clusters
	// the number of independent work units after grouping components
	// connected by cross edges.
	Components int
	Clusters   int
	// CrossEdges counts dependency edges enforced by clock-exchange
	// barriers rather than a shared kernel.
	CrossEdges int
	// Largest is the action count of the biggest component.
	Largest int
	// Shards is the resolved worker bound.
	Shards int
}

// infDur is the coordinator's "no constraint" time.
const infDur = time.Duration(math.MaxInt64)

// subState is a replayState's view of its place in a sharded replay:
// index translations back to the whole trace plus the cross-edge
// barrier wiring.
type subState struct {
	comp   int32
	member int // cluster-local index, meaningful when coord != nil
	// global maps local action indices to trace indices; edgeGlobal maps
	// local graph edges to full-graph edges.
	global     []int32
	edgeGlobal []int32
	full       *core.Graph
	plan       *shard.Plan
	// crossIn/crossOut hold, per local action, the inbound/outbound
	// cross-component edges (full-graph indices, ascending).
	crossIn  [][]int32
	crossOut [][]int32
	// crossWaitEdge[i] is the cross edge action i is currently parked
	// on, -1 otherwise (stall reports read it).
	crossWaitEdge []int32
	// crossRelAt/crossRelEdge track the latest-satisfied inbound cross
	// edge per action — the cross candidate for a span's ReleasedBy
	// (allocated only when observability is on).
	crossRelAt   []time.Duration
	crossRelEdge []int32
	coord        *clusterCoord
}

// waitCross blocks action idx on its inbound cross-component edges, in
// ascending full-graph edge order. Called after the local dependency
// counter drains and before predelay, so the issue time is the fixed
// point of local and cross constraints, exactly as under one kernel.
func (s *subState) waitCross(rs *replayState, t *sim.Thread, idx int) {
	ins := s.crossIn[idx]
	if len(ins) == 0 {
		return
	}
	k := rs.sys.K
	for _, ge := range ins {
		s.crossWaitEdge[idx] = ge
		v := s.coord.await(t, k, s.member, ge, func() string { return s.crossReason(idx) })
		if s.crossRelEdge != nil {
			if best := s.crossRelEdge[idx]; best < 0 || v > s.crossRelAt[idx] {
				s.crossRelAt[idx] = v
				s.crossRelEdge[idx] = ge
			}
		}
	}
	s.crossWaitEdge[idx] = -1
}

// publishCross publishes action idx's outbound cross edges of the given
// kind at virtual time at.
func (s *subState) publishCross(idx int, kind core.EdgeKind, at time.Duration) {
	for _, ge := range s.crossOut[idx] {
		if s.full.Edges[ge].Kind == kind {
			s.coord.publish(ge, at)
		}
	}
}

// fillReleasedBy picks the span's releasing edge among the local
// released edge and the satisfied cross edges: latest satisfaction
// time, ties to the higher full-graph edge index. With no cross edges
// (every single-component replay) this reduces to the serial rule.
func (s *subState) fillReleasedBy(rs *replayState, idx int, sp *obs.Span) {
	bestEdge := int32(-1)
	var bestAt time.Duration
	if re := rs.releasedEdge[idx]; re >= 0 {
		bestEdge = s.edgeGlobal[re]
		bestAt = rs.releasedAt[idx]
	}
	if s.crossRelEdge != nil {
		if ce := s.crossRelEdge[idx]; ce >= 0 {
			if at := s.crossRelAt[idx]; bestEdge < 0 || at > bestAt || (at == bestAt && ce > bestEdge) {
				bestEdge, bestAt = ce, at
			}
		}
	}
	if bestEdge < 0 {
		return
	}
	e := &s.full.Edges[bestEdge]
	sp.ReleasedBy = int32(e.From)
	sp.ReleasedAt = bestAt
	if e.Res != (core.ResourceID{}) {
		sp.ReleaseRes = e.Res.String()
	}
}

// crossReason renders a cross-barrier wait for park and stall reports:
// the peer shard and edge, not a spurious local deadlock.
func (s *subState) crossReason(idx int) string {
	ge := s.crossWaitEdge[idx]
	if ge < 0 {
		return fmt.Sprintf("action %d: cross-shard barrier", s.global[idx])
	}
	e := &s.full.Edges[ge]
	return fmt.Sprintf("action %d: cross-shard barrier on edge %d, awaiting action %d (shard %d)",
		s.global[idx], ge, e.From, s.plan.CompOf[e.From])
}

// Coordinator member states.
const (
	memberRunning = iota
	memberBlocked
	memberDone
)

// crossWaiter is one thread parked on a cross edge. fired is written in
// the waiter's own kernel context by the injected wake and read by the
// thread after it resumes; the kernel's park/resume handoff orders the
// two.
type crossWaiter struct {
	th    *sim.Thread
	m     int
	tPark time.Duration
	fired bool
}

// injection is a pending wake for a member's kernel: unpark w.th at
// virtual time at. Injections are delivered only by the member's own
// pacer during a clock advance, never directly from the publishing
// shard, so their position in the member's event order depends only on
// virtual times — not on which host thread got there first.
type injection struct {
	at   time.Duration
	edge int32
	w    *crossWaiter
}

// clusterCoord synchronizes the virtual clocks of one cluster's
// components. The protocol is conservative: a member may advance its
// clock to T only if, for every inbound cross edge not yet published,
// the source member's clock is strictly past T (so no publication with
// a wake at or before T can still arrive). When every member is blocked
// — the deterministic quiescent state — the member with the smallest
// (target, member) pair is granted one advance, which resolves the
// zero-lookahead cycles program-order chains create without giving up
// determinism.
type clusterCoord struct {
	mu   sync.Mutex
	cond *sync.Cond

	// clock[m] is member m's latest granted advance target; state and
	// target describe blocked members; granted marks one-shot stall
	// grants; parked counts m's threads parked on cross edges.
	clock   []time.Duration
	state   []int
	target  []time.Duration
	granted []bool
	parked  []int
	// inSrc lists each member's inbound cross edges with their source
	// member; pub holds published edge satisfaction times; waiters the
	// parked thread per unpublished awaited edge; inj the pending wakes
	// per member, sorted by (at, edge).
	inSrc   [][]edgeSrc
	pub     map[int32]time.Duration
	waiters map[int32]*crossWaiter
	inj     [][]injection

	// dead aborts the cluster (peer failure or cross deadlock);
	// deadlocked distinguishes the latter for error reporting.
	dead       bool
	deadlocked bool
}

type edgeSrc struct {
	edge int32
	src  int
}

func newClusterCoord(plan *shard.Plan, cluster []int32) *clusterCoord {
	n := len(cluster)
	c := &clusterCoord{
		clock:   make([]time.Duration, n),
		state:   make([]int, n),
		target:  make([]time.Duration, n),
		granted: make([]bool, n),
		parked:  make([]int, n),
		inSrc:   make([][]edgeSrc, n),
		pub:     make(map[int32]time.Duration),
		waiters: make(map[int32]*crossWaiter),
		inj:     make([][]injection, n),
	}
	c.cond = sync.NewCond(&c.mu)
	memberOf := make(map[int32]int, n)
	for m, comp := range cluster {
		memberOf[comp] = m
	}
	for _, ce := range plan.Cross {
		if m, ok := memberOf[ce.To]; ok {
			c.inSrc[m] = append(c.inSrc[m], edgeSrc{edge: ce.Edge, src: memberOf[ce.From]})
		}
	}
	return c
}

// advance implements the pacer gate for member m (called in m's kernel
// context). next is the kernel's earliest pending instant, or
// sim.PacerIdle when only an injected wake can make progress.
func (c *clusterCoord) advance(k *sim.Kernel, m int, next time.Duration) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	injected := false
	for {
		if c.dead {
			k.Stop()
			return true
		}
		target := infDur
		if next != sim.PacerIdle {
			target = next
		}
		if lst := c.inj[m]; len(lst) > 0 && lst[0].at < target {
			target = lst[0].at
		}
		if target == infDur {
			if c.parked[m] == 0 {
				// Nothing parked on a barrier and no own events: a
				// genuine local deadlock; let the kernel report it.
				return false
			}
		} else if c.allowed(m, target) {
			for len(c.inj[m]) > 0 && c.inj[m][0].at <= target {
				in := c.inj[m][0]
				c.inj[m] = c.inj[m][1:]
				w := in.w
				k.At(in.at, func() {
					w.fired = true
					k.Unpark(w.th)
				})
				injected = true
			}
			c.granted[m] = false
			if target > c.clock[m] {
				c.clock[m] = target
				c.cond.Broadcast()
			}
			if next == sim.PacerIdle {
				return true
			}
			return injected || target < next
		}
		c.state[m] = memberBlocked
		c.target[m] = target
		c.checkStall()
		// checkStall may have granted this very member (or declared the
		// cluster dead): its broadcast fired before we could Wait, so
		// re-evaluate instead of sleeping through our own wake-up.
		if !c.granted[m] && !c.dead {
			c.cond.Wait()
		}
		c.state[m] = memberRunning
	}
}

// allowed reports whether member m may advance its clock to target.
func (c *clusterCoord) allowed(m int, target time.Duration) bool {
	if c.granted[m] {
		return true
	}
	for _, es := range c.inSrc[m] {
		if _, ok := c.pub[es.edge]; ok {
			continue
		}
		if c.state[es.src] == memberDone {
			// A finished source will never publish; the parked waiter is
			// a deadlock, which idle detection reports.
			continue
		}
		if c.clock[es.src] <= target {
			return false
		}
	}
	return true
}

// checkStall runs whenever a member blocks or finishes, with the lock
// held. If the whole cluster is quiescent it grants the smallest
// (target, member) advance, or — when no member has a finite target —
// declares a cross-shard deadlock. Quiescent states are functions of
// the virtual execution alone, so the grant sequence is deterministic.
func (c *clusterCoord) checkStall() {
	best := -1
	var bestT time.Duration
	for m, st := range c.state {
		switch st {
		case memberRunning:
			return
		case memberBlocked:
			// The recorded target may be stale: a publish can queue an
			// injection for a member that has not re-evaluated yet. Fold
			// pending injections in, so the effective target is the same
			// whether or not the member has woken — quiescent decisions
			// must depend only on the virtual execution.
			t := c.target[m]
			if lst := c.inj[m]; len(lst) > 0 && lst[0].at < t {
				t = lst[0].at
			}
			if t < infDur && (best < 0 || t < bestT) {
				best, bestT = m, t
			}
		}
	}
	allDone := true
	for _, st := range c.state {
		if st != memberDone {
			allDone = false
			break
		}
	}
	if allDone {
		return
	}
	if best < 0 {
		c.dead = true
		c.deadlocked = true
		c.cond.Broadcast()
		return
	}
	if !c.granted[best] {
		c.granted[best] = true
		c.cond.Broadcast()
	}
}

// addInj inserts a pending wake, keeping inj[m] sorted by (at, edge).
func (c *clusterCoord) addInj(m int, at time.Duration, edge int32, w *crossWaiter) {
	lst := c.inj[m]
	i := len(lst)
	for i > 0 && (lst[i-1].at > at || (lst[i-1].at == at && lst[i-1].edge > edge)) {
		i--
	}
	lst = append(lst, injection{})
	copy(lst[i+1:], lst[i:])
	lst[i] = injection{at: at, edge: edge, w: w}
	c.inj[m] = lst
}

// await blocks the calling thread until edge is published, returning
// the published satisfaction time. Called in member m's kernel context.
func (c *clusterCoord) await(t *sim.Thread, k *sim.Kernel, m int, edge int32, reason func() string) time.Duration {
	c.mu.Lock()
	now := k.Now()
	if v, ok := c.pub[edge]; ok && v <= now {
		// Satisfied in this member's past. The conservative bound
		// guarantees the publication is already visible here: m could
		// only reach now with the source clock past it.
		c.mu.Unlock()
		return v
	}
	w := &crossWaiter{th: t, m: m, tPark: now}
	if v, ok := c.pub[edge]; ok {
		c.addInj(m, v, edge, w) // v > now: wake exactly at the edge time
	} else {
		c.waiters[edge] = w
	}
	c.parked[m]++
	c.mu.Unlock()
	for !w.fired {
		t.ParkFn(reason)
	}
	c.mu.Lock()
	c.parked[m]--
	v := c.pub[edge]
	c.mu.Unlock()
	return v
}

// publish records edge's satisfaction time and, if a thread is parked
// on it, queues the wake for the waiter's own pacer to deliver.
func (c *clusterCoord) publish(edge int32, v time.Duration) {
	c.mu.Lock()
	c.pub[edge] = v
	if w := c.waiters[edge]; w != nil {
		delete(c.waiters, edge)
		at := v
		if w.tPark > at {
			at = w.tPark
		}
		c.addInj(w.m, at, edge, w)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// memberDone marks member m finished (its clock no longer constrains
// anyone) and re-checks the cluster for quiescence.
func (c *clusterCoord) memberDone(m int) {
	c.mu.Lock()
	c.state[m] = memberDone
	c.clock[m] = infDur
	c.checkStall()
	c.cond.Broadcast()
	c.mu.Unlock()
}

// abort kills the cluster after a member failure; peer pacers stop
// their kernels at the next advance.
func (c *clusterCoord) abort() {
	c.mu.Lock()
	if !c.dead {
		c.dead = true
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// shardPacer adapts a cluster coordinator to one kernel's Pacer hook.
type shardPacer struct {
	c *clusterCoord
	k *sim.Kernel
	m int
}

func (p *shardPacer) Advance(next time.Duration) bool { return p.c.advance(p.k, p.m, next) }

// compiledShard is one component's replay unit: a sub-benchmark whose
// records, actions, and touch plans are dense contiguous copies of the
// component's slice of the trace, plus the local dependency graph and
// the cross-edge wiring.
type compiledShard struct {
	comp    int32
	members []int32
	b       *Benchmark
	g       *core.Graph
	sub     *subState
	// rec is the per-component span/sample recorder (nil without obs);
	// rs is filled once the member's kernel has run.
	rec *obs.Recorder
	rs  *replayState
}

// buildShards materializes every component's replay unit.
func buildShards(b *Benchmark, g *core.Graph, plan *shard.Plan, obsOn bool) []*compiledShard {
	n := plan.N
	nc := len(plan.Components)
	// localOf renumbers each action within its component.
	localOf := make([]int32, n)
	counters := make([]int32, nc)
	for i := 0; i < n; i++ {
		comp := plan.CompOf[i]
		localOf[i] = counters[comp]
		counters[comp]++
	}
	// One pass over the full edge list builds every component's local
	// edge list (cross edges excluded: barriers enforce them).
	edgesOf := make([][]core.Edge, nc)
	edgeGlobalOf := make([][]int32, nc)
	for ei := range g.Edges {
		e := &g.Edges[ei]
		cf := plan.CompOf[e.From]
		if cf != plan.CompOf[e.To] {
			continue
		}
		edgesOf[cf] = append(edgesOf[cf], core.Edge{
			From: int(localOf[e.From]), To: int(localOf[e.To]), Kind: e.Kind, Res: e.Res,
		})
		edgeGlobalOf[cf] = append(edgeGlobalOf[cf], int32(ei))
	}
	shards := make([]*compiledShard, nc)
	for ci := range plan.Components {
		shards[ci] = buildOneShard(b, g, plan, int32(ci), localOf, edgesOf[ci], edgeGlobalOf[ci], obsOn)
	}
	// Cross-edge wiring, one pass over the registered cross list.
	for _, ce := range plan.Cross {
		e := &g.Edges[ce.Edge]
		to := shards[ce.To].sub
		li := localOf[e.To]
		to.crossIn[li] = append(to.crossIn[li], ce.Edge)
		from := shards[ce.From].sub
		lo := localOf[e.From]
		from.crossOut[lo] = append(from.crossOut[lo], ce.Edge)
	}
	return shards
}

func buildOneShard(b *Benchmark, g *core.Graph, plan *shard.Plan, comp int32,
	localOf []int32, edges []core.Edge, edgeGlobal []int32, obsOn bool) *compiledShard {
	members := plan.Components[comp]
	m := len(members)
	// Contiguous local copies: the replay hot path walks records and
	// actions densely instead of striding through the whole trace.
	recs := make([]trace.Record, m)
	recPtrs := make([]*trace.Record, m)
	acts := make([]core.Action, m)
	for li, gidx := range members {
		recs[li] = *b.Trace.Records[gidx]
		recs[li].Seq = int64(li)
		recPtrs[li] = &recs[li]
		acts[li] = b.Analysis.Actions[gidx]
		acts[li].Rec = recPtrs[li]
	}
	var touches []actionTouches
	if b.touches != nil {
		touches = make([]actionTouches, m)
		for li, gidx := range members {
			touches[li] = b.touches[gidx]
		}
	}
	subTrace := &trace.Trace{Platform: b.Trace.Platform, Records: recPtrs}
	subB := &Benchmark{
		Platform: b.Platform,
		Modes:    b.Modes,
		Trace:    subTrace,
		Snapshot: b.Snapshot,
		Analysis: &core.Analysis{Trace: subTrace, Actions: acts},
		touches:  touches,
	}
	sub := &subState{
		comp:          comp,
		global:        members,
		edgeGlobal:    edgeGlobal,
		full:          g,
		plan:          plan,
		crossIn:       make([][]int32, m),
		crossOut:      make([][]int32, m),
		crossWaitEdge: make([]int32, m),
	}
	for i := range sub.crossWaitEdge {
		sub.crossWaitEdge[i] = -1
	}
	if obsOn {
		sub.crossRelAt = make([]time.Duration, m)
		sub.crossRelEdge = make([]int32, m)
		for i := range sub.crossRelEdge {
			sub.crossRelEdge[i] = -1
		}
	}
	return &compiledShard{
		comp:    comp,
		members: members,
		b:       subB,
		g:       core.NewGraph(m, edges),
		sub:     sub,
	}
}

// finishSub tears down one component's replay machinery without
// assembling a full report; the merge reads the raw state instead.
func (rs *replayState) finishSub() error {
	if rs.watchdog != nil {
		rs.watchdog.Stop()
		rs.watchdog = nil
	}
	if rs.obsDetach != nil {
		rs.obsDetach()
		rs.obsDetach = nil
	}
	if rs.stall != nil {
		return rs.stall
	}
	return nil
}

// runMember builds one component's replica system, replays the
// component on it, and leaves the raw state on cs for the merge.
func runMember(cs *compiledShard, opts Options, so ShardOptions, coord *clusterCoord, mi int) (err error) {
	if coord != nil {
		defer func() {
			if err != nil {
				coord.abort()
			}
		}()
	}
	k := sim.NewKernel()
	conf := so.Target
	var inj *fault.Injector
	if so.Fault != nil {
		inj = fault.New(*so.Fault)
		conf.Faults = inj
	} else {
		conf.Faults = nil
	}
	sys := stack.New(k, conf)
	if so.Init != nil {
		if err := so.Init(sys); err != nil {
			return fmt.Errorf("artc: shard %d init: %w", cs.comp, err)
		}
	}
	opts2 := opts
	opts2.Fault = inj
	opts2.Obs = nil
	if opts.Obs != nil {
		cs.rec = obs.NewRecorder(len(cs.members), opts.Obs.SampleCap())
		opts2.Obs = cs.rec
	}
	rs := newReplayState(sys, cs.b, opts2, cs.g)
	rs.sub = cs.sub
	rs.sub.member = mi
	rs.sub.coord = coord
	if coord != nil {
		k.SetPacer(&shardPacer{c: coord, k: k, m: mi})
	}
	rs.spawnThreads()
	runErr := k.Run()
	if coord != nil {
		coord.memberDone(mi)
	}
	cs.rs = rs
	if ferr := rs.finishSub(); ferr != nil {
		return ferr
	}
	if runErr != nil {
		return fmt.Errorf("artc: shard %d replay stalled: %w", cs.comp, runErr)
	}
	return nil
}

// runCluster replays one cluster: a single component directly, or a
// cross-connected group under a clock-exchange coordinator.
func runCluster(shards []*compiledShard, cluster []int32, opts Options, so ShardOptions) error {
	if len(cluster) == 1 {
		return runMember(shards[cluster[0]], opts, so, nil, 0)
	}
	coord := newClusterCoord(shards[cluster[0]].sub.plan, cluster)
	errs := make([]error, len(cluster))
	var wg sync.WaitGroup
	for mi, comp := range cluster {
		wg.Add(1)
		go func(mi int, comp int32) {
			defer wg.Done()
			errs[mi] = runMember(shards[comp], opts, so, coord, mi)
		}(mi, comp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if coord.deadlocked {
		return crossStall(shards, cluster)
	}
	return nil
}

// crossStall assembles a shard-aware StallReport for a cluster whose
// members all blocked on unsatisfiable cross-shard barriers.
func crossStall(shards []*compiledShard, cluster []int32) error {
	s := &StallReport{Trigger: "cross-barrier"}
	for _, comp := range cluster {
		cs := shards[comp]
		if cs.rs == nil {
			continue
		}
		rs := cs.rs
		s.Total += len(rs.b.Trace.Records)
		s.Completed += rs.completed
		s.Errors += rs.rep.Errors
		if at := rs.sys.K.Now() - rs.start; at > s.At {
			s.At = at
		}
		part := rs.buildStall("cross-barrier")
		for _, ba := range part.Blocked {
			if len(s.Blocked) >= maxStallBlocked {
				s.Truncated++
				continue
			}
			s.Blocked = append(s.Blocked, ba)
		}
		s.Truncated += part.Truncated
	}
	return s
}

// mergedSample keys one component's error sample for the merge.
type mergedSample struct {
	at   time.Duration
	comp int32
	text string
}

// ReplaySharded partitions the benchmark's dependency graph into
// replica-isolated components (internal/shard) and replays every
// component on its own kernel/scheduler/storage stack, each advancing
// its own virtual clock; components connected by program-order edges
// synchronize through deterministic clock-exchange barriers. Per-shard
// reports, spans, and counters are merged into one Report. For a trace
// the partitioner keeps whole (one component), the merged output is
// byte-identical to Replay on an identically configured system; the
// output never depends on Shards or GOMAXPROCS.
func ReplaySharded(b *Benchmark, opts Options, so ShardOptions) (*Report, *ShardStats, error) {
	if opts.Fault != nil {
		return nil, nil, fmt.Errorf("artc: sharded replay takes a fault plan in ShardOptions.Fault, not an injector in Options.Fault")
	}
	if opts.MaxErrorSamples == 0 {
		opts.MaxErrorSamples = 10
	}
	g, err := methodGraph(b, &opts)
	if err != nil {
		return nil, nil, err
	}
	plan := shard.Partition(b.Analysis, g)
	clusters := plan.Clusters()
	workers := so.Shards
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pst := plan.Stats()
	stats := &ShardStats{
		Components: pst.Components,
		Clusters:   len(clusters),
		CrossEdges: pst.CrossEdges,
		Largest:    pst.Largest,
		Shards:     workers,
	}
	shards := buildShards(b, g, plan, opts.Obs != nil)
	if err := par.ForEachN(len(clusters), workers, func(ci int) error {
		return runCluster(shards, clusters[ci], opts, so)
	}); err != nil {
		return nil, stats, err
	}
	rep, err := mergeReports(b, g, shards, opts)
	if err != nil {
		return nil, stats, err
	}
	return rep, stats, nil
}

// mergeReports folds the per-component raw states into one Report and,
// when observability is on, replays the merged span and sample streams
// into the caller's recorder. Per-component streams are interleaved by
// virtual time with component index as the tiebreak, preserving each
// component's internal order — for a single component this reproduces
// the serial streams exactly.
func mergeReports(b *Benchmark, g *core.Graph, shards []*compiledShard, opts Options) (*Report, error) {
	n := len(b.Trace.Records)
	rep := &Report{
		Method:    opts.Method,
		Actions:   n,
		IssueAt:   make([]time.Duration, n),
		DoneAt:    make([]time.Duration, n),
		CallTime:  make(map[string]time.Duration),
		CallCount: make(map[string]int64),
		PerThread: make(map[int]time.Duration),
		graph:     g,
	}
	var samples []mergedSample
	var fstats *fault.Stats
	for _, cs := range shards {
		rs := cs.rs
		if rs == nil {
			return nil, fmt.Errorf("artc: shard %d never ran", cs.comp)
		}
		for li, gidx := range cs.members {
			rep.IssueAt[gidx] = rs.issueAt[li]
			rep.DoneAt[gidx] = rs.doneAt[li]
		}
		rep.Errors += rs.rep.Errors
		rep.Emulated += rs.rep.Emulated
		rep.ThreadTime += rs.rep.ThreadTime
		for call, d := range rs.rep.CallTime {
			rep.CallTime[call] += d
		}
		for call, cnt := range rs.rep.CallCount {
			rep.CallCount[call] += cnt
		}
		for tid, d := range rs.rep.PerThread {
			rep.PerThread[tid] += d
		}
		for si, text := range rs.rep.ErrorSamples {
			samples = append(samples, mergedSample{at: rs.sampleAt[si], comp: cs.comp, text: text})
		}
		if rs.inj != nil {
			st := rs.inj.Stats()
			if fstats == nil {
				fstats = &fault.Stats{}
			}
			fstats.SyscallInjected += st.SyscallInjected
			fstats.Retries += st.Retries
			fstats.Recovered += st.Recovered
			fstats.Skipped += st.Skipped
			fstats.StorageErrors += st.StorageErrors
			fstats.StorageSlow += st.StorageSlow
		}
	}
	var last time.Duration
	for _, d := range rep.DoneAt {
		if d > last {
			last = d
		}
	}
	rep.Elapsed = last
	// Error samples keep the serial retention rule generalized: the
	// first MaxErrorSamples in merged completion order.
	sort.SliceStable(samples, func(i, j int) bool {
		if samples[i].at != samples[j].at {
			return samples[i].at < samples[j].at
		}
		return samples[i].comp < samples[j].comp
	})
	if max := opts.MaxErrorSamples; max >= 0 && len(samples) > max {
		samples = samples[:max]
	}
	for _, s := range samples {
		rep.ErrorSamples = append(rep.ErrorSamples, s.text)
	}
	rep.Graph = g.Stats(b.Analysis)
	rep.FaultStats = fstats

	if opts.Obs != nil {
		var spans []obs.Span
		for _, cs := range shards {
			spans = append(spans, cs.rec.Spans()...)
		}
		sort.SliceStable(spans, func(i, j int) bool {
			if spans[i].Done != spans[j].Done {
				return spans[i].Done < spans[j].Done
			}
			return spans[i].Shard < spans[j].Shard
		})
		for _, sp := range spans {
			opts.Obs.Record(sp)
		}
		type keyedSample struct {
			s    obs.Sample
			comp int32
		}
		var smps []keyedSample
		for _, cs := range shards {
			for _, s := range cs.rec.Samples() {
				smps = append(smps, keyedSample{s: s, comp: cs.comp})
			}
		}
		sort.SliceStable(smps, func(i, j int) bool {
			if smps[i].s.At != smps[j].s.At {
				return smps[i].s.At < smps[j].s.At
			}
			return smps[i].comp < smps[j].comp
		})
		for _, ks := range smps {
			opts.Obs.Sample(ks.s.At, ks.s.Kind, ks.s.Value)
		}
	}

	if opts.SelfCheck {
		// The global validation doubles as the barrier-correctness
		// assertion: merged issue/done times must satisfy every edge of
		// the full graph, cross-component ones included.
		if err := g.ValidateOrder(rep.IssueAt, rep.DoneAt); err != nil {
			return nil, fmt.Errorf("artc: sharded self-check failed: %w", err)
		}
	}
	return rep, nil
}
