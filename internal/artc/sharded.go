package artc

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rootreplay/internal/core"
	"rootreplay/internal/fault"
	"rootreplay/internal/obs"
	"rootreplay/internal/par"
	"rootreplay/internal/shard"
	"rootreplay/internal/sim"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
)

// ShardOptions configure a sharded replay. Unlike Replay, ReplaySharded
// owns system construction: every component replays on its own
// kernel/scheduler/storage replica, so the caller describes the target
// once and the replayer instantiates it per component.
type ShardOptions struct {
	// Shards bounds the number of component clusters replayed
	// concurrently (the host worker pool). Zero selects GOMAXPROCS. It
	// does not affect replay output: partitioning is a property of the
	// graph, and every component advances its own virtual clock
	// regardless of how many host workers drive them.
	Shards int
	// Target is the system configuration each component replica is built
	// from (Faults is overridden per replica; see Fault).
	Target stack.Config
	// Init initializes one component's replica system — typically
	// artc.Init to restore the benchmark snapshot, plus any target
	// warm-up. It runs once per component, so it must be safe to call
	// concurrently against distinct systems.
	Init func(sys *stack.System) error
	// Fault, when non-nil, gives every component replica its own
	// injector built from this plan, so chaos replay stays
	// bit-reproducible: decision streams are keyed by global action
	// index and per-replica device state, independent of shard count.
	// Options.Fault must be nil for a sharded replay.
	Fault *fault.Plan
	// SliceActions enables resource-cut slicing: components larger than
	// this many actions are split along resource-series cuts
	// (internal/shard.Slice) and the slices co-replay under the
	// clock-exchange coordinator, with synthetic program-order edges
	// restoring the traced threads' sequential order across cuts. Zero
	// keeps components whole (the PR 6 behavior). Like Shards, the
	// value changes the partition — and so which spans carry which
	// slice-internal tie-breaks — but never the merged report.
	SliceActions int
	// SliceMax caps the slices per component (0 = no cap).
	SliceMax int
	// SliceDeviceSync lets slicing cut components containing fsync-family
	// calls (shard.SliceOptions.AllowDeviceSync). The merged report stays
	// deterministic but reflects per-slice device queues, so it is no
	// longer byte-identical to serial Replay; perf measurements opt in,
	// differential tests must not.
	SliceDeviceSync bool
	// SliceProfile, when non-nil, feeds a prior replay's observed
	// per-atom-pair wait/traffic weights into the slicer
	// (shard.SliceOptions.Profile): the cut is re-run with observed
	// cross-edge wait cost in place of the static structural proxy. The
	// plan — and therefore the replay — stays a pure function of
	// (trace, options, profile).
	SliceProfile *shard.SliceProfile
}

// ShardStats summarizes the partition a sharded replay executed.
type ShardStats struct {
	// Components is the number of replica-isolated partitions; Clusters
	// the number of independent work units after grouping components
	// connected by cross edges.
	Components int
	Clusters   int
	// CrossEdges counts dependency edges enforced by clock-exchange
	// barriers rather than a shared kernel.
	CrossEdges int
	// Largest is the action count of the biggest component.
	Largest int
	// Shards is the resolved worker bound.
	Shards int
	// Sliced counts components split by resource-cut slicing;
	// Synthetic the program-order edges the splits created.
	Sliced    int
	Synthetic int
	// Profiled reports whether the plan was cut from a slice profile;
	// PlanFingerprint identifies the executed partition (component
	// membership + cross edges), so callers can tell a profiled re-cut
	// actually moved the cut.
	Profiled        bool
	PlanFingerprint uint64
	// Profile is the slice profile built from this replay's coordinator
	// measurements — per-atom virtual cost and per-atom-pair cross-edge
	// wait/traffic — nil when the plan was not sliced. Feeding it back
	// through ShardOptions.SliceProfile re-cuts adaptively.
	Profile *shard.SliceProfile
}

// CoordStats aggregates the clock-exchange coordinator's accounting
// across a sharded replay's clusters. The virtual quantities (cross
// wait, publishes) are deterministic; BlockedNs is host wall time and
// is reported for humans only — it never feeds the profile.
type CoordStats struct {
	// EdgeWaitNs and EdgePublished are indexed by the plan's cross-edge
	// list: virtual nanoseconds the destination action waited on each
	// edge, and whether the edge published (0 or 1).
	EdgeWaitNs    []int64
	EdgePublished []int64
	// CrossWaitNs sums EdgeWaitNs; Published sums EdgePublished.
	CrossWaitNs int64
	Published   int64
	// FlushBatches counts non-empty epoch publication flushes;
	// FlushMaxBatch is the largest single flush.
	FlushBatches  int64
	FlushMaxBatch int
	// BlockedNs is host wall time member pacers spent parked waiting for
	// peer clocks, attributed per gating source internally.
	BlockedNs int64
}

// infDur is the coordinator's "no constraint" time.
const infDur = time.Duration(math.MaxInt64)

// subState is a replayState's view of its place in a sharded replay:
// index translations back to the whole trace plus the cross-edge
// barrier wiring.
type subState struct {
	comp int32
	// orig is the pre-slicing component index — what spans report as
	// their shard, so a sliced single-component trace still attributes
	// everything to component 0, like the serial replayer.
	orig   int32
	member int // cluster-local index, meaningful when coord != nil
	// global maps local action indices to trace indices; edgeGlobal maps
	// local graph edges to full-graph edges.
	global     []int32
	edgeGlobal []int32
	full       *core.Graph
	plan       *shard.Plan
	// crossIn/crossOut hold, per local action, the inbound/outbound
	// cross-component edges (full-graph indices, ascending; crossOut
	// may also carry synthetic thread-adjacency edges, ids >=
	// plan.EdgeBase).
	crossIn  [][]int32
	crossOut [][]int32
	// threadPrevIn[i] is the synthetic program-order edge action i must
	// await before anything else (-1 none; nil when the plan is
	// unsliced): its traced thread's previous action completing on
	// another slice.
	threadPrevIn []int32
	// crossWaitEdge[i] is the cross edge action i is currently parked
	// on, -1 otherwise (stall reports read it).
	crossWaitEdge []int32
	// crossRelAt/crossRelEdge track the latest-satisfied inbound cross
	// edge per action — the cross candidate for a span's ReleasedBy
	// (allocated only when observability is on).
	crossRelAt   []time.Duration
	crossRelEdge []int32
	coord        *clusterCoord
	// pendingPub buffers this member's outbound publications between
	// epochs; the pacer flushes it under one lock acquisition per clock
	// advance. pubLocal mirrors published edges (dense cluster ids)
	// delivered to this member, giving await a lock-free fast path;
	// both are touched only from the member's own kernel goroutine.
	pendingPub []pubRec
	pubLocal   []time.Duration
	// crossWaitNs accumulates the member's virtual cross-edge wait time
	// (written and read only on the member's kernel goroutine; the obs
	// CounterCrossWait probe samples it from the same goroutine).
	crossWaitNs int64
}

// edgeKindOf returns a cross edge's kind; synthetic thread-adjacency
// edges behave as WaitComplete (the successor waits for the
// predecessor's completion).
func (s *subState) edgeKindOf(ge int32) core.EdgeKind {
	if int(ge) < len(s.full.Edges) {
		return s.full.Edges[ge].Kind
	}
	return core.WaitComplete
}

// waitCross blocks action idx on its inbound cross-component edges, in
// ascending full-graph edge order. Called after the local dependency
// counter drains and before predelay, so the issue time is the fixed
// point of local and cross constraints, exactly as under one kernel.
func (s *subState) waitCross(rs *replayState, t *sim.Thread, idx int) {
	ins := s.crossIn[idx]
	if len(ins) == 0 {
		return
	}
	k := rs.sys.K
	for _, ge := range ins {
		s.crossWaitEdge[idx] = ge
		v, waited := s.coord.await(t, k, s.member, ge, s.pubLocal, func() string { return s.crossReason(idx) })
		s.crossWaitNs += int64(waited)
		if s.crossRelEdge != nil {
			if best := s.crossRelEdge[idx]; best < 0 || v > s.crossRelAt[idx] {
				s.crossRelAt[idx] = v
				s.crossRelEdge[idx] = ge
			}
		}
	}
	s.crossWaitEdge[idx] = -1
}

// waitThreadPrev blocks action idx until its traced thread's previous
// action — replayed on another slice — completes, restoring the
// program order the serial replayer enforces structurally by running
// each traced thread on one replay thread. It runs before the span's
// wait-start sample: the wake lands exactly at the predecessor's
// completion time, which is when the serial thread would have arrived
// here, so sliced spans open their wait window at the serial instant.
// Synthetic edges never enter ReleasedBy attribution — the serial
// graph has no such edge to attribute.
func (s *subState) waitThreadPrev(rs *replayState, t *sim.Thread, idx int) {
	if s.threadPrevIn == nil {
		return
	}
	ge := s.threadPrevIn[idx]
	if ge < 0 {
		return
	}
	s.crossWaitEdge[idx] = ge
	_, waited := s.coord.await(t, rs.sys.K, s.member, ge, s.pubLocal, func() string { return s.crossReason(idx) })
	s.crossWaitNs += int64(waited)
	s.crossWaitEdge[idx] = -1
}

// publishCross buffers action idx's outbound cross edges of the given
// kind, satisfied at virtual time at, for the member's next epoch
// flush. Buffering is safe because the member's clock only moves
// through the pacer, which flushes first: no peer can be granted an
// advance that should have seen a still-buffered publication.
func (s *subState) publishCross(idx int, kind core.EdgeKind, at time.Duration) {
	for _, ge := range s.crossOut[idx] {
		if s.edgeKindOf(ge) == kind {
			s.pendingPub = append(s.pendingPub, pubRec{edge: ge, v: at})
		}
	}
}

// fillReleasedBy picks the span's releasing edge among the local
// released edge and the satisfied cross edges: latest satisfaction
// time, ties to the higher full-graph edge index. With no cross edges
// (every single-component replay) this reduces to the serial rule.
func (s *subState) fillReleasedBy(rs *replayState, idx int, sp *obs.Span) {
	bestEdge := int32(-1)
	var bestAt time.Duration
	if re := rs.releasedEdge[idx]; re >= 0 {
		bestEdge = s.edgeGlobal[re]
		bestAt = rs.releasedAt[idx]
	}
	if s.crossRelEdge != nil {
		if ce := s.crossRelEdge[idx]; ce >= 0 {
			if at := s.crossRelAt[idx]; bestEdge < 0 || at > bestAt || (at == bestAt && ce > bestEdge) {
				bestEdge, bestAt = ce, at
			}
		}
	}
	if bestEdge < 0 {
		return
	}
	e := &s.full.Edges[bestEdge]
	sp.ReleasedBy = int32(e.From)
	sp.ReleasedAt = bestAt
	if e.Res != (core.ResourceID{}) {
		sp.ReleaseRes = e.Res.String()
	}
}

// crossReason renders a cross-barrier wait for park and stall reports:
// the peer shard and edge, not a spurious local deadlock.
func (s *subState) crossReason(idx int) string {
	ge := s.crossWaitEdge[idx]
	if ge < 0 {
		return fmt.Sprintf("action %d: cross-shard barrier", s.global[idx])
	}
	if int(ge) >= len(s.full.Edges) {
		te := s.plan.ThreadCross[ge-s.plan.EdgeBase]
		return fmt.Sprintf("action %d: program-order barrier, awaiting action %d (slice %d)",
			s.global[idx], te.From, s.plan.CompOf[te.From])
	}
	e := &s.full.Edges[ge]
	return fmt.Sprintf("action %d: cross-shard barrier on edge %d, awaiting action %d (shard %d)",
		s.global[idx], ge, e.From, s.plan.CompOf[e.From])
}

// Coordinator member states.
const (
	memberRunning = iota
	memberBlocked
	memberDone
)

// crossWaiter is one thread parked on a cross edge. fired is written in
// the waiter's own kernel context by the injected wake and read by the
// thread after it resumes; the kernel's park/resume handoff orders the
// two.
type crossWaiter struct {
	th    *sim.Thread
	m     int
	tPark time.Duration
	fired bool
}

// injection is a pending wake for a member's kernel: unpark w.th at
// virtual time at. Injections are delivered only by the member's own
// pacer during a clock advance, never directly from the publishing
// shard, so their position in the member's event order depends only on
// virtual times — not on which host thread got there first.
type injection struct {
	at   time.Duration
	edge int32
	w    *crossWaiter
}

// pubRec is one buffered outbound publication: a cross edge satisfied
// at virtual time v, awaiting the owning member's next epoch flush.
type pubRec struct {
	edge int32
	v    time.Duration
}

// delivery carries a flushed publication into a destination member's
// lock-free mirror (drained under the lock inside that member's own
// advance).
type delivery struct {
	dense int32
	v     time.Duration
}

// coordEdge is one cross edge in cluster-dense form: source and
// destination members plus the edge's slot in the destination's
// per-source unpublished counts.
type coordEdge struct {
	src, dst int32
	slot     int32
}

// unpubbed marks a dense edge (or mirror entry) not yet published.
const unpubbed = time.Duration(-1)

// clusterCoord synchronizes the virtual clocks of one cluster's
// components with a batched, epoch-based exchange. The safety rule is
// conservative and unchanged from the per-edge protocol: a member may
// advance its clock to T only if, for every source it still has
// unpublished inbound edges from, the source member's clock is
// strictly past T (so no publication with a wake at or before T can
// still arrive). What the epochs batch is everything around that rule:
//
//   - Publications buffer lock-free in the publishing member
//     (subState.pendingPub) and flush under one lock acquisition when
//     its pacer next runs — one exchange per clock advance. Buffering
//     is sound because a member's clock only rises through the pacer,
//     which flushes first; a peer granted an advance past T therefore
//     cannot have missed a publication at or before T. At every
//     quiescent window all buffers are empty, so grant decisions
//     remain pure functions of the virtual execution.
//   - The advance gate aggregates inbound edges into per-source
//     unpublished counts: the check is O(sources), not O(edges), and
//     a thousand program-order edges between two slices cost exactly
//     one comparison.
//   - Flushed publications are delivered to each destination's dense
//     mirror, giving await a lock-free fast path for edges already
//     satisfied in the member's past — the common case when slices
//     stream through pre-sorted inbound schedules.
//
// When every member is blocked — the deterministic quiescent state —
// the member with the smallest (target, member) pair is granted one
// advance, which resolves the zero-lookahead cycles program-order
// chains create without giving up determinism; the grant's broadcast
// re-qualifies every member whose gate it opened, so one grant
// typically releases a frontier, not a single edge.
type clusterCoord struct {
	mu sync.Mutex
	// conds[m] parks member m's pacer; wakes are targeted at the
	// members an event can re-qualify (the destinations of a clock
	// advance, a grant's recipient) instead of broadcast to the whole
	// cluster — in a lockstepped slice chain, a broadcast wakes every
	// member per batch and the spurious wake-ups dominate coordination
	// cost on few-core hosts.
	conds []*sync.Cond

	// clock[m] is member m's latest granted advance target; state and
	// target describe blocked members; granted marks one-shot stall
	// grants; parked counts m's threads parked on cross edges.
	//
	// clock, state, unpub, injN, and dead are atomics so the advance
	// fast path can read them without the lock: each clock slot is
	// written only by its owning member, and the rest are written under
	// mu but read lock-free.
	clock   []atomic.Int64
	state   []atomic.Int32
	target  []time.Duration
	granted []bool
	parked  []int

	// inLock counts members inside the locked advance section
	// (including cond.Wait). A fast-path clock store pairs a sequential
	// load of inLock with the waiter's increment-before-recheck, so a
	// member can never park against a clock value it hasn't seen — the
	// classic store/load handshake that makes skipping the broadcast
	// safe.
	inLock atomic.Int32

	// Dense cluster-local edge ids. denseOf is read-only after
	// construction, so members may consult it without the lock.
	denseOf map[int32]int32
	edges   []coordEdge
	pub     []time.Duration // dense id -> satisfaction time, unpubbed if not yet
	waiters []*crossWaiter  // dense id -> parked thread, nil if none

	// Per-member inbound summary: distinct source members (ascending)
	// and, aligned with them, the count of still-unpublished inbound
	// edges per source. dstsOf inverts srcsOf: the members whose advance
	// gate reads m's clock, the wake set of m's clock advances.
	srcsOf [][]int32
	dstsOf [][]int32
	unpub  [][]atomic.Int32

	// deliver queues flushed publications for each member's mirror;
	// inj the pending wakes per member, sorted by (at, edge); injN
	// mirrors len(inj[m]) for lock-free emptiness checks.
	deliver [][]delivery
	inj     [][]injection
	injN    []atomic.Int32

	// dead aborts the cluster (peer failure or cross deadlock);
	// deadlocked distinguishes the latter for error reporting.
	dead       atomic.Bool
	deadlocked bool

	// Wait profiling. edgeID maps each dense edge back to its index in
	// the plan's Cross list; waitNs accumulates, per dense edge, the
	// virtual time its destination action waited (written under mu in
	// await's post-park section — a pure function of the virtual
	// execution, identical across hosts and GOMAXPROCS). flushBatches /
	// flushMax count non-empty epoch flushes. blockedNs records host
	// wall time each member's pacer spent parked, attributed to the
	// inbound source whose clock gated the advance (aligned with
	// srcsOf; slot len(srcsOf[m]) collects unattributed waits) — host
	// timing feeds human reports only, never the profile.
	edgeID       []int32
	waitNs       []int64
	flushBatches int64
	flushMax     int
	blockedNs    [][]int64
}

func newClusterCoord(plan *shard.Plan, cluster []int32) *clusterCoord {
	n := len(cluster)
	c := &clusterCoord{
		clock:     make([]atomic.Int64, n),
		state:     make([]atomic.Int32, n),
		target:    make([]time.Duration, n),
		granted:   make([]bool, n),
		parked:    make([]int, n),
		denseOf:   make(map[int32]int32),
		srcsOf:    make([][]int32, n),
		dstsOf:    make([][]int32, n),
		unpub:     make([][]atomic.Int32, n),
		deliver:   make([][]delivery, n),
		inj:       make([][]injection, n),
		injN:      make([]atomic.Int32, n),
		blockedNs: make([][]int64, n),
	}
	c.conds = make([]*sync.Cond, n)
	for m := range c.conds {
		c.conds[m] = sync.NewCond(&c.mu)
	}
	memberOf := make(map[int32]int32, n)
	for m, comp := range cluster {
		memberOf[comp] = int32(m)
	}
	// First pass: the distinct sources of each member, ascending.
	seen := make([]map[int32]bool, n)
	for _, ce := range plan.Cross {
		dst, ok := memberOf[ce.To]
		if !ok {
			continue
		}
		src := memberOf[ce.From]
		if seen[dst] == nil {
			seen[dst] = make(map[int32]bool)
		}
		if !seen[dst][src] {
			seen[dst][src] = true
			c.srcsOf[dst] = append(c.srcsOf[dst], src)
		}
	}
	slotOf := make([]map[int32]int32, n)
	for m := 0; m < n; m++ {
		sort.Slice(c.srcsOf[m], func(i, j int) bool { return c.srcsOf[m][i] < c.srcsOf[m][j] })
		c.unpub[m] = make([]atomic.Int32, len(c.srcsOf[m]))
		c.blockedNs[m] = make([]int64, len(c.srcsOf[m])+1)
		slotOf[m] = make(map[int32]int32, len(c.srcsOf[m]))
		for k, src := range c.srcsOf[m] {
			slotOf[m][src] = int32(k)
			c.dstsOf[src] = append(c.dstsOf[src], int32(m))
		}
	}
	// Second pass: dense ids in plan order (ascending edge id).
	for ci, ce := range plan.Cross {
		dst, ok := memberOf[ce.To]
		if !ok {
			continue
		}
		src := memberOf[ce.From]
		slot := slotOf[dst][src]
		c.denseOf[ce.Edge] = int32(len(c.edges))
		c.edges = append(c.edges, coordEdge{src: src, dst: dst, slot: slot})
		c.edgeID = append(c.edgeID, int32(ci))
		c.pub = append(c.pub, unpubbed)
		c.waiters = append(c.waiters, nil)
		c.unpub[dst][slot].Add(1)
	}
	c.waitNs = make([]int64, len(c.edges))
	return c
}

// advance implements the pacer gate for member m (called in m's kernel
// context). next is the kernel's earliest pending instant, or
// sim.PacerIdle when only an injected wake can make progress. pending
// is the member's buffered publications — the epoch's outbound
// exchange — and mirror its lock-free inbound view, refreshed here.
func (c *clusterCoord) advance(k *sim.Kernel, m int, next time.Duration, pending []pubRec, mirror []time.Duration) bool {
	// Lock-free fast path: nothing to publish, nothing queued for this
	// member, and every gating source clock already strictly past the
	// target. This is the overwhelmingly common case — a member's pacer
	// fires on every event batch, while publications and cross-edge
	// stalls happen only at slice boundaries — so the amortized cost of
	// coordination is a few atomic loads per batch instead of a mutex
	// handoff. Order matters, in two pairs (all loads and stores here
	// are seq-cst): source clocks are read before injN, so if the clock
	// read observes a source's advance, the injN read observes every
	// injection that advance's flush queued (flushes precede the clock
	// store); and unpublished counts are read (in allowedFast) before
	// injN, pairing with flushLocked's queue-injection-then-decrement
	// order, so a zeroed count that bypasses the source-clock gate
	// implies any waiter injection from that final publication is
	// already visible.
	if len(pending) == 0 && next != sim.PacerIdle && !c.dead.Load() &&
		c.allowedFast(m, next) && c.injN[m].Load() == 0 {
		if int64(next) > c.clock[m].Load() {
			c.clock[m].Store(int64(next))
			// A member parks only inside the locked section, after
			// bumping inLock and re-reading the clocks; seeing inLock==0
			// here therefore proves no peer can have missed this store.
			if c.inLock.Load() > 0 {
				c.mu.Lock()
				c.wakeDepsLocked(m)
				c.mu.Unlock()
			}
		}
		return false
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.inLock.Add(1)
	defer c.inLock.Add(-1)
	c.flushLocked(pending)
	injected := false
	for {
		if dl := c.deliver[m]; len(dl) > 0 {
			for _, d := range dl {
				mirror[d.dense] = d.v
			}
			c.deliver[m] = dl[:0]
		}
		if c.dead.Load() {
			k.Stop()
			return true
		}
		target := infDur
		if next != sim.PacerIdle {
			target = next
		}
		if lst := c.inj[m]; len(lst) > 0 && lst[0].at < target {
			target = lst[0].at
		}
		if target == infDur {
			if c.parked[m] == 0 {
				// Nothing parked on a barrier and no own events: a
				// genuine local deadlock; let the kernel report it.
				return false
			}
		} else if c.allowed(m, target) {
			for len(c.inj[m]) > 0 && c.inj[m][0].at <= target {
				in := c.inj[m][0]
				c.inj[m] = c.inj[m][1:]
				c.injN[m].Add(-1)
				w := in.w
				k.At(in.at, func() {
					w.fired = true
					k.Unpark(w.th)
				})
				injected = true
			}
			c.granted[m] = false
			if int64(target) > c.clock[m].Load() {
				c.clock[m].Store(int64(target))
				c.wakeDepsLocked(m)
			}
			if next == sim.PacerIdle {
				return true
			}
			return injected || target < next
		}
		c.state[m].Store(memberBlocked)
		c.target[m] = target
		c.checkStall()
		// checkStall may have granted this very member (or declared the
		// cluster dead): its broadcast fired before we could Wait, so
		// re-evaluate instead of sleeping through our own wake-up.
		if !c.granted[m] && !c.dead.Load() {
			// Attribute the stall to the inbound source whose clock gated
			// the advance (the first failing gate, ascending source order);
			// waits with no finite target fall in the overflow slot.
			gate := len(c.srcsOf[m])
			if target != infDur {
				if g := c.gatingSlot(m, target); g >= 0 {
					gate = g
				}
			}
			t0 := time.Now()
			c.conds[m].Wait()
			c.blockedNs[m][gate] += time.Since(t0).Nanoseconds()
		}
		c.state[m].Store(memberRunning)
	}
}

// gatingSlot returns the srcsOf slot of the first source blocking
// member m's advance to target, or -1 when no source gates it. Called
// with the lock held; reporting only.
func (c *clusterCoord) gatingSlot(m int, target time.Duration) int {
	for k, src := range c.srcsOf[m] {
		if c.unpub[m][k].Load() == 0 {
			continue
		}
		if c.state[src].Load() == memberDone {
			continue
		}
		if c.clock[src].Load() <= int64(target) {
			return k
		}
	}
	return -1
}

// wakeDepsLocked signals every blocked member whose advance gate reads
// m's state — the only members an advance, publication, or completion
// of m can re-qualify. Called with the lock held.
func (c *clusterCoord) wakeDepsLocked(m int) {
	for _, d := range c.dstsOf[m] {
		if c.state[d].Load() == memberBlocked {
			c.conds[d].Signal()
		}
	}
}

// wakeAllLocked wakes the whole cluster (abort and deadlock paths).
func (c *clusterCoord) wakeAllLocked() {
	for _, cv := range c.conds {
		cv.Signal()
	}
}

// allowedFast is the advance gate evaluated lock-free: like allowed,
// but reading the shared counters atomically and never consulting the
// one-shot grant flag (a member outside the locked section cannot hold
// a grant — grants go to blocked members and are consumed on wake).
func (c *clusterCoord) allowedFast(m int, target time.Duration) bool {
	for k, src := range c.srcsOf[m] {
		if c.unpub[m][k].Load() == 0 {
			continue
		}
		if c.state[src].Load() == memberDone {
			continue
		}
		if c.clock[src].Load() <= int64(target) {
			return false
		}
	}
	return true
}

// flushLocked applies a member's buffered publications: the epoch
// exchange. Called with the lock held.
func (c *clusterCoord) flushLocked(pending []pubRec) {
	if len(pending) == 0 {
		return
	}
	c.flushBatches++
	if len(pending) > c.flushMax {
		c.flushMax = len(pending)
	}
	for _, p := range pending {
		dense := c.denseOf[p.edge]
		if c.pub[dense] != unpubbed {
			continue // an edge publishes exactly once
		}
		c.pub[dense] = p.v
		e := c.edges[dense]
		c.deliver[e.dst] = append(c.deliver[e.dst], delivery{dense: dense, v: p.v})
		if w := c.waiters[dense]; w != nil {
			c.waiters[dense] = nil
			at := p.v
			if w.tPark > at {
				at = w.tPark
			}
			c.addInj(int(w.m), at, p.edge, w)
		}
		// The unpublished count drops only after the waiter's injection
		// is queued (injN bumped): allowedFast skips the source-clock
		// gate on a zeroed count, so a fast-path advance that observes
		// the decrement must — both atomics are seq-cst, and the fast
		// path loads unpub before injN — also observe the injection and
		// fall into the locked slow path, instead of advancing its clock
		// past a wake in its virtual past.
		c.unpub[e.dst][e.slot].Add(-1)
		// The publication can re-qualify only its destination: the
		// unpublished count dropped (gate) and an injection may now
		// bound its target.
		if c.state[e.dst].Load() == memberBlocked {
			c.conds[e.dst].Signal()
		}
	}
}

// allowed reports whether member m may advance its clock to target:
// every source m still has unpublished inbound edges from must have a
// clock strictly past target. O(distinct sources), independent of the
// cross-edge count.
func (c *clusterCoord) allowed(m int, target time.Duration) bool {
	if c.granted[m] {
		return true
	}
	for k, src := range c.srcsOf[m] {
		if c.unpub[m][k].Load() == 0 {
			continue
		}
		if c.state[src].Load() == memberDone {
			// A finished source will never publish; the parked waiter is
			// a deadlock, which idle detection reports.
			continue
		}
		if c.clock[src].Load() <= int64(target) {
			return false
		}
	}
	return true
}

// checkStall runs whenever a member blocks or finishes, with the lock
// held. If the whole cluster is quiescent it grants the smallest
// (target, member) advance, or — when no member has a finite target —
// declares a cross-shard deadlock. Quiescent states are functions of
// the virtual execution alone, so the grant sequence is deterministic.
func (c *clusterCoord) checkStall() {
	best := -1
	var bestT time.Duration
	for m := range c.state {
		switch c.state[m].Load() {
		case memberRunning:
			return
		case memberBlocked:
			// The recorded target may be stale: a publish can queue an
			// injection for a member that has not re-evaluated yet. Fold
			// pending injections in, so the effective target is the same
			// whether or not the member has woken — quiescent decisions
			// must depend only on the virtual execution.
			t := c.target[m]
			if lst := c.inj[m]; len(lst) > 0 && lst[0].at < t {
				t = lst[0].at
			}
			if t < infDur && (best < 0 || t < bestT) {
				best, bestT = m, t
			}
		}
	}
	allDone := true
	for m := range c.state {
		if c.state[m].Load() != memberDone {
			allDone = false
			break
		}
	}
	if allDone {
		return
	}
	if best < 0 {
		c.dead.Store(true)
		c.deadlocked = true
		c.wakeAllLocked()
		return
	}
	if !c.granted[best] {
		c.granted[best] = true
		c.conds[best].Signal()
	}
}

// addInj inserts a pending wake, keeping inj[m] sorted by (at, edge).
func (c *clusterCoord) addInj(m int, at time.Duration, edge int32, w *crossWaiter) {
	lst := c.inj[m]
	i := len(lst)
	for i > 0 && (lst[i-1].at > at || (lst[i-1].at == at && lst[i-1].edge > edge)) {
		i--
	}
	lst = append(lst, injection{})
	copy(lst[i+1:], lst[i:])
	lst[i] = injection{at: at, edge: edge, w: w}
	c.inj[m] = lst
	c.injN[m].Add(1)
}

// await blocks the calling thread until edge is published, returning
// the published satisfaction time and the virtual time the thread
// waited. Called in member m's kernel context. mirror is the member's
// lock-free publication view: an edge already delivered there with a
// time at or before now needs no lock at all — the conservative bound
// guarantees the publication was flushed before m's clock could pass
// it, so the mirror entry is final.
//
// The waited time is max(0, v-now): the thread resumes at max(v, tPark)
// whether it took the injection path or parked for a flush, so the
// measurement is path-independent — a pure function of the virtual
// execution, which is what lets profiles built from it stay
// deterministic across hosts and GOMAXPROCS.
func (c *clusterCoord) await(t *sim.Thread, k *sim.Kernel, m int, edge int32, mirror []time.Duration, reason func() string) (time.Duration, time.Duration) {
	dense := c.denseOf[edge]
	now := k.Now()
	if v := mirror[dense]; v != unpubbed && v <= now {
		return v, 0
	}
	c.mu.Lock()
	if v := c.pub[dense]; v != unpubbed && v <= now {
		// Satisfied in this member's past but not yet drained into the
		// mirror (the delivery is queued for m's next advance).
		c.mu.Unlock()
		return v, 0
	}
	w := &crossWaiter{th: t, m: m, tPark: now}
	if v := c.pub[dense]; v != unpubbed {
		c.addInj(m, v, edge, w) // v > now: wake exactly at the edge time
	} else {
		c.waiters[dense] = w
	}
	c.parked[m]++
	c.mu.Unlock()
	for !w.fired {
		t.ParkFn(reason)
	}
	c.mu.Lock()
	c.parked[m]--
	v := c.pub[dense]
	var waited time.Duration
	if v > now {
		waited = v - now
		c.waitNs[dense] += int64(waited)
	}
	c.mu.Unlock()
	return v, waited
}

// memberDone flushes member m's final publication buffer, marks it
// finished (its clock no longer constrains anyone), and re-checks the
// cluster for quiescence.
func (c *clusterCoord) memberDone(m int, pending []pubRec) {
	c.mu.Lock()
	c.flushLocked(pending)
	c.state[m].Store(memberDone)
	c.clock[m].Store(int64(infDur))
	c.checkStall()
	c.wakeDepsLocked(m)
	c.mu.Unlock()
}

// abort kills the cluster after a member failure; peer pacers stop
// their kernels at the next advance.
func (c *clusterCoord) abort() {
	c.mu.Lock()
	if !c.dead.Load() {
		c.dead.Store(true)
		c.wakeAllLocked()
	}
	c.mu.Unlock()
}

// shardPacer adapts a cluster coordinator to one kernel's Pacer hook.
// Each advance is one epoch boundary: the member's buffered outbound
// publications are swapped out and handed to the coordinator for a
// single batched exchange.
type shardPacer struct {
	c   *clusterCoord
	k   *sim.Kernel
	m   int
	sub *subState
}

func (p *shardPacer) Advance(next time.Duration) bool {
	pending := p.sub.pendingPub
	p.sub.pendingPub = pending[:0]
	return p.c.advance(p.k, p.m, next, pending, p.sub.pubLocal)
}

// compiledShard is one component's replay unit: a sub-benchmark whose
// records, actions, and touch plans are dense contiguous copies of the
// component's slice of the trace, plus the local dependency graph and
// the cross-edge wiring.
type compiledShard struct {
	comp    int32
	members []int32
	b       *Benchmark
	g       *core.Graph
	sub     *subState
	// predelay is the full-trace inter-arrival gap of each member action,
	// mapped to local indices. A sliced thread's actions live on several
	// shards, so a per-shard computePredelay over the sub-trace would see
	// gaps spanning the missing siblings; the full-trace values are the
	// serial replayer's, always.
	predelay []time.Duration
	// rec is the per-component span/sample recorder (nil without obs);
	// rs is filled once the member's kernel has run.
	rec *obs.Recorder
	rs  *replayState
}

// buildShards materializes every component's replay unit.
func buildShards(b *Benchmark, g *core.Graph, plan *shard.Plan, obsOn bool) []*compiledShard {
	n := plan.N
	nc := len(plan.Components)
	// localOf renumbers each action within its component.
	localOf := make([]int32, n)
	counters := make([]int32, nc)
	for i := 0; i < n; i++ {
		comp := plan.CompOf[i]
		localOf[i] = counters[comp]
		counters[comp]++
	}
	// One pass over the full edge list builds every component's local
	// edge list (cross edges excluded: barriers enforce them).
	edgesOf := make([][]core.Edge, nc)
	edgeGlobalOf := make([][]int32, nc)
	for ei := range g.Edges {
		e := &g.Edges[ei]
		cf := plan.CompOf[e.From]
		if cf != plan.CompOf[e.To] {
			continue
		}
		edgesOf[cf] = append(edgesOf[cf], core.Edge{
			From: int(localOf[e.From]), To: int(localOf[e.To]), Kind: e.Kind, Res: e.Res,
		})
		edgeGlobalOf[cf] = append(edgeGlobalOf[cf], int32(ei))
	}
	fullPredelay := computePredelay(b.Trace)
	shards := make([]*compiledShard, nc)
	for ci := range plan.Components {
		shards[ci] = buildOneShard(b, g, plan, int32(ci), localOf, edgesOf[ci], edgeGlobalOf[ci], obsOn)
		cs := shards[ci]
		cs.predelay = make([]time.Duration, len(cs.members))
		for li, gidx := range cs.members {
			cs.predelay[li] = fullPredelay[gidx]
		}
	}
	// Cross-edge wiring, one pass over the registered cross list.
	// Synthetic thread-adjacency edges route to the destination's
	// threadPrevIn slot (awaited before the span's wait-start sample,
	// not with the graph cross edges); each action has at most one.
	for _, ce := range plan.Cross {
		from, to := plan.EdgeEnds(g, ce.Edge)
		dst := shards[ce.To].sub
		li := localOf[to]
		if int(ce.Edge) >= len(g.Edges) {
			dst.threadPrevIn[li] = ce.Edge
		} else {
			dst.crossIn[li] = append(dst.crossIn[li], ce.Edge)
		}
		src := shards[ce.From].sub
		lo := localOf[from]
		src.crossOut[lo] = append(src.crossOut[lo], ce.Edge)
	}
	return shards
}

func buildOneShard(b *Benchmark, g *core.Graph, plan *shard.Plan, comp int32,
	localOf []int32, edges []core.Edge, edgeGlobal []int32, obsOn bool) *compiledShard {
	members := plan.Components[comp]
	m := len(members)
	// Contiguous local copies: the replay hot path walks records and
	// actions densely instead of striding through the whole trace.
	recs := make([]trace.Record, m)
	recPtrs := make([]*trace.Record, m)
	acts := make([]core.Action, m)
	for li, gidx := range members {
		recs[li] = *b.Trace.Records[gidx]
		recs[li].Seq = int64(li)
		recPtrs[li] = &recs[li]
		acts[li] = b.Analysis.Actions[gidx]
		acts[li].Rec = recPtrs[li]
	}
	var touches []actionTouches
	if b.touches != nil {
		touches = make([]actionTouches, m)
		for li, gidx := range members {
			touches[li] = b.touches[gidx]
		}
	}
	subTrace := &trace.Trace{Platform: b.Trace.Platform, Records: recPtrs}
	subB := &Benchmark{
		Platform: b.Platform,
		Modes:    b.Modes,
		Trace:    subTrace,
		Snapshot: b.Snapshot,
		Analysis: &core.Analysis{Trace: subTrace, Actions: acts},
		touches:  touches,
	}
	sub := &subState{
		comp:          comp,
		orig:          comp,
		global:        members,
		edgeGlobal:    edgeGlobal,
		full:          g,
		plan:          plan,
		crossIn:       make([][]int32, m),
		crossOut:      make([][]int32, m),
		crossWaitEdge: make([]int32, m),
	}
	if plan.Orig != nil {
		sub.orig = plan.Orig[comp]
		sub.threadPrevIn = make([]int32, m)
		for i := range sub.threadPrevIn {
			sub.threadPrevIn[i] = -1
		}
	}
	for i := range sub.crossWaitEdge {
		sub.crossWaitEdge[i] = -1
	}
	if obsOn {
		sub.crossRelAt = make([]time.Duration, m)
		sub.crossRelEdge = make([]int32, m)
		for i := range sub.crossRelEdge {
			sub.crossRelEdge[i] = -1
		}
	}
	return &compiledShard{
		comp:    comp,
		members: members,
		b:       subB,
		g:       core.NewGraph(m, edges),
		sub:     sub,
	}
}

// finishSub tears down one component's replay machinery without
// assembling a full report; the merge reads the raw state instead.
func (rs *replayState) finishSub() error {
	if rs.watchdog != nil {
		rs.watchdog.Stop()
		rs.watchdog = nil
	}
	if rs.obsDetach != nil {
		rs.obsDetach()
		rs.obsDetach = nil
	}
	if rs.stall != nil {
		return rs.stall
	}
	return nil
}

// runMember builds one component's replica system, replays the
// component on it, and leaves the raw state on cs for the merge.
func runMember(cs *compiledShard, opts Options, so ShardOptions, coord *clusterCoord, mi int) (err error) {
	if coord != nil {
		defer func() {
			if err != nil {
				coord.abort()
			}
		}()
	}
	k := sim.NewKernel()
	conf := so.Target
	var inj *fault.Injector
	if so.Fault != nil {
		inj = fault.New(*so.Fault)
		conf.Faults = inj
	} else {
		conf.Faults = nil
	}
	sys := stack.New(k, conf)
	if so.Init != nil {
		if err := so.Init(sys); err != nil {
			return fmt.Errorf("artc: shard %d init: %w", cs.comp, err)
		}
	}
	opts2 := opts
	opts2.Fault = inj
	opts2.Obs = nil
	if opts.Obs != nil {
		cs.rec = obs.NewRecorder(len(cs.members), opts.Obs.SampleCap())
		opts2.Obs = cs.rec
	}
	rs := newReplayState(sys, cs.b, opts2, cs.g)
	rs.predelay = cs.predelay
	rs.sub = cs.sub
	rs.sub.member = mi
	rs.sub.coord = coord
	if coord != nil {
		cs.sub.pubLocal = make([]time.Duration, len(coord.edges))
		for i := range cs.sub.pubLocal {
			cs.sub.pubLocal[i] = unpubbed
		}
		k.SetPacer(&shardPacer{c: coord, k: k, m: mi, sub: cs.sub})
		if cs.rec != nil && cs.sub.plan.Sliced() {
			// Cross-wait counter track, sliced replays only: unsliced
			// sharded exports must stay byte-identical to serial, which
			// has no such track. The probe reads a member-goroutine-local
			// cumulative virtual wait, so the samples are deterministic.
			sub := cs.sub
			det := cs.rec.InstallProbes(k, opts.ObsInterval, obs.Probe{
				Kind: obs.CounterCrossWait,
				Fn:   func() float64 { return float64(sub.crossWaitNs) },
			})
			prev := rs.obsDetach
			rs.obsDetach = func() {
				det()
				if prev != nil {
					prev()
				}
			}
		}
	}
	rs.spawnThreads()
	runErr := k.Run()
	if coord != nil {
		coord.memberDone(mi, cs.sub.pendingPub)
		cs.sub.pendingPub = nil
	}
	cs.rs = rs
	if ferr := rs.finishSub(); ferr != nil {
		return ferr
	}
	if runErr != nil {
		return fmt.Errorf("artc: shard %d replay stalled: %w", cs.comp, runErr)
	}
	return nil
}

// runCluster replays one cluster: a single component directly, or a
// cross-connected group under a clock-exchange coordinator.
func runCluster(shards []*compiledShard, cluster []int32, opts Options, so ShardOptions) error {
	if len(cluster) == 1 {
		return runMember(shards[cluster[0]], opts, so, nil, 0)
	}
	coord := newClusterCoord(shards[cluster[0]].sub.plan, cluster)
	errs := make([]error, len(cluster))
	var wg sync.WaitGroup
	for mi, comp := range cluster {
		wg.Add(1)
		go func(mi int, comp int32) {
			defer wg.Done()
			errs[mi] = runMember(shards[comp], opts, so, coord, mi)
		}(mi, comp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if coord.deadlocked {
		return crossStall(shards, cluster)
	}
	return nil
}

// crossStall assembles a shard-aware StallReport for a cluster whose
// members all blocked on unsatisfiable cross-shard barriers.
func crossStall(shards []*compiledShard, cluster []int32) error {
	s := &StallReport{Trigger: "cross-barrier"}
	for _, comp := range cluster {
		cs := shards[comp]
		if cs.rs == nil {
			continue
		}
		rs := cs.rs
		s.Total += len(rs.b.Trace.Records)
		s.Completed += rs.completed
		s.Errors += rs.rep.Errors
		if at := rs.sys.K.Now() - rs.start; at > s.At {
			s.At = at
		}
		part := rs.buildStall("cross-barrier")
		for _, ba := range part.Blocked {
			if len(s.Blocked) >= maxStallBlocked {
				s.Truncated++
				continue
			}
			s.Blocked = append(s.Blocked, ba)
		}
		s.Truncated += part.Truncated
	}
	return s
}

// mergedSample keys one component's error sample for the merge.
type mergedSample struct {
	at   time.Duration
	comp int32
	text string
}

// ReplaySharded partitions the benchmark's dependency graph into
// replica-isolated components (internal/shard) and replays every
// component on its own kernel/scheduler/storage stack, each advancing
// its own virtual clock; components connected by program-order edges
// synchronize through deterministic clock-exchange barriers. Per-shard
// reports, spans, and counters are merged into one Report. For a trace
// the partitioner keeps whole (one component), the merged output is
// byte-identical to Replay on an identically configured system; the
// output never depends on Shards or GOMAXPROCS.
func ReplaySharded(b *Benchmark, opts Options, so ShardOptions) (*Report, *ShardStats, error) {
	if opts.Fault != nil {
		return nil, nil, fmt.Errorf("artc: sharded replay takes a fault plan in ShardOptions.Fault, not an injector in Options.Fault")
	}
	if opts.MaxErrorSamples == 0 {
		opts.MaxErrorSamples = 10
	}
	g, err := methodGraph(b, &opts)
	if err != nil {
		return nil, nil, err
	}
	plan := shard.Partition(b.Analysis, g)
	if so.SliceActions > 0 {
		plan = shard.Slice(b.Analysis, g, plan, shard.SliceOptions{
			MaxActions: so.SliceActions, MaxSlices: so.SliceMax,
			AllowDeviceSync: so.SliceDeviceSync,
			Profile:         so.SliceProfile,
		})
	}
	clusters := plan.Clusters()
	workers := so.Shards
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pst := plan.Stats()
	stats := &ShardStats{
		Components:      pst.Components,
		Clusters:        len(clusters),
		CrossEdges:      pst.CrossEdges,
		Largest:         pst.Largest,
		Shards:          workers,
		Sliced:          pst.Sliced,
		Synthetic:       pst.Synthetic,
		Profiled:        so.SliceProfile != nil && plan.Sliced(),
		PlanFingerprint: plan.Fingerprint(),
	}
	shards := buildShards(b, g, plan, opts.Obs != nil)
	if err := par.ForEachN(len(clusters), workers, func(ci int) error {
		return runCluster(shards, clusters[ci], opts, so)
	}); err != nil {
		return nil, stats, err
	}
	rep, err := mergeReports(b, g, shards, opts)
	if err != nil {
		return nil, stats, err
	}
	rep.Coord = collectCoordStats(plan, shards)
	if plan.Sliced() && rep.Coord != nil {
		stats.Profile = shard.BuildProfile(b.Analysis, g, plan,
			rep.Coord.EdgeWaitNs, rep.Coord.EdgePublished, rep.IssueAt, rep.DoneAt)
	}
	return rep, stats, nil
}

// collectCoordStats folds every cluster coordinator's wait accounting
// into plan-cross-edge-indexed totals. Runs after all members have
// finished, so the coordinators are quiescent and lock-free to read.
// Returns nil when the plan has no cross edges.
func collectCoordStats(plan *shard.Plan, shards []*compiledShard) *CoordStats {
	if len(plan.Cross) == 0 {
		return nil
	}
	cst := &CoordStats{
		EdgeWaitNs:    make([]int64, len(plan.Cross)),
		EdgePublished: make([]int64, len(plan.Cross)),
	}
	seen := make(map[*clusterCoord]bool)
	for _, cs := range shards {
		c := cs.sub.coord
		if c == nil || seen[c] {
			continue
		}
		seen[c] = true
		for dense := range c.edges {
			ci := c.edgeID[dense]
			cst.EdgeWaitNs[ci] += c.waitNs[dense]
			cst.CrossWaitNs += c.waitNs[dense]
			if c.pub[dense] != unpubbed {
				cst.EdgePublished[ci]++
				cst.Published++
			}
		}
		cst.FlushBatches += c.flushBatches
		if c.flushMax > cst.FlushMaxBatch {
			cst.FlushMaxBatch = c.flushMax
		}
		for _, per := range c.blockedNs {
			for _, ns := range per {
				cst.BlockedNs += ns
			}
		}
	}
	return cst
}

// mergeReports folds the per-component raw states into one Report and,
// when observability is on, replays the merged span and sample streams
// into the caller's recorder. Per-component streams are interleaved by
// virtual time with component index as the tiebreak, preserving each
// component's internal order — for a single component this reproduces
// the serial streams exactly.
func mergeReports(b *Benchmark, g *core.Graph, shards []*compiledShard, opts Options) (*Report, error) {
	n := len(b.Trace.Records)
	rep := &Report{
		Method:    opts.Method,
		Actions:   n,
		IssueAt:   make([]time.Duration, n),
		DoneAt:    make([]time.Duration, n),
		CallTime:  make(map[string]time.Duration),
		CallCount: make(map[string]int64),
		PerThread: make(map[int]time.Duration),
		graph:     g,
	}
	var samples []mergedSample
	var fstats *fault.Stats
	for _, cs := range shards {
		rs := cs.rs
		if rs == nil {
			return nil, fmt.Errorf("artc: shard %d never ran", cs.comp)
		}
		for li, gidx := range cs.members {
			rep.IssueAt[gidx] = rs.issueAt[li]
			rep.DoneAt[gidx] = rs.doneAt[li]
		}
		rep.Errors += rs.rep.Errors
		rep.Emulated += rs.rep.Emulated
		rep.ThreadTime += rs.rep.ThreadTime
		for call, d := range rs.rep.CallTime {
			rep.CallTime[call] += d
		}
		for call, cnt := range rs.rep.CallCount {
			rep.CallCount[call] += cnt
		}
		for tid, d := range rs.rep.PerThread {
			rep.PerThread[tid] += d
		}
		for si, text := range rs.rep.ErrorSamples {
			samples = append(samples, mergedSample{at: rs.sampleAt[si], comp: cs.comp, text: text})
		}
		if rs.inj != nil {
			st := rs.inj.Stats()
			if fstats == nil {
				fstats = &fault.Stats{}
			}
			fstats.SyscallInjected += st.SyscallInjected
			fstats.Retries += st.Retries
			fstats.Recovered += st.Recovered
			fstats.Skipped += st.Skipped
			fstats.StorageErrors += st.StorageErrors
			fstats.StorageSlow += st.StorageSlow
		}
	}
	var last time.Duration
	for _, d := range rep.DoneAt {
		if d > last {
			last = d
		}
	}
	rep.Elapsed = last
	// Error samples keep the serial retention rule generalized: the
	// first MaxErrorSamples in merged completion order.
	sort.SliceStable(samples, func(i, j int) bool {
		if samples[i].at != samples[j].at {
			return samples[i].at < samples[j].at
		}
		return samples[i].comp < samples[j].comp
	})
	if max := opts.MaxErrorSamples; max >= 0 && len(samples) > max {
		samples = samples[:max]
	}
	for _, s := range samples {
		rep.ErrorSamples = append(rep.ErrorSamples, s.text)
	}
	rep.Graph = g.Stats(b.Analysis)
	rep.FaultStats = fstats

	if opts.Obs != nil {
		var spans []obs.Span
		for _, cs := range shards {
			spans = append(spans, cs.rec.Spans()...)
		}
		sliced := len(shards) > 0 && shards[0].sub.plan.Sliced()
		if sliced {
			// Slices of one original component share a Shard value, so
			// the unsliced (Done, Shard) interleave cannot order their
			// same-instant spans; (Done, Action) is the canonical order
			// WriteChrome also applies to the serial stream.
			sort.Slice(spans, func(i, j int) bool {
				if spans[i].Done != spans[j].Done {
					return spans[i].Done < spans[j].Done
				}
				return spans[i].Action < spans[j].Action
			})
		} else {
			sort.SliceStable(spans, func(i, j int) bool {
				if spans[i].Done != spans[j].Done {
					return spans[i].Done < spans[j].Done
				}
				return spans[i].Shard < spans[j].Shard
			})
		}
		for _, sp := range spans {
			opts.Obs.Record(sp)
		}
		type keyedSample struct {
			s    obs.Sample
			comp int32
		}
		var smps []keyedSample
		for _, cs := range shards {
			for _, s := range cs.rec.Samples() {
				smps = append(smps, keyedSample{s: s, comp: cs.comp})
			}
		}
		sort.SliceStable(smps, func(i, j int) bool {
			if smps[i].s.At != smps[j].s.At {
				return smps[i].s.At < smps[j].s.At
			}
			return smps[i].comp < smps[j].comp
		})
		for _, ks := range smps {
			opts.Obs.Sample(ks.s.At, ks.s.Kind, ks.s.Value)
		}
	}

	if opts.SelfCheck {
		// The global validation doubles as the barrier-correctness
		// assertion: merged issue/done times must satisfy every edge of
		// the full graph, cross-component ones included.
		if err := g.ValidateOrder(rep.IssueAt, rep.DoneAt); err != nil {
			return nil, fmt.Errorf("artc: sharded self-check failed: %w", err)
		}
		if len(shards) > 0 {
			for i, te := range shards[0].sub.plan.ThreadCross {
				if rep.IssueAt[te.To] < rep.DoneAt[te.From] {
					return nil, fmt.Errorf("artc: sharded self-check failed: synthetic edge %d: action %d issued at %v before predecessor %d done at %v",
						i, te.To, rep.IssueAt[te.To], te.From, rep.DoneAt[te.From])
				}
			}
		}
	}
	return rep, nil
}
