package artc

import (
	"runtime"
	"testing"

	"rootreplay/internal/core"
	"rootreplay/internal/obs"
	"rootreplay/internal/shard"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
	"rootreplay/internal/workload"
)

// genHotPipeline synthesizes the skewed slicing corpus: one stage's
// private writes are hotPages wide, so its atom carries several times
// the virtual cost of its peers while every stage's action count stays
// identical — the shape where the static cut and the profiled cut must
// disagree.
func genHotPipeline(t *testing.T, stages, ops, handoff, hotStage, hotPages int) (*trace.Trace, *snapshot.Snapshot) {
	t.Helper()
	tr, snap, err := workload.SynthPipeline(workload.Pipeline{
		Stages: stages, Ops: ops, Handoff: handoff, Seed: 7,
		HotStage: hotStage, HotPages: hotPages,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr, snap
}

// slicedProfiledOn replays through ReplaySharded with slicing enabled
// and a profile steering the cut.
func slicedProfiledOn(t *testing.T, tr *trace.Trace, snap *snapshot.Snapshot, opts Options,
	shards, sliceActions int, prof *shard.SliceProfile) (*Report, *ShardStats) {
	t.Helper()
	b, err := Compile(tr, snap, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	opts.SelfCheck = true
	so := ShardOptions{
		Shards: shards,
		Target: defaultConf(),
		Init: func(sys *stack.System) error {
			if err := Init(sys, b, opts.Prefix); err != nil {
				return err
			}
			sys.WarmAll()
			return nil
		},
		SliceActions: sliceActions,
		SliceProfile: prof,
	}
	rep, st, err := ReplaySharded(b, opts, so)
	if err != nil {
		t.Fatal(err)
	}
	return rep, st
}

// The profiled re-cut keeps the tentpole contract: on a warmed,
// fsync-free corpus the profile-guided sliced replay is byte-identical
// to serial across shard counts and host parallelism levels, even
// though its plan differs from the static cut (CI reruns this under
// -race).
func TestSlicedProfiledByteIdenticalToSerial(t *testing.T) {
	tr, snap := genHotPipeline(t, 4, 200, 8, 2, 32)
	serialRec := obs.NewRecorder(0, 0)
	serial := serialWarm(t, tr, snap, nil, Options{Obs: serialRec})
	serialJS := reportJSON(t, serial)
	serialSpans := canonSpans(serialRec.Spans())
	n := len(tr.Records)

	// Profiling pass: one static-cut sliced replay emits the profile.
	_, st := slicedOn(t, tr, snap, Options{}, 2, n/2+1, nil)
	if st.Profile == nil {
		t.Fatal("static sliced replay produced no profile")
	}
	if st.Profiled {
		t.Fatalf("static run reports Profiled=true: %+v", st)
	}
	staticFP := st.PlanFingerprint

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		for _, shards := range []int{1, 2, 4, 8} {
			rec := obs.NewRecorder(0, 0)
			rep, pst := slicedProfiledOn(t, tr, snap, Options{Obs: rec}, shards, n/2+1, st.Profile)
			if !pst.Profiled || pst.Components < 2 {
				t.Fatalf("procs=%d shards=%d: profiled run did not slice: %+v", procs, shards, pst)
			}
			if pst.PlanFingerprint == staticFP {
				t.Fatalf("procs=%d shards=%d: profiled plan fingerprint equals static (%016x); the profile is not steering the cut",
					procs, shards, staticFP)
			}
			if got := reportJSON(t, rep); got != serialJS {
				t.Errorf("procs=%d shards=%d: profiled sliced report differs from serial:\n got %s\nwant %s",
					procs, shards, got, serialJS)
			}
			spans := canonSpans(rec.Spans())
			if len(spans) != len(serialSpans) {
				t.Fatalf("procs=%d shards=%d: %d spans, serial %d", procs, shards, len(spans), len(serialSpans))
			}
			for i := range spans {
				if spans[i] != serialSpans[i] {
					t.Fatalf("procs=%d shards=%d: span %d differs:\n got %+v\nwant %+v",
						procs, shards, i, spans[i], serialSpans[i])
				}
			}
		}
	}
}

// A profile from one cut must re-cut deterministically through the full
// ReplaySharded path: same profile in, same fingerprint and
// byte-identical next-generation profile out.
func TestSlicedProfiledFixpointDeterministic(t *testing.T) {
	tr, snap := genHotPipeline(t, 4, 150, 8, 3, 16)
	n := len(tr.Records)
	_, st := slicedOn(t, tr, snap, Options{}, 2, n/2+1, nil)
	if st.Profile == nil {
		t.Fatal("no profile from static run")
	}
	_, p1 := slicedProfiledOn(t, tr, snap, Options{}, 2, n/2+1, st.Profile)
	_, p2 := slicedProfiledOn(t, tr, snap, Options{}, 4, n/2+1, st.Profile)
	if p1.PlanFingerprint != p2.PlanFingerprint {
		t.Fatalf("profiled fingerprint depends on shard workers: %016x vs %016x",
			p1.PlanFingerprint, p2.PlanFingerprint)
	}
	if p1.Profile == nil || p2.Profile == nil {
		t.Fatal("profiled runs emitted no next-generation profile")
	}
	e1, e2 := p1.Profile.Encode(), p2.Profile.Encode()
	if string(e1) != string(e2) {
		t.Fatal("next-generation profiles differ across shard workers")
	}
}
