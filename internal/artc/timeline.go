package artc

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Timeline renders the replay as ASCII art in the style of Figure 9: one
// row per traced thread, '#' where the thread was inside a system call
// and '.' where it was waiting (for dependencies or I/O slots), sampled
// into width columns across the replay's elapsed time.
func (r *Report) Timeline(b *Benchmark, width int) string {
	if width < 10 {
		width = 10
	}
	if r.Elapsed <= 0 || len(b.Trace.Records) != r.Actions {
		return ""
	}
	byThread := make(map[int][]int)
	var tids []int
	for i, rec := range b.Trace.Records {
		if _, ok := byThread[rec.TID]; !ok {
			tids = append(tids, rec.TID)
		}
		byThread[rec.TID] = append(byThread[rec.TID], i)
	}
	sort.Ints(tids)
	colDur := r.Elapsed / time.Duration(width)
	if colDur <= 0 {
		colDur = 1
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "replay timeline (%v across %d cols, '#'=in syscall)\n", r.Elapsed, width)
	for _, tid := range tids {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, idx := range byThread[tid] {
			from := int(r.IssueAt[idx] / colDur)
			to := int(r.DoneAt[idx] / colDur)
			if from >= width {
				from = width - 1
			}
			if to >= width {
				to = width - 1
			}
			for c := from; c <= to; c++ {
				row[c] = '#'
			}
		}
		fmt.Fprintf(&sb, "T%-4d %s\n", tid, row)
	}
	return sb.String()
}
