package artc

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"rootreplay/internal/core"
	"rootreplay/internal/sim"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
)

// randomProgram runs a randomized multithreaded I/O program on sys:
// threads share files, descriptors (via a handoff cell), and path names,
// with coordination so the trace embeds real cross-thread dependencies.
func randomProgram(sys *stack.System, threads, opsPerThread int, seed int64) {
	k := sys.K
	// Shared descriptor handoff cell: a writer occasionally publishes an
	// open fd; the next thread to find it reads and closes it.
	var sharedFD int64 = -1
	var fdOwnerDone bool
	fdCond := sim.NewCond(k)

	for w := 0; w < threads; w++ {
		w := w
		rng := rand.New(rand.NewSource(seed + int64(w)*7919))
		k.Spawn(fmt.Sprintf("rp-%d", w), func(t *sim.Thread) {
			myFile := fmt.Sprintf("/data/own%d", w)
			for i := 0; i < opsPerThread; i++ {
				switch rng.Intn(10) {
				case 0: // publish an open descriptor for another thread
					if sharedFD == -1 {
						fd, err := sys.Open(t, "/data/shared", trace.ORdonly, 0)
						if err == 0 {
							sharedFD = fd
							fdCond.Broadcast()
						}
					}
				case 1: // consume the published descriptor
					if sharedFD != -1 {
						fd := sharedFD
						sharedFD = -1
						sys.Pread(t, fd, 4096, int64(rng.Intn(200))*4096)
						sys.Close(t, fd)
					}
				case 2: // atomic-save to a CONTENDED path name
					tmp := fmt.Sprintf("/data/save%d.tmp", w)
					fd, err := sys.Open(t, tmp, trace.OWronly|trace.OCreat|trace.OTrunc, 0o644)
					if err == 0 {
						sys.Write(t, fd, 4096)
						sys.Close(t, fd)
						sys.Rename(t, tmp, "/data/current")
					}
				case 3:
					sys.Stat(t, "/data/current")
				case 4:
					sys.Stat(t, fmt.Sprintf("/data/missing%d", rng.Intn(3)))
				case 5:
					fd, err := sys.Open(t, myFile, trace.ORdwr, 0)
					if err == 0 {
						sys.Pwrite(t, fd, 4096, int64(rng.Intn(64))*4096)
						if rng.Intn(3) == 0 {
							sys.Fsync(t, fd)
						}
						sys.Close(t, fd)
					}
				case 6:
					p := fmt.Sprintf("/data/tmp-%d-%d", w, i)
					fd, err := sys.Open(t, p, trace.OWronly|trace.OCreat|trace.OExcl, 0o644)
					if err == 0 {
						sys.Write(t, fd, 1024)
						sys.Close(t, fd)
						sys.Unlink(t, p)
					}
				case 7:
					sys.Getxattr(t, "/data/shared", "user.tag", true)
					sys.Setxattr(t, myFile, "user.mine", 8, true)
				case 8:
					fd, err := sys.Open(t, "/data", trace.ORdonly|trace.ODir, 0)
					if err == 0 {
						sys.Getdents(t, fd, 32)
						sys.Close(t, fd)
					}
				default:
					fd, err := sys.Open(t, "/data/shared", trace.ORdonly, 0)
					if err == 0 {
						sys.Read(t, fd, 8192)
						sys.Close(t, fd)
					}
				}
			}
			fdOwnerDone = true
			_ = fdOwnerDone
		})
	}
}

// TestQuickRandomProgramsReplayClean is the end-to-end metamorphic
// property: for any seed, a trace of a random multithreaded program
// replays with zero semantic errors under every constrained method, and
// the executed order always satisfies the dependency graph (SelfCheck).
func TestQuickRandomProgramsReplayClean(t *testing.T) {
	f := func(seed int64, nt, ops uint8) bool {
		threads := int(nt%4) + 2
		opsPer := int(ops%12) + 4
		conf := defaultConf()
		k := sim.NewKernel()
		sys := stack.New(k, conf)
		if err := sys.SetupCreate("/data/shared", 1<<20); err != nil {
			return false
		}
		for w := 0; w < threads; w++ {
			if err := sys.SetupCreate(fmt.Sprintf("/data/own%d", w), 256<<10); err != nil {
				return false
			}
		}
		if err := sys.SetupXattr("/data/shared", "user.tag", 8); err != nil {
			return false
		}
		snap := snapshot.Capture(sys)
		tr := &trace.Trace{Platform: string(conf.Platform)}
		sys.SetTracer(func(r *trace.Record) { tr.Records = append(tr.Records, r) })
		randomProgram(sys, threads, opsPer, seed)
		if err := k.Run(); err != nil {
			t.Logf("seed %d: workload: %v", seed, err)
			return false
		}
		tr.Renumber()
		b, err := Compile(tr, snap, core.DefaultModes())
		if err != nil {
			t.Logf("seed %d: compile: %v", seed, err)
			return false
		}
		for _, m := range []Method{MethodARTC, MethodSingle, MethodTemporal} {
			k2 := sim.NewKernel()
			sys2 := stack.New(k2, conf)
			if err := Init(sys2, b, ""); err != nil {
				t.Logf("seed %d: init: %v", seed, err)
				return false
			}
			rep, err := Replay(sys2, b, Options{Method: m, SelfCheck: true})
			if err != nil {
				t.Logf("seed %d: %s: %v", seed, m, err)
				return false
			}
			if rep.Errors != 0 {
				t.Logf("seed %d: %s: %d errors: %v", seed, m, rep.Errors, rep.ErrorSamples)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
