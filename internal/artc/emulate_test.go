package artc

import (
	"testing"

	"rootreplay/internal/sim"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
)

// osxTrace traces a workload exercising every OS X-specific call.
func osxTrace(t *testing.T) (*trace.Trace, *Benchmark) {
	t.Helper()
	osxConf := stack.Config{
		Name: "osx", Platform: stack.OSX, Profile: stack.HFSPlus,
		Device: stack.DeviceHDD, Scheduler: stack.SchedNoop,
	}
	tr, snap := traceWorkload(t, osxConf,
		func(sys *stack.System) error {
			for _, p := range []string{"/L/a", "/L/b", "/L/c"} {
				if err := sys.SetupCreate(p, 8192); err != nil {
					return err
				}
			}
			return nil
		},
		func(sys *stack.System, th *sim.Thread) {
			sys.Getattrlist(th, "/L/a", "common")
			sys.Setattrlist(th, "/L/a", "common")
			sys.Exchangedata(th, "/L/a", "/L/b")
			sys.Fsctl(th, "/L/c")
			sys.Searchfs(th, "/L")
			sys.Vfsconf(th, "/L")
			fd, _ := sys.Open(th, "/L", trace.ORdonly|trace.ODir, 0)
			sys.Getdirentriesattr(th, fd, 10)
			sys.Close(th, fd)
			f, _ := sys.Open(th, "/L/c", trace.ORdwr, 0)
			sys.Fcntl(th, f, "F_RDADVISE", 4096)
			sys.Fcntl(th, f, "F_PREALLOCATE", 65536)
			sys.Fcntl(th, f, "F_NOCACHE", 1)
			sys.Write(th, f, 4096)
			sys.Fcntl(th, f, "F_FULLFSYNC", 0)
			sys.Close(th, f)
			sys.Setxattr(th, "/L/c", "com.apple.x", 16, true)
			sys.Getxattr(th, "/L/c", "com.apple.x", true)
			sys.Listxattr(th, "/L/c", true)
			sys.Removexattr(th, "/L/c", "com.apple.x", true)
		})
	b, err := Compile(tr, snap, DefaultModesForTest())
	if err != nil {
		t.Fatal(err)
	}
	return tr, b
}

// The OS X trace must replay without stalls on every target platform;
// semantic mismatches are bounded to the xattr calls on Illumos (which
// has no flat xattr surface, so the emulation degrades to metadata
// accesses with ENODATA results).
func TestEmulationOnAllTargets(t *testing.T) {
	_, b := osxTrace(t)
	targets := []struct {
		platform   stack.Platform
		profile    stack.FSProfile
		maxErrors  int
		minEmulate int
	}{
		{stack.OSX, stack.HFSPlus, 0, 0},
		{stack.Linux, stack.Ext4, 0, 7},
		{stack.FreeBSD, stack.Ext4, 0, 7},
		{stack.Illumos, stack.Ext4, 2 /* getxattr+listxattr degrade */, 7},
	}
	for _, tc := range targets {
		conf := stack.Config{
			Name: "tgt-" + string(tc.platform), Platform: tc.platform,
			Profile: tc.profile, Device: stack.DeviceHDD, Scheduler: stack.SchedNoop,
		}
		k := sim.NewKernel()
		sys := stack.New(k, conf)
		if err := Init(sys, b, ""); err != nil {
			t.Fatal(err)
		}
		rep, err := Replay(sys, b, Options{SelfCheck: true})
		if err != nil {
			t.Fatalf("%s: %v", tc.platform, err)
		}
		if rep.Errors > tc.maxErrors {
			t.Errorf("%s: %d errors (max %d): %v", tc.platform, rep.Errors, tc.maxErrors, rep.ErrorSamples)
		}
		if rep.Emulated < tc.minEmulate {
			t.Errorf("%s: emulated %d calls, want >= %d", tc.platform, rep.Emulated, tc.minEmulate)
		}
	}
}

// Exchangedata emulation on Linux (link + two renames) must preserve the
// swap semantics: after replay the two paths have exchanged sizes.
func TestExchangedataEmulationSemantics(t *testing.T) {
	osxConf := stack.Config{
		Name: "osx", Platform: stack.OSX, Profile: stack.HFSPlus,
		Device: stack.DeviceHDD, Scheduler: stack.SchedNoop,
	}
	tr, snap := traceWorkload(t, osxConf,
		func(sys *stack.System) error {
			if err := sys.SetupCreate("/a", 111); err != nil {
				return err
			}
			return sys.SetupCreate("/b", 222)
		},
		func(sys *stack.System, th *sim.Thread) {
			sys.Exchangedata(th, "/a", "/b")
			na, _ := sys.Stat(th, "/a")
			nb, _ := sys.Stat(th, "/b")
			if na != 222 || nb != 111 {
				t.Errorf("source-side exchange wrong: %d, %d", na, nb)
			}
		})
	b, err := Compile(tr, snap, DefaultModesForTest())
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	sys := stack.New(k, defaultConf()) // linux
	if err := Init(sys, b, ""); err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(sys, b, Options{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors: %v", rep.ErrorSamples)
	}
	// Verify the emulated swap really swapped on the target.
	ia, _ := sys.FS.Resolve(nil, "/a")
	ib, _ := sys.FS.Resolve(nil, "/b")
	if ia.Size != 222 || ib.Size != 111 {
		t.Fatalf("target sizes after emulated exchange: %d, %d", ia.Size, ib.Size)
	}
	// No leftover temp file from the link+rename+rename dance.
	if _, errno := sys.FS.Resolve(nil, "/a.xchg"); errno == 0 {
		t.Fatal("emulation leaked its temp link")
	}
}

// A Linux trace using fallocate and posix_fadvise replays on OS X via
// fcntl equivalents, and on FreeBSD where hints are dropped (§4.3.4).
func TestHintEmulationTargets(t *testing.T) {
	tr, snap := traceWorkload(t, defaultConf(),
		func(sys *stack.System) error { return sys.SetupCreate("/f", 1<<20) },
		func(sys *stack.System, th *sim.Thread) {
			fd, _ := sys.Open(th, "/f", trace.ORdwr, 0)
			sys.Fallocate(th, fd, 0, 2<<20)
			sys.Fadvise(th, fd, 0, 1<<20, "POSIX_FADV_WILLNEED")
			sys.Fadvise(th, fd, 0, 1<<20, "POSIX_FADV_SEQUENTIAL")
			sys.Close(th, fd)
		})
	b, err := Compile(tr, snap, DefaultModesForTest())
	if err != nil {
		t.Fatal(err)
	}
	for _, platform := range []stack.Platform{stack.OSX, stack.FreeBSD} {
		conf := stack.Config{
			Name: string(platform), Platform: platform, Profile: stack.HFSPlus,
			Device: stack.DeviceHDD, Scheduler: stack.SchedNoop,
		}
		k := sim.NewKernel()
		sys := stack.New(k, conf)
		if err := Init(sys, b, ""); err != nil {
			t.Fatal(err)
		}
		rep, err := Replay(sys, b, Options{SelfCheck: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Errors != 0 {
			t.Errorf("%s: errors: %v", platform, rep.ErrorSamples)
		}
		// OS X lacks both fallocate and posix_fadvise (3 emulations);
		// FreeBSD has posix_fadvise natively, so only fallocate is
		// emulated there.
		want := 3
		if platform == stack.FreeBSD {
			want = 1
		}
		if rep.Emulated < want {
			t.Errorf("%s: emulated %d, want >= %d", platform, rep.Emulated, want)
		}
	}
}
