package artc

import (
	"errors"
	"strings"
	"testing"
	"time"

	"rootreplay/internal/core"
	"rootreplay/internal/fault"
	"rootreplay/internal/obs"
	"rootreplay/internal/sim"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
)

// faultWorkloadTrace records a small two-thread workload with enough
// opens/reads/writes for injection to bite.
func faultWorkloadTrace(t *testing.T) (*trace.Trace, *snapshot.Snapshot) {
	t.Helper()
	return traceWorkload(t, defaultConf(),
		func(sys *stack.System) error { return sys.SetupCreate("/data/in", 1<<20) },
		func(sys *stack.System, th *sim.Thread) {
			fd, _ := sys.Open(th, "/data/in", trace.ORdonly, 0)
			for i := 0; i < 8; i++ {
				sys.Read(th, fd, 4096)
			}
			sys.Close(th, fd)
			out, _ := sys.Open(th, "/data/out", trace.OWronly|trace.OCreat, 0o644)
			for i := 0; i < 8; i++ {
				sys.Write(th, out, 4096)
			}
			sys.Fsync(th, out)
			sys.Close(th, out)
		})
}

// replayWithInjector compiles and replays the trace with the injector
// wired into both the target stack and the replayer.
func replayWithInjector(t *testing.T, tr *trace.Trace, snap *snapshot.Snapshot, in *fault.Injector, opts Options) (*Report, error) {
	t.Helper()
	b, err := Compile(tr, snap, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	conf := defaultConf()
	conf.Faults = in
	k := sim.NewKernel()
	sys := stack.New(k, conf)
	if err := Init(sys, b, ""); err != nil {
		t.Fatal(err)
	}
	opts.Fault = in
	return Replay(sys, b, opts)
}

// A zero plan must be byte-equivalent to no injector at all: same
// errors, same virtual elapsed time, zeroed counters.
func TestFaultZeroPlanMatchesNoInjector(t *testing.T) {
	tr, snap := faultWorkloadTrace(t)
	clean := replayOn(t, tr, snap, defaultConf(), Options{})

	rep, err := replayWithInjector(t, tr, snap, fault.New(fault.Plan{Seed: 9}), Options{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != clean.Errors || rep.Elapsed != clean.Elapsed {
		t.Fatalf("zero plan diverged: errors %d vs %d, elapsed %v vs %v",
			rep.Errors, clean.Errors, rep.Elapsed, clean.Elapsed)
	}
	if rep.FaultStats == nil || *rep.FaultStats != (fault.Stats{}) {
		t.Fatalf("zero plan counted faults: %v", rep.FaultStats)
	}
}

// Syscall injection without retry must surface as semantic errors with
// exactly reproducible counts for a given seed, and different counts
// across seeds (eventually).
func TestSyscallInjectionDeterministic(t *testing.T) {
	tr, snap := faultWorkloadTrace(t)
	run := func(seed uint64) (*Report, fault.Stats) {
		in := fault.New(fault.Plan{Seed: seed, Syscall: fault.SyscallPlan{Rate: 0.3}})
		rep, err := replayWithInjector(t, tr, snap, in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rep, in.Stats()
	}
	repA, stA := run(1)
	repB, stB := run(1)
	if repA.Errors != repB.Errors || stA != stB {
		t.Fatalf("same seed diverged: %d/%d errors, stats %v vs %v",
			repA.Errors, repB.Errors, stA, stB)
	}
	if stA.SyscallInjected == 0 || repA.Errors == 0 {
		t.Fatalf("rate 0.3 injected nothing: %v", stA)
	}
	if repA.Errors != int(stA.SyscallInjected) {
		t.Fatalf("each injected failure should be one semantic error: %d errors, %v", repA.Errors, stA)
	}
	diverged := false
	for seed := uint64(2); seed < 12; seed++ {
		if rep, _ := run(seed); rep.Errors != repA.Errors {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("ten different seeds all produced identical error counts")
	}
}

// With a bounded injection budget and a retry plan, every injected
// failure must be retried to success: zero semantic errors, recovery
// counted, and virtual time stretched by the backoff.
func TestRetryRecoversInjectedFaults(t *testing.T) {
	tr, snap := faultWorkloadTrace(t)
	clean := replayOn(t, tr, snap, defaultConf(), Options{})
	in := fault.New(fault.Plan{
		Seed:    4,
		Syscall: fault.SyscallPlan{Rate: 1, MaxInjections: 3},
		Retry:   fault.RetryPlan{MaxAttempts: 8, Backoff: time.Millisecond},
	})
	rep, err := replayWithInjector(t, tr, snap, in, Options{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("retries did not recover: %d errors %v", rep.Errors, rep.ErrorSamples)
	}
	st := in.Stats()
	if st.SyscallInjected != 3 || st.Retries != 3 || st.Recovered != 1 {
		t.Fatalf("stats = %v, want 3 injected, 3 retries, 1 recovered", st)
	}
	if rep.Elapsed <= clean.Elapsed {
		t.Fatalf("backoff did not stretch virtual time: %v <= %v", rep.Elapsed, clean.Elapsed)
	}
}

// Storage faults are transparent to replay semantics — the device
// retries internally — but cost virtual time and are counted.
func TestStorageFaultsTransparentButSlower(t *testing.T) {
	tr, snap := faultWorkloadTrace(t)
	clean := replayOn(t, tr, snap, defaultConf(), Options{})
	in := fault.New(fault.Plan{
		Seed:    7,
		Storage: fault.StoragePlan{ErrorRate: 0.5, SlowRate: 0.3},
	})
	rep, err := replayWithInjector(t, tr, snap, in, Options{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != clean.Errors {
		t.Fatalf("storage faults changed semantics: %d vs %d errors", rep.Errors, clean.Errors)
	}
	st := in.Stats()
	if st.StorageErrors == 0 && st.StorageSlow == 0 {
		t.Fatalf("no storage faults injected at these rates: %v", st)
	}
	if rep.Elapsed <= clean.Elapsed {
		t.Fatalf("device retries cost no virtual time: %v <= %v", rep.Elapsed, clean.Elapsed)
	}
}

// The degrade-abort mode must stop the replay once the error budget is
// exhausted and return a structured error-budget report.
func TestDegradeAbortStopsReplay(t *testing.T) {
	tr, snap := faultWorkloadTrace(t)
	in := fault.New(fault.Plan{
		Seed:      2,
		Syscall:   fault.SyscallPlan{Rate: 1},
		Degrade:   fault.DegradeAbort,
		MaxErrors: 2,
	})
	_, err := replayWithInjector(t, tr, snap, in, Options{})
	if err == nil {
		t.Fatal("abort mode returned no error with a saturated injection rate")
	}
	var sr *StallReport
	if !errors.As(err, &sr) {
		t.Fatalf("error = %v, want a *StallReport", err)
	}
	if sr.Trigger != "error-budget" {
		t.Fatalf("Trigger = %q, want error-budget", sr.Trigger)
	}
	if sr.Errors != 3 {
		t.Fatalf("aborted with %d errors, want 3 (budget 2 exceeded)", sr.Errors)
	}
	if sr.Completed >= sr.Total {
		t.Fatalf("abort should leave actions unfinished: %d/%d", sr.Completed, sr.Total)
	}
}

// The stall watchdog converts a dependency-cycle hang into a structured
// deadlock report naming the blocked actions and their wait reasons —
// the PR 2 deadlock-report path, now exercised under injected faults.
// Without a watchdog the same cycle surfaces as the kernel's own
// DeadlockError; with one, the report is the replayer's richer form.
func TestWatchdogStallReportTable(t *testing.T) {
	res := core.ResourceID{Kind: core.KFD, Name: "9", Gen: 1}
	cycleTrace := &trace.Trace{Platform: "linux", Records: []*trace.Record{
		{TID: 1, Call: "read", FD: 9, Path: "/cyc", Start: 0, End: 10},
		{TID: 2, Call: "write", FD: 9, Path: "/cyc", Start: 0, End: 10},
	}}
	cycle := []core.Edge{
		{From: 0, To: 1, Kind: core.WaitComplete, Res: res},
		{From: 1, To: 0, Kind: core.WaitComplete, Res: res},
	}
	// Three actions: 0 completes, then 1 and 2 deadlock on each other.
	partialTrace := &trace.Trace{Platform: "linux", Records: []*trace.Record{
		{TID: 1, Call: "stat", Path: "/f", Err: "ENOENT", Start: 0, End: 5},
		{TID: 1, Call: "read", FD: 9, Path: "/cyc", Start: 5, End: 10},
		{TID: 2, Call: "write", FD: 9, Path: "/cyc", Start: 5, End: 10},
	}}
	partial := []core.Edge{
		{From: 1, To: 2, Kind: core.WaitComplete, Res: res},
		{From: 2, To: 1, Kind: core.WaitComplete, Res: res},
	}

	cases := []struct {
		name          string
		tr            *trace.Trace
		edges         []core.Edge
		compiled      bool // compile for a real Analysis (actions execute)
		obs           bool
		wantCompleted int
		wantBlocked   []int
		wantReasons   []string
	}{
		{
			name: "two-action cycle", tr: cycleTrace, edges: cycle,
			wantCompleted: 0, wantBlocked: []int{0, 1},
			wantReasons: []string{"e.g. on action 1 (fd(9)@1)", "e.g. on action 0 (fd(9)@1)"},
		},
		{
			name: "cycle after progress", tr: partialTrace, edges: partial, compiled: true,
			wantCompleted: 1, wantBlocked: []int{1, 2},
			wantReasons: []string{"e.g. on action 2 (fd(9)@1)", "e.g. on action 1 (fd(9)@1)"},
		},
		{
			name: "cycle with obs attached", tr: cycleTrace, edges: cycle, obs: true,
			wantCompleted: 0, wantBlocked: []int{0, 1},
			wantReasons: []string{"e.g. on action 1 (fd(9)@1)", "e.g. on action 0 (fd(9)@1)"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := fault.New(fault.Plan{Seed: 1, Watchdog: 50 * time.Millisecond})
			var b *Benchmark
			if tc.compiled {
				// Actions before the cycle actually execute, so the
				// benchmark needs a real Analysis; only the graph is
				// replaced by the hand-built cycle.
				var err error
				b, err = Compile(tc.tr, nil, core.DefaultModes())
				if err != nil {
					t.Fatal(err)
				}
				b.Graph = handGraph(len(tc.tr.Records), tc.edges)
			} else {
				b = handBench(tc.tr, handGraph(len(tc.tr.Records), tc.edges))
			}
			sys := stack.New(sim.NewKernel(), defaultConf())
			opts := Options{Fault: in}
			if tc.obs {
				opts.Obs = obs.NewRecorder(0, 0)
			}
			_, err := Replay(sys, b, opts)
			if err == nil {
				t.Fatal("cyclic replay under a watchdog returned no error")
			}
			var sr *StallReport
			if !errors.As(err, &sr) {
				t.Fatalf("error = %v, want a *StallReport", err)
			}
			if sr.Trigger != "watchdog" || sr.Window != 50*time.Millisecond {
				t.Fatalf("Trigger/Window = %q/%v", sr.Trigger, sr.Window)
			}
			if sr.Completed != tc.wantCompleted || sr.Total != len(tc.tr.Records) {
				t.Fatalf("Completed/Total = %d/%d, want %d/%d",
					sr.Completed, sr.Total, tc.wantCompleted, len(tc.tr.Records))
			}
			if len(sr.Blocked) != len(tc.wantBlocked) {
				t.Fatalf("blocked = %v, want actions %v", sr.Blocked, tc.wantBlocked)
			}
			for i, want := range tc.wantBlocked {
				if sr.Blocked[i].Action != want {
					t.Fatalf("blocked[%d] = action %d, want %d", i, sr.Blocked[i].Action, want)
				}
				if !strings.Contains(sr.Blocked[i].Reason, "dep(s) left") ||
					!strings.Contains(sr.Blocked[i].Reason, tc.wantReasons[i]) {
					t.Fatalf("blocked[%d] reason = %q, want it to name %q",
						i, sr.Blocked[i].Reason, tc.wantReasons[i])
				}
			}
			if tc.obs && sr.Crit == nil {
				t.Fatal("obs-enabled stall report lost its critical path")
			}
			msg := err.Error()
			for _, want := range []string{"stalled (watchdog)", "dep(s) left", "fd(9)@1"} {
				if !strings.Contains(msg, want) {
					t.Fatalf("report text missing %q:\n%s", want, msg)
				}
			}
		})
	}
}

// A healthy replay under an armed watchdog must complete normally: the
// watchdog sees completion and stops re-arming.
func TestWatchdogQuietOnHealthyReplay(t *testing.T) {
	tr, snap := faultWorkloadTrace(t)
	// Size the window so the replay cannot sit a full two windows
	// without completing anything: half the clean elapsed time always
	// sees progress on this workload.
	clean := replayOn(t, tr, snap, defaultConf(), Options{})
	in := fault.New(fault.Plan{Seed: 3, Watchdog: clean.Elapsed / 2})
	rep, err := replayWithInjector(t, tr, snap, in, Options{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("healthy watchdog replay reported %d errors", rep.Errors)
	}
}
