package artc

// Property tests for the two benchmark codecs: Encode→Decode→Encode is
// byte-identical in both the text and the binary format, across hostile
// path names, non-default mode sets, and both trace platforms; and the
// binary decoder never panics or accepts an inconsistent artifact, no
// matter the input (FuzzDecodeBinary).

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"reflect"
	"testing"
	"time"

	"rootreplay/internal/core"
	"rootreplay/internal/trace"
)

// hostilePaths exercise every quoting edge the codecs have: spaces,
// double quotes, newlines, tabs, backslashes, and multi-byte runes.
var hostilePaths = []string{
	"/data/with space/file one",
	`/data/qu"ote/na"me.txt`,
	"/data/new\nline",
	"/data/tab\there",
	`/data/back\slash`,
	"/data/ünïcode/変数",
}

// hostileBench compiles a hand-built trace whose paths are hostile to
// naive encoders. testing.TB so fuzz seeds can reuse it.
func hostileBench(tb testing.TB, platform string, modes core.ModeSet) *Benchmark {
	tb.Helper()
	tr := &trace.Trace{Platform: platform}
	now := time.Duration(0)
	add := func(rec *trace.Record) {
		rec.Seq = int64(len(tr.Records))
		rec.TID = 1 + int(rec.Seq)%2
		rec.Start = now
		now += 73 * time.Microsecond
		rec.End = now
		tr.Records = append(tr.Records, rec)
	}
	for i, p := range hostilePaths {
		fd := int64(3 + i)
		add(&trace.Record{Call: "open", Path: p, Flags: trace.OWronly | trace.OCreat, Mode: 0o644, Ret: fd})
		add(&trace.Record{Call: "write", FD: fd, Size: 4096, Offset: int64(i) * 512, Ret: 4096})
		add(&trace.Record{Call: "fsync", FD: fd})
		add(&trace.Record{Call: "close", FD: fd})
		add(&trace.Record{Call: "stat", Path: p + ".missing", Err: "ENOENT", Ret: -1})
		add(&trace.Record{Call: "rename", Path: p, Path2: p + " (v2)"})
		add(&trace.Record{Call: "unlink", Path: p + " (v2)"})
	}
	b, err := Compile(tr, nil, modes)
	if err != nil {
		tb.Fatalf("compile hostile trace (%s): %v", platform, err)
	}
	return b
}

// TestEncodeDecodeEncodeStable pins the round-trip property both
// codecs' consumers rely on (the artifact store compares re-encodings
// to detect drift): encoding a decoded benchmark reproduces the
// original bytes exactly.
func TestEncodeDecodeEncodeStable(t *testing.T) {
	modeSets := map[string]core.ModeSet{
		"default": core.DefaultModes(),
		"none":    {},
		"all": {ProgramSeq: true, FileSeq: true, PathStageName: true,
			FDStage: true, FDSeq: true, AIOStage: true},
		"fd-only": {FDStage: true, FDSeq: true},
	}
	for _, platform := range []string{"linux", "osx"} {
		for mname, modes := range modeSets {
			t.Run(fmt.Sprintf("%s/%s", platform, mname), func(t *testing.T) {
				b := hostileBench(t, platform, modes)

				var bin1 bytes.Buffer
				if err := b.EncodeBinary(&bin1); err != nil {
					t.Fatal(err)
				}
				dec, err := DecodeBinaryBytes(bin1.Bytes())
				if err != nil {
					t.Fatal(err)
				}
				var bin2 bytes.Buffer
				if err := dec.EncodeBinary(&bin2); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(bin1.Bytes(), bin2.Bytes()) {
					t.Error("binary: Encode(Decode(Encode(b))) differs from Encode(b)")
				}

				var txt1 bytes.Buffer
				if err := b.Encode(&txt1); err != nil {
					t.Fatal(err)
				}
				dec2, err := Decode(bytes.NewReader(txt1.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				var txt2 bytes.Buffer
				if err := dec2.Encode(&txt2); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(txt1.Bytes(), txt2.Bytes()) {
					t.Error("text: Encode(Decode(Encode(b))) differs from Encode(b)")
				}

				// The hostile paths survived both trips intact.
				for _, d := range []*Benchmark{dec, dec2} {
					if got := d.Trace.Records[0].Path; got != hostilePaths[0] {
						t.Errorf("path drift: %q", got)
					}
				}
			})
		}
	}
}

// FuzzDecodeBinary hammers the binary decoder with arbitrary bytes. The
// invariants: it never panics, and when it accepts an input, the
// decoded benchmark re-encodes and decodes to the same benchmark — a
// damaged artifact may be rejected, never silently loaded as a
// different benchmark.
func FuzzDecodeBinary(f *testing.F) {
	b := hostileBench(f, "linux", core.DefaultModes())
	var buf bytes.Buffer
	if err := b.EncodeBinary(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(append([]byte{}, valid...))
	// The artifact body without its footer: the fuzz body re-appends a
	// correct checksum, so mutations of this seed reach the section
	// parsers instead of dying at the CRC gate.
	f.Add(append([]byte{}, valid[:len(valid)-5]...))
	f.Add(append([]byte{}, valid[:len(valid)/2]...))
	f.Add(append([]byte{}, valid[:BinaryMagicLen+4]...))
	f.Add([]byte{})
	f.Add([]byte("artc-benchmark 1\n"))

	check := func(t *testing.T, in []byte) {
		dec, err := DecodeBinaryBytes(in)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := dec.EncodeBinary(&out); err != nil {
			t.Fatalf("accepted artifact does not re-encode: %v", err)
		}
		again, err := DecodeBinaryBytes(out.Bytes())
		if err != nil {
			t.Fatalf("re-encoded artifact does not decode: %v", err)
		}
		if !reflect.DeepEqual(dec.Trace, again.Trace) ||
			!reflect.DeepEqual(dec.Snapshot, again.Snapshot) ||
			!reflect.DeepEqual(dec.Graph, again.Graph) ||
			dec.Platform != again.Platform || dec.Modes != again.Modes {
			t.Fatal("accepted artifact decodes to an unstable benchmark")
		}
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		// As-is: almost always dies at the checksum, proving the gate.
		check(t, in)
		// With a recomputed footer: exercises every section parser.
		fixed := append(append([]byte{}, in...), secFooter)
		fixed = binary.LittleEndian.AppendUint32(fixed, crc32.Checksum(fixed, crcTable))
		check(t, fixed)
	})
}
