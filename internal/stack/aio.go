package stack

import (
	"rootreplay/internal/sim"
	"rootreplay/internal/trace"
	"rootreplay/internal/vfs"
)

// AioRead submits an asynchronous read of size bytes at off on fd and
// returns the identifier of the new AIO control block. The I/O proceeds
// in a background kernel thread; aio_error / aio_return / aio_suspend
// observe and reap it, mirroring the POSIX AIO lifecycle ARTC's
// aio_stage ordering rule governs (§4.2).
func (s *System) AioRead(t *sim.Thread, fd, size, off int64) (int64, vfs.Errno) {
	return s.aioSubmit(t, "aio_read", fd, size, off)
}

// AioWrite submits an asynchronous write.
func (s *System) AioWrite(t *sim.Thread, fd, size, off int64) (int64, vfs.Errno) {
	return s.aioSubmit(t, "aio_write", fd, size, off)
}

func (s *System) aioSubmit(t *sim.Thread, call string, fd, size, off int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: call, FD: fd, Size: size, Offset: off}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	s.nextAIO++
	st := &aioState{id: s.nextAIO, fd: fd, cond: sim.NewCond(s.K)}
	s.aiocbs[st.id] = st
	rec.AIO = st.id
	write := call == "aio_write"
	s.K.Spawn("aio", func(at *sim.Thread) {
		var n int64
		if write {
			n = s.writeCommon(at, f, off, size)
		} else {
			n = s.readCommon(at, f, off, size)
		}
		st.done = true
		st.ret = n
		st.cond.Broadcast()
	})
	return s.record(t, enter, rec, st.id, vfs.OK)
}

// AioError reports the status of an AIO control block: 0 when complete,
// EINPROGRESS (as a positive return value, not an error) while running.
func (s *System) AioError(t *sim.Thread, id int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "aio_error", AIO: id}
	st, ok := s.aiocbs[id]
	if !ok {
		return s.record(t, enter, rec, -1, vfs.EINVAL)
	}
	if !st.done {
		return s.record(t, enter, rec, int64(115) /* EINPROGRESS */, vfs.OK)
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}

// AioReturn reaps a completed AIO control block, returning its byte
// count. Reaping an unfinished or already-reaped block is EINVAL.
func (s *System) AioReturn(t *sim.Thread, id int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "aio_return", AIO: id}
	st, ok := s.aiocbs[id]
	if !ok || st.reaped || !st.done {
		return s.record(t, enter, rec, -1, vfs.EINVAL)
	}
	st.reaped = true
	delete(s.aiocbs, id)
	return s.record(t, enter, rec, st.ret, vfs.OK)
}

// AioSuspend blocks until the AIO control block completes.
func (s *System) AioSuspend(t *sim.Thread, id int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "aio_suspend", AIO: id}
	st, ok := s.aiocbs[id]
	if !ok {
		return s.record(t, enter, rec, -1, vfs.EINVAL)
	}
	for !st.done {
		st.cond.Wait(t, "aio_suspend")
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}
