package stack

import (
	"testing"
	"time"

	"rootreplay/internal/sim"
	"rootreplay/internal/trace"
	"rootreplay/internal/vfs"
)

// newSys builds a System on a fresh kernel with the given config tweaks.
func newSys(mutate func(*Config)) (*sim.Kernel, *System) {
	k := sim.NewKernel()
	conf := DefaultConfig()
	if mutate != nil {
		mutate(&conf)
	}
	return k, New(k, conf)
}

// run executes fn in a sim thread and finishes the simulation.
func run(t *testing.T, k *sim.Kernel, fn func(th *sim.Thread)) {
	t.Helper()
	k.Spawn("test", fn)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenReadCloseLifecycle(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/data/file", 1<<20); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		fd, err := sys.Open(th, "/data/file", trace.ORdonly, 0)
		if err != vfs.OK {
			t.Errorf("open: %v", err)
			return
		}
		n, err := sys.Read(th, fd, 4096)
		if err != vfs.OK || n != 4096 {
			t.Errorf("read = %d, %v", n, err)
		}
		n, err = sys.Read(th, fd, 4096)
		if err != vfs.OK || n != 4096 {
			t.Errorf("second read = %d, %v", n, err)
		}
		if _, err := sys.Close(th, fd); err != vfs.OK {
			t.Errorf("close: %v", err)
		}
		if _, err := sys.Read(th, fd, 10); err != vfs.EBADF {
			t.Errorf("read after close = %v, want EBADF", err)
		}
	})
}

func TestReadPastEOF(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/f", 100); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/f", trace.ORdonly, 0)
		n, err := sys.Read(th, fd, 4096)
		if err != vfs.OK || n != 100 {
			t.Errorf("short read = %d, %v", n, err)
		}
		n, err = sys.Read(th, fd, 4096)
		if err != vfs.OK || n != 0 {
			t.Errorf("read at EOF = %d, %v", n, err)
		}
	})
}

func TestWriteExtendsFileAndFsyncFlushes(t *testing.T) {
	k, sys := newSys(nil)
	run(t, k, func(th *sim.Thread) {
		fd, err := sys.Open(th, "/new", trace.OWronly|trace.OCreat, 0o644)
		if err != vfs.OK {
			t.Errorf("open: %v", err)
			return
		}
		for i := 0; i < 4; i++ {
			if n, err := sys.Write(th, fd, 4096); err != vfs.OK || n != 4096 {
				t.Errorf("write = %d, %v", n, err)
			}
		}
		ino, _ := sys.FS.Resolve(nil, "/new")
		if ino.Size != 16384 {
			t.Errorf("size = %d", ino.Size)
		}
		before := sys.Dev.Stats().Writes
		if _, err := sys.Fsync(th, fd); err != vfs.OK {
			t.Errorf("fsync: %v", err)
		}
		after := sys.Dev.Stats().Writes
		if after <= before {
			t.Error("fsync issued no device writes")
		}
	})
}

func TestFsyncTimingLinuxVsOSX(t *testing.T) {
	elapsed := func(mutate func(*Config)) time.Duration {
		k, sys := newSys(mutate)
		var d time.Duration
		run(t, k, func(th *sim.Thread) {
			fd, _ := sys.Open(th, "/f", trace.OWronly|trace.OCreat, 0o644)
			sys.Write(th, fd, 4096)
			start := k.Now()
			sys.Fsync(th, fd)
			d = k.Now() - start
		})
		return d
	}
	linux := elapsed(nil)
	osx := elapsed(func(c *Config) { c.Platform = OSX; c.Profile = HFSPlus })
	if osx >= linux {
		t.Fatalf("OS X fsync (%v) should be cheaper than Linux (%v): no journal barrier", osx, linux)
	}
}

func TestFullFsyncForcesBarrierOnOSX(t *testing.T) {
	k, sys := newSys(func(c *Config) { c.Platform = OSX; c.Profile = HFSPlus })
	run(t, k, func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/f", trace.OWronly|trace.OCreat, 0o644)
		sys.Write(th, fd, 4096)
		before := sys.Dev.Stats().Writes
		sys.Fsync(th, fd)
		fsyncWrites := sys.Dev.Stats().Writes - before
		sys.Write(th, fd, 4096)
		before = sys.Dev.Stats().Writes
		if _, err := sys.Fcntl(th, fd, "F_FULLFSYNC", 0); err != vfs.OK {
			t.Errorf("F_FULLFSYNC: %v", err)
		}
		fullWrites := sys.Dev.Stats().Writes - before
		// OS X fsync flushes data only; F_FULLFSYNC adds the journal
		// barrier, so it must issue strictly more device writes.
		if fsyncWrites != 1 {
			t.Errorf("osx fsync issued %d writes, want 1 (no barrier)", fsyncWrites)
		}
		if fullWrites <= fsyncWrites {
			t.Errorf("F_FULLFSYNC writes = %d, fsync writes = %d", fullWrites, fsyncWrites)
		}
	})
}

func TestExt3OrderedDataFsync(t *testing.T) {
	// On ext3, fsync of one file drags another file's dirty data along.
	k, sys := newSys(func(c *Config) { c.Profile = Ext3 })
	run(t, k, func(th *sim.Thread) {
		fd1, _ := sys.Open(th, "/a", trace.OWronly|trace.OCreat, 0o644)
		fd2, _ := sys.Open(th, "/b", trace.OWronly|trace.OCreat, 0o644)
		for i := 0; i < 64; i++ {
			sys.Write(th, fd2, 4096)
		}
		sys.Write(th, fd1, 4096)
		before := sys.Dev.Stats().BlocksWrite
		sys.Fsync(th, fd1)
		delta := sys.Dev.Stats().BlocksWrite - before
		if delta < 65 {
			t.Errorf("ext3 fsync wrote %d blocks; want >= 65 (ordered data)", delta)
		}
	})
}

func TestSequentialReadUsesReadahead(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/big", 4<<20); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/big", trace.ORdonly, 0)
		for i := 0; i < 256; i++ {
			sys.Read(th, fd, 4096)
		}
	})
	// With readahead, far fewer device reads than pages.
	reads := sys.Dev.Stats().Reads
	if reads >= 128 {
		t.Fatalf("sequential read of 256 pages issued %d device reads; readahead broken", reads)
	}
}

func TestRandomVsSequentialReadTime(t *testing.T) {
	elapsed := func(random bool) time.Duration {
		k, sys := newSys(nil)
		if err := sys.SetupCreate("/big", 64<<20); err != nil {
			t.Fatal(err)
		}
		var d time.Duration
		run(t, k, func(th *sim.Thread) {
			fd, _ := sys.Open(th, "/big", trace.ORdonly, 0)
			start := k.Now()
			for i := 0; i < 100; i++ {
				if random {
					off := (int64(i)*7919003 + 13) % (63 << 20)
					sys.Pread(th, fd, 4096, off)
				} else {
					sys.Read(th, fd, 4096)
				}
			}
			d = k.Now() - start
		})
		return d
	}
	seq := elapsed(false)
	rnd := elapsed(true)
	if seq*5 > rnd {
		t.Fatalf("sequential (%v) should be much faster than random (%v)", seq, rnd)
	}
}

func TestCacheHitFastPath(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/f", 1<<20); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/f", trace.ORdonly, 0)
		sys.Read(th, fd, 4096)
		sys.Lseek(th, fd, 0, SeekSet)
		start := k.Now()
		sys.Read(th, fd, 4096)
		hit := k.Now() - start
		if hit > 100*time.Microsecond {
			t.Errorf("cached read took %v", hit)
		}
	})
}

func TestSSDFasterThanHDDStack(t *testing.T) {
	elapsed := func(dev DeviceKind) time.Duration {
		k, sys := newSys(func(c *Config) { c.Device = dev; c.Scheduler = SchedNoop })
		if err := sys.SetupCreate("/f", 64<<20); err != nil {
			t.Fatal(err)
		}
		var d time.Duration
		run(t, k, func(th *sim.Thread) {
			fd, _ := sys.Open(th, "/f", trace.ORdonly, 0)
			start := k.Now()
			for i := 0; i < 200; i++ {
				off := (int64(i)*7919003 + 13) % (63 << 20)
				sys.Pread(th, fd, 4096, off)
			}
			d = k.Now() - start
		})
		return d
	}
	hdd := elapsed(DeviceHDD)
	ssd := elapsed(DeviceSSD)
	if ssd*10 > hdd {
		t.Fatalf("SSD (%v) not much faster than HDD (%v)", ssd, hdd)
	}
}

func TestDupSharesOffsetDup2Replaces(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/f", 1<<20); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/f", trace.ORdonly, 0)
		sys.Read(th, fd, 4096)
		nfd, err := sys.Dup(th, fd)
		if err != vfs.OK {
			t.Errorf("dup: %v", err)
		}
		// POSIX: dup'd numbers share one open file description, so the
		// offset is shared in both directions.
		pos, _ := sys.Lseek(th, nfd, 0, SeekCur)
		if pos != 4096 {
			t.Errorf("dup offset = %d", pos)
		}
		sys.Read(th, nfd, 4096)
		pos, _ = sys.Lseek(th, fd, 0, SeekCur)
		if pos != 8192 {
			t.Errorf("offset not shared through dup: %d", pos)
		}
		if ret, err := sys.Dup2(th, fd, 9); err != vfs.OK || ret != 9 {
			t.Errorf("dup2 = %d, %v", ret, err)
		}
		if _, err := sys.Fstat(th, 9); err != vfs.OK {
			t.Errorf("fstat dup2 target: %v", err)
		}
	})
}

func TestUnlinkWhileOpen(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/f", 8192); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/f", trace.ORdonly, 0)
		if _, err := sys.Unlink(th, "/f"); err != vfs.OK {
			t.Errorf("unlink: %v", err)
		}
		// Reads through the open fd still work.
		if n, err := sys.Read(th, fd, 4096); err != vfs.OK || n != 4096 {
			t.Errorf("read after unlink = %d, %v", n, err)
		}
		if _, err := sys.Stat(th, "/f"); err != vfs.ENOENT {
			t.Errorf("stat after unlink = %v", err)
		}
		sys.Close(th, fd)
	})
}

func TestSpecialFileLatency(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupSpecial("/dev/random", SpecialRandomBlocking); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetupSpecial("/dev/urandom", SpecialURandom); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/dev/random", trace.ORdonly, 0)
		start := k.Now()
		sys.Read(th, fd, 16)
		slow := k.Now() - start
		if slow < time.Second {
			t.Errorf("/dev/random read of 16 bytes took only %v", slow)
		}
		fd2, _ := sys.Open(th, "/dev/urandom", trace.ORdonly, 0)
		start = k.Now()
		sys.Read(th, fd2, 16)
		fast := k.Now() - start
		if fast > time.Millisecond {
			t.Errorf("/dev/urandom read took %v", fast)
		}
	})
}

func TestSymlinkedDevRandomTrick(t *testing.T) {
	// The paper's fix: /dev/random as a symlink to /dev/urandom.
	k, sys := newSys(nil)
	if err := sys.SetupSpecial("/dev/urandom", SpecialURandom); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetupSymlink("/dev/urandom", "/dev/random"); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		fd, err := sys.Open(th, "/dev/random", trace.ORdonly, 0)
		if err != vfs.OK {
			t.Errorf("open: %v", err)
			return
		}
		start := k.Now()
		sys.Read(th, fd, 100)
		if d := k.Now() - start; d > time.Millisecond {
			t.Errorf("symlinked /dev/random still slow: %v", d)
		}
	})
}

func TestTracerRecordsCalls(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/f", 8192); err != nil {
		t.Fatal(err)
	}
	var recs []*trace.Record
	sys.SetTracer(func(r *trace.Record) { recs = append(recs, r) })
	run(t, k, func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/f", trace.ORdonly, 0)
		sys.Read(th, fd, 4096)
		sys.Close(th, fd)
		sys.Stat(th, "/missing")
	})
	if len(recs) != 4 {
		t.Fatalf("traced %d records, want 4", len(recs))
	}
	if recs[0].Call != "open" || recs[0].Ret != 3 || recs[0].Path != "/f" {
		t.Errorf("open record = %+v", recs[0])
	}
	if recs[1].Call != "read" || recs[1].Ret != 4096 {
		t.Errorf("read record = %+v", recs[1])
	}
	if recs[3].Err != "ENOENT" || recs[3].Ret != -1 {
		t.Errorf("failed stat record = %+v", recs[3])
	}
	for i, r := range recs {
		if r.Seq != int64(i) {
			t.Errorf("seq[%d] = %d", i, r.Seq)
		}
		if r.End < r.Start {
			t.Errorf("record %d: End < Start", i)
		}
	}
}

func TestGetdents(t *testing.T) {
	k, sys := newSys(nil)
	for _, p := range []string{"/d/a", "/d/b", "/d/c"} {
		if err := sys.SetupCreate(p, 0); err != nil {
			t.Fatal(err)
		}
	}
	run(t, k, func(th *sim.Thread) {
		fd, err := sys.Open(th, "/d", trace.ORdonly|trace.ODir, 0)
		if err != vfs.OK {
			t.Errorf("open dir: %v", err)
			return
		}
		n1, _ := sys.Getdents(th, fd, 2)
		n2, _ := sys.Getdents(th, fd, 100)
		n3, _ := sys.Getdents(th, fd, 100)
		if n1 != 2 || n2 != 1 || n3 != 0 {
			t.Errorf("getdents = %d, %d, %d; want 2, 1, 0", n1, n2, n3)
		}
	})
}

func TestXattrRoundtrip(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/f", 0); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		if _, err := sys.Getxattr(th, "/f", "user.k", true); err != vfs.ENODATA {
			t.Errorf("getxattr missing = %v", err)
		}
		if _, err := sys.Setxattr(th, "/f", "user.k", 32, true); err != vfs.OK {
			t.Errorf("setxattr: %v", err)
		}
		n, err := sys.Getxattr(th, "/f", "user.k", true)
		if err != vfs.OK || n != 32 {
			t.Errorf("getxattr = %d, %v", n, err)
		}
		if _, err := sys.Removexattr(th, "/f", "user.k", true); err != vfs.OK {
			t.Errorf("removexattr: %v", err)
		}
	})
}

func TestExchangedata(t *testing.T) {
	k, sys := newSys(func(c *Config) { c.Platform = OSX; c.Profile = HFSPlus })
	sys.SetupCreate("/a", 100)
	sys.SetupCreate("/b", 200)
	run(t, k, func(th *sim.Thread) {
		if _, err := sys.Exchangedata(th, "/a", "/b"); err != vfs.OK {
			t.Errorf("exchangedata: %v", err)
		}
		na, _ := sys.Stat(th, "/a")
		nb, _ := sys.Stat(th, "/b")
		if na != 200 || nb != 100 {
			t.Errorf("sizes after exchange = %d, %d", na, nb)
		}
	})
}

func TestAIOLifecycle(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/f", 1<<20); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/f", trace.ORdonly, 0)
		id, err := sys.AioRead(th, fd, 4096, 0)
		if err != vfs.OK {
			t.Errorf("aio_read: %v", err)
			return
		}
		// Immediately after submission the operation is in progress.
		st, _ := sys.AioError(th, id)
		if st != 115 {
			t.Errorf("aio_error right after submit = %d, want EINPROGRESS(115)", st)
		}
		if _, err := sys.AioSuspend(th, id); err != vfs.OK {
			t.Errorf("aio_suspend: %v", err)
		}
		st, _ = sys.AioError(th, id)
		if st != 0 {
			t.Errorf("aio_error after completion = %d", st)
		}
		n, err := sys.AioReturn(th, id)
		if err != vfs.OK || n != 4096 {
			t.Errorf("aio_return = %d, %v", n, err)
		}
		if _, err := sys.AioReturn(th, id); err != vfs.EINVAL {
			t.Errorf("double aio_return = %v", err)
		}
	})
}

func TestApplyDispatch(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/f", 8192); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		ret, err := sys.Apply(th, &trace.Record{Call: "open", Path: "/f", Flags: trace.ORdonly})
		if err != vfs.OK || ret != 3 {
			t.Errorf("apply open = %d, %v", ret, err)
		}
		ret, err = sys.Apply(th, &trace.Record{Call: "pread64", FD: 3, Size: 4096, Offset: 4096})
		if err != vfs.OK || ret != 4096 {
			t.Errorf("apply pread64 = %d, %v", ret, err)
		}
		if _, err = sys.Apply(th, &trace.Record{Call: "bogus_call"}); err != vfs.ENOTSUP {
			t.Errorf("apply unknown = %v", err)
		}
	})
}

func TestSupportedCallSurface(t *testing.T) {
	if n := SupportedCallCount(); n < 80 {
		t.Fatalf("supported call count = %d, want >= 80", n)
	}
	for _, call := range []string{"open", "stat64", "getdirentries64", "exchangedata"} {
		if !Supported(call) {
			t.Errorf("%s unsupported", call)
		}
	}
	if Supported("clone3") {
		t.Error("clone3 claimed supported")
	}
}

func TestNativeSurfaces(t *testing.T) {
	cases := []struct {
		p    Platform
		call string
		want bool
	}{
		{Linux, "open", true},
		{Linux, "exchangedata", false},
		{OSX, "exchangedata", true},
		{Linux, "fallocate", true},
		{OSX, "fallocate", false},
		{FreeBSD, "fadvise", true},
		{OSX, "fadvise", false},
		{Illumos, "getxattr", false},
		{FreeBSD, "getxattr", true},
		{OSX, "getattrlist", true},
		{Illumos, "getattrlist", false},
	}
	for _, c := range cases {
		if got := Native(c.p, c.call); got != c.want {
			t.Errorf("Native(%s, %s) = %v, want %v", c.p, c.call, got, c.want)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/f", 1<<20); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/f", trace.ORdonly, 0)
		sys.Read(th, fd, 4096)
		sys.Read(th, fd, 4096)
		sys.Stat(th, "/missing")
	})
	st := sys.Stats()
	if st.CallCount["read"] != 2 || st.CallCount["open"] != 1 {
		t.Fatalf("counts = %v", st.CallCount)
	}
	if st.Errors != 1 {
		t.Fatalf("errors = %d", st.Errors)
	}
	if st.CallTime["read"] <= 0 || st.ThreadTime <= 0 {
		t.Fatal("no time accumulated")
	}
	sys.ResetStats()
	if sys.Stats().CallCount["read"] != 0 {
		t.Fatal("reset failed")
	}
}

func TestConcurrentThreadsShareFDTable(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/f", 1<<20); err != nil {
		t.Fatal(err)
	}
	var fd int64 = -1
	opened := sim.NewCond(k)
	k.Spawn("opener", func(th *sim.Thread) {
		fd, _ = sys.Open(th, "/f", trace.ORdonly, 0)
		opened.Broadcast()
	})
	var n int64
	k.Spawn("reader", func(th *sim.Thread) {
		for fd == -1 {
			opened.Wait(th, "open")
		}
		n, _ = sys.Pread(th, fd, 4096, 0)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 4096 {
		t.Fatalf("cross-thread read = %d", n)
	}
}

func TestRunWorkloadHelper(t *testing.T) {
	k, sys := newSys(nil)
	_ = k
	d, err := RunWorkload(sys, "w", func(th *sim.Thread) { th.Sleep(5 * time.Millisecond) })
	if err != nil {
		t.Fatal(err)
	}
	if d != 5*time.Millisecond {
		t.Fatalf("elapsed = %v", d)
	}
}

func TestProfileByName(t *testing.T) {
	if p, ok := ProfileByName("ext4"); !ok || p.Name != "ext4" {
		t.Fatal("ext4 lookup failed")
	}
	if _, ok := ProfileByName("zfs"); ok {
		t.Fatal("zfs should be unknown")
	}
}
