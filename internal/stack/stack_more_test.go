package stack

import (
	"testing"
	"time"

	"rootreplay/internal/sim"
	"rootreplay/internal/trace"
	"rootreplay/internal/vfs"
)

func TestLseekWhence(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/f", 10000); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/f", trace.ORdonly, 0)
		if pos, err := sys.Lseek(th, fd, 100, SeekSet); err != vfs.OK || pos != 100 {
			t.Errorf("SEEK_SET = %d, %v", pos, err)
		}
		if pos, err := sys.Lseek(th, fd, 50, SeekCur); err != vfs.OK || pos != 150 {
			t.Errorf("SEEK_CUR = %d, %v", pos, err)
		}
		if pos, err := sys.Lseek(th, fd, -1000, SeekEnd); err != vfs.OK || pos != 9000 {
			t.Errorf("SEEK_END = %d, %v", pos, err)
		}
		if _, err := sys.Lseek(th, fd, -99999, SeekCur); err != vfs.EINVAL {
			t.Errorf("negative position = %v, want EINVAL", err)
		}
		if _, err := sys.Lseek(th, fd, 0, 42); err != vfs.EINVAL {
			t.Errorf("bad whence = %v", err)
		}
		if _, err := sys.Lseek(th, 99, 0, SeekSet); err != vfs.EBADF {
			t.Errorf("bad fd = %v", err)
		}
	})
}

func TestReadAtSeekPosition(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/f", 100); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/f", trace.ORdonly, 0)
		sys.Lseek(th, fd, 90, SeekSet)
		if n, err := sys.Read(th, fd, 100); err != vfs.OK || n != 10 {
			t.Errorf("read after seek = %d, %v", n, err)
		}
	})
}

func TestOAppendWrites(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/log", 1000); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/log", trace.OWronly|trace.OAppend, 0)
		sys.Write(th, fd, 500)
		ino, _ := sys.FS.Resolve(nil, "/log")
		if ino.Size != 1500 {
			t.Errorf("size after append = %d, want 1500", ino.Size)
		}
		// Second append lands at the new EOF.
		sys.Write(th, fd, 100)
		if ino.Size != 1600 {
			t.Errorf("size after second append = %d", ino.Size)
		}
	})
}

func TestOTruncResetsFile(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/f", 8192); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/f", trace.OWronly|trace.OTrunc, 0)
		ino, _ := sys.FS.Resolve(nil, "/f")
		if ino.Size != 0 {
			t.Errorf("size after O_TRUNC = %d", ino.Size)
		}
		sys.Close(th, fd)
	})
}

func TestFallocateExtends(t *testing.T) {
	k, sys := newSys(nil)
	run(t, k, func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/f", trace.OWronly|trace.OCreat, 0o644)
		if _, err := sys.Fallocate(th, fd, 0, 1<<20); err != vfs.OK {
			t.Errorf("fallocate: %v", err)
		}
		ino, _ := sys.FS.Resolve(nil, "/f")
		if ino.Size != 1<<20 {
			t.Errorf("size = %d", ino.Size)
		}
		if _, err := sys.Fallocate(th, fd, -1, 100); err != vfs.EINVAL {
			t.Errorf("negative offset = %v", err)
		}
	})
}

func TestFadviseWillneedPrefetches(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/f", 1<<20); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/f", trace.ORdonly, 0)
		if _, err := sys.Fadvise(th, fd, 0, 64<<10, "POSIX_FADV_WILLNEED"); err != vfs.OK {
			t.Errorf("fadvise: %v", err)
		}
		// Let the background prefetch finish.
		th.Sleep(time.Second)
		start := k.Now()
		sys.Pread(th, fd, 4096, 0)
		if d := k.Now() - start; d > 100*time.Microsecond {
			t.Errorf("read after WILLNEED took %v; not prefetched", d)
		}
	})
}

func TestMmapFaultsPages(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/f", 1<<20); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/f", trace.ORdonly, 0)
		if _, err := sys.Mmap(th, fd, 0, 128<<10); err != vfs.OK {
			t.Errorf("mmap: %v", err)
		}
		// Mapped pages are resident: re-reads are cache hits.
		start := k.Now()
		sys.Pread(th, fd, 4096, 64<<10)
		if d := k.Now() - start; d > 100*time.Microsecond {
			t.Errorf("read of mapped page took %v", d)
		}
		if _, err := sys.Munmap(th, 0, 128<<10); err != vfs.OK {
			t.Errorf("munmap: %v", err)
		}
	})
}

func TestMsyncFlushesDirty(t *testing.T) {
	k, sys := newSys(nil)
	run(t, k, func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/f", trace.ORdwr|trace.OCreat, 0o644)
		sys.Write(th, fd, 8192)
		before := sys.Dev.Stats().Writes
		if _, err := sys.Msync(th, 0, 8192); err != vfs.OK {
			t.Errorf("msync: %v", err)
		}
		if sys.Dev.Stats().Writes == before {
			t.Error("msync flushed nothing")
		}
	})
}

func TestStatfsAndFstatfs(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/f", 100); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		if _, err := sys.Statfs(th, "/f"); err != vfs.OK {
			t.Errorf("statfs: %v", err)
		}
		if _, err := sys.Statfs(th, "/nope"); err != vfs.ENOENT {
			t.Errorf("statfs missing: %v", err)
		}
		fd, _ := sys.Open(th, "/f", trace.ORdonly, 0)
		if _, err := sys.Fstatfs(th, fd); err != vfs.OK {
			t.Errorf("fstatfs: %v", err)
		}
		if _, err := sys.Fstatfs(th, 99); err != vfs.EBADF {
			t.Errorf("fstatfs bad fd: %v", err)
		}
	})
}

func TestChdirRelativeResolution(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/a/b/file", 100); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		if _, err := sys.Chdir(th, "/a/b"); err != vfs.OK {
			t.Errorf("chdir: %v", err)
		}
		if _, err := sys.Stat(th, "file"); err != vfs.OK {
			t.Errorf("relative stat after chdir: %v", err)
		}
		if _, err := sys.Chdir(th, "/a/b/file"); err != vfs.ENOTDIR {
			t.Errorf("chdir to file: %v", err)
		}
		// fchdir via an open directory descriptor.
		fd, _ := sys.Open(th, "/a", trace.ORdonly|trace.ODir, 0)
		if _, err := sys.Fchdir(th, fd); err != vfs.OK {
			t.Errorf("fchdir: %v", err)
		}
		if _, err := sys.Stat(th, "b/file"); err != vfs.OK {
			t.Errorf("relative stat after fchdir: %v", err)
		}
	})
}

func TestLinkReadlinkSymlinkCalls(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/orig", 64); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		if _, err := sys.Link(th, "/orig", "/hard"); err != vfs.OK {
			t.Errorf("link: %v", err)
		}
		if _, err := sys.Symlink(th, "/orig", "/soft"); err != vfs.OK {
			t.Errorf("symlink: %v", err)
		}
		n, err := sys.Readlink(th, "/soft")
		if err != vfs.OK || n != 5 {
			t.Errorf("readlink = %d, %v", n, err)
		}
		if _, err := sys.Readlink(th, "/hard"); err != vfs.EINVAL {
			t.Errorf("readlink on hard link: %v", err)
		}
		// All three names resolve to same size.
		s1, _ := sys.Stat(th, "/orig")
		s2, _ := sys.Stat(th, "/hard")
		s3, _ := sys.Stat(th, "/soft")
		if s1 != 64 || s2 != 64 || s3 != 64 {
			t.Errorf("sizes = %d %d %d", s1, s2, s3)
		}
	})
}

func TestChmodChownUtimes(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/f", 0); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		if _, err := sys.Chmod(th, "/f", 0o600); err != vfs.OK {
			t.Errorf("chmod: %v", err)
		}
		ino, _ := sys.FS.Resolve(nil, "/f")
		if ino.Mode != 0o600 {
			t.Errorf("mode = %o", ino.Mode)
		}
		fd, _ := sys.Open(th, "/f", trace.ORdonly, 0)
		if _, err := sys.Fchmod(th, fd, 0o644); err != vfs.OK {
			t.Errorf("fchmod: %v", err)
		}
		if ino.Mode != 0o644 {
			t.Errorf("mode after fchmod = %o", ino.Mode)
		}
		if _, err := sys.Chown(th, "/f"); err != vfs.OK {
			t.Errorf("chown: %v", err)
		}
		if _, err := sys.Utimes(th, "/f"); err != vfs.OK {
			t.Errorf("utimes: %v", err)
		}
		if _, err := sys.Utimes(th, "/missing"); err != vfs.ENOENT {
			t.Errorf("utimes missing: %v", err)
		}
	})
}

func TestGetdirentriesattrTouchesChildren(t *testing.T) {
	k, sys := newSys(func(c *Config) { c.Platform = OSX; c.Profile = HFSPlus })
	for _, p := range []string{"/d/a", "/d/b", "/d/c", "/d/e"} {
		if err := sys.SetupCreate(p, 10); err != nil {
			t.Fatal(err)
		}
	}
	run(t, k, func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/d", trace.ORdonly|trace.ODir, 0)
		n1, err := sys.Getdirentriesattr(th, fd, 3)
		if err != vfs.OK || n1 != 3 {
			t.Errorf("first batch = %d, %v", n1, err)
		}
		n2, _ := sys.Getdirentriesattr(th, fd, 10)
		if n2 != 1 {
			t.Errorf("second batch = %d", n2)
		}
		if _, err := sys.Getdirentriesattr(th, 99, 1); err != vfs.EBADF {
			t.Errorf("bad fd: %v", err)
		}
	})
}

func TestSearchfsScansDirectory(t *testing.T) {
	k, sys := newSys(func(c *Config) { c.Platform = OSX; c.Profile = HFSPlus })
	for _, p := range []string{"/lib/x", "/lib/y"} {
		if err := sys.SetupCreate(p, 10); err != nil {
			t.Fatal(err)
		}
	}
	run(t, k, func(th *sim.Thread) {
		if _, err := sys.Searchfs(th, "/lib"); err != vfs.OK {
			t.Errorf("searchfs: %v", err)
		}
		if _, err := sys.Searchfs(th, "/missing"); err != vfs.ENOENT {
			t.Errorf("searchfs missing: %v", err)
		}
	})
}

func TestSyncFlushesEverything(t *testing.T) {
	k, sys := newSys(nil)
	run(t, k, func(th *sim.Thread) {
		f1, _ := sys.Open(th, "/a", trace.OWronly|trace.OCreat, 0o644)
		f2, _ := sys.Open(th, "/b", trace.OWronly|trace.OCreat, 0o644)
		sys.Write(th, f1, 4096)
		sys.Write(th, f2, 4096)
		before := sys.Dev.Stats().BlocksWrite
		if _, err := sys.SyncSys(th); err != vfs.OK {
			t.Errorf("sync: %v", err)
		}
		if sys.Dev.Stats().BlocksWrite-before < 2 {
			t.Error("sync flushed fewer than 2 blocks")
		}
	})
}

func TestFcntlOps(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/f", 1<<20); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/f", trace.ORdonly, 0)
		nfd, err := sys.Fcntl(th, fd, "F_DUPFD", 0)
		if err != vfs.OK || nfd == fd {
			t.Errorf("F_DUPFD = %d, %v", nfd, err)
		}
		if _, err := sys.Fstat(th, nfd); err != vfs.OK {
			t.Errorf("dup'd fd unusable: %v", err)
		}
		for _, op := range []string{"F_NOCACHE", "F_GETFL", "F_SETFL", "F_GETPATH"} {
			if _, err := sys.Fcntl(th, fd, op, 0); err != vfs.OK {
				t.Errorf("%s: %v", op, err)
			}
		}
		if _, err := sys.Fcntl(th, fd, "F_BOGUS", 0); err != vfs.EINVAL {
			t.Errorf("unknown op: %v", err)
		}
		if _, err := sys.Fcntl(th, fd, "F_RDADVISE", 64<<10); err != vfs.OK {
			t.Errorf("F_RDADVISE: %v", err)
		}
		if _, err := sys.Fcntl(th, fd, "F_PREALLOCATE", 2<<20); err != vfs.OK {
			t.Errorf("F_PREALLOCATE: %v", err)
		}
	})
}

func TestTruncateCalls(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/f", 8192); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		if _, err := sys.Truncate(th, "/f", 100); err != vfs.OK {
			t.Errorf("truncate: %v", err)
		}
		ino, _ := sys.FS.Resolve(nil, "/f")
		if ino.Size != 100 {
			t.Errorf("size = %d", ino.Size)
		}
		fd, _ := sys.Open(th, "/f", trace.ORdwr, 0)
		if _, err := sys.Ftruncate(th, fd, 50); err != vfs.OK {
			t.Errorf("ftruncate: %v", err)
		}
		if ino.Size != 50 {
			t.Errorf("size after ftruncate = %d", ino.Size)
		}
		if _, err := sys.Truncate(th, "/missing", 0); err != vfs.ENOENT {
			t.Errorf("truncate missing: %v", err)
		}
	})
}

func TestDirOpenSemantics(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupMkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetupCreate("/f", 0); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		if _, err := sys.Open(th, "/d", trace.OWronly, 0); err != vfs.EISDIR {
			t.Errorf("open dir for write: %v", err)
		}
		if _, err := sys.Open(th, "/f", trace.ORdonly|trace.ODir, 0); err != vfs.ENOTDIR {
			t.Errorf("O_DIRECTORY on file: %v", err)
		}
		fd, err := sys.Open(th, "/d", trace.ORdonly, 0)
		if err != vfs.OK {
			t.Errorf("open dir read-only: %v", err)
		}
		if _, err := sys.Write(th, fd, 10); err != vfs.EISDIR {
			t.Errorf("write to dir fd: %v", err)
		}
		if _, err := sys.Getdents(th, 99, 10); err != vfs.EBADF {
			t.Errorf("getdents bad fd: %v", err)
		}
		ffd, _ := sys.Open(th, "/f", trace.ORdonly, 0)
		if _, err := sys.Getdents(th, ffd, 10); err != vfs.ENOTDIR {
			t.Errorf("getdents on file: %v", err)
		}
	})
}

func TestMetadataColdVsWarm(t *testing.T) {
	k, sys := newSys(nil)
	if err := sys.SetupCreate("/f", 100); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		start := k.Now()
		sys.Stat(th, "/f")
		cold := k.Now() - start
		start = k.Now()
		sys.Stat(th, "/f")
		warm := k.Now() - start
		if cold <= warm {
			t.Errorf("cold stat (%v) not slower than warm (%v)", cold, warm)
		}
		if warm > 100*time.Microsecond {
			t.Errorf("warm stat took %v", warm)
		}
	})
}

func TestExt3VsExt4FsyncCost(t *testing.T) {
	cost := func(prof FSProfile) int64 {
		k, sys := newSys(func(c *Config) { c.Profile = prof })
		var blocks int64
		run(t, k, func(th *sim.Thread) {
			// Unrelated dirty data.
			other, _ := sys.Open(th, "/other", trace.OWronly|trace.OCreat, 0o644)
			for i := 0; i < 32; i++ {
				sys.Write(th, other, 4096)
			}
			fd, _ := sys.Open(th, "/f", trace.OWronly|trace.OCreat, 0o644)
			sys.Write(th, fd, 4096)
			before := sys.Dev.Stats().BlocksWrite
			sys.Fsync(th, fd)
			blocks = sys.Dev.Stats().BlocksWrite - before
		})
		return blocks
	}
	e4 := cost(Ext4)
	e3 := cost(Ext3)
	if e3 <= e4 {
		t.Fatalf("ext3 fsync wrote %d blocks, ext4 %d; ordered mode missing", e3, e4)
	}
}

func TestBackgroundWriteback(t *testing.T) {
	k, sys := newSys(func(c *Config) { c.WritebackDelay = 50 * time.Millisecond })
	run(t, k, func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/f", trace.OWronly|trace.OCreat, 0o644)
		sys.Write(th, fd, 16384)
		if sys.Dev.Stats().Writes != 0 {
			t.Error("write reached device before the writeback delay")
		}
		th.Sleep(100 * time.Millisecond)
		if sys.Dev.Stats().Writes == 0 {
			t.Error("background writeback never ran")
		}
		if sys.Cache.DirtyCount() != 0 {
			t.Errorf("dirty pages remain: %d", sys.Cache.DirtyCount())
		}
		// Re-dirtying re-arms the flusher.
		sys.Write(th, fd, 4096)
		th.Sleep(100 * time.Millisecond)
		if sys.Cache.DirtyCount() != 0 {
			t.Error("second writeback round never ran")
		}
		sys.Close(th, fd)
	})
	// The simulation terminated (run returned): the flusher does not
	// keep the kernel alive once everything is clean.
	if k.Live() != 0 {
		t.Fatalf("live threads remain: %d", k.Live())
	}
}

func TestNoWritebackWhenDisabled(t *testing.T) {
	k, sys := newSys(nil) // WritebackDelay zero
	run(t, k, func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/f", trace.OWronly|trace.OCreat, 0o644)
		sys.Write(th, fd, 16384)
		th.Sleep(5 * time.Second)
		if sys.Dev.Stats().Writes != 0 {
			t.Error("writes reached device without fsync while writeback disabled")
		}
		sys.Fsync(th, fd)
		if sys.Dev.Stats().Writes == 0 {
			t.Error("fsync wrote nothing")
		}
	})
}

func TestDeadlineSchedulerConfig(t *testing.T) {
	k, sys := newSys(func(c *Config) { c.Scheduler = SchedDeadline })
	if err := sys.SetupCreate("/f", 8<<20); err != nil {
		t.Fatal(err)
	}
	run(t, k, func(th *sim.Thread) {
		fd, _ := sys.Open(th, "/f", trace.ORdonly, 0)
		for i := 0; i < 50; i++ {
			off := (int64(i)*982451653 + 7) % (7 << 20)
			if n, err := sys.Pread(th, fd, 4096, off); err != vfs.OK || n != 4096 {
				t.Errorf("pread = %d, %v", n, err)
			}
		}
		sys.Close(th, fd)
	})
}

// Aged layout: a file written on a fragmented file system reads back
// slower sequentially than on a fresh, contiguous layout (§4.3.2's
// aging-aware initialization).
func TestAgedLayoutSlowsSequentialReads(t *testing.T) {
	seqRead := func(aging float64) time.Duration {
		k, sys := newSys(func(c *Config) { c.Aging = aging; c.Scheduler = SchedNoop })
		if err := sys.SetupCreate("/big", 16<<20); err != nil {
			t.Fatal(err)
		}
		var d time.Duration
		run(t, k, func(th *sim.Thread) {
			fd, _ := sys.Open(th, "/big", trace.ORdonly, 0)
			start := k.Now()
			for i := 0; i < 4096; i++ {
				sys.Read(th, fd, 4096)
			}
			d = k.Now() - start
		})
		return d
	}
	fresh := seqRead(0)
	aged := seqRead(1.0)
	if float64(aged) < 1.5*float64(fresh) {
		t.Fatalf("aged sequential read (%v) not much slower than fresh (%v)", aged, fresh)
	}
}
