package stack

import (
	"rootreplay/internal/sim"
	"rootreplay/internal/trace"
	"rootreplay/internal/vfs"
)

// statCommon resolves path (optionally without following a final
// symlink), touching the inode's metadata block.
func (s *System) statCommon(t *sim.Thread, path string, follow bool) (*vfs.Inode, vfs.Errno) {
	t.Sleep(s.Conf.Profile.MetaCPU)
	var ino *vfs.Inode
	var err vfs.Errno
	if follow {
		ino, err = s.FS.Resolve(s.cwd, path)
	} else {
		ino, err = s.FS.ResolveNoFollow(s.cwd, path)
	}
	if err != vfs.OK {
		return nil, err
	}
	s.touchMeta(t, ino)
	return ino, vfs.OK
}

// Stat returns the size of the file at path (the model's stat result).
func (s *System) Stat(t *sim.Thread, path string) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "stat", Path: path}
	ino, err := s.statCommon(t, path, true)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	return s.record(t, enter, rec, ino.Size, vfs.OK)
}

// Lstat is Stat without following a final symlink.
func (s *System) Lstat(t *sim.Thread, path string) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "lstat", Path: path}
	ino, err := s.statCommon(t, path, false)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	return s.record(t, enter, rec, ino.Size, vfs.OK)
}

// Fstat stats an open descriptor.
func (s *System) Fstat(t *sim.Thread, fd int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "fstat", FD: fd}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	return s.record(t, enter, rec, f.ino.Size, vfs.OK)
}

// Access checks for the existence of path (permission bits are not
// modelled, so any existing path is accessible).
func (s *System) Access(t *sim.Thread, path string, mode uint32) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "access", Path: path, Mode: mode}
	if _, err := s.statCommon(t, path, true); err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Mkdir creates a directory.
func (s *System) Mkdir(t *sim.Thread, path string, mode uint32) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "mkdir", Path: path, Mode: mode}
	t.Sleep(s.Conf.Profile.MetaCPU)
	if _, err := s.FS.Mkdir(s.cwd, path, mode); err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Rmdir removes an empty directory.
func (s *System) Rmdir(t *sim.Thread, path string) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "rmdir", Path: path}
	t.Sleep(s.Conf.Profile.MetaCPU)
	if err := s.FS.Rmdir(s.cwd, path); err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Unlink removes a file name.
func (s *System) Unlink(t *sim.Thread, path string) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "unlink", Path: path}
	t.Sleep(s.Conf.Profile.MetaCPU)
	ino, _ := s.FS.ResolveNoFollow(s.cwd, path)
	if err := s.FS.Unlink(s.cwd, path); err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	if ino != nil && ino.Nlink == 0 && s.openCount[ino] == 0 {
		s.Cache.Drop(cacheID(ino))
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Rename moves a name, replacing any existing target.
func (s *System) Rename(t *sim.Thread, oldPath, newPath string) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "rename", Path: oldPath, Path2: newPath}
	t.Sleep(s.Conf.Profile.MetaCPU)
	if err := s.FS.Rename(s.cwd, oldPath, newPath); err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Link creates a hard link.
func (s *System) Link(t *sim.Thread, oldPath, newPath string) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "link", Path: oldPath, Path2: newPath}
	t.Sleep(s.Conf.Profile.MetaCPU)
	if err := s.FS.Link(s.cwd, oldPath, newPath); err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Symlink creates a symbolic link at linkPath pointing to target.
func (s *System) Symlink(t *sim.Thread, target, linkPath string) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "symlink", Path: target, Path2: linkPath}
	t.Sleep(s.Conf.Profile.MetaCPU)
	if _, err := s.FS.Symlink(s.cwd, target, linkPath); err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Readlink reads a symlink target, returning its length.
func (s *System) Readlink(t *sim.Thread, path string) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "readlink", Path: path}
	t.Sleep(s.Conf.Profile.MetaCPU)
	target, err := s.FS.Readlink(s.cwd, path)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	return s.record(t, enter, rec, int64(len(target)), vfs.OK)
}

// Chmod sets permission bits.
func (s *System) Chmod(t *sim.Thread, path string, mode uint32) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "chmod", Path: path, Mode: mode}
	ino, err := s.statCommon(t, path, true)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	ino.Mode = mode
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Fchmod sets permission bits on an open descriptor.
func (s *System) Fchmod(t *sim.Thread, fd int64, mode uint32) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "fchmod", FD: fd, Mode: mode}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	f.ino.Mode = mode
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Chown is accepted and ignored (ownership is not modelled).
func (s *System) Chown(t *sim.Thread, path string) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "chown", Path: path}
	if _, err := s.statCommon(t, path, true); err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Utimes is accepted and ignored (timestamps are not modelled).
func (s *System) Utimes(t *sim.Thread, path string) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "utimes", Path: path}
	if _, err := s.statCommon(t, path, true); err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Chdir changes the working directory.
func (s *System) Chdir(t *sim.Thread, path string) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "chdir", Path: path}
	ino, err := s.statCommon(t, path, true)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	if !ino.IsDir() {
		return s.record(t, enter, rec, -1, vfs.ENOTDIR)
	}
	s.cwd = ino
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Fchdir changes the working directory to an open descriptor's.
func (s *System) Fchdir(t *sim.Thread, fd int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "fchdir", FD: fd}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	if !f.ino.IsDir() {
		return s.record(t, enter, rec, -1, vfs.ENOTDIR)
	}
	s.cwd = f.ino
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Getdents reads up to count directory entries from an open directory
// descriptor, returning the number of entries delivered (0 at end).
func (s *System) Getdents(t *sim.Thread, fd, count int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "getdents", FD: fd, Size: count}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	if !f.isDir {
		return s.record(t, enter, rec, -1, vfs.ENOTDIR)
	}
	names := f.ino.Children()
	if f.dirPos >= len(names) {
		return s.record(t, enter, rec, 0, vfs.OK)
	}
	n := int(count)
	if n <= 0 || n > len(names)-f.dirPos {
		n = len(names) - f.dirPos
	}
	// Directory data costs one metadata block per 128 entries.
	blocks := int64(n/128 + 1)
	s.Cache.Read(t, 0, s.metaMapper, int64(f.ino.Ino), blocks)
	f.dirPos += n
	return s.record(t, enter, rec, int64(n), vfs.OK)
}

// Statfs reports file-system information for path (modelled as a cheap
// metadata call).
func (s *System) Statfs(t *sim.Thread, path string) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "statfs", Path: path}
	if _, err := s.statCommon(t, path, true); err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Fstatfs is Statfs on an open descriptor.
func (s *System) Fstatfs(t *sim.Thread, fd int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "fstatfs", FD: fd}
	if _, err := s.fd(fd); err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Getxattr reads an extended attribute, returning its length.
func (s *System) Getxattr(t *sim.Thread, path, name string, follow bool) (int64, vfs.Errno) {
	enter := s.enter(t)
	call := "getxattr"
	if !follow {
		call = "lgetxattr"
	}
	rec := &trace.Record{Call: call, Path: path, Name: name}
	ino, err := s.statCommon(t, path, follow)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	v, ok := ino.Xattrs[name]
	if !ok {
		return s.record(t, enter, rec, -1, vfs.ENODATA)
	}
	return s.record(t, enter, rec, int64(len(v)), vfs.OK)
}

// Setxattr writes an extended attribute of the given size.
func (s *System) Setxattr(t *sim.Thread, path, name string, size int64, follow bool) (int64, vfs.Errno) {
	enter := s.enter(t)
	call := "setxattr"
	if !follow {
		call = "lsetxattr"
	}
	rec := &trace.Record{Call: call, Path: path, Name: name, Size: size}
	ino, err := s.statCommon(t, path, follow)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	if ino.Xattrs == nil {
		ino.Xattrs = make(map[string][]byte)
	}
	ino.Xattrs[name] = make([]byte, size)
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Listxattr lists attribute names, returning the byte length of the
// name list.
func (s *System) Listxattr(t *sim.Thread, path string, follow bool) (int64, vfs.Errno) {
	enter := s.enter(t)
	call := "listxattr"
	if !follow {
		call = "llistxattr"
	}
	rec := &trace.Record{Call: call, Path: path}
	ino, err := s.statCommon(t, path, follow)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	total := int64(0)
	for n := range ino.Xattrs {
		total += int64(len(n)) + 1
	}
	return s.record(t, enter, rec, total, vfs.OK)
}

// Removexattr removes an extended attribute.
func (s *System) Removexattr(t *sim.Thread, path, name string, follow bool) (int64, vfs.Errno) {
	enter := s.enter(t)
	call := "removexattr"
	if !follow {
		call = "lremovexattr"
	}
	rec := &trace.Record{Call: call, Path: path, Name: name}
	ino, err := s.statCommon(t, path, follow)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	if _, ok := ino.Xattrs[name]; !ok {
		return s.record(t, enter, rec, -1, vfs.ENODATA)
	}
	delete(ino.Xattrs, name)
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Fgetxattr / Fsetxattr / Flistxattr / Fremovexattr operate on an open
// descriptor.
func (s *System) Fgetxattr(t *sim.Thread, fd int64, name string) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "fgetxattr", FD: fd, Name: name}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	v, ok := f.ino.Xattrs[name]
	if !ok {
		return s.record(t, enter, rec, -1, vfs.ENODATA)
	}
	return s.record(t, enter, rec, int64(len(v)), vfs.OK)
}

// Fsetxattr sets an attribute on an open descriptor.
func (s *System) Fsetxattr(t *sim.Thread, fd int64, name string, size int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "fsetxattr", FD: fd, Name: name, Size: size}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	if f.ino.Xattrs == nil {
		f.ino.Xattrs = make(map[string][]byte)
	}
	f.ino.Xattrs[name] = make([]byte, size)
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Flistxattr lists attributes on an open descriptor.
func (s *System) Flistxattr(t *sim.Thread, fd int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "flistxattr", FD: fd}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	total := int64(0)
	for n := range f.ino.Xattrs {
		total += int64(len(n)) + 1
	}
	return s.record(t, enter, rec, total, vfs.OK)
}

// Fremovexattr removes an attribute on an open descriptor.
func (s *System) Fremovexattr(t *sim.Thread, fd int64, name string) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "fremovexattr", FD: fd, Name: name}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	if _, ok := f.ino.Xattrs[name]; !ok {
		return s.record(t, enter, rec, -1, vfs.ENODATA)
	}
	delete(f.ino.Xattrs, name)
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Getattrlist is OS X's bulk metadata read (§4.3.4 counts it among the
// special metadata-access APIs). The model charges a stat.
func (s *System) Getattrlist(t *sim.Thread, path, attrs string) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "getattrlist", Path: path, Name: attrs}
	if _, err := s.statCommon(t, path, true); err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Setattrlist is OS X's bulk metadata write.
func (s *System) Setattrlist(t *sim.Thread, path, attrs string) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "setattrlist", Path: path, Name: attrs}
	if _, err := s.statCommon(t, path, true); err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Getdirentriesattr is OS X's combined readdir+getattrlist.
func (s *System) Getdirentriesattr(t *sim.Thread, fd, count int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "getdirentriesattr", FD: fd, Size: count}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	if !f.isDir {
		return s.record(t, enter, rec, -1, vfs.ENOTDIR)
	}
	names := f.ino.Children()
	if f.dirPos >= len(names) {
		return s.record(t, enter, rec, 0, vfs.OK)
	}
	n := int(count)
	if n <= 0 || n > len(names)-f.dirPos {
		n = len(names) - f.dirPos
	}
	// Bulk attr read touches each child's metadata block.
	for _, name := range names[f.dirPos : f.dirPos+n] {
		child := f.ino.Lookup(name)
		if child != nil {
			s.touchMeta(t, child)
		}
	}
	f.dirPos += n
	return s.record(t, enter, rec, int64(n), vfs.OK)
}

// Exchangedata is OS X's atomic file-content swap (§4.3.4).
func (s *System) Exchangedata(t *sim.Thread, pathA, pathB string) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "exchangedata", Path: pathA, Path2: pathB}
	t.Sleep(s.Conf.Profile.MetaCPU)
	if err := s.FS.Exchange(s.cwd, pathA, pathB); err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Fsctl, Searchfs and Vfsconf model the three obscure, undocumented
// Mac OS X calls the paper emulates with small metadata accesses.
func (s *System) Fsctl(t *sim.Thread, path string) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "fsctl", Path: path}
	if _, err := s.statCommon(t, path, true); err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Searchfs models OS X's catalog-search call as a directory metadata
// scan.
func (s *System) Searchfs(t *sim.Thread, path string) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "searchfs", Path: path}
	ino, err := s.statCommon(t, path, true)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	if ino.IsDir() {
		for _, name := range ino.Children() {
			if c := ino.Lookup(name); c != nil {
				s.touchMeta(t, c)
			}
		}
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Vfsconf models an undocumented metadata query as a cheap stat.
func (s *System) Vfsconf(t *sim.Thread, path string) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "vfsconf", Path: path}
	if _, err := s.statCommon(t, path, true); err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}
