// Package stack binds the simulation substrates into a simulated
// operating system: a vfs.FS for namespace semantics, a page cache, an
// I/O scheduler, and a block device, exposed to simulated threads
// through a UNIX system-call API of 80+ calls with per-platform
// surfaces.
//
// A System is both the machine a traced workload originally ran on and
// the machine ARTC replays onto; tracing is a hook that records every
// call into a trace.Trace.
package stack

import (
	"fmt"
	"sort"
	"time"

	"rootreplay/internal/cache"
	"rootreplay/internal/fault"
	"rootreplay/internal/sched"
	"rootreplay/internal/sim"
	"rootreplay/internal/storage"
	"rootreplay/internal/trace"
	"rootreplay/internal/vfs"
)

// DeviceKind selects the block device model for a Config.
type DeviceKind string

// Device kinds for Config.
const (
	DeviceHDD  DeviceKind = "hdd"
	DeviceRAID DeviceKind = "raid0" // two HDDs, 512 KiB chunk
	DeviceSSD  DeviceKind = "ssd"
)

// SchedulerKind selects the I/O scheduler for a Config.
type SchedulerKind string

// Scheduler kinds for Config.
const (
	SchedNoop     SchedulerKind = "noop"
	SchedCFQ      SchedulerKind = "cfq"
	SchedDeadline SchedulerKind = "deadline"
)

// Config describes a simulated machine. It is the unit of the paper's
// source/target matrix: trace on one Config, replay on another.
type Config struct {
	Name       string
	Platform   Platform
	Profile    FSProfile
	Device     DeviceKind
	Scheduler  SchedulerKind
	SliceSync  time.Duration // CFQ slice_sync; zero = default 100ms
	CachePages int64         // page-cache capacity; zero = 1 GiB worth
	SyscallCPU time.Duration // base CPU charge per syscall; zero = 1µs
	// WritebackDelay enables a pdflush-style background flusher: dirty
	// pages are written to the device this long after the first dirty
	// page appears, and periodically thereafter while dirty pages
	// remain. Zero disables background writeback (dirty data reaches the
	// device only through fsync/sync/eviction), which is the
	// configuration the calibrated experiments use.
	WritebackDelay time.Duration
	// Aging fragments file layout, modelling a file system aged by
	// real-world use (the initialization extension §4.3.2 suggests):
	// 0 is a fresh, contiguous layout; 1 splits every allocation into
	// scattered small extents. Sequential reads on an aged layout cost
	// seeks, as on a real aged disk.
	Aging float64
	// Faults, when non-nil, injects storage faults per the injector's
	// plan: each leaf device (RAID members individually) is wrapped so
	// transient errors and tail-latency spikes hit at completion time,
	// below the I/O scheduler. The injector is bound to this machine's
	// kernel; do not share one across concurrently running kernels. Nil
	// leaves the devices untouched (zero overhead).
	Faults *fault.Injector
}

// DefaultConfig returns a Linux/ext4/HDD/CFQ machine with a 1 GiB cache.
func DefaultConfig() Config {
	return Config{
		Name:      "linux-ext4-hdd",
		Platform:  Linux,
		Profile:   Ext4,
		Device:    DeviceHDD,
		Scheduler: SchedCFQ,
	}
}

// extent maps a contiguous range of file pages to device blocks.
type extent struct {
	firstPage int64
	lba       int64
	blocks    int64
}

// placement is the per-inode block layout, stored in vfs.Inode.Sys.
type placement struct {
	extents []extent
}

// lbaOf returns the device block holding the given file page; the page
// must be covered by the placement.
func (p *placement) lbaOf(page int64) int64 {
	i := sort.Search(len(p.extents), func(i int) bool {
		e := p.extents[i]
		return page < e.firstPage+e.blocks
	})
	e := p.extents[i]
	return e.lba + (page - e.firstPage)
}

func (p *placement) coveredPages() int64 {
	if len(p.extents) == 0 {
		return 0
	}
	last := p.extents[len(p.extents)-1]
	return last.firstPage + last.blocks
}

// fdesc is an open file descriptor.
type fdesc struct {
	num    int64
	ino    *vfs.Inode
	flags  trace.OpenFlag
	off    int64
	isDir  bool
	dirPos int

	// Readahead state.
	lastPage int64
	raWindow int64
}

// aioState tracks an asynchronous I/O control block.
type aioState struct {
	id     int64
	fd     int64
	done   bool
	ret    int64
	err    vfs.Errno
	cond   *sim.Cond
	reaped bool
}

// Stats aggregates per-call timing, used for the thread-time breakdowns
// of Figure 10.
type Stats struct {
	// CallTime sums in-call virtual time by call name.
	CallTime map[string]time.Duration
	// CallCount counts calls by name.
	CallCount map[string]int64
	// Errors counts calls that returned an error.
	Errors int64
	// ThreadTime sums in-call time across all threads.
	ThreadTime time.Duration
}

// System is a simulated machine: kernel + device + scheduler + cache +
// file system + descriptor table, with an optional tracer.
type System struct {
	K      *sim.Kernel
	Conf   Config
	FS     *vfs.FS
	Cache  *cache.Cache
	Sched  sched.Scheduler
	Dev    storage.Device
	tracer func(*trace.Record)

	fds     map[int64]*fdesc
	nextFD  int64
	cwd     *vfs.Inode
	aiocbs  map[int64]*aioState
	nextAIO int64

	// Block allocator state. Metadata lives at low LBAs, the journal in
	// a fixed region, data beyond it.
	nextData   int64
	journalLBA int64
	journalOff int64

	openCount map[*vfs.Inode]int // open descriptors per inode, for deferred frees

	// agingRNG drives deterministic layout scatter when Conf.Aging > 0.
	agingRNG uint64

	traceStart time.Duration
	seq        int64
	stats      Stats

	// writebackArmed guards against double-scheduling the background
	// flusher.
	writebackArmed bool
}

const (
	metaRegionBlocks    = 1 << 20 // 4 GiB of model metadata space
	journalRegionBlocks = 1 << 15 // 128 MiB journal
	pageBlocks          = 1       // one cache page = one device block
	maxReadahead        = 32      // 128 KiB, the Linux default
)

// New builds a System from a Config on a fresh kernel-bound device
// chain.
func New(k *sim.Kernel, conf Config) *System {
	// leaf applies the fault plan to a leaf device (identity when no
	// injector is configured), so RAID members get per-device rates.
	leaf := func(d storage.Device) storage.Device {
		if conf.Faults == nil {
			return d
		}
		return conf.Faults.WrapDevice(k, d)
	}
	var dev storage.Device
	switch conf.Device {
	case DeviceSSD:
		dev = leaf(storage.NewSSD(k, conf.Name+"/ssd", storage.DefaultSSD()))
	case DeviceRAID:
		m0 := leaf(storage.NewHDD(k, conf.Name+"/hdd0", storage.DefaultHDD()))
		m1 := leaf(storage.NewHDD(k, conf.Name+"/hdd1", storage.DefaultHDD()))
		dev = storage.NewRAID0(conf.Name+"/raid0", 128, m0, m1)
	default:
		dev = leaf(storage.NewHDD(k, conf.Name+"/hdd", storage.DefaultHDD()))
	}
	var s sched.Scheduler
	switch conf.Scheduler {
	case SchedNoop:
		s = sched.NewNoop(dev)
	case SchedDeadline:
		s = sched.NewDeadline(k, dev, sched.DefaultDeadline())
	default:
		p := sched.DefaultCFQ()
		if conf.SliceSync > 0 {
			p.SliceSync = conf.SliceSync
		}
		s = sched.NewCFQ(k, dev, p)
	}
	pages := conf.CachePages
	if pages <= 0 {
		pages = 1 << 18 // 1 GiB
	}
	if conf.SyscallCPU <= 0 {
		conf.SyscallCPU = time.Microsecond
	}
	sys := &System{
		K:          k,
		Conf:       conf,
		FS:         vfs.New(),
		Cache:      cache.New(k, s, pages),
		Sched:      s,
		Dev:        dev,
		fds:        make(map[int64]*fdesc),
		nextFD:     3,
		aiocbs:     make(map[int64]*aioState),
		nextAIO:    1,
		nextData:   metaRegionBlocks + journalRegionBlocks,
		journalLBA: metaRegionBlocks,
		openCount:  make(map[*vfs.Inode]int),
		stats: Stats{
			CallTime:  make(map[string]time.Duration),
			CallCount: make(map[string]int64),
		},
	}
	sys.cwd = sys.FS.Root()
	sys.FS.OnFree(func(ino *vfs.Inode) {
		if sys.openCount[ino] == 0 {
			sys.Cache.Drop(cache.FileID(ino.Ino))
		}
	})
	if conf.WritebackDelay > 0 {
		sys.Cache.OnFirstDirty(sys.armWriteback)
	}
	return sys
}

// armWriteback schedules a background flush WritebackDelay after the
// cache first becomes dirty (the pdflush model). The flush runs in its
// own short-lived simulated thread; if new pages were dirtied while it
// ran, another round is scheduled, and otherwise the next 0->1 dirty
// transition re-arms the timer. Because flushes are armed only while
// dirty data exists, the simulation still terminates when the workload
// does.
func (s *System) armWriteback() {
	if s.writebackArmed {
		return
	}
	s.writebackArmed = true
	s.K.After(s.Conf.WritebackDelay, func() {
		s.K.Spawn("writeback", func(t *sim.Thread) {
			s.Cache.SyncAll(t)
			s.writebackArmed = false
			if s.Cache.DirtyCount() > 0 {
				s.armWriteback()
			}
		})
	})
}

// SetTracer installs fn to receive a Record for every syscall; nil stops
// tracing. Timestamps are relative to the moment the tracer is set.
func (s *System) SetTracer(fn func(*trace.Record)) {
	s.tracer = fn
	s.traceStart = s.K.Now()
	s.seq = 0
}

// Stats returns the accumulated per-call statistics.
func (s *System) Stats() *Stats { return &s.stats }

// ResetStats clears the per-call statistics.
func (s *System) ResetStats() {
	s.stats = Stats{
		CallTime:  make(map[string]time.Duration),
		CallCount: make(map[string]int64),
	}
}

// placementOf returns (allocating if needed) the block placement of ino,
// covering at least pages pages. With Conf.Aging > 0 allocations are
// split into scattered extents, modelling a fragmented, aged file
// system.
func (s *System) placementOf(ino *vfs.Inode, pages int64) *placement {
	p, _ := ino.Sys.(*placement)
	if p == nil {
		p = &placement{}
		ino.Sys = p
	}
	covered := p.coveredPages()
	if pages <= covered {
		return p
	}
	need := pages - covered
	if need < 64 {
		need = 64 // allocate in 256 KiB chunks to bound extent count
	}
	if s.Conf.Aging <= 0 {
		lba := s.nextData
		s.nextData += need + s.Conf.Profile.AllocGapBlocks
		if len(p.extents) > 0 {
			last := &p.extents[len(p.extents)-1]
			if last.lba+last.blocks == lba {
				last.blocks += need
				return p
			}
		}
		p.extents = append(p.extents, extent{firstPage: covered, lba: lba, blocks: need})
		return p
	}
	// Aged layout: carve the allocation into small extents, each placed
	// after a pseudorandom gap proportional to the aging factor.
	first := covered
	for need > 0 {
		chunk := int64(16) // 64 KiB fragments
		if chunk > need {
			chunk = need
		}
		gap := int64(float64(s.nextRand()%4096) * s.Conf.Aging)
		lba := s.nextData + gap
		s.nextData = lba + chunk + s.Conf.Profile.AllocGapBlocks
		p.extents = append(p.extents, extent{firstPage: first, lba: lba, blocks: chunk})
		first += chunk
		need -= chunk
	}
	return p
}

// nextRand is a small deterministic xorshift for layout scatter.
func (s *System) nextRand() uint64 {
	if s.agingRNG == 0 {
		s.agingRNG = 0x9E3779B97F4A7C15
	}
	x := s.agingRNG
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.agingRNG = x
	return x
}

// mapperFor returns a cache.Mapper for ino covering at least pages.
func (s *System) mapperFor(ino *vfs.Inode, pages int64) cache.Mapper {
	p := s.placementOf(ino, pages)
	return p.lbaOf
}

// metaMapper maps the per-inode metadata blocks (FileID 0).
func (s *System) metaMapper(page int64) int64 { return page % metaRegionBlocks }

// touchMeta charges a metadata-block read for ino (cold metadata causes
// device I/O; warm metadata is a cache hit).
func (s *System) touchMeta(t *sim.Thread, ino *vfs.Inode) {
	s.Cache.Read(t, 0, s.metaMapper, int64(ino.Ino), 1)
}

// journalCommit writes a journal transaction and charges its CPU cost.
// It is the media barrier of an fsync on Linux-semantics file systems.
func (s *System) journalCommit(t *sim.Thread) {
	prof := s.Conf.Profile
	if prof.JournalBlocks <= 0 {
		return
	}
	t.Sleep(prof.JournalCPU)
	lba := s.journalLBA + s.journalOff
	s.journalOff = (s.journalOff + int64(prof.JournalBlocks)) % journalRegionBlocks
	done := false
	c := sim.NewCond(s.K)
	s.Sched.Submit(&storage.Request{
		Kind: storage.Write, LBA: lba, Blocks: prof.JournalBlocks, Owner: t.ID(),
	}, func() {
		done = true
		c.Broadcast()
	})
	for !done {
		c.Wait(t, "journal commit")
	}
}

// record traces and accounts one completed call. enter is the virtual
// time at call entry.
func (s *System) record(t *sim.Thread, enter time.Duration, rec *trace.Record, ret int64, err vfs.Errno) (int64, vfs.Errno) {
	now := s.K.Now()
	s.stats.CallCount[rec.Call]++
	s.stats.CallTime[rec.Call] += now - enter
	s.stats.ThreadTime += now - enter
	if err != vfs.OK {
		s.stats.Errors++
	}
	if s.tracer != nil {
		rec.Seq = s.seq
		s.seq++
		rec.TID = t.ID()
		rec.Start = enter - s.traceStart
		rec.End = now - s.traceStart
		rec.Ret = ret
		if err != vfs.OK {
			rec.Err = err.String()
			rec.Ret = -1
		}
		s.tracer(rec)
	}
	if err != vfs.OK {
		return -1, err
	}
	return ret, vfs.OK
}

// enter charges the base syscall CPU cost and returns the entry time.
func (s *System) enter(t *sim.Thread) time.Duration {
	start := s.K.Now()
	t.Sleep(s.Conf.SyscallCPU)
	return start
}

// fd looks up an open descriptor.
func (s *System) fd(n int64) (*fdesc, vfs.Errno) {
	f, ok := s.fds[n]
	if !ok {
		return nil, vfs.EBADF
	}
	return f, vfs.OK
}

// lowestFreeFD returns the lowest unused descriptor number >= 3.
func (s *System) lowestFreeFD() int64 {
	n := int64(3)
	for {
		if _, used := s.fds[n]; !used {
			return n
		}
		n++
	}
}

// allocFD installs a new open file description at the lowest free
// number >= 3.
func (s *System) allocFD(ino *vfs.Inode, flags trace.OpenFlag) *fdesc {
	n := s.lowestFreeFD()
	f := &fdesc{num: n, ino: ino, flags: flags, raWindow: 0, lastPage: -2}
	s.fds[n] = f
	s.openCount[ino]++
	return f
}

// shareFD installs an existing description under a second number: POSIX
// dup semantics, where both numbers share one file offset (and
// readahead state).
func (s *System) shareFD(n int64, f *fdesc) {
	s.fds[n] = f
	s.openCount[f.ino]++
}

// DumpFDs lists open descriptor numbers, for tests.
func (s *System) DumpFDs() []int64 {
	var out []int64
	for n := range s.fds {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Cwd returns the current working directory inode.
func (s *System) Cwd() *vfs.Inode { return s.cwd }

func (s *System) String() string {
	return fmt.Sprintf("System(%s: %s/%s/%s/%s)", s.Conf.Name, s.Conf.Platform,
		s.Conf.Profile.Name, s.Conf.Device, s.Conf.Scheduler)
}
