package stack

import (
	"fmt"
	"path"
	"time"

	"rootreplay/internal/cache"
	"rootreplay/internal/sim"
	"rootreplay/internal/storage"
	"rootreplay/internal/vfs"
)

// Setup operations build initial file-system state outside of measured
// time (snapshot restoration, benchmark initialization). They bypass
// tracing and charge no virtual time, but they do drive the block
// allocator, so initialization order determines on-disk layout — the
// locality effect the paper notes for log-structured and aged file
// systems (§4.3.2).

// SetupMkdirAll creates a directory and any missing ancestors.
func (s *System) SetupMkdirAll(p string) error {
	if _, err := s.FS.MkdirAll(nil, p, 0o755); err != vfs.OK {
		return fmt.Errorf("setup mkdir %s: %w", p, err)
	}
	return nil
}

// SetupCreate creates a regular file of the given size (with parents),
// allocating its block placement.
func (s *System) SetupCreate(p string, size int64) error {
	dir := path.Dir(p)
	if dir != "/" && dir != "." {
		if err := s.SetupMkdirAll(dir); err != nil {
			return err
		}
	}
	ino, _, err := s.FS.Create(nil, p, 0o644, false)
	if err != vfs.OK {
		return fmt.Errorf("setup create %s: %w", p, err)
	}
	ino.Size = size
	if size > 0 {
		pages := (size + storage.BlockSize - 1) / storage.BlockSize
		s.placementOf(ino, pages)
	}
	return nil
}

// SetupSymlink creates a symlink (with parents for the link path).
func (s *System) SetupSymlink(target, linkPath string) error {
	dir := path.Dir(linkPath)
	if dir != "/" && dir != "." {
		if err := s.SetupMkdirAll(dir); err != nil {
			return err
		}
	}
	if _, err := s.FS.Symlink(nil, target, linkPath); err != vfs.OK {
		return fmt.Errorf("setup symlink %s -> %s: %w", linkPath, target, err)
	}
	return nil
}

// SetupSpecial creates a special file with the given behaviour.
func (s *System) SetupSpecial(p string, kind SpecialKind) error {
	dir := path.Dir(p)
	if dir != "/" && dir != "." {
		if err := s.SetupMkdirAll(dir); err != nil {
			return err
		}
	}
	ino, err := s.FS.Mknod(nil, p, 0o666)
	if err != vfs.OK {
		return fmt.Errorf("setup special %s: %w", p, err)
	}
	ino.Sys = kind
	return nil
}

// SetupXattr sets an extended attribute on an existing path.
func (s *System) SetupXattr(p, name string, size int64) error {
	if err := s.FS.Setxattr(nil, p, name, make([]byte, size)); err != vfs.OK {
		return fmt.Errorf("setup xattr %s %s: %w", p, name, err)
	}
	return nil
}

// SetupUnlink removes a file created earlier in setup.
func (s *System) SetupUnlink(p string) error {
	if err := s.FS.Unlink(nil, p); err != vfs.OK {
		return fmt.Errorf("setup unlink %s: %w", p, err)
	}
	return nil
}

// WarmFile faults every page of the file at p into the cache,
// simulating a benchmark whose initialization leaves the cache hot.
// It must be called from a simulated thread.
func (s *System) WarmFile(t *sim.Thread, p string) error {
	ino, err := s.FS.Resolve(nil, p)
	if err != vfs.OK {
		return fmt.Errorf("warm %s: %w", p, err)
	}
	if ino.Size == 0 || ino.Type != vfs.TypeRegular {
		return nil
	}
	pages := (ino.Size + storage.BlockSize - 1) / storage.BlockSize
	m := s.mapperFor(ino, pages)
	s.Cache.Read(t, cache.FileID(ino.Ino), m, 0, pages)
	return nil
}

// WarmAll makes every inode's metadata block and every regular file's
// data pages cache-resident in zero virtual time — a machine whose
// dentry, inode, and page caches are hot at measurement start, as
// after a pre-run tree walk plus full read pass. Setup-style instant
// operation (no thread, no I/O), unlike WarmFile. Replays that must be
// device-independent — the sliced-vs-serial differential corpora, where
// each slice replica has its own device and cache, so a cold open or a
// read of data another slice wrote would be timed by that replica's
// queue — warm every replica so those paths are pure cache hits.
func (s *System) WarmAll() {
	var walk func(ino *vfs.Inode)
	walk = func(ino *vfs.Inode) {
		s.Cache.Warm(0, s.metaMapper, int64(ino.Ino), 1)
		if ino.Type == vfs.TypeRegular && ino.Size > 0 {
			pages := (ino.Size + storage.BlockSize - 1) / storage.BlockSize
			s.Cache.Warm(cacheID(ino), s.mapperFor(ino, pages), 0, pages)
		}
		for _, name := range ino.Children() {
			walk(ino.Lookup(name))
		}
	}
	walk(s.FS.Root())
}

// DropCaches empties the page cache (between initialization and
// measurement).
func (s *System) DropCaches() { s.Cache.DropAll() }

// RunWorkload runs fn as the body of a fresh simulated thread on the
// system's kernel and executes the simulation to completion, returning
// the virtual time elapsed. Convenience for single-shot experiments.
func RunWorkload(sys *System, name string, fn func(t *sim.Thread)) (time.Duration, error) {
	start := sys.K.Now()
	sys.K.Spawn(name, fn)
	if err := sys.K.Run(); err != nil {
		return 0, err
	}
	return sys.K.Now() - start, nil
}

func cacheID(ino *vfs.Inode) cache.FileID { return cache.FileID(ino.Ino) }
