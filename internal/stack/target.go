package stack

import (
	"fmt"
	"strings"
	"time"
)

// ParseTarget parses a "platform-fsprofile-device[-sched]" machine name
// like "linux-ext4-hdd" or "osx-hfs+-ssd-noop" into a Config. It is the
// one shared parser for every surface that names a simulated machine —
// the artc CLI, tracegen's source machines, and the artcd service — so
// a target string means the same machine everywhere. cachePages and
// slice carry the optional page-cache and CFQ slice_sync overrides
// (zero keeps the defaults).
func ParseTarget(name string, cachePages int64, slice time.Duration) (Config, error) {
	parts := strings.Split(name, "-")
	if len(parts) < 3 {
		return Config{}, fmt.Errorf("target %q: want platform-fs-device[-sched]", name)
	}
	conf := Config{Name: name, Platform: Platform(parts[0])}
	prof, ok := ProfileByName(parts[1])
	if !ok {
		return Config{}, fmt.Errorf("unknown fs profile %q", parts[1])
	}
	conf.Profile = prof
	switch parts[2] {
	case "hdd":
		conf.Device = DeviceHDD
	case "ssd":
		conf.Device = DeviceSSD
	case "raid0":
		conf.Device = DeviceRAID
	default:
		return Config{}, fmt.Errorf("unknown device %q", parts[2])
	}
	conf.Scheduler = SchedCFQ
	if len(parts) > 3 {
		switch parts[3] {
		case "noop":
			conf.Scheduler = SchedNoop
		case "deadline":
			conf.Scheduler = SchedDeadline
		case "cfq":
		default:
			return Config{}, fmt.Errorf("unknown scheduler %q", parts[3])
		}
	}
	conf.CachePages = cachePages
	conf.SliceSync = slice
	return conf, nil
}
