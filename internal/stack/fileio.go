package stack

import (
	"time"

	"rootreplay/internal/cache"
	"rootreplay/internal/sim"
	"rootreplay/internal/storage"
	"rootreplay/internal/trace"
	"rootreplay/internal/vfs"
)

// SpecialKind selects the behaviour of a special file (device node).
type SpecialKind int

// Special-file behaviours.
const (
	// SpecialNull completes reads and writes instantly (/dev/null).
	SpecialNull SpecialKind = iota
	// SpecialURandom is a fast nonblocking byte source (/dev/urandom,
	// and /dev/random on Mac OS X).
	SpecialURandom
	// SpecialRandomBlocking models Linux /dev/random with a depleted
	// entropy pool: reads are pathologically slow (the paper observed
	// tens of seconds for under a hundred bytes).
	SpecialRandomBlocking
)

// perByteCost returns the virtual time to read one byte.
func (k SpecialKind) perByteCost() time.Duration {
	switch k {
	case SpecialURandom:
		return 200 * time.Nanosecond
	case SpecialRandomBlocking:
		return 200 * time.Millisecond
	default:
		return 0
	}
}

// specialKinds is keyed by inode; set via SetupSpecial.
func (s *System) specialKind(ino *vfs.Inode) (SpecialKind, bool) {
	k, ok := ino.Sys.(SpecialKind)
	return k, ok
}

// Open opens path with flags, returning a new descriptor number.
func (s *System) Open(t *sim.Thread, path string, flags trace.OpenFlag, mode uint32) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "open", Path: path, Flags: flags, Mode: mode}
	t.Sleep(s.Conf.Profile.MetaCPU)

	var ino *vfs.Inode
	var err vfs.Errno
	if flags&trace.OCreat != 0 {
		ino, _, err = s.FS.Create(s.cwd, path, mode, flags&trace.OExcl != 0)
	} else {
		ino, err = s.FS.Resolve(s.cwd, path)
	}
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	if ino.IsDir() && flags.Access() != trace.ORdonly {
		return s.record(t, enter, rec, -1, vfs.EISDIR)
	}
	if flags&trace.ODir != 0 && !ino.IsDir() {
		return s.record(t, enter, rec, -1, vfs.ENOTDIR)
	}
	s.touchMeta(t, ino)
	if flags&trace.OTrunc != 0 && ino.Type == vfs.TypeRegular {
		s.FS.TruncateInode(ino, 0)
		s.Cache.Drop(cache.FileID(ino.Ino))
	}
	f := s.allocFD(ino, flags)
	f.isDir = ino.IsDir()
	return s.record(t, enter, rec, f.num, vfs.OK)
}

// Creat is open(path, O_WRONLY|O_CREAT|O_TRUNC, mode).
func (s *System) Creat(t *sim.Thread, path string, mode uint32) (int64, vfs.Errno) {
	return s.Open(t, path, trace.OWronly|trace.OCreat|trace.OTrunc, mode)
}

// Close closes a descriptor.
func (s *System) Close(t *sim.Thread, fd int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "close", FD: fd}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	delete(s.fds, fd)
	s.openCount[f.ino]--
	if s.openCount[f.ino] == 0 {
		delete(s.openCount, f.ino)
		if f.ino.Nlink == 0 {
			s.Cache.Drop(cache.FileID(f.ino.Ino))
			s.FS.Release(f.ino)
		}
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}

// readCommon performs the data-path work shared by read/pread/aio reads:
// clamping to EOF, readahead, and blocking on the page cache. It returns
// the byte count actually read.
func (s *System) readCommon(t *sim.Thread, f *fdesc, off, size int64) int64 {
	ino := f.ino
	if kind, ok := s.specialKind(ino); ok {
		t.Sleep(time.Duration(size) * kind.perByteCost())
		return size
	}
	if off >= ino.Size {
		return 0
	}
	if off+size > ino.Size {
		size = ino.Size - off
	}
	if size <= 0 {
		return 0
	}
	startPage := off / storage.BlockSize
	endPage := (off + size - 1) / storage.BlockSize
	// Sequential detection doubles the readahead window up to the max;
	// a random access resets it.
	if startPage == f.lastPage || startPage == f.lastPage+1 {
		if f.raWindow == 0 {
			f.raWindow = 4
		} else {
			f.raWindow *= 2
			if f.raWindow > maxReadahead {
				f.raWindow = maxReadahead
			}
		}
	} else {
		f.raWindow = 0
	}
	f.lastPage = endPage
	// Fetch only when a requested page misses; then pull the readahead
	// window along in the same request. Fetching on every call would
	// degenerate streaming reads into one-page-ahead device requests.
	miss := false
	for i := startPage; i <= endPage; i++ {
		if !s.Cache.Contains(cache.FileID(ino.Ino), i) {
			miss = true
			break
		}
	}
	if miss {
		lastFilePage := (ino.Size - 1) / storage.BlockSize
		raEnd := endPage + f.raWindow
		if raEnd > lastFilePage {
			raEnd = lastFilePage
		}
		n := raEnd - startPage + 1
		m := s.mapperFor(ino, raEnd+1)
		s.Cache.Read(t, cache.FileID(ino.Ino), m, startPage, n)
	}
	t.Sleep(cache.HitLatency * time.Duration((endPage-startPage)+1))
	return size
}

// Read reads size bytes at the descriptor's offset.
func (s *System) Read(t *sim.Thread, fd, size int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "read", FD: fd, Size: size}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	if f.isDir {
		return s.record(t, enter, rec, -1, vfs.EISDIR)
	}
	n := s.readCommon(t, f, f.off, size)
	f.off += n
	return s.record(t, enter, rec, n, vfs.OK)
}

// Pread reads size bytes at an explicit offset.
func (s *System) Pread(t *sim.Thread, fd, size, off int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "pread", FD: fd, Size: size, Offset: off}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	if f.isDir {
		return s.record(t, enter, rec, -1, vfs.EISDIR)
	}
	if off < 0 {
		return s.record(t, enter, rec, -1, vfs.EINVAL)
	}
	n := s.readCommon(t, f, off, size)
	return s.record(t, enter, rec, n, vfs.OK)
}

// writeCommon dirties the affected pages and extends the file.
func (s *System) writeCommon(t *sim.Thread, f *fdesc, off, size int64) int64 {
	ino := f.ino
	if kind, ok := s.specialKind(ino); ok {
		_ = kind
		return size
	}
	if size <= 0 {
		return 0
	}
	startPage := off / storage.BlockSize
	endPage := (off + size - 1) / storage.BlockSize
	m := s.mapperFor(ino, endPage+1)
	s.Cache.Write(t, cache.FileID(ino.Ino), m, startPage, endPage-startPage+1)
	if off+size > ino.Size {
		ino.Size = off + size
	}
	t.Sleep(cache.HitLatency * time.Duration(endPage-startPage+1))
	return size
}

// Write writes size bytes at the descriptor's offset (or EOF with
// O_APPEND).
func (s *System) Write(t *sim.Thread, fd, size int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "write", FD: fd, Size: size}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	if f.isDir {
		return s.record(t, enter, rec, -1, vfs.EISDIR)
	}
	if f.flags&trace.OAppend != 0 {
		f.off = f.ino.Size
	}
	n := s.writeCommon(t, f, f.off, size)
	f.off += n
	return s.record(t, enter, rec, n, vfs.OK)
}

// Pwrite writes size bytes at an explicit offset.
func (s *System) Pwrite(t *sim.Thread, fd, size, off int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "pwrite", FD: fd, Size: size, Offset: off}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	if f.isDir {
		return s.record(t, enter, rec, -1, vfs.EISDIR)
	}
	if off < 0 {
		return s.record(t, enter, rec, -1, vfs.EINVAL)
	}
	n := s.writeCommon(t, f, off, size)
	return s.record(t, enter, rec, n, vfs.OK)
}

// Lseek whence values.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Lseek repositions a descriptor's offset.
func (s *System) Lseek(t *sim.Thread, fd, off int64, whence int) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "lseek", FD: fd, Offset: off, Whence: whence}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	var pos int64
	switch whence {
	case SeekSet:
		pos = off
	case SeekCur:
		pos = f.off + off
	case SeekEnd:
		pos = f.ino.Size + off
	default:
		return s.record(t, enter, rec, -1, vfs.EINVAL)
	}
	if pos < 0 {
		return s.record(t, enter, rec, -1, vfs.EINVAL)
	}
	f.off = pos
	return s.record(t, enter, rec, pos, vfs.OK)
}

// fsyncCommon implements the platform- and profile-dependent fsync data
// path. full forces a media barrier even on non-barrier (OS X) profiles.
func (s *System) fsyncCommon(t *sim.Thread, f *fdesc, full bool) {
	if s.Conf.Profile.OrderedData {
		s.Cache.SyncAll(t)
	} else {
		s.Cache.Sync(t, cache.FileID(f.ino.Ino))
	}
	if s.Conf.Profile.FsyncIsBarrier || full {
		s.journalCommit(t)
	}
}

// Fsync flushes a file's dirty pages. On Linux-semantics profiles this
// includes a journal commit (media barrier); on OS X the data merely
// reaches the device cache (§4.3.4).
func (s *System) Fsync(t *sim.Thread, fd int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "fsync", FD: fd}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	s.fsyncCommon(t, f, false)
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Fdatasync is fsync without the metadata commit cost.
func (s *System) Fdatasync(t *sim.Thread, fd int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "fdatasync", FD: fd}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	if s.Conf.Profile.OrderedData {
		s.Cache.SyncAll(t)
	} else {
		s.Cache.Sync(t, cache.FileID(f.ino.Ino))
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}

// SyncSys flushes the whole cache (sync(2)).
func (s *System) SyncSys(t *sim.Thread) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "sync"}
	s.Cache.SyncAll(t)
	s.journalCommit(t)
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Dup duplicates a descriptor to the lowest free number. The two
// numbers share one open file description (one offset), per POSIX.
func (s *System) Dup(t *sim.Thread, fd int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "dup", FD: fd}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	n := s.lowestFreeFD()
	s.shareFD(n, f)
	return s.record(t, enter, rec, n, vfs.OK)
}

// Dup2 duplicates fd onto fd2, closing fd2 first if open.
func (s *System) Dup2(t *sim.Thread, fd, fd2 int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "dup2", FD: fd, FD2: fd2}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	if fd2 < 0 {
		return s.record(t, enter, rec, -1, vfs.EBADF)
	}
	if fd == fd2 {
		return s.record(t, enter, rec, fd2, vfs.OK)
	}
	if old, ok := s.fds[fd2]; ok {
		delete(s.fds, fd2)
		s.openCount[old.ino]--
		if s.openCount[old.ino] == 0 {
			delete(s.openCount, old.ino)
			if old.ino.Nlink == 0 {
				s.Cache.Drop(cache.FileID(old.ino.Ino))
				s.FS.Release(old.ino)
			}
		}
	}
	s.shareFD(fd2, f)
	return s.record(t, enter, rec, fd2, vfs.OK)
}

// Ftruncate sets the size of an open file.
func (s *System) Ftruncate(t *sim.Thread, fd, size int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "ftruncate", FD: fd, Size: size}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	if e := s.FS.TruncateInode(f.ino, size); e != vfs.OK {
		return s.record(t, enter, rec, -1, e)
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Truncate sets the size of the file at path.
func (s *System) Truncate(t *sim.Thread, path string, size int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "truncate", Path: path, Size: size}
	t.Sleep(s.Conf.Profile.MetaCPU)
	if e := s.FS.Truncate(s.cwd, path, size); e != vfs.OK {
		return s.record(t, enter, rec, -1, e)
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Fcntl performs the descriptor controls the traces contain. op is the
// symbolic command name; the semantic subset the model implements:
// F_FULLFSYNC (OS X barrier), F_DUPFD, F_NOCACHE, F_RDADVISE,
// F_PREALLOCATE, F_GETFL/F_SETFL (no-ops).
func (s *System) Fcntl(t *sim.Thread, fd int64, op string, arg int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "fcntl", FD: fd, Name: op, Offset: arg}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	switch op {
	case "F_FULLFSYNC":
		s.fsyncCommon(t, f, true)
		return s.record(t, enter, rec, 0, vfs.OK)
	case "F_DUPFD":
		n := s.lowestFreeFD()
		s.shareFD(n, f)
		return s.record(t, enter, rec, n, vfs.OK)
	case "F_RDADVISE":
		// Prefetch hint: pull arg bytes from the current offset into the
		// cache asynchronously (modelled as charging nothing and warming
		// the pages in the background).
		s.prefetch(f, f.off, arg)
		return s.record(t, enter, rec, 0, vfs.OK)
	case "F_PREALLOCATE":
		pages := (arg + storage.BlockSize - 1) / storage.BlockSize
		s.placementOf(f.ino, pages)
		return s.record(t, enter, rec, 0, vfs.OK)
	case "F_NOCACHE", "F_GETFL", "F_SETFL", "F_GETFD", "F_SETFD", "F_GETLK", "F_SETLK", "F_GETPATH":
		return s.record(t, enter, rec, 0, vfs.OK)
	default:
		return s.record(t, enter, rec, -1, vfs.EINVAL)
	}
}

// prefetch warms pages [off, off+bytes) of f's file in the background.
func (s *System) prefetch(f *fdesc, off, bytes int64) {
	ino := f.ino
	if ino.Size == 0 || bytes <= 0 {
		return
	}
	if off >= ino.Size {
		return
	}
	if off+bytes > ino.Size {
		bytes = ino.Size - off
	}
	start := off / storage.BlockSize
	end := (off + bytes - 1) / storage.BlockSize
	m := s.mapperFor(ino, end+1)
	s.K.Spawn("prefetch", func(pt *sim.Thread) {
		s.Cache.Read(pt, cache.FileID(ino.Ino), m, start, end-start+1)
	})
}

// Fadvise implements posix_fadvise; WILLNEED prefetches, others are
// accepted and ignored.
func (s *System) Fadvise(t *sim.Thread, fd, off, length int64, advice string) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "fadvise", FD: fd, Offset: off, Size: length, Name: advice}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	if advice == "POSIX_FADV_WILLNEED" {
		s.prefetch(f, off, length)
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Fallocate preallocates blocks for an open file and extends its size.
func (s *System) Fallocate(t *sim.Thread, fd, off, length int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "fallocate", FD: fd, Offset: off, Size: length}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	if off < 0 || length <= 0 {
		return s.record(t, enter, rec, -1, vfs.EINVAL)
	}
	pages := (off + length + storage.BlockSize - 1) / storage.BlockSize
	s.placementOf(f.ino, pages)
	if off+length > f.ino.Size {
		f.ino.Size = off + length
	}
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Mmap models a file-backed mapping by faulting the mapped range into
// the cache. It returns a fake address (the aio/mapping counter).
func (s *System) Mmap(t *sim.Thread, fd, off, length int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "mmap", FD: fd, Offset: off, Size: length}
	f, err := s.fd(fd)
	if err != vfs.OK {
		return s.record(t, enter, rec, -1, err)
	}
	n := s.readCommon(t, f, off, length)
	_ = n
	s.nextAIO++
	return s.record(t, enter, rec, s.nextAIO, vfs.OK)
}

// Munmap unmaps (a no-op in the model beyond its CPU charge).
func (s *System) Munmap(t *sim.Thread, addr, length int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "munmap", Offset: addr, Size: length}
	return s.record(t, enter, rec, 0, vfs.OK)
}

// Msync flushes the whole cache for the mapped file; without tracking
// mappings the model conservatively syncs everything dirty.
func (s *System) Msync(t *sim.Thread, addr, length int64) (int64, vfs.Errno) {
	enter := s.enter(t)
	rec := &trace.Record{Call: "msync", Offset: addr, Size: length}
	s.Cache.SyncAll(t)
	return s.record(t, enter, rec, 0, vfs.OK)
}
