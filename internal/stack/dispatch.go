package stack

import (
	"rootreplay/internal/sim"
	"rootreplay/internal/trace"
	"rootreplay/internal/vfs"
)

// aliases maps traced call names (platform variants, 64-bit suffixes,
// *at forms) to the canonical names the dispatcher implements. Together
// with the canonical set this gives the model its 80+ supported calls.
var aliases = map[string]string{
	"open64":              "open",
	"openat":              "open",
	"creat64":             "creat",
	"stat64":              "stat",
	"statx":               "stat",
	"newfstatat":          "stat",
	"fstatat":             "stat",
	"lstat64":             "lstat",
	"fstat64":             "fstat",
	"pread64":             "pread",
	"pwrite64":            "pwrite",
	"preadv":              "pread",
	"pwritev":             "pwrite",
	"readv":               "read",
	"writev":              "write",
	"lseek64":             "lseek",
	"llseek":              "lseek",
	"_llseek":             "lseek",
	"truncate64":          "truncate",
	"ftruncate64":         "ftruncate",
	"mkdirat":             "mkdir",
	"unlinkat":            "unlink",
	"renameat":            "rename",
	"renameat2":           "rename",
	"linkat":              "link",
	"symlinkat":           "symlink",
	"readlinkat":          "readlink",
	"faccessat":           "access",
	"fchmodat":            "chmod",
	"fchownat":            "chown",
	"lchown":              "chown",
	"fchown":              "chown_fd",
	"utimensat":           "utimes",
	"futimes":             "utimes_fd",
	"utime":               "utimes",
	"getdents64":          "getdents",
	"getdirentries":       "getdents",
	"getdirentries64":     "getdents",
	"statfs64":            "statfs",
	"fstatfs64":           "fstatfs",
	"posix_fadvise":       "fadvise",
	"fadvise64":           "fadvise",
	"posix_fallocate":     "fallocate",
	"mmap2":               "mmap",
	"extattr_get_file":    "getxattr",
	"extattr_set_file":    "setxattr",
	"extattr_list_file":   "listxattr",
	"extattr_delete_file": "removexattr",
	"aio_read64":          "aio_read",
	"aio_write64":         "aio_write",
	"exchangedata64":      "exchangedata",
}

// Canonical returns the canonical name for a traced call.
func Canonical(call string) string {
	if c, ok := aliases[call]; ok {
		return c
	}
	return call
}

// canonicalCalls is the set of calls Apply implements.
var canonicalCalls = []string{
	"open", "creat", "close", "read", "write", "pread", "pwrite", "lseek",
	"fsync", "fdatasync", "sync", "dup", "dup2", "fcntl", "ftruncate",
	"truncate", "fadvise", "fallocate", "mmap", "munmap", "msync",
	"stat", "lstat", "fstat", "access", "mkdir", "rmdir", "unlink",
	"rename", "link", "symlink", "readlink", "chmod", "fchmod", "chown",
	"chown_fd", "utimes", "utimes_fd", "chdir", "fchdir", "getdents",
	"statfs", "fstatfs",
	"getxattr", "lgetxattr", "setxattr", "lsetxattr", "listxattr",
	"llistxattr", "removexattr", "lremovexattr",
	"fgetxattr", "fsetxattr", "flistxattr", "fremovexattr",
	"getattrlist", "setattrlist", "getdirentriesattr", "exchangedata",
	"fsctl", "searchfs", "vfsconf",
	"aio_read", "aio_write", "aio_error", "aio_return", "aio_suspend",
}

// Supported reports whether the model can execute the (possibly aliased)
// call name.
func Supported(call string) bool {
	c := Canonical(call)
	for _, k := range canonicalCalls {
		if k == c {
			return true
		}
	}
	return false
}

// SupportedCallCount returns the number of distinct traced call names
// the model accepts (canonical + aliases).
func SupportedCallCount() int { return len(canonicalCalls) + len(aliases) }

// osxOnly lists calls that exist only on the OS X surface; everything
// else canonical is treated per the rules in Native.
var osxOnly = map[string]bool{
	"getattrlist":       true,
	"setattrlist":       true,
	"getdirentriesattr": true,
	"exchangedata":      true,
	"fsctl":             true,
	"searchfs":          true,
	"vfsconf":           true,
}

// xattrCalls lists the flat xattr call family, native on platforms per
// Native.
var xattrCalls = map[string]bool{
	"getxattr": true, "lgetxattr": true, "setxattr": true, "lsetxattr": true,
	"listxattr": true, "llistxattr": true, "removexattr": true,
	"lremovexattr": true, "fgetxattr": true, "fsetxattr": true,
	"flistxattr": true, "fremovexattr": true,
}

// Native reports whether the canonical call is part of the platform's
// native syscall surface; non-native calls must be emulated by the
// replayer (§4.3.4).
func Native(p Platform, call string) bool {
	c := Canonical(call)
	if osxOnly[c] {
		return p == OSX
	}
	switch c {
	case "fallocate":
		return p == Linux
	case "fadvise":
		return p == Linux || p == FreeBSD || p == Illumos
	}
	if xattrCalls[c] {
		// FreeBSD uses extattr_*; Illumos has no flat xattr calls.
		return p == Linux || p == OSX || p == FreeBSD
	}
	return true
}

// Apply executes the call described by rec against the system on behalf
// of thread t, returning the result. The replayer uses Apply after
// rewriting rec's arguments (fd remapping, path prefixing, emulation).
func (s *System) Apply(t *sim.Thread, rec *trace.Record) (int64, vfs.Errno) {
	switch Canonical(rec.Call) {
	case "open":
		return s.Open(t, rec.Path, rec.Flags, rec.Mode)
	case "creat":
		return s.Creat(t, rec.Path, rec.Mode)
	case "close":
		return s.Close(t, rec.FD)
	case "read":
		return s.Read(t, rec.FD, rec.Size)
	case "write":
		return s.Write(t, rec.FD, rec.Size)
	case "pread":
		return s.Pread(t, rec.FD, rec.Size, rec.Offset)
	case "pwrite":
		return s.Pwrite(t, rec.FD, rec.Size, rec.Offset)
	case "lseek":
		return s.Lseek(t, rec.FD, rec.Offset, rec.Whence)
	case "fsync":
		return s.Fsync(t, rec.FD)
	case "fdatasync":
		return s.Fdatasync(t, rec.FD)
	case "sync":
		return s.SyncSys(t)
	case "dup":
		return s.Dup(t, rec.FD)
	case "dup2":
		return s.Dup2(t, rec.FD, rec.FD2)
	case "fcntl":
		return s.Fcntl(t, rec.FD, rec.Name, rec.Offset)
	case "ftruncate":
		return s.Ftruncate(t, rec.FD, rec.Size)
	case "truncate":
		return s.Truncate(t, rec.Path, rec.Size)
	case "fadvise":
		return s.Fadvise(t, rec.FD, rec.Offset, rec.Size, rec.Name)
	case "fallocate":
		return s.Fallocate(t, rec.FD, rec.Offset, rec.Size)
	case "mmap":
		return s.Mmap(t, rec.FD, rec.Offset, rec.Size)
	case "munmap":
		return s.Munmap(t, rec.Offset, rec.Size)
	case "msync":
		return s.Msync(t, rec.Offset, rec.Size)
	case "stat":
		return s.Stat(t, rec.Path)
	case "lstat":
		return s.Lstat(t, rec.Path)
	case "fstat":
		return s.Fstat(t, rec.FD)
	case "access":
		return s.Access(t, rec.Path, rec.Mode)
	case "mkdir":
		return s.Mkdir(t, rec.Path, rec.Mode)
	case "rmdir":
		return s.Rmdir(t, rec.Path)
	case "unlink":
		return s.Unlink(t, rec.Path)
	case "rename":
		return s.Rename(t, rec.Path, rec.Path2)
	case "link":
		return s.Link(t, rec.Path, rec.Path2)
	case "symlink":
		return s.Symlink(t, rec.Path, rec.Path2)
	case "readlink":
		return s.Readlink(t, rec.Path)
	case "chmod":
		return s.Chmod(t, rec.Path, rec.Mode)
	case "fchmod":
		return s.Fchmod(t, rec.FD, rec.Mode)
	case "chown":
		return s.Chown(t, rec.Path)
	case "chown_fd":
		if _, err := s.fd(rec.FD); err != vfs.OK {
			return -1, err
		}
		return 0, vfs.OK
	case "utimes":
		return s.Utimes(t, rec.Path)
	case "utimes_fd":
		if _, err := s.fd(rec.FD); err != vfs.OK {
			return -1, err
		}
		return 0, vfs.OK
	case "chdir":
		return s.Chdir(t, rec.Path)
	case "fchdir":
		return s.Fchdir(t, rec.FD)
	case "getdents":
		return s.Getdents(t, rec.FD, rec.Size)
	case "statfs":
		return s.Statfs(t, rec.Path)
	case "fstatfs":
		return s.Fstatfs(t, rec.FD)
	case "getxattr":
		return s.Getxattr(t, rec.Path, rec.Name, true)
	case "lgetxattr":
		return s.Getxattr(t, rec.Path, rec.Name, false)
	case "setxattr":
		return s.Setxattr(t, rec.Path, rec.Name, rec.Size, true)
	case "lsetxattr":
		return s.Setxattr(t, rec.Path, rec.Name, rec.Size, false)
	case "listxattr":
		return s.Listxattr(t, rec.Path, true)
	case "llistxattr":
		return s.Listxattr(t, rec.Path, false)
	case "removexattr":
		return s.Removexattr(t, rec.Path, rec.Name, true)
	case "lremovexattr":
		return s.Removexattr(t, rec.Path, rec.Name, false)
	case "fgetxattr":
		return s.Fgetxattr(t, rec.FD, rec.Name)
	case "fsetxattr":
		return s.Fsetxattr(t, rec.FD, rec.Name, rec.Size)
	case "flistxattr":
		return s.Flistxattr(t, rec.FD)
	case "fremovexattr":
		return s.Fremovexattr(t, rec.FD, rec.Name)
	case "getattrlist":
		return s.Getattrlist(t, rec.Path, rec.Name)
	case "setattrlist":
		return s.Setattrlist(t, rec.Path, rec.Name)
	case "getdirentriesattr":
		return s.Getdirentriesattr(t, rec.FD, rec.Size)
	case "exchangedata":
		return s.Exchangedata(t, rec.Path, rec.Path2)
	case "fsctl":
		return s.Fsctl(t, rec.Path)
	case "searchfs":
		return s.Searchfs(t, rec.Path)
	case "vfsconf":
		return s.Vfsconf(t, rec.Path)
	case "aio_read":
		return s.AioRead(t, rec.FD, rec.Size, rec.Offset)
	case "aio_write":
		return s.AioWrite(t, rec.FD, rec.Size, rec.Offset)
	case "aio_error":
		return s.AioError(t, rec.AIO)
	case "aio_return":
		return s.AioReturn(t, rec.AIO)
	case "aio_suspend":
		return s.AioSuspend(t, rec.AIO)
	default:
		return -1, vfs.ENOTSUP
	}
}
