package stack

import "time"

// Platform names a source/target operating system's syscall surface.
// ARTC compiles traces from any platform and replays on any platform,
// emulating calls the target lacks (§4.3.4).
type Platform string

// Supported platforms.
const (
	Linux   Platform = "linux"
	OSX     Platform = "osx"
	FreeBSD Platform = "freebsd"
	Illumos Platform = "illumos"
)

// FSProfile models the behavioural differences between file systems that
// matter to the paper's macrobenchmarks: how expensive fsync is, whether
// fsync drags unrelated dirty data with it (ext3's data=ordered mode),
// how contiguously files are laid out, and what an fsync means on the
// platform (Linux forces media; OS X only flushes to the device cache
// unless F_FULLFSYNC is used).
type FSProfile struct {
	// Name identifies the profile: "ext4", "ext3", "xfs", "jfs", "hfs+".
	Name string
	// JournalBlocks is the number of journal blocks written per
	// transaction commit (fsync or metadata-heavy operation).
	JournalBlocks int
	// JournalCPU is the CPU cost of preparing a journal commit.
	JournalCPU time.Duration
	// OrderedData, when true, makes fsync flush all dirty data in the
	// cache, not just the target file's (ext3 data=ordered behaviour).
	OrderedData bool
	// AllocGapBlocks is the gap the allocator leaves between files;
	// larger gaps model weaker locality between related files.
	AllocGapBlocks int64
	// MetaCPU is the CPU cost of a metadata operation (stat, open path
	// walk per component).
	MetaCPU time.Duration
	// FsyncIsBarrier, when false, models OS X fsync semantics: data is
	// flushed to the device but may sit in its volatile cache, so no
	// journal commit or media barrier is charged. fcntl(F_FULLFSYNC)
	// always forces the barrier.
	FsyncIsBarrier bool
}

// Profiles for the file systems in the paper's evaluation (§5.2.2).
var (
	Ext4 = FSProfile{
		Name:           "ext4",
		JournalBlocks:  8,
		JournalCPU:     40 * time.Microsecond,
		AllocGapBlocks: 64,
		MetaCPU:        2 * time.Microsecond,
		FsyncIsBarrier: true,
	}
	Ext3 = FSProfile{
		Name:           "ext3",
		JournalBlocks:  16,
		JournalCPU:     60 * time.Microsecond,
		OrderedData:    true,
		AllocGapBlocks: 256,
		MetaCPU:        2 * time.Microsecond,
		FsyncIsBarrier: true,
	}
	XFS = FSProfile{
		Name:           "xfs",
		JournalBlocks:  4,
		JournalCPU:     30 * time.Microsecond,
		AllocGapBlocks: 32,
		MetaCPU:        3 * time.Microsecond,
		FsyncIsBarrier: true,
	}
	JFS = FSProfile{
		Name:           "jfs",
		JournalBlocks:  6,
		JournalCPU:     50 * time.Microsecond,
		AllocGapBlocks: 128,
		MetaCPU:        3 * time.Microsecond,
		FsyncIsBarrier: true,
	}
	HFSPlus = FSProfile{
		Name:           "hfs+",
		JournalBlocks:  8,
		JournalCPU:     40 * time.Microsecond,
		AllocGapBlocks: 96,
		MetaCPU:        2 * time.Microsecond,
		FsyncIsBarrier: false,
	}
)

// ProfileByName returns the named profile, reporting whether it exists.
func ProfileByName(name string) (FSProfile, bool) {
	for _, p := range []FSProfile{Ext4, Ext3, XFS, JFS, HFSPlus} {
		if p.Name == name {
			return p, true
		}
	}
	return FSProfile{}, false
}
