package sim

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	k := NewKernel()
	if k.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", k.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	k := NewKernel()
	var at time.Duration
	k.Spawn("sleeper", func(th *Thread) {
		th.Sleep(10 * time.Millisecond)
		at = k.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 10*time.Millisecond {
		t.Fatalf("woke at %v, want 10ms", at)
	}
}

func TestSleepZeroYields(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("a", func(th *Thread) {
		order = append(order, "a1")
		th.Sleep(0)
		order = append(order, "a2")
	})
	k.Spawn("b", func(th *Thread) {
		order = append(order, "b1")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if k.Now() != 0 {
		t.Fatalf("clock advanced to %v on zero sleep", k.Now())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(30*time.Millisecond, func() { got = append(got, 3) })
	k.At(10*time.Millisecond, func() { got = append(got, 1) })
	k.At(20*time.Millisecond, func() { got = append(got, 2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("event order = %v", got)
	}
	if k.Now() != 30*time.Millisecond {
		t.Fatalf("final time = %v", k.Now())
	}
}

func TestSameInstantEventsFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(time.Millisecond, func() { got = append(got, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events out of FIFO order: %v", got)
		}
	}
}

func TestPastEventRunsNow(t *testing.T) {
	k := NewKernel()
	fired := time.Duration(-1)
	k.Spawn("t", func(th *Thread) {
		th.Sleep(5 * time.Millisecond)
		k.At(time.Millisecond, func() { fired = k.Now() }) // in the past
		th.Sleep(time.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 5*time.Millisecond {
		t.Fatalf("past event fired at %v, want 5ms", fired)
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel()
	c := NewCond(k)
	k.Spawn("stuck", func(th *Thread) {
		c.Wait(th, "never signaled")
	})
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run() = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("blocked = %v", de.Blocked)
	}
}

func TestCondSignalWakesFIFO(t *testing.T) {
	k := NewKernel()
	c := NewCond(k)
	var woke []string
	mk := func(name string) {
		k.Spawn(name, func(th *Thread) {
			c.Wait(th, "test")
			woke = append(woke, name)
		})
	}
	mk("a")
	mk("b")
	mk("c")
	k.Spawn("signaler", func(th *Thread) {
		th.Sleep(time.Millisecond)
		c.Signal()
		th.Sleep(time.Millisecond)
		c.Signal()
		th.Sleep(time.Millisecond)
		c.Signal()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(woke) != "[a b c]" {
		t.Fatalf("wake order = %v", woke)
	}
}

func TestCondBroadcast(t *testing.T) {
	k := NewKernel()
	c := NewCond(k)
	done := 0
	for i := 0; i < 5; i++ {
		k.Spawn("w", func(th *Thread) {
			c.Wait(th, "test")
			done++
		})
	}
	k.Spawn("b", func(th *Thread) {
		th.Sleep(time.Millisecond)
		c.Broadcast()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 5 {
		t.Fatalf("done = %d, want 5", done)
	}
}

func TestWaitGroup(t *testing.T) {
	k := NewKernel()
	wg := NewWaitGroup(k)
	wg.Add(3)
	var finish time.Duration
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * time.Millisecond
		k.Spawn("worker", func(th *Thread) {
			th.Sleep(d)
			wg.Done()
		})
	}
	k.Spawn("waiter", func(th *Thread) {
		wg.Wait(th)
		finish = k.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if finish != 3*time.Millisecond {
		t.Fatalf("waiter finished at %v, want 3ms", finish)
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative counter")
		}
	}()
	k := NewKernel()
	wg := NewWaitGroup(k)
	wg.Done()
}

func TestSemaphore(t *testing.T) {
	k := NewKernel()
	sem := NewSemaphore(k, 2)
	inside, maxInside := 0, 0
	for i := 0; i < 6; i++ {
		k.Spawn("w", func(th *Thread) {
			sem.Acquire(th)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			th.Sleep(time.Millisecond)
			inside--
			sem.Release()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 2 {
		t.Fatalf("max concurrent holders = %d, want 2", maxInside)
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	k := NewKernel()
	sem := NewSemaphore(k, 1)
	if !sem.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if sem.TryAcquire() {
		t.Fatal("second TryAcquire succeeded")
	}
	sem.Release()
	if !sem.TryAcquire() {
		t.Fatal("TryAcquire after Release failed")
	}
}

func TestChanBuffered(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, 2)
	var got []int
	k.Spawn("producer", func(th *Thread) {
		for i := 0; i < 5; i++ {
			ch.Send(th, i)
		}
		ch.Close()
	})
	k.Spawn("consumer", func(th *Thread) {
		for {
			v, ok := ch.Recv(th)
			if !ok {
				return
			}
			got = append(got, v)
			th.Sleep(time.Microsecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestChanRendezvous(t *testing.T) {
	k := NewKernel()
	ch := NewChan[string](k, 0)
	var sentAt, recvAt time.Duration
	k.Spawn("s", func(th *Thread) {
		ch.Send(th, "x")
		sentAt = k.Now()
	})
	k.Spawn("r", func(th *Thread) {
		th.Sleep(7 * time.Millisecond)
		if v, ok := ch.Recv(th); !ok || v != "x" {
			t.Errorf("recv = %q, %v", v, ok)
		}
		recvAt = k.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sentAt != 7*time.Millisecond || recvAt != 7*time.Millisecond {
		t.Fatalf("sentAt=%v recvAt=%v, want both 7ms", sentAt, recvAt)
	}
}

func TestSpawnFromThread(t *testing.T) {
	k := NewKernel()
	var childRan bool
	k.Spawn("parent", func(th *Thread) {
		k.Spawn("child", func(th2 *Thread) {
			th2.Sleep(time.Millisecond)
			childRan = true
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child did not run")
	}
}

func TestThreadIDsAndNames(t *testing.T) {
	k := NewKernel()
	t1 := k.Spawn("alpha", func(th *Thread) {})
	t2 := k.Spawn("beta", func(th *Thread) {})
	if t1.ID() != 1 || t2.ID() != 2 {
		t.Fatalf("ids = %d, %d", t1.ID(), t2.ID())
	}
	if t1.Name() != "alpha" || t2.Name() != "beta" {
		t.Fatalf("names = %q, %q", t1.Name(), t2.Name())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if t1.State() != StateDone {
		t.Fatalf("state = %v", t1.State())
	}
}

func TestUnparkNonBlockedNoop(t *testing.T) {
	k := NewKernel()
	th := k.Spawn("t", func(th *Thread) {})
	k.Unpark(th) // runnable, not blocked: must not duplicate in runq
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStateString(t *testing.T) {
	cases := map[ThreadState]string{
		StateRunnable:   "runnable",
		StateRunning:    "running",
		StateBlocked:    "blocked",
		StateDone:       "done",
		ThreadState(42): "ThreadState(42)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

// TestDeterminism runs a moderately complex mixed workload twice and
// checks that the trace of (time, event) pairs is identical.
func TestDeterminism(t *testing.T) {
	run := func() []string {
		var log []string
		k := NewKernel()
		c := NewCond(k)
		sem := NewSemaphore(k, 2)
		for i := 0; i < 8; i++ {
			i := i
			k.Spawn(fmt.Sprintf("w%d", i), func(th *Thread) {
				sem.Acquire(th)
				th.Sleep(time.Duration(i%3+1) * time.Millisecond)
				log = append(log, fmt.Sprintf("%v w%d", k.Now(), i))
				sem.Release()
				if i%2 == 0 {
					c.Wait(th, "even")
				} else {
					c.Signal()
				}
			})
		}
		k.Spawn("drain", func(th *Thread) {
			th.Sleep(50 * time.Millisecond)
			c.Broadcast()
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// Property: for any set of sleep durations, every thread wakes exactly at
// its requested time and the final clock is the max duration.
func TestQuickSleepTiming(t *testing.T) {
	f := func(ds []uint16) bool {
		if len(ds) == 0 {
			return true
		}
		if len(ds) > 64 {
			ds = ds[:64]
		}
		k := NewKernel()
		wake := make([]time.Duration, len(ds))
		var max time.Duration
		for i, d := range ds {
			dur := time.Duration(d) * time.Microsecond
			if dur > max {
				max = dur
			}
			i := i
			k.Spawn("s", func(th *Thread) {
				th.Sleep(dur)
				wake[i] = k.Now()
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		for i, d := range ds {
			want := time.Duration(d) * time.Microsecond
			if want == 0 {
				want = 0
			}
			if wake[i] != want {
				return false
			}
		}
		return k.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a chain of threads connected by rendezvous channels passes a
// token end to end regardless of chain length.
func TestQuickChanPipeline(t *testing.T) {
	f := func(n uint8) bool {
		stages := int(n%16) + 1
		k := NewKernel()
		chans := make([]*Chan[int], stages+1)
		for i := range chans {
			chans[i] = NewChan[int](k, 0)
		}
		for i := 0; i < stages; i++ {
			in, out := chans[i], chans[i+1]
			k.Spawn("stage", func(th *Thread) {
				v, ok := in.Recv(th)
				if ok {
					out.Send(th, v+1)
				}
			})
		}
		final := -1
		k.Spawn("sink", func(th *Thread) {
			v, _ := chans[stages].Recv(th)
			final = v
		})
		k.Spawn("source", func(th *Thread) {
			chans[0].Send(th, 0)
		})
		if err := k.Run(); err != nil {
			return false
		}
		return final == stages
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSpawnRunThreads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		for j := 0; j < 100; j++ {
			k.Spawn("t", func(th *Thread) { th.Sleep(time.Millisecond) })
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCondSignalWait(b *testing.B) {
	k := NewKernel()
	c := NewCond(k)
	n := b.N
	k.Spawn("waiter", func(th *Thread) {
		for i := 0; i < n; i++ {
			c.Wait(th, "bench")
		}
	})
	k.Spawn("signaler", func(th *Thread) {
		for i := 0; i < n; i++ {
			c.Signal()
			th.Yield()
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestChanSendOnClosedPanics(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, 1)
	ch.Close()
	panicked := false
	k.Spawn("s", func(th *Thread) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		ch.Send(th, 1)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("send on closed channel did not panic")
	}
}

func TestChanCloseWakesBlockedReceiver(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, 0)
	gotOK := true
	k.Spawn("r", func(th *Thread) {
		_, gotOK = ch.Recv(th)
	})
	k.Spawn("c", func(th *Thread) {
		th.Sleep(time.Millisecond)
		ch.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if gotOK {
		t.Fatal("receiver on closed channel reported ok")
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel()
	steps := 0
	k.Spawn("loop", func(th *Thread) {
		for i := 0; i < 1000; i++ {
			steps++
			th.Sleep(time.Millisecond)
			if i == 5 {
				k.Stop()
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if steps > 10 {
		t.Fatalf("Stop did not abort the run: %d steps", steps)
	}
}

func TestDeadlockErrorMessage(t *testing.T) {
	k := NewKernel()
	c := NewCond(k)
	k.Spawn("waiter-a", func(th *Thread) { c.Wait(th, "thing-x") })
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "thing-x") || !strings.Contains(err.Error(), "waiter-a") {
		t.Fatalf("deadlock report missing context: %v", err)
	}
}
