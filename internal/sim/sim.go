// Package sim provides a deterministic discrete-event simulation kernel.
//
// All timing in the ROOT/ARTC reproduction runs on sim's virtual clock:
// workloads, the simulated storage stack, and the trace replayer execute
// as simulated threads (coroutines) scheduled one at a time by a Kernel.
// Because exactly one thread runs at any instant and the run queue and
// event queue are FIFO with deterministic tie-breaking, a simulation is
// fully reproducible: the same program yields the same virtual-time
// results on every run, on every host.
//
// Threads are implemented as goroutines that hand control back and forth
// with the kernel through unbuffered channels; the goroutine machinery is
// an implementation detail and no two simulated threads ever run
// concurrently.
package sim

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// ThreadState describes the scheduling state of a simulated thread.
type ThreadState int

const (
	// StateRunnable means the thread is in the kernel's run queue.
	StateRunnable ThreadState = iota
	// StateRunning means the thread is the one currently executing.
	StateRunning
	// StateBlocked means the thread is parked waiting to be woken.
	StateBlocked
	// StateDone means the thread's body has returned.
	StateDone
)

// String returns a short human-readable name for the state.
func (s ThreadState) String() string {
	switch s {
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("ThreadState(%d)", int(s))
	}
}

// Completer receives pooled I/O-completion events. Devices implement it
// so a completion can be scheduled as a tagged event (opcode + operand
// words) instead of a captured closure; the tag routes the completion
// inside the device (a queue slot, or a sentinel like the HDD's
// elevator kick).
type Completer interface {
	Complete(tag uint64)
}

// Timer is a reusable timed callback. Unlike At/After, whose one-shot
// callbacks cannot be revoked, a Timer is allocated once and re-armed
// with Reset; Stop revokes the pending expiry. Cancellation is lazy:
// the underlying pooled event stays queued and is skipped when it
// fires, so — exactly like the generation-counter idiom it replaces —
// a stopped timer still holds the simulation alive until its original
// expiry instant.
type Timer struct {
	k  *Kernel
	fn func()
	ev *event // pending event; nil when stopped or fired
}

// NewTimer returns a stopped timer that runs fn in kernel context each
// time it expires.
func (k *Kernel) NewTimer(fn func()) *Timer {
	if fn == nil {
		panic("sim: NewTimer with nil callback")
	}
	return &Timer{k: k, fn: fn}
}

// Reset arms the timer to fire d from now, revoking any pending expiry
// first. Non-positive d fires at the current instant.
func (tm *Timer) Reset(d time.Duration) {
	tm.ev = nil // orphan any pending event; it fires as a no-op
	e := tm.k.newEvent(tm.k.now + d)
	e.op = opTimer
	e.tm = tm
	tm.ev = e
	tm.k.enqueue(e)
}

// Stop revokes the pending expiry, if any. The callback will not run
// until the next Reset.
func (tm *Timer) Stop() { tm.ev = nil }

// Pending reports whether the timer is armed.
func (tm *Timer) Pending() bool { return tm.ev != nil }

// Thread is a simulated thread of execution. A Thread's body runs as a
// coroutine: it executes only between the kernel resuming it and the
// thread's next blocking call (Sleep, Park, Cond.Wait, ...).
type Thread struct {
	k      *Kernel
	id     int
	name   string
	state  ThreadState
	resume chan struct{}

	// blockReason / blockReasonf describe what the thread is waiting
	// for, used in deadlock reports. blockReasonf, when set, is invoked
	// lazily so hot paths can block without formatting a string.
	blockReason  string
	blockReasonf func() string
}

// BlockReason returns the thread's current wait description (empty when
// not blocked), rendering a lazy reason if one was supplied.
func (t *Thread) BlockReason() string {
	if t.blockReasonf != nil {
		return t.blockReasonf()
	}
	return t.blockReason
}

// ID returns the thread's kernel-assigned identifier (1-based, in spawn
// order).
func (t *Thread) ID() int { return t.id }

// Name returns the name given at spawn time.
func (t *Thread) Name() string { return t.name }

// State returns the thread's scheduling state.
func (t *Thread) State() ThreadState { return t.state }

// Kernel returns the kernel this thread belongs to.
func (t *Thread) Kernel() *Kernel { return t.k }

// Kernel is a discrete-event simulator with cooperative simulated threads.
// The zero value is not usable; call NewKernel.
type Kernel struct {
	now     time.Duration
	eseq    uint64
	wheel   wheel
	runq    []*Thread
	current *Thread
	yielded chan struct{}
	live    int // spawned threads whose bodies have not returned
	nextID  int
	threads []*Thread // all spawned threads, for deadlock reporting

	// batch holds the not-yet-dispatched remainder of the instant batch
	// most recently expired from the wheel: every pending event at the
	// earliest instant, in seq order. Events scheduled for the current
	// instant while the batch is live are appended directly (seq is
	// monotonic, so append preserves order), skipping the wheel.
	batch   []*event
	batchAt time.Duration

	// pool is the event free list. Dispatched events are cleared and
	// recycled here, so steady-state scheduling allocates nothing.
	pool []*event

	// schedHooks run at every scheduling point in Run (before a thread is
	// resumed or a timed event dispatched). Observability probes hang off
	// them; with none installed the cost is a single length check.
	schedHooks []*schedHook

	// stopped is set by Stop to abort Run at the next scheduling point.
	stopped bool

	// pacer, when set, gates every virtual-clock advance (see Pacer).
	pacer Pacer
}

// PacerIdle is the Advance argument when the kernel has live threads
// but no pending events: only an external wake can make progress.
const PacerIdle = time.Duration(-1)

// Pacer gates virtual-clock advancement, the hook parallel replay uses
// to keep one kernel's clock from outrunning its peers. Advance is
// called in kernel context (the Run goroutine) just before the clock
// would move forward to next — never for events at the current instant
// — and with next == PacerIdle when the kernel is out of work but
// threads remain blocked. It may block the kernel, and it may inject
// work (At, Unpark, Timer.Reset) before returning. Returning true tells
// the kernel to re-plan: pending events are pushed back into the wheel
// and the loop re-selects the earliest instant, picking up anything the
// pacer injected. Returning false lets the kernel proceed: dispatch the
// pending instant, or — after PacerIdle — declare deadlock.
type Pacer interface {
	Advance(next time.Duration) bool
}

// SetPacer installs (or, with nil, removes) the kernel's pacer.
func (k *Kernel) SetPacer(p Pacer) { k.pacer = p }

// schedHook wraps a hook function so AddSchedHook can identify it for
// removal (func values are not comparable).
type schedHook struct{ fn func() }

// AddSchedHook installs fn to run at every scheduling point of Run: just
// before a thread is resumed or a timed event is dispatched. Hooks are
// for sampling probes (run-queue depth, device state) and must not block
// or spawn. The returned func removes the hook; removing during Run takes
// effect at the next scheduling point.
func (k *Kernel) AddSchedHook(fn func()) (remove func()) {
	h := &schedHook{fn: fn}
	k.schedHooks = append(k.schedHooks, h)
	return func() {
		for i, cand := range k.schedHooks {
			if cand == h {
				k.schedHooks = append(k.schedHooks[:i], k.schedHooks[i+1:]...)
				return
			}
		}
	}
}

// RunqLen reports the number of runnable (queued, not running) threads.
func (k *Kernel) RunqLen() int { return len(k.runq) }

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{yielded: make(chan struct{})}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Live returns the number of spawned threads that have not finished.
func (k *Kernel) Live() int { return k.live }

// newEvent takes an event from the pool (or allocates one) and stamps
// it with the clamped time and the next FIFO sequence number.
func (k *Kernel) newEvent(at time.Duration) *event {
	if at < k.now {
		at = k.now
	}
	var e *event
	if n := len(k.pool); n > 0 {
		e = k.pool[n-1]
		k.pool[n-1] = nil
		k.pool = k.pool[:n-1]
	} else {
		e = &event{}
	}
	k.eseq++
	e.at = at
	e.seq = k.eseq
	return e
}

// release clears an event's operands and returns it to the pool.
func (k *Kernel) release(e *event) {
	e.th = nil
	e.fn = nil
	e.c = nil
	e.tm = nil
	e.tag = 0
	k.pool = append(k.pool, e)
}

// enqueue files a stamped event: onto the live instant batch when it is
// due at the instant currently being dispatched (append keeps seq
// order), otherwise into the wheel.
func (k *Kernel) enqueue(e *event) {
	if len(k.batch) > 0 && e.at == k.batchAt {
		k.batch = append(k.batch, e)
		return
	}
	k.wheel.insert(e)
}

// pending reports the number of undispatched timed events.
func (k *Kernel) pending() int { return k.wheel.n + len(k.batch) }

// At schedules fn to run in kernel context at absolute virtual time at.
// Scheduling in the past (at < Now) runs the event at the current time.
func (k *Kernel) At(at time.Duration, fn func()) {
	e := k.newEvent(at)
	e.op = opFunc
	e.fn = fn
	k.enqueue(e)
}

// After schedules fn to run in kernel context d from now.
func (k *Kernel) After(d time.Duration, fn func()) {
	k.At(k.now+d, fn)
}

// AfterComplete schedules c.Complete(tag) to run in kernel context d
// from now. It is the allocation-free completion path: the event is
// pooled and carries only the opcode and operand words, no closure.
func (k *Kernel) AfterComplete(d time.Duration, c Completer, tag uint64) {
	e := k.newEvent(k.now + d)
	e.op = opComplete
	e.c = c
	e.tag = tag
	k.enqueue(e)
}

// Spawn creates a new simulated thread running fn and places it at the
// back of the run queue. It may be called before Run or from within any
// thread or event.
func (k *Kernel) Spawn(name string, fn func(t *Thread)) *Thread {
	k.nextID++
	t := &Thread{
		k:      k,
		id:     k.nextID,
		name:   name,
		state:  StateRunnable,
		resume: make(chan struct{}),
	}
	k.live++
	k.threads = append(k.threads, t)
	go func() {
		<-t.resume
		fn(t)
		t.state = StateDone
		k.live--
		k.switchFrom()
	}()
	k.runq = append(k.runq, t)
	return t
}

// Stop aborts Run at the next scheduling point. Blocked threads are
// abandoned (their goroutines leak until process exit); Stop is intended
// for error paths and tests, not normal completion.
func (k *Kernel) Stop() { k.stopped = true }

// DeadlockError reports that live threads remain but nothing is runnable
// and no timed event can wake them.
type DeadlockError struct {
	Now     time.Duration
	Blocked []string // "name(id): reason" for each blocked thread
}

// Error implements the error interface.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d thread(s) blocked: %s",
		e.Now, len(e.Blocked), strings.Join(e.Blocked, "; "))
}

// Run executes the simulation until all threads have finished and the
// event queue is empty, or until deadlock. It returns a *DeadlockError if
// live threads remain blocked with no pending events, and nil otherwise.
//
// Scheduling points: with sched hooks installed, every thread switch
// routes through this loop and the hooks run before each resume or
// event dispatch, exactly as before the direct-handoff fast path
// existed. With no hooks, threads hand off to each other directly (see
// switchFrom) and the loop only regains control when the run queue
// drains, so the disabled-hook cost at each switch is a single length
// check in switchFrom.
func (k *Kernel) Run() error {
	for !k.stopped {
		if len(k.schedHooks) > 0 {
			for _, h := range k.schedHooks {
				h.fn()
			}
		}
		if len(k.runq) > 0 {
			t := k.runq[0]
			copy(k.runq, k.runq[1:])
			k.runq = k.runq[:len(k.runq)-1]
			k.current = t
			t.state = StateRunning
			t.resume <- struct{}{}
			// Control returns here only after the resumed thread — or a
			// chain of direct handoffs it started — reverts to the
			// kernel (run queue empty, hooks installed, or Stop).
			<-k.yielded
			continue
		}
		if len(k.batch) > 0 || k.wheel.n > 0 {
			if len(k.batch) == 0 {
				k.wheel.expire(&k.batch)
				k.batchAt = k.batch[0].at
				if k.pacer != nil && k.batchAt > k.now && k.pacer.Advance(k.batchAt) {
					// The pacer injected work; push the expired instant
					// back and re-select the earliest event. Injections at
					// batchAt landed in the live batch and are reinserted
					// with it.
					for i, e := range k.batch {
						k.wheel.insert(e)
						k.batch[i] = nil
					}
					k.batch = k.batch[:0]
					continue
				}
			}
			e := k.batch[0]
			copy(k.batch, k.batch[1:])
			k.batch[len(k.batch)-1] = nil
			k.batch = k.batch[:len(k.batch)-1]
			k.now = e.at
			k.dispatch(e)
			continue
		}
		if k.live > 0 {
			if k.pacer != nil && k.pacer.Advance(PacerIdle) {
				continue
			}
			var blocked []string
			for _, t := range k.threads {
				if t.state == StateBlocked {
					blocked = append(blocked, fmt.Sprintf("%s(%d): %s", t.name, t.id, t.BlockReason()))
				}
			}
			sort.Strings(blocked)
			return &DeadlockError{Now: k.now, Blocked: blocked}
		}
		return nil
	}
	return nil
}

// dispatch runs one expired event by opcode and recycles it. Operands
// are copied out before release so a callback can immediately reuse the
// pooled struct.
func (k *Kernel) dispatch(e *event) {
	switch e.op {
	case opWake:
		t := e.th
		k.release(e)
		k.unpark(t)
	case opFunc:
		fn := e.fn
		k.release(e)
		fn()
	case opComplete:
		c, tag := e.c, e.tag
		k.release(e)
		c.Complete(tag)
	case opTimer:
		tm := e.tm
		if tm.ev != e {
			// Stopped or re-armed since this expiry was scheduled.
			k.release(e)
			return
		}
		tm.ev = nil
		k.release(e)
		tm.fn()
	default:
		panic(fmt.Sprintf("sim: unknown event opcode %d", e.op))
	}
}

// switchFrom hands the CPU off on behalf of the goroutine of the thread
// that is giving it up (block, yield, or exit). Fast path: with no
// sched hooks and no Stop pending, the next runnable thread is resumed
// directly, thread to thread, halving the goroutine switches per
// context switch. Slow path: control reverts to the kernel's Run loop.
func (k *Kernel) switchFrom() {
	if len(k.schedHooks) == 0 && !k.stopped && len(k.runq) > 0 {
		next := k.runq[0]
		copy(k.runq, k.runq[1:])
		k.runq = k.runq[:len(k.runq)-1]
		k.current = next
		next.state = StateRunning
		next.resume <- struct{}{}
		return
	}
	k.current = nil
	k.yielded <- struct{}{}
}

// block parks the calling thread with a reason and hands control to the
// kernel; it returns when the thread is next resumed.
func (t *Thread) block(reason string) {
	if t.k.current != t {
		panic(fmt.Sprintf("sim: thread %q blocking while not current", t.name))
	}
	t.state = StateBlocked
	t.blockReason = reason
	t.k.switchFrom()
	<-t.resume
	t.blockReason = ""
}

// blockf is block with a lazily-rendered reason: reasonf runs only if a
// deadlock report (or BlockReason) actually needs the description.
func (t *Thread) blockf(reasonf func() string) {
	if t.k.current != t {
		panic(fmt.Sprintf("sim: thread %q blocking while not current", t.name))
	}
	t.state = StateBlocked
	t.blockReasonf = reasonf
	t.k.switchFrom()
	<-t.resume
	t.blockReasonf = nil
}

// unpark moves a blocked thread to the back of the run queue. It is a
// no-op for threads that are not blocked.
func (k *Kernel) unpark(t *Thread) {
	if t.state != StateBlocked {
		return
	}
	t.state = StateRunnable
	k.runq = append(k.runq, t)
}

// Yield moves the calling thread to the back of the run queue, letting
// other runnable threads (but not the clock) make progress first.
func (t *Thread) Yield() {
	k := t.k
	if len(k.schedHooks) == 0 && !k.stopped && len(k.runq) == 0 {
		// Sole runnable thread: requeueing and switching would resume
		// it immediately, so just keep running. Indistinguishable from
		// the slow path except that no (empty) hook set runs.
		return
	}
	t.state = StateRunnable
	k.runq = append(k.runq, t)
	k.switchFrom()
	<-t.resume
}

// Sleep blocks the calling thread for d of virtual time. Negative or zero
// durations yield without advancing the clock.
func (t *Thread) Sleep(d time.Duration) {
	if d <= 0 {
		t.Yield()
		return
	}
	// The wake is a tagged pooled event (opWake), not a closure: the
	// hottest event in the simulator allocates nothing.
	k := t.k
	e := k.newEvent(k.now + d)
	e.op = opWake
	e.th = t
	k.enqueue(e)
	// A sleeping thread always has a pending wake event, so its reason
	// can never appear in a deadlock report; a constant avoids a
	// fmt.Sprintf on every simulated sleep.
	t.block("sleeping")
}

// Park blocks the calling thread until another thread or event calls
// Unpark on it. The reason string appears in deadlock reports.
func (t *Thread) Park(reason string) {
	t.block(reason)
}

// ParkFn is Park with a lazily-rendered reason: reasonf runs only if a
// deadlock report (or BlockReason) actually needs the description, so
// hot paths can park without formatting a string.
func (t *Thread) ParkFn(reasonf func() string) {
	t.blockf(reasonf)
}

// Unpark makes a parked thread runnable. Calling it on a thread that is
// not blocked is a no-op.
func (k *Kernel) Unpark(t *Thread) { k.unpark(t) }

// Cond is a condition variable for simulated threads. Unlike sync.Cond it
// needs no external mutex: the simulation is single-threaded, so checking
// a predicate and calling Wait is atomic with respect to other sim
// threads.
type Cond struct {
	k       *Kernel
	waiters []*Thread
}

// NewCond returns a condition variable bound to k.
func NewCond(k *Kernel) *Cond { return &Cond{k: k} }

// Wait blocks t until Signal or Broadcast. As with sync.Cond, callers
// should re-check their predicate in a loop.
func (c *Cond) Wait(t *Thread, reason string) {
	c.waiters = append(c.waiters, t)
	t.block(reason)
}

// WaitFn is Wait with a lazily-rendered reason: reasonf runs only if a
// deadlock report needs the description, so satisfied-fast wait loops
// allocate nothing for it.
func (c *Cond) WaitFn(t *Thread, reasonf func() string) {
	c.waiters = append(c.waiters, t)
	t.blockf(reasonf)
}

// Signal wakes the longest-waiting thread, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	t := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	c.k.unpark(t)
}

// Broadcast wakes all waiting threads in wait order.
func (c *Cond) Broadcast() {
	for _, t := range c.waiters {
		c.k.unpark(t)
	}
	c.waiters = c.waiters[:0]
}

// Waiters returns the number of threads currently waiting.
func (c *Cond) Waiters() int { return len(c.waiters) }

// WaitGroup counts outstanding work items, like sync.WaitGroup but for
// simulated threads.
type WaitGroup struct {
	k    *Kernel
	n    int
	cond *Cond
}

// NewWaitGroup returns a WaitGroup bound to k.
func NewWaitGroup(k *Kernel) *WaitGroup {
	return &WaitGroup{k: k, cond: NewCond(k)}
}

// Add adds delta to the counter. It panics if the counter goes negative.
func (w *WaitGroup) Add(delta int) {
	w.n += delta
	if w.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.n == 0 {
		w.cond.Broadcast()
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks t until the counter reaches zero.
func (w *WaitGroup) Wait(t *Thread) {
	for w.n > 0 {
		w.cond.WaitFn(t, func() string { return fmt.Sprintf("waitgroup (%d remaining)", w.n) })
	}
}

// Semaphore is a counting semaphore for simulated threads.
type Semaphore struct {
	k     *Kernel
	avail int
	cond  *Cond
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(k *Kernel, n int) *Semaphore {
	return &Semaphore{k: k, avail: n, cond: NewCond(k)}
}

// Acquire blocks t until a permit is available, then takes it.
func (s *Semaphore) Acquire(t *Thread) {
	for s.avail == 0 {
		s.cond.Wait(t, "semaphore")
	}
	s.avail--
}

// TryAcquire takes a permit if one is available, reporting whether it did.
func (s *Semaphore) TryAcquire() bool {
	if s.avail == 0 {
		return false
	}
	s.avail--
	return true
}

// Release returns a permit and wakes one waiter.
func (s *Semaphore) Release() {
	s.avail++
	s.cond.Signal()
}

// Chan is a bounded FIFO channel between simulated threads. A capacity of
// zero makes sends rendezvous with receives.
type Chan[T any] struct {
	k        *Kernel
	cap      int
	buf      []T
	closed   bool
	sendCond *Cond
	recvCond *Cond
}

// NewChan returns a channel with the given buffer capacity.
func NewChan[T any](k *Kernel, capacity int) *Chan[T] {
	return &Chan[T]{k: k, cap: capacity, sendCond: NewCond(k), recvCond: NewCond(k)}
}

// Send enqueues v, blocking while the buffer is full. Sending on a closed
// channel panics.
func (c *Chan[T]) Send(t *Thread, v T) {
	for !c.closed && c.cap > 0 && len(c.buf) >= c.cap {
		c.sendCond.Wait(t, "chan send (full)")
	}
	if c.closed {
		panic("sim: send on closed Chan")
	}
	c.buf = append(c.buf, v)
	c.recvCond.Signal()
	if c.cap == 0 {
		// Rendezvous: wait until a receiver takes the value.
		for len(c.buf) > 0 && !c.closed {
			c.sendCond.Wait(t, "chan send (rendezvous)")
		}
	}
}

// Recv dequeues a value, blocking while the channel is empty. The second
// result is false if the channel is closed and drained.
func (c *Chan[T]) Recv(t *Thread) (T, bool) {
	for len(c.buf) == 0 && !c.closed {
		c.recvCond.Wait(t, "chan recv (empty)")
	}
	if len(c.buf) == 0 {
		var zero T
		return zero, false
	}
	v := c.buf[0]
	copy(c.buf, c.buf[1:])
	c.buf = c.buf[:len(c.buf)-1]
	c.sendCond.Signal()
	return v, true
}

// Len returns the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Close marks the channel closed, waking all waiters.
func (c *Chan[T]) Close() {
	c.closed = true
	c.sendCond.Broadcast()
	c.recvCond.Broadcast()
}
