package sim_test

import (
	"testing"

	"rootreplay/internal/sim/simbench"
)

// The benchmark bodies live in simbench so cmd/perfstat can run the
// same code and report the numbers in BENCH JSON.

func BenchmarkKernelTimerChurn(b *testing.B)      { simbench.TimerChurn(b) }
func BenchmarkKernelSleepChurn(b *testing.B)      { simbench.SleepChurn(b) }
func BenchmarkKernelPingPong(b *testing.B)        { simbench.PingPong(b) }
func BenchmarkKernelCompletionStorm(b *testing.B) { simbench.CompletionStorm(b) }
