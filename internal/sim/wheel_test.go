package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// oracleHeap is the kernel's former container/heap event queue, kept
// verbatim as the test oracle: the wheel must dequeue in exactly this
// order for every insert sequence.
type oracleHeap []*event

func (h oracleHeap) Len() int { return len(h) }
func (h oracleHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h oracleHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *oracleHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *oracleHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// randomAt draws an insert time at or after now, weighted to exercise
// every wheel path: same-instant ties, sub-tick offsets, level-0 and
// level-1 distances, and far times beyond the wheel horizon that land
// in the overflow heap and later cascade in.
func randomAt(r *rand.Rand, now time.Duration) time.Duration {
	switch r.Intn(10) {
	case 0, 1:
		return now // same-instant burst
	case 2:
		return now + time.Duration(r.Int63n(1<<wheelShift)) // same tick or next
	case 3, 4, 5:
		return now + time.Duration(r.Int63n(int64(wheelSlots)<<wheelShift)) // level 0
	case 6, 7:
		return now + time.Duration(r.Int63n(int64(wheelSpan)<<wheelShift)) // level 1
	case 8:
		return now + time.Duration(int64(wheelSpan)<<wheelShift) +
			time.Duration(r.Int63n(int64(wheelSpan)<<wheelShift)) // overflow
	default:
		// Far jump: empty stretches force multi-slot advances.
		return now + time.Duration(r.Int63n(int64(8*wheelSpan)<<wheelShift))
	}
}

// TestWheelMatchesHeapOracle drives a wheel and the old heap with the
// same randomized insert/expire sequence and requires identical dequeue
// order — the determinism contract of the replacement.
func TestWheelMatchesHeapOracle(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 12345, 987654321} {
		r := rand.New(rand.NewSource(seed))
		var w wheel
		var h oracleHeap
		var seq uint64
		now := time.Duration(0)
		var batch []*event

		expireOne := func() {
			batch = batch[:0]
			if !w.expire(&batch) {
				if len(h) != 0 {
					t.Fatalf("seed %d: wheel empty, oracle has %d", seed, len(h))
				}
				return
			}
			now = batch[0].at
			for _, e := range batch {
				if len(h) == 0 {
					t.Fatalf("seed %d: wheel produced %v/%d, oracle empty", seed, e.at, e.seq)
				}
				want := heap.Pop(&h).(*event)
				if e.at != want.at || e.seq != want.seq {
					t.Fatalf("seed %d: wheel dequeued (%v, %d), oracle (%v, %d)",
						seed, e.at, e.seq, want.at, want.seq)
				}
				if e.at != now {
					t.Fatalf("seed %d: batch mixes instants %v and %v", seed, now, e.at)
				}
			}
		}

		for op := 0; op < 20000; op++ {
			if w.n == 0 || r.Intn(3) != 0 {
				// Insert a burst of 1–4 events; bursts create the
				// same-instant ties the seq tie-break exists for.
				burst := 1 + r.Intn(4)
				at := randomAt(r, now)
				for i := 0; i < burst; i++ {
					e := &event{at: at, seq: seq}
					seq++
					w.insert(e)
					heap.Push(&h, e)
				}
			} else {
				expireOne()
			}
		}
		for w.n > 0 {
			expireOne()
		}
		if len(h) != 0 {
			t.Fatalf("seed %d: drained wheel but oracle holds %d events", seed, len(h))
		}
	}
}

// BenchmarkOracleHeapTimerChurn reproduces the pre-wheel kernel's cost
// model — container/heap plus a fresh event and closure per schedule —
// on the same churn pattern as simbench.TimerChurn, so the allocs/op
// delta in BENCH JSON has an in-tree baseline.
func BenchmarkOracleHeapTimerChurn(b *testing.B) {
	b.ReportAllocs()
	offsets := [...]time.Duration{
		3 * time.Microsecond,
		170 * time.Microsecond,
		1100 * time.Microsecond,
		47 * time.Millisecond,
		400 * time.Millisecond,
	}
	var h oracleHeap
	var seq uint64
	now := time.Duration(0)
	n := 0
	push := func(d time.Duration) {
		local := now
		e := &event{at: now + d, seq: seq, op: opFunc, fn: func() { _ = local }}
		seq++
		heap.Push(&h, e)
	}
	b.ResetTimer()
	for i := 0; i < 64; i++ {
		push(offsets[i%len(offsets)])
	}
	for len(h) > 0 {
		e := heap.Pop(&h).(*event)
		now = e.at
		e.fn()
		if n < b.N {
			n++
			push(offsets[n%len(offsets)])
		}
	}
}

// TestKernelEventOrderOracle checks the full kernel path: events
// scheduled through At fire in (at, seq) order even when scheduling
// happens from inside callbacks, which inserts into the live window and
// appends to in-flight same-instant batches.
func TestKernelEventOrderOracle(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	k := NewKernel()
	type stamp struct {
		at time.Duration
		id int
	}
	var got []stamp
	var want []stamp
	id := 0
	var schedule func(depth int)
	schedule = func(depth int) {
		n := 2 + r.Intn(6)
		for i := 0; i < n; i++ {
			at := k.Now() + time.Duration(r.Int63n(int64(2*wheelSpan)<<wheelShift))
			if r.Intn(4) == 0 {
				at = k.Now() // same-instant reentry
			}
			myID := id
			id++
			want = append(want, stamp{at, myID})
			k.At(at, func() {
				got = append(got, stamp{k.Now(), myID})
				if depth < 3 && r.Intn(3) == 0 {
					schedule(depth + 1)
				}
			})
		}
	}
	schedule(0)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, scheduled %d", len(got), len(want))
	}
	// The oracle order is (at, then scheduling order) — a stable sort of
	// the scheduling log by time. Events scheduled later from callbacks
	// have larger seq, and callbacks run in time order, so the log's
	// index order matches seq order.
	sorted := make([]stamp, len(want))
	copy(sorted, want)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].at < sorted[j-1].at; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for i := range got {
		if got[i].id != sorted[i].id {
			t.Fatalf("position %d: fired id %d, want id %d", i, got[i].id, sorted[i].id)
		}
		if got[i].at != sorted[i].at {
			t.Fatalf("position %d: fired at %v, want %v", i, got[i].at, sorted[i].at)
		}
	}
}

// TestTimerRandomStopReset drives one Timer with a random Reset/Stop/
// sleep sequence and checks the fires against a model replayed from the
// op log: a timer fires at its last Reset deadline iff no Stop or Reset
// intervenes before that deadline.
func TestTimerRandomStopReset(t *testing.T) {
	for _, seed := range []int64{3, 17, 2024} {
		r := rand.New(rand.NewSource(seed))
		k := NewKernel()
		var fires []time.Duration
		tm := k.NewTimer(func() { fires = append(fires, k.Now()) })

		type op struct {
			t     time.Duration // when the op executes
			reset time.Duration // deadline; 0 means Stop
		}
		var log []op
		k.Spawn("driver", func(th *Thread) {
			for i := 0; i < 300; i++ {
				switch r.Intn(3) {
				case 0, 1:
					d := time.Duration(r.Int63n(int64(5 * time.Millisecond)))
					log = append(log, op{k.Now(), k.Now() + d})
					tm.Reset(d)
				default:
					log = append(log, op{k.Now(), 0})
					tm.Stop()
				}
				th.Sleep(time.Duration(r.Int63n(int64(4 * time.Millisecond))))
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}

		var want []time.Duration
		pending := time.Duration(-1)
		for _, o := range log {
			if pending >= 0 && pending <= o.t {
				// Deadline passed before this op ran (a deadline equal to
				// the op time fires first: the wake event was scheduled
				// earlier, so it has a smaller seq than the driver's).
				want = append(want, pending)
				pending = -1
			}
			if o.reset > 0 {
				pending = o.reset
			} else {
				pending = -1
			}
		}
		if pending >= 0 {
			want = append(want, pending)
		}
		if len(fires) != len(want) {
			t.Fatalf("seed %d: %d fires, want %d\nfires: %v\nwant:  %v",
				seed, len(fires), len(want), fires, want)
		}
		for i := range fires {
			if fires[i] != want[i] {
				t.Fatalf("seed %d: fire %d at %v, want %v", seed, i, fires[i], want[i])
			}
		}
	}
}

// TestBatchWakeSharedInstant stresses many threads released at one
// instant: all wakes must happen at exactly that time, in the FIFO
// order the sleeps were scheduled, regardless of direct-handoff and
// same-instant batch extraction.
func TestBatchWakeSharedInstant(t *testing.T) {
	const n = 500
	k := NewKernel()
	target := 10 * time.Millisecond
	var order []int
	for i := 0; i < n; i++ {
		i := i
		k.Spawn("sleeper", func(th *Thread) {
			// Stagger the pre-sleep so sleep events are scheduled in
			// spawn order but from different virtual times.
			th.Sleep(time.Duration(i%7) * time.Microsecond)
			th.Sleep(target - k.Now())
			if k.Now() != target {
				t.Errorf("thread %d woke at %v, want %v", i, k.Now(), target)
			}
			order = append(order, i)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != n {
		t.Fatalf("%d threads finished, want %d", len(order), n)
	}
	// Wake order is the order the sleep-to-target events were enqueued:
	// threads run their pre-sleeps grouped by (i%7) microsecond step, in
	// spawn order within a step.
	var want []int
	for step := 0; step < 7; step++ {
		for i := 0; i < n; i++ {
			if i%7 == step {
				want = append(want, i)
			}
		}
	}
	for i := range order {
		if order[i] != want[i] {
			t.Fatalf("wake position %d: thread %d, want %d", i, order[i], want[i])
		}
	}
}
