// Package simbench holds the kernel microbenchmark bodies. They live
// outside the _test files so cmd/perfstat can run them through
// testing.Benchmark and publish the numbers in its JSON output, while
// internal/sim's benchmark tests wrap the same bodies for `go test
// -bench`.
package simbench

import (
	"testing"
	"time"

	"rootreplay/internal/sim"
)

// TimerChurn measures the event queue under sustained timer traffic:
// a fan of self-rescheduling callbacks keeps ~64 timers pending with
// mixed near/far offsets, exercising level-0, level-1, and overflow
// inserts plus window advances. This is the alloc-sensitive benchmark:
// each iteration is one schedule+dispatch round-trip.
func TimerChurn(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	offsets := [...]time.Duration{
		3 * time.Microsecond, // same level-0 slot neighborhood
		170 * time.Microsecond,
		1100 * time.Microsecond, // level 1
		47 * time.Millisecond,   // level 1, far slot
		400 * time.Millisecond,  // overflow heap
	}
	const fan = 64
	n := 0
	var tick func()
	tick = func() {
		if n >= b.N {
			return
		}
		n++
		k.After(offsets[n%len(offsets)], tick)
	}
	b.ResetTimer()
	for i := 0; i < fan; i++ {
		k.After(offsets[i%len(offsets)], tick)
	}
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// SleepChurn measures the thread wake path: one thread sleeping b.N
// times through the pooled opWake event.
func SleepChurn(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	k.Spawn("sleeper", func(t *sim.Thread) {
		for i := 0; i < b.N; i++ {
			t.Sleep(time.Duration(1+i%5) * time.Microsecond)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// PingPong measures context-switch cost: two threads handing control
// back and forth via Park/Unpark, the direct-handoff fast path.
func PingPong(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	var a, z *sim.Thread
	a = k.Spawn("ping", func(t *sim.Thread) {
		for i := 0; i < b.N; i++ {
			t.Park("ping")
			k.Unpark(z)
		}
	})
	z = k.Spawn("pong", func(t *sim.Thread) {
		for i := 0; i < b.N; i++ {
			k.Unpark(a)
			t.Park("pong")
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

type storm struct {
	k    *sim.Kernel
	left int
}

func (s *storm) Complete(tag uint64) {
	if s.left > 0 {
		s.left--
		s.k.AfterComplete(time.Duration(1+tag%3)*100*time.Microsecond, s, tag+1)
	}
}

// CompletionStorm measures the I/O completion path: a chain of pooled
// opComplete events standing in for device completions, 8 in flight.
func CompletionStorm(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	s := &storm{k: k, left: b.N}
	b.ResetTimer()
	for i := uint64(0); i < 8; i++ {
		k.AfterComplete(time.Duration(i)*time.Microsecond, s, i)
	}
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
