package sim

import (
	"math/bits"
	"sort"
	"time"
)

// Event opcodes. The kernel's hot-path callbacks (thread wakes, I/O
// completions, timer expiries) are tagged operations on a pooled event
// struct instead of captured closures, so scheduling them allocates
// nothing once the pool is warm. opFunc remains the fully general form.
const (
	opFunc uint8 = iota
	// opWake moves th to the back of the run queue (Thread.Sleep).
	opWake
	// opComplete invokes c.Complete(tag) — the I/O completion path.
	opComplete
	// opTimer fires tm if the event is still the timer's pending event;
	// a stale event (the timer was stopped or reset) is skipped.
	opTimer
)

// event is a timed entry in the kernel's pending-event structure: an
// opcode plus operand words. Events are pooled and reused; all operand
// fields are cleared on release so the pool retains nothing.
type event struct {
	at  time.Duration
	seq uint64 // FIFO tie-break for events at the same instant

	op  uint8
	th  *Thread   // opWake
	fn  func()    // opFunc
	c   Completer // opComplete
	tag uint64    // opComplete operand
	tm  *Timer    // opTimer
}

// less orders events by (at, seq) — exactly the old eventHeap order, the
// determinism contract every queue implementation here must preserve.
func (e *event) less(f *event) bool {
	if e.at != f.at {
		return e.at < f.at
	}
	return e.seq < f.seq
}

// Wheel geometry. Level 0 buckets one tick (2^wheelShift ns ≈ 4.1µs)
// per slot and covers ~1ms ahead; level 1 buckets 256 ticks per slot
// and covers ~268ms; everything farther sits in a min-heap until the
// window advances over it. The tick size straddles the simulation's
// natural event scale (SSD ≈ 200µs, HDD ≈ ms, scheduler slices ≈
// 100ms), so the common case is a level-0 or level-1 insert.
const (
	wheelShift = 12
	wheelBits  = 8
	wheelSlots = 1 << wheelBits
	wheelMask  = wheelSlots - 1
	// wheelSpan is the total tick horizon of both levels.
	wheelSpan = wheelSlots * wheelSlots
)

func wheelTick(at time.Duration) int64 { return int64(at) >> wheelShift }

// bucket holds the events of one wheel slot. Buckets are unordered
// until first expired, at which point they are sorted by (at, seq) and
// kept sorted: appends that arrive in order (the common case — seq is
// monotonic, so only a smaller at breaks order) keep the flag, anything
// else does a binary insertion.
type bucket struct {
	evs    []*event
	sorted bool
}

func (b *bucket) add(e *event) {
	if b.sorted && len(b.evs) > 0 && b.evs[len(b.evs)-1].less(e) {
		b.evs = append(b.evs, e)
		return
	}
	if b.sorted && len(b.evs) > 0 {
		i := sort.Search(len(b.evs), func(i int) bool { return e.less(b.evs[i]) })
		b.evs = append(b.evs, nil)
		copy(b.evs[i+1:], b.evs[i:])
		b.evs[i] = e
		return
	}
	b.evs = append(b.evs, e)
	if len(b.evs) == 1 {
		b.sorted = true
	}
}

func (b *bucket) ensureSorted() {
	if b.sorted {
		return
	}
	evs := b.evs
	sort.Slice(evs, func(i, j int) bool { return evs[i].less(evs[j]) })
	b.sorted = true
}

// wheel is the kernel's pending-event structure: a two-level timer
// wheel with a sorted overflow heap for far timers. Dequeue order is
// strictly (at, seq) — identical to the container/heap implementation
// it replaced — because level-0 slots cover disjoint, increasing tick
// ranges, level-1 slots cover disjoint tick ranges strictly after level
// 0's window, the heap holds only ticks at or beyond the level-1
// horizon, and each bucket is sorted by (at, seq) before events leave
// it. The property test in wheel_test.go checks this against the old
// heap as an oracle.
type wheel struct {
	n int // total pending events across all levels

	// base is the absolute tick of level-0 slot 0, always aligned to
	// wheelSlots and never beyond the earliest pending tick. It advances
	// inside expire, immediately before the kernel moves the clock to
	// the minimum event it returns — but the pacer hook sits between
	// those two points, and a paced kernel may inject an event earlier
	// than the expired batch (though never earlier than now). insert
	// detects tick(at) < base and rewinds the window, so the only
	// standing invariant is tick(at) >= tick(now).
	base int64

	l0     [wheelSlots]bucket
	l0bits [wheelSlots / 64]uint64
	l0n    int

	l1  [wheelSlots]bucket
	l1n int

	over overflowHeap
}

// insert files e by tick distance from base: level 0 within wheelSlots
// ticks, level 1 within wheelSpan, the overflow heap beyond. An event
// before base — possible only from a pacer injection between expire and
// the clock move — rewinds the window first; filing it by masked slot
// index alone would alias it onto a future rotation and dispatch it
// after later events, dragging the kernel clock backward.
func (w *wheel) insert(e *event) {
	t := wheelTick(e.at)
	if t < w.base {
		w.rewind(t)
	}
	w.n++
	switch {
	case t < w.base+wheelSlots:
		i := t & wheelMask
		w.l0[i].add(e)
		w.l0bits[i>>6] |= 1 << uint(i&63)
		w.l0n++
	case t < w.base+wheelSpan:
		w.l1[(t>>wheelBits)&wheelMask].add(e)
		w.l1n++
	default:
		w.over.push(e)
	}
}

// expire removes every pending event at the earliest instant and
// appends them, in seq order, to *batch. It reports false when no
// events remain. The kernel dispatches the batch one event at a time,
// re-checking the run queue in between, so batching changes only the
// extraction cost, never the dispatch order.
func (w *wheel) expire(batch *[]*event) bool {
	if w.n == 0 {
		return false
	}
	for w.l0n == 0 {
		w.advance()
	}
	// The earliest event is in the first non-empty level-0 slot: slots
	// are monotone in tick because base is wheelSlots-aligned.
	i := w.firstL0()
	b := &w.l0[i]
	b.ensureSorted()
	at := b.evs[0].at
	cut := 1
	for cut < len(b.evs) && b.evs[cut].at == at {
		cut++
	}
	*batch = append(*batch, b.evs[:cut]...)
	rest := copy(b.evs, b.evs[cut:])
	for j := rest; j < len(b.evs); j++ {
		b.evs[j] = nil
	}
	b.evs = b.evs[:rest]
	if rest == 0 {
		b.sorted = false
		w.l0bits[i>>6] &^= 1 << uint(i&63)
	}
	w.l0n -= cut
	w.n -= cut
	return true
}

// firstL0 returns the index of the first non-empty level-0 slot.
func (w *wheel) firstL0() int64 {
	for wi, word := range w.l0bits {
		if word != 0 {
			return int64(wi<<6) + int64(bits.TrailingZeros64(word))
		}
	}
	panic("sim: wheel level-0 bitmap empty with l0n > 0")
}

// rewind lowers the window so tick t heads it again, refiling every
// leveled event against the new base. The kernel's clock still trails
// t — only expire's look-ahead moved base — so dequeue order is
// preserved. Overflow-heap events need no refiling: they carry absolute
// times and advance drains them against whatever base is current. Rare
// (one paced injection behind an expired batch), so the O(pending)
// rebuild does not show up in steady-state scheduling.
func (w *wheel) rewind(t int64) {
	var evs []*event
	if w.l0n > 0 {
		for i := range w.l0 {
			evs = append(evs, w.l0[i].evs...)
			for j := range w.l0[i].evs {
				w.l0[i].evs[j] = nil
			}
			w.l0[i].evs = w.l0[i].evs[:0]
			w.l0[i].sorted = false
		}
		for i := range w.l0bits {
			w.l0bits[i] = 0
		}
		w.l0n = 0
	}
	if w.l1n > 0 {
		for i := range w.l1 {
			evs = append(evs, w.l1[i].evs...)
			for j := range w.l1[i].evs {
				w.l1[i].evs[j] = nil
			}
			w.l1[i].evs = w.l1[i].evs[:0]
			w.l1[i].sorted = false
		}
		w.l1n = 0
	}
	w.base = t &^ wheelMask
	w.n -= len(evs)
	for _, e := range evs {
		w.insert(e)
	}
}

// advance moves the window forward when level 0 has drained: it picks
// the earlier of the next non-empty level-1 slot and the overflow
// heap's minimum as the new base, scatters that level-1 slot into level
// 0 if it starts the new window, and drains newly in-horizon overflow
// events into the levels. base increases strictly, so repeated calls
// terminate.
func (w *wheel) advance() {
	if w.l1n == 0 && w.over.n() == 0 {
		panic("sim: wheel advance with nothing pending")
	}
	const maxTick = int64(1)<<62 - 1
	newBase := int64(maxTick)
	jabs := int64(-1) // absolute level-1 slot index of the next slot
	if w.l1n > 0 {
		// Ring scan: window slots start just after base's own level-1
		// slot and wrap; distance from the cursor recovers absolute
		// order.
		cur := w.base >> wheelBits
		for d := int64(1); d <= wheelMask; d++ {
			if len(w.l1[(cur+d)&wheelMask].evs) > 0 {
				jabs = cur + d
				newBase = jabs << wheelBits
				break
			}
		}
		if jabs < 0 {
			panic("sim: wheel level-1 scan found nothing with l1n > 0")
		}
	}
	if w.over.n() > 0 {
		if mb := wheelTick(w.over.min().at) &^ wheelMask; mb < newBase {
			newBase = mb
		}
	}
	w.base = newBase
	if jabs >= 0 && jabs<<wheelBits == newBase {
		// The next level-1 slot starts the new window: cascade it down.
		b := &w.l1[jabs&wheelMask]
		for _, e := range b.evs {
			i := wheelTick(e.at) & wheelMask
			w.l0[i].add(e)
			w.l0bits[i>>6] |= 1 << uint(i&63)
		}
		moved := len(b.evs)
		for j := range b.evs {
			b.evs[j] = nil
		}
		b.evs = b.evs[:0]
		b.sorted = false
		w.l0n += moved
		w.l1n -= moved
	}
	for w.over.n() > 0 && wheelTick(w.over.min().at) < w.base+wheelSpan {
		e := w.over.pop()
		t := wheelTick(e.at)
		if t < w.base+wheelSlots {
			i := t & wheelMask
			w.l0[i].add(e)
			w.l0bits[i>>6] |= 1 << uint(i&63)
			w.l0n++
		} else {
			w.l1[(t>>wheelBits)&wheelMask].add(e)
			w.l1n++
		}
	}
}

// overflowHeap is a plain binary min-heap of events ordered by
// (at, seq), holding timers beyond the wheel horizon. It avoids
// container/heap so pushes and pops stay interface-free.
type overflowHeap struct {
	evs []*event
}

func (h *overflowHeap) n() int      { return len(h.evs) }
func (h *overflowHeap) min() *event { return h.evs[0] }

func (h *overflowHeap) push(e *event) {
	h.evs = append(h.evs, e)
	i := len(h.evs) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.evs[i].less(h.evs[p]) {
			break
		}
		h.evs[i], h.evs[p] = h.evs[p], h.evs[i]
		i = p
	}
}

func (h *overflowHeap) pop() *event {
	e := h.evs[0]
	last := len(h.evs) - 1
	h.evs[0] = h.evs[last]
	h.evs[last] = nil
	h.evs = h.evs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(h.evs) && h.evs[l].less(h.evs[s]) {
			s = l
		}
		if r < len(h.evs) && h.evs[r].less(h.evs[s]) {
			s = r
		}
		if s == i {
			break
		}
		h.evs[i], h.evs[s] = h.evs[s], h.evs[i]
		i = s
	}
	return e
}
