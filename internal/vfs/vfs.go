// Package vfs is an in-memory model of a UNIX file-system namespace.
//
// It implements exact POSIX path semantics — directories, regular files,
// symbolic links (including dangling ones), hard links, renames of files
// and whole directory subtrees, unlink-while-open, and extended
// attributes — without storing file contents: files carry sizes only, as
// in ARTC's initial snapshots ("it is unnecessary to record actual file
// contents").
//
// Two layers of the reproduction share this model:
//
//   - the ARTC compiler replays a trace against a vfs.FS symbolically to
//     infer which file a path or descriptor refers to at each point in
//     the trace (symlink-aware path→file resolution, §4.2 "Files"), and
//   - the simulated OS stack (internal/stack) uses a vfs.FS as the
//     metadata store of its file system.
//
// vfs has no notion of time; timing belongs to internal/stack.
package vfs

import (
	"fmt"
	"sort"
	"strings"
)

// Ino identifies an inode. Values are never reused within an FS, so an
// Ino denotes the same file object for the life of a trace.
type Ino uint64

// FileType is the type of an inode.
type FileType int

const (
	// TypeRegular is a plain data file.
	TypeRegular FileType = iota
	// TypeDir is a directory.
	TypeDir
	// TypeSymlink is a symbolic link.
	TypeSymlink
	// TypeSpecial covers device nodes, FIFOs and sockets, which ARTC
	// treats as opaque endpoints (e.g. /dev/random).
	TypeSpecial
)

// String names the file type.
func (t FileType) String() string {
	switch t {
	case TypeRegular:
		return "regular"
	case TypeDir:
		return "dir"
	case TypeSymlink:
		return "symlink"
	case TypeSpecial:
		return "special"
	default:
		return fmt.Sprintf("FileType(%d)", int(t))
	}
}

// MaxSymlinkDepth bounds symlink chain traversal, mirroring Linux's 40.
const MaxSymlinkDepth = 40

// Inode is a file object. Directory inodes track children; symlinks hold
// a target path; regular files have sizes but no contents.
type Inode struct {
	Ino    Ino
	Type   FileType
	Size   int64
	Mode   uint32
	Nlink  int
	Xattrs map[string][]byte

	// Target is the link target for TypeSymlink.
	Target string

	// children and parent maintain the directory tree. Only directories
	// have children; every directory except the root has a parent.
	children map[string]*Inode
	parent   *Inode

	// Sys holds layer-private data, such as block placement assigned by
	// the simulated storage stack. vfs never touches it.
	Sys any
}

// IsDir reports whether the inode is a directory.
func (ino *Inode) IsDir() bool { return ino.Type == TypeDir }

// Children returns the names in a directory, sorted. It returns nil for
// non-directories.
func (ino *Inode) Children() []string {
	if ino.Type != TypeDir {
		return nil
	}
	names := make([]string, 0, len(ino.children))
	for n := range ino.children {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the named child of a directory inode, or nil.
func (ino *Inode) Lookup(name string) *Inode {
	if ino.Type != TypeDir {
		return nil
	}
	return ino.children[name]
}

// FS is an in-memory file-system tree rooted at "/".
type FS struct {
	root    *Inode
	nextIno Ino

	// onFree, if set, is invoked when an inode's link count reaches zero
	// and vfs forgets it. The storage stack uses it to release block
	// placement. Note the stack may delay the call while descriptors
	// remain open; see FS.Release.
	onFree func(*Inode)

	// resCache memoizes successful absolute-path Resolve walks. Trace
	// analysis resolves the same canonical paths over and over (every
	// stat-like call resolves its path and its parent directory), so a
	// hit skips the component walk entirely. The cache is valid only
	// while the namespace is unchanged: every mutation of name→inode
	// bindings bumps nsGen (see mutated), and a cache whose cacheGen
	// lags nsGen is discarded wholesale rather than invalidated entry
	// by entry — symlinks make precise invalidation global anyway.
	resCache map[string]*Inode
	nsGen    uint64
	cacheGen uint64
}

// resCacheMax bounds the resolve cache; when full it is reset rather
// than evicted (trace working sets either fit or churn).
const resCacheMax = 4096

// mutated notes a change to the namespace (any edit of name→inode
// bindings, including symlink creation), invalidating the resolve
// cache. Size/mode/xattr changes do not affect resolution and do not
// bump.
func (fs *FS) mutated() { fs.nsGen++ }

// New returns an empty file system containing only the root directory.
func New() *FS {
	fs := &FS{}
	fs.root = fs.newInode(TypeDir, 0o755)
	fs.root.parent = fs.root
	fs.root.Nlink = 2
	return fs
}

// OnFree registers fn to run when an inode is fully unlinked.
func (fs *FS) OnFree(fn func(*Inode)) { fs.onFree = fn }

// Root returns the root directory inode.
func (fs *FS) Root() *Inode { return fs.root }

func (fs *FS) newInode(t FileType, mode uint32) *Inode {
	fs.nextIno++
	ino := &Inode{Ino: fs.nextIno, Type: t, Mode: mode, Nlink: 1}
	if t == TypeDir {
		ino.children = make(map[string]*Inode)
		ino.Nlink = 2 // "." and the parent entry
	}
	return ino
}

// splitPath breaks a path into components, ignoring empty ones. It
// reports whether the path was absolute.
func splitPath(path string) (parts []string, absolute bool) {
	absolute = strings.HasPrefix(path, "/")
	for _, c := range strings.Split(path, "/") {
		if c == "" {
			continue
		}
		parts = append(parts, c)
	}
	return parts, absolute
}

// resolution carries the result of a path walk.
type resolution struct {
	inode  *Inode // the resolved inode; nil if the final component is missing
	parent *Inode // directory that does/would contain the final component
	name   string // final component name ("" if path is "/")
}

// walk resolves path starting from base (nil means root). If followLast
// is false a trailing symlink is returned rather than followed.
func (fs *FS) walk(base *Inode, path string, followLast bool, depth int) (resolution, Errno) {
	if depth > MaxSymlinkDepth {
		return resolution{}, ELOOP
	}
	if path == "" {
		return resolution{}, ENOENT
	}
	cur := base
	if path[0] == '/' || cur == nil {
		cur = fs.root
	}
	// Walk the components in place (substrings of path) rather than
	// materializing a []string per resolution: walk is the hottest loop
	// in both analysis and replay.
	i := 0
	for i < len(path) && path[i] == '/' {
		i++
	}
	if i == len(path) {
		return resolution{inode: cur, parent: cur.parent, name: ""}, OK
	}
	for {
		j := i
		for j < len(path) && path[j] != '/' {
			j++
		}
		part := path[i:j]
		k := j
		for k < len(path) && path[k] == '/' {
			k++
		}
		last := k == len(path)
		if cur.Type != TypeDir {
			return resolution{}, ENOTDIR
		}
		var next *Inode
		switch part {
		case ".":
			next = cur
		case "..":
			next = cur.parent
		default:
			next = cur.children[part]
		}
		if next == nil {
			if last {
				return resolution{parent: cur, name: part}, OK
			}
			return resolution{}, ENOENT
		}
		if next.Type == TypeSymlink && (!last || followLast) {
			target := next.Target
			res, err := fs.walk(cur, target, true, depth+1)
			if err != OK {
				if last && err == ENOENT && res.parent == nil {
					// Dangling link mid-target: report ENOENT.
					return resolution{}, ENOENT
				}
				return res, err
			}
			if res.inode == nil {
				// Dangling symlink. For the final component this surfaces
				// as a missing entry at the link target's location.
				if last {
					return res, OK
				}
				return resolution{}, ENOENT
			}
			next = res.inode
		}
		if last {
			if part == "." || part == ".." {
				return resolution{inode: next, parent: next.parent, name: ""}, OK
			}
			return resolution{inode: next, parent: cur, name: part}, OK
		}
		cur = next
		i = k
	}
}

// Resolve looks up path from base (nil = root), following symlinks
// including one in the final component. It returns the inode or ENOENT.
// Successful absolute-path lookups from the root are served from the
// resolve cache while the namespace is unchanged.
func (fs *FS) Resolve(base *Inode, path string) (*Inode, Errno) {
	cacheable := base == nil && len(path) > 0 && path[0] == '/'
	if cacheable && fs.cacheGen == fs.nsGen {
		if ino, ok := fs.resCache[path]; ok {
			return ino, OK
		}
	}
	res, err := fs.walk(base, path, true, 0)
	if err != OK {
		return nil, err
	}
	if res.inode == nil {
		return nil, ENOENT
	}
	if cacheable {
		if fs.resCache == nil {
			fs.resCache = make(map[string]*Inode, 256)
		} else if fs.cacheGen != fs.nsGen || len(fs.resCache) >= resCacheMax {
			clear(fs.resCache)
		}
		fs.cacheGen = fs.nsGen
		fs.resCache[path] = res.inode
	}
	return res.inode, OK
}

// ResolveNoFollow is Resolve but does not follow a symlink in the final
// component (lstat semantics).
func (fs *FS) ResolveNoFollow(base *Inode, path string) (*Inode, Errno) {
	res, err := fs.walk(base, path, false, 0)
	if err != OK {
		return nil, err
	}
	if res.inode == nil {
		return nil, ENOENT
	}
	return res.inode, OK
}

// Mkdir creates a directory at path.
func (fs *FS) Mkdir(base *Inode, path string, mode uint32) (*Inode, Errno) {
	res, err := fs.walk(base, path, false, 0)
	if err != OK {
		return nil, err
	}
	if res.inode != nil || res.name == "" {
		return nil, EEXIST
	}
	dir := fs.newInode(TypeDir, mode)
	dir.parent = res.parent
	res.parent.children[res.name] = dir
	res.parent.Nlink++
	fs.mutated()
	return dir, OK
}

// MkdirAll creates path and any missing ancestors, returning the leaf
// directory. Existing directories are accepted; a non-directory on the
// way returns ENOTDIR/EEXIST.
func (fs *FS) MkdirAll(base *Inode, path string, mode uint32) (*Inode, Errno) {
	parts, abs := splitPath(path)
	cur := base
	if abs || cur == nil {
		cur = fs.root
	}
	for _, part := range parts {
		if cur.Type != TypeDir {
			return nil, ENOTDIR
		}
		next := cur.children[part]
		if next == nil {
			d, err := fs.Mkdir(cur, part, mode)
			if err != OK {
				return nil, err
			}
			next = d
		} else if next.Type == TypeSymlink {
			resolved, err := fs.Resolve(cur, part)
			if err != OK {
				return nil, err
			}
			next = resolved
		}
		cur = next
	}
	if cur.Type != TypeDir {
		return nil, ENOTDIR
	}
	return cur, OK
}

// Create makes a regular file at path. If the path already names a file
// and excl is false the existing file is returned with EEXIST=OK
// semantics mirroring open(O_CREAT): (inode, false, OK). The second
// result reports whether a new file was created.
func (fs *FS) Create(base *Inode, path string, mode uint32, excl bool) (*Inode, bool, Errno) {
	res, err := fs.walk(base, path, true, 0)
	if err != OK {
		return nil, false, err
	}
	if res.inode != nil {
		if excl {
			return nil, false, EEXIST
		}
		if res.inode.Type == TypeDir {
			return nil, false, EISDIR
		}
		return res.inode, false, OK
	}
	if res.name == "" {
		return nil, false, EISDIR
	}
	f := fs.newInode(TypeRegular, mode)
	res.parent.children[res.name] = f
	fs.mutated()
	return f, true, OK
}

// Mknod creates a special file (device node, FIFO, socket) at path.
func (fs *FS) Mknod(base *Inode, path string, mode uint32) (*Inode, Errno) {
	res, err := fs.walk(base, path, true, 0)
	if err != OK {
		return nil, err
	}
	if res.inode != nil || res.name == "" {
		return nil, EEXIST
	}
	f := fs.newInode(TypeSpecial, mode)
	res.parent.children[res.name] = f
	fs.mutated()
	return f, OK
}

// Symlink creates a symbolic link at linkPath pointing at target. The
// target need not exist (dangling links are legal).
func (fs *FS) Symlink(base *Inode, target, linkPath string) (*Inode, Errno) {
	res, err := fs.walk(base, linkPath, false, 0)
	if err != OK {
		return nil, err
	}
	if res.inode != nil || res.name == "" {
		return nil, EEXIST
	}
	l := fs.newInode(TypeSymlink, 0o777)
	l.Target = target
	l.Size = int64(len(target))
	res.parent.children[res.name] = l
	fs.mutated()
	return l, OK
}

// Readlink returns the target of the symlink at path.
func (fs *FS) Readlink(base *Inode, path string) (string, Errno) {
	ino, err := fs.ResolveNoFollow(base, path)
	if err != OK {
		return "", err
	}
	if ino.Type != TypeSymlink {
		return "", EINVAL
	}
	return ino.Target, OK
}

// Link creates a hard link at newPath to the file at oldPath. Hard links
// to directories are rejected.
func (fs *FS) Link(base *Inode, oldPath, newPath string) Errno {
	target, err := fs.ResolveNoFollow(base, oldPath)
	if err != OK {
		return err
	}
	if target.Type == TypeDir {
		return EPERM
	}
	res, err := fs.walk(base, newPath, false, 0)
	if err != OK {
		return err
	}
	if res.inode != nil || res.name == "" {
		return EEXIST
	}
	res.parent.children[res.name] = target
	target.Nlink++
	fs.mutated()
	return OK
}

// Unlink removes the directory entry at path. Directories are rejected
// (use Rmdir). If the link count reaches zero the inode is freed (the
// caller is responsible for delaying logical frees while descriptors
// remain open; see Release).
func (fs *FS) Unlink(base *Inode, path string) Errno {
	res, err := fs.walk(base, path, false, 0)
	if err != OK {
		return err
	}
	if res.inode == nil {
		return ENOENT
	}
	if res.inode.Type == TypeDir {
		return EISDIR
	}
	delete(res.parent.children, res.name)
	fs.mutated()
	res.inode.Nlink--
	if res.inode.Nlink == 0 && fs.onFree != nil {
		fs.onFree(res.inode)
	}
	return OK
}

// Rmdir removes the empty directory at path.
func (fs *FS) Rmdir(base *Inode, path string) Errno {
	res, err := fs.walk(base, path, false, 0)
	if err != OK {
		return err
	}
	if res.inode == nil {
		return ENOENT
	}
	if res.inode.Type != TypeDir {
		return ENOTDIR
	}
	if res.inode == fs.root || res.name == "" {
		return EBUSY
	}
	if len(res.inode.children) != 0 {
		return ENOTEMPTY
	}
	delete(res.parent.children, res.name)
	fs.mutated()
	res.parent.Nlink--
	res.inode.Nlink = 0
	if fs.onFree != nil {
		fs.onFree(res.inode)
	}
	return OK
}

// Rename moves the entry at oldPath to newPath with POSIX rename
// semantics: an existing file target is replaced; an existing directory
// target must be empty; a directory cannot be moved into its own subtree.
func (fs *FS) Rename(base *Inode, oldPath, newPath string) Errno {
	oldRes, err := fs.walk(base, oldPath, false, 0)
	if err != OK {
		return err
	}
	if oldRes.inode == nil {
		return ENOENT
	}
	if oldRes.name == "" || oldRes.inode == fs.root {
		return EBUSY
	}
	newRes, err := fs.walk(base, newPath, false, 0)
	if err != OK {
		return err
	}
	if newRes.name == "" {
		return EEXIST
	}
	src := oldRes.inode
	// Reject moving a directory under itself.
	if src.Type == TypeDir {
		for d := newRes.parent; ; d = d.parent {
			if d == src {
				return EINVAL
			}
			if d == fs.root {
				break
			}
		}
	}
	if dst := newRes.inode; dst != nil {
		if dst == src {
			return OK // POSIX: rename to self is a no-op
		}
		if dst.Type == TypeDir {
			if src.Type != TypeDir {
				return EISDIR
			}
			if len(dst.children) != 0 {
				return ENOTEMPTY
			}
			delete(newRes.parent.children, newRes.name)
			newRes.parent.Nlink--
			dst.Nlink = 0
			if fs.onFree != nil {
				fs.onFree(dst)
			}
		} else {
			if src.Type == TypeDir {
				return ENOTDIR
			}
			delete(newRes.parent.children, newRes.name)
			dst.Nlink--
			if dst.Nlink == 0 && fs.onFree != nil {
				fs.onFree(dst)
			}
		}
	}
	delete(oldRes.parent.children, oldRes.name)
	newRes.parent.children[newRes.name] = src
	fs.mutated()
	if src.Type == TypeDir && oldRes.parent != newRes.parent {
		oldRes.parent.Nlink--
		newRes.parent.Nlink++
		src.parent = newRes.parent
	}
	return OK
}

// Exchange atomically swaps the directory entries at pathA and pathB,
// modelling Mac OS X's exchangedata: each name ends up referring to the
// other file, preserving inode numbers. Both must exist and be regular
// files.
func (fs *FS) Exchange(base *Inode, pathA, pathB string) Errno {
	resA, err := fs.walk(base, pathA, true, 0)
	if err != OK {
		return err
	}
	resB, err := fs.walk(base, pathB, true, 0)
	if err != OK {
		return err
	}
	if resA.inode == nil || resB.inode == nil {
		return ENOENT
	}
	if resA.inode.Type != TypeRegular || resB.inode.Type != TypeRegular {
		return EINVAL
	}
	resA.parent.children[resA.name] = resB.inode
	resB.parent.children[resB.name] = resA.inode
	fs.mutated()
	return OK
}

// Truncate sets the size of the regular file at path.
func (fs *FS) Truncate(base *Inode, path string, size int64) Errno {
	ino, err := fs.Resolve(base, path)
	if err != OK {
		return err
	}
	return fs.TruncateInode(ino, size)
}

// TruncateInode sets the size of a regular file inode.
func (fs *FS) TruncateInode(ino *Inode, size int64) Errno {
	if ino.Type == TypeDir {
		return EISDIR
	}
	if ino.Type != TypeRegular {
		return EINVAL
	}
	if size < 0 {
		return EINVAL
	}
	ino.Size = size
	return OK
}

// Release is called by the descriptor layer when the last open descriptor
// on an already-unlinked inode closes; it triggers the free callback.
func (fs *FS) Release(ino *Inode) {
	if ino.Nlink == 0 && fs.onFree != nil {
		fs.onFree(ino)
	}
}

// PathOf returns an absolute path for the inode by walking parent
// pointers (directories) or scanning the tree (files; first match in
// sorted order). It is intended for diagnostics and snapshot capture, not
// hot paths. The second result is false if the inode is not reachable.
func (fs *FS) PathOf(target *Inode) (string, bool) {
	if target == fs.root {
		return "/", true
	}
	var found string
	var walk func(dir *Inode, prefix string) bool
	walk = func(dir *Inode, prefix string) bool {
		for _, name := range dir.Children() {
			child := dir.children[name]
			p := prefix + "/" + name
			if child == target {
				found = p
				return true
			}
			if child.Type == TypeDir {
				if walk(child, p) {
					return true
				}
			}
		}
		return false
	}
	if walk(fs.root, "") {
		return found, true
	}
	return "", false
}

// Walk visits every inode reachable from the root in sorted path order,
// calling fn with the absolute path of each entry (excluding the root).
func (fs *FS) Walk(fn func(path string, ino *Inode)) {
	var rec func(dir *Inode, prefix string)
	rec = func(dir *Inode, prefix string) {
		for _, name := range dir.Children() {
			child := dir.children[name]
			p := prefix + "/" + name
			fn(p, child)
			if child.Type == TypeDir {
				rec(child, p)
			}
		}
	}
	rec(fs.root, "")
}

// Getxattr returns the named extended attribute of the file at path.
func (fs *FS) Getxattr(base *Inode, path, name string) ([]byte, Errno) {
	ino, err := fs.Resolve(base, path)
	if err != OK {
		return nil, err
	}
	v, ok := ino.Xattrs[name]
	if !ok {
		return nil, ENODATA
	}
	return v, OK
}

// Setxattr sets an extended attribute on the file at path.
func (fs *FS) Setxattr(base *Inode, path, name string, value []byte) Errno {
	ino, err := fs.Resolve(base, path)
	if err != OK {
		return err
	}
	if ino.Xattrs == nil {
		ino.Xattrs = make(map[string][]byte)
	}
	ino.Xattrs[name] = append([]byte(nil), value...)
	return OK
}

// Removexattr deletes an extended attribute from the file at path.
func (fs *FS) Removexattr(base *Inode, path, name string) Errno {
	ino, err := fs.Resolve(base, path)
	if err != OK {
		return err
	}
	if _, ok := ino.Xattrs[name]; !ok {
		return ENODATA
	}
	delete(ino.Xattrs, name)
	return OK
}

// Listxattr lists extended attribute names on the file at path, sorted.
func (fs *FS) Listxattr(base *Inode, path string) ([]string, Errno) {
	ino, err := fs.Resolve(base, path)
	if err != OK {
		return nil, err
	}
	names := make([]string, 0, len(ino.Xattrs))
	for n := range ino.Xattrs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, OK
}
