package vfs

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustMkdir(t *testing.T, fs *FS, path string) *Inode {
	t.Helper()
	d, err := fs.Mkdir(nil, path, 0o755)
	if err != OK {
		t.Fatalf("Mkdir(%q) = %v", path, err)
	}
	return d
}

func mustCreate(t *testing.T, fs *FS, path string) *Inode {
	t.Helper()
	f, created, err := fs.Create(nil, path, 0o644, false)
	if err != OK || !created {
		t.Fatalf("Create(%q) = created=%v err=%v", path, created, err)
	}
	return f
}

func TestMkdirCreateResolve(t *testing.T) {
	fs := New()
	mustMkdir(t, fs, "/a")
	mustMkdir(t, fs, "/a/b")
	f := mustCreate(t, fs, "/a/b/c")
	got, err := fs.Resolve(nil, "/a/b/c")
	if err != OK || got != f {
		t.Fatalf("Resolve = %v, %v", got, err)
	}
	if got.Type != TypeRegular {
		t.Fatalf("type = %v", got.Type)
	}
}

func TestResolveRoot(t *testing.T) {
	fs := New()
	r, err := fs.Resolve(nil, "/")
	if err != OK || r != fs.Root() {
		t.Fatalf("Resolve(/) = %v, %v", r, err)
	}
	r2, err := fs.Resolve(nil, "///")
	if err != OK || r2 != fs.Root() {
		t.Fatalf("Resolve(///) = %v, %v", r2, err)
	}
}

func TestResolveDotAndDotDot(t *testing.T) {
	fs := New()
	a := mustMkdir(t, fs, "/a")
	mustMkdir(t, fs, "/a/b")
	got, err := fs.Resolve(nil, "/a/b/..")
	if err != OK || got != a {
		t.Fatalf("a/b/.. = %v, %v; want a", got, err)
	}
	got, err = fs.Resolve(nil, "/a/./b/./..")
	if err != OK || got != a {
		t.Fatalf("a/./b/./.. = %v, %v", got, err)
	}
	// .. at root stays at root.
	got, err = fs.Resolve(nil, "/..")
	if err != OK || got != fs.Root() {
		t.Fatalf("/.. = %v, %v", got, err)
	}
}

func TestRelativeResolution(t *testing.T) {
	fs := New()
	a := mustMkdir(t, fs, "/a")
	mustCreate(t, fs, "/a/f")
	got, err := fs.Resolve(a, "f")
	if err != OK || got == nil {
		t.Fatalf("relative resolve: %v, %v", got, err)
	}
}

func TestMkdirErrors(t *testing.T) {
	fs := New()
	mustMkdir(t, fs, "/a")
	if _, err := fs.Mkdir(nil, "/a", 0o755); err != EEXIST {
		t.Fatalf("duplicate mkdir = %v, want EEXIST", err)
	}
	if _, err := fs.Mkdir(nil, "/nope/x", 0o755); err != ENOENT {
		t.Fatalf("mkdir under missing = %v, want ENOENT", err)
	}
	mustCreate(t, fs, "/file")
	if _, err := fs.Mkdir(nil, "/file/x", 0o755); err != ENOTDIR {
		t.Fatalf("mkdir under file = %v, want ENOTDIR", err)
	}
}

func TestMkdirAll(t *testing.T) {
	fs := New()
	d, err := fs.MkdirAll(nil, "/x/y/z", 0o755)
	if err != OK {
		t.Fatal(err)
	}
	got, err := fs.Resolve(nil, "/x/y/z")
	if err != OK || got != d {
		t.Fatalf("resolve after MkdirAll: %v, %v", got, err)
	}
	// Idempotent.
	if _, err := fs.MkdirAll(nil, "/x/y/z", 0o755); err != OK {
		t.Fatalf("second MkdirAll = %v", err)
	}
	mustCreate(t, fs, "/x/y/z/f")
	if _, err := fs.MkdirAll(nil, "/x/y/z/f", 0o755); err != ENOTDIR {
		t.Fatalf("MkdirAll over file = %v, want ENOTDIR", err)
	}
}

func TestCreateExclusive(t *testing.T) {
	fs := New()
	mustCreate(t, fs, "/f")
	if _, _, err := fs.Create(nil, "/f", 0o644, true); err != EEXIST {
		t.Fatalf("O_EXCL on existing = %v, want EEXIST", err)
	}
	got, created, err := fs.Create(nil, "/f", 0o644, false)
	if err != OK || created || got == nil {
		t.Fatalf("re-open existing: created=%v err=%v", created, err)
	}
	mustMkdir(t, fs, "/d")
	if _, _, err := fs.Create(nil, "/d", 0o644, false); err != EISDIR {
		t.Fatalf("create over dir = %v, want EISDIR", err)
	}
}

func TestUnlink(t *testing.T) {
	fs := New()
	mustCreate(t, fs, "/f")
	if err := fs.Unlink(nil, "/f"); err != OK {
		t.Fatal(err)
	}
	if _, err := fs.Resolve(nil, "/f"); err != ENOENT {
		t.Fatalf("resolve after unlink = %v", err)
	}
	if err := fs.Unlink(nil, "/f"); err != ENOENT {
		t.Fatalf("double unlink = %v", err)
	}
	mustMkdir(t, fs, "/d")
	if err := fs.Unlink(nil, "/d"); err != EISDIR {
		t.Fatalf("unlink dir = %v, want EISDIR", err)
	}
}

func TestUnlinkFreesOnLastLink(t *testing.T) {
	fs := New()
	var freed []Ino
	fs.OnFree(func(ino *Inode) { freed = append(freed, ino.Ino) })
	f := mustCreate(t, fs, "/f")
	if err := fs.Link(nil, "/f", "/g"); err != OK {
		t.Fatal(err)
	}
	if err := fs.Unlink(nil, "/f"); err != OK {
		t.Fatal(err)
	}
	if len(freed) != 0 {
		t.Fatal("freed while a hard link remains")
	}
	if err := fs.Unlink(nil, "/g"); err != OK {
		t.Fatal(err)
	}
	if len(freed) != 1 || freed[0] != f.Ino {
		t.Fatalf("freed = %v", freed)
	}
}

func TestRmdir(t *testing.T) {
	fs := New()
	mustMkdir(t, fs, "/d")
	mustCreate(t, fs, "/d/f")
	if err := fs.Rmdir(nil, "/d"); err != ENOTEMPTY {
		t.Fatalf("rmdir nonempty = %v", err)
	}
	if err := fs.Unlink(nil, "/d/f"); err != OK {
		t.Fatal(err)
	}
	if err := fs.Rmdir(nil, "/d"); err != OK {
		t.Fatal(err)
	}
	if _, err := fs.Resolve(nil, "/d"); err != ENOENT {
		t.Fatalf("resolve after rmdir = %v", err)
	}
	mustCreate(t, fs, "/f")
	if err := fs.Rmdir(nil, "/f"); err != ENOTDIR {
		t.Fatalf("rmdir file = %v", err)
	}
	if err := fs.Rmdir(nil, "/"); err != EBUSY {
		t.Fatalf("rmdir root = %v", err)
	}
}

func TestHardLinks(t *testing.T) {
	fs := New()
	f := mustCreate(t, fs, "/f")
	if err := fs.Link(nil, "/f", "/g"); err != OK {
		t.Fatal(err)
	}
	g, err := fs.Resolve(nil, "/g")
	if err != OK || g != f {
		t.Fatalf("hard link resolves to different inode")
	}
	if f.Nlink != 2 {
		t.Fatalf("nlink = %d", f.Nlink)
	}
	mustMkdir(t, fs, "/d")
	if err := fs.Link(nil, "/d", "/d2"); err != EPERM {
		t.Fatalf("hard link to dir = %v, want EPERM", err)
	}
	if err := fs.Link(nil, "/f", "/g"); err != EEXIST {
		t.Fatalf("link over existing = %v", err)
	}
}

func TestSymlinkBasics(t *testing.T) {
	fs := New()
	f := mustCreate(t, fs, "/target")
	if _, err := fs.Symlink(nil, "/target", "/link"); err != OK {
		t.Fatal(err)
	}
	got, err := fs.Resolve(nil, "/link")
	if err != OK || got != f {
		t.Fatalf("resolve through symlink: %v, %v", got, err)
	}
	l, err := fs.ResolveNoFollow(nil, "/link")
	if err != OK || l.Type != TypeSymlink {
		t.Fatalf("lstat: %v, %v", l, err)
	}
	tgt, err := fs.Readlink(nil, "/link")
	if err != OK || tgt != "/target" {
		t.Fatalf("readlink = %q, %v", tgt, err)
	}
	if _, err := fs.Readlink(nil, "/target"); err != EINVAL {
		t.Fatalf("readlink on file = %v", err)
	}
}

func TestSymlinkRelativeTarget(t *testing.T) {
	fs := New()
	mustMkdir(t, fs, "/a")
	f := mustCreate(t, fs, "/a/real")
	if _, err := fs.Symlink(nil, "real", "/a/link"); err != OK {
		t.Fatal(err)
	}
	got, err := fs.Resolve(nil, "/a/link")
	if err != OK || got != f {
		t.Fatalf("relative symlink target: %v, %v", got, err)
	}
	// Relative target with ..
	mustMkdir(t, fs, "/b")
	if _, err := fs.Symlink(nil, "../a/real", "/b/link"); err != OK {
		t.Fatal(err)
	}
	got, err = fs.Resolve(nil, "/b/link")
	if err != OK || got != f {
		t.Fatalf("../ symlink target: %v, %v", got, err)
	}
}

func TestSymlinkInMiddleOfPath(t *testing.T) {
	fs := New()
	mustMkdir(t, fs, "/real")
	f := mustCreate(t, fs, "/real/f")
	if _, err := fs.Symlink(nil, "/real", "/alias"); err != OK {
		t.Fatal(err)
	}
	got, err := fs.Resolve(nil, "/alias/f")
	if err != OK || got != f {
		t.Fatalf("symlinked dir component: %v, %v", got, err)
	}
}

func TestDanglingSymlink(t *testing.T) {
	fs := New()
	if _, err := fs.Symlink(nil, "/missing", "/dangle"); err != OK {
		t.Fatal(err)
	}
	if _, err := fs.Resolve(nil, "/dangle"); err != ENOENT {
		t.Fatalf("resolve dangling = %v, want ENOENT", err)
	}
	if _, err := fs.ResolveNoFollow(nil, "/dangle"); err != OK {
		t.Fatalf("lstat dangling = %v, want OK", err)
	}
	// Creating through a dangling symlink creates the target (POSIX).
	got, created, err := fs.Create(nil, "/dangle", 0o644, false)
	if err != OK || !created || got == nil {
		t.Fatalf("create through dangling link: %v %v %v", got, created, err)
	}
	resolved, err := fs.Resolve(nil, "/missing")
	if err != OK || resolved != got {
		t.Fatalf("target not created at link destination: %v, %v", resolved, err)
	}
}

func TestSymlinkLoop(t *testing.T) {
	fs := New()
	if _, err := fs.Symlink(nil, "/b", "/a"); err != OK {
		t.Fatal(err)
	}
	if _, err := fs.Symlink(nil, "/a", "/b"); err != OK {
		t.Fatal(err)
	}
	if _, err := fs.Resolve(nil, "/a"); err != ELOOP {
		t.Fatalf("loop resolve = %v, want ELOOP", err)
	}
}

func TestRenameFile(t *testing.T) {
	fs := New()
	f := mustCreate(t, fs, "/a")
	if err := fs.Rename(nil, "/a", "/b"); err != OK {
		t.Fatal(err)
	}
	if _, err := fs.Resolve(nil, "/a"); err != ENOENT {
		t.Fatal("old name still resolves")
	}
	got, err := fs.Resolve(nil, "/b")
	if err != OK || got != f {
		t.Fatal("new name does not resolve to same inode")
	}
}

func TestRenameReplacesTarget(t *testing.T) {
	fs := New()
	var freed []Ino
	fs.OnFree(func(ino *Inode) { freed = append(freed, ino.Ino) })
	a := mustCreate(t, fs, "/a")
	b := mustCreate(t, fs, "/b")
	if err := fs.Rename(nil, "/a", "/b"); err != OK {
		t.Fatal(err)
	}
	got, _ := fs.Resolve(nil, "/b")
	if got != a {
		t.Fatal("target not replaced by source")
	}
	if len(freed) != 1 || freed[0] != b.Ino {
		t.Fatalf("replaced target not freed: %v", freed)
	}
}

func TestRenameDirectorySubtree(t *testing.T) {
	fs := New()
	mustMkdir(t, fs, "/a")
	mustMkdir(t, fs, "/a/b")
	f := mustCreate(t, fs, "/a/b/c")
	if err := fs.Rename(nil, "/a/b", "/a/old"); err != OK {
		t.Fatal(err)
	}
	got, err := fs.Resolve(nil, "/a/old/c")
	if err != OK || got != f {
		t.Fatalf("file did not move with directory: %v, %v", got, err)
	}
	if _, err := fs.Resolve(nil, "/a/b/c"); err != ENOENT {
		t.Fatal("old path still resolves")
	}
}

func TestRenameDirIntoOwnSubtree(t *testing.T) {
	fs := New()
	mustMkdir(t, fs, "/a")
	mustMkdir(t, fs, "/a/b")
	if err := fs.Rename(nil, "/a", "/a/b/x"); err != EINVAL {
		t.Fatalf("rename into own subtree = %v, want EINVAL", err)
	}
}

func TestRenameDirOntoNonEmptyDir(t *testing.T) {
	fs := New()
	mustMkdir(t, fs, "/a")
	mustMkdir(t, fs, "/b")
	mustCreate(t, fs, "/b/f")
	if err := fs.Rename(nil, "/a", "/b"); err != ENOTEMPTY {
		t.Fatalf("rename over nonempty dir = %v, want ENOTEMPTY", err)
	}
	if err := fs.Unlink(nil, "/b/f"); err != OK {
		t.Fatal(err)
	}
	if err := fs.Rename(nil, "/a", "/b"); err != OK {
		t.Fatalf("rename over empty dir = %v", err)
	}
}

func TestRenameTypeMismatch(t *testing.T) {
	fs := New()
	mustMkdir(t, fs, "/d")
	mustCreate(t, fs, "/f")
	if err := fs.Rename(nil, "/f", "/d"); err != EISDIR {
		t.Fatalf("file over dir = %v, want EISDIR", err)
	}
	if err := fs.Rename(nil, "/d", "/f"); err != ENOTDIR {
		t.Fatalf("dir over file = %v, want ENOTDIR", err)
	}
}

func TestRenameToSelf(t *testing.T) {
	fs := New()
	f := mustCreate(t, fs, "/f")
	if err := fs.Link(nil, "/f", "/g"); err != OK {
		t.Fatal(err)
	}
	if err := fs.Rename(nil, "/f", "/g"); err != OK {
		t.Fatalf("rename between hard links = %v", err)
	}
	// POSIX: both names remain.
	if got, err := fs.Resolve(nil, "/f"); err != OK || got != f {
		t.Fatal("source vanished on self-rename")
	}
}

// The paper's iphoto_import400 edge case: a directory rename that
// un-breaks a previously dangling symlink. The model must resolve the
// symlink correctly afterwards.
func TestRenameUnbreaksDanglingSymlink(t *testing.T) {
	fs := New()
	mustMkdir(t, fs, "/x")
	f := mustCreate(t, fs, "/x/f")
	if _, err := fs.Symlink(nil, "/y/f", "/link"); err != OK {
		t.Fatal(err)
	}
	if _, err := fs.Resolve(nil, "/link"); err != ENOENT {
		t.Fatal("link should dangle before rename")
	}
	if err := fs.Rename(nil, "/x", "/y"); err != OK {
		t.Fatal(err)
	}
	got, err := fs.Resolve(nil, "/link")
	if err != OK || got != f {
		t.Fatalf("link did not un-break after rename: %v, %v", got, err)
	}
}

func TestExchange(t *testing.T) {
	fs := New()
	a := mustCreate(t, fs, "/a")
	b := mustCreate(t, fs, "/b")
	a.Size, b.Size = 100, 200
	if err := fs.Exchange(nil, "/a", "/b"); err != OK {
		t.Fatal(err)
	}
	ra, _ := fs.Resolve(nil, "/a")
	rb, _ := fs.Resolve(nil, "/b")
	if ra != b || rb != a {
		t.Fatal("entries not swapped")
	}
	mustMkdir(t, fs, "/d")
	if err := fs.Exchange(nil, "/a", "/d"); err != EINVAL {
		t.Fatalf("exchange with dir = %v, want EINVAL", err)
	}
	if err := fs.Exchange(nil, "/a", "/missing"); err != ENOENT {
		t.Fatalf("exchange with missing = %v, want ENOENT", err)
	}
}

func TestTruncate(t *testing.T) {
	fs := New()
	f := mustCreate(t, fs, "/f")
	if err := fs.Truncate(nil, "/f", 4096); err != OK {
		t.Fatal(err)
	}
	if f.Size != 4096 {
		t.Fatalf("size = %d", f.Size)
	}
	if err := fs.Truncate(nil, "/f", -1); err != EINVAL {
		t.Fatalf("negative truncate = %v", err)
	}
	mustMkdir(t, fs, "/d")
	if err := fs.Truncate(nil, "/d", 0); err != EISDIR {
		t.Fatalf("truncate dir = %v", err)
	}
}

func TestXattrs(t *testing.T) {
	fs := New()
	mustCreate(t, fs, "/f")
	if _, err := fs.Getxattr(nil, "/f", "user.a"); err != ENODATA {
		t.Fatalf("get missing xattr = %v", err)
	}
	if err := fs.Setxattr(nil, "/f", "user.a", []byte("v1")); err != OK {
		t.Fatal(err)
	}
	v, err := fs.Getxattr(nil, "/f", "user.a")
	if err != OK || string(v) != "v1" {
		t.Fatalf("get = %q, %v", v, err)
	}
	if err := fs.Setxattr(nil, "/f", "user.b", []byte("v2")); err != OK {
		t.Fatal(err)
	}
	names, err := fs.Listxattr(nil, "/f")
	if err != OK || fmt.Sprint(names) != "[user.a user.b]" {
		t.Fatalf("list = %v, %v", names, err)
	}
	if err := fs.Removexattr(nil, "/f", "user.a"); err != OK {
		t.Fatal(err)
	}
	if err := fs.Removexattr(nil, "/f", "user.a"); err != ENODATA {
		t.Fatalf("double remove = %v", err)
	}
}

func TestMknodSpecial(t *testing.T) {
	fs := New()
	mustMkdir(t, fs, "/dev")
	sp, err := fs.Mknod(nil, "/dev/random", 0o666)
	if err != OK || sp.Type != TypeSpecial {
		t.Fatalf("mknod: %v, %v", sp, err)
	}
	if _, err := fs.Mknod(nil, "/dev/random", 0o666); err != EEXIST {
		t.Fatalf("duplicate mknod = %v", err)
	}
}

func TestPathOf(t *testing.T) {
	fs := New()
	mustMkdir(t, fs, "/a")
	f := mustCreate(t, fs, "/a/f")
	p, ok := fs.PathOf(f)
	if !ok || p != "/a/f" {
		t.Fatalf("PathOf = %q, %v", p, ok)
	}
	p, ok = fs.PathOf(fs.Root())
	if !ok || p != "/" {
		t.Fatalf("PathOf(root) = %q, %v", p, ok)
	}
	orphan := &Inode{}
	if _, ok := fs.PathOf(orphan); ok {
		t.Fatal("PathOf found unreachable inode")
	}
}

func TestWalkOrder(t *testing.T) {
	fs := New()
	mustMkdir(t, fs, "/b")
	mustMkdir(t, fs, "/a")
	mustCreate(t, fs, "/a/z")
	mustCreate(t, fs, "/a/y")
	var paths []string
	fs.Walk(func(p string, ino *Inode) { paths = append(paths, p) })
	want := "[/a /a/y /a/z /b]"
	if fmt.Sprint(paths) != want {
		t.Fatalf("walk order = %v, want %v", paths, want)
	}
}

func TestInoUniqueness(t *testing.T) {
	fs := New()
	seen := map[Ino]bool{fs.Root().Ino: true}
	for i := 0; i < 100; i++ {
		f := mustCreate(t, fs, fmt.Sprintf("/f%d", i))
		if seen[f.Ino] {
			t.Fatalf("inode number %d reused", f.Ino)
		}
		seen[f.Ino] = true
		if err := fs.Unlink(nil, fmt.Sprintf("/f%d", i)); err != OK {
			t.Fatal(err)
		}
	}
}

func TestDirNlink(t *testing.T) {
	fs := New()
	a := mustMkdir(t, fs, "/a")
	if a.Nlink != 2 {
		t.Fatalf("fresh dir nlink = %d, want 2", a.Nlink)
	}
	mustMkdir(t, fs, "/a/b")
	if a.Nlink != 3 {
		t.Fatalf("dir nlink after subdir = %d, want 3", a.Nlink)
	}
	if err := fs.Rmdir(nil, "/a/b"); err != OK {
		t.Fatal(err)
	}
	if a.Nlink != 2 {
		t.Fatalf("dir nlink after rmdir = %d, want 2", a.Nlink)
	}
}

func TestErrnoNames(t *testing.T) {
	if ENOENT.String() != "ENOENT" {
		t.Fatal("ENOENT name")
	}
	if e, ok := ErrnoByName("EEXIST"); !ok || e != EEXIST {
		t.Fatal("ErrnoByName")
	}
	if _, ok := ErrnoByName("EWHATEVER"); ok {
		t.Fatal("unknown errno name accepted")
	}
	if Errno(9999).String() != "errno(9999)" {
		t.Fatal("unknown errno formatting")
	}
}

// Property: a random sequence of operations never corrupts tree
// invariants: every child's parent pointer is its containing directory,
// the root is its own parent, and Walk paths resolve to the inode Walk
// visited.
func TestQuickTreeInvariants(t *testing.T) {
	type opFn func(fs *FS, rng *rand.Rand, paths []string)
	randPath := func(rng *rand.Rand, paths []string) string {
		return paths[rng.Intn(len(paths))]
	}
	ops := []opFn{
		func(fs *FS, rng *rand.Rand, paths []string) { fs.Mkdir(nil, randPath(rng, paths), 0o755) },
		func(fs *FS, rng *rand.Rand, paths []string) {
			fs.Create(nil, randPath(rng, paths), 0o644, rng.Intn(2) == 0)
		},
		func(fs *FS, rng *rand.Rand, paths []string) { fs.Unlink(nil, randPath(rng, paths)) },
		func(fs *FS, rng *rand.Rand, paths []string) { fs.Rmdir(nil, randPath(rng, paths)) },
		func(fs *FS, rng *rand.Rand, paths []string) {
			fs.Rename(nil, randPath(rng, paths), randPath(rng, paths))
		},
		func(fs *FS, rng *rand.Rand, paths []string) {
			fs.Symlink(nil, randPath(rng, paths), randPath(rng, paths))
		},
		func(fs *FS, rng *rand.Rand, paths []string) {
			fs.Link(nil, randPath(rng, paths), randPath(rng, paths))
		},
	}
	pool := []string{"/a", "/b", "/c", "/a/x", "/a/y", "/b/x", "/c/z", "/a/x/deep"}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := New()
		for i := 0; i < int(n); i++ {
			ops[rng.Intn(len(ops))](fs, rng, pool)
		}
		okTree := true
		var check func(dir *Inode)
		check = func(dir *Inode) {
			for _, name := range dir.Children() {
				child := dir.Lookup(name)
				if child.Type == TypeDir {
					if child.parent != dir {
						okTree = false
						return
					}
					check(child)
				}
			}
		}
		check(fs.Root())
		if fs.Root().parent != fs.Root() {
			return false
		}
		fs.Walk(func(p string, ino *Inode) {
			got, err := fs.ResolveNoFollow(nil, p)
			if err != OK || got != ino {
				okTree = false
			}
		})
		return okTree
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Resolve through an arbitrary chain of valid symlinks reaches
// the same inode as direct resolution of the final target.
func TestQuickSymlinkChain(t *testing.T) {
	f := func(n uint8) bool {
		depth := int(n % MaxSymlinkDepth)
		fs := New()
		target, _, err := fs.Create(nil, "/target", 0o644, true)
		if err != OK {
			return false
		}
		prev := "/target"
		for i := 0; i < depth; i++ {
			name := fmt.Sprintf("/l%d", i)
			if _, err := fs.Symlink(nil, prev, name); err != OK {
				return false
			}
			prev = name
		}
		got, err := fs.Resolve(nil, prev)
		return err == OK && got == target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkResolveDeepPath(b *testing.B) {
	fs := New()
	path := ""
	for i := 0; i < 10; i++ {
		path += fmt.Sprintf("/d%d", i)
		if _, err := fs.Mkdir(nil, path, 0o755); err != OK {
			b.Fatal(err)
		}
	}
	fs.Create(nil, path+"/f", 0o644, true)
	target := path + "/f"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Resolve(nil, target); err != OK {
			b.Fatal(err)
		}
	}
}

func TestMkdirAllThroughSymlink(t *testing.T) {
	fs := New()
	mustMkdir(t, fs, "/real")
	if _, err := fs.Symlink(nil, "/real", "/alias"); err != OK {
		t.Fatal(err)
	}
	d, err := fs.MkdirAll(nil, "/alias/sub/deep", 0o755)
	if err != OK {
		t.Fatalf("MkdirAll through symlink: %v", err)
	}
	got, err := fs.Resolve(nil, "/real/sub/deep")
	if err != OK || got != d {
		t.Fatalf("dirs not created under link target: %v, %v", got, err)
	}
}

func TestSymlinkMaxDepthBoundary(t *testing.T) {
	fs := New()
	mustCreate(t, fs, "/target")
	prev := "/target"
	for i := 0; i < MaxSymlinkDepth; i++ {
		name := fmt.Sprintf("/l%d", i)
		if _, err := fs.Symlink(nil, prev, name); err != OK {
			t.Fatal(err)
		}
		prev = name
	}
	// Exactly MaxSymlinkDepth hops resolves; one more fails with ELOOP.
	if _, err := fs.Resolve(nil, prev); err != OK {
		t.Fatalf("depth-%d chain failed: %v", MaxSymlinkDepth, err)
	}
	if _, err := fs.Symlink(nil, prev, "/overflow"); err != OK {
		t.Fatal(err)
	}
	if _, err := fs.Resolve(nil, "/overflow"); err != ELOOP {
		t.Fatalf("depth-%d chain = %v, want ELOOP", MaxSymlinkDepth+1, err)
	}
}

func TestExchangePreservesHardLinks(t *testing.T) {
	fs := New()
	a := mustCreate(t, fs, "/a")
	mustCreate(t, fs, "/b")
	if err := fs.Link(nil, "/a", "/a2"); err != OK {
		t.Fatal(err)
	}
	if err := fs.Exchange(nil, "/a", "/b"); err != OK {
		t.Fatal(err)
	}
	// The hard link /a2 still points at the original inode (exchange
	// swaps directory entries, not inode identities).
	got, err := fs.Resolve(nil, "/a2")
	if err != OK || got != a {
		t.Fatal("hard link retargeted by exchange")
	}
}

func TestRenameSymlinkItself(t *testing.T) {
	fs := New()
	mustCreate(t, fs, "/target")
	if _, err := fs.Symlink(nil, "/target", "/link"); err != OK {
		t.Fatal(err)
	}
	if err := fs.Rename(nil, "/link", "/moved"); err != OK {
		t.Fatalf("rename of symlink: %v", err)
	}
	// The link itself moved (no follow), still pointing at the target.
	tgt, err := fs.Readlink(nil, "/moved")
	if err != OK || tgt != "/target" {
		t.Fatalf("moved link target = %q, %v", tgt, err)
	}
	if _, err := fs.ResolveNoFollow(nil, "/link"); err != ENOENT {
		t.Fatal("old link name survives")
	}
}
