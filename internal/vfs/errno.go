package vfs

import "fmt"

// Errno is a POSIX-style error number. The zero value OK means success.
// Errno values flow through traces: ARTC compares the Errno a replayed
// call produced against the Errno recorded in the trace to measure
// semantic correctness.
type Errno int

// The subset of POSIX error numbers the file-system model produces.
// Values match Linux/x86-64 so that strace output parses naturally.
const (
	OK           Errno = 0
	EPERM        Errno = 1
	ENOENT       Errno = 2
	EINTR        Errno = 4
	EIO          Errno = 5
	EBADF        Errno = 9
	EACCES       Errno = 13
	EBUSY        Errno = 16
	EEXIST       Errno = 17
	EXDEV        Errno = 18
	ENOTDIR      Errno = 20
	EISDIR       Errno = 21
	EINVAL       Errno = 22
	ENFILE       Errno = 23
	EMFILE       Errno = 24
	ETXTBSY      Errno = 26
	EFBIG        Errno = 27
	ENOSPC       Errno = 28
	ESPIPE       Errno = 29
	EROFS        Errno = 30
	EMLINK       Errno = 31
	EPIPE        Errno = 32
	ERANGE       Errno = 34
	ENAMETOOLONG Errno = 36
	ENOTEMPTY    Errno = 39
	ELOOP        Errno = 40
	ENODATA      Errno = 61
	EOVERFLOW    Errno = 75
	ENOTSUP      Errno = 95
)

var errnoNames = map[Errno]string{
	OK:           "OK",
	EPERM:        "EPERM",
	ENOENT:       "ENOENT",
	EINTR:        "EINTR",
	EIO:          "EIO",
	EBADF:        "EBADF",
	EACCES:       "EACCES",
	EBUSY:        "EBUSY",
	EEXIST:       "EEXIST",
	EXDEV:        "EXDEV",
	ENOTDIR:      "ENOTDIR",
	EISDIR:       "EISDIR",
	EINVAL:       "EINVAL",
	ENFILE:       "ENFILE",
	EMFILE:       "EMFILE",
	ETXTBSY:      "ETXTBSY",
	EFBIG:        "EFBIG",
	ENOSPC:       "ENOSPC",
	ESPIPE:       "ESPIPE",
	EROFS:        "EROFS",
	EMLINK:       "EMLINK",
	EPIPE:        "EPIPE",
	ERANGE:       "ERANGE",
	ENAMETOOLONG: "ENAMETOOLONG",
	ENOTEMPTY:    "ENOTEMPTY",
	ELOOP:        "ELOOP",
	ENODATA:      "ENODATA",
	EOVERFLOW:    "EOVERFLOW",
	ENOTSUP:      "ENOTSUP",
}

var errnoByName = func() map[string]Errno {
	m := make(map[string]Errno, len(errnoNames))
	for e, n := range errnoNames {
		m[n] = e
	}
	return m
}()

// String returns the symbolic name (e.g. "ENOENT"), or a numeric form for
// unknown values.
func (e Errno) String() string {
	if n, ok := errnoNames[e]; ok {
		return n
	}
	return fmt.Sprintf("errno(%d)", int(e))
}

// Error implements the error interface. OK should not be used as an
// error value, but returns "OK" if it is.
func (e Errno) Error() string { return e.String() }

// ErrnoByName maps a symbolic name like "ENOENT" back to its value,
// reporting whether the name is known. Used by trace parsers.
func ErrnoByName(name string) (Errno, bool) {
	e, ok := errnoByName[name]
	return e, ok
}
