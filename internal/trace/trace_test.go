package trace

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleTrace() *Trace {
	return &Trace{
		Platform: "osx",
		Records: []*Record{
			{Seq: 0, TID: 1, Call: "mkdir", Path: "/a/b", Mode: 0o755, Ret: 0, Start: 1000, End: 2000},
			{Seq: 1, TID: 1, Call: "open", Path: "/a/b/c", Flags: OCreat | ORdwr, Mode: 0o644, FD: 3, Ret: 3, Start: 2100, End: 2400},
			{Seq: 2, TID: 1, Call: "write", FD: 3, Size: 4096, Ret: 4096, Start: 2500, End: 2600},
			{Seq: 3, TID: 2, Call: "stat", Path: "/missing with space", Ret: -1, Err: "ENOENT", Start: 2550, End: 2700},
			{Seq: 4, TID: 1, Call: "rename", Path: "/a/b", Path2: "/a/old", Ret: 0, Start: 3000, End: 3100},
			{Seq: 5, TID: 2, Call: "lseek", FD: 3, Offset: -100, Whence: 2, Ret: 3996, Start: 3200, End: 3300},
			{Seq: 6, TID: 2, Call: "aio_read", FD: 3, Size: 512, Offset: 1024, AIO: 7, Ret: 7, Start: 3400, End: 3500},
		},
	}
}

func TestNativeRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Platform != "osx" {
		t.Fatalf("platform = %q", got.Platform)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("record count = %d", len(got.Records))
	}
	for i := range tr.Records {
		if !reflect.DeepEqual(tr.Records[i], got.Records[i]) {
			t.Fatalf("record %d:\nwant %+v\ngot  %+v", i, tr.Records[i], got.Records[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"0 1",                         // too few fields
		"x 1 open = 0 - 0 0",          // bad seq
		"0 y open = 0 - 0 0",          // bad tid
		"0 1 open junk = 0 - 0 0",     // bad key=value
		"0 1 open = 0 - 0",            // short result
		`0 1 open path="/a = 0 - 0 0`, // unterminated quote
		"0 1 open zz=3 = 0 - 0 0",     // unknown key
	}
	for _, c := range cases {
		if _, err := Decode(strings.NewReader("#artc-trace v1 platform=linux\n" + c + "\n")); err == nil {
			t.Errorf("no error for %q", c)
		}
	}
}

func TestOpenFlagString(t *testing.T) {
	if s := (ORdwr | OCreat | OTrunc).String(); s != "O_RDWR|O_CREAT|O_TRUNC" {
		t.Fatalf("flags = %s", s)
	}
	if s := ORdonly.String(); s != "O_RDONLY" {
		t.Fatalf("O_RDONLY = %s", s)
	}
	if (OWronly | OCreat).Access() != OWronly {
		t.Fatal("Access() broken")
	}
}

func TestTraceHelpers(t *testing.T) {
	tr := sampleTrace()
	if got := tr.Threads(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("threads = %v", got)
	}
	if tr.Duration() != 3500 {
		t.Fatalf("duration = %v", tr.Duration())
	}
	r := tr.Records[3]
	if r.OK() {
		t.Fatal("failed record reports OK")
	}
	if r.Latency() != 150 {
		t.Fatalf("latency = %v", r.Latency())
	}
	tr.Records[0].Seq = 99
	tr.Renumber()
	if tr.Records[0].Seq != 0 {
		t.Fatal("renumber failed")
	}
}

const sampleStrace = `1001 1679588291.000100 open("/etc/fstab", O_RDONLY) = 3 </etc/fstab> <0.000020>
1001 1679588291.000200 read(3, "LABEL=/ / ext4"..., 4096) = 512 <0.000015>
1002 1679588291.000210 stat("/var/missing", 0x7ffd) = -1 ENOENT (No such file or directory) <0.000005>
1001 1679588291.000300 close(3) = 0 <0.000003>
1002 1679588291.000350 open("/tmp/out", O_WRONLY|O_CREAT|O_TRUNC, 0644) = 4 <0.000030>
1002 1679588291.000400 write(4, "payload"..., 1024 <unfinished ...>
1001 1679588291.000420 lseek(5, 100, SEEK_SET) = 100 <0.000002>
1002 1679588291.000500 <... write resumed>) = 1024 <0.000100>
1002 1679588291.000700 pwrite64(4, "x", 1, 4095) = 1 <0.000009>
1002 1679588291.000800 rename("/tmp/out", "/tmp/out2") = 0 <0.000012>
1001 1679588291.000900 getuid() = 1000 <0.000001>
1002 1679588291.001000 mmap(NULL, 8192, PROT_READ, MAP_PRIVATE, 6, 0) = 0x7f1200000000 <0.000007>
1002 1679588291.001100 mmap(NULL, 8192, PROT_READ|PROT_WRITE, MAP_PRIVATE|MAP_ANONYMOUS, -1, 0) = 0x7f1200004000 <0.000004>
+++ exited with 0 +++
`

func TestParseStrace(t *testing.T) {
	tr, err := ParseStrace(strings.NewReader(sampleStrace))
	if err != nil {
		t.Fatal(err)
	}
	// getuid and the anonymous mmap are skipped.
	if len(tr.Records) != 10 {
		for _, r := range tr.Records {
			t.Logf("%+v", r)
		}
		t.Fatalf("parsed %d records, want 10", len(tr.Records))
	}
	r0 := tr.Records[0]
	if r0.Call != "open" || r0.Path != "/etc/fstab" || r0.Ret != 3 || r0.TID != 1001 {
		t.Fatalf("open record = %+v", r0)
	}
	if r0.Start != 0 {
		t.Fatalf("first record not rebased to zero: %v", r0.Start)
	}
	r1 := tr.Records[1]
	if r1.Call != "read" || r1.FD != 3 || r1.Size != 4096 || r1.Ret != 512 {
		t.Fatalf("read record = %+v", r1)
	}
	r2 := tr.Records[2]
	if r2.Err != "ENOENT" || r2.Ret != -1 {
		t.Fatalf("stat record = %+v", r2)
	}
	// The unfinished write must be stitched together, starting at its
	// original entry timestamp and keeping trace order by line.
	var wr *Record
	for _, r := range tr.Records {
		if r.Call == "write" {
			wr = r
		}
	}
	if wr == nil || wr.Ret != 1024 || wr.Size != 1024 || wr.FD != 4 {
		t.Fatalf("stitched write = %+v", wr)
	}
	if wr.Start != 300*time.Microsecond {
		t.Fatalf("stitched write start = %v", wr.Start)
	}
	var mm *Record
	for _, r := range tr.Records {
		if r.Call == "mmap" {
			mm = r
		}
	}
	if mm == nil || mm.FD != 6 || mm.Size != 8192 {
		t.Fatalf("mmap record = %+v", mm)
	}
	// Flags parse.
	var op *Record
	for _, r := range tr.Records {
		if r.Call == "open" && r.Path == "/tmp/out" {
			op = r
		}
	}
	if op.Flags != OWronly|OCreat|OTrunc || op.Mode != 0o644 {
		t.Fatalf("open flags = %v mode=%o", op.Flags, op.Mode)
	}
	// Sequence numbers dense.
	for i, r := range tr.Records {
		if r.Seq != int64(i) {
			t.Fatalf("seq[%d] = %d", i, r.Seq)
		}
	}
}

func TestParseStraceNoPIDs(t *testing.T) {
	in := `1679588291.000100 open("/f", O_RDONLY) = 3 <0.000020>
1679588291.000200 close(3) = 0 <0.000001>
`
	tr, err := ParseStrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 2 || tr.Records[0].TID != 1 {
		t.Fatalf("records = %+v", tr.Records)
	}
}

func TestParseStraceLongLine(t *testing.T) {
	// A write payload rendered with a generous strace -s produces lines
	// far past bufio.Scanner's 64 KiB default; a ~2 MiB line also broke
	// the old 1 MiB cap. It must parse.
	payload := strings.Repeat("x", 2<<20)
	in := `1001 1679588291.000100 write(3, "` + payload + `", ` +
		"2097152) = 2097152 <0.000500>\n" +
		"1001 1679588291.000700 close(3) = 0 <0.000001>\n"
	tr, err := ParseStrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 2 || tr.Records[0].Call != "write" {
		t.Fatalf("records = %+v", tr.Records)
	}
}

func TestParseStraceLineOverLimit(t *testing.T) {
	// Beyond the cap the parser must fail with a ParseError naming the
	// offending line, not bufio's bare "token too long".
	defer func(old int) { straceMaxLine = old }(straceMaxLine)
	straceMaxLine = 4096
	in := `1001 1679588291.000100 open("/f", O_RDONLY) = 3 <0.000020>
1001 1679588291.000200 write(3, "` + strings.Repeat("y", 8192) + `", 8192) = 8192 <0.000100>
`
	_, err := ParseStrace(strings.NewReader(in))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ParseError", err)
	}
	if pe.Line != 2 {
		t.Errorf("ParseError.Line = %d, want 2", pe.Line)
	}
	if !strings.Contains(pe.Msg, "4096") {
		t.Errorf("ParseError.Msg = %q, want the byte limit named", pe.Msg)
	}
}

func TestParseStraceMalformed(t *testing.T) {
	cases := []string{
		"1001 notatime open(\"/f\", O_RDONLY) = 3",
		"1001 167.5 open(\"/f\", O_RDONLY = 3",   // unbalanced
		"1001 167.5 open(\"/f\", O_RDONLY) = zz", // bad ret
	}
	for _, c := range cases {
		if _, err := ParseStrace(strings.NewReader(c + "\n")); err == nil {
			t.Errorf("no error for %q", c)
		}
	}
}

// Property: WriteTo/ReadFrom round-trips arbitrary printable records.
func TestQuickNativeRoundTrip(t *testing.T) {
	calls := []string{"open", "read", "write", "stat", "rename", "fcntl"}
	f := func(tid uint8, call uint8, fd uint16, size int32, off int32, pathSeed uint16, errSeed uint8) bool {
		path := "/p" + strings.Repeat("x", int(pathSeed%10)) + "/f f"
		rec := &Record{
			Seq:    1,
			TID:    int(tid)%8 + 1,
			Call:   calls[int(call)%len(calls)],
			Path:   path,
			FD:     int64(fd),
			Size:   int64(size),
			Offset: int64(off),
			Ret:    int64(size),
			Start:  time.Duration(off&0x7fffffff) * time.Nanosecond,
		}
		rec.End = rec.Start + time.Microsecond
		if errSeed%3 == 0 {
			rec.Err = "ENOENT"
			rec.Ret = -1
		}
		tr := &Trace{Platform: "linux", Records: []*Record{rec}}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil || len(got.Records) != 1 {
			return false
		}
		return reflect.DeepEqual(got.Records[0], rec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParseNative(b *testing.B) {
	tr := sampleTrace()
	var buf bytes.Buffer
	tr.Encode(&buf)
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
