package trace

import (
	"bytes"
	"io"
	"runtime"
	"strings"
	"time"

	"rootreplay/internal/par"
)

// Sharded parsing splits the input at line boundaries into N chunks,
// lexes the chunks in parallel on the par pool, and merges the shard
// outputs deterministically, so the resulting Trace is identical to
// what the sequential parser produces. The determinism argument (see
// DESIGN.md "Trace ingest"):
//
//   - Chunk boundaries land on newlines, so every line is lexed by
//     exactly one shard, and shards cover the lines in input order.
//   - A shard fully parses only lines that are self-contained. The two
//     line shapes whose meaning depends on earlier lines — `<unfinished
//     ...>` openings and `<... resumed>` completions, which pair up
//     through a per-TID pending map that can span shard boundaries —
//     are deferred: the shard records the raw line and its position,
//     and the merge replays them against the one global pending map,
//     in line order. Records complete at a resumed line are appended
//     at that line's position, exactly as the sequential parser does.
//   - Timestamps: the sequential parser rebases against the first
//     timestamp it sees, which may live in any shard-parsed or
//     deferred line. Shards therefore parse in absolute time and
//     report their first timestamp; the merge subtracts the earliest
//     shard's (= the file's first, since shards are in line order)
//     from every record afterwards.
//   - Errors: shards stop at their first error and report it with its
//     global line number. The merge walks shards in order and returns
//     the first error it meets in line order — the same one the
//     sequential parser would have stopped at. (Lines after it may
//     have been parsed speculatively; their records are discarded
//     with the trace.)
//
// Each shard interns into a private table; the merge unions the tables
// so the final Trace carries one table covering all its strings.

// shardDefer is a line whose interpretation needs cross-line state,
// replayed during the merge. raw aliases the input buffer, which
// outlives the merge.
type shardDefer struct {
	idx    int    // number of shard-parsed records preceding this line
	lineNo int    // global 1-based line number
	raw    string // trimmed line text
}

type shardResult struct {
	p      *straceParser
	defers []shardDefer
	err    error
}

// ParseStraceSharded parses strace output like ParseStrace but lexes
// the input in shards parallel chunks. The result is identical to the
// sequential parse. shards <= 0 selects GOMAXPROCS. The whole input is
// read into memory first; for bounded-memory ingest use
// ParseStraceStream instead.
func ParseStraceSharded(r io.Reader, shards int) (*Trace, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	return parseStraceBytes(data, shards)
}

// shardMinBytes is the input size below which the fan-out costs more
// than it saves; a var so tests can force multi-shard runs on small
// fixtures.
var shardMinBytes = 1 << 20

func parseStraceBytes(data []byte, shards int) (*Trace, error) {
	if negativeLeadTS(data) {
		return parseStraceFast(bytes.NewReader(data))
	}
	if shards > 1 && len(data) < shardMinBytes {
		shards = 1
	}
	bounds := chunkBounds(data, shards)
	results := make([]shardResult, len(bounds)-1)
	par.ForEach(len(results), func(i int) error {
		start, end := bounds[i], bounds[i+1]
		startLine := bytes.Count(data[:start], []byte{'\n'}) + 1
		results[i] = parseShard(data[start:end], startLine)
		return nil
	})
	return mergeShards(results)
}

// negativeLeadTS reports whether the first parseable line of data
// carries a negative timestamp. The sequential parser's rebase origin
// is reassigned on every line while it is still negative, so with a
// negative lead the per-record bases can differ and the merge's single
// subtraction cannot reproduce them. Such traces (nonsensical, but
// constructible) take the sequential path, which replicates the
// reassignment exactly. Anything else the pre-scan cannot classify —
// an over-long or malformed first line — is left to the sharded path,
// which reports those errors identically to the sequential parser.
func negativeLeadTS(data []byte) bool {
	p := newStraceParser(false)
	for len(data) > 0 {
		lineB := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			lineB, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		if len(lineB) >= straceMaxLine {
			return false
		}
		if n := len(lineB); n > 0 && lineB[n-1] == '\r' {
			lineB = lineB[:n-1]
		}
		line := trimFast(bytesView(lineB))
		if skipLine(line) {
			continue
		}
		_, ts, _, err := p.header(line)
		return err == nil && ts < 0
	}
	return false
}

// chunkBounds returns len(bounds)-1 = min(shards, possible) chunk
// boundaries, each landing just after a newline (or at the ends of the
// input).
func chunkBounds(data []byte, shards int) []int {
	bounds := []int{0}
	for i := 1; i < shards; i++ {
		pos := len(data) * i / shards
		last := bounds[len(bounds)-1]
		if pos < last {
			pos = last
		}
		nl := bytes.IndexByte(data[pos:], '\n')
		if nl < 0 {
			break
		}
		pos += nl + 1
		if pos > last {
			bounds = append(bounds, pos)
		}
	}
	return append(bounds, len(data))
}

// parseShard lexes one chunk. Lines that need cross-shard state are
// deferred; everything else becomes records with absolute timestamps.
func parseShard(chunk []byte, startLine int) shardResult {
	res := shardResult{p: newStraceParser(false)}
	p := res.p
	lineNo := startLine - 1
	for len(chunk) > 0 {
		var lineB []byte
		if nl := bytes.IndexByte(chunk, '\n'); nl >= 0 {
			lineB, chunk = chunk[:nl], chunk[nl+1:]
		} else {
			lineB, chunk = chunk, nil
		}
		lineNo++
		// Mirror the scanner's cap: the sequential parser fails with
		// ErrTooLong once a buffer's worth of bytes holds no newline,
		// which counts a trailing \r but not the \n.
		if len(lineB) >= straceMaxLine {
			res.err = tooLongError(lineNo)
			return res
		}
		if n := len(lineB); n > 0 && lineB[n-1] == '\r' {
			lineB = lineB[:n-1]
		}
		line := strings.TrimSpace(bytesView(lineB))
		if skipLine(line) {
			continue
		}
		tid, ts, rest, err := p.header(line)
		if err != nil {
			res.err = &ParseError{Line: lineNo, Text: strings.Clone(line), Msg: err.Error()}
			return res
		}
		if p.firstTS < 0 {
			p.firstTS = ts
		}
		if strings.HasPrefix(rest, "<...") || strings.HasSuffix(rest, "<unfinished ...>") {
			res.defers = append(res.defers, shardDefer{
				idx:    len(p.tr.Records),
				lineNo: lineNo,
				raw:    line, // aliases data; stable through the merge
			})
			continue
		}
		if err := p.finish(tid, ts, rest); err != nil {
			res.err = &ParseError{Line: lineNo, Text: strings.Clone(line), Msg: err.Error()}
			return res
		}
	}
	return res
}

// mergeShards stitches shard outputs into one Trace, replaying deferred
// lines against the global pending map.
func mergeShards(results []shardResult) (*Trace, error) {
	m := newStraceParser(false)
	var firstTS int64 = -1
	for i := range results {
		sh := &results[i]
		recs := sh.p.tr.Records
		ri := 0
		for _, d := range sh.defers {
			for ; ri < d.idx; ri++ {
				m.tr.Records = append(m.tr.Records, recs[ri])
			}
			if err := m.line(d.raw, d.lineNo); err != nil {
				return nil, err
			}
		}
		for ; ri < len(recs); ri++ {
			m.tr.Records = append(m.tr.Records, recs[ri])
		}
		if sh.err != nil {
			return nil, sh.err
		}
		if firstTS < 0 && sh.p.firstTS >= 0 {
			firstTS = sh.p.firstTS
		}
		m.tab.AddAll(sh.p.tab)
	}
	if firstTS > 0 {
		base := time.Duration(firstTS)
		for _, r := range m.tr.Records {
			r.Start -= base
			r.End -= base
		}
	}
	m.tr.Renumber()
	return m.tr, nil
}
