package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// straceMaxLine caps a single strace line. A large `write` payload
// rendered with a generous strace -s easily exceeds bufio.Scanner's
// 64 KiB default — and the 1 MiB cap this parser used to set — so the
// limit is generous; a var rather than a const so the overflow error
// path stays testable without a 16 MiB fixture.
var straceMaxLine = 16 << 20

// ParseStrace parses the output of `strace -f -ttt -T`, the standard
// UNIX tracing tool ARTC supports for ease of benchmark creation (§4.1).
// Expected line shapes:
//
//	1234 1679588291.123456 open("/a/b", O_RDONLY|O_CREAT, 0644) = 3 <0.000012>
//	1234 1679588291.123456 read(3, "data"..., 4096) = 4096 <0.000040>
//	1234 1679588291.123456 stat("/x", {st_mode=S_IFREG|0644, ...}) = -1 ENOENT (No such file) <0.000008>
//	1234 1679588291.123456 write(5, ... <unfinished ...>
//	1234 1679588291.125000 <... write resumed>) = 512 <0.001544>
//
// Unrecognized calls are skipped (strace traces far more than file I/O).
// Timestamps are rebased so the earliest call starts at zero.
//
// ParseStrace is the zero-copy fast path (strace_fast.go); the original
// line-at-a-time parser is kept below as parseStraceReference, the
// semantic oracle the golden and fuzz tests compare against. For
// parallel parsing of large inputs see ParseStraceSharded; for
// overlapping the parse with compilation see ParseStraceStream.
func ParseStrace(r io.Reader) (*Trace, error) {
	return parseStraceFast(r)
}

// parseStraceReference is the original allocating parser, kept verbatim
// as the behavioural oracle for the fast path.
func parseStraceReference(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	// Scanner treats max(cap(buf), limit) as the cap, so the initial
	// buffer must not exceed straceMaxLine for the limit to bind.
	initial := 64 << 10
	if straceMaxLine < initial {
		initial = straceMaxLine
	}
	sc.Buffer(make([]byte, initial), straceMaxLine)
	tr := &Trace{Platform: "linux"}
	// Pending unfinished call per TID.
	pending := make(map[int]*straceCall)
	lineNo := 0
	var firstTS int64 = -1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "+++") || strings.HasPrefix(line, "---") {
			continue
		}
		tid, ts, rest, err := straceHeader(line)
		if err != nil {
			return nil, &ParseError{Line: lineNo, Text: line, Msg: err.Error()}
		}
		if firstTS < 0 {
			firstTS = ts
		}
		if strings.HasPrefix(rest, "<...") {
			// Resumption of an unfinished call.
			p, ok := pending[tid]
			if !ok {
				continue // resumed call we never saw the start of
			}
			delete(pending, tid)
			idx := strings.Index(rest, "resumed>")
			if idx < 0 {
				return nil, &ParseError{Line: lineNo, Text: line, Msg: "malformed resumed line"}
			}
			p.text += rest[idx+len("resumed>"):]
			rec, err := p.finish(firstTS)
			if err != nil {
				return nil, &ParseError{Line: lineNo, Text: line, Msg: err.Error()}
			}
			if rec != nil {
				tr.Records = append(tr.Records, rec)
			}
			continue
		}
		if strings.HasSuffix(rest, "<unfinished ...>") {
			pending[tid] = &straceCall{
				tid:  tid,
				ts:   ts,
				text: strings.TrimSuffix(rest, "<unfinished ...>"),
			}
			continue
		}
		call := &straceCall{tid: tid, ts: ts, text: rest}
		rec, err := call.finish(firstTS)
		if err != nil {
			return nil, &ParseError{Line: lineNo, Text: line, Msg: err.Error()}
		}
		if rec != nil {
			tr.Records = append(tr.Records, rec)
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, &ParseError{
				Line: lineNo + 1,
				Msg: fmt.Sprintf("line exceeds the %d-byte limit; re-record with a smaller strace -s, or raise the cap",
					straceMaxLine),
			}
		}
		return nil, err
	}
	tr.Renumber()
	return tr, nil
}

// straceHeader splits "[pid] timestamp rest" returning tid, the epoch
// timestamp in integer nanoseconds, and the call text. The pid is
// optional (no -f). The timestamp is parsed as integer seconds plus
// fraction digits — float64 cannot hold epoch-seconds at microsecond
// precision.
func straceHeader(line string) (tid int, ts int64, rest string, err error) {
	line = strings.TrimPrefix(line, "[pid ")
	line = strings.Replace(line, "] ", " ", 1)
	f1, r1, _ := strings.Cut(line, " ")
	if t, err2 := strconv.Atoi(f1); err2 == nil {
		// Leading pid present.
		tid = t
		line = strings.TrimSpace(r1)
		f1, r1, _ = strings.Cut(line, " ")
	} else {
		tid = 1
	}
	ts, err = parseEpochNS(f1)
	if err != nil {
		return 0, 0, "", err
	}
	return tid, ts, strings.TrimSpace(r1), nil
}

// parseEpochNS parses "1679588291.000400" into nanoseconds exactly.
func parseEpochNS(s string) (int64, error) {
	secS, fracS, _ := strings.Cut(s, ".")
	secs, err := strconv.ParseInt(secS, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad timestamp %q", s)
	}
	ns := secs * int64(time.Second)
	if fracS != "" {
		if len(fracS) > 9 {
			fracS = fracS[:9]
		}
		frac, err := strconv.ParseInt(fracS, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad timestamp %q", s)
		}
		for i := len(fracS); i < 9; i++ {
			frac *= 10
		}
		ns += frac
	}
	return ns, nil
}

type straceCall struct {
	tid  int
	ts   int64 // epoch nanoseconds
	text string
}

// finish parses the assembled call text into a Record; it returns
// (nil, nil) for calls the model does not handle.
func (c *straceCall) finish(base int64) (*Record, error) {
	name, rest, ok := strings.Cut(c.text, "(")
	if !ok {
		return nil, fmt.Errorf("no opening paren")
	}
	name = strings.TrimSpace(name)
	// Split args from result: find the closing paren that matches at
	// depth 0, respecting quotes.
	depth := 1
	inQ := false
	end := -1
	for i := 0; i < len(rest); i++ {
		ch := rest[i]
		if inQ {
			if ch == '\\' {
				i++
			} else if ch == '"' {
				inQ = false
			}
			continue
		}
		switch ch {
		case '"':
			inQ = true
		case '(', '{', '[':
			depth++
		case ')', '}', ']':
			depth--
			if depth == 0 && ch == ')' {
				end = i
			}
		}
		if end >= 0 {
			break
		}
	}
	if end < 0 {
		return nil, fmt.Errorf("unbalanced parens")
	}
	argstr := rest[:end]
	result := strings.TrimSpace(rest[end+1:])

	rec := &Record{TID: c.tid, Call: name}
	rec.Start = time.Duration(c.ts - base)
	// Result: "= ret [ERRNO (text)] [<dur>]".
	result = strings.TrimPrefix(result, "=")
	result = strings.TrimSpace(result)
	var durS string
	if i := strings.LastIndex(result, "<"); i >= 0 && strings.HasSuffix(result, ">") {
		durS = result[i+1 : len(result)-1]
		result = strings.TrimSpace(result[:i])
	}
	retTok, errPart, _ := strings.Cut(result, " ")
	if retTok == "?" {
		rec.Ret = 0
	} else {
		// Hex returns appear for mmap.
		ret, err := strconv.ParseInt(retTok, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad return %q", retTok)
		}
		rec.Ret = ret
	}
	if rec.Ret == -1 && errPart != "" {
		sym, _, _ := strings.Cut(strings.TrimSpace(errPart), " ")
		rec.Err = sym
	}
	dur := time.Duration(0)
	if durS != "" {
		if secs, err := strconv.ParseFloat(durS, 64); err == nil {
			dur = time.Duration(secs * float64(time.Second))
		}
	}
	rec.End = rec.Start + dur

	args := splitStraceArgs(argstr)
	if err := assignStraceArgs(rec, name, args, nil); err != nil {
		if err == errSkipCall {
			return nil, nil
		}
		return nil, err
	}
	return rec, nil
}

// splitStraceArgs splits a comma-separated argument list, respecting
// quotes and bracket nesting.
func splitStraceArgs(s string) []string {
	var out []string
	depth := 0
	inQ := false
	start := 0
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if inQ {
			if ch == '\\' {
				i++
			} else if ch == '"' {
				inQ = false
			}
			continue
		}
		switch ch {
		case '"':
			inQ = true
		case '(', '{', '[':
			depth++
		case ')', '}', ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	last := strings.TrimSpace(s[start:])
	if last != "" {
		out = append(out, last)
	}
	return out
}

var errSkipCall = fmt.Errorf("call not modelled")

func unquoteStrace(s string) string {
	s = strings.TrimSuffix(s, "...")
	if u, err := strconv.Unquote(s); err == nil {
		return u
	}
	return s
}

func parseIntArg(s string) int64 {
	s = strings.TrimSpace(s)
	// strace may annotate fds like "3</path/to/file>".
	if i := strings.IndexByte(s, '<'); i > 0 {
		s = s[:i]
	}
	// Plain decimals (almost every fd/size/offset) skip ParseInt's
	// base-0 machinery; the gate in parseRetTok keeps octal/hex/"0x"
	// spellings on the strconv path.
	if n, ok := parseRetTok(s); ok {
		return n
	}
	n, _ := strconv.ParseInt(s, 0, 64)
	return n
}

// parseOpenFlags converts "O_RDWR|O_CREAT" to bits. It scans '|'-
// separated byte ranges in place — no strings.Split slice, no per-token
// substring allocation — and resolves each token through the compiler's
// string-switch (a hash/compare tree, effectively a perfect hash over
// the known flag names). Composite sets are additionally cached per
// trace by Intern.openFlags.
func parseOpenFlags(s string) OpenFlag {
	var f OpenFlag
	for start := 0; start <= len(s); {
		end := strings.IndexByte(s[start:], '|')
		if end < 0 {
			end = len(s)
		} else {
			end += start
		}
		switch strings.TrimSpace(s[start:end]) {
		case "O_RDONLY":
		case "O_WRONLY":
			f |= OWronly
		case "O_RDWR":
			f |= ORdwr
		case "O_CREAT":
			f |= OCreat
		case "O_EXCL":
			f |= OExcl
		case "O_TRUNC":
			f |= OTrunc
		case "O_APPEND":
			f |= OAppend
		case "O_NONBLOCK", "O_NDELAY":
			f |= ONonblock
		case "O_DIRECTORY":
			f |= ODir
		case "O_NOFOLLOW":
			f |= ONofollow
		case "O_SYNC", "O_FSYNC":
			f |= OSync
		}
		start = end + 1
	}
	return f
}

// assignStraceArgs maps positional strace arguments onto Record fields
// for each supported call. It is shared by the reference parser and the
// zero-copy fast path: with a nil intern table retained strings are
// stored as-is (the reference parser's lines are already durable
// copies); with a table, every retained string — paths, xattr names,
// fcntl op names — is interned, which both deduplicates storage and
// severs any aliasing of the lexer's reusable line buffer.
func assignStraceArgs(rec *Record, name string, args []string, tab *Intern) error {
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("%s: want >=%d args, have %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "open", "open64":
		if err := need(2); err != nil {
			return err
		}
		rec.Path = tab.str(unquoteStrace(args[0]))
		rec.Flags = tab.openFlags(args[1])
		if len(args) > 2 {
			rec.Mode = uint32(parseIntArg(args[2]))
		}
		if rec.Ret > 0 {
			rec.FD = rec.Ret
		}
	case "openat":
		if err := need(3); err != nil {
			return err
		}
		rec.Path = tab.str(unquoteStrace(args[1]))
		rec.Flags = tab.openFlags(args[2])
		if len(args) > 3 {
			rec.Mode = uint32(parseIntArg(args[3]))
		}
		if rec.Ret > 0 {
			rec.FD = rec.Ret
		}
	case "creat":
		if err := need(2); err != nil {
			return err
		}
		rec.Path = tab.str(unquoteStrace(args[0]))
		rec.Mode = uint32(parseIntArg(args[1]))
	case "close", "fsync", "fdatasync", "fstat", "fstat64", "fchdir", "fstatfs", "flistxattr":
		if err := need(1); err != nil {
			return err
		}
		rec.FD = parseIntArg(args[0])
	case "read", "write":
		if err := need(3); err != nil {
			return err
		}
		rec.FD = parseIntArg(args[0])
		rec.Size = parseIntArg(args[2])
	case "pread", "pread64", "pwrite", "pwrite64":
		if err := need(4); err != nil {
			return err
		}
		rec.FD = parseIntArg(args[0])
		rec.Size = parseIntArg(args[2])
		rec.Offset = parseIntArg(args[3])
	case "lseek", "_llseek", "llseek":
		if err := need(3); err != nil {
			return err
		}
		rec.FD = parseIntArg(args[0])
		rec.Offset = parseIntArg(args[1])
		switch strings.TrimSpace(args[2]) {
		case "SEEK_SET":
			rec.Whence = 0
		case "SEEK_CUR":
			rec.Whence = 1
		case "SEEK_END":
			rec.Whence = 2
		}
	case "stat", "stat64", "lstat", "lstat64", "access", "readlink", "statfs", "statfs64",
		"rmdir", "unlink", "chdir", "listxattr", "llistxattr":
		if err := need(1); err != nil {
			return err
		}
		rec.Path = tab.str(unquoteStrace(args[0]))
	case "unlinkat":
		if err := need(2); err != nil {
			return err
		}
		rec.Path = tab.str(unquoteStrace(args[1]))
	case "mkdir", "chmod":
		if err := need(2); err != nil {
			return err
		}
		rec.Path = tab.str(unquoteStrace(args[0]))
		rec.Mode = uint32(parseIntArg(args[1]))
	case "rename", "link", "symlink":
		if err := need(2); err != nil {
			return err
		}
		rec.Path = tab.str(unquoteStrace(args[0]))
		rec.Path2 = tab.str(unquoteStrace(args[1]))
	case "renameat", "renameat2", "linkat", "symlinkat":
		if err := need(4); err != nil {
			return err
		}
		rec.Path = tab.str(unquoteStrace(args[1]))
		rec.Path2 = tab.str(unquoteStrace(args[3]))
	case "truncate":
		if err := need(2); err != nil {
			return err
		}
		rec.Path = tab.str(unquoteStrace(args[0]))
		rec.Size = parseIntArg(args[1])
	case "ftruncate", "ftruncate64":
		if err := need(2); err != nil {
			return err
		}
		rec.FD = parseIntArg(args[0])
		rec.Size = parseIntArg(args[1])
	case "dup":
		if err := need(1); err != nil {
			return err
		}
		rec.FD = parseIntArg(args[0])
	case "dup2", "dup3":
		if err := need(2); err != nil {
			return err
		}
		rec.FD = parseIntArg(args[0])
		rec.FD2 = parseIntArg(args[1])
	case "fcntl", "fcntl64":
		if err := need(2); err != nil {
			return err
		}
		rec.Call = "fcntl"
		rec.FD = parseIntArg(args[0])
		rec.Name = tab.str(strings.TrimSpace(args[1]))
		if len(args) > 2 {
			rec.Offset = parseIntArg(args[2])
		}
	case "getdents", "getdents64", "getdirentries":
		if err := need(1); err != nil {
			return err
		}
		rec.FD = parseIntArg(args[0])
		rec.Size = rec.Ret
	case "getxattr", "lgetxattr", "setxattr", "lsetxattr", "removexattr", "lremovexattr":
		if err := need(2); err != nil {
			return err
		}
		rec.Path = tab.str(unquoteStrace(args[0]))
		rec.Name = tab.str(unquoteStrace(args[1]))
		if strings.HasPrefix(name, "setxattr") || strings.HasPrefix(name, "lsetxattr") {
			if len(args) > 3 {
				rec.Size = parseIntArg(args[3])
			}
		}
	case "fgetxattr", "fsetxattr", "fremovexattr":
		if err := need(2); err != nil {
			return err
		}
		rec.FD = parseIntArg(args[0])
		rec.Name = tab.str(unquoteStrace(args[1]))
		if name == "fsetxattr" && len(args) > 3 {
			rec.Size = parseIntArg(args[3])
		}
	case "fadvise64", "posix_fadvise":
		if err := need(4); err != nil {
			return err
		}
		rec.Call = "fadvise"
		rec.FD = parseIntArg(args[0])
		rec.Offset = parseIntArg(args[1])
		rec.Size = parseIntArg(args[2])
		rec.Name = tab.str(strings.TrimSpace(args[3]))
	case "fallocate":
		if err := need(4); err != nil {
			return err
		}
		rec.FD = parseIntArg(args[0])
		rec.Offset = parseIntArg(args[2])
		rec.Size = parseIntArg(args[3])
	case "mmap", "mmap2":
		if err := need(6); err != nil {
			return err
		}
		// mmap(addr, length, prot, flags, fd, offset); anonymous
		// mappings are not file I/O.
		fd := parseIntArg(args[4])
		if fd < 0 {
			return errSkipCall
		}
		rec.Call = "mmap"
		rec.FD = fd
		rec.Size = parseIntArg(args[1])
		rec.Offset = parseIntArg(args[5])
	case "munmap":
		if err := need(2); err != nil {
			return err
		}
		rec.Offset = parseIntArg(args[0])
		rec.Size = parseIntArg(args[1])
	case "msync":
		if err := need(2); err != nil {
			return err
		}
		rec.Offset = parseIntArg(args[0])
		rec.Size = parseIntArg(args[1])
	case "sync":
	default:
		return errSkipCall
	}
	return nil
}
