package trace

import (
	"fmt"
	"sort"
	"time"
)

// Trace-editing utilities: benchmark curation often needs to cut a trace
// down to a window or a set of threads, or to merge traces for combined
// replay (the multi-application scenario of §4.3.2).

// FilterThreads returns a new trace containing only the records of the
// given thread IDs, in the original order, renumbered.
func (tr *Trace) FilterThreads(tids ...int) *Trace {
	keep := make(map[int]bool, len(tids))
	for _, t := range tids {
		keep[t] = true
	}
	out := &Trace{Platform: tr.Platform}
	for _, r := range tr.Records {
		if keep[r.TID] {
			cp := *r
			out.Records = append(out.Records, &cp)
		}
	}
	out.Renumber()
	return out
}

// Window returns a new trace containing the records whose start times
// fall in [from, to), rebased so the window begins at zero, renumbered.
func (tr *Trace) Window(from, to time.Duration) *Trace {
	out := &Trace{Platform: tr.Platform}
	for _, r := range tr.Records {
		if r.Start < from || r.Start >= to {
			continue
		}
		cp := *r
		cp.Start -= from
		cp.End -= from
		out.Records = append(out.Records, &cp)
	}
	out.Renumber()
	return out
}

// Merge interleaves several traces into one by start time, remapping
// thread IDs so different inputs never share a thread, and remapping
// descriptor numbers into per-input ranges so a descriptor number used
// by two inputs is not mistaken for a shared resource. Inputs must all
// record the same platform — a merged replay runs against one syscall
// surface, so mixing platforms is an error, not a silent pick of the
// first. The result is renumbered.
//
// The merged trace reuses the inputs' intern tables rather than
// re-allocating merged strings: records are copied by value, so their
// string fields keep the inputs' backing storage, and the output's
// table is the union of the inputs' tables (first table seen wins a
// duplicate), so downstream editors keep deduplicating against the
// same storage.
func Merge(traces ...*Trace) (*Trace, error) {
	out := &Trace{}
	for _, tr := range traces {
		if tr.intern != nil {
			out.InternTable().AddAll(tr.intern)
		}
	}
	const tidStride = 1000
	const fdStride = 100000
	for i, tr := range traces {
		if tr.Platform != "" {
			if out.Platform == "" {
				out.Platform = tr.Platform
			} else if tr.Platform != out.Platform {
				return nil, fmt.Errorf("trace: merge input %d is %q, earlier inputs are %q",
					i, tr.Platform, out.Platform)
			}
		}
		for _, r := range tr.Records {
			cp := *r
			cp.TID = r.TID + (i+1)*tidStride
			// Remap descriptor arguments (0/1/2 are stdio and unused by
			// the model; any nonzero fd is file I/O here).
			if cp.FD != 0 {
				cp.FD += int64(i+1) * fdStride
			}
			if cp.FD2 != 0 {
				cp.FD2 += int64(i+1) * fdStride
			}
			if createsFDInRet(&cp) && cp.Ret > 0 {
				cp.Ret += int64(i+1) * fdStride
			}
			if cp.AIO != 0 {
				cp.AIO += int64(i+1) * fdStride
			}
			out.Records = append(out.Records, &cp)
		}
	}
	sort.SliceStable(out.Records, func(a, b int) bool {
		return out.Records[a].Start < out.Records[b].Start
	})
	out.Renumber()
	return out, nil
}

// createsFDInRet reports whether a record's return value is a new
// descriptor number and must be remapped alongside FD/FD2. Besides the
// obvious creators, fcntl(F_DUPFD) returns a duplicate descriptor; a
// merge that leaves its Ret unmapped splices the duplicate into another
// input's descriptor range. Call names are matched literally (including
// the fcntl64 spelling) because this package sits below the stack's
// canonicalization layer.
func createsFDInRet(r *Record) bool {
	switch r.Call {
	case "open", "open64", "creat", "dup":
		return true
	case "fcntl", "fcntl64":
		return r.Name == "F_DUPFD"
	}
	return false
}
