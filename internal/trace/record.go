// Package trace defines the trace model shared by the tracer, the ARTC
// compiler, and the replayer.
//
// A Trace is a totally-ordered series of Records, each describing one
// system call: entry/return timestamps, the numeric ID of the issuing
// thread, the call type, its parameters, and its return value — exactly
// the per-call information ARTC's core requires (§4.3.1). Buffer
// pointers are deliberately absent: ARTC ignores them.
//
// The package also provides a native text serialization (artc format)
// and a parser for strace -f -T -ttt output; see encoding.go and
// strace.go.
package trace

import (
	"fmt"
	"time"
)

// OpenFlag is a set of open(2) flags. Values match Linux/x86-64.
type OpenFlag int64

// Open flags understood by the model.
const (
	ORdonly   OpenFlag = 0x0
	OWronly   OpenFlag = 0x1
	ORdwr     OpenFlag = 0x2
	OCreat    OpenFlag = 0x40
	OExcl     OpenFlag = 0x80
	OTrunc    OpenFlag = 0x200
	OAppend   OpenFlag = 0x400
	ONonblock OpenFlag = 0x800
	ODir      OpenFlag = 0x10000
	ONofollow OpenFlag = 0x20000
	OSync     OpenFlag = 0x101000
)

var flagNames = []struct {
	f OpenFlag
	n string
}{
	{OWronly, "O_WRONLY"},
	{ORdwr, "O_RDWR"},
	{OCreat, "O_CREAT"},
	{OExcl, "O_EXCL"},
	{OTrunc, "O_TRUNC"},
	{OAppend, "O_APPEND"},
	{ONonblock, "O_NONBLOCK"},
	{ODir, "O_DIRECTORY"},
	{ONofollow, "O_NOFOLLOW"},
	{OSync, "O_SYNC"},
}

// String renders flags in strace style ("O_RDWR|O_CREAT").
func (f OpenFlag) String() string {
	s := ""
	if f&0x3 == 0 {
		s = "O_RDONLY"
	}
	for _, fn := range flagNames {
		if f&fn.f == fn.f && fn.f != 0 {
			if s != "" {
				s += "|"
			}
			s += fn.n
		}
	}
	if s == "" {
		s = "O_RDONLY"
	}
	return s
}

// Access reports the access mode bits (O_RDONLY/O_WRONLY/O_RDWR).
func (f OpenFlag) Access() OpenFlag { return f & 0x3 }

// Record is one traced system call. It is a flat union over the calls
// the model supports; unused fields are zero. This mirrors ARTC's
// generated static tables of per-call structs.
type Record struct {
	Seq    int64         // position in the total order of the trace
	TID    int           // numeric ID of the issuing thread
	Call   string        // call name as traced, e.g. "open", "pread"
	Path   string        // first path argument
	Path2  string        // second path argument (rename, link, symlink target)
	FD     int64         // first fd argument, or fd return for open
	FD2    int64         // second fd argument (dup2)
	Offset int64         // file offset (pread/pwrite/lseek/aio)
	Size   int64         // byte count (read/write/truncate)
	Flags  OpenFlag      // open flags
	Mode   uint32        // permission bits
	Name   string        // xattr / attrlist name, fcntl op name
	Whence int           // lseek whence
	AIO    int64         // aiocb identifier
	Ret    int64         // return value (fd, byte count, 0, or -1)
	Err    string        // errno symbol ("ENOENT"); empty on success
	Start  time.Duration // call entry time, relative to trace start
	End    time.Duration // call return time
}

// OK reports whether the call succeeded.
func (r *Record) OK() bool { return r.Err == "" }

// Latency returns the traced service time of the call.
func (r *Record) Latency() time.Duration { return r.End - r.Start }

// String renders the record in the native one-line format (see
// encoding.go for the full grammar).
func (r *Record) String() string {
	return fmt.Sprintf("%d [T%d] %s ret=%d err=%s", r.Seq, r.TID, r.Call, r.Ret, r.Err)
}

// Trace is a totally-ordered series of records plus the metadata needed
// to replay them.
type Trace struct {
	// Platform names the source system's syscall surface: "linux",
	// "osx", "freebsd", "illumos".
	Platform string
	// Records in trace order. Seq fields match indices.
	Records []*Record

	// intern is the string table the records' Path/Call/Name/Err fields
	// were deduplicated through, when the trace came from a parser that
	// interns (the strace fast path, ParseTrace, Merge). May be nil for
	// hand-built traces.
	intern *Intern
}

// InternTable returns the trace's string-interning table, creating an
// empty one on first use so editors (Merge) can always extend it.
func (tr *Trace) InternTable() *Intern {
	if tr.intern == nil {
		tr.intern = NewIntern()
	}
	return tr.intern
}

// Renumber rewrites Seq fields to match slice positions; parsers call it
// after assembling records from concurrent streams.
func (tr *Trace) Renumber() {
	for i, r := range tr.Records {
		r.Seq = int64(i)
	}
}

// Threads returns the distinct TIDs in first-appearance order.
func (tr *Trace) Threads() []int {
	seen := make(map[int]bool)
	var out []int
	for _, r := range tr.Records {
		if !seen[r.TID] {
			seen[r.TID] = true
			out = append(out, r.TID)
		}
	}
	return out
}

// Duration returns the end time of the last-finishing call.
func (tr *Trace) Duration() time.Duration {
	var max time.Duration
	for _, r := range tr.Records {
		if r.End > max {
			max = r.End
		}
	}
	return max
}
