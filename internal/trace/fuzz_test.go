package trace

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the three trace parsers. `go test` runs the seed
// corpus; `go test -fuzz=FuzzParseStrace ./internal/trace` explores.
// The invariants under fuzz: no panics, and for the native format any
// successfully parsed trace re-encodes and re-parses to the same record
// count (encode/decode stability).

func FuzzParseStrace(f *testing.F) {
	f.Add(sampleStrace)
	f.Add(`1001 1679588291.000100 open("/etc/fstab", O_RDONLY) = 3 <0.000020>`)
	f.Add(`99 1.5 write(4, "x", 10 <unfinished ...>` + "\n" + `99 1.6 <... write resumed>) = 10 <0.1>`)
	f.Add(`garbage`)
	f.Add(`1 1.0 mmap(NULL, 8192, PROT_READ, MAP_PRIVATE, -1, 0) = 0x7f00 <0.1>`)
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseStrace(strings.NewReader(input))
		if err != nil || tr == nil {
			return
		}
		for i, r := range tr.Records {
			if r.Seq != int64(i) {
				t.Fatalf("non-dense seq after parse: %d at %d", r.Seq, i)
			}
			if r.End < r.Start {
				t.Fatalf("record %d: End < Start", i)
			}
		}
	})
}

// FuzzStraceFastVsReference is the differential target: every parser
// variant (fast, streaming, sharded at several widths) must match
// parseStraceReference — records byte for byte, errors field for field.
// The seeds sit on the fast path's bail-out boundaries: the "] "
// header rewrite, signed/oversized timestamps, base-0 return tokens,
// exponent durations, unfinished/resumed pairing, and quoting edge
// cases.
func FuzzStraceFastVsReference(f *testing.F) {
	f.Add(sampleStrace)
	f.Add(genStraceCorpus(f, 50, 7))
	f.Add(`[pid 7] 1679588291.000100 open("/etc/fstab", O_RDONLY) = 3 <0.000020>`)
	f.Add(`5 1679588291.5 write(1, "x] y", 4) = 4 <0.001>`)                 // "] " inside a quoted arg
	f.Add(`5 1679588291.5 write(1, "a\"b\\c", 5) = 5 <0.001>`)              // escapes inside quotes
	f.Add(`5 1679588291.5 fcntl(3, F_SETLK, {l_type=F_WRLCK}) = 0 <0.001>`) // nested braces
	f.Add(`1 -12.5 close(3) = 0 <0.000001>`)                                // negative epoch
	f.Add(`1 99999999999999999999.5 close(3) = 0 <1e-6>`)                   // sec overflow + exponent dur
	f.Add(`1 1.000000000999 close(3) = 0 <0.1>`)                            // >9 fraction digits
	f.Add(`1 1.5 close(3) = 010 <0.1>`)                                     // octal return (base 0)
	f.Add(`1 1.5 close(3) = 0x1f <0.1>`)                                    // hex return
	f.Add(`1 1.5 close(3) = 1_0 <0.1>`)                                     // underscore (base 0 only)
	f.Add(`1 1.5 close(3) = -9223372036854775808 <0.1>`)                    // MinInt64
	f.Add(`1 1.5 close(3) = ? <0.1>`)                                       // unknown return
	f.Add(`1 1.5 open("/gone", O_RDONLY) = -1 ENOENT (No such file or directory) <0.003>`)
	f.Add("9 1.5 read(3, \"\", 0 <unfinished ...>\n9 1.6 <... read resumed>) = 0 <0.1>")
	f.Add(`9 1.5 read(3, "", 0 <unfinished ...>`) // never resumed
	f.Add(`9 1.6 <... read resumed>) = 0 <0.1>`)  // never started
	f.Add("2 1.5 close(3 <unfinished ...>\n2 1.6 close(4 <unfinished ...>\n2 1.7 <... close resumed>) = 0 <0.05>")
	f.Add("+++ exited with 0 +++\n--- SIGCHLD ---\n\n1 1.5 sync() = 0 <0.1>")
	f.Add("1 1.5 close(3) = 0 <0.1>\r\n2 1.6 close(4) = 0 <0.1>") // CRLF
	f.Add("  1.5 close(3) = 0 <0.1>")                             // Unicode space edge
	f.Add(`1 1.5 close(3) = 0 <0.000498000>`)                     // truncating duration
	f.Add(`1 1.5 statfs("/x"]) = 0 <0.1>`)                        // "] " rewrite mid-call: "])" stays
	f.Add(`1 1.5 weird] (call) = 0 <0.1>`)                        // "] " before the paren
	f.Fuzz(func(t *testing.T, input string) {
		assertParsersAgree(t, "fuzz", input)
	})
}

func FuzzParseIBench(f *testing.F) {
	f.Add(sampleIBench)
	f.Add(`1679.0 1679.1 5 open 3 0 "/a" 0x2 0644`)
	f.Add(`# comment only`)
	f.Add(`1679.0 1679.1 5 gettimeofday 0 0`)
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseIBench(strings.NewReader(input))
		if err != nil || tr == nil {
			return
		}
		for i, r := range tr.Records {
			if r.Seq != int64(i) {
				t.Fatalf("non-dense seq: %d at %d", r.Seq, i)
			}
		}
	})
}

func FuzzDecodeTrace(f *testing.F) {
	var buf bytes.Buffer
	sampleTrace().Encode(&buf)
	f.Add(buf.String())
	f.Add("#artc-trace v1 platform=osx\n0 1 open path=\"/a\" = 3 - 0 10\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Decode(strings.NewReader(input))
		if err != nil || tr == nil {
			return
		}
		// Round-trip stability: what we parsed must re-encode and
		// re-parse identically.
		var out bytes.Buffer
		if err := tr.Encode(&out); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		tr2, err := Decode(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if len(tr2.Records) != len(tr.Records) {
			t.Fatalf("round trip lost records: %d -> %d", len(tr.Records), len(tr2.Records))
		}
	})
}
