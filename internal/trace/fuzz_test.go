package trace

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the three trace parsers. `go test` runs the seed
// corpus; `go test -fuzz=FuzzParseStrace ./internal/trace` explores.
// The invariants under fuzz: no panics, and for the native format any
// successfully parsed trace re-encodes and re-parses to the same record
// count (encode/decode stability).

func FuzzParseStrace(f *testing.F) {
	f.Add(sampleStrace)
	f.Add(`1001 1679588291.000100 open("/etc/fstab", O_RDONLY) = 3 <0.000020>`)
	f.Add(`99 1.5 write(4, "x", 10 <unfinished ...>` + "\n" + `99 1.6 <... write resumed>) = 10 <0.1>`)
	f.Add(`garbage`)
	f.Add(`1 1.0 mmap(NULL, 8192, PROT_READ, MAP_PRIVATE, -1, 0) = 0x7f00 <0.1>`)
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseStrace(strings.NewReader(input))
		if err != nil || tr == nil {
			return
		}
		for i, r := range tr.Records {
			if r.Seq != int64(i) {
				t.Fatalf("non-dense seq after parse: %d at %d", r.Seq, i)
			}
			if r.End < r.Start {
				t.Fatalf("record %d: End < Start", i)
			}
		}
	})
}

func FuzzParseIBench(f *testing.F) {
	f.Add(sampleIBench)
	f.Add(`1679.0 1679.1 5 open 3 0 "/a" 0x2 0644`)
	f.Add(`# comment only`)
	f.Add(`1679.0 1679.1 5 gettimeofday 0 0`)
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseIBench(strings.NewReader(input))
		if err != nil || tr == nil {
			return
		}
		for i, r := range tr.Records {
			if r.Seq != int64(i) {
				t.Fatalf("non-dense seq: %d at %d", r.Seq, i)
			}
		}
	})
}

func FuzzDecodeTrace(f *testing.F) {
	var buf bytes.Buffer
	sampleTrace().Encode(&buf)
	f.Add(buf.String())
	f.Add("#artc-trace v1 platform=osx\n0 1 open path=\"/a\" = 3 - 0 10\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Decode(strings.NewReader(input))
		if err != nil || tr == nil {
			return
		}
		// Round-trip stability: what we parsed must re-encode and
		// re-parse identically.
		var out bytes.Buffer
		if err := tr.Encode(&out); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		tr2, err := Decode(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if len(tr2.Records) != len(tr.Records) {
			t.Fatalf("round trip lost records: %d -> %d", len(tr.Records), len(tr2.Records))
		}
	})
}
